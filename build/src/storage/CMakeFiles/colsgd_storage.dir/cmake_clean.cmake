file(REMOVE_RECURSE
  "CMakeFiles/colsgd_storage.dir/dataset.cc.o"
  "CMakeFiles/colsgd_storage.dir/dataset.cc.o.d"
  "CMakeFiles/colsgd_storage.dir/libsvm.cc.o"
  "CMakeFiles/colsgd_storage.dir/libsvm.cc.o.d"
  "CMakeFiles/colsgd_storage.dir/partitioner.cc.o"
  "CMakeFiles/colsgd_storage.dir/partitioner.cc.o.d"
  "CMakeFiles/colsgd_storage.dir/transform.cc.o"
  "CMakeFiles/colsgd_storage.dir/transform.cc.o.d"
  "CMakeFiles/colsgd_storage.dir/workset.cc.o"
  "CMakeFiles/colsgd_storage.dir/workset.cc.o.d"
  "libcolsgd_storage.a"
  "libcolsgd_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colsgd_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
