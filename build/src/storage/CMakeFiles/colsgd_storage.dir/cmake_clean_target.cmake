file(REMOVE_RECURSE
  "libcolsgd_storage.a"
)
