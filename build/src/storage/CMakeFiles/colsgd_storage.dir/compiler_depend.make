# Empty compiler generated dependencies file for colsgd_storage.
# This may be replaced when dependencies are built.
