file(REMOVE_RECURSE
  "CMakeFiles/colsgd_model.dir/factory.cc.o"
  "CMakeFiles/colsgd_model.dir/factory.cc.o.d"
  "CMakeFiles/colsgd_model.dir/fm.cc.o"
  "CMakeFiles/colsgd_model.dir/fm.cc.o.d"
  "CMakeFiles/colsgd_model.dir/glm.cc.o"
  "CMakeFiles/colsgd_model.dir/glm.cc.o.d"
  "CMakeFiles/colsgd_model.dir/mlp.cc.o"
  "CMakeFiles/colsgd_model.dir/mlp.cc.o.d"
  "CMakeFiles/colsgd_model.dir/mlr.cc.o"
  "CMakeFiles/colsgd_model.dir/mlr.cc.o.d"
  "libcolsgd_model.a"
  "libcolsgd_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colsgd_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
