
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/factory.cc" "src/model/CMakeFiles/colsgd_model.dir/factory.cc.o" "gcc" "src/model/CMakeFiles/colsgd_model.dir/factory.cc.o.d"
  "/root/repo/src/model/fm.cc" "src/model/CMakeFiles/colsgd_model.dir/fm.cc.o" "gcc" "src/model/CMakeFiles/colsgd_model.dir/fm.cc.o.d"
  "/root/repo/src/model/glm.cc" "src/model/CMakeFiles/colsgd_model.dir/glm.cc.o" "gcc" "src/model/CMakeFiles/colsgd_model.dir/glm.cc.o.d"
  "/root/repo/src/model/mlp.cc" "src/model/CMakeFiles/colsgd_model.dir/mlp.cc.o" "gcc" "src/model/CMakeFiles/colsgd_model.dir/mlp.cc.o.d"
  "/root/repo/src/model/mlr.cc" "src/model/CMakeFiles/colsgd_model.dir/mlr.cc.o" "gcc" "src/model/CMakeFiles/colsgd_model.dir/mlr.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/colsgd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
