file(REMOVE_RECURSE
  "libcolsgd_model.a"
)
