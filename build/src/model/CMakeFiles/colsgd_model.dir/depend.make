# Empty dependencies file for colsgd_model.
# This may be replaced when dependencies are built.
