file(REMOVE_RECURSE
  "CMakeFiles/colsgd_common.dir/csv.cc.o"
  "CMakeFiles/colsgd_common.dir/csv.cc.o.d"
  "CMakeFiles/colsgd_common.dir/flags.cc.o"
  "CMakeFiles/colsgd_common.dir/flags.cc.o.d"
  "CMakeFiles/colsgd_common.dir/logging.cc.o"
  "CMakeFiles/colsgd_common.dir/logging.cc.o.d"
  "CMakeFiles/colsgd_common.dir/status.cc.o"
  "CMakeFiles/colsgd_common.dir/status.cc.o.d"
  "libcolsgd_common.a"
  "libcolsgd_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colsgd_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
