# Empty compiler generated dependencies file for colsgd_common.
# This may be replaced when dependencies are built.
