file(REMOVE_RECURSE
  "libcolsgd_common.a"
)
