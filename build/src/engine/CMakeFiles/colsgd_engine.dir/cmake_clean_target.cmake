file(REMOVE_RECURSE
  "libcolsgd_engine.a"
)
