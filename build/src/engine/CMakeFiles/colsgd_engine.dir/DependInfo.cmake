
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/columnsgd.cc" "src/engine/CMakeFiles/colsgd_engine.dir/columnsgd.cc.o" "gcc" "src/engine/CMakeFiles/colsgd_engine.dir/columnsgd.cc.o.d"
  "/root/repo/src/engine/cost_model.cc" "src/engine/CMakeFiles/colsgd_engine.dir/cost_model.cc.o" "gcc" "src/engine/CMakeFiles/colsgd_engine.dir/cost_model.cc.o.d"
  "/root/repo/src/engine/metrics.cc" "src/engine/CMakeFiles/colsgd_engine.dir/metrics.cc.o" "gcc" "src/engine/CMakeFiles/colsgd_engine.dir/metrics.cc.o.d"
  "/root/repo/src/engine/mllib_star.cc" "src/engine/CMakeFiles/colsgd_engine.dir/mllib_star.cc.o" "gcc" "src/engine/CMakeFiles/colsgd_engine.dir/mllib_star.cc.o.d"
  "/root/repo/src/engine/model_io.cc" "src/engine/CMakeFiles/colsgd_engine.dir/model_io.cc.o" "gcc" "src/engine/CMakeFiles/colsgd_engine.dir/model_io.cc.o.d"
  "/root/repo/src/engine/ps.cc" "src/engine/CMakeFiles/colsgd_engine.dir/ps.cc.o" "gcc" "src/engine/CMakeFiles/colsgd_engine.dir/ps.cc.o.d"
  "/root/repo/src/engine/rowsgd.cc" "src/engine/CMakeFiles/colsgd_engine.dir/rowsgd.cc.o" "gcc" "src/engine/CMakeFiles/colsgd_engine.dir/rowsgd.cc.o.d"
  "/root/repo/src/engine/trainer.cc" "src/engine/CMakeFiles/colsgd_engine.dir/trainer.cc.o" "gcc" "src/engine/CMakeFiles/colsgd_engine.dir/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/colsgd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/colsgd_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/colsgd_model.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/colsgd_optim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
