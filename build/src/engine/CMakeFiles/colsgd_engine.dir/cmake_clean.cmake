file(REMOVE_RECURSE
  "CMakeFiles/colsgd_engine.dir/columnsgd.cc.o"
  "CMakeFiles/colsgd_engine.dir/columnsgd.cc.o.d"
  "CMakeFiles/colsgd_engine.dir/cost_model.cc.o"
  "CMakeFiles/colsgd_engine.dir/cost_model.cc.o.d"
  "CMakeFiles/colsgd_engine.dir/metrics.cc.o"
  "CMakeFiles/colsgd_engine.dir/metrics.cc.o.d"
  "CMakeFiles/colsgd_engine.dir/mllib_star.cc.o"
  "CMakeFiles/colsgd_engine.dir/mllib_star.cc.o.d"
  "CMakeFiles/colsgd_engine.dir/model_io.cc.o"
  "CMakeFiles/colsgd_engine.dir/model_io.cc.o.d"
  "CMakeFiles/colsgd_engine.dir/ps.cc.o"
  "CMakeFiles/colsgd_engine.dir/ps.cc.o.d"
  "CMakeFiles/colsgd_engine.dir/rowsgd.cc.o"
  "CMakeFiles/colsgd_engine.dir/rowsgd.cc.o.d"
  "CMakeFiles/colsgd_engine.dir/trainer.cc.o"
  "CMakeFiles/colsgd_engine.dir/trainer.cc.o.d"
  "libcolsgd_engine.a"
  "libcolsgd_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colsgd_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
