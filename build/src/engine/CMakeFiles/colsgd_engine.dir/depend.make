# Empty dependencies file for colsgd_engine.
# This may be replaced when dependencies are built.
