file(REMOVE_RECURSE
  "CMakeFiles/colsgd_datagen.dir/synthetic.cc.o"
  "CMakeFiles/colsgd_datagen.dir/synthetic.cc.o.d"
  "libcolsgd_datagen.a"
  "libcolsgd_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colsgd_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
