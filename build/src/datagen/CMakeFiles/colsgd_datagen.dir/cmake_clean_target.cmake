file(REMOVE_RECURSE
  "libcolsgd_datagen.a"
)
