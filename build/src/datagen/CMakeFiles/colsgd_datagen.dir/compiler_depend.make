# Empty compiler generated dependencies file for colsgd_datagen.
# This may be replaced when dependencies are built.
