file(REMOVE_RECURSE
  "libcolsgd_optim.a"
)
