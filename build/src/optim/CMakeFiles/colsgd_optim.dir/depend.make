# Empty dependencies file for colsgd_optim.
# This may be replaced when dependencies are built.
