file(REMOVE_RECURSE
  "CMakeFiles/colsgd_optim.dir/optimizer.cc.o"
  "CMakeFiles/colsgd_optim.dir/optimizer.cc.o.d"
  "libcolsgd_optim.a"
  "libcolsgd_optim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colsgd_optim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
