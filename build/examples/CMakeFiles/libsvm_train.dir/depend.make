# Empty dependencies file for libsvm_train.
# This may be replaced when dependencies are built.
