file(REMOVE_RECURSE
  "CMakeFiles/libsvm_train.dir/libsvm_train.cpp.o"
  "CMakeFiles/libsvm_train.dir/libsvm_train.cpp.o.d"
  "libsvm_train"
  "libsvm_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/libsvm_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
