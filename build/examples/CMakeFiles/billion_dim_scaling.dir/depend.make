# Empty dependencies file for billion_dim_scaling.
# This may be replaced when dependencies are built.
