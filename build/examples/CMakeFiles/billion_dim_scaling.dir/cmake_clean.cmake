file(REMOVE_RECURSE
  "CMakeFiles/billion_dim_scaling.dir/billion_dim_scaling.cpp.o"
  "CMakeFiles/billion_dim_scaling.dir/billion_dim_scaling.cpp.o.d"
  "billion_dim_scaling"
  "billion_dim_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/billion_dim_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
