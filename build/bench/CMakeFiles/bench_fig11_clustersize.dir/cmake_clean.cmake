file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_clustersize.dir/bench_fig11_clustersize.cc.o"
  "CMakeFiles/bench_fig11_clustersize.dir/bench_fig11_clustersize.cc.o.d"
  "bench_fig11_clustersize"
  "bench_fig11_clustersize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_clustersize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
