file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_modelsize.dir/bench_fig10_modelsize.cc.o"
  "CMakeFiles/bench_fig10_modelsize.dir/bench_fig10_modelsize.cc.o.d"
  "bench_fig10_modelsize"
  "bench_fig10_modelsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_modelsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
