# Empty dependencies file for bench_fig7_loading.
# This may be replaced when dependencies are built.
