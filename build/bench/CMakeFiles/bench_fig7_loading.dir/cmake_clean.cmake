file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_loading.dir/bench_fig7_loading.cc.o"
  "CMakeFiles/bench_fig7_loading.dir/bench_fig7_loading.cc.o.d"
  "bench_fig7_loading"
  "bench_fig7_loading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_loading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
