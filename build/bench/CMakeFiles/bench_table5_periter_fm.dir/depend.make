# Empty dependencies file for bench_table5_periter_fm.
# This may be replaced when dependencies are built.
