file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_periter_fm.dir/bench_table5_periter_fm.cc.o"
  "CMakeFiles/bench_table5_periter_fm.dir/bench_table5_periter_fm.cc.o.d"
  "bench_table5_periter_fm"
  "bench_table5_periter_fm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_periter_fm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
