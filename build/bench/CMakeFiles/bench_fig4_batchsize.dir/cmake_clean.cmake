file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_batchsize.dir/bench_fig4_batchsize.cc.o"
  "CMakeFiles/bench_fig4_batchsize.dir/bench_fig4_batchsize.cc.o.d"
  "bench_fig4_batchsize"
  "bench_fig4_batchsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_batchsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
