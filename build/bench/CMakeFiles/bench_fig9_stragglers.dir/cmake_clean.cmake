file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_stragglers.dir/bench_fig9_stragglers.cc.o"
  "CMakeFiles/bench_fig9_stragglers.dir/bench_fig9_stragglers.cc.o.d"
  "bench_fig9_stragglers"
  "bench_fig9_stragglers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_stragglers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
