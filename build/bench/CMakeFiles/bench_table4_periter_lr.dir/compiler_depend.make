# Empty compiler generated dependencies file for bench_table4_periter_lr.
# This may be replaced when dependencies are built.
