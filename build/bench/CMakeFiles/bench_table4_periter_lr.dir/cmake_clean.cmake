file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_periter_lr.dir/bench_table4_periter_lr.cc.o"
  "CMakeFiles/bench_table4_periter_lr.dir/bench_table4_periter_lr.cc.o.d"
  "bench_table4_periter_lr"
  "bench_table4_periter_lr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_periter_lr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
