# Empty dependencies file for bench_fig13_faults.
# This may be replaced when dependencies are built.
