file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_faults.dir/bench_fig13_faults.cc.o"
  "CMakeFiles/bench_fig13_faults.dir/bench_fig13_faults.cc.o.d"
  "bench_fig13_faults"
  "bench_fig13_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
