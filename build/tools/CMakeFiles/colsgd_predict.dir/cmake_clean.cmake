file(REMOVE_RECURSE
  "CMakeFiles/colsgd_predict.dir/colsgd_predict.cc.o"
  "CMakeFiles/colsgd_predict.dir/colsgd_predict.cc.o.d"
  "colsgd_predict"
  "colsgd_predict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colsgd_predict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
