# Empty compiler generated dependencies file for colsgd_predict.
# This may be replaced when dependencies are built.
