file(REMOVE_RECURSE
  "CMakeFiles/colsgd_train.dir/colsgd_train.cc.o"
  "CMakeFiles/colsgd_train.dir/colsgd_train.cc.o.d"
  "colsgd_train"
  "colsgd_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colsgd_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
