# Empty compiler generated dependencies file for colsgd_train.
# This may be replaced when dependencies are built.
