# Empty compiler generated dependencies file for transform_sweep_test.
# This may be replaced when dependencies are built.
