file(REMOVE_RECURSE
  "CMakeFiles/transform_sweep_test.dir/transform_sweep_test.cc.o"
  "CMakeFiles/transform_sweep_test.dir/transform_sweep_test.cc.o.d"
  "transform_sweep_test"
  "transform_sweep_test.pdb"
  "transform_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transform_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
