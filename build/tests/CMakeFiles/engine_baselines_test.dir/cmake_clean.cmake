file(REMOVE_RECURSE
  "CMakeFiles/engine_baselines_test.dir/engine_baselines_test.cc.o"
  "CMakeFiles/engine_baselines_test.dir/engine_baselines_test.cc.o.d"
  "engine_baselines_test"
  "engine_baselines_test.pdb"
  "engine_baselines_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_baselines_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
