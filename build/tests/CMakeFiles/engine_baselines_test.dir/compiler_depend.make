# Empty compiler generated dependencies file for engine_baselines_test.
# This may be replaced when dependencies are built.
