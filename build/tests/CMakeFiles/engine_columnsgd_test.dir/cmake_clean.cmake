file(REMOVE_RECURSE
  "CMakeFiles/engine_columnsgd_test.dir/engine_columnsgd_test.cc.o"
  "CMakeFiles/engine_columnsgd_test.dir/engine_columnsgd_test.cc.o.d"
  "engine_columnsgd_test"
  "engine_columnsgd_test.pdb"
  "engine_columnsgd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_columnsgd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
