# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/linalg_test[1]_include.cmake")
include("/root/repo/build/tests/simnet_test[1]_include.cmake")
include("/root/repo/build/tests/partitioner_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/transform_test[1]_include.cmake")
include("/root/repo/build/tests/transform_sweep_test[1]_include.cmake")
include("/root/repo/build/tests/datagen_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/mlp_test[1]_include.cmake")
include("/root/repo/build/tests/optim_test[1]_include.cmake")
include("/root/repo/build/tests/cost_model_test[1]_include.cmake")
include("/root/repo/build/tests/engine_columnsgd_test[1]_include.cmake")
include("/root/repo/build/tests/engine_baselines_test[1]_include.cmake")
include("/root/repo/build/tests/engine_equivalence_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/model_io_test[1]_include.cmake")
include("/root/repo/build/tests/trainer_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
