// Online-serving driver (DESIGN.md §13, §17): load-tests the column-sharded
// serving plane on the simulated cluster and prints the SLO accounting.
//
// Two modes:
//
//  * load test (default): installs a model — planted weights, or a v2
//    CRC-sealed image from --model_file — and serves an open-loop Poisson,
//    burst, diurnal, or flash-crowd workload against a synthetic query log.
//    With --replicas > 1 the requests go through the replicated fleet
//    (health-routed, hedging router over R shard groups) instead of a
//    single frontend:
//
//      colsgd_serve --model lr --shards 4 --rate 4000 --requests 2000
//      colsgd_serve --arrivals burst --burst_factor 8 --slo_latency 0.005
//      colsgd_serve --fail_at 0.2 --fail_shard 1   # failover drill
//      colsgd_serve --replicas 2 --straggle_group 1 --straggle_level 5
//      colsgd_serve --replicas 3 --group_fail_at 0.2 --fail_group 0
//      colsgd_serve --arrivals flash --flash_factor 6 --replicas 2
//
//  * train-and-serve (--train_iters > 0): trains an engine with periodic
//    checkpointing, then replays the checkpoint stream into the serving
//    plane — the first checkpoint is the bring-up install and every later
//    one arrives as a hot swap at its training-time offset, so responses
//    span model generations without a single request being dropped:
//
//      colsgd_serve --train_iters 30 --checkpoint_every 5 --rate 2000
//
// Per-request latency decompositions (queue/scatter/compute/gather) can be
// dumped with --records_csv for offline analysis.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/flags.h"
#include "common/rng.h"
#include "datagen/synthetic.h"
#include "engine/trainer.h"
#include "linalg/kernels/calibrate.h"
#include "linalg/kernels/kernels.h"
#include "model/factory.h"
#include "obs/critpath/dag_json.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "serve/fleet.h"
#include "serve/frontend.h"

namespace colsgd {
namespace {

SavedModel PlantedModel(const std::string& model_name, uint64_t num_features,
                        uint64_t seed) {
  std::unique_ptr<ModelSpec> spec = MakeModel(model_name);
  const int wpf = spec->weights_per_feature();
  SavedModel model;
  model.model_name = model_name;
  model.num_features = num_features;
  model.weights.resize(num_features * static_cast<uint64_t>(wpf));
  for (uint64_t slot = 0; slot < model.weights.size(); ++slot) {
    model.weights[slot] = 0.05 * GaussianFromHash(slot + 1, seed);
  }
  model.shared.resize(spec->num_shared_params());
  for (size_t i = 0; i < model.shared.size(); ++i) {
    model.shared[i] = 0.01 * GaussianFromHash(0x51a3edULL + i, seed);
  }
  return model;
}

const char* StatusName(RequestStatus status) {
  switch (status) {
    case RequestStatus::kCompleted: return "completed";
    case RequestStatus::kRejected: return "rejected";
    case RequestStatus::kTimedOut: return "timed_out";
  }
  return "?";
}

void DumpRecordsCsv(const std::string& path,
                    const std::vector<RequestRecord>& records) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  COLSGD_CHECK(f != nullptr) << "cannot open " << path;
  std::fprintf(f,
               "id,row,arrival,status,generation,batch,dispatch,completion,"
               "queue_s,scatter_s,compute_s,gather_s,score\n");
  for (const RequestRecord& rec : records) {
    std::fprintf(f,
                 "%llu,%u,%.9f,%s,%lld,%lld,%.9f,%.9f,%.9f,%.9f,%.9f,%.9f,"
                 "%.17g\n",
                 static_cast<unsigned long long>(rec.id), rec.row, rec.arrival,
                 StatusName(rec.status),
                 static_cast<long long>(rec.generation),
                 static_cast<long long>(rec.batch), rec.dispatch,
                 rec.completion, rec.queue_s, rec.scatter_s, rec.compute_s,
                 rec.gather_s, rec.score);
  }
  std::fclose(f);
  std::printf("records: %s\n", path.c_str());
}

void PrintSummary(const ServeSummary& s,
                  const std::vector<RequestRecord>& records,
                  const std::vector<GenerationInfo>& generations) {
  std::printf("offered %lld  completed %lld  rejected %lld  timed_out %lld  "
              "batches %lld\n",
              static_cast<long long>(s.offered),
              static_cast<long long>(s.completed),
              static_cast<long long>(s.rejected),
              static_cast<long long>(s.timed_out),
              static_cast<long long>(s.batches));
  std::printf("makespan %.6f s  throughput %.1f req/s\n", s.makespan,
              s.throughput);
  std::printf("latency mean %.3f ms  p50 %.3f ms  p95 %.3f ms  p99 %.3f ms  "
              "max %.3f ms\n",
              s.latency_mean * 1e3, s.latency_p50 * 1e3, s.latency_p95 * 1e3,
              s.latency_p99 * 1e3, s.latency_max * 1e3);
  std::printf("wire %llu bytes in %llu messages  (%.1f bytes/request)\n",
              static_cast<unsigned long long>(s.wire_bytes),
              static_cast<unsigned long long>(s.wire_messages),
              s.bytes_per_request);
  std::printf("swaps %lld completed, %lld failed, stall %.6f s\n",
              static_cast<long long>(s.swaps_completed),
              static_cast<long long>(s.swaps_failed), s.swap_stall_seconds);
  std::printf("failovers %lld (%.6f s)  slo_violation_fraction %.4f\n",
              static_cast<long long>(s.failovers), s.failover_seconds,
              s.slo_violation_fraction);

  std::map<int64_t, int64_t> per_generation;
  for (const RequestRecord& rec : records) {
    if (rec.status == RequestStatus::kCompleted) ++per_generation[rec.generation];
  }
  std::printf("generations served:");
  for (const auto& [generation, count] : per_generation) {
    std::printf("  g%lld: %lld", static_cast<long long>(generation),
                static_cast<long long>(count));
  }
  std::printf("\n");
  for (const GenerationInfo& info : generations) {
    std::printf("  install %s gen %lld (iter %lld) %.6f -> %.6f s\n",
                info.ok ? "ok  " : "FAIL",
                static_cast<long long>(info.generation),
                static_cast<long long>(info.trained_iterations),
                info.install_start, info.install_done);
  }
}

void PrintFleetExtras(const FleetSummary& s) {
  std::printf("fleet: %d replica group(s)  per-group completed:", s.replicas);
  for (size_t g = 0; g < s.group_completed.size(); ++g) {
    std::printf("  g%zu: %lld", g,
                static_cast<long long>(s.group_completed[g]));
  }
  std::printf("\n");
  std::printf("hedges %lld fired, %lld won, %lld cancelled, %lld suppressed  "
              "(%llu hedge bytes)\n",
              static_cast<long long>(s.hedges_fired),
              static_cast<long long>(s.hedge_wins),
              static_cast<long long>(s.hedges_cancelled),
              static_cast<long long>(s.hedges_suppressed),
              static_cast<unsigned long long>(s.hedge_bytes));
  std::printf("redispatches %lld  group_down_events %lld\n",
              static_cast<long long>(s.redispatches),
              static_cast<long long>(s.group_down_events));
}

int RunDriver(int argc, char** argv) {
  std::string model = "lr";
  std::string model_file;
  std::string records_csv;
  ServeConfig serve;
  WorkloadConfig workload;
  int64_t shards = serve.num_shards;
  int64_t workload_seed = static_cast<int64_t>(workload.seed);
  int64_t query_rows = 2000;
  int64_t query_features = 1000;
  int64_t query_seed = 99;
  int64_t model_seed = 7;
  double fail_at = 0.0;
  int64_t fail_shard = 0;
  // Fleet (--replicas > 1).
  FleetConfig fleet_config;
  int64_t replicas = 1;
  int64_t straggle_group = fleet_config.straggle_group;
  double group_fail_at = 0.0;
  int64_t fail_group = 0;
  // Train-and-serve.
  std::string engine_name = "columnsgd";
  int64_t train_iters = 0;
  int64_t checkpoint_every = 5;
  int64_t train_rows = 4000;
  double learning_rate = 0.5;
  int64_t batch_size = 256;

  FlagParser flags;
  flags.AddString("model", &model, "model family (lr, svm, fm<F>, mlr<C>)");
  flags.AddString("model_file", &model_file,
                  "serve a v2 model image instead of planted weights");
  flags.AddInt64("shards", &shards, "number of shard servers");
  flags.AddString("partitioner", &serve.partitioner, "column partitioner");
  flags.AddInt64("max_batch", &serve.max_batch, "requests per batch");
  flags.AddDouble("max_delay", &serve.max_delay,
                  "max seconds the oldest request waits for a batch");
  flags.AddInt64("queue_capacity", &serve.queue_capacity,
                 "admission queue bound");
  flags.AddDouble("reply_timeout", &serve.reply_timeout,
                  "gather timeout when a shard is dead");
  flags.AddDouble("slo_latency", &serve.slo_latency,
                  "per-request latency objective, seconds");
  flags.AddString("arrivals", &workload.arrivals,
                  "poisson | burst | diurnal | flash");
  flags.AddDouble("rate", &workload.rate, "base arrival rate, req/s");
  flags.AddInt64("requests", &workload.num_requests, "number of requests");
  flags.AddInt64("workload_seed", &workload_seed, "arrival process seed");
  flags.AddDouble("burst_period", &workload.burst_period, "seconds");
  flags.AddDouble("burst_duration", &workload.burst_duration, "seconds");
  flags.AddDouble("burst_factor", &workload.burst_factor, "rate multiplier");
  flags.AddDouble("diurnal_period", &workload.diurnal_period,
                  "seconds per simulated day");
  flags.AddDouble("diurnal_amplitude", &workload.diurnal_amplitude,
                  "peak-to-base swing in [0, 1]");
  flags.AddDouble("diurnal_phase", &workload.diurnal_phase,
                  "fraction of a period in [0, 1)");
  flags.AddDouble("flash_at", &workload.flash_at,
                  "flash-crowd start, seconds");
  flags.AddDouble("flash_duration", &workload.flash_duration, "seconds");
  flags.AddDouble("flash_factor", &workload.flash_factor, "rate multiplier");
  flags.AddInt64("replicas", &replicas,
                 "shard-group replicas; > 1 serves through the fleet "
                 "router (DESIGN.md §17)");
  flags.AddBool("hedging", &fleet_config.hedging,
                "fleet: duplicate slow batches to a second group");
  flags.AddDouble("hedge_factor", &fleet_config.hedge_factor,
                  "fleet: budget = factor x note round-trip quantile");
  flags.AddDouble("hedge_quantile", &fleet_config.hedge_quantile,
                  "fleet: round-trip quantile the hedge budget tracks");
  flags.AddDouble("hedge_min_budget", &fleet_config.hedge_min_budget,
                  "fleet: hedge budget floor, seconds");
  flags.AddInt64("straggle_group", &straggle_group,
                 "fleet: make this group a straggler (-1 disables)");
  flags.AddDouble("straggle_level", &fleet_config.straggle_level,
                  "fleet: straggler level L (extra time = L x task time)");
  flags.AddDouble("group_fail_at", &group_fail_at,
                  "fleet: lose a whole group at this time (0 disables)");
  flags.AddInt64("fail_group", &fail_group,
                 "fleet: which group --group_fail_at kills");
  flags.AddInt64("query_rows", &query_rows, "query log rows");
  flags.AddInt64("query_features", &query_features, "query log dimension");
  flags.AddInt64("query_seed", &query_seed, "query log seed");
  flags.AddInt64("model_seed", &model_seed, "planted-weight seed");
  flags.AddDouble("fail_at", &fail_at,
                  "kill a shard at this simulated time (0 disables)");
  flags.AddInt64("fail_shard", &fail_shard, "which shard --fail_at kills");
  flags.AddString("engine", &engine_name, "training engine (train-and-serve)");
  flags.AddInt64("train_iters", &train_iters,
                 "train this many iterations first, then serve the "
                 "checkpoint stream (0 = plain load test)");
  flags.AddInt64("checkpoint_every", &checkpoint_every,
                 "checkpoint cadence while training");
  flags.AddInt64("train_rows", &train_rows, "training dataset rows");
  flags.AddDouble("learning_rate", &learning_rate, "SGD step size");
  flags.AddInt64("batch_size", &batch_size, "training mini-batch size");
  flags.AddString("records_csv", &records_csv,
                  "dump per-request latency decompositions here");
  std::string kernel_mode = "scalar";
  std::string calibration_path;
  flags.AddString("kernel", &kernel_mode,
                  "executed kernel mode (DESIGN.md §18): scalar | simd | "
                  "threaded; scores are bitwise-identical across modes");
  flags.AddString("calibration", &calibration_path,
                  "price simulated compute at the measured kernel rates "
                  "from this colsgd_calibrate profile");
  std::string trace_out;
  std::string phase_csv;
  std::string dag_out;
  flags.AddString("trace_out", &trace_out,
                  "write a Chrome trace of the serving run here");
  flags.AddString("phase_csv", &phase_csv,
                  "write the per-iteration phase CSV here (needs tracing)");
  flags.AddString("dag_out", &dag_out,
                  "write the causal critical-path DAG here");
  COLSGD_CHECK_OK(flags.Parse(argc, argv));
  serve.num_shards = static_cast<int>(shards);
  workload.seed = static_cast<uint64_t>(workload_seed);

  kernels::KernelMode kmode;
  if (!kernels::ParseKernelMode(kernel_mode, &kmode)) {
    std::fprintf(stderr, "--kernel must be scalar|simd|threaded, got '%s'\n",
                 kernel_mode.c_str());
    return 2;
  }
  kernels::SetMode(kmode);

  ClusterSpec base_cluster = ClusterSpec::Cluster1();
  if (!calibration_path.empty()) {
    Result<kernels::CalibrationProfile> loaded =
        kernels::LoadCalibrationProfile(calibration_path);
    COLSGD_CHECK_OK(loaded.status());
    base_cluster.compute = kernels::ComputeModelFromCalibration(*loaded);
    base_cluster.mem_bandwidth = loaded->mem_bandwidth_bytes_per_s;
    std::printf("kernel: mode=%s, compute priced by %s (calibrated on %s "
                "kernels: %.2f GFLOP/s, %.2f GB/s)\n",
                kernels::KernelModeName(kmode), calibration_path.c_str(),
                loaded->kernel_mode.c_str(),
                loaded->flops_per_second / 1e9,
                loaded->mem_bandwidth_bytes_per_s / 1e9);
  } else {
    std::printf("kernel: mode=%s, compute priced at the Cluster1 preset "
                "(%.2f GFLOP/s)\n",
                kernels::KernelModeName(kmode),
                base_cluster.compute.flops_per_second / 1e9);
  }

  // The query log the requests reference.
  SyntheticSpec query_spec;
  query_spec.name = "queries";
  query_spec.num_rows = static_cast<uint64_t>(query_rows);
  query_spec.num_features = static_cast<uint64_t>(query_features);
  query_spec.avg_nnz_per_row = 15.0;
  query_spec.seed = static_cast<uint64_t>(query_seed);

  // The checkpoint stream to serve: (serving-time offset, model, provenance).
  struct Generation {
    double at = 0.0;
    SavedModel model;
    int64_t iterations = 0;
  };
  std::vector<Generation> stream;

  if (train_iters > 0) {
    SyntheticSpec train_spec = query_spec;
    train_spec.name = "train";
    train_spec.num_rows = static_cast<uint64_t>(train_rows);
    train_spec.seed = static_cast<uint64_t>(query_seed) + 1;
    const Dataset train_data = GenerateSynthetic(train_spec);

    ClusterSpec cluster = base_cluster;
    cluster.num_workers = serve.num_shards;
    TrainConfig config;
    config.model = model;
    config.learning_rate = learning_rate;
    config.batch_size = static_cast<size_t>(batch_size);
    config.partitioner = serve.partitioner;
    std::unique_ptr<Engine> engine =
        MakeEngine(engine_name, cluster, config);
    FaultConfig faults;
    faults.checkpoint.every = checkpoint_every;
    faults.checkpoint.keep = 2;
    COLSGD_CHECK_OK(engine->set_faults(std::move(faults)));
    COLSGD_CHECK_OK(engine->Setup(train_data));

    // Poll the checkpoint store as training advances; every newly completed
    // generation joins the serving stream at its training-clock offset.
    int64_t seen = 0;
    double first_at = -1.0;
    for (int64_t iter = 0; iter < train_iters; ++iter) {
      COLSGD_CHECK_OK(engine->RunIteration(iter));
      CheckpointStore& store = engine->checkpoint_store();
      if (store.completed_iterations() > seen) {
        const SavedModel* latest = store.Latest();
        COLSGD_CHECK(latest != nullptr);
        seen = store.completed_iterations();
        const double now = engine->runtime().MaxClock();
        if (first_at < 0.0) first_at = now;
        stream.push_back(Generation{now - first_at, *latest, seen});
      }
    }
    COLSGD_CHECK(!stream.empty())
        << "no checkpoint completed; lower --checkpoint_every";
    std::printf("trained %lld iterations (%s), %zu checkpoint generation(s)\n",
                static_cast<long long>(train_iters), engine_name.c_str(),
                stream.size());
  } else if (!model_file.empty()) {
    Result<SavedModel> loaded = ReadModelFile(model_file);
    COLSGD_CHECK_OK(loaded.status());
    stream.push_back(Generation{0.0, loaded.ValueOrDie(), 0});
    // Serve the image's own dimension.
    query_spec.num_features = stream[0].model.num_features;
  } else {
    stream.push_back(Generation{
        0.0,
        PlantedModel(model, query_spec.num_features,
                     static_cast<uint64_t>(model_seed)),
        0});
  }

  const Dataset queries = GenerateSynthetic(query_spec);
  const std::vector<ServeRequest> arrivals =
      GenerateArrivals(workload, queries.num_rows());
  Tracer tracer;
  CritPathRecorder critpath;

  if (replicas > 1) {
    // The causal DAG recorder covers the single-frontend pipeline only; the
    // fleet's eager cross-group execution has no DAG story yet.
    COLSGD_CHECK(dag_out.empty())
        << "--dag_out requires --replicas 1 (single frontend)";
    fleet_config.replicas = static_cast<int>(replicas);
    fleet_config.serve = serve;
    fleet_config.straggle_group = static_cast<int>(straggle_group);
    if (group_fail_at > 0.0) {
      // Tighten the heartbeat so detection lands inside a short load test.
      fleet_config.detector.heartbeat_interval = 0.01;
      fleet_config.detector.heartbeat_timeout = 0.04;
    }
    ServeFleet fleet(base_cluster, fleet_config, &queries);
    if (!trace_out.empty() || !phase_csv.empty()) fleet.set_tracer(&tracer);
    COLSGD_CHECK_OK(fleet.Install(stream[0].model, stream[0].iterations));
    for (size_t i = 1; i < stream.size(); ++i) {
      fleet.ScheduleSwap(stream[i].at, stream[i].model, stream[i].iterations);
    }
    if (fail_at > 0.0) {
      fleet.ScheduleShardFailure(fail_at, /*group=*/0,
                                 static_cast<int>(fail_shard));
    }
    if (group_fail_at > 0.0) {
      fleet.ScheduleGroupFailure(group_fail_at, static_cast<int>(fail_group));
    }
    COLSGD_CHECK_OK(fleet.Run(arrivals));
    const FleetSummary summary = fleet.Summarize();
    PrintSummary(summary, fleet.records(),
                 fleet.group(0).registry().history());
    PrintFleetExtras(summary);
    std::printf("fingerprint %016llx\n",
                static_cast<unsigned long long>(fleet.Fingerprint()));
    if (!records_csv.empty()) DumpRecordsCsv(records_csv, fleet.records());
    if (!trace_out.empty()) {
      COLSGD_CHECK_OK(WriteChromeTrace(tracer, trace_out));
      std::printf("trace: %s (%zu events)\n", trace_out.c_str(),
                  tracer.events().size());
    }
    if (!phase_csv.empty()) {
      COLSGD_CHECK_OK(WritePhaseCsv(tracer, phase_csv));
      std::printf("phase CSV: %s\n", phase_csv.c_str());
    }
    return 0;
  }

  ServeFrontend frontend(base_cluster, serve, &queries);
  if (!trace_out.empty() || !phase_csv.empty()) frontend.set_tracer(&tracer);
  if (!dag_out.empty()) frontend.set_critpath(&critpath);
  COLSGD_CHECK_OK(frontend.Install(stream[0].model, stream[0].iterations));
  for (size_t i = 1; i < stream.size(); ++i) {
    frontend.ScheduleSwap(stream[i].at, stream[i].model,
                          stream[i].iterations);
  }
  if (fail_at > 0.0) {
    frontend.ScheduleShardFailure(fail_at, static_cast<int>(fail_shard));
  }

  COLSGD_CHECK_OK(frontend.Run(arrivals));
  PrintSummary(frontend.Summarize(), frontend.records(),
               frontend.generations());
  std::printf("fingerprint %016llx\n",
              static_cast<unsigned long long>(frontend.Fingerprint()));
  if (!records_csv.empty()) DumpRecordsCsv(records_csv, frontend.records());
  if (!trace_out.empty()) {
    COLSGD_CHECK_OK(WriteChromeTrace(tracer, trace_out));
    std::printf("trace: %s (%zu events)\n", trace_out.c_str(),
                tracer.events().size());
  }
  if (!phase_csv.empty()) {
    COLSGD_CHECK_OK(WritePhaseCsv(tracer, phase_csv));
    std::printf("phase CSV: %s\n", phase_csv.c_str());
  }
  if (!dag_out.empty()) {
    const CritDag dag = critpath.Snapshot();
    COLSGD_CHECK_OK(WriteCritDagFile(dag, dag_out));
    std::printf("causal DAG: %s (%zu ops, fingerprint %08x)\n",
                dag_out.c_str(), dag.ops.size(), CritDagFingerprint(dag));
  }
  return 0;
}

}  // namespace
}  // namespace colsgd

int main(int argc, char** argv) { return colsgd::RunDriver(argc, argv); }
