// colsgd_critpath: analyzes a causal DAG recorded by colsgd_train --dag_out
// (obs/critpath). Prints the end-to-end critical path with per-(resource,
// node) blame that tiles the makespan exactly, answers what-if questions by
// replaying the log under hypothetical changes, and exports machine-readable
// artifacts: a versioned critical-path JSON, a Chrome-trace overlay track,
// and a BENCH_critpath.json suite for the colsgd_report regression gate.
//
//   colsgd_train --synthetic tiny --engine columnsgd --dag_out run.dag.json
//   colsgd_critpath --dag run.dag.json --topk 8
//   colsgd_critpath --dag run.dag.json --check            # conservation gate
//   colsgd_critpath --dag run.dag.json --what_if straggler[1]=0
//   colsgd_critpath --dag run.dag.json --sweep bandwidth=1,2,4,8
//   colsgd_critpath --dag run.dag.json --overlay t.json --overlay_out o.json
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/flags.h"
#include "obs/bench/bench_result.h"
#include "obs/bench/json.h"
#include "obs/critpath/analysis.h"
#include "obs/critpath/dag_json.h"
#include "obs/critpath/retime.h"

namespace colsgd {
namespace {

Status WriteTextFile(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const int rc = std::fclose(f);
  if (written != text.size() || rc != 0) {
    return Status::IOError("short write to " + path);
  }
  return Status::OK();
}

Result<std::string> ReadTextFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  std::string text;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  return text;
}

/// Applies one `key=value` entry of a what-if spec. Scalar keys: mem,
/// bandwidth, latency, overhead, slack (an integer bump). Per-node keys:
/// compute[N], straggler[N], local[N] — N is a node id, or * for all nodes.
Status ApplyWhatIfEntry(const std::string& entry, uint32_t num_nodes,
                        WhatIf* w) {
  const size_t eq = entry.find('=');
  if (eq == std::string::npos) {
    return Status::InvalidArgument("what-if entry '" + entry +
                                   "' is not key=value");
  }
  const std::string key = entry.substr(0, eq);
  const std::string value_str = entry.substr(eq + 1);
  char* end = nullptr;
  const double value = std::strtod(value_str.c_str(), &end);
  if (end == value_str.c_str() || *end != '\0') {
    return Status::InvalidArgument("what-if value '" + value_str +
                                   "' is not a number");
  }
  if (key == "mem") {
    w->mem_scale = value;
    return Status::OK();
  }
  if (key == "bandwidth") {
    w->bandwidth_scale = value;
    return Status::OK();
  }
  if (key == "latency") {
    w->latency_scale = value;
    return Status::OK();
  }
  if (key == "overhead") {
    w->overhead_scale = value;
    return Status::OK();
  }
  if (key == "slack") {
    w->slack_delta = static_cast<int64_t>(value);
    return Status::OK();
  }
  const size_t lb = key.find('[');
  if (lb == std::string::npos || key.back() != ']') {
    return Status::InvalidArgument("unknown what-if key '" + key + "'");
  }
  const std::string base = key.substr(0, lb);
  const std::string index = key.substr(lb + 1, key.size() - lb - 2);
  std::vector<double>* scales = nullptr;
  if (base == "compute") scales = &w->compute_scale;
  if (base == "straggler") scales = &w->straggler_scale;
  if (base == "local") scales = &w->local_scale;
  if (scales == nullptr) {
    return Status::InvalidArgument("unknown what-if key '" + key + "'");
  }
  if (scales->size() < num_nodes) scales->resize(num_nodes, 1.0);
  if (index == "*") {
    std::fill(scales->begin(), scales->end(), value);
    return Status::OK();
  }
  const long node = std::strtol(index.c_str(), &end, 10);
  if (end == index.c_str() || *end != '\0' || node < 0 ||
      static_cast<uint32_t>(node) >= num_nodes) {
    return Status::InvalidArgument("what-if node index '" + index +
                                   "' out of range");
  }
  (*scales)[static_cast<size_t>(node)] = value;
  return Status::OK();
}

Status ParseWhatIf(const std::string& spec, uint32_t num_nodes, WhatIf* w) {
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string entry = spec.substr(pos, comma - pos);
    if (!entry.empty()) {
      Status st = ApplyWhatIfEntry(entry, num_nodes, w);
      if (!st.ok()) return st;
    }
    pos = comma + 1;
  }
  return Status::OK();
}

std::string NodeName(const CritDag& dag, uint32_t node) {
  if (node == 0) return "master";
  if (node <= static_cast<uint32_t>(dag.num_workers)) {
    return "worker " + std::to_string(node - 1);
  }
  return "extra " + std::to_string(node - dag.num_workers - 1);
}

void PrintBlame(const CritDag& dag, const CritPathResult& result) {
  std::printf("\nblame (tiles the makespan):\n");
  std::printf("  %-10s %-10s %12s %8s\n", "resource", "node", "seconds",
              "share");
  std::vector<std::pair<std::pair<int, uint32_t>, double>> rows(
      result.blame.begin(), result.blame.end());
  std::stable_sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second > b.second;
  });
  for (const auto& [key, seconds] : rows) {
    std::printf("  %-10s %-10s %11.6fs %7.2f%%\n",
                BlameKindName(static_cast<BlameKind>(key.first)),
                NodeName(dag, key.second).c_str(), seconds,
                result.makespan > 0.0 ? 100.0 * seconds / result.makespan
                                      : 0.0);
  }
}

void PrintTopSegments(const CritDag& dag, const CritPathResult& result,
                      int64_t topk) {
  std::vector<PathStep> segments = result.steps;
  std::stable_sort(segments.begin(), segments.end(),
                   [](const PathStep& a, const PathStep& b) {
                     return a.length() > b.length();
                   });
  const size_t n = std::min(segments.size(),
                            static_cast<size_t>(std::max<int64_t>(topk, 0)));
  if (n == 0) return;
  std::printf("\ntop path segments:\n");
  std::printf("  %-10s %-10s %12s %14s %14s\n", "resource", "node", "length",
              "start", "end");
  for (size_t i = 0; i < n; ++i) {
    const PathStep& s = segments[i];
    std::printf("  %-10s %-10s %11.6fs %13.6fs %13.6fs\n",
                BlameKindName(s.kind), NodeName(dag, s.node).c_str(),
                s.length(), s.t0, s.t1);
  }
}

int Run(int argc, char** argv) {
  FlagParser flags;
  std::string dag_path;
  int64_t topk = 10;
  bool check = false;
  std::string what_if_spec;
  std::string sweep_spec;
  std::string overlay_path;
  std::string overlay_out;
  std::string critpath_out;
  std::string bench_out;
  flags.AddString("dag", &dag_path, "causal DAG JSON (colsgd_train --dag_out)");
  flags.AddInt64("topk", &topk, "path segments to print, longest first");
  flags.AddBool("check", &check,
                "exit nonzero unless the critical path tiles the makespan to "
                "1e-9 with zero unexplained gaps");
  flags.AddString("what_if", &what_if_spec,
                  "comma-separated retiming spec, e.g. "
                  "straggler[1]=0,bandwidth=2,slack=1");
  flags.AddString("sweep", &sweep_spec,
                  "sweep one what-if key over values, e.g. bandwidth=1,2,4,8");
  flags.AddString("overlay", &overlay_path,
                  "Chrome trace to overlay the critical path onto");
  flags.AddString("overlay_out", &overlay_out,
                  "output path for the overlay trace");
  flags.AddString("critpath_out", &critpath_out,
                  "write the colsgd.critpath/v1 report JSON here");
  flags.AddString("bench_out", &bench_out,
                  "write a BENCH suite (suite 'critpath') here for "
                  "colsgd_report gating");
  Status st = flags.Parse(argc, argv);
  if (st.ok() && dag_path.empty()) {
    st = Status::InvalidArgument("--dag is required");
  }
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    flags.PrintUsage(argv[0]);
    return 2;
  }

  Result<CritDag> dag_result = ReadCritDagFile(dag_path);
  if (!dag_result.ok()) {
    std::fprintf(stderr, "%s\n", dag_result.status().ToString().c_str());
    return 1;
  }
  const CritDag& dag = *dag_result;
  Result<CritPathResult> path_result = ExtractCriticalPath(dag);
  if (!path_result.ok()) {
    std::fprintf(stderr, "%s\n", path_result.status().ToString().c_str());
    return 1;
  }
  const CritPathResult& path = *path_result;
  const double conservation = std::fabs(path.PathLength() - path.makespan);

  std::printf(
      "%s: %zu ops, %u nodes (%d workers), fingerprint %08x\n", dag_path.c_str(),
      dag.ops.size(), dag.num_nodes, dag.num_workers, CritDagFingerprint(dag));
  std::printf(
      "makespan %.9fs on %s; path: %zu segments, length %.9fs "
      "(|path-makespan| = %.3g, unexplained gaps: %lld)\n",
      path.makespan, NodeName(dag, path.makespan_node).c_str(),
      path.steps.size(), path.PathLength(), conservation,
      static_cast<long long>(path.exact_misses));

  PrintBlame(dag, path);
  PrintTopSegments(dag, path, topk);

  if (!what_if_spec.empty()) {
    WhatIf w;
    st = ParseWhatIf(what_if_spec, dag.num_nodes, &w);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 2;
    }
    Result<RetimeResult> retimed = Retime(dag, w);
    if (!retimed.ok()) {
      std::fprintf(stderr, "%s\n", retimed.status().ToString().c_str());
      return 1;
    }
    std::printf("\nwhat-if [%s]: predicted makespan %.9fs (%.2f%% of "
                "recorded)\n",
                what_if_spec.c_str(), retimed->makespan,
                path.makespan > 0.0 ? 100.0 * retimed->makespan / path.makespan
                                    : 0.0);
  }

  if (!sweep_spec.empty()) {
    const size_t eq = sweep_spec.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr, "--sweep must be key=v1,v2,...\n");
      return 2;
    }
    const std::string key = sweep_spec.substr(0, eq);
    std::printf("\nsweep %s:\n  %-12s %14s %10s\n", key.c_str(), "value",
                "makespan", "vs base");
    size_t pos = eq + 1;
    while (pos <= sweep_spec.size()) {
      size_t comma = sweep_spec.find(',', pos);
      if (comma == std::string::npos) comma = sweep_spec.size();
      const std::string value = sweep_spec.substr(pos, comma - pos);
      pos = comma + 1;
      if (value.empty()) continue;
      WhatIf w;
      st = ParseWhatIf(what_if_spec, dag.num_nodes, &w);  // base spec first
      if (st.ok()) st = ApplyWhatIfEntry(key + "=" + value, dag.num_nodes, &w);
      if (!st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 2;
      }
      Result<RetimeResult> retimed = Retime(dag, w);
      if (!retimed.ok()) {
        std::fprintf(stderr, "%s\n", retimed.status().ToString().c_str());
        return 1;
      }
      std::printf("  %-12s %13.6fs %9.2f%%\n", value.c_str(),
                  retimed->makespan,
                  path.makespan > 0.0
                      ? 100.0 * retimed->makespan / path.makespan
                      : 0.0);
    }
  }

  if (!critpath_out.empty()) {
    st = WriteTextFile(critpath_out,
                       CritPathJson(dag, path, static_cast<int>(topk))
                               .Serialize() +
                           "\n");
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", critpath_out.c_str());
  }

  if (!overlay_path.empty() || !overlay_out.empty()) {
    if (overlay_path.empty() || overlay_out.empty()) {
      std::fprintf(stderr, "--overlay and --overlay_out go together\n");
      return 2;
    }
    Result<std::string> text = ReadTextFile(overlay_path);
    if (!text.ok()) {
      std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
      return 1;
    }
    Result<JsonValue> doc = ParseJson(*text);
    if (!doc.ok()) {
      std::fprintf(stderr, "%s\n", doc.status().ToString().c_str());
      return 1;
    }
    const JsonValue* events = doc->Find("traceEvents");
    if (events == nullptr || !events->is_array()) {
      std::fprintf(stderr, "%s: no traceEvents array\n", overlay_path.c_str());
      return 1;
    }
    // The overlay rides on a dedicated pid above every simulated node so
    // Perfetto shows it as its own process row.
    const uint32_t overlay_pid = dag.num_nodes + 1000;
    JsonValue out_events = *events;
    {
      JsonValue meta = JsonValue::Object();
      meta.Set("ph", JsonValue::String("M"));
      meta.Set("name", JsonValue::String("process_name"));
      meta.Set("pid", JsonValue::Number(overlay_pid));
      meta.Set("tid", JsonValue::Number(0));
      JsonValue args = JsonValue::Object();
      args.Set("name", JsonValue::String("critical path"));
      meta.Set("args", std::move(args));
      out_events.Append(std::move(meta));
    }
    for (const PathStep& step : path.steps) {
      if (step.length() <= 0.0) continue;
      JsonValue e = JsonValue::Object();
      e.Set("ph", JsonValue::String("X"));
      e.Set("name", JsonValue::String(BlameKindName(step.kind)));
      e.Set("pid", JsonValue::Number(overlay_pid));
      e.Set("tid", JsonValue::Number(0));
      e.Set("ts", JsonValue::Number(step.t0 * 1e6));
      e.Set("dur", JsonValue::Number(step.length() * 1e6));
      JsonValue args = JsonValue::Object();
      args.Set("node", JsonValue::Number(step.node));
      args.Set("blamed", JsonValue::String(NodeName(dag, step.node)));
      e.Set("args", std::move(args));
      out_events.Append(std::move(e));
    }
    JsonValue out_doc = JsonValue::Object();
    for (const auto& [key, value] : doc->members()) {
      if (key == "traceEvents") {
        out_doc.Set(key, std::move(out_events));
      } else {
        out_doc.Set(key, value);
      }
    }
    st = WriteTextFile(overlay_out, out_doc.Serialize() + "\n");
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s (%zu path segments overlaid)\n", overlay_out.c_str(),
                path.steps.size());
  }

  if (!bench_out.empty()) {
    BenchSuite suite;
    suite.suite = "critpath";
    suite.env["git"] = GitDescribe();
    suite.env["source"] = "colsgd_critpath";
    BenchResult* r = suite.AddResult("critpath/conservation");
    r->env["nodes"] = std::to_string(dag.num_nodes);
    r->env["workers"] = std::to_string(dag.num_workers);
    r->metrics["makespan_seconds"] = path.makespan;
    r->metrics["path_segments"] = static_cast<double>(path.steps.size());
    r->metrics["conservation_error"] = conservation;
    r->metrics["unexplained_gaps"] = static_cast<double>(path.exact_misses);
    for (int kind = 0; kind <= static_cast<int>(BlameKind::kExternal);
         ++kind) {
      r->metrics[std::string("blame_") +
                 BlameKindName(static_cast<BlameKind>(kind))] =
          path.BlameSeconds(static_cast<BlameKind>(kind));
    }
    st = WriteBenchSuite(suite, bench_out);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", bench_out.c_str());
  }

  if (check) {
    if (conservation > 1e-9 || path.exact_misses != 0) {
      std::fprintf(stderr,
                   "CHECK FAILED: |path - makespan| = %.3g (limit 1e-9), "
                   "unexplained gaps = %lld\n",
                   conservation, static_cast<long long>(path.exact_misses));
      return 1;
    }
    std::printf("\ncheck OK: path tiles the makespan to 1e-9 with no "
                "unexplained gaps\n");
  }
  return 0;
}

}  // namespace
}  // namespace colsgd

int main(int argc, char** argv) { return colsgd::Run(argc, argv); }
