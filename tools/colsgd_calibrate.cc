// colsgd_calibrate: measures the executed kernels on THIS host and writes a
// colsgd.kernelcal/v1 profile (DESIGN.md §12).
//
// The profile prices the simulator's counted FLOPs at the rate the real
// SpMV / scatter / dense kernels achieve here, closing the loop between the
// analytic cost model and the hardware underneath:
//
//   colsgd_calibrate --out host.kernelcal.json
//   colsgd_calibrate --mode simd --rows 8192 --out simd.kernelcal.json
//   colsgd_train --synthetic tiny --calibration host.kernelcal.json
//
// Profiles are (host, kernel-mode) artifacts — re-run the calibrator on
// every machine; never commit one as a golden.
#include <cstdio>

#include "common/flags.h"
#include "linalg/kernels/calibrate.h"
#include "linalg/kernels/thread_pool.h"

namespace colsgd {
namespace {

int Run(int argc, char** argv) {
  FlagParser flags;
  std::string out;
  std::string mode_name = "scalar";
  kernels::CalibratorOptions options;
  int64_t rows = static_cast<int64_t>(options.rows);
  int64_t features = static_cast<int64_t>(options.features);
  int64_t nnz_per_row = static_cast<int64_t>(options.nnz_per_row);
  int64_t dense_elements = static_cast<int64_t>(options.dense_elements);
  int64_t repeats = options.repeats;
  int64_t inner_iters = options.inner_iters;
  int64_t seed = static_cast<int64_t>(options.seed);
  int64_t threads = 0;

  flags.AddString("out", &out, "write the profile JSON here (required)");
  flags.AddString("mode", &mode_name,
                  "kernel mode to calibrate: scalar | simd | threaded");
  flags.AddInt64("rows", &rows, "calibration batch rows");
  flags.AddInt64("features", &features, "calibration model dimension");
  flags.AddInt64("nnz_per_row", &nnz_per_row, "non-zeros per synthetic row");
  flags.AddInt64("dense_elements", &dense_elements,
                 "dense kernel vector length");
  flags.AddInt64("repeats", &repeats, "timing repeats (minimum is kept)");
  flags.AddInt64("inner_iters", &inner_iters, "workload passes per repeat");
  flags.AddInt64("seed", &seed, "synthetic workload seed");
  flags.AddInt64("threads", &threads,
                 "threaded mode: pool worker threads (0: hardware default)");
  Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    flags.PrintUsage(argv[0]);
    return 2;
  }
  if (out.empty()) {
    std::fprintf(stderr, "--out is required\n");
    flags.PrintUsage(argv[0]);
    return 2;
  }
  kernels::KernelMode mode;
  if (!kernels::ParseKernelMode(mode_name, &mode)) {
    std::fprintf(stderr, "--mode must be scalar|simd|threaded, got '%s'\n",
                 mode_name.c_str());
    return 2;
  }
  if (threads > 0) kernels::SetKernelThreads(static_cast<int>(threads));

  options.rows = static_cast<size_t>(rows);
  options.features = static_cast<size_t>(features);
  options.nnz_per_row = static_cast<size_t>(nnz_per_row);
  options.dense_elements = static_cast<size_t>(dense_elements);
  options.repeats = static_cast<int>(repeats);
  options.inner_iters = static_cast<int>(inner_iters);
  options.seed = static_cast<uint64_t>(seed);

  const kernels::KernelCalibrator calibrator(options);
  std::printf("calibrating %s kernels: %lld rows x %lld nnz, dim %lld, "
              "dense %lld, %lld repeats x %lld passes...\n",
              kernels::KernelModeName(mode), static_cast<long long>(rows),
              static_cast<long long>(nnz_per_row),
              static_cast<long long>(features),
              static_cast<long long>(dense_elements),
              static_cast<long long>(repeats),
              static_cast<long long>(inner_iters));
  const kernels::CalibrationProfile profile = calibrator.Run(mode);
  if (!profile.Valid()) {
    std::fprintf(stderr,
                 "calibration produced a degenerate profile (a kernel timed "
                 "at <= 0); raise --inner_iters and retry\n");
    return 1;
  }

  std::printf("  forward SpMV      %10.4f ns/nnz\n", profile.ns_per_nnz_fwd);
  std::printf("  gradient scatter  %10.4f ns/nnz\n", profile.ns_per_nnz_grad);
  std::printf("  reduceStat add    %10.4f ns/element\n",
              profile.ns_per_element_dense);
  std::printf("  update sweep      %10.4f ns/element\n",
              profile.ns_per_element_update);
  std::printf("  counted-FLOP rate %10.4f GFLOP/s  (simulator charges at "
              "this rate)\n",
              profile.flops_per_second / 1e9);
  std::printf("  memory bandwidth  %10.4f GB/s\n",
              profile.mem_bandwidth_bytes_per_s / 1e9);

  Status save = kernels::SaveCalibrationProfile(profile, out);
  if (!save.ok()) {
    std::fprintf(stderr, "%s\n", save.ToString().c_str());
    return 1;
  }
  std::printf("profile written to %s (feed it back with "
              "--calibration=%s)\n",
              out.c_str(), out.c_str());
  return 0;
}

}  // namespace
}  // namespace colsgd

int main(int argc, char** argv) { return colsgd::Run(argc, argv); }
