// colsgd_trace: summarizes a Chrome trace-event JSON produced by
// colsgd_train --trace_out (or WriteChromeTrace). Prints the simulated span,
// the top-k master-timeline phases, and per-node traffic / NIC utilization —
// the quick look before opening the file in Perfetto. Example:
//
//   colsgd_train --synthetic tiny --engine columnsgd --trace_out t.json
//   colsgd_trace --trace t.json --topk 4
#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/csv.h"
#include "common/flags.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_reader.h"

namespace colsgd {
namespace {

// Matches TraceTrack in obs/trace.h: tid 1 is the master's phase timeline.
constexpr uint32_t kPhasesTid = 1;

struct NodeUsage {
  double out_busy = 0.0;  // seconds the outbound NIC was occupied
  double in_busy = 0.0;   // seconds the inbound NIC was occupied
  uint64_t bytes_out = 0;
  uint64_t bytes_in = 0;
  uint64_t messages_out = 0;
};

int Run(int argc, char** argv) {
  FlagParser flags;
  std::string trace_path;
  std::string phase_csv;
  int64_t topk = 5;
  flags.AddString("trace", &trace_path, "trace-event JSON file to summarize");
  flags.AddString("phase_csv", &phase_csv,
                  "write per-iteration phase breakdown CSV here");
  flags.AddInt64("topk", &topk, "phases to print, most expensive first");
  Status st = flags.Parse(argc, argv);
  if (st.ok() && trace_path.empty()) {
    st = Status::InvalidArgument("--trace is required");
  }
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    flags.PrintUsage(argv[0]);
    return 2;
  }

  Result<ParsedTrace> parsed = ReadChromeTraceFile(trace_path);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    return 1;
  }
  const ParsedTrace& trace = *parsed;
  if (trace.events.empty()) {
    std::printf("%s: empty trace\n", trace_path.c_str());
    return 0;
  }

  // Simulated span covered by the trace (microseconds in the file).
  double first_us = trace.events.front().ts_us;
  double last_us = first_us;
  for (const ParsedTraceEvent& event : trace.events) {
    first_us = std::min(first_us, event.ts_us);
    last_us = std::max(last_us, event.ts_us + event.dur_us);
  }
  const double span = (last_us - first_us) * 1e-6;

  // Master-timeline phases (tid 1 'X' events; "iteration" wraps them).
  // Each phase also gets a duration histogram so the summary can show the
  // spread (p50/p95/p99) across occurrences, not just the total.
  std::map<std::string, double> phase_seconds;
  MetricsRegistry registry;
  int64_t iterations = 0;
  std::map<uint32_t, NodeUsage> usage;
  // Named spans on the per-node event tracks (tid 0): serve.*, recovery.*,
  // checkpoint — everything RecordSpan emits besides the bulk
  // compute / mem.touch / net.send machinery.
  struct SpanStats {
    double seconds = 0.0;
    int64_t count = 0;
  };
  std::map<std::string, SpanStats> spans;
  // Per-iteration phase rows for --phase_csv, keyed by iteration number.
  struct IterationRow {
    double start_us = 0.0;
    double end_us = 0.0;
    std::map<std::string, double> phases;
  };
  std::map<int64_t, IterationRow> iteration_rows;
  for (const ParsedTraceEvent& event : trace.events) {
    if (event.tid == kPhasesTid && event.ph == 'X') {
      const int64_t iteration =
          static_cast<int64_t>(event.ArgUint("iteration"));
      if (event.name == "iteration") {
        ++iterations;
        IterationRow& row = iteration_rows[iteration];
        row.start_us = event.ts_us;
        row.end_us = event.ts_us + event.dur_us;
      } else {
        phase_seconds[event.name] += event.dur_us * 1e-6;
        registry.GetHistogram(event.name)->Observe(event.dur_us * 1e-6);
        iteration_rows[iteration].phases[event.name] += event.dur_us * 1e-6;
      }
      continue;
    }
    if (event.ph == 'X' && event.name != "net.send" &&
        event.name != "compute" && event.name != "mem.touch") {
      SpanStats& s = spans[event.name];
      s.seconds += event.dur_us * 1e-6;
      s.count++;
      registry.GetHistogram("span." + event.name)
          ->Observe(event.dur_us * 1e-6);
    }
    if (event.name == "net.send" && event.ph == 'X') {
      const uint64_t bytes = event.ArgUint("bytes");
      const uint32_t to = static_cast<uint32_t>(event.ArgUint("to"));
      NodeUsage& sender = usage[event.pid];
      sender.out_busy += event.dur_us * 1e-6;
      sender.bytes_out += bytes;
      sender.messages_out++;
      NodeUsage& receiver = usage[to];
      receiver.bytes_in += bytes;
      // Control messages bypass the inbound NIC queue (rx_start == rx_done).
      // rx_* args are microseconds, like ts/dur.
      receiver.in_busy +=
          (event.ArgDouble("rx_done") - event.ArgDouble("rx_start")) * 1e-6;
    }
  }

  std::printf("%s: %zu events, %.6fs simulated span, %lld iterations\n",
              trace_path.c_str(), trace.events.size(), span,
              static_cast<long long>(iterations));

  std::vector<std::pair<std::string, double>> phases(phase_seconds.begin(),
                                                     phase_seconds.end());
  std::sort(phases.begin(), phases.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  double phase_total = 0.0;
  for (const auto& [name, seconds] : phases) phase_total += seconds;
  if (!phases.empty()) {
    std::printf("\ntop phases (master clock):\n");
    std::printf("  %-14s %12s %8s %12s %12s %12s\n", "phase", "total", "share",
                "p50", "p95", "p99");
    const size_t n =
        std::min(phases.size(), static_cast<size_t>(std::max<int64_t>(
                                    topk, 0)));
    // Always surface staleness waits and serving phases, even when they fall
    // below the top-k cut — they are what the summary is usually asked for.
    std::set<size_t> shown;
    for (size_t i = 0; i < n; ++i) shown.insert(i);
    for (size_t i = n; i < phases.size(); ++i) {
      if (phases[i].first == "ssp.wait" ||
          phases[i].first.rfind("serve.", 0) == 0) {
        shown.insert(i);
      }
    }
    for (size_t i : shown) {
      const Histogram* h = registry.GetHistogram(phases[i].first);
      std::printf("  %-14s %11.6fs %7.1f%% %11.6fs %11.6fs %11.6fs\n",
                  phases[i].first.c_str(), phases[i].second,
                  100.0 * phases[i].second / phase_total, h->p50(), h->p95(),
                  h->p99());
    }
  }

  if (!spans.empty()) {
    std::printf("\nnamed spans (serve / recovery / checkpoint):\n");
    std::printf("  %-24s %8s %12s %12s %12s %12s\n", "span", "count", "total",
                "p50", "p95", "p99");
    for (const auto& [name, s] : spans) {
      const Histogram* h = registry.GetHistogram("span." + name);
      std::printf("  %-24s %8lld %11.6fs %11.6fs %11.6fs %11.6fs\n",
                  name.c_str(), static_cast<long long>(s.count), s.seconds,
                  h->p50(), h->p95(), h->p99());
    }
    // The failover split: how much of each outage was the detection window
    // (heartbeat / reply-timeout bound) vs the re-install shipment.
    const auto detect = spans.find("serve.failover.detect");
    const auto reinstall = spans.find("serve.failover.reinstall");
    if (detect != spans.end() && reinstall != spans.end()) {
      const double outage = detect->second.seconds + reinstall->second.seconds;
      std::printf("  failover outage split: %.1f%% detection, %.1f%% "
                  "re-install (%.6fs total)\n",
                  outage > 0.0 ? 100.0 * detect->second.seconds / outage : 0.0,
                  outage > 0.0
                      ? 100.0 * reinstall->second.seconds / outage
                      : 0.0,
                  outage);
    }
  }

  if (!usage.empty()) {
    std::printf("\nper-node NIC utilization over the span:\n");
    std::printf("  %-10s %8s %8s %14s %14s %9s\n", "node", "out%", "in%",
                "bytes_out", "bytes_in", "msgs_out");
    for (const auto& [node, u] : usage) {
      const auto name_it = trace.process_names.find(node);
      const std::string name = name_it != trace.process_names.end()
                                   ? name_it->second
                                   : "node " + std::to_string(node);
      std::printf("  %-10s %7.1f%% %7.1f%% %14llu %14llu %9llu\n",
                  name.c_str(), span > 0.0 ? 100.0 * u.out_busy / span : 0.0,
                  span > 0.0 ? 100.0 * u.in_busy / span : 0.0,
                  static_cast<unsigned long long>(u.bytes_out),
                  static_cast<unsigned long long>(u.bytes_in),
                  static_cast<unsigned long long>(u.messages_out));
    }
  }

  if (!phase_csv.empty()) {
    // Same shape as colsgd_train --phase_csv (obs/export.h), rebuilt from
    // the trace so an archived trace file is enough to get the breakdown.
    CsvWriter csv;
    std::vector<std::string> header = {"iteration", "start", "end"};
    for (int p = 0; p < static_cast<int>(Phase::kNumPhases); ++p) {
      header.push_back(PhaseName(static_cast<Phase>(p)));
    }
    header.push_back("total");
    Status csv_st = csv.Open(phase_csv, header);
    if (!csv_st.ok()) {
      std::fprintf(stderr, "%s\n", csv_st.ToString().c_str());
      return 1;
    }
    for (const auto& [iteration, row] : iteration_rows) {
      std::vector<double> cells = {static_cast<double>(iteration),
                                   row.start_us * 1e-6, row.end_us * 1e-6};
      double total = 0.0;
      for (int p = 0; p < static_cast<int>(Phase::kNumPhases); ++p) {
        const auto it = row.phases.find(PhaseName(static_cast<Phase>(p)));
        const double seconds = it != row.phases.end() ? it->second : 0.0;
        cells.push_back(seconds);
        total += seconds;
      }
      cells.push_back(total);
      csv.WriteNumericRow(cells);
    }
    std::printf("\nphase CSV written to %s (%zu iterations)\n",
                phase_csv.c_str(), iteration_rows.size());
  }
  return 0;
}

}  // namespace
}  // namespace colsgd

int main(int argc, char** argv) { return colsgd::Run(argc, argv); }
