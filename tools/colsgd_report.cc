// colsgd_report: compares benchmark telemetry (BENCH_*.json suites, written
// by the bench binaries via bench::BenchRunner) against checked-in baselines
// and fails on regressions. This is the CI perf/convergence gate. Examples:
//
//   colsgd_report bench/baselines/BENCH_fig8_convergence.json \
//                 BENCH_fig8_convergence.json
//   colsgd_report bench/baselines .          # pair up BENCH_*.json by name
//   colsgd_report --check BENCH_*.json       # schema validation only
//   colsgd_report --threshold 0.05 --rule final_loss=0.02 old.json new.json
//
// Exit codes: 0 no regression, 1 regression detected, 2 usage or parse error.
//
// The flag grammar is hand-rolled (common/flags.h rejects positional
// arguments, and the two suite paths are naturally positional).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "obs/bench/report.h"

namespace colsgd {
namespace {

namespace fs = std::filesystem;

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options] OLD NEW\n"
      "       %s --check FILE...\n"
      "\n"
      "OLD and NEW are BENCH_*.json files, or directories holding them\n"
      "(paired up by file name). All metrics are lower-is-better; NEW\n"
      "regresses when new > old * (1 + threshold) and the delta exceeds\n"
      "the absolute epsilon.\n"
      "\n"
      "options:\n"
      "  --check            validate files (schema + parse) instead of\n"
      "                     comparing; exits 2 on the first invalid file\n"
      "  --threshold F      global relative threshold (default 0.10)\n"
      "  --abs_epsilon F    absolute slack, guards near-zero metrics\n"
      "                     (default 1e-9)\n"
      "  --rule SUB=F       per-metric threshold: applies to metrics whose\n"
      "                     name contains SUB; repeatable, first match wins\n"
      "exit codes: 0 ok, 1 regression, 2 usage/parse error\n",
      argv0, argv0);
  return 2;
}

bool ParseDoubleArg(const std::string& text, double* value) {
  char* end = nullptr;
  *value = std::strtod(text.c_str(), &end);
  return end != nullptr && *end == '\0' && end != text.c_str();
}

/// BENCH_*.json entries of `dir`, sorted by file name.
std::vector<std::string> ListBenchFiles(const fs::path& dir) {
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind("BENCH_", 0) == 0 && name.size() > 5 &&
        name.compare(name.size() - 5, 5, ".json") == 0) {
      names.push_back(name);
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

int CheckFiles(const std::vector<std::string>& paths) {
  if (paths.empty()) {
    std::fprintf(stderr, "--check: no files given\n");
    return 2;
  }
  for (const std::string& path : paths) {
    Result<BenchSuite> suite = ReadBenchSuiteFile(path);
    if (!suite.ok()) {
      std::fprintf(stderr, "%s\n", suite.status().ToString().c_str());
      return 2;
    }
    std::printf("%s: ok (suite '%s', %zu results)\n", path.c_str(),
                suite->suite.c_str(), suite->results.size());
  }
  return 0;
}

/// Compares one old/new file pair; prints the report. Returns 0/1/2.
int CompareFiles(const std::string& old_path, const std::string& new_path,
                 const ReportOptions& options) {
  Result<BenchSuite> old_suite = ReadBenchSuiteFile(old_path);
  if (!old_suite.ok()) {
    std::fprintf(stderr, "%s\n", old_suite.status().ToString().c_str());
    return 2;
  }
  Result<BenchSuite> new_suite = ReadBenchSuiteFile(new_path);
  if (!new_suite.ok()) {
    std::fprintf(stderr, "%s\n", new_suite.status().ToString().c_str());
    return 2;
  }
  const SuiteReport report = CompareSuites(*old_suite, *new_suite, options);
  std::printf("comparing %s (old) vs %s (new)\n", old_path.c_str(),
              new_path.c_str());
  std::fputs(RenderReport(report, *new_suite).c_str(), stdout);
  return report.regression ? 1 : 0;
}

int Run(int argc, char** argv) {
  ReportOptions options;
  bool check_mode = false;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s wants a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      return Usage(argv[0]);
    } else if (arg == "--check") {
      check_mode = true;
    } else if (arg == "--threshold") {
      const char* value = next("--threshold");
      if (value == nullptr || !ParseDoubleArg(value, &options.threshold)) {
        return Usage(argv[0]);
      }
    } else if (arg == "--abs_epsilon") {
      const char* value = next("--abs_epsilon");
      if (value == nullptr || !ParseDoubleArg(value, &options.abs_epsilon)) {
        return Usage(argv[0]);
      }
    } else if (arg == "--rule") {
      const char* value = next("--rule");
      if (value == nullptr) return Usage(argv[0]);
      const std::string rule_text = value;
      const size_t eq = rule_text.rfind('=');
      ThresholdRule rule;
      if (eq == std::string::npos || eq == 0 ||
          !ParseDoubleArg(rule_text.substr(eq + 1), &rule.threshold)) {
        std::fprintf(stderr, "--rule wants SUBSTRING=THRESHOLD, got '%s'\n",
                     rule_text.c_str());
        return 2;
      }
      rule.substring = rule_text.substr(0, eq);
      options.rules.push_back(std::move(rule));
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return Usage(argv[0]);
    } else {
      positional.push_back(arg);
    }
  }

  if (check_mode) return CheckFiles(positional);
  if (positional.size() != 2) return Usage(argv[0]);

  const fs::path old_path = positional[0];
  const fs::path new_path = positional[1];
  const bool old_is_dir = fs::is_directory(old_path);
  const bool new_is_dir = fs::is_directory(new_path);
  if (old_is_dir != new_is_dir) {
    std::fprintf(stderr,
                 "OLD and NEW must both be files or both directories\n");
    return 2;
  }
  if (!old_is_dir) {
    return CompareFiles(old_path.string(), new_path.string(), options);
  }

  // Directory trajectory: every baseline suite must exist and pass in NEW;
  // suites only present in NEW are informational.
  const std::vector<std::string> old_files = ListBenchFiles(old_path);
  const std::vector<std::string> new_files = ListBenchFiles(new_path);
  if (old_files.empty()) {
    std::fprintf(stderr, "no BENCH_*.json files under %s\n",
                 old_path.string().c_str());
    return 2;
  }
  int exit_code = 0;
  for (const std::string& name : old_files) {
    if (!fs::exists(new_path / name)) {
      std::printf("MISSING suite %s: present in %s, absent in %s\n",
                  name.c_str(), old_path.string().c_str(),
                  new_path.string().c_str());
      exit_code = std::max(exit_code, 1);
      continue;
    }
    const int rc = CompareFiles((old_path / name).string(),
                                (new_path / name).string(), options);
    exit_code = std::max(exit_code, rc);
    std::printf("\n");
  }
  for (const std::string& name : new_files) {
    if (std::find(old_files.begin(), old_files.end(), name) ==
        old_files.end()) {
      std::printf("note: suite %s has no baseline (not gated)\n",
                  name.c_str());
    }
  }
  return exit_code;
}

}  // namespace
}  // namespace colsgd

int main(int argc, char** argv) { return colsgd::Run(argc, argv); }
