// colsgd_predict: evaluate a saved model on a libsvm dataset.
//
//   colsgd_train --data train.libsvm --save_model model.bin ...
//   colsgd_predict --model_file model.bin --data test.libsvm
//
// Scoring goes through the column-sharded inference kernel shared with the
// online serving plane (serve/inference.h) — by default single-shard, which
// reproduces the row path bit-for-bit for GLMs; --shards N scores against
// an N-way column split, the exact math the shard servers run online
// (tests/serve_test.cc golden-compares the two paths). Accepts any model
// that can score from aggregated statistics, MLR included (for which the
// score is the argmax class id and AUC is not reported).
//
// Prints accuracy, AUC and average loss for binary models; writes per-row
// scores with --scores_csv.
#include <cstdio>

#include "common/csv.h"
#include "common/flags.h"
#include "engine/metrics.h"
#include "engine/model_io.h"
#include "serve/inference.h"
#include "storage/libsvm.h"

namespace colsgd {
namespace {

int Run(int argc, char** argv) {
  FlagParser flags;
  std::string model_file;
  std::string data_path;
  std::string scores_csv;
  std::string partitioner = "round_robin";
  int64_t shards = 1;
  bool zero_based = false;
  flags.AddString("model_file", &model_file, "model from colsgd_train");
  flags.AddString("data", &data_path, "libsvm data to score");
  flags.AddBool("zero_based", &zero_based, "libsvm indices are 0-based");
  flags.AddInt64("shards", &shards, "column shards to score against");
  flags.AddString("partitioner", &partitioner, "column partitioner");
  flags.AddString("scores_csv", &scores_csv, "write per-row scores here");
  Status st = flags.Parse(argc, argv);
  if (!st.ok() || model_file.empty() || data_path.empty()) {
    if (!st.ok()) std::fprintf(stderr, "%s\n", st.ToString().c_str());
    flags.PrintUsage(argv[0]);
    return 2;
  }

  Result<SavedModel> saved = ReadModelFile(model_file);
  if (!saved.ok()) {
    std::fprintf(stderr, "%s\n", saved.status().ToString().c_str());
    return 1;
  }
  Result<Dataset> data =
      ReadLibsvmFile(data_path, zero_based, saved->num_features);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }

  Result<DatasetScores> scored =
      ScoreDatasetSharded(*saved, partitioner, static_cast<int>(shards),
                          *data, data->num_rows());
  if (!scored.ok()) {
    std::fprintf(stderr, "%s\n", scored.status().ToString().c_str());
    return 1;
  }
  const DatasetScores& result = *scored;

  const bool multiclass = saved->model_name.rfind("mlr", 0) == 0;
  size_t correct = 0;
  for (size_t i = 0; i < result.rows; ++i) {
    if (multiclass) {
      // MLR scores are argmax class ids; labels are class ids.
      correct += result.scores[i] ==
                 static_cast<double>(data->labels[i]);
    } else {
      const double margin =
          result.scores[i] * static_cast<double>(data->labels[i]);
      correct += margin > 0.0;
    }
  }
  const double accuracy =
      result.rows > 0 ? static_cast<double>(correct) /
                            static_cast<double>(result.rows)
                      : 0.0;
  if (multiclass) {
    std::printf("%s over %zu rows (%lld shard(s)): accuracy %.4f, "
                "avg loss %.4f\n",
                saved->model_name.c_str(), result.rows,
                static_cast<long long>(shards), accuracy, result.avg_loss);
  } else {
    const double auc = AreaUnderRoc(result.scores, data->labels);
    std::printf("%s over %zu rows (%lld shard(s)): accuracy %.4f, "
                "AUC %.4f, avg loss %.4f\n",
                saved->model_name.c_str(), result.rows,
                static_cast<long long>(shards), accuracy, auc,
                result.avg_loss);
  }

  if (!scores_csv.empty()) {
    CsvWriter csv;
    Status csv_st = csv.Open(scores_csv, {"row", "label", "score"});
    if (!csv_st.ok()) {
      std::fprintf(stderr, "%s\n", csv_st.ToString().c_str());
      return 1;
    }
    for (size_t i = 0; i < result.rows; ++i) {
      csv.WriteNumericRow({static_cast<double>(i),
                           static_cast<double>(data->labels[i]),
                           result.scores[i]});
    }
    std::printf("scores written to %s\n", scores_csv.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace colsgd

int main(int argc, char** argv) { return colsgd::Run(argc, argv); }
