// colsgd_predict: evaluate a saved model on a libsvm dataset.
//
//   colsgd_train --data train.libsvm --save_model model.bin ...
//   colsgd_predict --model_file model.bin --data test.libsvm
//
// Prints accuracy, AUC and average loss for binary models; writes per-row
// scores with --scores_csv.
#include <cstdio>

#include "common/csv.h"
#include "common/flags.h"
#include "engine/metrics.h"
#include "engine/model_io.h"
#include "model/factory.h"
#include "storage/libsvm.h"

namespace colsgd {
namespace {

int Run(int argc, char** argv) {
  FlagParser flags;
  std::string model_file;
  std::string data_path;
  std::string scores_csv;
  bool zero_based = false;
  flags.AddString("model_file", &model_file, "model from colsgd_train");
  flags.AddString("data", &data_path, "libsvm data to score");
  flags.AddBool("zero_based", &zero_based, "libsvm indices are 0-based");
  flags.AddString("scores_csv", &scores_csv, "write per-row scores here");
  Status st = flags.Parse(argc, argv);
  if (!st.ok() || model_file.empty() || data_path.empty()) {
    if (!st.ok()) std::fprintf(stderr, "%s\n", st.ToString().c_str());
    flags.PrintUsage(argv[0]);
    return 2;
  }

  Result<SavedModel> saved = ReadModelFile(model_file);
  if (!saved.ok()) {
    std::fprintf(stderr, "%s\n", saved.status().ToString().c_str());
    return 1;
  }
  Result<Dataset> data =
      ReadLibsvmFile(data_path, zero_based, saved->num_features);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }

  auto model = MakeModel(saved->model_name);
  if (!model->SupportsRowPath()) {
    std::fprintf(stderr,
                 "%s is a column-framework-only model; scoring it needs the "
                 "engine's statistics path, not this tool\n",
                 saved->model_name.c_str());
    return 1;
  }
  const BinaryMetrics metrics = EvaluateBinaryMetrics(
      *model, saved->weights, *data, data->num_rows());
  std::printf(
      "%s over %zu rows: accuracy %.4f, AUC %.4f, avg loss %.4f\n",
      saved->model_name.c_str(), metrics.rows, metrics.accuracy, metrics.auc,
      metrics.avg_loss);

  if (!scores_csv.empty()) {
    CsvWriter csv;
    Status csv_st = csv.Open(scores_csv, {"row", "label", "score"});
    if (!csv_st.ok()) {
      std::fprintf(stderr, "%s\n", csv_st.ToString().c_str());
      return 1;
    }
    for (size_t i = 0; i < data->num_rows(); ++i) {
      csv.WriteNumericRow({static_cast<double>(i),
                           static_cast<double>(data->labels[i]),
                           model->RowScore(data->rows.Row(i),
                                           saved->weights)});
    }
    std::printf("scores written to %s\n", scores_csv.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace colsgd

int main(int argc, char** argv) { return colsgd::Run(argc, argv); }
