// colsgd_train: command-line training driver.
//
// Trains any supported model with any engine on either a libsvm file or a
// synthetic dataset, on a simulated cluster, and reports the loss trace and
// cost summary. Examples:
//
//   colsgd_train --data train.libsvm --model lr --engine columnsgd
//   colsgd_train --synthetic kddb-sim --model fm10 --engine mxnet \
//                --iterations 500 --batch_size 1000 --lr 1.0
//   colsgd_train --synthetic avazu-sim --engine columnsgd --workers 16 \
//                --optimizer adam --lr 0.01 --trace_csv trace.csv
//   colsgd_train --synthetic tiny --engine columnsgd --staleness 2
#include <cstdio>
#include <cstdlib>

#include <fstream>

#include "common/csv.h"
#include "common/flags.h"
#include "datagen/synthetic.h"
#include "engine/columnsgd.h"
#include "engine/model_io.h"
#include "engine/trainer.h"
#include "linalg/kernels/calibrate.h"
#include "linalg/kernels/kernels.h"
#include "obs/bench/bench_result.h"
#include "obs/critpath/dag_json.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "storage/libsvm.h"

namespace colsgd {
namespace {

/// Parses "iter:worker[,iter:worker...]" into scripted worker failures.
Result<std::vector<FaultEvent>> ParseFailWorker(const std::string& spec) {
  std::vector<FaultEvent> events;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(pos, comma - pos);
    const size_t colon = item.find(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument("--fail_worker wants iter:worker, got '" +
                                     item + "'");
    }
    FaultEvent event;
    event.iteration = std::atoll(item.substr(0, colon).c_str());
    event.worker = std::atoi(item.substr(colon + 1).c_str());
    event.kind = FaultKind::kWorkerFailure;
    events.push_back(event);
    pos = comma + 1;
  }
  return events;
}

/// Parses "start:len:w0+w1[,start:len:w2...]" into partition windows: for
/// `len` iterations starting at `start`, the '+'-joined workers are severed
/// from everyone else.
Result<std::vector<NetworkPartitionSpec>> ParsePartitionSpec(
    const std::string& spec) {
  std::vector<NetworkPartitionSpec> partitions;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(pos, comma - pos);
    const size_t first = item.find(':');
    const size_t second =
        first == std::string::npos ? std::string::npos
                                   : item.find(':', first + 1);
    if (second == std::string::npos) {
      return Status::InvalidArgument(
          "--partition_spec wants start:len:w0+w1[,...], got '" + item + "'");
    }
    NetworkPartitionSpec partition;
    partition.start_iteration = std::atoll(item.substr(0, first).c_str());
    partition.iterations =
        std::atoll(item.substr(first + 1, second - first - 1).c_str());
    size_t wpos = second + 1;
    while (wpos <= item.size()) {
      size_t plus = item.find('+', wpos);
      if (plus == std::string::npos) plus = item.size();
      if (plus == wpos) {
        return Status::InvalidArgument(
            "--partition_spec has an empty worker id in '" + item + "'");
      }
      partition.side_a.push_back(std::atoi(item.substr(wpos, plus - wpos).c_str()));
      wpos = plus + 1;
    }
    partitions.push_back(std::move(partition));
    pos = comma + 1;
  }
  return partitions;
}

/// Parses "grow@iter[:rank][,shrink@iter[:worker]...]" into scripted
/// membership changes; the optional ':rank' pins the target, otherwise the
/// engine auto-picks (shrink: highest active, grow: lowest inactive).
Result<std::vector<MembershipChange>> ParseMembershipSpec(
    const std::string& spec) {
  std::vector<MembershipChange> changes;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(pos, comma - pos);
    const size_t at = item.find('@');
    if (at == std::string::npos) {
      return Status::InvalidArgument(
          "--membership_spec wants kind@iter[:worker], got '" + item + "'");
    }
    MembershipChange change;
    const std::string kind = item.substr(0, at);
    if (kind == "grow") {
      change.kind = MembershipChange::Kind::kGrow;
    } else if (kind == "shrink") {
      change.kind = MembershipChange::Kind::kShrink;
    } else {
      return Status::InvalidArgument(
          "--membership_spec kind must be grow|shrink, got '" + kind + "'");
    }
    const size_t colon = item.find(':', at + 1);
    const size_t iter_end = colon == std::string::npos ? item.size() : colon;
    change.iteration =
        std::atoll(item.substr(at + 1, iter_end - at - 1).c_str());
    if (colon != std::string::npos) {
      change.worker = std::atoi(item.substr(colon + 1).c_str());
    }
    changes.push_back(change);
    pos = comma + 1;
  }
  return changes;
}

Result<Dataset> LoadData(const std::string& data_path,
                         const std::string& synthetic, bool zero_based) {
  if (!data_path.empty()) {
    return ReadLibsvmFile(data_path, zero_based);
  }
  if (synthetic == "avazu-sim") return GenerateSynthetic(AvazuSimSpec());
  if (synthetic == "kddb-sim") return GenerateSynthetic(KddbSimSpec());
  if (synthetic == "kdd12-sim") return GenerateSynthetic(Kdd12SimSpec());
  if (synthetic == "wx-sim") return GenerateSynthetic(WxSimSpec());
  if (synthetic == "tiny") return GenerateSynthetic(TinySpec());
  return Status::InvalidArgument(
      "pass --data <libsvm file> or --synthetic "
      "{avazu-sim,kddb-sim,kdd12-sim,wx-sim,tiny}");
}

int Run(int argc, char** argv) {
  FlagParser flags;
  std::string data_path;
  std::string synthetic = "tiny";
  bool zero_based = false;
  std::string engine_name = "columnsgd";
  std::string model = "lr";
  std::string optimizer = "sgd";
  std::string partitioner = "round_robin";
  std::string trace_csv;
  double lr = 1.0;
  double l2 = 0.0;
  int64_t batch_size = 1000;
  int64_t iterations = 200;
  int64_t workers = 8;
  int64_t block_rows = 1024;
  int64_t eval_every = 50;
  int64_t seed = 13;
  bool cluster2 = false;

  flags.AddString("data", &data_path, "libsvm training file");
  flags.AddBool("zero_based", &zero_based, "libsvm indices are 0-based");
  flags.AddString("synthetic", &synthetic,
                  "synthetic dataset preset when --data is not given");
  flags.AddString("engine", &engine_name,
                  "columnsgd | mllib | mllib_star | petuum | mxnet");
  flags.AddString("model", &model, "lr | svm | lsq | mlr<C> | fm<F> | mlp<H>");
  flags.AddString("optimizer", &optimizer, "sgd | adagrad | adam");
  flags.AddString("partitioner", &partitioner,
                  "round_robin | range | block_cyclic_<chunk>");
  flags.AddDouble("lr", &lr, "learning rate");
  flags.AddDouble("l2", &l2, "L2 regularization strength");
  flags.AddInt64("batch_size", &batch_size, "SGD mini-batch size");
  flags.AddInt64("iterations", &iterations, "SGD iterations");
  flags.AddInt64("workers", &workers, "simulated workers");
  flags.AddInt64("block_rows", &block_rows, "rows per dispatched block");
  flags.AddInt64("eval_every", &eval_every,
                 "exact-loss evaluation period (0: never)");
  flags.AddInt64("seed", &seed, "random seed");
  flags.AddBool("cluster2", &cluster2,
                "use the 10 Gbps Cluster 2 preset instead of Cluster 1");
  flags.AddString("trace_csv", &trace_csv, "write the loss trace to this CSV");
  std::string trace_out;
  std::string phase_csv;
  std::string metrics_out;
  std::string dag_out;
  std::string fail_worker;
  double worker_mtbf_iters = 0.0;
  int64_t checkpoint_every = 0;
  double drop_prob = 0.0;
  double corrupt_prob = 0.0;
  std::string partition_spec;
  int64_t chaos_seed = -1;
  int64_t replication = -1;
  int64_t max_workers = 0;
  std::string membership_spec;
  flags.AddString("trace_out", &trace_out,
                  "write a Chrome trace-event JSON of the run (open in "
                  "Perfetto / chrome://tracing)");
  flags.AddString("phase_csv", &phase_csv,
                  "write the per-iteration phase breakdown to this CSV");
  flags.AddString("metrics_out", &metrics_out,
                  "dump the aggregated metrics registry as JSON to this file");
  flags.AddString("dag_out", &dag_out,
                  "record the causal critical-path DAG and write it as "
                  "colsgd.critdag/v1 JSON (analyze with colsgd_critpath)");
  flags.AddString("fail_worker", &fail_worker,
                  "scripted worker failures, 'iter:worker[,iter:worker...]'");
  flags.AddDouble("worker_mtbf_iters", &worker_mtbf_iters,
                  "mean iterations between worker failures (0: none)");
  flags.AddInt64("checkpoint_every", &checkpoint_every,
                 "checkpoint period in iterations (0: never)");
  flags.AddDouble("drop_prob", &drop_prob,
                  "per-message data-plane drop probability (0: none)");
  flags.AddDouble("corrupt_prob", &corrupt_prob,
                  "per-message bit-flip probability; corrupted frames are "
                  "caught by the CRC32C check and retransmitted (0: none)");
  flags.AddString("partition_spec", &partition_spec,
                  "network partition windows, "
                  "'start:len:w0+w1[,start:len:w2...]'");
  flags.AddInt64("chaos_seed", &chaos_seed,
                 "fault-plan seed for drop/corrupt/partition draws "
                 "(-1: reuse --seed)");
  flags.AddInt64("replication", &replication,
                 "elastic membership: extra in-memory copies per block (r); "
                 ">= 0 enables the block-replicated elastic path (-1: off "
                 "unless --membership_spec is given, then r defaults to 1)");
  flags.AddInt64("max_workers", &max_workers,
                 "elastic membership: pre-provisioned spare ranks a grow "
                 "can activate (0: no spares beyond --workers)");
  flags.AddString("membership_spec", &membership_spec,
                  "scripted grow/shrink events, "
                  "'grow@iter[:rank][,shrink@iter[:worker]...]'");
  int64_t staleness = -1;
  double ssp_jitter = 0.0;
  flags.AddInt64("staleness", &staleness,
                 "bounded-staleness slack s (DESIGN.md §15): workers may run "
                 "up to s iterations ahead of the slowest; 0 is pipelined "
                 "BSP (bitwise-identical weights), -1 disables SSP");
  flags.AddDouble("ssp_jitter", &ssp_jitter,
                  "SSP: deterministic per-(iteration, worker) compute-time "
                  "jitter fraction in [0, x)");
  std::string kernel_mode = "scalar";
  std::string calibration_path;
  flags.AddString("kernel", &kernel_mode,
                  "executed kernel mode (DESIGN.md §18): scalar | simd | "
                  "threaded; trained weights are bitwise-identical across "
                  "modes");
  flags.AddString("calibration", &calibration_path,
                  "price simulated compute at the measured kernel rates "
                  "from this colsgd_calibrate profile instead of the "
                  "cluster preset");
  std::string save_model;
  flags.AddString("save_model", &save_model,
                  "write the trained model to this file (colsgd_predict "
                  "reads it)");
  Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    flags.PrintUsage(argv[0]);
    return 2;
  }

  Result<Dataset> data = LoadData(data_path, synthetic, zero_based);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  const Dataset& dataset = *data;
  std::printf("data: %zu rows, %llu features, %.1f nnz/row (rho=%.6f)\n",
              dataset.num_rows(),
              static_cast<unsigned long long>(dataset.num_features),
              dataset.AvgNnzPerRow(), dataset.Sparsity());

  kernels::KernelMode kmode;
  if (!kernels::ParseKernelMode(kernel_mode, &kmode)) {
    std::fprintf(stderr, "--kernel must be scalar|simd|threaded, got '%s'\n",
                 kernel_mode.c_str());
    return 2;
  }
  kernels::SetMode(kmode);

  ClusterSpec cluster = cluster2
                            ? ClusterSpec::Cluster2(static_cast<int>(workers))
                            : ClusterSpec::Cluster1();
  cluster.num_workers = static_cast<int>(workers);
  if (max_workers > 0) cluster.max_workers = static_cast<int>(max_workers);

  kernels::CalibrationProfile calibration;
  if (!calibration_path.empty()) {
    Result<kernels::CalibrationProfile> loaded =
        kernels::LoadCalibrationProfile(calibration_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 2;
    }
    calibration = *loaded;
    // Price counted FLOPs (and framed memory moves) at the measured rates.
    cluster.compute = kernels::ComputeModelFromCalibration(calibration);
    cluster.mem_bandwidth = calibration.mem_bandwidth_bytes_per_s;
  }

  TrainConfig config;
  config.model = model;
  config.optimizer = optimizer;
  config.learning_rate = lr;
  config.reg.l2 = l2;
  config.batch_size = static_cast<size_t>(batch_size);
  config.block_rows = static_cast<size_t>(block_rows);
  config.partitioner = partitioner;
  config.seed = static_cast<uint64_t>(seed);
  if (replication >= 0 || !membership_spec.empty()) {
    config.elastic.enabled = true;
    if (replication >= 0) {
      config.elastic.replication = static_cast<int>(replication);
    }
  }
  if (staleness >= 0) {
    config.ssp.enabled = true;
    config.ssp.slack = static_cast<int>(staleness);
    config.ssp.compute_jitter = ssp_jitter;
  }

  auto engine = MakeEngine(engine_name, cluster, config);

  const bool faults_requested =
      !fail_worker.empty() || worker_mtbf_iters > 0.0 ||
      checkpoint_every > 0 || drop_prob > 0.0 || corrupt_prob > 0.0 ||
      !partition_spec.empty() || !membership_spec.empty();
  if (faults_requested) {
    FaultPlanConfig plan;
    plan.seed = chaos_seed >= 0 ? static_cast<uint64_t>(chaos_seed)
                                : static_cast<uint64_t>(seed);
    plan.worker_mtbf_iters = worker_mtbf_iters;
    plan.message_drop_prob = drop_prob;
    plan.message_corrupt_prob = corrupt_prob;
    if (!fail_worker.empty()) {
      Result<std::vector<FaultEvent>> events = ParseFailWorker(fail_worker);
      if (!events.ok()) {
        std::fprintf(stderr, "%s\n", events.status().ToString().c_str());
        return 2;
      }
      plan.scripted = *std::move(events);
    }
    if (!partition_spec.empty()) {
      Result<std::vector<NetworkPartitionSpec>> partitions =
          ParsePartitionSpec(partition_spec);
      if (!partitions.ok()) {
        std::fprintf(stderr, "%s\n", partitions.status().ToString().c_str());
        return 2;
      }
      plan.partitions = *std::move(partitions);
    }
    if (!membership_spec.empty()) {
      Result<std::vector<MembershipChange>> changes =
          ParseMembershipSpec(membership_spec);
      if (!changes.ok()) {
        std::fprintf(stderr, "%s\n", changes.status().ToString().c_str());
        return 2;
      }
      plan.membership = *std::move(changes);
    }
    Result<FaultPlan> fault_plan = FaultPlan::Create(plan);
    if (!fault_plan.ok()) {
      std::fprintf(stderr, "%s\n", fault_plan.status().ToString().c_str());
      return 2;
    }
    FaultConfig faults;
    faults.plan = *std::move(fault_plan);
    faults.checkpoint.every = checkpoint_every;
    Status fault_st = engine->set_faults(std::move(faults));
    if (!fault_st.ok()) {
      std::fprintf(stderr, "%s\n", fault_st.ToString().c_str());
      return 2;
    }
  }

  Tracer tracer;
  const bool tracing =
      !trace_out.empty() || !phase_csv.empty() || !metrics_out.empty();
  if (tracing) engine->set_tracer(&tracer);
  CritPathRecorder critpath;
  if (!dag_out.empty()) engine->set_critpath(&critpath);

  RunOptions options;
  options.iterations = iterations;
  options.eval_every = eval_every;
  TrainResult result = RunTraining(engine.get(), dataset, options);
  if (!result.status.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 result.status.ToString().c_str());
    return 1;
  }

  std::printf("\n%10s %12s %12s %12s\n", "iteration", "sim_time(s)",
              "batch_loss", "eval_loss");
  const int64_t stride = std::max<int64_t>(1, iterations / 10);
  for (const IterationRecord& record : result.trace) {
    if (record.iteration % stride == 0 ||
        record.iteration + 1 == iterations) {
      std::printf("%10lld %12.4f %12.4f %12.4f\n",
                  static_cast<long long>(record.iteration), record.sim_time,
                  record.batch_loss, record.eval_loss);
    }
  }
  std::printf(
      "\nengine=%s model=%s: load %.3fs, train %.3fs (%.3f ms/iter), "
      "%.2f MB on the wire over %llu messages\n",
      engine->name().c_str(), model.c_str(), result.load_time,
      result.train_time, 1e3 * result.avg_iter_time,
      static_cast<double>(result.bytes_on_wire) / 1e6,
      static_cast<unsigned long long>(result.messages));
  if (calibration_path.empty()) {
    std::printf("kernel: mode=%s, compute priced at the %s preset "
                "(%.2f GFLOP/s)\n",
                kernels::KernelModeName(kmode), cluster2 ? "Cluster2" : "Cluster1",
                cluster.compute.flops_per_second / 1e9);
  } else {
    std::printf("kernel: mode=%s, compute priced by %s "
                "(calibrated on %s kernels: %.2f GFLOP/s, %.2f GB/s)\n",
                kernels::KernelModeName(kmode), calibration_path.c_str(),
                calibration.kernel_mode.c_str(),
                calibration.flops_per_second / 1e9,
                calibration.mem_bandwidth_bytes_per_s / 1e9);
  }

  if (faults_requested) {
    const RecoveryMetrics& recovery = engine->recovery_metrics();
    std::printf(
        "faults: %lld task + %lld worker failures, %lld iterations lost, "
        "%.2f MB retransferred\n"
        "wire:   %lld dropped, %lld corrupted (CRC-caught), %lld "
        "retransmits, %lld partition-blocked sends\n"
        "disk:   %lld checkpoints (%lld corrupted, %lld restore fallbacks)\n",
        static_cast<long long>(recovery.task_failures),
        static_cast<long long>(recovery.worker_failures),
        static_cast<long long>(recovery.iterations_lost),
        static_cast<double>(recovery.bytes_retransferred) / 1e6,
        static_cast<long long>(recovery.messages_dropped),
        static_cast<long long>(recovery.messages_corrupted),
        static_cast<long long>(recovery.retransmits),
        static_cast<long long>(recovery.partition_blocked_sends),
        static_cast<long long>(recovery.checkpoints_taken),
        static_cast<long long>(recovery.checkpoints_corrupted),
        static_cast<long long>(recovery.checkpoint_fallbacks));
    if (config.elastic.enabled) {
      std::printf(
          "elastic: %lld grow(s), %lld planned departure(s), %lld crash "
          "removal(s) in %.3fs (%.2f MB moved)\n"
          "ladder:  %lld peer fetch(es) (%.2f MB, %lld CRC-rejected copies), "
          "%lld checkpoint restore read(s), %lld reseed(s)\n",
          static_cast<long long>(recovery.grows),
          static_cast<long long>(recovery.planned_departures),
          static_cast<long long>(recovery.crash_removals),
          recovery.membership_seconds,
          static_cast<double>(recovery.membership_bytes_moved) / 1e6,
          static_cast<long long>(recovery.peer_replica_fetches),
          static_cast<double>(recovery.peer_fetch_bytes) / 1e6,
          static_cast<long long>(recovery.replica_crc_rejections),
          static_cast<long long>(recovery.checkpoint_restore_reads),
          static_cast<long long>(recovery.reseeds));
    }
  }

  if (config.ssp.enabled) {
    const SspAccounting& ssp = engine->ssp_accounting();
    std::printf(
        "ssp: slack %lld, %lld updates sent / %lld applied, max staleness "
        "%lld, %lld stale read(s), %lld pipeline drain(s)\n",
        static_cast<long long>(config.ssp.slack),
        static_cast<long long>(ssp.updates_sent),
        static_cast<long long>(ssp.updates_applied),
        static_cast<long long>(ssp.max_staleness_observed),
        static_cast<long long>(ssp.stale_reads),
        static_cast<long long>(ssp.drains));
  }

  if (!save_model.empty()) {
    SavedModel saved;
    saved.model_name = model;
    saved.num_features = dataset.num_features;
    saved.weights = engine->FullModel();
    if (const auto* column = dynamic_cast<ColumnSgdEngine*>(engine.get())) {
      saved.shared = column->shared_params();
    }
    Status save_st = WriteModelFile(saved, save_model);
    if (!save_st.ok()) {
      std::fprintf(stderr, "%s\n", save_st.ToString().c_str());
      return 1;
    }
    std::printf("model written to %s\n", save_model.c_str());
  }

  if (tracing) {
    std::printf("\nphase breakdown (master clock, summed over %zu iters):\n",
                result.phase_trace.size());
    for (int p = 0; p < static_cast<int>(Phase::kNumPhases); ++p) {
      const double seconds = result.phase_totals.seconds[p];
      if (seconds <= 0.0) continue;
      std::printf("  %-14s %10.4fs (%5.1f%%)\n",
                  PhaseName(static_cast<Phase>(p)), seconds,
                  100.0 * seconds / result.phase_totals.total());
    }
    if (!trace_out.empty()) {
      Status trace_st = WriteChromeTrace(tracer, trace_out);
      if (!trace_st.ok()) {
        std::fprintf(stderr, "%s\n", trace_st.ToString().c_str());
        return 1;
      }
      std::printf("chrome trace written to %s (%zu events)\n",
                  trace_out.c_str(), tracer.events().size());
    }
    if (!phase_csv.empty()) {
      Status phase_st = WritePhaseCsv(tracer, phase_csv);
      if (!phase_st.ok()) {
        std::fprintf(stderr, "%s\n", phase_st.ToString().c_str());
        return 1;
      }
      std::printf("phase breakdown written to %s\n", phase_csv.c_str());
    }
    if (!metrics_out.empty()) {
      std::ofstream out(metrics_out, std::ios::binary);
      if (!out) {
        std::fprintf(stderr, "cannot open %s for writing\n",
                     metrics_out.c_str());
        return 1;
      }
      out << MetricsRegistryJson(tracer.metrics());
      out.close();
      if (!out) {
        std::fprintf(stderr, "error writing %s\n", metrics_out.c_str());
        return 1;
      }
      std::printf("metrics written to %s\n", metrics_out.c_str());
    }
  }

  if (!dag_out.empty()) {
    const CritDag dag = critpath.Snapshot();
    Status dag_st = WriteCritDagFile(dag, dag_out);
    if (!dag_st.ok()) {
      std::fprintf(stderr, "%s\n", dag_st.ToString().c_str());
      return 1;
    }
    std::printf("causal DAG written to %s (%zu ops, fingerprint %08x)\n",
                dag_out.c_str(), dag.ops.size(), CritDagFingerprint(dag));
  }

  if (!trace_csv.empty()) {
    CsvWriter csv;
    Status csv_st =
        csv.Open(trace_csv, {"iteration", "sim_time", "batch_loss",
                             "eval_loss"});
    if (!csv_st.ok()) {
      std::fprintf(stderr, "%s\n", csv_st.ToString().c_str());
      return 1;
    }
    for (const IterationRecord& record : result.trace) {
      csv.WriteNumericRow({static_cast<double>(record.iteration),
                           record.sim_time, record.batch_loss,
                           record.eval_loss});
    }
    std::printf("trace written to %s\n", trace_csv.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace colsgd

int main(int argc, char** argv) { return colsgd::Run(argc, argv); }
