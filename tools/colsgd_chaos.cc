// Deterministic chaos driver (DESIGN.md §10).
//
// For every seed in --seeds and every engine in --engines, draws a
// randomized fault schedule (crashes, drops, corruption, partitions,
// stragglers, torn/bit-rotted checkpoints), trains a tiny model under it
// TWICE, and checks:
//
//   * the two executions produce bit-identical trace fingerprints
//     (determinism — the whole point of a simulation-testing harness);
//   * the chaos invariants hold (complete-or-clean-diagnosis, byte
//     conservation, corruption detected + retransmitted, convergence
//     within epsilon of the fault-free baseline).
//
// The first failing seed is re-run under a greedily shrunk schedule and
// dumped as a JSON repro artifact (--artifact) whose "repro" field is the
// exact command line that replays it. Exit status 1 when any seed fails.
//
// --scenario membership targets the elastic-membership layer instead:
// scripted grow/shrink events mixed with crashes against a block-replicated
// cluster, with the membership invariants — must complete, exact event
// accounting, peer-replica recovery with zero checkpoint-storage reads,
// bit-identical final weights vs the fixed-membership run — checked per
// seed (chaos/chaos.h).
//
// --scenario ssp targets the bounded-staleness execution mode: randomized
// slack / straggler / jitter / crash schedules against the SSP-capable
// engines, with the staleness invariants — must complete, exactly-once
// update accounting per consumer per clock tick, staleness <= slack,
// slack-0 bitwise-identical to BSP, convergence — checked per seed
// (chaos/chaos.h).
//
// --scenario serving targets the serving plane: shard-server failures and
// (possibly bit-rotted) hot-swap images under sustained load, with the
// serving invariants — no wrong answers, conservation, bounded SLO
// degradation — checked per seed (serve/serving_chaos.h).
//
// --scenario serving_fleet targets the replicated fleet: whole-group
// losses, sibling single-shard failures, coordinated (possibly corrupt)
// swaps, and flash-crowd arrivals against the health-routed, hedging
// router, with the stricter fleet invariants — zero timeouts with a
// survivor, corrupt images rejected at the router, bitwise-correct scores
// under exactly one generation fleet-wide — checked per seed.
//
//   colsgd_chaos --seeds 0..31 --engines all
//   colsgd_chaos --seeds 17 --engines petuum --verbose true
//   colsgd_chaos --scenario membership --seeds 0..15 --engines all
//   colsgd_chaos --scenario ssp --seeds 0..15 --engines all
//   colsgd_chaos --scenario serving --seeds 0..15 --models lr
//   colsgd_chaos --scenario serving_fleet --seeds 0..15 --models lr
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "chaos/chaos.h"
#include "common/check.h"
#include "common/flags.h"
#include "serve/serving_chaos.h"

namespace colsgd {
namespace {

using chaos::ChaosOptions;
using chaos::ChaosSchedule;
using chaos::ChaosVerdict;

std::vector<std::string> SplitList(const std::string& text) {
  std::vector<std::string> out;
  std::string item;
  for (char c : text) {
    if (c == ',') {
      if (!item.empty()) out.push_back(item);
      item.clear();
    } else {
      item += c;
    }
  }
  if (!item.empty()) out.push_back(item);
  return out;
}

// "0..31" (inclusive range), "7", or "3,9,12".
std::vector<uint64_t> ParseSeeds(const std::string& spec) {
  std::vector<uint64_t> seeds;
  const size_t dots = spec.find("..");
  if (dots != std::string::npos) {
    const uint64_t lo = std::strtoull(spec.substr(0, dots).c_str(), nullptr, 10);
    const uint64_t hi =
        std::strtoull(spec.substr(dots + 2).c_str(), nullptr, 10);
    COLSGD_CHECK(hi >= lo) << "bad --seeds range: " << spec;
    for (uint64_t s = lo; s <= hi; ++s) seeds.push_back(s);
    return seeds;
  }
  for (const std::string& item : SplitList(spec)) {
    seeds.push_back(std::strtoull(item.c_str(), nullptr, 10));
  }
  COLSGD_CHECK(!seeds.empty()) << "empty --seeds: " << spec;
  return seeds;
}

/// \brief The --scenario membership loop: scripted grow/shrink + crash
/// schedules against the elastic engines (block replication, DESIGN.md §14).
/// Same structure as the training loop — two runs per seed, fingerprint
/// compare, repro artifact on the first failure — with the membership
/// invariants (must complete, event accounting, peer-replica recovery with
/// zero checkpoint reads, bit-identical final weights) instead.
int RunMembershipSeeds(const chaos::MembershipChaosOptions& base,
                       const std::vector<std::string>& engines,
                       const std::vector<std::string>& models,
                       const std::vector<uint64_t>& seeds,
                       const std::string& artifact, bool verbose) {
  int64_t runs = 0;
  int64_t failures = 0;
  bool artifact_written = false;
  const Dataset dataset = chaos::ChaosDataset(base.base);
  for (const std::string& model : models) {
    for (const std::string& engine : engines) {
      chaos::MembershipChaosOptions options = base;
      options.base.engine = engine;
      options.base.model = model;
      const chaos::MembershipBaseline baseline =
          chaos::MembershipCleanBaseline(options.base, dataset);
      if (verbose) {
        std::printf("[membership %s x %s] fault-free loss %.6f weights crc "
                    "%08x\n",
                    engine.c_str(), model.c_str(), baseline.clean_loss,
                    baseline.weights_crc);
      }
      for (uint64_t seed : seeds) {
        const chaos::MembershipSchedule schedule =
            chaos::GenerateMembershipSchedule(seed, options);
        chaos::ChaosVerdict verdict = chaos::RunMembershipSchedule(
            options, schedule, dataset, baseline, seed);
        const chaos::ChaosVerdict replay = chaos::RunMembershipSchedule(
            options, schedule, dataset, baseline, seed);
        ++runs;
        if (replay.fingerprint != verdict.fingerprint) {
          verdict.violations.push_back(
              "nondeterministic: replay fingerprint " +
              std::to_string(replay.fingerprint) + " != " +
              std::to_string(verdict.fingerprint));
        }
        if (verbose) {
          std::printf("[membership %s x %s] seed %llu %s fp=%08x  %s\n",
                      engine.c_str(), model.c_str(),
                      static_cast<unsigned long long>(seed),
                      verdict.ok() ? "ok  " : "FAIL", verdict.fingerprint,
                      chaos::DescribeMembershipSchedule(schedule).c_str());
        }
        if (verdict.ok()) continue;
        ++failures;
        std::printf("[membership %s x %s] seed %llu FAILED (%s):\n",
                    engine.c_str(), model.c_str(),
                    static_cast<unsigned long long>(seed),
                    chaos::DescribeMembershipSchedule(schedule).c_str());
        for (const std::string& v : verdict.violations) {
          std::printf("  - %s\n", v.c_str());
        }
        std::printf("  repro: %s\n",
                    chaos::MembershipReproCommand(options, seed).c_str());
        if (!artifact.empty() && !artifact_written) {
          const std::string json =
              chaos::MembershipArtifactJson(options, seed, schedule, verdict);
          std::FILE* f = std::fopen(artifact.c_str(), "w");
          if (f != nullptr) {
            std::fwrite(json.data(), 1, json.size(), f);
            std::fclose(f);
            std::printf("  artifact: %s\n", artifact.c_str());
            artifact_written = true;
          }
        }
      }
    }
  }
  std::printf("chaos(membership): %lld schedule(s), %lld failure(s)\n",
              static_cast<long long>(runs), static_cast<long long>(failures));
  return failures == 0 ? 0 : 1;
}

/// \brief The --scenario ssp loop: randomized slack / straggler / crash
/// schedules against the bounded-staleness engines (DESIGN.md §15). Same
/// structure as the training loop — two runs per seed, fingerprint compare,
/// repro artifact on the first failure — with the SSP invariants (must
/// complete, exactly-once update accounting, staleness bound, slack-0
/// bitwise-BSP, convergence) instead.
int RunSspSeeds(const chaos::SspChaosOptions& base,
                const std::vector<std::string>& engines,
                const std::vector<std::string>& models,
                const std::vector<uint64_t>& seeds,
                const std::string& artifact, bool verbose) {
  int64_t runs = 0;
  int64_t failures = 0;
  bool artifact_written = false;
  const Dataset dataset = chaos::ChaosDataset(base.base);
  for (const std::string& model : models) {
    for (const std::string& engine : engines) {
      chaos::SspChaosOptions options = base;
      options.base.engine = engine;
      options.base.model = model;
      const double clean_loss =
          chaos::RunCleanBaseline(options.base, dataset);
      if (verbose) {
        std::printf("[ssp %s x %s] fault-free loss %.6f\n", engine.c_str(),
                    model.c_str(), clean_loss);
      }
      for (uint64_t seed : seeds) {
        const chaos::SspSchedule schedule =
            chaos::GenerateSspSchedule(seed, options);
        chaos::ChaosVerdict verdict = chaos::RunSspSchedule(
            options, schedule, dataset, clean_loss, seed);
        const chaos::ChaosVerdict replay = chaos::RunSspSchedule(
            options, schedule, dataset, clean_loss, seed);
        ++runs;
        if (replay.fingerprint != verdict.fingerprint) {
          verdict.violations.push_back(
              "nondeterministic: replay fingerprint " +
              std::to_string(replay.fingerprint) + " != " +
              std::to_string(verdict.fingerprint));
        }
        if (verbose) {
          std::printf("[ssp %s x %s] seed %llu %s fp=%08x  %s\n",
                      engine.c_str(), model.c_str(),
                      static_cast<unsigned long long>(seed),
                      verdict.ok() ? "ok  " : "FAIL", verdict.fingerprint,
                      chaos::DescribeSspSchedule(schedule).c_str());
        }
        if (verdict.ok()) continue;
        ++failures;
        std::printf("[ssp %s x %s] seed %llu FAILED (%s):\n", engine.c_str(),
                    model.c_str(), static_cast<unsigned long long>(seed),
                    chaos::DescribeSspSchedule(schedule).c_str());
        for (const std::string& v : verdict.violations) {
          std::printf("  - %s\n", v.c_str());
        }
        std::printf("  repro: %s\n",
                    chaos::SspReproCommand(options, seed).c_str());
        if (!artifact.empty() && !artifact_written) {
          const std::string json =
              chaos::SspArtifactJson(options, seed, schedule, verdict);
          std::FILE* f = std::fopen(artifact.c_str(), "w");
          if (f != nullptr) {
            std::fwrite(json.data(), 1, json.size(), f);
            std::fclose(f);
            std::printf("  artifact: %s\n", artifact.c_str());
            artifact_written = true;
          }
        }
      }
    }
  }
  std::printf("chaos(ssp): %lld schedule(s), %lld failure(s)\n",
              static_cast<long long>(runs), static_cast<long long>(failures));
  return failures == 0 ? 0 : 1;
}

/// \brief The --scenario serving loop: same structure as the training one
/// (two runs per seed, fingerprint compare, repro artifact on the first
/// failure), with the serving invariants instead of the training ones.
int RunServingSeeds(const chaos::ServingChaosOptions& base,
                    const std::vector<std::string>& models,
                    const std::vector<uint64_t>& seeds,
                    const std::string& artifact, bool verbose) {
  int64_t runs = 0;
  int64_t failures = 0;
  bool artifact_written = false;
  for (const std::string& model : models) {
    chaos::ServingChaosOptions options = base;
    options.model = model;
    const Dataset queries = chaos::ServingQueryDataset(options);
    const double clean = chaos::CleanSloViolationFraction(options, queries);
    if (verbose) {
      std::printf("[serving x %s] fault-free SLO violation fraction %.4f\n",
                  model.c_str(), clean);
    }
    for (uint64_t seed : seeds) {
      const chaos::ServingSchedule schedule =
          chaos::GenerateServingSchedule(seed, options);
      chaos::ServingVerdict verdict =
          chaos::RunServingSchedule(options, schedule, queries, clean, seed);
      const chaos::ServingVerdict replay =
          chaos::RunServingSchedule(options, schedule, queries, clean, seed);
      ++runs;
      if (replay.fingerprint != verdict.fingerprint) {
        verdict.violations.push_back(
            "nondeterministic: replay fingerprint " +
            std::to_string(replay.fingerprint) + " != " +
            std::to_string(verdict.fingerprint));
      }
      if (verbose) {
        std::printf("[serving x %s] seed %llu %s fp=%016llx  %s\n",
                    model.c_str(), static_cast<unsigned long long>(seed),
                    verdict.ok() ? "ok  " : "FAIL",
                    static_cast<unsigned long long>(verdict.fingerprint),
                    chaos::DescribeServingSchedule(schedule).c_str());
      }
      if (verdict.ok()) continue;
      ++failures;
      std::printf("[serving x %s] seed %llu FAILED:\n", model.c_str(),
                  static_cast<unsigned long long>(seed));
      for (const std::string& v : verdict.violations) {
        std::printf("  - %s\n", v.c_str());
      }
      std::printf("  repro: %s\n",
                  chaos::ServingReproCommand(options, seed).c_str());
      if (!artifact.empty() && !artifact_written) {
        const std::string json =
            chaos::ServingArtifactJson(options, seed, schedule, verdict);
        std::FILE* f = std::fopen(artifact.c_str(), "w");
        if (f != nullptr) {
          std::fwrite(json.data(), 1, json.size(), f);
          std::fclose(f);
          std::printf("  artifact: %s\n", artifact.c_str());
          artifact_written = true;
        }
      }
    }
  }
  std::printf("chaos(serving): %lld schedule(s), %lld failure(s)\n",
              static_cast<long long>(runs), static_cast<long long>(failures));
  return failures == 0 ? 0 : 1;
}

/// \brief The --scenario serving_fleet loop: randomized whole-group losses,
/// sibling shard failures, coordinated swaps, and flash crowds against the
/// replicated fleet. Same structure as the serving loop — two runs per
/// seed, fingerprint compare, repro artifact on the first failure — with
/// the stricter fleet invariants.
int RunFleetSeeds(const chaos::FleetChaosOptions& base,
                  const std::vector<std::string>& models,
                  const std::vector<uint64_t>& seeds,
                  const std::string& artifact, bool verbose) {
  int64_t runs = 0;
  int64_t failures = 0;
  bool artifact_written = false;
  for (const std::string& model : models) {
    chaos::FleetChaosOptions options = base;
    options.serving.model = model;
    const Dataset queries = chaos::ServingQueryDataset(options.serving);
    for (uint64_t seed : seeds) {
      const chaos::FleetSchedule schedule =
          chaos::GenerateFleetSchedule(seed, options);
      chaos::FleetVerdict verdict =
          chaos::RunFleetSchedule(options, schedule, queries, seed);
      const chaos::FleetVerdict replay =
          chaos::RunFleetSchedule(options, schedule, queries, seed);
      ++runs;
      if (replay.fingerprint != verdict.fingerprint) {
        verdict.violations.push_back(
            "nondeterministic: replay fingerprint " +
            std::to_string(replay.fingerprint) + " != " +
            std::to_string(verdict.fingerprint));
      }
      if (verbose) {
        std::printf("[fleet x %s] seed %llu %s fp=%016llx  %s\n",
                    model.c_str(), static_cast<unsigned long long>(seed),
                    verdict.ok() ? "ok  " : "FAIL",
                    static_cast<unsigned long long>(verdict.fingerprint),
                    chaos::DescribeFleetSchedule(schedule).c_str());
      }
      if (verdict.ok()) continue;
      ++failures;
      std::printf("[fleet x %s] seed %llu FAILED (%s):\n", model.c_str(),
                  static_cast<unsigned long long>(seed),
                  chaos::DescribeFleetSchedule(schedule).c_str());
      for (const std::string& v : verdict.violations) {
        std::printf("  - %s\n", v.c_str());
      }
      std::printf("  repro: %s\n",
                  chaos::FleetReproCommand(options, seed).c_str());
      if (!artifact.empty() && !artifact_written) {
        const std::string json =
            chaos::FleetArtifactJson(options, seed, schedule, verdict);
        std::FILE* f = std::fopen(artifact.c_str(), "w");
        if (f != nullptr) {
          std::fwrite(json.data(), 1, json.size(), f);
          std::fclose(f);
          std::printf("  artifact: %s\n", artifact.c_str());
          artifact_written = true;
        }
      }
    }
  }
  std::printf("chaos(serving_fleet): %lld schedule(s), %lld failure(s)\n",
              static_cast<long long>(runs), static_cast<long long>(failures));
  return failures == 0 ? 0 : 1;
}

int RunDriver(int argc, char** argv) {
  std::string scenario = "train";
  std::string seeds_spec = "0..31";
  std::string engines = "all";
  std::string models = "lr";
  std::string artifact = "chaos_repro.json";
  ChaosOptions base;
  int64_t workers = base.workers;
  int64_t batch_size = static_cast<int64_t>(base.batch_size);
  int64_t block_rows = static_cast<int64_t>(base.block_rows);
  int64_t data_rows = static_cast<int64_t>(base.data_rows);
  int64_t data_features = static_cast<int64_t>(base.data_features);
  bool verbose = false;

  chaos::ServingChaosOptions serving;
  int64_t shards = serving.num_shards;

  chaos::MembershipChaosOptions membership;
  int64_t replication = membership.replication;
  int64_t spares = membership.spare_workers;

  chaos::SspChaosOptions ssp;
  int64_t slack = ssp.slack;

  FlagParser flags;
  flags.AddString("scenario", &scenario,
                  "'train' (fault schedules against the training engines), "
                  "'membership' (elastic grow/shrink/crash with block "
                  "replication), 'ssp' (bounded-staleness schedules with "
                  "update accounting), 'serving' (shard failures + hot "
                  "swaps under load), or 'serving_fleet' (whole-group "
                  "losses + flash crowds against the replicated fleet)");
  flags.AddString("seeds", &seeds_spec, "seed range 'a..b' or list 'a,b,c'");
  flags.AddString("engines", &engines,
                  "comma list of engines, or 'all' "
                  "(columnsgd,mllib,mllib_star,petuum,mxnet)");
  flags.AddString("models", &models, "comma list of models (lr, svm, ...)");
  flags.AddInt64("workers", &workers, "cluster size");
  flags.AddInt64("iterations", &base.iterations, "SGD iterations per run");
  flags.AddInt64("batch_size", &batch_size, "mini-batch size");
  flags.AddInt64("block_rows", &block_rows, "rows per storage block");
  flags.AddDouble("learning_rate", &base.learning_rate, "SGD step size");
  flags.AddInt64("data_rows", &data_rows, "synthetic dataset rows");
  flags.AddInt64("data_features", &data_features, "synthetic dataset dim");
  flags.AddDouble("epsilon", &base.epsilon,
                  "convergence tolerance vs the fault-free run");
  flags.AddString("artifact", &artifact,
                  "path for the failing-seed repro JSON ('' disables)");
  flags.AddBool("verbose", &verbose, "print one line per seed");
  flags.AddInt64("replication", &replication,
                 "membership: extra block copies r (-1 draws 1..3 per seed)");
  flags.AddInt64("spares", &spares,
                 "membership: spare ranks a grow can activate");
  flags.AddInt64("slack", &slack,
                 "ssp: staleness bound (-1 draws 0/1/2/4 per seed)");
  flags.AddInt64("shards", &shards, "serving: number of shard servers");
  flags.AddInt64("requests", &serving.num_requests,
                 "serving: requests per schedule");
  flags.AddDouble("rate", &serving.rate, "serving: arrival rate, req/s");
  flags.AddDouble("degradation_budget", &serving.degradation_budget,
                  "serving: allowed SLO-violation increase per failure");
  COLSGD_CHECK_OK(flags.Parse(argc, argv));

  if (scenario == "membership") {
    membership.base = base;
    membership.base.workers = static_cast<int>(workers);
    membership.base.batch_size = static_cast<size_t>(batch_size);
    membership.base.block_rows = static_cast<size_t>(block_rows);
    membership.base.data_rows = static_cast<uint64_t>(data_rows);
    membership.base.data_features = static_cast<uint64_t>(data_features);
    membership.replication = static_cast<int>(replication);
    membership.spare_workers = static_cast<int>(spares);
    // Only the engines that report SupportsMembership.
    if (engines == "all") engines = "columnsgd,petuum";
    return RunMembershipSeeds(membership, SplitList(engines),
                              SplitList(models), ParseSeeds(seeds_spec),
                              artifact, verbose);
  }
  if (scenario == "ssp") {
    ssp.base = base;
    ssp.base.workers = static_cast<int>(workers);
    ssp.base.batch_size = static_cast<size_t>(batch_size);
    ssp.base.block_rows = static_cast<size_t>(block_rows);
    ssp.base.data_rows = static_cast<uint64_t>(data_rows);
    ssp.base.data_features = static_cast<uint64_t>(data_features);
    ssp.slack = static_cast<int>(slack);
    // Only the bounded-staleness-capable engines.
    if (engines == "all") engines = "columnsgd,petuum,mxnet";
    return RunSspSeeds(ssp, SplitList(engines), SplitList(models),
                       ParseSeeds(seeds_spec), artifact, verbose);
  }
  if (scenario == "serving" || scenario == "serving_fleet") {
    serving.num_shards = static_cast<int>(shards);
    serving.data_rows = static_cast<uint64_t>(data_rows);
    serving.data_features = static_cast<uint64_t>(data_features);
    serving.data_seed = base.data_seed;
    if (scenario == "serving_fleet") {
      chaos::FleetChaosOptions fleet;
      fleet.serving = serving;
      return RunFleetSeeds(fleet, SplitList(models), ParseSeeds(seeds_spec),
                           artifact, verbose);
    }
    return RunServingSeeds(serving, SplitList(models), ParseSeeds(seeds_spec),
                           artifact, verbose);
  }
  COLSGD_CHECK(scenario == "train") << "unknown --scenario: " << scenario;

  base.workers = static_cast<int>(workers);
  base.batch_size = static_cast<size_t>(batch_size);
  base.block_rows = static_cast<size_t>(block_rows);
  base.data_rows = static_cast<uint64_t>(data_rows);
  base.data_features = static_cast<uint64_t>(data_features);

  if (engines == "all") {
    engines = "columnsgd,mllib,mllib_star,petuum,mxnet";
  }
  const std::vector<uint64_t> seeds = ParseSeeds(seeds_spec);
  const Dataset dataset = chaos::ChaosDataset(base);

  int64_t runs = 0;
  int64_t failures = 0;
  bool artifact_written = false;
  for (const std::string& model : SplitList(models)) {
    for (const std::string& engine : SplitList(engines)) {
      ChaosOptions options = base;
      options.engine = engine;
      options.model = model;
      const double clean_loss = chaos::RunCleanBaseline(options, dataset);
      if (verbose) {
        std::printf("[%s x %s] fault-free loss %.6f\n", engine.c_str(),
                    model.c_str(), clean_loss);
      }
      for (uint64_t seed : seeds) {
        const ChaosSchedule schedule = chaos::GenerateSchedule(seed, options);
        ChaosVerdict verdict =
            chaos::RunSchedule(options, schedule, dataset, clean_loss, seed);
        const ChaosVerdict replay =
            chaos::RunSchedule(options, schedule, dataset, clean_loss, seed);
        ++runs;
        if (replay.fingerprint != verdict.fingerprint) {
          verdict.violations.push_back(
              "nondeterministic: replay fingerprint " +
              std::to_string(replay.fingerprint) + " != " +
              std::to_string(verdict.fingerprint));
        }
        if (verbose) {
          std::printf("[%s x %s] seed %llu %s fp=%08x  %s\n", engine.c_str(),
                      model.c_str(), static_cast<unsigned long long>(seed),
                      verdict.ok() ? "ok  " : "FAIL",
                      verdict.fingerprint,
                      chaos::DescribeSchedule(schedule).c_str());
        }
        if (verdict.ok()) continue;
        ++failures;
        std::printf("[%s x %s] seed %llu FAILED:\n", engine.c_str(),
                    model.c_str(), static_cast<unsigned long long>(seed));
        for (const std::string& v : verdict.violations) {
          std::printf("  - %s\n", v.c_str());
        }
        int extra_runs = 0;
        const ChaosSchedule shrunk = chaos::ShrinkSchedule(
            options, schedule, dataset, clean_loss, seed, &extra_runs);
        std::printf("  shrunk (%d extra runs): %s\n", extra_runs,
                    chaos::DescribeSchedule(shrunk).c_str());
        std::printf("  repro: %s\n",
                    chaos::ReproCommand(options, seed).c_str());
        if (!artifact.empty() && !artifact_written) {
          const std::string json = chaos::ReproArtifactJson(
              options, seed, schedule, shrunk, verdict);
          std::FILE* f = std::fopen(artifact.c_str(), "w");
          if (f != nullptr) {
            std::fwrite(json.data(), 1, json.size(), f);
            std::fclose(f);
            std::printf("  artifact: %s\n", artifact.c_str());
            artifact_written = true;
          }
        }
      }
    }
  }
  std::printf("chaos: %lld schedule(s), %lld failure(s)\n",
              static_cast<long long>(runs), static_cast<long long>(failures));
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace colsgd

int main(int argc, char** argv) { return colsgd::RunDriver(argc, argv); }
