// Tests for the synthetic data generators.
#include <gtest/gtest.h>

#include "datagen/synthetic.h"

namespace colsgd {
namespace {

TEST(SyntheticTest, DeterministicInSeed) {
  SyntheticSpec spec = TinySpec();
  Dataset a = GenerateSynthetic(spec);
  Dataset b = GenerateSynthetic(spec);
  ASSERT_EQ(a.num_rows(), b.num_rows());
  EXPECT_EQ(a.rows.indices(), b.rows.indices());
  EXPECT_EQ(a.rows.values(), b.rows.values());
  EXPECT_EQ(a.labels, b.labels);
  spec.seed += 1;
  Dataset c = GenerateSynthetic(spec);
  EXPECT_NE(a.rows.indices(), c.rows.indices());
}

TEST(SyntheticTest, MatchesSpecShape) {
  SyntheticSpec spec;
  spec.num_rows = 5000;
  spec.num_features = 2000;
  spec.avg_nnz_per_row = 10;
  spec.skew = 0.5;
  Dataset d = GenerateSynthetic(spec);
  EXPECT_EQ(d.num_rows(), 5000u);
  EXPECT_EQ(d.num_features, 2000u);
  // Dedup trims a little; allow slack.
  EXPECT_NEAR(d.AvgNnzPerRow(), 10.0, 2.5);
  for (size_t i = 0; i < d.num_rows(); ++i) {
    const SparseVectorView row = d.rows.Row(i);
    ASSERT_GE(row.nnz, 1u);
    for (size_t j = 0; j < row.nnz; ++j) {
      ASSERT_LT(row.indices[j], d.num_features);
      if (j > 0) ASSERT_LT(row.indices[j - 1], row.indices[j]);  // sorted uniq
    }
  }
}

TEST(SyntheticTest, BinaryLabelsAreSigns) {
  Dataset d = GenerateSynthetic(TinySpec());
  int positives = 0;
  for (float label : d.labels) {
    ASSERT_TRUE(label == 1.0f || label == -1.0f);
    if (label > 0) ++positives;
  }
  // Planted-model labels should be reasonably balanced, not constant.
  EXPECT_GT(positives, static_cast<int>(d.num_rows() / 5));
  EXPECT_LT(positives, static_cast<int>(4 * d.num_rows() / 5));
}

TEST(SyntheticTest, LabelsAreLearnable) {
  // The planted model itself should separate the data far better than
  // chance: check sign agreement of the planted scores.
  SyntheticSpec spec = TinySpec();
  spec.label_noise = 4.0;  // low temperature -> clean labels
  Dataset d = GenerateSynthetic(spec);
  int agree = 0;
  for (size_t i = 0; i < d.num_rows(); ++i) {
    const SparseVectorView row = d.rows.Row(i);
    double score = 0.0;
    for (size_t j = 0; j < row.nnz; ++j) {
      score += PlantedWeight(row.indices[j], spec.seed) * row.values[j];
    }
    if ((score > 0) == (d.labels[i] > 0)) ++agree;
  }
  EXPECT_GT(static_cast<double>(agree) / d.num_rows(), 0.75);
}

TEST(SyntheticTest, MulticlassLabelsInRange) {
  SyntheticSpec spec = TinySpec();
  spec.num_classes = 5;
  Dataset d = GenerateSynthetic(spec);
  std::vector<int> counts(5, 0);
  for (float label : d.labels) {
    const int c = static_cast<int>(label);
    ASSERT_GE(c, 0);
    ASSERT_LT(c, 5);
    counts[c]++;
  }
  for (int c = 0; c < 5; ++c) EXPECT_GT(counts[c], 0) << "class " << c;
}

TEST(SyntheticTest, SkewConcentratesOnLowIds) {
  SyntheticSpec spec;
  spec.num_rows = 3000;
  spec.num_features = 10000;
  spec.avg_nnz_per_row = 20;
  spec.skew = 0.3;
  Dataset d = GenerateSynthetic(spec);
  uint64_t low = 0;
  for (size_t j = 0; j < d.rows.indices().size(); ++j) {
    if (d.rows.indices()[j] < d.num_features / 10) ++low;
  }
  // With skew=0.3, far more than 10% of mass falls in the lowest decile.
  EXPECT_GT(static_cast<double>(low) / d.nnz(), 0.4);
}

TEST(SyntheticTest, PresetSpecsMatchDesignDoc) {
  EXPECT_EQ(AvazuSimSpec().num_features, 1000000u);
  EXPECT_EQ(KddbSimSpec().num_features, 3000000u);
  EXPECT_EQ(Kdd12SimSpec().num_features, 5400000u);
  EXPECT_EQ(WxSimSpec().num_features, 4000000u);
  EXPECT_EQ(CriteoSimSpec(123).num_features, 123u);
  // Dimension ordering matches the paper: avazu << kddb < kdd12.
  EXPECT_LT(AvazuSimSpec().num_features, KddbSimSpec().num_features);
  EXPECT_LT(KddbSimSpec().num_features, Kdd12SimSpec().num_features);
}

TEST(SyntheticTest, TinyDimensionsClampNnz) {
  SyntheticSpec spec = CriteoSimSpec(3);
  spec.num_rows = 100;
  Dataset d = GenerateSynthetic(spec);
  for (size_t i = 0; i < d.num_rows(); ++i) {
    ASSERT_LE(d.rows.Row(i).nnz, 3u);
  }
}

}  // namespace
}  // namespace colsgd
