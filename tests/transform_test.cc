// Tests for the row-to-column transforms (Section IV-A): content
// correctness, equivalence of naive and block-based dispatch, replication,
// reload after worker failure, and the cost-shape properties behind Fig. 7.
#include <gtest/gtest.h>

#include "datagen/synthetic.h"
#include "storage/transform.h"

namespace colsgd {
namespace {

ClusterSpec SmallCluster(int workers = 4) {
  ClusterSpec spec = ClusterSpec::Cluster1();
  spec.num_workers = workers;
  return spec;
}

Dataset TestData() {
  SyntheticSpec spec = TinySpec();
  spec.num_rows = 300;
  spec.num_features = 101;  // not divisible by K: exercises uneven dims
  return GenerateSynthetic(spec);
}

TEST(SplitBlockTest, EveryNonZeroLandsExactlyOnceWithLocalIndex) {
  Dataset d = TestData();
  std::vector<RowBlock> blocks = MakeRowBlocks(d, 64);
  auto partitioner = MakePartitioner("round_robin", d.num_features, 4);
  uint64_t total_nnz = 0;
  for (const RowBlock& block : blocks) {
    std::vector<Workset> worksets = SplitBlock(block, *partitioner);
    ASSERT_EQ(worksets.size(), 4u);
    for (int k = 0; k < 4; ++k) {
      ASSERT_EQ(worksets[k].num_rows(), block.num_rows());
      ASSERT_EQ(worksets[k].labels, block.labels);
      EXPECT_EQ(worksets[k].block_id, block.block_id);
      total_nnz += worksets[k].shard.nnz();
      // Every entry belongs to this worker and carries a valid local index.
      for (size_t r = 0; r < block.num_rows(); ++r) {
        const SparseVectorView shard_row = worksets[k].shard.Row(r);
        for (size_t j = 0; j < shard_row.nnz; ++j) {
          const uint64_t global =
              partitioner->GlobalIndex(k, shard_row.indices[j]);
          EXPECT_EQ(partitioner->Owner(global), k);
        }
      }
    }
    // Reconstruct each original row from the shards.
    for (size_t r = 0; r < block.num_rows(); ++r) {
      std::vector<float> dense(d.num_features, 0.0f);
      for (int k = 0; k < 4; ++k) {
        const SparseVectorView shard_row = worksets[k].shard.Row(r);
        for (size_t j = 0; j < shard_row.nnz; ++j) {
          dense[partitioner->GlobalIndex(k, shard_row.indices[j])] =
              shard_row.values[j];
        }
      }
      const SparseVectorView original = block.rows.Row(r);
      for (size_t j = 0; j < original.nnz; ++j) {
        EXPECT_EQ(dense[original.indices[j]], original.values[j]);
      }
    }
  }
  EXPECT_EQ(total_nnz, d.nnz());
}

TEST(TransformTest, NaiveAndBlockLoadsProduceIdenticalStores) {
  Dataset d = TestData();
  std::vector<RowBlock> blocks = MakeRowBlocks(d, 64);
  auto partitioner = MakePartitioner("round_robin", d.num_features, 4);
  TransformCostConfig cost;

  ClusterRuntime rt1(SmallCluster());
  ColumnLoadResult naive = NaiveColumnLoad(blocks, *partitioner, &rt1, cost);
  ClusterRuntime rt2(SmallCluster());
  ColumnLoadResult block = BlockColumnLoad(blocks, *partitioner, &rt2, cost);

  ASSERT_EQ(naive.stores.size(), block.stores.size());
  for (size_t k = 0; k < naive.stores.size(); ++k) {
    ASSERT_EQ(naive.stores[k].num_worksets(), block.stores[k].num_worksets());
    EXPECT_EQ(naive.stores[k].total_nnz(), block.stores[k].total_nnz());
    for (const Workset& w : naive.stores[k].worksets()) {
      const Workset* other = block.stores[k].Find(w.block_id);
      ASSERT_NE(other, nullptr);
      EXPECT_EQ(other->labels, w.labels);
      EXPECT_EQ(other->shard.indices(), w.shard.indices());
      EXPECT_EQ(other->shard.values(), w.shard.values());
      EXPECT_EQ(other->shard.row_offsets(), w.shard.row_offsets());
    }
  }
  EXPECT_EQ(naive.directory.total_rows(), d.num_rows());
}

TEST(TransformTest, NaiveLoadIsSlowerThanBlockLoad) {
  // The Fig. 7 headline: per-row dispatch drowns in per-message overhead.
  Dataset d = TestData();
  std::vector<RowBlock> blocks = MakeRowBlocks(d, 64);
  auto partitioner = MakePartitioner("round_robin", d.num_features, 4);
  TransformCostConfig cost;

  ClusterRuntime rt_naive(SmallCluster());
  NaiveColumnLoad(blocks, *partitioner, &rt_naive, cost);
  ClusterRuntime rt_block(SmallCluster());
  BlockColumnLoad(blocks, *partitioner, &rt_block, cost);
  EXPECT_GT(rt_naive.MaxClock(), 2.0 * rt_block.MaxClock());
}

TEST(TransformTest, RowLoadsAssignAllRows) {
  Dataset d = TestData();
  std::vector<RowBlock> blocks = MakeRowBlocks(d, 64);
  TransformCostConfig cost;

  ClusterRuntime rt(SmallCluster());
  RowLoadResult plain = LoadRowPartitioned(blocks, &rt, cost);
  uint64_t rows = 0;
  for (const auto& partition : plain.partitions) {
    for (const RowBlock& b : partition) rows += b.num_rows();
  }
  EXPECT_EQ(rows, d.num_rows());
  EXPECT_GT(rt.MaxClock(), 0.0);

  ClusterRuntime rt2(SmallCluster());
  RowLoadResult shuffled = LoadRowRepartitioned(blocks, &rt2, cost, 7);
  rows = 0;
  for (const auto& partition : shuffled.partitions) {
    for (const RowBlock& b : partition) rows += b.num_rows();
  }
  EXPECT_EQ(rows, d.num_rows());
  // Repartitioning costs extra (shuffle + re-cache).
  EXPECT_GT(rt2.MaxClock(), rt.MaxClock());
}

TEST(TransformTest, ReplicatedLoadMatchesPlainGroupShards) {
  Dataset d = TestData();
  std::vector<RowBlock> blocks = MakeRowBlocks(d, 64);
  // 4 workers, backup=1 -> 2 groups of 2 replicas; shards follow a 2-way
  // partitioner.
  auto partitioner = MakePartitioner("round_robin", d.num_features, 2);
  TransformCostConfig cost;

  ClusterRuntime rt(SmallCluster(4));
  ColumnLoadResult replicated = BlockColumnLoadReplicated(
      blocks, *partitioner, {{0, 1}, {2, 3}}, &rt, cost);

  ClusterRuntime rt_plain(SmallCluster(2));
  ColumnLoadResult plain = BlockColumnLoad(blocks, *partitioner, &rt_plain,
                                           cost);
  ASSERT_EQ(replicated.stores.size(), 2u);
  for (int g = 0; g < 2; ++g) {
    EXPECT_EQ(replicated.stores[g].total_nnz(), plain.stores[g].total_nnz());
    EXPECT_EQ(replicated.stores[g].total_rows(), plain.stores[g].total_rows());
  }
}

TEST(TransformTest, ReloadWorkerShardsRebuildsFailedWorker) {
  Dataset d = TestData();
  std::vector<RowBlock> blocks = MakeRowBlocks(d, 64);
  auto partitioner = MakePartitioner("round_robin", d.num_features, 4);
  TransformCostConfig cost;

  ClusterRuntime rt(SmallCluster());
  ColumnLoadResult load = BlockColumnLoad(blocks, *partitioner, &rt, cost);
  const double before = rt.MaxClock();
  WorksetStore reloaded =
      ReloadWorkerShards(blocks, *partitioner, 2, &rt, cost);
  EXPECT_GT(rt.MaxClock(), before);

  const WorksetStore& original = load.stores[2];
  ASSERT_EQ(reloaded.num_worksets(), original.num_worksets());
  EXPECT_EQ(reloaded.total_nnz(), original.total_nnz());
  for (const Workset& w : original.worksets()) {
    const Workset* r = reloaded.Find(w.block_id);
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->shard.indices(), w.shard.indices());
    EXPECT_EQ(r->shard.values(), w.shard.values());
  }
}

TEST(TransformTest, BlockLoadChargesTrafficOnTheWire) {
  Dataset d = TestData();
  std::vector<RowBlock> blocks = MakeRowBlocks(d, 64);
  auto partitioner = MakePartitioner("round_robin", d.num_features, 4);
  ClusterRuntime rt(SmallCluster());
  BlockColumnLoad(blocks, *partitioner, &rt, TransformCostConfig());
  const TrafficStats total = rt.net().TotalStats();
  // 3 of 4 shards of every block travel; plus the tiny assignment messages.
  EXPECT_GT(total.bytes_sent, d.nnz() * 8 / 2);
  EXPECT_GT(total.messages_sent, blocks.size() * 3);
}

}  // namespace
}  // namespace colsgd
