// Tests for the Table I analytic cost model.
#include <gtest/gtest.h>

#include <cmath>

#include "engine/cost_model.h"

namespace colsgd {
namespace {

CostModelInput PaperishInput() {
  CostModelInput in;
  in.m = 1000000;
  in.rho = 0.99998;  // ~20 nnz per row
  in.B = 1000;
  in.K = 8;
  in.N = 100000;
  return in;
}

TEST(CostModelTest, PhiMonotoneInBatchSize) {
  CostModelInput in = PaperishInput();
  const double p1 = Phi1(in);
  const double p2 = Phi2(in);
  EXPECT_GT(p2, p1);  // whole batch touches more dims than a 1/K share
  EXPECT_GT(p1, 0.0);
  EXPECT_LT(p2, 1.0);
  in.B *= 10;
  EXPECT_GT(Phi1(in), p1);
  EXPECT_GT(Phi2(in), p2);
}

TEST(CostModelTest, PhiLimits) {
  CostModelInput in = PaperishInput();
  in.rho = 0.0;  // fully dense rows
  EXPECT_DOUBLE_EQ(Phi1(in), 1.0);
  EXPECT_DOUBLE_EQ(Phi2(in), 1.0);
}

TEST(CostModelTest, DataSizeFormula) {
  CostModelInput in;
  in.N = 10;
  in.m = 100;
  in.rho = 0.9;
  EXPECT_NEAR(DataSize(in), 10 + 10 * 100 * 0.1, 1e-9);
}

TEST(CostModelTest, RowSgdMatchesTableI) {
  CostModelInput in = PaperishInput();
  const double m = static_cast<double>(in.m);
  const double phi1 = Phi1(in);
  const double phi2 = Phi2(in);
  const CostEntry row = RowSgdCost(in);
  EXPECT_DOUBLE_EQ(row.master_memory, m + m * phi2);
  EXPECT_DOUBLE_EQ(row.worker_memory, DataSize(in) / in.K + 2 * m * phi1);
  EXPECT_DOUBLE_EQ(row.master_comm, 2 * in.K * m * phi1);
  EXPECT_DOUBLE_EQ(row.worker_comm, 2 * m * phi1);
}

TEST(CostModelTest, ColumnSgdMatchesTableI) {
  CostModelInput in = PaperishInput();
  const CostEntry col = ColumnSgdCost(in);
  EXPECT_DOUBLE_EQ(col.master_memory, 1000.0);
  EXPECT_DOUBLE_EQ(col.master_comm, 2.0 * 8 * 1000);
  EXPECT_DOUBLE_EQ(col.worker_comm, 2000.0);
  EXPECT_DOUBLE_EQ(col.worker_memory,
                   DataSize(in) / in.K + 2000.0 + 1000000.0 / 8);
}

TEST(CostModelTest, ColumnCommIndependentOfModelSize) {
  CostModelInput in = PaperishInput();
  const CostEntry small = ColumnSgdCost(in);
  in.m *= 1000;
  const CostEntry big = ColumnSgdCost(in);
  EXPECT_DOUBLE_EQ(small.worker_comm, big.worker_comm);
  EXPECT_DOUBLE_EQ(small.master_comm, big.master_comm);
  // RowSGD communication grows with m.
  CostModelInput row_in = PaperishInput();
  const double before = RowSgdCost(row_in).worker_comm;
  row_in.m *= 1000;
  EXPECT_GT(RowSgdCost(row_in).worker_comm, 100 * before);
}

TEST(CostModelTest, ColumnBeatsRowForLargeModels) {
  // The paper's headline tradeoff: ColumnSGD wins on worker communication
  // when a worker's batch share touches far more dimensions than 2B, i.e.
  // when nnz/row >> K (dense-ish rows over a huge dimension).
  CostModelInput in = PaperishInput();
  in.m = 50000000;
  in.rho = 1.0 - 200.0 / static_cast<double>(in.m);  // ~200 nnz per row
  EXPECT_GT(RowSgdCost(in).worker_comm, 10 * ColumnSgdCost(in).worker_comm);
  // And the master's aggregate traffic shrinks even more.
  EXPECT_GT(RowSgdCost(in).master_comm, 10 * ColumnSgdCost(in).master_comm);
}

TEST(CostModelTest, CrossoverForTinyModels) {
  // For very small models, RowSGD's m*phi1 can drop below 2B: ColumnSGD is
  // not a "one size fits all" (paper's discussion section).
  CostModelInput in = PaperishInput();
  in.m = 100;
  in.rho = 0.5;
  EXPECT_LT(RowSgdCost(in).worker_comm, ColumnSgdCost(in).worker_comm);
}

}  // namespace
}  // namespace colsgd
