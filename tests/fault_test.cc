// Tests for the cluster/fault subsystem: FaultPlan (scripted index,
// probabilistic processes, straggler modes, message drops), the failure
// detector's timing policy, and checkpoint save/restore via model_io.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <set>

#include "cluster/fault/failure_detector.h"
#include "cluster/fault/fault_plan.h"
#include "engine/checkpoint.h"

namespace colsgd {
namespace {

TEST(FaultPlanTest, EmptyPlanIsInert) {
  FaultPlan plan;
  EXPECT_FALSE(plan.active());
  EXPECT_FALSE(plan.has_failures());
  EXPECT_TRUE(plan.EventsAt(0).empty());
  EXPECT_FALSE(plan.DropMessage(0, 0, 1));
  EXPECT_DOUBLE_EQ(plan.StragglerLevel(0, 0), 0.0);
}

TEST(FaultPlanTest, ScriptedEventsIndexedByIteration) {
  // Multiple events on one iteration, plus events far apart: lookup must
  // return exactly the scheduled set, in script order.
  FaultPlan plan = FaultPlan::Scripted({
      {5, 2, FaultKind::kWorkerFailure},
      {5, 0, FaultKind::kTaskFailure},
      {1000000, 1, FaultKind::kTaskFailure},
  });
  EXPECT_TRUE(plan.has_failures());
  EXPECT_TRUE(plan.EventsAt(4).empty());
  const std::vector<FaultEvent> at5 = plan.EventsAt(5);
  ASSERT_EQ(at5.size(), 2u);
  EXPECT_EQ(at5[0].worker, 2);
  EXPECT_EQ(at5[0].kind, FaultKind::kWorkerFailure);
  EXPECT_EQ(at5[1].worker, 0);
  EXPECT_EQ(at5[1].kind, FaultKind::kTaskFailure);
  ASSERT_EQ(plan.EventsAt(1000000).size(), 1u);
}

TEST(FaultPlanTest, MtbfDrawsAreDeterministicAndRateMatched) {
  FaultPlanConfig config;
  config.seed = 42;
  config.num_workers = 8;
  config.worker_mtbf_iters = 50.0;  // p = 0.02 per worker per iteration
  FaultPlan a(config), b(config);

  int64_t failures = 0;
  const int64_t iters = 20000;
  for (int64_t i = 0; i < iters; ++i) {
    const auto ea = a.EventsAt(i);
    EXPECT_EQ(ea.size(), b.EventsAt(i).size()) << "iteration " << i;
    failures += static_cast<int64_t>(ea.size());
    for (const FaultEvent& e : ea) {
      EXPECT_EQ(e.kind, FaultKind::kWorkerFailure);
    }
  }
  // Expected 8 * 20000 / 50 = 3200 failures; allow 10% slack.
  EXPECT_NEAR(static_cast<double>(failures), 3200.0, 320.0);
}

TEST(FaultPlanTest, EventsAtIsRandomAccess) {
  // Querying out of order or repeatedly must not change the draws.
  FaultPlanConfig config;
  config.seed = 7;
  config.num_workers = 4;
  config.task_mtbf_iters = 10.0;
  FaultPlan plan(config);
  const auto first = plan.EventsAt(123);
  plan.EventsAt(7);
  plan.EventsAt(999);
  const auto again = plan.EventsAt(123);
  ASSERT_EQ(first.size(), again.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].worker, again[i].worker);
  }
}

TEST(FaultPlanTest, RotatingStragglerPicksOneWorkerPerIteration) {
  FaultPlanConfig config;
  config.seed = 99;
  config.num_workers = 8;
  config.stragglers.mode = StragglerSpec::Mode::kRotating;
  config.stragglers.level = 5.0;
  FaultPlan plan(config);
  EXPECT_TRUE(plan.active());
  EXPECT_FALSE(plan.has_failures());

  std::set<int> picked;
  for (int64_t i = 0; i < 200; ++i) {
    int slow = 0;
    for (int w = 0; w < 8; ++w) {
      const double level = plan.StragglerLevel(i, w);
      if (level > 0.0) {
        EXPECT_DOUBLE_EQ(level, 5.0);
        picked.insert(w);
        ++slow;
      }
    }
    EXPECT_EQ(slow, 1) << "iteration " << i;
  }
  // Over 200 iterations the pick should rotate across the cluster.
  EXPECT_GT(picked.size(), 4u);
}

TEST(FaultPlanTest, PersistentStragglersHitConfiguredWorkersOnly) {
  FaultPlanConfig config;
  config.seed = 3;
  config.num_workers = 6;
  config.stragglers.mode = StragglerSpec::Mode::kPersistent;
  config.stragglers.workers = {1, 4};
  config.stragglers.level = 2.0;
  FaultPlan plan(config);
  for (int64_t i = 0; i < 50; ++i) {
    for (int w = 0; w < 6; ++w) {
      const bool slow = (w == 1 || w == 4);
      EXPECT_DOUBLE_EQ(plan.StragglerLevel(i, w), slow ? 2.0 : 0.0);
    }
  }
}

TEST(FaultPlanTest, LevelDistributionDrawsWithinRange) {
  FaultPlanConfig config;
  config.seed = 11;
  config.num_workers = 4;
  config.stragglers.mode = StragglerSpec::Mode::kPersistent;
  config.stragglers.workers = {0};
  config.stragglers.level = 1.0;
  config.stragglers.level_hi = 4.0;
  FaultPlan plan(config);
  double lo = 1e9, hi = -1e9;
  for (int64_t i = 0; i < 500; ++i) {
    const double level = plan.StragglerLevel(i, 0);
    EXPECT_GE(level, 1.0);
    EXPECT_LT(level, 4.0);
    lo = std::min(lo, level);
    hi = std::max(hi, level);
  }
  EXPECT_LT(lo, 1.5);  // the distribution actually spreads
  EXPECT_GT(hi, 3.5);
}

TEST(FaultPlanTest, CorrelatedStragglersDegradeIterationsTogether) {
  FaultPlanConfig config;
  config.seed = 21;
  config.num_workers = 16;
  config.stragglers.mode = StragglerSpec::Mode::kCorrelated;
  config.stragglers.probability = 0.25;
  config.stragglers.fraction = 0.5;
  config.stragglers.level = 3.0;
  FaultPlan plan(config);

  int degraded_iters = 0;
  int slow_workers = 0;
  const int64_t iters = 2000;
  for (int64_t i = 0; i < iters; ++i) {
    int slow = 0;
    for (int w = 0; w < 16; ++w) {
      if (plan.StragglerLevel(i, w) > 0.0) ++slow;
    }
    if (slow > 0) ++degraded_iters;
    slow_workers += slow;
  }
  // ~25% of iterations degraded (a degraded iteration virtually always has
  // at least one of 16 workers slow), ~half the cluster each time.
  EXPECT_NEAR(degraded_iters, 500, 100);
  EXPECT_NEAR(static_cast<double>(slow_workers) / degraded_iters, 8.0, 1.5);
}

TEST(FaultPlanTest, MessageDropRateMatchesProbability) {
  FaultPlanConfig config;
  config.seed = 5;
  config.num_workers = 4;
  config.message_drop_prob = 0.1;
  FaultPlan plan(config);
  EXPECT_TRUE(plan.active());
  int drops = 0;
  const int64_t iters = 10000;
  for (int64_t i = 0; i < iters; ++i) {
    if (plan.DropMessage(i, 1, 0)) ++drops;
    // Deterministic per (iteration, link).
    EXPECT_EQ(plan.DropMessage(i, 1, 0), plan.DropMessage(i, 1, 0));
  }
  EXPECT_NEAR(static_cast<double>(drops), 1000.0, 150.0);
}

TEST(FaultPlanTest, ValidateRejectsNonsensePlans) {
  FaultPlanConfig bad_prob;
  bad_prob.message_drop_prob = 1.5;
  EXPECT_EQ(FaultPlan::Validate(bad_prob).code(),
            StatusCode::kInvalidArgument);

  FaultPlanConfig neg_prob;
  neg_prob.message_corrupt_prob = -0.1;
  EXPECT_FALSE(FaultPlan::Validate(neg_prob).ok());

  FaultPlanConfig neg_mtbf;
  neg_mtbf.worker_mtbf_iters = -5.0;
  EXPECT_FALSE(FaultPlan::Validate(neg_mtbf).ok());

  FaultPlanConfig bad_torn;
  bad_torn.torn_checkpoint_prob = 2.0;
  EXPECT_FALSE(FaultPlan::Validate(bad_torn).ok());

  FaultPlanConfig bad_straggler;
  bad_straggler.stragglers.mode = StragglerSpec::Mode::kCorrelated;
  bad_straggler.stragglers.probability = 1.2;
  EXPECT_FALSE(FaultPlan::Validate(bad_straggler).ok());

  FaultPlanConfig bad_event;
  bad_event.num_workers = 4;
  bad_event.scripted = {{-1, 0, FaultKind::kTaskFailure}};
  EXPECT_FALSE(FaultPlan::Validate(bad_event).ok());

  FaultPlanConfig out_of_range;
  out_of_range.num_workers = 4;
  out_of_range.scripted = {{3, 7, FaultKind::kWorkerFailure}};
  EXPECT_FALSE(FaultPlan::Validate(out_of_range).ok());

  FaultPlanConfig empty_side;
  empty_side.num_workers = 4;
  empty_side.partitions.push_back({2, 1, {}});
  EXPECT_FALSE(FaultPlan::Validate(empty_side).ok());

  FaultPlanConfig zero_window;
  zero_window.num_workers = 4;
  zero_window.partitions.push_back({2, 0, {1}});
  EXPECT_FALSE(FaultPlan::Validate(zero_window).ok());

  // Create is the validating constructor.
  EXPECT_FALSE(FaultPlan::Create(bad_prob).ok());
  FaultPlanConfig good;
  good.num_workers = 4;
  good.message_drop_prob = 0.05;
  good.partitions.push_back({2, 3, {0, 1}});
  ASSERT_TRUE(FaultPlan::Create(good).ok());
  EXPECT_TRUE(FaultPlan::Validate(good).ok());
}

TEST(FaultPlanTest, CorruptMessageRateAndDeterminism) {
  FaultPlanConfig config;
  config.seed = 17;
  config.num_workers = 4;
  config.message_corrupt_prob = 0.1;
  FaultPlan plan(config);
  EXPECT_TRUE(plan.active());
  EXPECT_TRUE(plan.wire_integrity());
  int corrupt = 0;
  const int64_t iters = 10000;
  for (int64_t i = 0; i < iters; ++i) {
    if (plan.CorruptMessage(i, 1, 0)) ++corrupt;
    EXPECT_EQ(plan.CorruptMessage(i, 1, 0), plan.CorruptMessage(i, 1, 0));
  }
  EXPECT_NEAR(static_cast<double>(corrupt), 1000.0, 150.0);
  // Corruption and drop are independent draws of the same seed: with both
  // probabilities at 0.5 the two decision sequences must diverge.
  FaultPlanConfig both = config;
  both.message_drop_prob = 0.5;
  both.message_corrupt_prob = 0.5;
  FaultPlan coupled(both);
  int differs = 0;
  for (int64_t i = 0; i < 200; ++i) {
    differs += coupled.DropMessage(i, 1, 0) != coupled.CorruptMessage(i, 1, 0);
  }
  EXPECT_GT(differs, 50);  // ~100 expected if independent, 0 if coupled
  // The flipped bit is in range and deterministic.
  for (int64_t i = 0; i < 50; ++i) {
    const uint64_t bit = plan.CorruptionBit(i, 1, 0, 4096);
    EXPECT_LT(bit, 4096u);
    EXPECT_EQ(bit, plan.CorruptionBit(i, 1, 0, 4096));
  }
}

TEST(FaultPlanTest, PartitionSeversExactlyTheSplitLinks) {
  // 4 workers; window [5, 7): side A = {0, 1}. Node ids: 0 master,
  // 1..4 workers, 5..8 PS servers co-located with worker (node - 5).
  FaultPlanConfig config;
  config.num_workers = 4;
  config.partitions.push_back({5, 2, {0, 1}});
  FaultPlan plan(config);
  EXPECT_TRUE(plan.active());
  EXPECT_TRUE(plan.wire_integrity());
  EXPECT_FALSE(plan.PartitionActiveAt(4));
  EXPECT_TRUE(plan.PartitionActiveAt(5));
  EXPECT_TRUE(plan.PartitionActiveAt(6));
  EXPECT_FALSE(plan.PartitionActiveAt(7));

  // Outside the window nothing is severed.
  EXPECT_FALSE(plan.LinkPartitioned(4, 1, 3));
  EXPECT_FALSE(plan.LinkPartitioned(7, 1, 3));
  // Within: cross-split worker links are severed, same-side links are not.
  EXPECT_TRUE(plan.LinkPartitioned(5, 1, 3));   // w0 -> w2 crosses
  EXPECT_TRUE(plan.LinkPartitioned(6, 4, 2));   // w3 -> w1 crosses
  EXPECT_FALSE(plan.LinkPartitioned(5, 1, 2));  // w0 -> w1 same side
  EXPECT_FALSE(plan.LinkPartitioned(5, 3, 4));  // w2 -> w3 same side
  // The master (node 0) sides with the complement.
  EXPECT_TRUE(plan.LinkPartitioned(5, 0, 1));
  EXPECT_TRUE(plan.LinkPartitioned(5, 2, 0));
  EXPECT_FALSE(plan.LinkPartitioned(5, 0, 3));
  // PS servers side with their co-located worker.
  EXPECT_FALSE(plan.LinkPartitioned(5, 1, 5));  // w0 -> ps0 same side
  EXPECT_TRUE(plan.LinkPartitioned(5, 1, 7));   // w0 -> ps2 crosses
  EXPECT_TRUE(plan.LinkPartitioned(5, 8, 2));   // ps3 -> w1 crosses
}

TEST(FaultPlanTest, CheckpointFaultDrawsAreSeededAndRateMatched) {
  FaultPlanConfig config;
  config.seed = 23;
  config.torn_checkpoint_prob = 0.2;
  config.checkpoint_bitrot_prob = 0.25;
  FaultPlan plan(config), replay(config);
  EXPECT_TRUE(plan.active());
  int torn = 0, rot = 0;
  const int64_t iters = 10000;
  for (int64_t i = 0; i < iters; ++i) {
    const CheckpointFault fault = plan.CheckpointFaultAt(i);
    EXPECT_EQ(fault, replay.CheckpointFaultAt(i));
    EXPECT_EQ(plan.CheckpointDamageDraw(i), replay.CheckpointDamageDraw(i));
    torn += fault == CheckpointFault::kTornWrite;
    rot += fault == CheckpointFault::kBitRot;
  }
  EXPECT_NEAR(static_cast<double>(torn), 2000.0, 250.0);
  // Bit rot is drawn only when the write was not torn: 0.8 * 0.25 = 0.2.
  EXPECT_NEAR(static_cast<double>(rot), 2000.0, 250.0);
}

TEST(FailureDetectorTest, DetectionAndBackoffPolicy) {
  FailureDetector detector{FailureDetectorConfig{}};
  // Defaults: 0.1 heartbeat interval + 0.5 timeout.
  EXPECT_DOUBLE_EQ(detector.WorkerDetectionDelay(), 0.6);
  // Exponential backoff from 0.2, doubling, capped at 5.
  EXPECT_DOUBLE_EQ(detector.TaskRetryDelay(0), 0.2);
  EXPECT_DOUBLE_EQ(detector.TaskRetryDelay(1), 0.4);
  EXPECT_DOUBLE_EQ(detector.TaskRetryDelay(2), 0.8);
  EXPECT_DOUBLE_EQ(detector.TaskRetryDelay(10), 5.0);
}

TEST(FailureDetectorTest, HugeAttemptCountsStayClamped) {
  // Multiply-then-cap overflows a double (2^1024 = inf); the clamp must
  // live inside the loop so huge attempt counts return the cap, finite.
  FailureDetector detector{FailureDetectorConfig{}};
  for (int attempt : {64, 1024, 100000}) {
    const double delay = detector.TaskRetryDelay(attempt);
    EXPECT_TRUE(std::isfinite(delay)) << "attempt " << attempt;
    EXPECT_DOUBLE_EQ(delay, 5.0) << "attempt " << attempt;
  }
  EXPECT_DOUBLE_EQ(detector.RetransmitDelay(100000), 5.0);
}

TEST(FailureDetectorTest, RetransmitBackoffStartsAtAckTimeout) {
  FailureDetector detector{FailureDetectorConfig{}};
  EXPECT_DOUBLE_EQ(detector.RetransmitDelay(0), 0.05);
  EXPECT_DOUBLE_EQ(detector.RetransmitDelay(1), 0.1);
  EXPECT_DOUBLE_EQ(detector.RetransmitDelay(2), 0.2);
}

TEST(CheckpointStoreTest, ScheduleFollowsEvery) {
  CheckpointConfig config;
  config.every = 10;
  CheckpointStore store(config);
  EXPECT_FALSE(store.ShouldCheckpoint(0));
  EXPECT_TRUE(store.ShouldCheckpoint(9));    // after 10 completed iterations
  EXPECT_FALSE(store.ShouldCheckpoint(10));
  EXPECT_TRUE(store.ShouldCheckpoint(19));
  EXPECT_FALSE(CheckpointStore().ShouldCheckpoint(9));  // disabled by default
}

SavedModel TestModel() {
  SavedModel model;
  model.model_name = "lr";
  model.num_features = 4;
  model.weights = {0.5, -1.25, 3.0, 0.0};
  model.shared = {};
  return model;
}

TEST(CheckpointStoreTest, InMemorySaveRestoresExactState) {
  CheckpointStore store(CheckpointConfig{});
  EXPECT_EQ(store.Latest(), nullptr);
  ASSERT_TRUE(store.Save(TestModel(), 30).ok());
  ASSERT_NE(store.Latest(), nullptr);
  EXPECT_EQ(store.Latest()->weights, TestModel().weights);
  EXPECT_EQ(store.completed_iterations(), 30);
  EXPECT_EQ(store.bytes(), SerializedModelBytes(TestModel()));
}

TEST(CheckpointStoreTest, FileBackedSaveRoundTripsThroughModelIo) {
  CheckpointConfig config;
  config.path = ::testing::TempDir() + "/colsgd_checkpoint_test.bin";
  CheckpointStore store(config);
  const SavedModel model = TestModel();
  ASSERT_TRUE(store.Save(model, 10).ok());

  // The store's copy went through WriteModelFile + ReadModelFile: the
  // restore observes exactly the serialized state, bit for bit.
  ASSERT_NE(store.Latest(), nullptr);
  EXPECT_EQ(store.Latest()->model_name, model.model_name);
  EXPECT_EQ(store.Latest()->num_features, model.num_features);
  EXPECT_EQ(store.Latest()->weights, model.weights);
  EXPECT_EQ(store.Latest()->shared, model.shared);

  // And the file itself is independently readable.
  auto reread = ReadModelFile(config.path);
  ASSERT_TRUE(reread.ok());
  EXPECT_EQ(reread.ValueOrDie().weights, model.weights);
  std::remove(config.path.c_str());
}

TEST(CheckpointStoreTest, TornWriteFallsBackToPreviousCheckpoint) {
  CheckpointStore store(CheckpointConfig{});
  SavedModel old_model = TestModel();
  SavedModel new_model = TestModel();
  new_model.weights = {9.0, 9.0, 9.0, 9.0};
  ASSERT_TRUE(store.Save(old_model, 10).ok());
  ASSERT_TRUE(
      store.Save(new_model, 20, CheckpointFault::kTornWrite, 12345).ok());
  EXPECT_EQ(store.retained(), 2u);
  // The intended write is still charged at full size.
  EXPECT_EQ(store.bytes(), SerializedModelBytes(new_model));

  CheckpointRestoreStats stats;
  const SavedModel* restored = store.Latest(&stats);
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->weights, old_model.weights);  // fell back
  EXPECT_EQ(stats.fallbacks, 1);
  EXPECT_TRUE(stats.found_valid);
  // The damaged image was pruned; the store now reports the restored state.
  EXPECT_EQ(store.completed_iterations(), 10);
  EXPECT_EQ(store.retained(), 1u);
}

TEST(CheckpointStoreTest, BitRotIsDetectedNotLoaded) {
  CheckpointStore store(CheckpointConfig{});
  ASSERT_TRUE(store.Save(TestModel(), 10).ok());
  ASSERT_TRUE(
      store.Save(TestModel(), 20, CheckpointFault::kBitRot, 0xDEADBEEF).ok());
  CheckpointRestoreStats stats;
  const SavedModel* restored = store.Latest(&stats);
  ASSERT_NE(restored, nullptr);
  // A single flipped bit anywhere in the image fails the CRC32C trailer;
  // the restore never silently returns rotted weights.
  EXPECT_EQ(restored->weights, TestModel().weights);
  EXPECT_EQ(stats.fallbacks, 1);
}

TEST(CheckpointStoreTest, AllDamagedMeansNoCheckpoint) {
  CheckpointStore store(CheckpointConfig{});
  ASSERT_TRUE(
      store.Save(TestModel(), 10, CheckpointFault::kTornWrite, 7).ok());
  ASSERT_TRUE(
      store.Save(TestModel(), 20, CheckpointFault::kBitRot, 8).ok());
  CheckpointRestoreStats stats;
  EXPECT_EQ(store.Latest(&stats), nullptr);
  EXPECT_EQ(stats.fallbacks, 2);
  EXPECT_FALSE(stats.found_valid);
  EXPECT_EQ(store.retained(), 0u);
}

TEST(CheckpointStoreTest, RetainsOnlyKeepGenerations) {
  CheckpointConfig config;
  config.keep = 3;
  CheckpointStore store(config);
  for (int64_t i = 1; i <= 5; ++i) {
    SavedModel m = TestModel();
    m.weights[0] = static_cast<double>(i);
    ASSERT_TRUE(store.Save(m, i * 10).ok());
  }
  EXPECT_EQ(store.retained(), 3u);
  EXPECT_EQ(store.completed_iterations(), 50);
  ASSERT_NE(store.Latest(), nullptr);
  EXPECT_DOUBLE_EQ(store.Latest()->weights[0], 5.0);
}

TEST(CheckpointStoreTest, FileBackedTornWriteRecoversFromRotatedSlot) {
  CheckpointConfig config;
  config.path = ::testing::TempDir() + "/colsgd_chaos_ckpt_test.bin";
  CheckpointStore store(config);
  ASSERT_TRUE(store.Save(TestModel(), 10).ok());
  ASSERT_TRUE(
      store.Save(TestModel(), 20, CheckpointFault::kTornWrite, 99).ok());
  // The newest on-disk slot is torn and must not parse; the rotated slot
  // (path.1) still holds the previous valid image.
  EXPECT_FALSE(ReadModelFile(config.path).ok());
  EXPECT_TRUE(ReadModelFile(config.path + ".1").ok());
  CheckpointRestoreStats stats;
  ASSERT_NE(store.Latest(&stats), nullptr);
  EXPECT_EQ(stats.fallbacks, 1);
  std::remove(config.path.c_str());
  std::remove((config.path + ".1").c_str());
}

}  // namespace
}  // namespace colsgd
