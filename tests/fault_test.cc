// Tests for the cluster/fault subsystem: FaultPlan (scripted index,
// probabilistic processes, straggler modes, message drops), the failure
// detector's timing policy, and checkpoint save/restore via model_io.
#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "cluster/fault/failure_detector.h"
#include "cluster/fault/fault_plan.h"
#include "engine/checkpoint.h"

namespace colsgd {
namespace {

TEST(FaultPlanTest, EmptyPlanIsInert) {
  FaultPlan plan;
  EXPECT_FALSE(plan.active());
  EXPECT_FALSE(plan.has_failures());
  EXPECT_TRUE(plan.EventsAt(0).empty());
  EXPECT_FALSE(plan.DropMessage(0, 0, 1));
  EXPECT_DOUBLE_EQ(plan.StragglerLevel(0, 0), 0.0);
}

TEST(FaultPlanTest, ScriptedEventsIndexedByIteration) {
  // Multiple events on one iteration, plus events far apart: lookup must
  // return exactly the scheduled set, in script order.
  FaultPlan plan = FaultPlan::Scripted({
      {5, 2, FaultKind::kWorkerFailure},
      {5, 0, FaultKind::kTaskFailure},
      {1000000, 1, FaultKind::kTaskFailure},
  });
  EXPECT_TRUE(plan.has_failures());
  EXPECT_TRUE(plan.EventsAt(4).empty());
  const std::vector<FaultEvent> at5 = plan.EventsAt(5);
  ASSERT_EQ(at5.size(), 2u);
  EXPECT_EQ(at5[0].worker, 2);
  EXPECT_EQ(at5[0].kind, FaultKind::kWorkerFailure);
  EXPECT_EQ(at5[1].worker, 0);
  EXPECT_EQ(at5[1].kind, FaultKind::kTaskFailure);
  ASSERT_EQ(plan.EventsAt(1000000).size(), 1u);
}

TEST(FaultPlanTest, MtbfDrawsAreDeterministicAndRateMatched) {
  FaultPlanConfig config;
  config.seed = 42;
  config.num_workers = 8;
  config.worker_mtbf_iters = 50.0;  // p = 0.02 per worker per iteration
  FaultPlan a(config), b(config);

  int64_t failures = 0;
  const int64_t iters = 20000;
  for (int64_t i = 0; i < iters; ++i) {
    const auto ea = a.EventsAt(i);
    EXPECT_EQ(ea.size(), b.EventsAt(i).size()) << "iteration " << i;
    failures += static_cast<int64_t>(ea.size());
    for (const FaultEvent& e : ea) {
      EXPECT_EQ(e.kind, FaultKind::kWorkerFailure);
    }
  }
  // Expected 8 * 20000 / 50 = 3200 failures; allow 10% slack.
  EXPECT_NEAR(static_cast<double>(failures), 3200.0, 320.0);
}

TEST(FaultPlanTest, EventsAtIsRandomAccess) {
  // Querying out of order or repeatedly must not change the draws.
  FaultPlanConfig config;
  config.seed = 7;
  config.num_workers = 4;
  config.task_mtbf_iters = 10.0;
  FaultPlan plan(config);
  const auto first = plan.EventsAt(123);
  plan.EventsAt(7);
  plan.EventsAt(999);
  const auto again = plan.EventsAt(123);
  ASSERT_EQ(first.size(), again.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].worker, again[i].worker);
  }
}

TEST(FaultPlanTest, RotatingStragglerPicksOneWorkerPerIteration) {
  FaultPlanConfig config;
  config.seed = 99;
  config.num_workers = 8;
  config.stragglers.mode = StragglerSpec::Mode::kRotating;
  config.stragglers.level = 5.0;
  FaultPlan plan(config);
  EXPECT_TRUE(plan.active());
  EXPECT_FALSE(plan.has_failures());

  std::set<int> picked;
  for (int64_t i = 0; i < 200; ++i) {
    int slow = 0;
    for (int w = 0; w < 8; ++w) {
      const double level = plan.StragglerLevel(i, w);
      if (level > 0.0) {
        EXPECT_DOUBLE_EQ(level, 5.0);
        picked.insert(w);
        ++slow;
      }
    }
    EXPECT_EQ(slow, 1) << "iteration " << i;
  }
  // Over 200 iterations the pick should rotate across the cluster.
  EXPECT_GT(picked.size(), 4u);
}

TEST(FaultPlanTest, PersistentStragglersHitConfiguredWorkersOnly) {
  FaultPlanConfig config;
  config.seed = 3;
  config.num_workers = 6;
  config.stragglers.mode = StragglerSpec::Mode::kPersistent;
  config.stragglers.workers = {1, 4};
  config.stragglers.level = 2.0;
  FaultPlan plan(config);
  for (int64_t i = 0; i < 50; ++i) {
    for (int w = 0; w < 6; ++w) {
      const bool slow = (w == 1 || w == 4);
      EXPECT_DOUBLE_EQ(plan.StragglerLevel(i, w), slow ? 2.0 : 0.0);
    }
  }
}

TEST(FaultPlanTest, LevelDistributionDrawsWithinRange) {
  FaultPlanConfig config;
  config.seed = 11;
  config.num_workers = 4;
  config.stragglers.mode = StragglerSpec::Mode::kPersistent;
  config.stragglers.workers = {0};
  config.stragglers.level = 1.0;
  config.stragglers.level_hi = 4.0;
  FaultPlan plan(config);
  double lo = 1e9, hi = -1e9;
  for (int64_t i = 0; i < 500; ++i) {
    const double level = plan.StragglerLevel(i, 0);
    EXPECT_GE(level, 1.0);
    EXPECT_LT(level, 4.0);
    lo = std::min(lo, level);
    hi = std::max(hi, level);
  }
  EXPECT_LT(lo, 1.5);  // the distribution actually spreads
  EXPECT_GT(hi, 3.5);
}

TEST(FaultPlanTest, CorrelatedStragglersDegradeIterationsTogether) {
  FaultPlanConfig config;
  config.seed = 21;
  config.num_workers = 16;
  config.stragglers.mode = StragglerSpec::Mode::kCorrelated;
  config.stragglers.probability = 0.25;
  config.stragglers.fraction = 0.5;
  config.stragglers.level = 3.0;
  FaultPlan plan(config);

  int degraded_iters = 0;
  int slow_workers = 0;
  const int64_t iters = 2000;
  for (int64_t i = 0; i < iters; ++i) {
    int slow = 0;
    for (int w = 0; w < 16; ++w) {
      if (plan.StragglerLevel(i, w) > 0.0) ++slow;
    }
    if (slow > 0) ++degraded_iters;
    slow_workers += slow;
  }
  // ~25% of iterations degraded (a degraded iteration virtually always has
  // at least one of 16 workers slow), ~half the cluster each time.
  EXPECT_NEAR(degraded_iters, 500, 100);
  EXPECT_NEAR(static_cast<double>(slow_workers) / degraded_iters, 8.0, 1.5);
}

TEST(FaultPlanTest, MessageDropRateMatchesProbability) {
  FaultPlanConfig config;
  config.seed = 5;
  config.num_workers = 4;
  config.message_drop_prob = 0.1;
  FaultPlan plan(config);
  EXPECT_TRUE(plan.active());
  int drops = 0;
  const int64_t iters = 10000;
  for (int64_t i = 0; i < iters; ++i) {
    if (plan.DropMessage(i, 1, 0)) ++drops;
    // Deterministic per (iteration, link).
    EXPECT_EQ(plan.DropMessage(i, 1, 0), plan.DropMessage(i, 1, 0));
  }
  EXPECT_NEAR(static_cast<double>(drops), 1000.0, 150.0);
}

TEST(FailureDetectorTest, DetectionAndBackoffPolicy) {
  FailureDetector detector{FailureDetectorConfig{}};
  // Defaults: 0.1 heartbeat interval + 0.5 timeout.
  EXPECT_DOUBLE_EQ(detector.WorkerDetectionDelay(), 0.6);
  // Exponential backoff from 0.2, doubling, capped at 5.
  EXPECT_DOUBLE_EQ(detector.TaskRetryDelay(0), 0.2);
  EXPECT_DOUBLE_EQ(detector.TaskRetryDelay(1), 0.4);
  EXPECT_DOUBLE_EQ(detector.TaskRetryDelay(2), 0.8);
  EXPECT_DOUBLE_EQ(detector.TaskRetryDelay(10), 5.0);
}

TEST(CheckpointStoreTest, ScheduleFollowsEvery) {
  CheckpointConfig config;
  config.every = 10;
  CheckpointStore store(config);
  EXPECT_FALSE(store.ShouldCheckpoint(0));
  EXPECT_TRUE(store.ShouldCheckpoint(9));    // after 10 completed iterations
  EXPECT_FALSE(store.ShouldCheckpoint(10));
  EXPECT_TRUE(store.ShouldCheckpoint(19));
  EXPECT_FALSE(CheckpointStore().ShouldCheckpoint(9));  // disabled by default
}

SavedModel TestModel() {
  SavedModel model;
  model.model_name = "lr";
  model.num_features = 4;
  model.weights = {0.5, -1.25, 3.0, 0.0};
  model.shared = {};
  return model;
}

TEST(CheckpointStoreTest, InMemorySaveRestoresExactState) {
  CheckpointStore store(CheckpointConfig{});
  EXPECT_EQ(store.Latest(), nullptr);
  ASSERT_TRUE(store.Save(TestModel(), 30).ok());
  ASSERT_NE(store.Latest(), nullptr);
  EXPECT_EQ(store.Latest()->weights, TestModel().weights);
  EXPECT_EQ(store.completed_iterations(), 30);
  EXPECT_EQ(store.bytes(), SerializedModelBytes(TestModel()));
}

TEST(CheckpointStoreTest, FileBackedSaveRoundTripsThroughModelIo) {
  CheckpointConfig config;
  config.path = ::testing::TempDir() + "/colsgd_checkpoint_test.bin";
  CheckpointStore store(config);
  const SavedModel model = TestModel();
  ASSERT_TRUE(store.Save(model, 10).ok());

  // The store's copy went through WriteModelFile + ReadModelFile: the
  // restore observes exactly the serialized state, bit for bit.
  ASSERT_NE(store.Latest(), nullptr);
  EXPECT_EQ(store.Latest()->model_name, model.model_name);
  EXPECT_EQ(store.Latest()->num_features, model.num_features);
  EXPECT_EQ(store.Latest()->weights, model.weights);
  EXPECT_EQ(store.Latest()->shared, model.shared);

  // And the file itself is independently readable.
  auto reread = ReadModelFile(config.path);
  ASSERT_TRUE(reread.ok());
  EXPECT_EQ(reread.ValueOrDie().weights, model.weights);
  std::remove(config.path.c_str());
}

}  // namespace
}  // namespace colsgd
