// Unit tests for linalg/: sparse views, CSR batches, dense helpers.
#include <gtest/gtest.h>

#include "linalg/dense.h"
#include "linalg/sparse.h"

namespace colsgd {
namespace {

TEST(SparseVectorViewTest, DotAgainstDense) {
  const uint32_t idx[] = {0, 2, 4};
  const float val[] = {1.0f, 2.0f, 3.0f};
  SparseVectorView v{idx, val, 3};
  std::vector<double> dense = {10, 0, 20, 0, 30};
  EXPECT_DOUBLE_EQ(v.Dot(dense), 10 + 40 + 90);
}

TEST(SparseVectorViewTest, EmptyRowDotIsZero) {
  SparseVectorView v{nullptr, nullptr, 0};
  std::vector<double> dense = {1, 2, 3};
  EXPECT_DOUBLE_EQ(v.Dot(dense), 0.0);
}

TEST(SparseVectorViewTest, AxpyInto) {
  const uint32_t idx[] = {1, 3};
  const float val[] = {2.0f, -1.0f};
  SparseVectorView v{idx, val, 2};
  std::vector<double> dense(4, 1.0);
  v.AxpyInto(0.5, &dense);
  EXPECT_DOUBLE_EQ(dense[0], 1.0);
  EXPECT_DOUBLE_EQ(dense[1], 2.0);
  EXPECT_DOUBLE_EQ(dense[2], 1.0);
  EXPECT_DOUBLE_EQ(dense[3], 0.5);
}

TEST(SparseVectorViewTest, SquaredNorm) {
  const uint32_t idx[] = {0, 1};
  const float val[] = {3.0f, 4.0f};
  SparseVectorView v{idx, val, 2};
  EXPECT_DOUBLE_EQ(v.SquaredNorm(), 25.0);
}

TEST(CsrBatchTest, AppendAndReadBack) {
  CsrBatch batch;
  SparseRow r1;
  r1.Push(0, 1.0f);
  r1.Push(5, 2.0f);
  batch.AppendRow(r1);
  batch.AppendEmptyRow();
  SparseRow r2;
  r2.Push(3, -1.0f);
  batch.AppendRow(r2);

  ASSERT_EQ(batch.num_rows(), 3u);
  EXPECT_EQ(batch.nnz(), 3u);
  EXPECT_EQ(batch.Row(0).nnz, 2u);
  EXPECT_EQ(batch.Row(1).nnz, 0u);
  EXPECT_EQ(batch.Row(2).nnz, 1u);
  EXPECT_EQ(batch.Row(0).indices[1], 5u);
  EXPECT_EQ(batch.Row(2).values[0], -1.0f);
}

TEST(CsrBatchTest, ByteSizeMatchesLayout) {
  CsrBatch batch;
  SparseRow r;
  r.Push(1, 1.0f);
  r.Push(2, 2.0f);
  batch.AppendRow(r);
  // 2 indices (4B) + 2 values (4B) + 2 offsets (8B).
  EXPECT_EQ(batch.ByteSize(), 2 * 4 + 2 * 4 + 2 * 8u);
}

TEST(CsrBatchTest, AdoptValidatesConsistency) {
  CsrBatch batch;
  batch.Adopt({1, 2}, {1.0f, 2.0f}, {0, 1, 2});
  EXPECT_EQ(batch.num_rows(), 2u);
  EXPECT_EQ(batch.Row(1).indices[0], 2u);
}

TEST(CsrBatchTest, AdoptRejectsMismatchedArrays) {
  CsrBatch batch;
  EXPECT_DEATH(batch.Adopt({1, 2}, {1.0f}, {0, 2}), "CHECK failed");
}

TEST(CsrBatchTest, RowOutOfRangeDies) {
  CsrBatch batch;
  EXPECT_DEATH(batch.Row(0), "CHECK failed");
}

TEST(DenseTest, AxpyAndAdd) {
  std::vector<double> out = {1, 2};
  Axpy(2.0, {10, 20}, &out);
  EXPECT_EQ(out, (std::vector<double>{21, 42}));
  AddInto({1, 1}, &out);
  EXPECT_EQ(out, (std::vector<double>{22, 43}));
}

TEST(DenseTest, DotAndNorms) {
  EXPECT_DOUBLE_EQ(Dot({1, 2, 3}, {4, 5, 6}), 32.0);
  EXPECT_DOUBLE_EQ(SquaredNorm({3, 4}), 25.0);
  EXPECT_DOUBLE_EQ(L1Norm({-3, 4}), 7.0);
}

TEST(DenseTest, Scale) {
  std::vector<double> v = {1, -2};
  Scale(-2.0, &v);
  EXPECT_EQ(v, (std::vector<double>{-2, 4}));
}

TEST(DenseTest, MismatchedSizesDie) {
  std::vector<double> out = {1.0};
  EXPECT_DEATH(AddInto({1, 2}, &out), "CHECK failed");
}

}  // namespace
}  // namespace colsgd
