// Tests for the benchmark telemetry layer (obs/bench): the BENCH_*.json
// writer/reader round trip, derived statistics, Histogram quantiles, the
// deterministic per-iteration time series, and the colsgd_report regression
// semantics (CompareSuites).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "datagen/synthetic.h"
#include "engine/trainer.h"
#include "obs/bench/bench_result.h"
#include "obs/bench/json.h"
#include "obs/bench/report.h"
#include "obs/bench/timeseries.h"
#include "obs/metrics.h"

namespace colsgd {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

BenchSuite SampleSuite() {
  BenchSuite suite;
  suite.suite = "unit";
  suite.env["git"] = "deadbeef";
  suite.env["iterations"] = "40";
  BenchResult* r = suite.AddResult("tiny/lr/columnsgd");
  r->env["engine"] = "columnsgd";
  r->env["model"] = "lr";
  r->metrics["train_time"] = 1.25;
  r->metrics["avg_iter_time"] = 0.03125;
  r->metrics["final_loss"] = 0.31;
  r->series["iteration"] = {0.0, 1.0, 2.0, 3.0};
  r->series["batch_loss"] = {0.9, 0.6, 0.45, 0.31};
  return suite;
}

// ---- JSON primitives ------------------------------------------------------

TEST(BenchJsonTest, NumbersRoundTripShortest) {
  std::string out;
  AppendJsonNumber(&out, 0.1);
  EXPECT_EQ(out, "0.1");
  out.clear();
  AppendJsonNumber(&out, 3.0);
  EXPECT_EQ(out, "3");
  out.clear();
  AppendJsonNumber(&out, kNaN);
  EXPECT_EQ(out, "null");  // NaN is unrepresentable in JSON
}

TEST(BenchJsonTest, ParserRejectsTrailingGarbage) {
  EXPECT_TRUE(ParseJson("{\"a\": 1}").ok());
  EXPECT_FALSE(ParseJson("{\"a\": 1} x").ok());
  EXPECT_FALSE(ParseJson("{\"a\": }").ok());
  EXPECT_FALSE(ParseJson("").ok());
}

// ---- BENCH round trip -----------------------------------------------------

TEST(BenchResultTest, WriterReaderWriterIsByteIdentical) {
  const BenchSuite suite = SampleSuite();
  const std::string first = BenchSuiteJson(suite);
  Result<BenchSuite> parsed = ParseBenchSuiteJson(first);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const std::string second = BenchSuiteJson(*parsed);
  EXPECT_EQ(first, second);

  EXPECT_EQ(parsed->suite, "unit");
  EXPECT_EQ(parsed->env.at("git"), "deadbeef");
  ASSERT_EQ(parsed->results.size(), 1u);
  const BenchResult& r = parsed->results[0];
  EXPECT_EQ(r.name, "tiny/lr/columnsgd");
  EXPECT_DOUBLE_EQ(r.metrics.at("train_time"), 1.25);
  ASSERT_EQ(r.series.at("batch_loss").size(), 4u);
  EXPECT_DOUBLE_EQ(r.series.at("batch_loss")[3], 0.31);
}

TEST(BenchResultTest, NaNMetricSurvivesRoundTripAsNull) {
  BenchSuite suite = SampleSuite();
  suite.results[0].metrics["grad_norm"] = kNaN;
  const std::string json = BenchSuiteJson(suite);
  EXPECT_NE(json.find("\"grad_norm\": null"), std::string::npos);
  Result<BenchSuite> parsed = ParseBenchSuiteJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(std::isnan(parsed->results[0].metrics.at("grad_norm")));
  EXPECT_EQ(BenchSuiteJson(*parsed), json);
}

TEST(BenchResultTest, ReaderRejectsWrongSchemaAndUnknownFields) {
  const std::string good = BenchSuiteJson(SampleSuite());
  std::string wrong_schema = good;
  const size_t pos = wrong_schema.find("colsgd.bench/v1");
  ASSERT_NE(pos, std::string::npos);
  wrong_schema.replace(pos, 15, "colsgd.bench/v9");
  EXPECT_FALSE(ParseBenchSuiteJson(wrong_schema).ok());

  EXPECT_FALSE(
      ParseBenchSuiteJson(
          "{\"schema\": \"colsgd.bench/v1\", \"suite\": \"x\", "
          "\"surprise\": 1, \"results\": []}")
          .ok());
  EXPECT_FALSE(ParseBenchSuiteJson("{\"suite\": \"x\", \"results\": []}")
                   .ok());  // no schema tag at all
}

TEST(BenchResultTest, FileRoundTrip) {
  const BenchSuite suite = SampleSuite();
  const std::string path = testing::TempDir() + "/BENCH_unit.json";
  ASSERT_TRUE(WriteBenchSuite(suite, path).ok());
  Result<BenchSuite> parsed = ReadBenchSuiteFile(path);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(BenchSuiteJson(*parsed), BenchSuiteJson(suite));
  EXPECT_FALSE(ReadBenchSuiteFile(path + ".does-not-exist").ok());
}

// ---- derived statistics ---------------------------------------------------

TEST(BenchResultTest, DerivedIterQuantilesAreExactOrderStatistics) {
  BenchResult r;
  // 1..100 milliseconds: p50 = 50.5ms, p95 = 95.05ms, p99 = 99.01ms.
  std::vector<double> iters;
  for (int i = 1; i <= 100; ++i) iters.push_back(i * 1e-3);
  r.series["iter_seconds"] = iters;
  r.series["bytes"] = std::vector<double>(100, 1000.0);
  ComputeDerivedStats(&r);
  EXPECT_NEAR(r.metrics.at("iter_p50"), 50.5e-3, 1e-12);
  EXPECT_NEAR(r.metrics.at("iter_p95"), 95.05e-3, 1e-12);
  EXPECT_NEAR(r.metrics.at("iter_p99"), 99.01e-3, 1e-12);
  EXPECT_DOUBLE_EQ(r.metrics.at("bytes_per_iter"), 1000.0);
}

TEST(BenchResultTest, TimeToTargetLossUsesSmoothedTrajectory) {
  BenchResult r;
  std::vector<double> loss, time;
  for (int i = 0; i < 40; ++i) {
    loss.push_back(1.0 - 0.02 * i);  // 1.0 -> 0.22, strictly decreasing
    time.push_back(0.1 * (i + 1));
  }
  r.series["batch_loss"] = loss;
  r.series["sim_time"] = time;
  r.series["iter_seconds"] = std::vector<double>(40, 0.1);
  ComputeDerivedStats(&r);
  ASSERT_TRUE(r.metrics.count("target_loss"));
  ASSERT_TRUE(r.metrics.count("time_to_target_loss"));
  ASSERT_TRUE(r.metrics.count("final_loss"));
  // The target sits 10% above the final smoothed loss, so it is reached
  // near the end of the run but strictly before it.
  EXPECT_GT(r.metrics.at("time_to_target_loss"), time.front());
  EXPECT_LE(r.metrics.at("time_to_target_loss"), time.back());

  // A flat trajectory never improves: first == final means the target
  // equals both, reached immediately.
  BenchResult flat;
  flat.series["batch_loss"] = std::vector<double>(40, 0.5);
  flat.series["sim_time"] = time;
  ComputeDerivedStats(&flat);
  EXPECT_DOUBLE_EQ(flat.metrics.at("time_to_target_loss"), time.front());
}

// ---- Histogram quantiles --------------------------------------------------

TEST(HistogramQuantileTest, InterpolatesWithinBuckets) {
  Histogram h({1.0, 2.0, 4.0, 8.0});
  for (int i = 0; i < 100; ++i) h.Observe(1.0 + i * 0.01);  // [1.0, 1.99]
  // All mass in the (1, 2] bucket: the median interpolates halfway.
  EXPECT_NEAR(h.p50(), 1.5, 0.02);
  EXPECT_GE(h.p99(), h.p95());
  EXPECT_GE(h.p95(), h.p50());
  // Estimates never escape the observed range.
  EXPECT_GE(h.p50(), h.min());
  EXPECT_LE(h.p99(), h.max());
}

TEST(HistogramQuantileTest, EmptyAndSingleton) {
  Histogram h({1.0, 10.0});
  EXPECT_DOUBLE_EQ(h.p50(), 0.0);  // empty
  h.Observe(5.0);
  EXPECT_DOUBLE_EQ(h.p50(), 5.0);  // min == max pins the estimate
  EXPECT_DOUBLE_EQ(h.p99(), 5.0);
}

// ---- time-series determinism ---------------------------------------------

std::vector<TimeSeriesSample> RecordRun(const std::string& engine_name) {
  SyntheticSpec spec = TinySpec();
  spec.num_rows = 600;
  spec.num_features = 200;
  Dataset data = GenerateSynthetic(spec);
  TrainConfig config;
  config.model = "lr";
  config.learning_rate = 0.5;
  config.batch_size = 64;
  config.seed = 99;
  auto engine = MakeEngine(engine_name, ClusterSpec::Cluster1(), config);
  TimeSeriesRecorder recorder;
  engine->set_recorder(&recorder);
  RunOptions options;
  options.iterations = 8;
  options.eval_every = 4;
  TrainResult result = RunTraining(engine.get(), data, options);
  EXPECT_TRUE(result.status.ok());
  EXPECT_EQ(result.series.size(), 8u);  // recorder samples ship in the result
  return result.series;
}

TEST(TimeSeriesTest, FixedSeedRunsAreBitIdentical) {
  const std::vector<TimeSeriesSample> a = RecordRun("columnsgd");
  const std::vector<TimeSeriesSample> b = RecordRun("columnsgd");
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].iteration, b[i].iteration);
    EXPECT_EQ(a[i].sim_time, b[i].sim_time);  // bit-equal, not near
    EXPECT_EQ(a[i].iter_seconds, b[i].iter_seconds);
    EXPECT_EQ(a[i].batch_loss, b[i].batch_loss);
    EXPECT_EQ(a[i].bytes_on_wire, b[i].bytes_on_wire);
    EXPECT_EQ(a[i].messages, b[i].messages);
    EXPECT_EQ(a[i].bytes_sent_per_node, b[i].bytes_sent_per_node);
  }
  // Eval loss was merged into the series at the eval_every boundaries.
  bool saw_eval = false;
  for (const TimeSeriesSample& s : a) {
    if (!std::isnan(s.eval_loss)) saw_eval = true;
  }
  EXPECT_TRUE(saw_eval);
  // And identical runs serialize to byte-identical BENCH documents.
  BenchSuite sa, sb;
  sa.suite = sb.suite = "det";
  AppendSampleSeries(a, sa.AddResult("r"));
  AppendSampleSeries(b, sb.AddResult("r"));
  ComputeDerivedStats(&sa.results[0]);
  ComputeDerivedStats(&sb.results[0]);
  EXPECT_EQ(BenchSuiteJson(sa), BenchSuiteJson(sb));
}

// ---- regression comparison ------------------------------------------------

TEST(CompareSuitesTest, IdenticalSuitesPass) {
  const BenchSuite suite = SampleSuite();
  const SuiteReport report = CompareSuites(suite, suite, ReportOptions());
  EXPECT_FALSE(report.regression);
  for (const MetricDelta& row : report.rows) {
    EXPECT_FALSE(row.regression) << row.result << "/" << row.metric;
  }
}

TEST(CompareSuitesTest, TenPercentIterTimeRegressionIsCaught) {
  const BenchSuite old_suite = SampleSuite();
  BenchSuite new_suite = old_suite;
  // Inject a 12% per-iteration-time regression (threshold is 10%).
  new_suite.results[0].metrics["avg_iter_time"] *= 1.12;
  const SuiteReport report =
      CompareSuites(old_suite, new_suite, ReportOptions());
  EXPECT_TRUE(report.regression);
  bool flagged = false;
  for (const MetricDelta& row : report.rows) {
    if (row.metric == "avg_iter_time") {
      flagged = true;
      EXPECT_TRUE(row.regression);
      EXPECT_FALSE(row.missing);
    } else {
      EXPECT_FALSE(row.regression);
    }
  }
  EXPECT_TRUE(flagged);
  // An improvement of any size never regresses.
  new_suite.results[0].metrics["avg_iter_time"] =
      old_suite.results[0].metrics.at("avg_iter_time") * 0.5;
  EXPECT_FALSE(
      CompareSuites(old_suite, new_suite, ReportOptions()).regression);
}

TEST(CompareSuitesTest, WithinThresholdPasses) {
  const BenchSuite old_suite = SampleSuite();
  BenchSuite new_suite = old_suite;
  new_suite.results[0].metrics["avg_iter_time"] *= 1.05;  // inside 10%
  EXPECT_FALSE(
      CompareSuites(old_suite, new_suite, ReportOptions()).regression);
}

TEST(CompareSuitesTest, MissingMetricAndResultRegress) {
  const BenchSuite old_suite = SampleSuite();
  BenchSuite no_metric = old_suite;
  no_metric.results[0].metrics.erase("final_loss");
  SuiteReport report = CompareSuites(old_suite, no_metric, ReportOptions());
  EXPECT_TRUE(report.regression);

  BenchSuite no_result = old_suite;
  no_result.results.clear();
  report = CompareSuites(old_suite, no_result, ReportOptions());
  EXPECT_TRUE(report.regression);

  // New-only metrics and results are notes, never failures.
  BenchSuite extra = old_suite;
  extra.results[0].metrics["shiny_new_metric"] = 1.0;
  extra.AddResult("brand/new/config")->metrics["train_time"] = 1.0;
  report = CompareSuites(old_suite, extra, ReportOptions());
  EXPECT_FALSE(report.regression);
  EXPECT_FALSE(report.notes.empty());
}

TEST(CompareSuitesTest, PerMetricRulesOverrideGlobalThreshold) {
  ReportOptions options;
  options.threshold = 0.10;
  options.rules.push_back({"final_loss", 0.01});
  EXPECT_DOUBLE_EQ(ThresholdFor(options, "final_loss"), 0.01);
  EXPECT_DOUBLE_EQ(ThresholdFor(options, "avg_iter_time"), 0.10);

  const BenchSuite old_suite = SampleSuite();
  BenchSuite new_suite = old_suite;
  new_suite.results[0].metrics["final_loss"] *= 1.05;  // >1% but <10%
  EXPECT_TRUE(CompareSuites(old_suite, new_suite, options).regression);
  EXPECT_FALSE(
      CompareSuites(old_suite, new_suite, ReportOptions()).regression);
}

TEST(CompareSuitesTest, AbsEpsilonGuardsNearZeroMetrics) {
  BenchSuite old_suite;
  old_suite.suite = "eps";
  old_suite.AddResult("r")->metrics["recovery_seconds"] = 0.0;
  BenchSuite new_suite = old_suite;
  new_suite.results[0].metrics["recovery_seconds"] = 1e-12;  // any rel. jump
  EXPECT_FALSE(
      CompareSuites(old_suite, new_suite, ReportOptions()).regression);
}

TEST(ReportRenderTest, SparklineAndReportText) {
  const std::string line = RenderSparkline({1.0, 2.0, 3.0, 4.0}, 4);
  ASSERT_EQ(line.size(), 4u);
  EXPECT_EQ(line.front(), '.');  // min maps to the lowest (non-blank) ink
  EXPECT_EQ(line.back(), '@');   // max maps to the highest

  const BenchSuite old_suite = SampleSuite();
  BenchSuite new_suite = old_suite;
  new_suite.results[0].metrics["train_time"] *= 2.0;
  const SuiteReport report =
      CompareSuites(old_suite, new_suite, ReportOptions());
  const std::string text = RenderReport(report, new_suite);
  EXPECT_NE(text.find("REGRESSION"), std::string::npos);
  EXPECT_NE(text.find("train_time"), std::string::npos);
  EXPECT_NE(text.find("tiny/lr/columnsgd"), std::string::npos);
}

// ---- metrics registry JSON ------------------------------------------------

TEST(MetricsRegistryJsonTest, DeterministicDump) {
  MetricsRegistry registry;
  registry.GetCounter("messages")->Add(42);
  Histogram* h = registry.GetHistogram("iter_seconds", {0.1, 1.0});
  h->Observe(0.05);
  h->Observe(0.5);
  const std::string json = MetricsRegistryJson(registry);
  Result<JsonValue> parsed = ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_NE(json.find("\"messages\": 42"), std::string::npos);
  EXPECT_NE(json.find("iter_seconds"), std::string::npos);
  EXPECT_EQ(MetricsRegistryJson(registry), json);  // stable across calls
}

}  // namespace
}  // namespace colsgd
