// Tests for optimizers and regularization.
#include <gtest/gtest.h>

#include <cmath>

#include "optim/optimizer.h"

namespace colsgd {
namespace {

TEST(RegularizerTest, L2GradientIsLinear) {
  RegularizerConfig reg;
  reg.l2 = 0.5;
  EXPECT_DOUBLE_EQ(reg.Grad(2.0), 1.0);
  EXPECT_DOUBLE_EQ(reg.Grad(-2.0), -1.0);
  EXPECT_DOUBLE_EQ(reg.Grad(0.0), 0.0);
}

TEST(RegularizerTest, L1GradientIsSign) {
  RegularizerConfig reg;
  reg.l1 = 0.1;
  EXPECT_DOUBLE_EQ(reg.Grad(3.0), 0.1);
  EXPECT_DOUBLE_EQ(reg.Grad(-3.0), -0.1);
  EXPECT_DOUBLE_EQ(reg.Grad(0.0), 0.0);
}

TEST(SgdTest, PlainStep) {
  SgdOptimizer sgd(0.1);
  sgd.BeginStep();
  double w = 1.0;
  sgd.ApplyUpdate(&w, 2.0, nullptr);
  EXPECT_DOUBLE_EQ(w, 1.0 - 0.1 * 2.0);
  EXPECT_EQ(sgd.state_per_slot(), 0);
}

TEST(SgdTest, DecaySchedule) {
  SgdOptimizer sgd(1.0, /*decay=*/1.0);
  double w = 0.0;
  sgd.BeginStep();  // t=0: lr = 1
  sgd.ApplyUpdate(&w, 1.0, nullptr);
  EXPECT_DOUBLE_EQ(w, -1.0);
  sgd.BeginStep();  // t=1: lr = 1/2
  sgd.ApplyUpdate(&w, 1.0, nullptr);
  EXPECT_DOUBLE_EQ(w, -1.5);
}

TEST(AdaGradTest, ShrinksStepOnRepeatedGradients) {
  AdaGradOptimizer opt(1.0);
  double w = 0.0;
  double state = 0.0;
  opt.BeginStep();
  opt.ApplyUpdate(&w, 2.0, &state);
  const double first_step = std::fabs(w);
  EXPECT_NEAR(first_step, 2.0 / (2.0 + 1e-8), 1e-9);
  const double w_before = w;
  opt.ApplyUpdate(&w, 2.0, &state);
  EXPECT_LT(std::fabs(w - w_before), first_step);
  EXPECT_DOUBLE_EQ(state, 8.0);  // accumulated g^2
}

TEST(AdamTest, FirstStepIsApproxLearningRate) {
  AdamOptimizer opt(0.01);
  double w = 0.0;
  double state[2] = {0.0, 0.0};
  opt.BeginStep();
  opt.ApplyUpdate(&w, 5.0, state);
  // With bias correction, the first Adam step is ~lr regardless of |g|.
  EXPECT_NEAR(std::fabs(w), 0.01, 1e-4);
}

TEST(AdamTest, StatePerSlotIsTwo) {
  EXPECT_EQ(AdamOptimizer(0.1).state_per_slot(), 2);
  EXPECT_EQ(AdaGradOptimizer(0.1).state_per_slot(), 1);
}

TEST(OptimizerTest, CloneIsFreshButEquivalent) {
  AdamOptimizer original(0.01);
  original.BeginStep();
  double w1 = 0.0, w2 = 0.0;
  double s1[2] = {0, 0}, s2[2] = {0, 0};
  original.ApplyUpdate(&w1, 1.0, s1);

  auto clone = original.Clone();
  clone->BeginStep();  // clone starts at step 1, like a fresh optimizer
  clone->ApplyUpdate(&w2, 1.0, s2);
  EXPECT_DOUBLE_EQ(w1, w2);
}

TEST(OptimizerTest, FactoryBuildsByName) {
  EXPECT_EQ(MakeOptimizer("sgd", 0.1)->name(), "sgd");
  EXPECT_EQ(MakeOptimizer("adagrad", 0.1)->name(), "adagrad");
  EXPECT_EQ(MakeOptimizer("adam", 0.1)->name(), "adam");
  EXPECT_DEATH(MakeOptimizer("lbfgs", 0.1), "unknown optimizer");
}

// A 1-D convex problem must converge for every optimizer: f(w) = (w-3)^2.
class OptimizerConvergenceTest : public ::testing::TestWithParam<std::string> {
};

TEST_P(OptimizerConvergenceTest, MinimizesQuadratic) {
  auto opt = MakeOptimizer(GetParam(), GetParam() == "sgd" ? 0.1 : 0.3);
  double w = 0.0;
  std::vector<double> state(opt->state_per_slot(), 0.0);
  for (int t = 0; t < 500; ++t) {
    opt->BeginStep();
    const double grad = 2.0 * (w - 3.0);
    opt->ApplyUpdate(&w, grad, state.empty() ? nullptr : state.data());
  }
  EXPECT_NEAR(w, 3.0, 0.05) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllOptimizers, OptimizerConvergenceTest,
                         ::testing::Values("sgd", "adagrad", "adam"),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace colsgd
