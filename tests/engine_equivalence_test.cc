// Cross-engine equivalence properties:
//  * ColumnSGD is exact distributed mini-batch SGD: with the same batch
//    draws, K workers produce the same model as a sequential reference and
//    as ColumnSGD with any other K.
//  * MLlib and the PS engines share sampling and update rules, so their
//    models coincide exactly.
#include <gtest/gtest.h>

#include "datagen/synthetic.h"
#include "engine/columnsgd.h"
#include "engine/ps.h"
#include "engine/rowsgd.h"
#include "engine/trainer.h"
#include "storage/sampler.h"

namespace colsgd {
namespace {

Dataset TestData(const std::string& model_name = "lr") {
  SyntheticSpec spec = TinySpec();
  spec.num_rows = 2000;
  spec.num_features = 403;  // awkward: not divisible by any worker count
  if (model_name.rfind("mlr", 0) == 0) {
    spec.num_classes = std::stoi(model_name.substr(3));
  }
  return GenerateSynthetic(spec);
}

ClusterSpec Cluster(int workers) {
  ClusterSpec spec = ClusterSpec::Cluster1();
  spec.num_workers = workers;
  return spec;
}

TrainConfig Config(const std::string& model) {
  TrainConfig config;
  config.model = model;
  config.learning_rate = 0.3;
  config.batch_size = 50;
  config.block_rows = 128;
  return config;
}

/// Sequential reference: plain mini-batch SGD over the full model, using the
/// same two-phase sampler draws as ColumnSGD.
std::vector<double> SequentialReference(const Dataset& d,
                                        const TrainConfig& config,
                                        int iterations) {
  auto model = MakeModel(config.model);
  const int wpf = model->weights_per_feature();
  std::vector<double> weights(d.num_features * wpf);
  for (uint64_t f = 0; f < d.num_features; ++f) {
    for (int j = 0; j < wpf; ++j) {
      weights[f * wpf + j] = model->InitWeight(f, j, config.seed);
    }
  }
  auto optimizer = MakeOptimizer(config.optimizer, config.learning_rate);
  std::vector<double> opt_state(weights.size() * optimizer->state_per_slot(),
                                0.0);
  GradAccumulator grad(weights.size());

  std::vector<RowBlock> blocks = MakeRowBlocks(d, config.block_rows);
  BlockDirectory directory = MakeDirectory(blocks);
  BatchSampler sampler(&directory, config.seed);

  for (int iter = 0; iter < iterations; ++iter) {
    const std::vector<RowRef> batch =
        sampler.Sample(iter, config.batch_size);
    for (const RowRef& ref : batch) {
      const RowBlock& block = blocks[ref.block_id];
      model->AccumulateRowGradient(block.rows.Row(ref.offset),
                                   block.labels[ref.offset], weights, &grad,
                                   nullptr);
    }
    ApplySparseUpdate(&grad, config.batch_size, config.reg, optimizer.get(),
                      &weights, &opt_state, nullptr);
  }
  return weights;
}

class ColumnSgdExactnessTest
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(ColumnSgdExactnessTest, MatchesSequentialMinibatchSgd) {
  const auto& [model_name, workers] = GetParam();
  Dataset d = TestData(model_name);
  TrainConfig config = Config(model_name);
  const int iterations = 8;

  ColumnSgdEngine engine(Cluster(workers), config);
  ASSERT_TRUE(engine.Setup(d).ok());
  for (int i = 0; i < iterations; ++i) {
    ASSERT_TRUE(engine.RunIteration(i).ok());
  }
  const std::vector<double> distributed = engine.FullModel();
  const std::vector<double> reference =
      SequentialReference(d, config, iterations);
  ASSERT_EQ(distributed.size(), reference.size());
  double max_diff = 0.0;
  for (size_t i = 0; i < reference.size(); ++i) {
    max_diff = std::max(max_diff, std::fabs(distributed[i] - reference[i]));
  }
  // Only floating-point summation order differs between K partitions and
  // the sequential pass.
  EXPECT_LT(max_diff, 1e-9) << model_name << " K=" << workers;
}

INSTANTIATE_TEST_SUITE_P(
    ModelsAndClusterSizes, ColumnSgdExactnessTest,
    ::testing::Combine(::testing::Values("lr", "svm", "mlr3", "fm4"),
                       ::testing::Values(1, 2, 4, 8)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_k" +
             std::to_string(std::get<1>(info.param));
    });

TEST(ColumnSgdExactnessTest, IndependentOfPartitioner) {
  Dataset d = TestData();
  TrainConfig a_config = Config("lr");
  a_config.partitioner = "round_robin";
  TrainConfig b_config = Config("lr");
  b_config.partitioner = "range";
  ColumnSgdEngine a(Cluster(4), a_config), b(Cluster(4), b_config);
  ASSERT_TRUE(a.Setup(d).ok());
  ASSERT_TRUE(b.Setup(d).ok());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(a.RunIteration(i).ok());
    ASSERT_TRUE(b.RunIteration(i).ok());
  }
  const auto model_a = a.FullModel();
  const auto model_b = b.FullModel();
  for (size_t i = 0; i < model_a.size(); ++i) {
    ASSERT_NEAR(model_a[i], model_b[i], 1e-9);
  }
}

TEST(ColumnSgdExactnessTest, AdaptiveOptimizersAlsoExact) {
  // AdaGrad/Adam state is per-slot and partitions with the model, so the
  // distributed run stays exactly equivalent (Section III-A remark).
  Dataset d = TestData();
  for (const std::string& opt : {"adagrad", "adam"}) {
    TrainConfig config = Config("lr");
    config.optimizer = opt;
    config.learning_rate = 0.05;
    ColumnSgdEngine engine(Cluster(4), config);
    ASSERT_TRUE(engine.Setup(d).ok());
    for (int i = 0; i < 6; ++i) ASSERT_TRUE(engine.RunIteration(i).ok());
    const auto distributed = engine.FullModel();
    const auto reference = SequentialReference(d, config, 6);
    for (size_t i = 0; i < reference.size(); ++i) {
      ASSERT_NEAR(distributed[i], reference[i], 1e-9) << opt;
    }
  }
}

TEST(RowEngineEquivalenceTest, MllibAndPsComputeTheSameModel) {
  // Identical sampling streams and update rules; only the communication
  // topology differs, which must not change the math.
  Dataset d = TestData();
  TrainConfig config = Config("lr");
  MllibEngine mllib(Cluster(4), config);
  PsEngine petuum(Cluster(4), config, PsOptions{});
  ASSERT_TRUE(mllib.Setup(d).ok());
  ASSERT_TRUE(petuum.Setup(d).ok());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(mllib.RunIteration(i).ok());
    ASSERT_TRUE(petuum.RunIteration(i).ok());
  }
  EXPECT_EQ(mllib.FullModel(), petuum.FullModel());
  EXPECT_DOUBLE_EQ(mllib.last_batch_loss(), petuum.last_batch_loss());
}

// --- Bounded staleness (DESIGN.md §15) ------------------------------------

std::unique_ptr<Engine> MakeSspCapableEngine(const std::string& engine,
                                             int workers,
                                             const TrainConfig& config) {
  if (engine == "columnsgd") {
    return std::make_unique<ColumnSgdEngine>(Cluster(workers), config);
  }
  PsOptions options;
  options.sparse_pull = engine == "mxnet";
  return std::make_unique<PsEngine>(Cluster(workers), config, options);
}

class SspZeroSlackTest
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {
};

TEST_P(SspZeroSlackTest, ZeroSlackIsBitwiseBsp) {
  const auto& [engine_name, model_name] = GetParam();
  Dataset d = TestData(model_name);
  const int workers = 4;
  const int iterations = 8;

  // Heavy rotating stragglers shift every SSP timestamp relative to BSP but
  // must not change a single trained bit at slack = 0.
  FaultPlanConfig fault_config;
  fault_config.seed = 7;
  fault_config.stragglers.mode = StragglerSpec::Mode::kRotating;
  fault_config.stragglers.level = 5.0;
  FaultConfig faults;
  faults.plan = FaultPlan(fault_config);

  TrainConfig bsp_config = Config(model_name);
  auto bsp = MakeSspCapableEngine(engine_name, workers, bsp_config);
  ASSERT_TRUE(bsp->set_faults(faults).ok());
  ASSERT_TRUE(bsp->Setup(d).ok());
  for (int i = 0; i < iterations; ++i) {
    ASSERT_TRUE(bsp->RunIteration(i).ok());
  }
  ASSERT_TRUE(bsp->FinishTraining().ok());

  TrainConfig ssp_config = Config(model_name);
  ssp_config.ssp.enabled = true;
  ssp_config.ssp.slack = 0;
  auto ssp = MakeSspCapableEngine(engine_name, workers, ssp_config);
  ASSERT_TRUE(ssp->set_faults(faults).ok());
  ASSERT_TRUE(ssp->Setup(d).ok());
  for (int i = 0; i < iterations; ++i) {
    ASSERT_TRUE(ssp->RunIteration(i).ok());
  }
  ASSERT_TRUE(ssp->FinishTraining().ok());

  EXPECT_EQ(bsp->FullModel(), ssp->FullModel())
      << engine_name << "/" << model_name;
  EXPECT_DOUBLE_EQ(bsp->last_batch_loss(), ssp->last_batch_loss());
  EXPECT_EQ(ssp->ssp_accounting().max_staleness_observed, 0);
  EXPECT_EQ(ssp->ssp_accounting().stale_reads, 0);
}

INSTANTIATE_TEST_SUITE_P(
    EnginesAndModels, SspZeroSlackTest,
    ::testing::Values(std::make_tuple("columnsgd", "lr"),
                      std::make_tuple("columnsgd", "svm"),
                      std::make_tuple("columnsgd", "mlr3"),
                      std::make_tuple("columnsgd", "fm4"),
                      std::make_tuple("columnsgd", "mlp8"),
                      std::make_tuple("petuum", "lr"),
                      std::make_tuple("petuum", "svm"),
                      std::make_tuple("petuum", "mlr3"),
                      std::make_tuple("petuum", "fm4"),
                      std::make_tuple("mxnet", "lr"),
                      std::make_tuple("mxnet", "svm"),
                      std::make_tuple("mxnet", "mlr3"),
                      std::make_tuple("mxnet", "fm4")),
    [](const auto& info) {
      return std::get<0>(info.param) + "_" + std::get<1>(info.param);
    });

TEST(SspZeroSlackTest, SspRejectsBackupGroups) {
  Dataset d = TestData();
  TrainConfig config = Config("lr");
  config.ssp.enabled = true;
  ColumnSgdOptions options;
  options.backup = 1;
  ColumnSgdEngine engine(Cluster(4), config, options);
  EXPECT_FALSE(engine.Setup(d).ok());
}

double SquaredNormOf(const std::vector<double>& v) {
  double s = 0;
  for (double x : v) s += x * x;
  return s;
}

TEST(RowEngineEquivalenceTest, RegularizationAppliedConsistently) {
  Dataset d = TestData();
  TrainConfig config = Config("lr");
  config.reg.l2 = 0.01;
  const int iterations = 8;
  ColumnSgdEngine column(Cluster(4), config);
  ASSERT_TRUE(column.Setup(d).ok());
  for (int i = 0; i < iterations; ++i) {
    ASSERT_TRUE(column.RunIteration(i).ok());
  }
  const auto distributed = column.FullModel();
  const auto reference = SequentialReference(d, config, iterations);
  for (size_t i = 0; i < reference.size(); ++i) {
    ASSERT_NEAR(distributed[i], reference[i], 1e-9);
  }
  // L2 keeps the model smaller than the unregularized run.
  TrainConfig no_reg = Config("lr");
  const auto unregularized = SequentialReference(d, no_reg, iterations);
  EXPECT_LT(SquaredNormOf(distributed), SquaredNormOf(unregularized));
}

}  // namespace
}  // namespace colsgd
