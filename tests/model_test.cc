// Model math tests: finite-difference gradient checks, equivalence of the
// column (statistics) path and the row path, statistics additivity across
// column partitions, and closed-form spot checks (including FM's Equation 10
// rewrite against the direct pairwise Equation 9).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/rng.h"
#include "model/factory.h"
#include "model/fm.h"
#include "model/glm.h"
#include "model/mlr.h"
#include "storage/partitioner.h"

namespace colsgd {
namespace {

constexpr uint64_t kNumFeatures = 23;
constexpr uint64_t kSeed = 77;

struct TestBatch {
  CsrBatch rows;
  std::vector<float> labels;

  BatchView View() const {
    BatchView view;
    for (size_t i = 0; i < rows.num_rows(); ++i) {
      view.rows.push_back(rows.Row(i));
      view.labels.push_back(labels[i]);
    }
    return view;
  }
};

TestBatch MakeBatch(const ModelSpec& model, size_t batch, uint64_t seed) {
  Rng rng(seed);
  TestBatch out;
  const bool multiclass = model.name().rfind("mlr", 0) == 0;
  const int classes = multiclass ? model.stats_per_point() : 2;
  for (size_t i = 0; i < batch; ++i) {
    SparseRow row;
    for (uint64_t f = 0; f < kNumFeatures; ++f) {
      if (rng.NextBernoulli(0.4)) {
        row.Push(static_cast<uint32_t>(f),
                 static_cast<float>(rng.NextUniform(-1.0, 1.0)));
      }
    }
    if (row.nnz() == 0) row.Push(0, 1.0f);
    out.rows.AppendRow(row);
    if (multiclass) {
      out.labels.push_back(
          static_cast<float>(rng.NextBounded(static_cast<uint64_t>(classes))));
    } else {
      out.labels.push_back(rng.NextBernoulli(0.5) ? 1.0f : -1.0f);
    }
  }
  return out;
}

std::vector<double> MakeModelWeights(const ModelSpec& model, uint64_t seed) {
  std::vector<double> weights(kNumFeatures * model.weights_per_feature());
  for (size_t i = 0; i < weights.size(); ++i) {
    weights[i] = 0.3 * GaussianFromHash(i, seed);
  }
  return weights;
}

class ModelMathTest : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<ModelSpec> model_ = MakeModel(GetParam());
};

TEST_P(ModelMathTest, FiniteDifferenceGradientCheck) {
  const ModelSpec& model = *model_;
  TestBatch batch = MakeBatch(model, 6, 1);
  std::vector<double> weights = MakeModelWeights(model, 2);
  GradAccumulator grad(weights.size());

  for (size_t i = 0; i < batch.rows.num_rows(); ++i) {
    const SparseVectorView row = batch.rows.Row(i);
    const float label = batch.labels[i];
    // Hinge loss is non-differentiable at margin 0; nudge away from the kink
    // by scaling weights if this sample sits near it.
    if (model.name() == "svm") {
      const double s = row.Dot(weights);
      if (std::fabs(1.0 - label * s) < 0.05) continue;
    }
    grad.Reset();
    model.AccumulateRowGradient(row, label, weights, &grad, nullptr);
    const double h = 1e-6;
    for (size_t j = 0; j < row.nnz; ++j) {
      for (int c = 0; c < model.weights_per_feature(); ++c) {
        const uint64_t slot =
            static_cast<uint64_t>(row.indices[j]) *
                model.weights_per_feature() +
            c;
        const double saved = weights[slot];
        weights[slot] = saved + h;
        const double up = model.RowLoss(row, label, weights, nullptr);
        weights[slot] = saved - h;
        const double down = model.RowLoss(row, label, weights, nullptr);
        weights[slot] = saved;
        const double numeric = (up - down) / (2 * h);
        EXPECT_NEAR(grad.value(slot), numeric,
                    1e-4 * std::max(1.0, std::fabs(numeric)))
            << model.name() << " row " << i << " slot " << slot;
      }
    }
  }
}

TEST_P(ModelMathTest, ColumnPathEqualsRowPath) {
  const ModelSpec& model = *model_;
  const int wpf = model.weights_per_feature();
  const int spp = model.stats_per_point();
  const size_t B = 16;
  TestBatch batch = MakeBatch(model, B, 3);
  std::vector<double> global = MakeModelWeights(model, 4);

  // Row path: gradient over the full batch against the full model.
  GradAccumulator row_grad(global.size());
  for (size_t i = 0; i < B; ++i) {
    model.AccumulateRowGradient(batch.rows.Row(i), batch.labels[i], global,
                                &row_grad, nullptr);
  }
  double row_loss = 0.0;
  for (size_t i = 0; i < B; ++i) {
    row_loss += model.RowLoss(batch.rows.Row(i), batch.labels[i], global,
                              nullptr);
  }

  for (int k : {1, 2, 3, 5}) {
    auto partitioner = MakePartitioner("round_robin", kNumFeatures, k);
    // Build per-worker shards (local indices) and model partitions.
    std::vector<double> agg_stats(B * spp, 0.0);
    std::vector<CsrBatch> shards(k);
    std::vector<std::vector<double>> locals(k);
    for (int w = 0; w < k; ++w) {
      locals[w].assign(partitioner->LocalDim(w) * wpf, 0.0);
      for (uint64_t lf = 0; lf < partitioner->LocalDim(w); ++lf) {
        const uint64_t f = partitioner->GlobalIndex(w, lf);
        for (int c = 0; c < wpf; ++c) {
          locals[w][lf * wpf + c] = global[f * wpf + c];
        }
      }
      for (size_t i = 0; i < B; ++i) {
        const SparseVectorView row = batch.rows.Row(i);
        SparseRow shard_row;
        for (size_t j = 0; j < row.nnz; ++j) {
          if (partitioner->Owner(row.indices[j]) == w) {
            shard_row.Push(
                static_cast<uint32_t>(partitioner->LocalIndex(row.indices[j])),
                row.values[j]);
          }
        }
        shards[w].AppendRow(shard_row);
      }
    }
    // computeStat on every worker; reduceStat = element-wise sum.
    std::vector<BatchView> views(k);
    for (int w = 0; w < k; ++w) {
      for (size_t i = 0; i < B; ++i) views[w].rows.push_back(shards[w].Row(i));
      views[w].labels = batch.labels;
      std::vector<double> partial(B * spp, 0.0);
      model.ComputePartialStats(views[w], locals[w], &partial, nullptr);
      for (size_t i = 0; i < partial.size(); ++i) agg_stats[i] += partial[i];
    }
    // Loss from the aggregated statistics matches the row path.
    EXPECT_NEAR(model.BatchLossFromStats(agg_stats, batch.labels), row_loss,
                1e-9 * std::max(1.0, std::fabs(row_loss)))
        << model.name() << " k=" << k;
    // updateModel: per-worker gradients mapped back to global slots must
    // match the row-path gradient.
    for (int w = 0; w < k; ++w) {
      GradAccumulator local_grad(locals[w].size());
      model.AccumulateGradFromStats(views[w], agg_stats, locals[w],
                                    &local_grad, nullptr);
      for (uint64_t slot : local_grad.touched()) {
        const uint64_t lf = slot / wpf;
        const int c = static_cast<int>(slot % wpf);
        const uint64_t global_slot =
            partitioner->GlobalIndex(w, lf) * wpf + c;
        EXPECT_NEAR(local_grad.value(slot), row_grad.value(global_slot), 1e-9)
            << model.name() << " k=" << k << " slot " << global_slot;
      }
    }
  }
}

TEST_P(ModelMathTest, StatsSizesMatchInterface) {
  const ModelSpec& model = *model_;
  TestBatch batch = MakeBatch(model, 4, 9);
  std::vector<double> weights = MakeModelWeights(model, 10);
  std::vector<double> stats(4 * model.stats_per_point(), 0.0);
  BatchView view = batch.View();
  model.ComputePartialStats(view, weights, &stats, nullptr);
  // Mis-sized stats buffers must be rejected.
  std::vector<double> wrong(stats.size() + 1, 0.0);
  EXPECT_DEATH(model.ComputePartialStats(view, weights, &wrong, nullptr),
               "CHECK failed");
}

TEST_P(ModelMathTest, FlopsAreCounted) {
  const ModelSpec& model = *model_;
  TestBatch batch = MakeBatch(model, 4, 11);
  std::vector<double> weights = MakeModelWeights(model, 12);
  std::vector<double> stats(4 * model.stats_per_point(), 0.0);
  BatchView view = batch.View();
  FlopCounter flops;
  model.ComputePartialStats(view, weights, &stats, &flops);
  EXPECT_GT(flops.flops(), 0u);
  FlopCounter grad_flops;
  GradAccumulator grad(weights.size());
  model.AccumulateGradFromStats(view, stats, weights, &grad, &grad_flops);
  EXPECT_GT(grad_flops.flops(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllModels, ModelMathTest,
                         ::testing::Values("lr", "svm", "lsq", "mlr4", "fm5"),
                         [](const auto& info) { return info.param; });

TEST(LeastSquaresTest, QuadraticLossAndResidualCoeff) {
  LeastSquares lsq;
  EXPECT_DOUBLE_EQ(lsq.PointLoss(2.0, 5.0), 4.5);  // (5-2)^2/2
  EXPECT_DOUBLE_EQ(lsq.PointCoeff(2.0, 5.0), 3.0);
  EXPECT_DOUBLE_EQ(lsq.PointCoeff(2.0, 2.0), 0.0);
}

TEST(LrTest, CoeffAndLossClosedForm) {
  LogisticRegression lr;
  // At s=0: loss = log 2, coeff = -y/2.
  EXPECT_NEAR(lr.PointLoss(1.0, 0.0), std::log(2.0), 1e-12);
  EXPECT_NEAR(lr.PointCoeff(1.0, 0.0), -0.5, 1e-12);
  EXPECT_NEAR(lr.PointCoeff(-1.0, 0.0), 0.5, 1e-12);
  // Saturated cases stay finite.
  EXPECT_NEAR(lr.PointLoss(1.0, 100.0), 0.0, 1e-12);
  EXPECT_NEAR(lr.PointLoss(1.0, -100.0), 100.0, 1e-9);
  EXPECT_NEAR(lr.PointCoeff(1.0, 100.0), 0.0, 1e-12);
  EXPECT_NEAR(lr.PointCoeff(1.0, -100.0), -1.0, 1e-9);
}

TEST(SvmTest, HingeCoeffAndLoss) {
  LinearSvm svm;
  EXPECT_DOUBLE_EQ(svm.PointLoss(1.0, 2.0), 0.0);   // outside margin
  EXPECT_DOUBLE_EQ(svm.PointCoeff(1.0, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(svm.PointLoss(1.0, 0.5), 0.5);   // inside margin
  EXPECT_DOUBLE_EQ(svm.PointCoeff(1.0, 0.5), -1.0);
  EXPECT_DOUBLE_EQ(svm.PointLoss(-1.0, 0.5), 1.5);
  EXPECT_DOUBLE_EQ(svm.PointCoeff(-1.0, 0.5), 1.0);
}

TEST(MlrTest, GradientSumsToZeroAcrossClasses) {
  // sum_c (softmax_c - t_c) = 0, so per feature the class gradients cancel.
  MultinomialLogisticRegression mlr(4);
  TestBatch batch = MakeBatch(mlr, 8, 5);
  std::vector<double> weights = MakeModelWeights(mlr, 6);
  GradAccumulator grad(weights.size());
  for (size_t i = 0; i < batch.rows.num_rows(); ++i) {
    grad.Reset();
    mlr.AccumulateRowGradient(batch.rows.Row(i), batch.labels[i], weights,
                              &grad, nullptr);
    const SparseVectorView row = batch.rows.Row(i);
    for (size_t j = 0; j < row.nnz; ++j) {
      double sum = 0.0;
      for (int c = 0; c < 4; ++c) {
        sum += grad.value(static_cast<uint64_t>(row.indices[j]) * 4 + c);
      }
      EXPECT_NEAR(sum, 0.0, 1e-9);
    }
  }
}

TEST(FmTest, Equation10MatchesPairwiseEquation9) {
  // ScoreFromStats (the additive rewrite) must equal the direct
  // y(x) = <w,x> + sum_{i<j} <v_i, v_j> x_i x_j.
  const int F = 3;
  FactorizationMachine fm(F);
  const int wpf = 1 + F;
  TestBatch batch = MakeBatch(fm, 5, 21);
  std::vector<double> weights = MakeModelWeights(fm, 22);

  for (size_t i = 0; i < batch.rows.num_rows(); ++i) {
    const SparseVectorView row = batch.rows.Row(i);
    BatchView view;
    view.rows = {row};
    view.labels = {batch.labels[i]};
    std::vector<double> stats(wpf, 0.0);
    fm.ComputePartialStats(view, weights, &stats, nullptr);
    const double via_stats =
        stats[0] + 0.5 * (stats[1] * stats[1] + stats[2] * stats[2] +
                          stats[3] * stats[3]);

    double direct = 0.0;
    for (size_t a = 0; a < row.nnz; ++a) {
      direct += weights[static_cast<uint64_t>(row.indices[a]) * wpf] *
                row.values[a];
      for (size_t b = a + 1; b < row.nnz; ++b) {
        double vv = 0.0;
        for (int c = 1; c <= F; ++c) {
          vv += weights[static_cast<uint64_t>(row.indices[a]) * wpf + c] *
                weights[static_cast<uint64_t>(row.indices[b]) * wpf + c];
        }
        direct += vv * row.values[a] * row.values[b];
      }
    }
    EXPECT_NEAR(via_stats, direct, 1e-9) << "row " << i;
  }
}

TEST(FmTest, InitWeightsZeroLinearRandomFactors) {
  FactorizationMachine fm(4);
  EXPECT_DOUBLE_EQ(fm.InitWeight(13, 0, 9), 0.0);
  const double v = fm.InitWeight(13, 2, 9);
  EXPECT_NE(v, 0.0);
  EXPECT_LT(std::fabs(v), 0.1);  // small init
  EXPECT_EQ(fm.InitWeight(13, 2, 9), v);                // deterministic
  EXPECT_NE(fm.InitWeight(14, 2, 9), v);                // per-feature
  EXPECT_NE(fm.InitWeight(13, 3, 9), v);                // per-factor
}

TEST(GlmTest, InitWeightsAreZero) {
  LogisticRegression lr;
  EXPECT_DOUBLE_EQ(lr.InitWeight(5, 0, 3), 0.0);
}

TEST(FactoryTest, BuildsAllModels) {
  EXPECT_EQ(MakeModel("lr")->name(), "lr");
  EXPECT_EQ(MakeModel("svm")->name(), "svm");
  EXPECT_EQ(MakeModel("mlr7")->weights_per_feature(), 7);
  EXPECT_EQ(MakeModel("fm10")->stats_per_point(), 11);
  EXPECT_DEATH(MakeModel("resnet"), "unknown model");
}

TEST(GradAccumulatorTest, TracksTouchedSlotsAndResets) {
  GradAccumulator grad(10);
  grad.Add(3, 1.0);
  grad.Add(3, 2.0);
  grad.Add(7, -1.0);
  EXPECT_EQ(grad.touched().size(), 2u);
  EXPECT_DOUBLE_EQ(grad.value(3), 3.0);
  EXPECT_DOUBLE_EQ(grad.value(7), -1.0);
  EXPECT_DOUBLE_EQ(grad.value(0), 0.0);
  grad.Reset();
  EXPECT_TRUE(grad.touched().empty());
  EXPECT_DOUBLE_EQ(grad.value(3), 0.0);
  grad.Add(3, 5.0);  // accumulates cleanly after reset
  EXPECT_DOUBLE_EQ(grad.value(3), 5.0);
}

TEST(GradAccumulatorTest, OutOfRangeSlotDies) {
  GradAccumulator grad(4);
  EXPECT_DEATH(grad.Add(4, 1.0), "CHECK failed");
}

}  // namespace
}  // namespace colsgd
