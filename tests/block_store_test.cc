// Tests for storage/block_store: seeded permuted placement, sealed image
// round-trips, CRC-verified replica fetch with damaged-copy fallback, and
// the holder bookkeeping membership recovery relies on (DESIGN.md §14).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "storage/block_store.h"

namespace colsgd {
namespace {

std::vector<uint8_t> Payload(size_t n, uint8_t tag) {
  std::vector<uint8_t> p(n);
  for (size_t i = 0; i < n; ++i) p[i] = static_cast<uint8_t>(tag + i * 7);
  return p;
}

// --- Placement ------------------------------------------------------------

TEST(BlockPlacementTest, HoldersAreDistinctAndExactlyRPlusOne) {
  for (int num_ranks : {2, 3, 5, 8, 13}) {
    for (int r = 0; r < num_ranks; ++r) {
      BlockStoreConfig config;
      config.num_ranks = num_ranks;
      config.replication = r;
      config.seed = 17;
      BlockPlacement placement(config);
      for (uint64_t block = 0; block < 200; ++block) {
        std::vector<int> holders = placement.Holders(block);
        ASSERT_EQ(holders.size(), static_cast<size_t>(r + 1))
            << "ranks=" << num_ranks << " r=" << r << " block=" << block;
        std::set<int> distinct(holders.begin(), holders.end());
        EXPECT_EQ(distinct.size(), holders.size());
        for (int rank : holders) {
          EXPECT_GE(rank, 0);
          EXPECT_LT(rank, num_ranks);
        }
      }
    }
  }
}

TEST(BlockPlacementTest, HoldersWithPrimaryPinsAndStaysDistinct) {
  BlockStoreConfig config;
  config.num_ranks = 6;
  config.replication = 2;
  config.seed = 99;
  BlockPlacement placement(config);
  for (uint64_t block = 0; block < 128; ++block) {
    for (int primary = 0; primary < config.num_ranks; ++primary) {
      std::vector<int> holders = placement.HoldersWithPrimary(block, primary);
      ASSERT_EQ(holders.size(), 3u);
      EXPECT_EQ(holders.front(), primary);
      std::set<int> distinct(holders.begin(), holders.end());
      EXPECT_EQ(distinct.size(), holders.size());
    }
  }
}

TEST(BlockPlacementTest, DeterministicAcrossInstancesSeedSensitive) {
  BlockStoreConfig config;
  config.num_ranks = 7;
  config.replication = 2;
  config.seed = 1234;
  BlockPlacement a(config);
  BlockPlacement b(config);
  bool seed_changed_something = false;
  config.seed = 4321;
  BlockPlacement c(config);
  for (uint64_t block = 0; block < 512; ++block) {
    EXPECT_EQ(a.Holders(block), b.Holders(block));
    if (a.Holders(block) != c.Holders(block)) seed_changed_something = true;
  }
  EXPECT_TRUE(seed_changed_something);
}

TEST(BlockPlacementTest, LoadSpreadsAcrossRanks) {
  BlockStoreConfig config;
  config.num_ranks = 4;
  config.replication = 1;
  config.seed = 7;
  config.blocks_per_permutation_range = 8;
  BlockPlacement placement(config);
  std::vector<int> copies(config.num_ranks, 0);
  const int kBlocks = 4096;
  for (uint64_t block = 0; block < kBlocks; ++block) {
    for (int rank : placement.Holders(block)) copies[rank]++;
  }
  // 2 copies x 4096 blocks over 4 ranks = 2048 expected per rank; the seeded
  // permutation should keep every rank within 25% of that.
  for (int rank = 0; rank < config.num_ranks; ++rank) {
    EXPECT_GT(copies[rank], 2048 * 3 / 4) << "rank " << rank;
    EXPECT_LT(copies[rank], 2048 * 5 / 4) << "rank " << rank;
  }
}

// --- Sealed images --------------------------------------------------------

TEST(BlockImageTest, SealUnsealRoundTrip) {
  std::vector<uint8_t> payload = Payload(313, 5);
  std::vector<uint8_t> image = BlockImage::Seal(42, payload);
  EXPECT_EQ(image.size(), BlockImage::SealedSize(payload.size()));
  Result<BlockImage> unsealed = BlockImage::Unseal(image);
  ASSERT_TRUE(unsealed.ok()) << unsealed.status().ToString();
  EXPECT_EQ(unsealed->block_id, 42u);
  EXPECT_EQ(unsealed->payload, payload);
}

TEST(BlockImageTest, EmptyPayloadSeals) {
  std::vector<uint8_t> image = BlockImage::Seal(7, {});
  Result<BlockImage> unsealed = BlockImage::Unseal(image);
  ASSERT_TRUE(unsealed.ok());
  EXPECT_EQ(unsealed->block_id, 7u);
  EXPECT_TRUE(unsealed->payload.empty());
}

TEST(BlockImageTest, AnySingleBitFlipIsDetected) {
  std::vector<uint8_t> payload = Payload(64, 9);
  std::vector<uint8_t> image = BlockImage::Seal(3, payload);
  // Flip one bit in each region: header, payload, trailer.
  for (uint64_t bit : {uint64_t{1}, uint64_t{image.size() * 8 / 2},
                       uint64_t{image.size() * 8 - 3}}) {
    std::vector<uint8_t> damaged = image;
    damaged[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    Result<BlockImage> unsealed = BlockImage::Unseal(damaged);
    EXPECT_FALSE(unsealed.ok()) << "bit " << bit << " went undetected";
  }
}

TEST(BlockImageTest, TruncatedImageRejected) {
  std::vector<uint8_t> image = BlockImage::Seal(11, Payload(32, 1));
  for (size_t len : {size_t{0}, size_t{4}, image.size() - 1}) {
    std::vector<uint8_t> truncated(image.begin(), image.begin() + len);
    EXPECT_FALSE(BlockImage::Unseal(truncated).ok()) << "len " << len;
  }
}

TEST(ModelSliceBlockTest, SerializeRoundTrip) {
  ModelSliceBlock slice;
  slice.partition = 5;
  slice.weights = {0.5, -1.25, 3e-9, 0.0};
  slice.opt_state = {1.0, 2.0};
  Result<ModelSliceBlock> back = ModelSliceBlock::Deserialize(slice.Serialize());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->partition, 5);
  EXPECT_EQ(back->weights, slice.weights);
  EXPECT_EQ(back->opt_state, slice.opt_state);
}

TEST(ModelSliceBlockTest, GarbageRejected) {
  EXPECT_FALSE(ModelSliceBlock::Deserialize({}).ok());
  EXPECT_FALSE(ModelSliceBlock::Deserialize(Payload(13, 200)).ok());
}

// --- BlockStore -----------------------------------------------------------

BlockStoreConfig SmallStoreConfig() {
  BlockStoreConfig config;
  config.num_ranks = 4;
  config.replication = 2;
  config.seed = 21;
  return config;
}

TEST(BlockStoreTest, PutFetchServesPrimary) {
  BlockStore store(SmallStoreConfig());
  std::vector<uint8_t> payload = Payload(100, 3);
  store.Put(1, payload, {2, 0, 3});
  ASSERT_EQ(store.Holders(1), (std::vector<int>{2, 0, 3}));
  Result<BlockFetch> fetch = store.Fetch(1);
  ASSERT_TRUE(fetch.ok());
  EXPECT_EQ(fetch->rank, 2);
  EXPECT_EQ(fetch->payload, payload);
  EXPECT_TRUE(fetch->rejected_ranks.empty());
  EXPECT_EQ(fetch->wire_bytes, BlockImage::SealedSize(payload.size()));
}

TEST(BlockStoreTest, FetchUnknownBlockIsNotFound) {
  BlockStore store(SmallStoreConfig());
  Result<BlockFetch> fetch = store.Fetch(404);
  ASSERT_FALSE(fetch.ok());
  EXPECT_TRUE(fetch.status().IsNotFound());
}

TEST(BlockStoreTest, DamagedPrimaryFallsThroughToReplica) {
  BlockStore store(SmallStoreConfig());
  std::vector<uint8_t> payload = Payload(80, 4);
  store.Put(9, payload, {0, 1, 2});
  store.FlipBit(9, 0, 40);
  Result<BlockFetch> fetch = store.Fetch(9);
  ASSERT_TRUE(fetch.ok());
  EXPECT_EQ(fetch->rank, 1);
  EXPECT_EQ(fetch->payload, payload);
  EXPECT_EQ(fetch->rejected_ranks, (std::vector<int>{0}));
}

TEST(BlockStoreTest, AllCopiesDamagedIsSerializationError) {
  BlockStore store(SmallStoreConfig());
  store.Put(9, Payload(80, 4), {0, 1, 2});
  for (int rank : {0, 1, 2}) store.FlipBit(9, rank, 17);
  Result<BlockFetch> fetch = store.Fetch(9);
  ASSERT_FALSE(fetch.ok());
  EXPECT_EQ(fetch.status().code(), StatusCode::kSerializationError);
}

TEST(BlockStoreTest, RefreshHealsDamageAndUpdatesPayload) {
  BlockStore store(SmallStoreConfig());
  store.Put(5, Payload(60, 1), {1, 2});
  store.FlipBit(5, 1, 8);
  std::vector<uint8_t> next = Payload(60, 2);
  store.Refresh(5, next);
  Result<BlockFetch> fetch = store.Fetch(5);
  ASSERT_TRUE(fetch.ok());
  EXPECT_EQ(fetch->rank, 1);
  EXPECT_EQ(fetch->payload, next);
}

TEST(BlockStoreTest, DropRankThenAddHolderRestoresCopies) {
  BlockStore store(SmallStoreConfig());
  std::vector<uint8_t> payload = Payload(50, 6);
  store.Put(3, payload, {0, 1});
  store.Put(4, payload, {0, 2});
  EXPECT_EQ(store.BlocksHeldBy(0), (std::vector<uint64_t>{3, 4}));
  EXPECT_GT(store.BytesHeldBy(0), 0u);

  store.DropRank(0);
  EXPECT_TRUE(store.BlocksHeldBy(0).empty());
  EXPECT_EQ(store.BytesHeldBy(0), 0u);
  EXPECT_EQ(store.Holders(3), (std::vector<int>{1}));

  store.AddHolder(3, 2, /*as_primary=*/true);
  EXPECT_EQ(store.Holders(3), (std::vector<int>{2, 1}));
  Result<BlockFetch> fetch = store.Fetch(3);
  ASSERT_TRUE(fetch.ok());
  EXPECT_EQ(fetch->rank, 2);
  EXPECT_EQ(fetch->payload, payload);
}

TEST(BlockStoreTest, LastCopyLostKeepsBlockWithEmptyHolders) {
  BlockStore store(SmallStoreConfig());
  store.Put(8, Payload(40, 2), {3});
  store.DropRank(3);
  EXPECT_TRUE(store.Holders(8).empty());
  Result<BlockFetch> fetch = store.Fetch(8);
  ASSERT_FALSE(fetch.ok());
  EXPECT_TRUE(fetch.status().IsNotFound());
}

TEST(BlockStoreTest, MakePrimaryReordersHolders) {
  BlockStore store(SmallStoreConfig());
  store.Put(2, Payload(30, 7), {0, 1, 3});
  store.MakePrimary(2, 3);
  EXPECT_EQ(store.Holders(2), (std::vector<int>{3, 0, 1}));
  store.RemoveHolder(2, 0);
  EXPECT_EQ(store.Holders(2), (std::vector<int>{3, 1}));
}

}  // namespace
}  // namespace colsgd
