// Tests for the replicated serving fleet (src/serve/fleet.h): health-routed
// shard groups, request hedging, coordinated hot swap, and whole-group
// failover.
//
// The acceptance pins live here:
//  * double runs are bit-identical — route and hedge decisions, scores and
//    completions — across R in {1, 2, 3};
//  * an R = 1 fleet with routing disabled reproduces the plain frontend
//    fingerprint bitwise (the PR 5 serving plane is a special case);
//  * under a straggled group, hedges fire and win, and the hedged tail is
//    measurably shorter than the unhedged one — with the byte overhead
//    accounted;
//  * a coordinated hot swap never mixes generations: every response is
//    scored against exactly one generation, bitwise vs the offline kernel;
//  * a whole-group loss drains every outstanding batch to survivors with
//    zero timeouts and zero wrong answers.
#include <cmath>
#include <cstring>
#include <map>
#include <set>

#include "common/rng.h"
#include "datagen/synthetic.h"
#include "gtest/gtest.h"
#include "model/factory.h"
#include "serve/fleet.h"
#include "serve/frontend.h"
#include "serve/registry.h"
#include "serve/serving_chaos.h"
#include "serve/wire.h"

namespace colsgd {
namespace {

Dataset FleetQueries(uint64_t features = 120, uint64_t rows = 150) {
  SyntheticSpec spec;
  spec.name = "fleet_test_queries";
  spec.num_rows = rows;
  spec.num_features = features;
  spec.avg_nnz_per_row = 10.0;
  spec.seed = 77;
  return GenerateSynthetic(spec);
}

SavedModel Planted(const std::string& model_name, uint64_t num_features,
                   uint64_t seed) {
  std::unique_ptr<ModelSpec> spec = MakeModel(model_name);
  const int wpf = spec->weights_per_feature();
  SavedModel model;
  model.model_name = model_name;
  model.num_features = num_features;
  model.weights.resize(num_features * static_cast<uint64_t>(wpf));
  for (uint64_t slot = 0; slot < model.weights.size(); ++slot) {
    model.weights[slot] = 0.05 * GaussianFromHash(slot + 1, seed);
  }
  model.shared.resize(spec->num_shared_params());
  for (size_t i = 0; i < model.shared.size(); ++i) {
    model.shared[i] = 0.01 * GaussianFromHash(0x51a3edULL + i, seed);
  }
  return model;
}

bool BitEqual(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

std::vector<ServeRequest> SteadyArrivals(int64_t num_requests, double rate,
                                         uint64_t seed, size_t num_rows) {
  WorkloadConfig workload;
  workload.rate = rate;
  workload.num_requests = num_requests;
  workload.seed = seed;
  return GenerateArrivals(workload, num_rows);
}

std::vector<double> OfflineScores(const SavedModel& model,
                                  const Dataset& queries, int num_shards) {
  Result<DatasetScores> scored = ScoreDatasetSharded(
      model, "round_robin", num_shards, queries, queries.num_rows());
  EXPECT_TRUE(scored.ok()) << scored.status().ToString();
  return scored->scores;
}

TEST(FleetConfigTest, ValidatesShape) {
  FleetConfig config;
  EXPECT_TRUE(FleetConfig::Validate(config).ok());
  config.replicas = 0;
  EXPECT_FALSE(FleetConfig::Validate(config).ok());
  config.replicas = 2;
  config.routing = false;
  EXPECT_FALSE(FleetConfig::Validate(config).ok())
      << "routing can only be disabled for a single group";
  config.routing = true;
  config.straggle_group = 2;
  EXPECT_FALSE(FleetConfig::Validate(config).ok())
      << "straggle_group must name a group in the fleet";
  config.straggle_group = -1;
  config.hedge_factor = 0.5;
  EXPECT_FALSE(FleetConfig::Validate(config).ok());
  config.hedge_factor = 2.0;
  config.hedge_quantile = 0.0;
  EXPECT_FALSE(FleetConfig::Validate(config).ok());
}

TEST(FleetTest, DoubleRunsAreBitIdenticalAcrossReplicaCounts) {
  const Dataset queries = FleetQueries();
  const SavedModel model = Planted("lr", queries.num_features, 5);
  const std::vector<double> offline = OfflineScores(model, queries, 4);
  const std::vector<ServeRequest> arrivals =
      SteadyArrivals(400, 3000.0, 21, queries.num_rows());
  for (int replicas : {1, 2, 3}) {
    uint64_t first_fingerprint = 0;
    for (int run = 0; run < 2; ++run) {
      FleetConfig config;
      config.replicas = replicas;
      config.serve.num_shards = 4;
      ServeFleet fleet(ClusterSpec::Cluster1(), config, &queries);
      ASSERT_TRUE(fleet.Install(model).ok());
      ASSERT_TRUE(fleet.Run(arrivals).ok());
      const FleetSummary summary = fleet.Summarize();
      EXPECT_EQ(summary.offered, 400);
      EXPECT_EQ(summary.completed + summary.rejected + summary.timed_out,
                400);
      EXPECT_EQ(summary.timed_out, 0) << "R=" << replicas;
      ASSERT_EQ(summary.group_completed.size(),
                static_cast<size_t>(replicas));
      int64_t by_group = 0;
      for (int64_t c : summary.group_completed) by_group += c;
      EXPECT_EQ(by_group, summary.completed);
      if (replicas > 1) {
        // The balancer must actually spread load: no group starves.
        for (int g = 0; g < replicas; ++g) {
          EXPECT_GT(summary.group_completed[static_cast<size_t>(g)], 0)
              << "group " << g << " of " << replicas << " served nothing";
        }
      }
      for (const RequestRecord& rec : fleet.records()) {
        if (rec.status != RequestStatus::kCompleted) continue;
        EXPECT_TRUE(BitEqual(rec.score, offline[rec.row]))
            << "R=" << replicas << " request " << rec.id;
        const double tiled =
            rec.queue_s + rec.scatter_s + rec.compute_s + rec.gather_s;
        EXPECT_NEAR(tiled, rec.completion - rec.arrival, 1e-9);
      }
      // Route decisions, attempt counts, scores, completions — all hashed.
      if (run == 0) {
        first_fingerprint = fleet.Fingerprint();
      } else {
        EXPECT_EQ(fleet.Fingerprint(), first_fingerprint)
            << "R=" << replicas << " double run diverged";
      }
    }
  }
}

TEST(FleetTest, RoutingDisabledReproducesPlainFrontendBitwise) {
  const Dataset queries = FleetQueries();
  const SavedModel model = Planted("lr", queries.num_features, 5);
  const std::vector<ServeRequest> arrivals =
      SteadyArrivals(400, 3000.0, 21, queries.num_rows());

  ServeConfig serve;
  serve.num_shards = 4;
  ServeFrontend frontend(ClusterSpec::Cluster1(), serve, &queries);
  ASSERT_TRUE(frontend.Install(model).ok());
  ASSERT_TRUE(frontend.Run(arrivals).ok());

  FleetConfig config;
  config.replicas = 1;
  config.routing = false;
  config.serve = serve;
  ServeFleet fleet(ClusterSpec::Cluster1(), config, &queries);
  ASSERT_TRUE(fleet.Install(model).ok());
  ASSERT_TRUE(fleet.Run(arrivals).ok());

  EXPECT_EQ(fleet.Fingerprint(), frontend.Fingerprint());
  ASSERT_EQ(fleet.records().size(), frontend.records().size());
  for (size_t i = 0; i < fleet.records().size(); ++i) {
    const RequestRecord& a = fleet.records()[i];
    const RequestRecord& b = frontend.records()[i];
    EXPECT_EQ(a.status, b.status);
    EXPECT_TRUE(BitEqual(a.dispatch, b.dispatch));
    EXPECT_TRUE(BitEqual(a.completion, b.completion));
    EXPECT_TRUE(BitEqual(a.score, b.score));
  }
  const FleetSummary summary = fleet.Summarize();
  EXPECT_EQ(summary.replicas, 1);
  EXPECT_EQ(summary.hedges_fired, 0);
  EXPECT_TRUE(fleet.request_infos().empty())
      << "the delegation path has no routing story";
}

TEST(FleetTest, HedgingCutsTailLatencyUnderStraggledGroup) {
  const Dataset queries = FleetQueries();
  const SavedModel model = Planted("lr", queries.num_features, 5);
  const std::vector<double> offline = OfflineScores(model, queries, 4);
  const std::vector<ServeRequest> arrivals =
      SteadyArrivals(600, 3000.0, 21, queries.num_rows());

  auto run_fleet = [&](bool hedging) {
    FleetConfig config;
    config.replicas = 2;
    config.serve.num_shards = 4;
    config.hedging = hedging;
    // The ISSUE's level-5 straggler: the slow group takes 6x its task time.
    config.straggle_group = 1;
    config.straggle_level = 5.0;
    // A persistent straggler poisons the upper quantiles of the round-trip
    // window, so the budget tracks the median of the mixed window instead.
    config.hedge_quantile = 0.5;
    config.hedge_min_budget = 1e-3;
    auto fleet =
        std::make_unique<ServeFleet>(ClusterSpec::Cluster1(), config,
                                     &queries);
    EXPECT_TRUE(fleet->Install(model).ok());
    EXPECT_TRUE(fleet->Run(arrivals).ok());
    return fleet;
  };

  const auto without = run_fleet(false);
  const auto with = run_fleet(true);
  const FleetSummary base = without->Summarize();
  const FleetSummary hedged = with->Summarize();

  EXPECT_EQ(base.hedges_fired, 0);
  EXPECT_GT(hedged.hedges_fired, 0) << "the straggler never tripped a hedge";
  EXPECT_GT(hedged.hedge_wins, 0) << "no hedge beat the straggled primary";
  EXPECT_GT(hedged.hedge_bytes, 0u) << "hedge traffic must be charged";
  EXPECT_LT(hedged.latency_p99, base.latency_p99)
      << "hedging failed to cut the tail";
  // Hedging is not free — the duplicate work shows up on the wire.
  EXPECT_GT(hedged.wire_bytes, base.wire_bytes);

  // Both runs complete everything correctly; hedging changes latency, not
  // answers.
  for (const ServeFleet* fleet : {without.get(), with.get()}) {
    const FleetSummary summary = fleet->Summarize();
    EXPECT_EQ(summary.completed + summary.rejected, 600);
    EXPECT_EQ(summary.timed_out, 0);
    for (const RequestRecord& rec : fleet->records()) {
      if (rec.status != RequestStatus::kCompleted) continue;
      EXPECT_TRUE(BitEqual(rec.score, offline[rec.row]));
    }
  }
  // A won hedge is visible in the per-request routing story.
  bool saw_hedge_win = false;
  for (const FleetRequestInfo& info : with->request_infos()) {
    if (info.hedge_won) {
      saw_hedge_win = true;
      EXPECT_TRUE(info.hedged);
      EXPECT_GE(info.attempts, 2);
    }
  }
  EXPECT_TRUE(saw_hedge_win);
}

TEST(FleetTest, HotSwapNeverMixesGenerationsFleetWide) {
  const Dataset queries = FleetQueries();
  const SavedModel gen0 = Planted("lr", queries.num_features, 5);
  const SavedModel gen1 = Planted("lr", queries.num_features, 6);
  const SavedModel gen2 = Planted("lr", queries.num_features, 7);
  const std::vector<ServeRequest> arrivals =
      SteadyArrivals(600, 3000.0, 21, queries.num_rows());
  const double horizon = 0.2;  // 600 / 3000

  FleetConfig config;
  config.replicas = 2;
  config.serve.num_shards = 4;
  // A straggled group keeps hedges firing while the swaps land, so the
  // generation barrier is actually exercised, not just present.
  config.straggle_group = 1;
  config.straggle_level = 5.0;
  config.hedge_quantile = 0.5;
  config.hedge_min_budget = 1e-3;
  ServeFleet fleet(ClusterSpec::Cluster1(), config, &queries);
  ASSERT_TRUE(fleet.Install(gen0).ok());
  fleet.ScheduleSwap(horizon / 3.0, gen1, 10);
  fleet.ScheduleSwap(2.0 * horizon / 3.0, gen2, 20);
  ASSERT_TRUE(fleet.Run(arrivals).ok());

  const FleetSummary summary = fleet.Summarize();
  EXPECT_EQ(summary.completed + summary.rejected, 600);
  EXPECT_EQ(summary.timed_out, 0) << "a hot swap must not drop batches";
  EXPECT_EQ(summary.swaps_completed, 2);
  EXPECT_EQ(summary.swaps_failed, 0);

  std::map<int64_t, std::vector<double>> offline;
  offline[0] = OfflineScores(gen0, queries, 4);
  offline[1] = OfflineScores(gen1, queries, 4);
  offline[2] = OfflineScores(gen2, queries, 4);
  std::set<int64_t> generations_seen;
  for (const RequestRecord& rec : fleet.records()) {
    if (rec.status != RequestStatus::kCompleted) continue;
    ASSERT_GE(rec.generation, 0);
    ASSERT_LE(rec.generation, 2);
    generations_seen.insert(rec.generation);
    // A response assembled across a swap — or a hedge substituted across
    // one — would match neither generation's offline vector.
    EXPECT_TRUE(BitEqual(rec.score, offline[rec.generation][rec.row]))
        << "request " << rec.id << " generation " << rec.generation;
  }
  EXPECT_EQ(generations_seen.size(), 3u)
      << "load did not span all three generations";
  // Both groups flipped twice: generations 0..2 all installed ok.
  for (int g = 0; g < 2; ++g) {
    const auto& history = fleet.group(g).registry().history();
    ASSERT_EQ(history.size(), 3u) << "group " << g;
    for (const GenerationInfo& info : history) EXPECT_TRUE(info.ok);
  }
}

TEST(FleetTest, WholeGroupLossDrainsToSurvivorsWithZeroTimeouts) {
  const Dataset queries = FleetQueries();
  const SavedModel model = Planted("lr", queries.num_features, 5);
  const std::vector<double> offline = OfflineScores(model, queries, 4);
  const std::vector<ServeRequest> arrivals =
      SteadyArrivals(600, 3000.0, 21, queries.num_rows());

  FleetConfig config;
  config.replicas = 2;
  config.serve.num_shards = 4;
  // Tighten the heartbeat so detection lands inside the 0.2 s run.
  config.detector.heartbeat_interval = 0.01;
  config.detector.heartbeat_timeout = 0.04;
  ServeFleet fleet(ClusterSpec::Cluster1(), config, &queries);
  ASSERT_TRUE(fleet.Install(model).ok());
  const double fail_at = 0.08;
  fleet.ScheduleGroupFailure(fail_at, 0);
  ASSERT_TRUE(fleet.Run(arrivals).ok());

  const FleetSummary summary = fleet.Summarize();
  EXPECT_EQ(summary.group_down_events, 1);
  EXPECT_EQ(summary.timed_out, 0)
      << "with a survivor group, no client-visible timeout is acceptable";
  EXPECT_EQ(summary.completed + summary.rejected, 600);
  // The whole group re-installed: one failover record per shard.
  EXPECT_EQ(summary.failovers, config.serve.num_shards);
  // Zero wrong answers, before, during, and after the loss.
  bool completed_after_failure = false;
  for (const RequestRecord& rec : fleet.records()) {
    if (rec.status != RequestStatus::kCompleted) continue;
    EXPECT_TRUE(BitEqual(rec.score, offline[rec.row]));
    completed_after_failure |= rec.dispatch > fail_at;
  }
  EXPECT_TRUE(completed_after_failure);
  // The survivor carried the interregnum.
  ASSERT_EQ(summary.group_completed.size(), 2u);
  EXPECT_GT(summary.group_completed[1], summary.group_completed[0]);
  // Double run, including the loss and the drain, is bit-identical.
  ServeFleet again(ClusterSpec::Cluster1(), config, &queries);
  ASSERT_TRUE(again.Install(model).ok());
  again.ScheduleGroupFailure(fail_at, 0);
  ASSERT_TRUE(again.Run(arrivals).ok());
  EXPECT_EQ(fleet.Fingerprint(), again.Fingerprint());
}

TEST(FleetTest, SingleShardFailureRedispatchesInsteadOfTimingOut) {
  const Dataset queries = FleetQueries();
  const SavedModel model = Planted("lr", queries.num_features, 5);
  const std::vector<double> offline = OfflineScores(model, queries, 4);
  const std::vector<ServeRequest> arrivals =
      SteadyArrivals(400, 2000.0, 8, queries.num_rows());

  FleetConfig config;
  config.replicas = 2;
  config.serve.num_shards = 4;
  ServeFleet fleet(ClusterSpec::Cluster1(), config, &queries);
  ASSERT_TRUE(fleet.Install(model).ok());
  fleet.ScheduleShardFailure(0.05, /*group=*/0, /*shard=*/2);
  ASSERT_TRUE(fleet.Run(arrivals).ok());

  const FleetSummary summary = fleet.Summarize();
  // The pre-fleet frontend timed these batches out at the client; the
  // routing tier retries them on the sibling group instead.
  EXPECT_EQ(summary.timed_out, 0);
  EXPECT_EQ(summary.completed + summary.rejected, 400);
  EXPECT_GT(summary.redispatches, 0);
  EXPECT_GE(summary.failovers, 1);
  for (const RequestRecord& rec : fleet.records()) {
    if (rec.status != RequestStatus::kCompleted) continue;
    EXPECT_TRUE(BitEqual(rec.score, offline[rec.row]));
  }
  bool saw_retry = false;
  for (const FleetRequestInfo& info : fleet.request_infos()) {
    if (info.attempts >= 2 && !info.hedged) saw_retry = true;
  }
  EXPECT_TRUE(saw_retry) << "no request records a failed-then-retried path";
}

// ---- Fleet chaos harness -------------------------------------------------

TEST(FleetChaosTest, SchedulesAreDeterministicAndCleanSeedsPass) {
  // Default options — the same configuration `colsgd_chaos --scenario
  // serving_fleet` runs in CI.
  const chaos::FleetChaosOptions options;
  const Dataset queries = chaos::ServingQueryDataset(options.serving);
  for (uint64_t seed : {0u, 1u, 2u}) {
    const chaos::FleetSchedule schedule =
        chaos::GenerateFleetSchedule(seed, options);
    const chaos::FleetSchedule replay =
        chaos::GenerateFleetSchedule(seed, options);
    EXPECT_EQ(schedule.replicas, replay.replicas);
    EXPECT_EQ(schedule.flash, replay.flash);
    ASSERT_EQ(schedule.group_losses.size(), replay.group_losses.size());
    ASSERT_EQ(schedule.shard_failures.size(), replay.shard_failures.size());
    ASSERT_EQ(schedule.swaps.size(), replay.swaps.size());
    for (size_t i = 0; i < schedule.swaps.size(); ++i) {
      EXPECT_EQ(schedule.swaps[i].model_seed, replay.swaps[i].model_seed);
    }
    const chaos::FleetVerdict verdict =
        chaos::RunFleetSchedule(options, schedule, queries, seed);
    EXPECT_TRUE(verdict.ok()) << (verdict.violations.empty()
                                      ? ""
                                      : verdict.violations[0]);
    const chaos::FleetVerdict again =
        chaos::RunFleetSchedule(options, schedule, queries, seed);
    EXPECT_EQ(verdict.fingerprint, again.fingerprint);
  }
}

}  // namespace
}  // namespace colsgd
