// Causal critical-path analysis (DESIGN.md §16):
//  * Conservation: the extracted critical path tiles the makespan exactly —
//    |path length - makespan| <= 1e-9 with zero unexplained gaps — for every
//    engine x model pair under BSP, SSP, heavy stragglers, and crash/recovery.
//  * Passivity: attaching the recorder changes no trained bit and no
//    simulated clock.
//  * Determinism: two identical runs produce fingerprint-identical DAGs, and
//    the JSON round trip preserves the fingerprint.
//  * What-if fidelity: retimed predictions match real re-runs of the changed
//    cluster (straggler removal within 1%, NIC speedup, SSP slack bump).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "datagen/synthetic.h"
#include "engine/trainer.h"
#include "obs/critpath/analysis.h"
#include "obs/critpath/critpath.h"
#include "obs/critpath/dag_json.h"
#include "obs/critpath/retime.h"

namespace colsgd {
namespace {

Dataset TestData(const std::string& model_name = "lr") {
  SyntheticSpec spec = TinySpec();
  spec.num_rows = 2000;
  spec.num_features = 403;
  if (model_name.rfind("mlr", 0) == 0) {
    spec.num_classes = std::stoi(model_name.substr(3));
  }
  return GenerateSynthetic(spec);
}

ClusterSpec Cluster(int workers) {
  ClusterSpec spec = ClusterSpec::Cluster1();
  spec.num_workers = workers;
  return spec;
}

TrainConfig Config(const std::string& model) {
  TrainConfig config;
  config.model = model;
  config.learning_rate = 0.3;
  config.batch_size = 50;
  config.block_rows = 128;
  return config;
}

FaultConfig RotatingStragglers() {
  FaultPlanConfig fc;
  fc.seed = 7;
  fc.stragglers.mode = StragglerSpec::Mode::kRotating;
  fc.stragglers.level = 5.0;
  FaultConfig faults;
  faults.plan = FaultPlan(fc);
  return faults;
}

FaultConfig PersistentStraggler(int worker) {
  FaultPlanConfig fc;
  fc.seed = 7;
  fc.stragglers.mode = StragglerSpec::Mode::kPersistent;
  fc.stragglers.workers = {worker};
  fc.stragglers.level = 5.0;
  FaultConfig faults;
  faults.plan = FaultPlan(fc);
  return faults;
}

struct RunOutcome {
  CritDag dag;  // empty unless recorded
  std::vector<double> model;
  double makespan = 0.0;
  std::vector<double> clocks;  // master + workers
};

RunOutcome RunEngine(const std::string& engine_name, const std::string& model_name,
               int workers, int iterations, const TrainConfig& config,
               const FaultConfig* faults, bool record,
               const ClusterSpec* cluster = nullptr) {
  Dataset d = TestData(model_name);
  const ClusterSpec spec = cluster != nullptr ? *cluster : Cluster(workers);
  std::unique_ptr<Engine> engine = MakeEngine(engine_name, spec, config);
  CritPathRecorder recorder;
  if (record) engine->set_critpath(&recorder);
  if (faults != nullptr) {
    EXPECT_TRUE(engine->set_faults(*faults).ok());
  }
  EXPECT_TRUE(engine->Setup(d).ok());
  for (int i = 0; i < iterations; ++i) {
    EXPECT_TRUE(engine->RunIteration(i).ok());
  }
  EXPECT_TRUE(engine->FinishTraining().ok());

  RunOutcome out;
  out.model = engine->FullModel();
  out.makespan = engine->runtime().MaxClock();
  for (int n = 0; n <= workers; ++n) {
    out.clocks.push_back(engine->runtime().clock(static_cast<NodeId>(n)));
  }
  if (record) out.dag = recorder.Snapshot();
  return out;
}

void ExpectConserved(const CritDag& dag, const std::string& label) {
  Result<CritPathResult> path = ExtractCriticalPath(dag);
  ASSERT_TRUE(path.ok()) << label << ": " << path.status().ToString();
  EXPECT_EQ(path->exact_misses, 0) << label;
  EXPECT_LE(std::fabs(path->PathLength() - dag.Makespan()), 1e-9)
      << label << ": path " << path->PathLength() << " vs makespan "
      << dag.Makespan();
  EXPECT_FALSE(path->steps.empty()) << label;
}

// --- Conservation: path length tiles the makespan to 1e-9 -----------------

class CritPathConservationTest
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {
};

TEST_P(CritPathConservationTest, SspSlackZeroAndTwoUnderStragglers) {
  const auto& [engine_name, model_name] = GetParam();
  const FaultConfig faults = RotatingStragglers();
  for (int slack : {0, 2}) {
    TrainConfig config = Config(model_name);
    config.ssp.enabled = true;
    config.ssp.slack = slack;
    RunOutcome run = RunEngine(engine_name, model_name, 4, 8, config, &faults,
                         /*record=*/true);
    ExpectConserved(run.dag, engine_name + "/" + model_name + " ssp slack " +
                                 std::to_string(slack));
  }
}

INSTANTIATE_TEST_SUITE_P(
    EnginesAndModels, CritPathConservationTest,
    ::testing::Values(std::make_tuple("columnsgd", "lr"),
                      std::make_tuple("columnsgd", "svm"),
                      std::make_tuple("columnsgd", "mlr3"),
                      std::make_tuple("columnsgd", "fm4"),
                      std::make_tuple("columnsgd", "mlp8"),
                      std::make_tuple("petuum", "lr"),
                      std::make_tuple("petuum", "svm"),
                      std::make_tuple("petuum", "mlr3"),
                      std::make_tuple("petuum", "fm4"),
                      std::make_tuple("mxnet", "lr"),
                      std::make_tuple("mxnet", "svm"),
                      std::make_tuple("mxnet", "mlr3"),
                      std::make_tuple("mxnet", "fm4")),
    [](const auto& info) {
      return std::get<0>(info.param) + "_" + std::get<1>(info.param);
    });

TEST(CritPathConservationTest, BspAllEnginesCleanAndStraggled) {
  const FaultConfig straggler = PersistentStraggler(0);
  for (const char* engine :
       {"columnsgd", "mllib", "mllib_star", "petuum", "mxnet"}) {
    const TrainConfig config = Config("lr");
    RunOutcome clean =
        RunEngine(engine, "lr", 4, 8, config, nullptr, /*record=*/true);
    ExpectConserved(clean.dag, std::string(engine) + " bsp clean");
    RunOutcome straggled =
        RunEngine(engine, "lr", 4, 8, config, &straggler, /*record=*/true);
    ExpectConserved(straggled.dag, std::string(engine) + " bsp straggler");
  }
}

TEST(CritPathConservationTest, CrashRecoveryWithCheckpoints) {
  for (const char* engine : {"columnsgd", "mllib"}) {
    FaultConfig faults;
    faults.plan =
        FaultPlan::Scripted({{10, 1, FaultKind::kWorkerFailure}});
    faults.checkpoint.every = 5;
    const TrainConfig config = Config("lr");
    RunOutcome run = RunEngine(engine, "lr", 4, 20, config, &faults,
                         /*record=*/true);
    ExpectConserved(run.dag, std::string(engine) + " crash/recovery");
    Result<CritPathResult> path = ExtractCriticalPath(run.dag);
    ASSERT_TRUE(path.ok());
    // A straggler-free crash run still spends time somewhere besides compute.
    EXPECT_GT(path->makespan, 0.0);
  }
}

// --- Passivity: attaching the recorder is invisible to the simulation -----

TEST(CritPathPassivityTest, RecorderChangesNoBitNoClock) {
  const FaultConfig faults = RotatingStragglers();
  for (const char* engine : {"columnsgd", "petuum"}) {
    TrainConfig config = Config("lr");
    config.ssp.enabled = true;
    config.ssp.slack = 1;
    RunOutcome plain = RunEngine(engine, "lr", 4, 8, config, &faults,
                           /*record=*/false);
    RunOutcome recorded = RunEngine(engine, "lr", 4, 8, config, &faults,
                              /*record=*/true);
    EXPECT_EQ(plain.model, recorded.model) << engine;
    ASSERT_EQ(plain.clocks.size(), recorded.clocks.size());
    for (size_t n = 0; n < plain.clocks.size(); ++n) {
      EXPECT_EQ(plain.clocks[n], recorded.clocks[n]) << engine << " node "
                                                     << n;
    }
    EXPECT_EQ(plain.makespan, recorded.makespan) << engine;
  }
}

// --- Determinism + serialization ------------------------------------------

TEST(CritPathDagTest, FingerprintDeterministicAcrossRuns) {
  const FaultConfig faults = RotatingStragglers();
  TrainConfig config = Config("lr");
  config.ssp.enabled = true;
  config.ssp.slack = 2;
  RunOutcome a = RunEngine("columnsgd", "lr", 4, 8, config, &faults, true);
  RunOutcome b = RunEngine("columnsgd", "lr", 4, 8, config, &faults, true);
  EXPECT_EQ(a.dag.ops.size(), b.dag.ops.size());
  EXPECT_EQ(CritDagFingerprint(a.dag), CritDagFingerprint(b.dag));
}

TEST(CritPathDagTest, JsonRoundTripPreservesFingerprint) {
  const TrainConfig config = Config("lr");
  RunOutcome run = RunEngine("columnsgd", "lr", 4, 6, config, nullptr, true);
  const std::string path = "critpath_test_roundtrip.json";
  ASSERT_TRUE(WriteCritDagFile(run.dag, path).ok());
  Result<CritDag> reread = ReadCritDagFile(path);
  std::remove(path.c_str());
  ASSERT_TRUE(reread.ok()) << reread.status().ToString();
  EXPECT_EQ(reread->ops.size(), run.dag.ops.size());
  EXPECT_EQ(CritDagFingerprint(*reread), CritDagFingerprint(run.dag));
  ExpectConserved(*reread, "reread dag");
}

// --- What-if retiming fidelity --------------------------------------------

TEST(CritPathWhatIfTest, IdentityReplayReproducesMakespan) {
  const FaultConfig faults = RotatingStragglers();
  for (const char* engine : {"columnsgd", "petuum"}) {
    TrainConfig config = Config("lr");
    config.ssp.enabled = true;
    config.ssp.slack = 1;
    RunOutcome run = RunEngine(engine, "lr", 4, 8, config, &faults, true);
    Result<RetimeResult> replay = Retime(run.dag, WhatIf{});
    ASSERT_TRUE(replay.ok()) << replay.status().ToString();
    EXPECT_DOUBLE_EQ(replay->makespan, run.dag.Makespan()) << engine;
  }
}

TEST(CritPathWhatIfTest, StragglerRemovalPredictsCleanRunWithinOnePercent) {
  const FaultConfig straggler = PersistentStraggler(0);
  const TrainConfig config = Config("lr");
  RunOutcome straggled =
      RunEngine("columnsgd", "lr", 4, 8, config, &straggler, /*record=*/true);
  RunOutcome clean =
      RunEngine("columnsgd", "lr", 4, 8, config, nullptr, /*record=*/false);
  ASSERT_GT(straggled.makespan, clean.makespan);

  WhatIf what_if;
  what_if.straggler_scale.assign(straggled.dag.num_nodes, 1.0);
  what_if.straggler_scale[1] = 0.0;  // worker 0 = node 1
  Result<RetimeResult> predicted = Retime(straggled.dag, what_if);
  ASSERT_TRUE(predicted.ok()) << predicted.status().ToString();
  EXPECT_LE(std::fabs(predicted->makespan - clean.makespan),
            0.01 * clean.makespan)
      << "predicted " << predicted->makespan << " actual " << clean.makespan;
}

TEST(CritPathWhatIfTest, BandwidthDoublingPredictsFasterNetRun) {
  const TrainConfig config = Config("lr");
  RunOutcome base = RunEngine("columnsgd", "lr", 4, 8, config, nullptr, true);

  ClusterSpec fast = Cluster(4);
  fast.net.bandwidth *= 2.0;
  RunOutcome actual = RunEngine("columnsgd", "lr", 4, 8, config, nullptr,
                          /*record=*/false, &fast);
  ASSERT_LT(actual.makespan, base.makespan);

  WhatIf what_if;
  what_if.bandwidth_scale = 2.0;
  Result<RetimeResult> predicted = Retime(base.dag, what_if);
  ASSERT_TRUE(predicted.ok()) << predicted.status().ToString();
  EXPECT_LE(std::fabs(predicted->makespan - actual.makespan),
            0.01 * actual.makespan)
      << "predicted " << predicted->makespan << " actual " << actual.makespan;
}

TEST(CritPathWhatIfTest, SlackBumpPredictsLooserSspRun) {
  // Engine decisions (which records drain together) differ under a real
  // slack change, so this is the documented approximation: 5% tolerance.
  const FaultConfig faults = RotatingStragglers();
  TrainConfig slack1 = Config("lr");
  slack1.ssp.enabled = true;
  slack1.ssp.slack = 1;
  RunOutcome base = RunEngine("columnsgd", "lr", 4, 8, slack1, &faults, true);

  TrainConfig slack2 = Config("lr");
  slack2.ssp.enabled = true;
  slack2.ssp.slack = 2;
  RunOutcome actual =
      RunEngine("columnsgd", "lr", 4, 8, slack2, &faults, /*record=*/false);

  WhatIf what_if;
  what_if.slack_delta = 1;
  Result<RetimeResult> predicted = Retime(base.dag, what_if);
  ASSERT_TRUE(predicted.ok()) << predicted.status().ToString();
  EXPECT_LE(std::fabs(predicted->makespan - actual.makespan),
            0.05 * actual.makespan)
      << "predicted " << predicted->makespan << " actual " << actual.makespan;
  // Looser slack never slows the run down.
  EXPECT_LE(predicted->makespan, base.dag.Makespan() * (1.0 + 1e-12));
}

TEST(CritPathWhatIfTest, NegativeSlackDeltaRejected) {
  const TrainConfig config = Config("lr");
  RunOutcome run = RunEngine("columnsgd", "lr", 4, 4, config, nullptr, true);
  WhatIf what_if;
  what_if.slack_delta = -1;
  EXPECT_FALSE(Retime(run.dag, what_if).ok());
}

// --- Blame sanity ----------------------------------------------------------

TEST(CritPathBlameTest, PersistentStragglerDominatesBlame) {
  const FaultConfig straggler = PersistentStraggler(0);
  const TrainConfig config = Config("lr");
  RunOutcome run = RunEngine("columnsgd", "lr", 4, 8, config, &straggler, true);
  Result<CritPathResult> path = ExtractCriticalPath(run.dag);
  ASSERT_TRUE(path.ok()) << path.status().ToString();
  const double straggler_blame = path->BlameSeconds(BlameKind::kStraggler);
  // Level-5 straggling on the critical worker should own most of the path.
  EXPECT_GT(straggler_blame, 0.5 * path->makespan);
  // And the straggler seconds should be charged to worker 0 (node 1).
  double node1 = 0.0, others = 0.0;
  for (const auto& [key, seconds] : path->blame) {
    if (key.first != static_cast<int>(BlameKind::kStraggler)) continue;
    if (key.second == 1) {
      node1 += seconds;
    } else {
      others += seconds;
    }
  }
  EXPECT_GT(node1, others);
}

}  // namespace
}  // namespace colsgd
