// Engine-level elastic-membership tests (DESIGN.md §14): MembershipView
// bookkeeping, the determinism headline (a shrink-then-grow run ends with
// weights bitwise identical to the fixed-membership run's), crash recovery
// through peer replicas with zero checkpoint-storage reads, the r = 0
// checkpoint fallback, and the planned-departure vs crash distinction.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cluster/membership.h"
#include "datagen/synthetic.h"
#include "engine/trainer.h"

namespace colsgd {
namespace {

// --- MembershipView -------------------------------------------------------

TEST(MembershipViewTest, InitialActiveSetAndSpares) {
  MembershipView view(4, 6);
  EXPECT_EQ(view.active(), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(view.num_active(), 4);
  EXPECT_EQ(view.max_workers(), 6);
  EXPECT_TRUE(view.is_active(3));
  EXPECT_FALSE(view.is_active(4));
  EXPECT_EQ(view.generation(), 0);
}

TEST(MembershipViewTest, RemoveAddBumpGeneration) {
  MembershipView view(3, 4);
  ASSERT_TRUE(view.Remove(1).ok());
  EXPECT_EQ(view.active(), (std::vector<int>{0, 2}));
  EXPECT_EQ(view.generation(), 1);
  ASSERT_TRUE(view.Add(3).ok());
  EXPECT_EQ(view.active(), (std::vector<int>{0, 2, 3}));
  EXPECT_EQ(view.generation(), 2);
}

TEST(MembershipViewTest, RejectsInvalidTransitions) {
  MembershipView view(2, 3);
  EXPECT_FALSE(view.Remove(2).ok());  // not active
  EXPECT_FALSE(view.Add(1).ok());     // already active
  ASSERT_TRUE(view.Remove(1).ok());
  EXPECT_FALSE(view.Remove(0).ok());  // last active rank
}

TEST(MembershipViewTest, AutoPickRules) {
  MembershipView view(3, 5);
  EXPECT_EQ(view.PickShrink(), 2);  // highest active
  EXPECT_EQ(view.PickGrow(), 3);    // lowest inactive
  ASSERT_TRUE(view.Remove(1).ok());
  EXPECT_EQ(view.PickGrow(), 1);    // removed rank is the first gap
  ASSERT_TRUE(view.Add(1).ok());
  ASSERT_TRUE(view.Add(3).ok());
  ASSERT_TRUE(view.Add(4).ok());
  EXPECT_EQ(view.PickGrow(), -1);   // everything provisioned is active
  MembershipView lone(1, 2);
  EXPECT_EQ(lone.PickShrink(), -1);  // never shrink to zero
}

// --- Engine-level elasticity ----------------------------------------------

Dataset TestData() {
  SyntheticSpec spec = TinySpec();
  spec.num_rows = 2000;
  spec.num_features = 300;
  return GenerateSynthetic(spec);
}

ClusterSpec ElasticCluster(int workers = 4, int spares = 2) {
  ClusterSpec spec = ClusterSpec::Cluster1();
  spec.num_workers = workers;
  spec.max_workers = workers + spares;
  return spec;
}

TrainConfig ElasticConfigFor(int replication) {
  TrainConfig config;
  config.model = "lr";
  config.learning_rate = 0.5;
  config.batch_size = 128;
  config.block_rows = 256;
  config.elastic.enabled = true;
  config.elastic.replication = replication;
  return config;
}

FaultConfig MembershipFaults(std::vector<MembershipChange> changes) {
  FaultPlanConfig plan;
  plan.membership = std::move(changes);
  FaultConfig faults;
  faults.plan = FaultPlan(std::move(plan));
  return faults;
}

TrainResult RunPlain(const std::string& engine_name, const Dataset& d,
                     const RunOptions& options, std::vector<double>* weights) {
  TrainConfig config;
  config.model = "lr";
  config.learning_rate = 0.5;
  config.batch_size = 128;
  config.block_rows = 256;
  ClusterSpec cluster = ClusterSpec::Cluster1();
  cluster.num_workers = 4;
  auto engine = MakeEngine(engine_name, cluster, config);
  TrainResult result = RunTraining(engine.get(), d, options);
  *weights = engine->FullModel();
  return result;
}

class ElasticEngineTest : public ::testing::TestWithParam<const char*> {};

// §14 headline: membership churn reassigns ownership but never moves the
// authoritative math, so the elastic run's final weights are BITWISE equal
// to the plain fixed-membership run's.
TEST_P(ElasticEngineTest, ShrinkThenGrowMatchesFixedMembershipBitwise) {
  Dataset d = TestData();
  RunOptions options;
  options.iterations = 40;

  std::vector<double> plain_weights;
  TrainResult plain = RunPlain(GetParam(), d, options, &plain_weights);
  ASSERT_TRUE(plain.status.ok());

  auto run_elastic = [&](std::vector<double>* weights) {
    auto engine = MakeEngine(GetParam(), ElasticCluster(), ElasticConfigFor(1));
    engine->set_faults(MembershipFaults(
        {{10, MembershipChange::Kind::kShrink, -1},
         {20, MembershipChange::Kind::kGrow, -1}}));
    TrainResult result = RunTraining(engine.get(), d, options);
    *weights = engine->FullModel();
    return result;
  };

  std::vector<double> elastic_weights;
  TrainResult elastic = run_elastic(&elastic_weights);
  ASSERT_TRUE(elastic.status.ok());
  EXPECT_EQ(elastic.recovery.planned_departures, 1);
  EXPECT_EQ(elastic.recovery.grows, 1);
  EXPECT_EQ(elastic.recovery.crash_removals, 0);
  EXPECT_GT(elastic.recovery.membership_seconds, 0.0);
  EXPECT_GT(elastic.recovery.membership_bytes_moved, 0u);
  EXPECT_EQ(elastic.recovery.iterations_lost, 0);
  EXPECT_EQ(elastic_weights, plain_weights);

  // Same schedule replayed: bitwise weights and byte-identical traffic.
  std::vector<double> replay_weights;
  TrainResult replay = run_elastic(&replay_weights);
  ASSERT_TRUE(replay.status.ok());
  EXPECT_EQ(replay_weights, elastic_weights);
  EXPECT_EQ(replay.bytes_on_wire, elastic.bytes_on_wire);
  EXPECT_EQ(replay.messages, elastic.messages);
}

// A crash under r >= 1 recovers through the top rung of the ladder: peer
// replica fetches only — the checkpoint store is never read and nothing is
// re-seeded, so no update is lost and the math stays bitwise intact.
TEST_P(ElasticEngineTest, CrashRecoversFromPeerReplicasOnly) {
  Dataset d = TestData();
  RunOptions options;
  options.iterations = 40;

  std::vector<double> plain_weights;
  ASSERT_TRUE(RunPlain(GetParam(), d, options, &plain_weights).status.ok());

  auto engine = MakeEngine(GetParam(), ElasticCluster(), ElasticConfigFor(1));
  FaultConfig faults;
  faults.plan =
      FaultPlan::Scripted({{15, 1, FaultKind::kWorkerFailure}});
  faults.checkpoint.every = 10;  // present but must never be read from
  engine->set_faults(faults);
  TrainResult result = RunTraining(engine.get(), d, options);
  ASSERT_TRUE(result.status.ok());

  EXPECT_EQ(result.recovery.worker_failures, 1);
  EXPECT_EQ(result.recovery.crash_removals, 1);
  EXPECT_GE(result.recovery.peer_replica_fetches, 1);
  EXPECT_GT(result.recovery.peer_fetch_bytes, 0u);
  EXPECT_EQ(result.recovery.checkpoint_restore_reads, 0);
  EXPECT_EQ(result.recovery.reseeds, 0);
  EXPECT_EQ(result.recovery.iterations_lost, 0);
  EXPECT_EQ(engine->FullModel(), plain_weights);
}

// With r = 0 there is no surviving copy of the crashed rank's blocks, so
// recovery falls down the ladder to the checkpoint store.
TEST_P(ElasticEngineTest, ReplicationZeroFallsBackToCheckpoint) {
  Dataset d = TestData();
  RunOptions options;
  options.iterations = 40;

  auto engine = MakeEngine(GetParam(), ElasticCluster(), ElasticConfigFor(0));
  FaultConfig faults;
  faults.plan =
      FaultPlan::Scripted({{15, 1, FaultKind::kWorkerFailure}});
  faults.checkpoint.every = 10;
  engine->set_faults(faults);
  TrainResult result = RunTraining(engine.get(), d, options);
  ASSERT_TRUE(result.status.ok());

  EXPECT_EQ(result.recovery.peer_replica_fetches, 0);
  EXPECT_GE(result.recovery.checkpoint_restore_reads, 1);
}

// A planned decommission hands state off before the rank leaves: it counts
// as a planned departure, not a detected worker failure, and the departed
// rank draws no further faults.
TEST_P(ElasticEngineTest, PlannedDepartureIsNotAWorkerFailure) {
  Dataset d = TestData();
  RunOptions options;
  options.iterations = 30;

  auto engine = MakeEngine(GetParam(), ElasticCluster(), ElasticConfigFor(1));
  engine->set_faults(
      MembershipFaults({{12, MembershipChange::Kind::kShrink, -1}}));
  TrainResult result = RunTraining(engine.get(), d, options);
  ASSERT_TRUE(result.status.ok());

  EXPECT_EQ(result.recovery.planned_departures, 1);
  EXPECT_EQ(result.recovery.worker_failures, 0);
  EXPECT_EQ(result.recovery.crash_removals, 0);
  EXPECT_EQ(result.recovery.faults_on_departed_workers, 0);
  EXPECT_EQ(result.recovery.iterations_lost, 0);
}

INSTANTIATE_TEST_SUITE_P(Engines, ElasticEngineTest,
                         ::testing::Values("columnsgd", "petuum"));

}  // namespace
}  // namespace colsgd
