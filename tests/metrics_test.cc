// Tests for evaluation metrics (accuracy / AUC / loss) and RowScore.
#include <gtest/gtest.h>

#include "datagen/synthetic.h"
#include "engine/metrics.h"
#include "engine/trainer.h"
#include "model/factory.h"

namespace colsgd {
namespace {

TEST(AucTest, PerfectSeparationIsOne) {
  EXPECT_DOUBLE_EQ(AreaUnderRoc({1, 2, 3, 4}, {-1, -1, 1, 1}), 1.0);
}

TEST(AucTest, PerfectInversionIsZero) {
  EXPECT_DOUBLE_EQ(AreaUnderRoc({4, 3, 2, 1}, {-1, -1, 1, 1}), 0.0);
}

TEST(AucTest, AllTiedIsHalf) {
  EXPECT_DOUBLE_EQ(AreaUnderRoc({7, 7, 7, 7}, {-1, 1, -1, 1}), 0.5);
}

TEST(AucTest, HandCheckedMixedCase) {
  // scores: n(-1):1, p(+1):2, n:3, p:4 -> pairs won: (p2>n1), (p4>n1),
  // (p4>n3); lost: (p2<n3). AUC = 3/4.
  EXPECT_DOUBLE_EQ(AreaUnderRoc({1, 2, 3, 4}, {-1, 1, -1, 1}), 0.75);
}

TEST(AucTest, TiesCountHalf) {
  // p tied with n at score 2: 0.5; p4 beats both negatives: 2. AUC = 2.5/4.
  EXPECT_DOUBLE_EQ(AreaUnderRoc({2, 2, 3, 4}, {-1, 1, -1, 1}), 0.625);
}

TEST(AucTest, DegenerateSingleClassIsHalf) {
  EXPECT_DOUBLE_EQ(AreaUnderRoc({1, 2}, {1, 1}), 0.5);
}

TEST(RowScoreTest, GlmScoreIsMargin) {
  auto lr = MakeModel("lr");
  SparseRow row;
  row.Push(0, 2.0f);
  row.Push(2, -1.0f);
  std::vector<double> weights = {1.0, 5.0, 3.0};
  EXPECT_DOUBLE_EQ(lr->RowScore(row.View(), weights), 2.0 - 3.0);
}

TEST(RowScoreTest, FmScoreMatchesRowLossLogit) {
  auto fm = MakeModel("fm3");
  SparseRow row;
  row.Push(0, 1.0f);
  row.Push(1, 2.0f);
  std::vector<double> weights(2 * 4);
  for (size_t i = 0; i < weights.size(); ++i) weights[i] = 0.1 * (i + 1);
  const double score = fm->RowScore(row.View(), weights);
  // loss(+1) = log(1+exp(-score)).
  EXPECT_NEAR(fm->RowLoss(row.View(), 1.0f, weights, nullptr),
              std::log1p(std::exp(-score)), 1e-12);
}

TEST(RowScoreTest, MlrHasNoScalarScore) {
  auto mlr = MakeModel("mlr3");
  SparseRow row;
  row.Push(0, 1.0f);
  std::vector<double> weights(3, 0.0);
  EXPECT_DEATH(mlr->RowScore(row.View(), weights), "no scalar decision");
}

TEST(MetricsTest, ZeroModelIsChance) {
  SyntheticSpec spec = TinySpec();
  spec.num_rows = 2000;
  Dataset d = GenerateSynthetic(spec);
  auto lr = MakeModel("lr");
  std::vector<double> weights(d.num_features, 0.0);
  BinaryMetrics metrics = EvaluateBinaryMetrics(*lr, weights, d, 2000);
  EXPECT_EQ(metrics.rows, 2000u);
  EXPECT_DOUBLE_EQ(metrics.auc, 0.5);  // all scores tied at zero
  EXPECT_NEAR(metrics.avg_loss, std::log(2.0), 1e-12);
}

TEST(MetricsTest, TrainedModelBeatsChance) {
  SyntheticSpec spec = TinySpec();
  spec.num_rows = 4000;
  spec.num_features = 400;
  spec.label_noise = 8.0;
  Dataset d = GenerateSynthetic(spec);

  TrainConfig config;
  config.model = "lr";
  config.learning_rate = 8.0;
  config.batch_size = 200;
  ClusterSpec cluster = ClusterSpec::Cluster1();
  cluster.num_workers = 4;
  auto engine = MakeEngine("columnsgd", cluster, config);
  RunOptions options;
  options.iterations = 200;
  TrainResult result = RunTraining(engine.get(), d, options);
  ASSERT_TRUE(result.status.ok());

  BinaryMetrics metrics =
      EvaluateBinaryMetrics(engine->model(), engine->FullModel(), d, 4000);
  EXPECT_GT(metrics.accuracy, 0.7);
  EXPECT_GT(metrics.auc, 0.8);
  EXPECT_LT(metrics.avg_loss, 0.6);
}

TEST(MetricsTest, CapsAtDatasetSize) {
  SyntheticSpec spec = TinySpec();
  spec.num_rows = 50;
  Dataset d = GenerateSynthetic(spec);
  auto lr = MakeModel("lr");
  std::vector<double> weights(d.num_features, 0.0);
  EXPECT_EQ(EvaluateBinaryMetrics(*lr, weights, d, 1000000).rows, 50u);
}

}  // namespace
}  // namespace colsgd
