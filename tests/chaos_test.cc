// Tests for the deterministic chaos harness (src/chaos): schedule
// generation, invariant checking, bit-identical replay, and the greedy
// schedule shrinker.
#include <gtest/gtest.h>

#include <set>

#include "chaos/chaos.h"

namespace colsgd {
namespace chaos {
namespace {

ChaosOptions FastOptions() {
  ChaosOptions options;
  options.iterations = 12;
  options.data_rows = 800;
  options.data_features = 150;
  return options;
}

TEST(ChaosScheduleTest, GenerationIsDeterministicAndDiverse) {
  const ChaosOptions options = FastOptions();
  std::set<std::string> shapes;
  bool saw_corruption = false, saw_partition = false, saw_crash = false,
       saw_checkpoint_damage = false;
  for (uint64_t seed = 0; seed < 32; ++seed) {
    const ChaosSchedule a = GenerateSchedule(seed, options);
    const ChaosSchedule b = GenerateSchedule(seed, options);
    EXPECT_EQ(DescribeSchedule(a), DescribeSchedule(b)) << "seed " << seed;
    EXPECT_TRUE(FaultPlan::Validate(a.plan).ok())
        << "seed " << seed << ": " << DescribeSchedule(a);
    shapes.insert(DescribeSchedule(a));
    saw_corruption |= a.plan.message_corrupt_prob > 0.0;
    saw_partition |= !a.plan.partitions.empty();
    saw_crash |= !a.plan.scripted.empty();
    saw_checkpoint_damage |= a.plan.torn_checkpoint_prob > 0.0 ||
                             a.plan.checkpoint_bitrot_prob > 0.0;
  }
  // The generator explores the fault space rather than repeating one mix.
  EXPECT_GT(shapes.size(), 24u);
  EXPECT_TRUE(saw_corruption);
  EXPECT_TRUE(saw_partition);
  EXPECT_TRUE(saw_crash);
  EXPECT_TRUE(saw_checkpoint_damage);
}

TEST(ChaosRunTest, SeedsPassInvariantsAndReplayBitIdentically) {
  const ChaosOptions options = FastOptions();
  const Dataset dataset = ChaosDataset(options);
  const double clean_loss = RunCleanBaseline(options, dataset);
  ASSERT_GT(clean_loss, 0.0);

  for (uint64_t seed = 0; seed < 6; ++seed) {
    const ChaosSchedule schedule = GenerateSchedule(seed, options);
    const ChaosVerdict first =
        RunSchedule(options, schedule, dataset, clean_loss, seed);
    EXPECT_TRUE(first.ok()) << "seed " << seed << " violations: "
                            << (first.violations.empty()
                                    ? ""
                                    : first.violations.front());
    EXPECT_TRUE(first.completed);
    const ChaosVerdict replay =
        RunSchedule(options, schedule, dataset, clean_loss, seed);
    EXPECT_EQ(first.fingerprint, replay.fingerprint) << "seed " << seed;
    EXPECT_EQ(first.recovery.retransmits, replay.recovery.retransmits);
  }
}

TEST(SspChaosTest, GenerationIsDeterministicAndDiverse) {
  SspChaosOptions options;
  options.base = FastOptions();
  std::set<std::string> shapes;
  std::set<int> slacks;
  bool saw_jitter = false, saw_stragglers = false, saw_crash = false;
  for (uint64_t seed = 0; seed < 32; ++seed) {
    const SspSchedule a = GenerateSspSchedule(seed, options);
    const SspSchedule b = GenerateSspSchedule(seed, options);
    EXPECT_EQ(DescribeSspSchedule(a), DescribeSspSchedule(b))
        << "seed " << seed;
    EXPECT_TRUE(FaultPlan::Validate(a.schedule.plan).ok())
        << "seed " << seed << ": " << DescribeSspSchedule(a);
    shapes.insert(DescribeSspSchedule(a));
    slacks.insert(a.slack);
    saw_jitter |= a.compute_jitter > 0.0;
    saw_stragglers |= a.schedule.plan.stragglers.mode !=
                      StragglerSpec::Mode::kNone;
    saw_crash |= !a.schedule.plan.scripted.empty();
  }
  EXPECT_GT(shapes.size(), 24u);
  EXPECT_EQ(slacks.size(), 4u);  // the full {0, 1, 2, 4} grid gets drawn
  EXPECT_TRUE(saw_jitter);
  EXPECT_TRUE(saw_stragglers);
  EXPECT_TRUE(saw_crash);
  // Pinning --slack overrides the draw without disturbing the rest.
  options.slack = 3;
  EXPECT_EQ(GenerateSspSchedule(5, options).slack, 3);
}

TEST(SspChaosTest, SeedsPassInvariantsAndReplayBitIdentically) {
  for (const char* engine : {"columnsgd", "petuum"}) {
    SspChaosOptions options;
    options.base = FastOptions();
    options.base.engine = engine;
    const Dataset dataset = ChaosDataset(options.base);
    const double clean_loss = RunCleanBaseline(options.base, dataset);
    ASSERT_GT(clean_loss, 0.0);
    for (uint64_t seed = 0; seed < 4; ++seed) {
      const SspSchedule schedule = GenerateSspSchedule(seed, options);
      const ChaosVerdict first =
          RunSspSchedule(options, schedule, dataset, clean_loss, seed);
      EXPECT_TRUE(first.ok())
          << engine << " seed " << seed << " violations: "
          << (first.violations.empty() ? "" : first.violations.front());
      EXPECT_TRUE(first.completed);
      const ChaosVerdict replay =
          RunSspSchedule(options, schedule, dataset, clean_loss, seed);
      EXPECT_EQ(first.fingerprint, replay.fingerprint)
          << engine << " seed " << seed;
    }
  }
}

TEST(SspChaosTest, StalenessViolationWouldBeReported) {
  // A schedule with an impossible epsilon shows the verdict carries SSP
  // context (the repro command names the scenario and slack).
  SspChaosOptions options;
  options.base = FastOptions();
  options.slack = 2;
  const std::string repro = SspReproCommand(options, 7);
  EXPECT_NE(repro.find("--scenario ssp"), std::string::npos);
  EXPECT_NE(repro.find("--slack 2"), std::string::npos);
  EXPECT_NE(repro.find("--seeds 7"), std::string::npos);
}

TEST(ChaosRunTest, CorruptionShowsUpInTheVerdictCounters) {
  const ChaosOptions options = FastOptions();
  const Dataset dataset = ChaosDataset(options);
  const double clean_loss = RunCleanBaseline(options, dataset);

  ChaosSchedule schedule;
  schedule.plan.seed = 9;
  schedule.plan.message_corrupt_prob = 0.1;
  const ChaosVerdict verdict =
      RunSchedule(options, schedule, dataset, clean_loss, 9);
  EXPECT_TRUE(verdict.ok()) << (verdict.violations.empty()
                                    ? ""
                                    : verdict.violations.front());
  EXPECT_GT(verdict.recovery.messages_corrupted, 0);
  EXPECT_GE(verdict.recovery.retransmits,
            verdict.recovery.messages_corrupted);
}

TEST(ChaosRunTest, ImpossibleEpsilonProducesACleanViolation) {
  ChaosOptions options = FastOptions();
  const Dataset dataset = ChaosDataset(options);
  const double clean_loss = RunCleanBaseline(options, dataset);
  options.epsilon = -10.0;  // nothing can converge to a negative bound

  const ChaosSchedule schedule = GenerateSchedule(1, options);
  const ChaosVerdict verdict =
      RunSchedule(options, schedule, dataset, clean_loss, 1);
  EXPECT_FALSE(verdict.ok());
  ASSERT_FALSE(verdict.violations.empty());
  EXPECT_NE(verdict.violations.front().find("did not re-converge"),
            std::string::npos);
}

TEST(ChaosShrinkTest, ComponentsCoverThePlanAndDisableWorks) {
  ChaosSchedule schedule;
  schedule.plan.scripted = {{3, 1, FaultKind::kWorkerFailure},
                            {5, 0, FaultKind::kTaskFailure}};
  schedule.plan.message_drop_prob = 0.02;
  schedule.plan.message_corrupt_prob = 0.03;
  schedule.plan.partitions.push_back({4, 2, {0}});
  schedule.plan.torn_checkpoint_prob = 0.5;
  schedule.plan.stragglers.mode = StragglerSpec::Mode::kRotating;
  schedule.plan.stragglers.level = 1.0;
  schedule.checkpoint_every = 4;

  const std::vector<std::string> components = ScheduleComponents(schedule);
  EXPECT_EQ(components.size(), 8u);
  for (const std::string& component : components) {
    ChaosSchedule copy = schedule;
    EXPECT_TRUE(DisableComponent(&copy, component)) << component;
    EXPECT_LT(ScheduleComponents(copy).size(), components.size())
        << component;
  }
  ChaosSchedule copy = schedule;
  EXPECT_FALSE(DisableComponent(&copy, "no_such_component"));
  EXPECT_FALSE(DisableComponent(&copy, "scripted:9"));
}

TEST(ChaosShrinkTest, ShrinkKeepsOnlyTheFailingComponent) {
  // Pin the shrinker's contract on a criterion only the crashes can
  // violate: benign wire noise (drops, stragglers) leaves the trained model
  // bit-identical, while an unprotected end-of-run crash re-initializes a
  // partition. The epsilon is tuned between the two outcomes (the
  // simulation is deterministic, so the thin margin is exact, not flaky).
  ChaosOptions options = FastOptions();
  options.iterations = 40;
  options.epsilon = -0.07;
  const Dataset dataset = ChaosDataset(options);
  const double clean_loss = RunCleanBaseline(options, dataset);

  ChaosSchedule schedule;
  schedule.plan.seed = 2;
  schedule.plan.scripted = {{39, 1, FaultKind::kWorkerFailure},
                            {39, 2, FaultKind::kWorkerFailure}};
  schedule.plan.message_drop_prob = 0.02;  // benign: lossless retransmit
  schedule.plan.stragglers.mode = StragglerSpec::Mode::kRotating;
  schedule.plan.stragglers.level = 1.0;    // benign: time only

  const ChaosVerdict verdict =
      RunSchedule(options, schedule, dataset, clean_loss, 2);
  ASSERT_FALSE(verdict.ok())
      << "late unprotected crashes must violate the tuned epsilon";

  int extra_runs = 0;
  const ChaosSchedule shrunk = ShrinkSchedule(options, schedule, dataset,
                                              clean_loss, 2, &extra_runs);
  EXPECT_GT(extra_runs, 0);
  // The benign components were shrunk away; a crash remains (even a single
  // one still violates the bound, so the greedy pass drops the other too).
  EXPECT_EQ(shrunk.plan.scripted.size(), 1u);
  EXPECT_EQ(shrunk.plan.message_drop_prob, 0.0);
  EXPECT_EQ(shrunk.plan.stragglers.mode, StragglerSpec::Mode::kNone);
  // And the shrunk schedule still reproduces the failure.
  EXPECT_FALSE(RunSchedule(options, shrunk, dataset, clean_loss, 2).ok());
}

TEST(ChaosReproTest, ArtifactCarriesTheReplayCommand) {
  const ChaosOptions options = FastOptions();
  const ChaosSchedule schedule = GenerateSchedule(4, options);
  ChaosVerdict verdict;
  verdict.seed = 4;
  verdict.violations = {"synthetic violation"};
  const std::string json =
      ReproArtifactJson(options, 4, schedule, schedule, verdict);
  EXPECT_NE(json.find("\"seed\": 4"), std::string::npos);
  EXPECT_NE(json.find("synthetic violation"), std::string::npos);
  EXPECT_NE(json.find("colsgd_chaos --seeds 4"), std::string::npos);
  const std::string command = ReproCommand(options, 4);
  EXPECT_NE(command.find("--engines columnsgd"), std::string::npos);
  EXPECT_NE(command.find("--iterations 12"), std::string::npos);
}

}  // namespace
}  // namespace chaos
}  // namespace colsgd
