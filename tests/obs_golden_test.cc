// Determinism golden test: the simulation plus the trace exporter are
// bit-deterministic, so a fixed config must reproduce a byte-identical
// Chrome trace JSON across runs, machines, and refactors. The golden file
// lives in tests/golden/; regenerate it after an *intentional* timing or
// schema change with
//
//   COLSGD_REGEN_GOLDEN=1 ./obs_golden_test
//
// and review the diff — an unintentional diff here means simulated timing
// changed.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "datagen/synthetic.h"
#include "engine/trainer.h"
#include "obs/export.h"
#include "obs/trace.h"

#ifndef COLSGD_TEST_GOLDEN_DIR
#error "COLSGD_TEST_GOLDEN_DIR must be defined by the build"
#endif

namespace colsgd {
namespace {

const char kGoldenPath[] =
    COLSGD_TEST_GOLDEN_DIR "/trace_tiny_columnsgd.json";

// Small but not trivial: 2 workers, 3 iterations, one scripted worker
// failure and one checkpoint, so the golden trace covers net/compute/phase
// events as well as the fault/recovery/checkpoint schema.
std::string GoldenTraceJson(uint64_t seed) {
  SyntheticSpec spec = TinySpec();
  spec.num_rows = 128;
  spec.num_features = 64;
  Dataset data = GenerateSynthetic(spec);

  ClusterSpec cluster = ClusterSpec::Cluster1();
  cluster.num_workers = 2;

  TrainConfig config;
  config.model = "lr";
  config.learning_rate = 0.5;
  config.batch_size = 32;
  config.block_rows = 32;
  config.seed = seed;

  auto engine = MakeEngine("columnsgd", cluster, config);
  FaultConfig faults;
  FaultEvent failure;
  failure.iteration = 1;
  failure.worker = 1;
  failure.kind = FaultKind::kWorkerFailure;
  faults.plan = FaultPlan::Scripted({failure});
  faults.checkpoint.every = 2;
  engine->set_faults(std::move(faults));

  Tracer tracer;
  engine->set_tracer(&tracer);
  EXPECT_TRUE(engine->Setup(data).ok());
  for (int64_t iter = 0; iter < 3; ++iter) {
    EXPECT_TRUE(engine->RunIteration(iter).ok());
  }
  return ChromeTraceJson(tracer);
}

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return "";
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(GoldenTraceTest, MatchesCheckedInGolden) {
  const std::string json = GoldenTraceJson(/*seed=*/13);
  if (std::getenv("COLSGD_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(kGoldenPath, std::ios::binary);
    ASSERT_TRUE(out.is_open()) << "cannot write " << kGoldenPath;
    out << json;
    GTEST_SKIP() << "golden regenerated at " << kGoldenPath;
  }
  const std::string golden = ReadFileOrEmpty(kGoldenPath);
  ASSERT_FALSE(golden.empty())
      << "missing golden file " << kGoldenPath
      << "; run with COLSGD_REGEN_GOLDEN=1 to create it";
  // Byte-identical, not just semantically equal: the exporter's fixed-width
  // formatting is part of the determinism contract.
  if (json != golden) {
    // Locate the first divergence for a useful failure message.
    size_t line = 1, pos = 0;
    const size_t n = std::min(json.size(), golden.size());
    while (pos < n && json[pos] == golden[pos]) {
      if (json[pos] == '\n') ++line;
      ++pos;
    }
    FAIL() << "trace diverges from golden at byte " << pos << " (line "
           << line << "); if the timing change is intentional, regenerate "
           << "with COLSGD_REGEN_GOLDEN=1 and review the diff";
  }
}

TEST(GoldenTraceTest, SameSeedReproducesByteIdenticalTrace) {
  EXPECT_EQ(GoldenTraceJson(13), GoldenTraceJson(13));
}

TEST(GoldenTraceTest, DifferentSeedProducesDifferentTrace) {
  // A different seed draws different batches, so compute times — and with
  // them the trace — must differ. (Guards against the tracer accidentally
  // recording a canned schedule.)
  EXPECT_NE(GoldenTraceJson(13), GoldenTraceJson(14));
}

}  // namespace
}  // namespace colsgd
