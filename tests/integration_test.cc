// End-to-end integration tests through the RunTraining driver: convergence
// on planted-model data for every engine, trace/summary bookkeeping, and the
// headline performance orderings of the paper at test scale.
#include <gtest/gtest.h>

#include "datagen/synthetic.h"
#include "engine/trainer.h"

namespace colsgd {
namespace {

Dataset TrainingData() {
  SyntheticSpec spec = TinySpec();
  spec.num_rows = 4000;
  spec.num_features = 600;
  spec.label_noise = 8.0;  // fairly clean labels -> visible convergence
  return GenerateSynthetic(spec);
}

ClusterSpec Cluster() {
  ClusterSpec spec = ClusterSpec::Cluster1();
  spec.num_workers = 4;
  return spec;
}

TrainConfig BaseConfig() {
  TrainConfig config;
  config.model = "lr";
  config.learning_rate = 4.0;
  config.batch_size = 200;
  config.block_rows = 256;
  return config;
}

class EngineConvergenceTest : public ::testing::TestWithParam<std::string> {};

TEST_P(EngineConvergenceTest, LossDropsWellBelowChance) {
  Dataset d = TrainingData();
  auto engine = MakeEngine(GetParam(), Cluster(), BaseConfig());
  RunOptions options;
  options.iterations = 150;
  options.eval_every = 50;
  options.eval_rows = 2000;
  TrainResult result = RunTraining(engine.get(), d, options);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  ASSERT_EQ(result.trace.size(), 150u);

  // Exact loss on an evaluation sample at the end of training: well below
  // log 2 (chance for balanced +-1 labels).
  const double final_eval = result.trace.back().eval_loss;
  EXPECT_LT(final_eval, 0.55) << GetParam();
  // First iteration starts at chance.
  EXPECT_NEAR(result.trace.front().batch_loss, std::log(2.0), 0.05);
  // Time and traffic bookkeeping.
  EXPECT_GT(result.load_time, 0.0);
  EXPECT_GT(result.train_time, 0.0);
  EXPECT_NEAR(result.avg_iter_time, result.train_time / 150.0, 1e-12);
  EXPECT_GT(result.bytes_on_wire, 0u);
  EXPECT_GT(result.messages, 150u);
  // Sim time increases monotonically along the trace.
  for (size_t i = 1; i < result.trace.size(); ++i) {
    EXPECT_GE(result.trace[i].sim_time, result.trace[i - 1].sim_time);
  }
}

INSTANTIATE_TEST_SUITE_P(AllEngines, EngineConvergenceTest,
                         ::testing::Values("columnsgd", "mllib", "mllib_star",
                                           "petuum", "mxnet"),
                         [](const auto& info) { return info.param; });

TEST(IntegrationTest, SvmAlsoConverges) {
  Dataset d = TrainingData();
  TrainConfig config = BaseConfig();
  config.model = "svm";
  config.learning_rate = 0.5;
  auto engine = MakeEngine("columnsgd", Cluster(), config);
  RunOptions options;
  options.iterations = 150;
  options.eval_every = 150;
  TrainResult result = RunTraining(engine.get(), d, options);
  ASSERT_TRUE(result.status.ok());
  EXPECT_LT(result.trace.back().eval_loss, 0.8);  // hinge at chance is ~1.0
}

TEST(IntegrationTest, FmConvergesOnInteractionData) {
  Dataset d = TrainingData();
  TrainConfig config = BaseConfig();
  config.model = "fm4";
  config.learning_rate = 2.0;
  auto engine = MakeEngine("columnsgd", Cluster(), config);
  RunOptions options;
  options.iterations = 200;
  options.eval_every = 200;
  TrainResult result = RunTraining(engine.get(), d, options);
  ASSERT_TRUE(result.status.ok());
  EXPECT_LT(result.trace.back().eval_loss, 0.6);
}

TEST(IntegrationTest, ColumnSgdBeatsRowSgdPerIterationOnWideModels) {
  // The Table IV ordering at test scale: per-iteration simulated time
  // mllib >> petuum > columnsgd for a wide sparse model.
  SyntheticSpec spec = TinySpec();
  spec.num_rows = 3000;
  spec.num_features = 200000;
  spec.avg_nnz_per_row = 10;
  Dataset d = GenerateSynthetic(spec);

  TrainConfig config = BaseConfig();
  config.batch_size = 100;
  RunOptions options;
  options.iterations = 5;

  std::map<std::string, double> iter_time;
  for (const std::string& name : {"columnsgd", "mllib", "petuum"}) {
    auto engine = MakeEngine(name, Cluster(), config);
    TrainResult result = RunTraining(engine.get(), d, options);
    ASSERT_TRUE(result.status.ok()) << name;
    iter_time[name] = result.avg_iter_time;
  }
  EXPECT_GT(iter_time["mllib"], 2.0 * iter_time["petuum"]);
  EXPECT_GT(iter_time["petuum"], iter_time["columnsgd"]);
}

TEST(IntegrationTest, ColumnSgdIterationTimeFlatInModelSize) {
  // Fig. 10 at test scale: growing m by 50x leaves the per-iteration time
  // essentially unchanged.
  TrainConfig config = BaseConfig();
  config.batch_size = 100;
  RunOptions options;
  options.iterations = 10;

  std::vector<double> times;
  for (uint64_t m : {20000ull, 1000000ull}) {
    SyntheticSpec spec = TinySpec();
    spec.num_rows = 3000;
    spec.num_features = m;
    spec.avg_nnz_per_row = 10;
    Dataset d = GenerateSynthetic(spec);
    auto engine = MakeEngine("columnsgd", Cluster(), config);
    TrainResult result = RunTraining(engine.get(), d, options);
    ASSERT_TRUE(result.status.ok());
    times.push_back(result.avg_iter_time);
  }
  EXPECT_NEAR(times[1] / times[0], 1.0, 0.2);
}

TEST(IntegrationTest, TraceRecordsNanEvalWhenDisabled) {
  Dataset d = TrainingData();
  auto engine = MakeEngine("columnsgd", Cluster(), BaseConfig());
  RunOptions options;
  options.iterations = 3;
  options.eval_every = 0;
  TrainResult result = RunTraining(engine.get(), d, options);
  ASSERT_TRUE(result.status.ok());
  for (const auto& record : result.trace) {
    EXPECT_TRUE(std::isnan(record.eval_loss));
  }
}

TEST(IntegrationTest, OomSurfacesInResultStatus) {
  Dataset d = TrainingData();
  ClusterSpec cluster = Cluster();
  cluster.node_memory_budget = 4096;
  auto engine = MakeEngine("mllib", cluster, BaseConfig());
  TrainResult result = RunTraining(engine.get(), d, RunOptions{});
  EXPECT_TRUE(result.status.IsOutOfMemory());
  EXPECT_TRUE(result.trace.empty());
}

TEST(IntegrationTest, EvaluateLossMatchesHandComputation) {
  Dataset d;
  d.num_features = 2;
  SparseRow r;
  r.Push(0, 1.0f);
  d.rows.AppendRow(r);
  d.labels.push_back(1.0f);
  auto model = MakeModel("lr");
  std::vector<double> weights = {0.0, 0.0};
  EXPECT_NEAR(EvaluateLoss(*model, weights, d, 10), std::log(2.0), 1e-12);
  weights[0] = 100.0;  // confident correct prediction
  EXPECT_NEAR(EvaluateLoss(*model, weights, d, 10), 0.0, 1e-9);
}

}  // namespace
}  // namespace colsgd
