// Tests for the RowSGD baseline engines: MLlib, the parameter servers
// (Petuum dense / MXNet sparse-pull), and MLlib* (model averaging).
#include <gtest/gtest.h>

#include "datagen/synthetic.h"
#include "engine/columnsgd.h"
#include "engine/mllib_star.h"
#include "engine/ps.h"
#include "engine/rowsgd.h"
#include "engine/trainer.h"

namespace colsgd {
namespace {

Dataset TestData(uint64_t rows = 2000, uint64_t features = 500) {
  SyntheticSpec spec = TinySpec();
  spec.num_rows = rows;
  spec.num_features = features;
  return GenerateSynthetic(spec);
}

ClusterSpec Cluster(int workers = 4) {
  ClusterSpec spec = ClusterSpec::Cluster1();
  spec.num_workers = workers;
  return spec;
}

TrainConfig Config() {
  TrainConfig config;
  config.model = "lr";
  config.learning_rate = 0.5;
  config.batch_size = 64;
  config.block_rows = 128;
  return config;
}

TEST(MllibEngineTest, SetupAndIterate) {
  Dataset d = TestData();
  MllibEngine engine(Cluster(), Config());
  ASSERT_TRUE(engine.Setup(d).ok());
  EXPECT_GT(engine.load_time(), 0.0);
  ASSERT_TRUE(engine.RunIteration(0).ok());
  EXPECT_NEAR(engine.last_batch_loss(), std::log(2.0), 1e-12);
  ASSERT_TRUE(engine.RunIteration(1).ok());
  EXPECT_LT(engine.last_batch_loss(), std::log(2.0));
}

TEST(MllibEngineTest, PerIterationTrafficScalesWithModelSize) {
  // The RowSGD pathology: per-iteration bytes grow linearly with m.
  uint64_t bytes_small = 0, bytes_big = 0;
  for (bool big : {false, true}) {
    Dataset d = TestData(2000, big ? 5000 : 500);
    MllibEngine engine(Cluster(), Config());
    ASSERT_TRUE(engine.Setup(d).ok());
    const TrafficStats before = engine.runtime().net().TotalStats();
    ASSERT_TRUE(engine.RunIteration(0).ok());
    const TrafficStats after = engine.runtime().net().TotalStats();
    (big ? bytes_big : bytes_small) = after.bytes_sent - before.bytes_sent;
  }
  EXPECT_GT(bytes_big, 9 * bytes_small);
}

TEST(MllibEngineTest, SparseGradientPushShrinksTraffic) {
  Dataset d = TestData(2000, 5000);
  uint64_t dense_bytes = 0, sparse_bytes = 0;
  for (bool sparse : {false, true}) {
    RowSgdOptions options;
    options.sparse_gradient_push = sparse;
    MllibEngine engine(Cluster(), Config(), options);
    ASSERT_TRUE(engine.Setup(d).ok());
    const TrafficStats before = engine.runtime().net().TotalStats();
    ASSERT_TRUE(engine.RunIteration(0).ok());
    const TrafficStats after = engine.runtime().net().TotalStats();
    (sparse ? sparse_bytes : dense_bytes) =
        after.bytes_sent - before.bytes_sent;
  }
  EXPECT_LT(sparse_bytes, dense_bytes);
}

TEST(MllibEngineTest, MasterOutOfMemoryOnHugeModelBudget) {
  Dataset d = TestData();
  ClusterSpec spec = Cluster();
  spec.node_memory_budget = 1000;  // model (500 doubles x 2) cannot fit
  MllibEngine engine(spec, Config());
  EXPECT_TRUE(engine.Setup(d).IsOutOfMemory());
}

TEST(MllibEngineTest, FailsWhenAWorkerGetsNoRows) {
  Dataset d = TestData(100, 50);
  TrainConfig config = Config();
  config.block_rows = 200;  // one block only, workers 1..3 starve
  MllibEngine engine(Cluster(), config);
  EXPECT_TRUE(engine.Setup(d).IsFailedPrecondition());
}

TEST(PsEngineTest, DenseAndSparseModesProduceIdenticalModels) {
  // Sparse pull changes traffic, not math: same batches, same updates.
  Dataset d = TestData();
  PsOptions dense;
  dense.sparse_pull = false;
  PsOptions sparse;
  sparse.sparse_pull = true;
  PsEngine petuum(Cluster(), Config(), dense);
  PsEngine mxnet(Cluster(), Config(), sparse);
  ASSERT_TRUE(petuum.Setup(d).ok());
  ASSERT_TRUE(mxnet.Setup(d).ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(petuum.RunIteration(i).ok());
    ASSERT_TRUE(mxnet.RunIteration(i).ok());
  }
  EXPECT_EQ(petuum.FullModel(), mxnet.FullModel());
  EXPECT_EQ(petuum.name(), "ps_dense(petuum)");
  EXPECT_EQ(mxnet.name(), "ps_sparse(mxnet)");
}

TEST(PsEngineTest, SparsePullUsesFarLessTraffic) {
  Dataset d = TestData(2000, 20000);
  uint64_t dense_bytes = 0, sparse_bytes = 0;
  for (bool sparse : {false, true}) {
    PsOptions options;
    options.sparse_pull = sparse;
    PsEngine engine(Cluster(), Config(), options);
    ASSERT_TRUE(engine.Setup(d).ok());
    const TrafficStats before = engine.runtime().net().TotalStats();
    ASSERT_TRUE(engine.RunIteration(0).ok());
    const TrafficStats after = engine.runtime().net().TotalStats();
    (sparse ? sparse_bytes : dense_bytes) =
        after.bytes_sent - before.bytes_sent;
  }
  EXPECT_LT(20 * sparse_bytes, dense_bytes);
}

TEST(PsEngineTest, DistributesModelAcrossServers) {
  // Petuum's advantage over MLlib: no single master NIC carries all K model
  // copies, so the dense per-iteration time is ~K times smaller. Use a model
  // wide enough for bandwidth (not per-message overhead) to dominate.
  Dataset d = TestData(2000, 200000);
  TrainConfig config = Config();
  config.sched_overhead = 0.0;

  MllibEngine mllib(Cluster(8), config);
  ASSERT_TRUE(mllib.Setup(d).ok());
  const double t0 = mllib.runtime().MaxClock();
  ASSERT_TRUE(mllib.RunIteration(0).ok());
  const double mllib_iter = mllib.runtime().MaxClock() - t0;

  PsEngine petuum(Cluster(8), config, PsOptions{});
  ASSERT_TRUE(petuum.Setup(d).ok());
  const double t1 = petuum.runtime().MaxClock();
  ASSERT_TRUE(petuum.RunIteration(0).ok());
  const double petuum_iter = petuum.runtime().MaxClock() - t1;

  EXPECT_GT(mllib_iter, 3.0 * petuum_iter);
}

TEST(PsEngineTest, ModeledWorkerMemoryTriggersOom) {
  // Table V: the modeled per-node requirement (dense kvstore buffers for a
  // wide FM) exceeds the budget and must fail before allocating anything.
  SyntheticSpec spec = TinySpec();
  spec.num_rows = 500;
  spec.num_features = 20000;
  Dataset d = GenerateSynthetic(spec);
  TrainConfig config = Config();
  config.model = "fm50";
  ClusterSpec cluster = Cluster();
  cluster.node_memory_budget = 10ull << 20;  // 10 MB; fm50 needs ~16 MB
  PsOptions options;
  options.sparse_pull = true;
  PsEngine engine(cluster, config, options);
  EXPECT_TRUE(engine.Setup(d).IsOutOfMemory());
  // ColumnSGD fits in the same budget (model partitioned K ways).
}

TEST(MllibStarEngineTest, AveragingKeepsReplicasInSync) {
  Dataset d = TestData();
  MllibStarEngine engine(Cluster(), Config());
  ASSERT_TRUE(engine.Setup(d).ok());
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(engine.RunIteration(i).ok());
  // FullModel returns replica 0; convergence is checked indirectly through
  // the loss trend.
  EXPECT_LT(engine.last_batch_loss(), std::log(2.0) + 0.05);
}

TEST(MllibStarEngineTest, LocalStepsProcessMoreDataPerRound) {
  Dataset d = TestData(4000, 300);
  TrainConfig config = Config();
  config.learning_rate = 0.2;
  MllibStarOptions one;
  one.local_steps = 1;
  MllibStarOptions four;
  four.local_steps = 4;
  MllibStarEngine a(Cluster(), config, one);
  MllibStarEngine b(Cluster(), config, four);
  ASSERT_TRUE(a.Setup(d).ok());
  ASSERT_TRUE(b.Setup(d).ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(a.RunIteration(i).ok());
    ASSERT_TRUE(b.RunIteration(i).ok());
  }
  // More local work per round reaches a lower loss in the same #rounds.
  EXPECT_LT(b.last_batch_loss(), a.last_batch_loss());
}

TEST(MllibStarEngineTest, AllReduceTrafficIsBalanced) {
  // Ring all-reduce: every node sends ~2m bytes; no master hotspot.
  Dataset d = TestData(2000, 10000);
  TrainConfig config = Config();
  MllibStarEngine engine(Cluster(), config);
  ASSERT_TRUE(engine.Setup(d).ok());
  engine.runtime().net().ResetStats();
  ASSERT_TRUE(engine.RunIteration(0).ok());
  const SimNetwork& net = engine.runtime().net();
  const uint64_t w0 = net.stats(engine.runtime().worker_node(0)).bytes_sent;
  for (int k = 1; k < 4; ++k) {
    const uint64_t wk =
        net.stats(engine.runtime().worker_node(k)).bytes_sent;
    EXPECT_NEAR(static_cast<double>(wk), static_cast<double>(w0),
                0.1 * static_cast<double>(w0));
  }
  // Master only dispatches commands.
  EXPECT_LT(net.stats(engine.runtime().master()).bytes_sent, 1000u);
}

TEST(RowEngineGuardTest, ColumnOnlyModelsAreRejected) {
  // The MLP exists only in the column framework (Section III-C); RowSGD
  // engines must refuse it cleanly instead of dying in the row path.
  Dataset d = TestData();
  TrainConfig config = Config();
  config.model = "mlp4";
  for (const char* name : {"mllib", "mllib_star", "petuum", "mxnet"}) {
    auto engine = MakeEngine(name, Cluster(), config);
    EXPECT_TRUE(engine->Setup(d).IsInvalidArgument()) << name;
  }
  ColumnSgdEngine column(Cluster(), config);
  EXPECT_TRUE(column.Setup(d).ok());
}

TEST(EngineFactoryTest, BuildsAllEngines) {
  for (const std::string name :
       {"columnsgd", "mllib", "mllib_star", "petuum", "mxnet"}) {
    auto engine = MakeEngine(name, Cluster(), Config());
    ASSERT_NE(engine, nullptr) << name;
  }
  EXPECT_DEATH(MakeEngine("horovod", Cluster(), Config()), "unknown engine");
}

}  // namespace
}  // namespace colsgd
