// Tests for the serving plane (src/serve): the column-sharded inference
// kernel, the workload generator, and the frontend's batching, latency
// accounting, hot model swap, and shard failover.
//
// The acceptance pins live here:
//  * single-shard kernel == ModelSpec::RowScore bit-for-bit (GLMs);
//  * K-shard kernel == row path to 1e-9 (reassociated sums);
//  * online scores == offline kernel scores bit-for-bit (the
//    colsgd_predict golden-compare);
//  * queue + scatter + compute + gather tiles end-to-end latency to 1e-9;
//  * attaching a tracer changes no simulated timestamp and no response;
//  * a hot swap under sustained load drops nothing and every response is
//    scored against exactly one model generation;
//  * a shard failure times out only its batch — never a wrong answer —
//    and the replacement resumes the active generation.
#include <cmath>
#include <cstring>
#include <set>

#include "common/rng.h"
#include "datagen/synthetic.h"
#include "gtest/gtest.h"
#include "model/factory.h"
#include "obs/trace.h"
#include "serve/frontend.h"
#include "serve/registry.h"
#include "serve/serving_chaos.h"
#include "serve/wire.h"

namespace colsgd {
namespace {

Dataset TestQueries(uint64_t features = 120, uint64_t rows = 150) {
  SyntheticSpec spec;
  spec.name = "serve_test_queries";
  spec.num_rows = rows;
  spec.num_features = features;
  spec.avg_nnz_per_row = 10.0;
  spec.seed = 77;
  return GenerateSynthetic(spec);
}

SavedModel Planted(const std::string& model_name, uint64_t num_features,
                   uint64_t seed) {
  std::unique_ptr<ModelSpec> spec = MakeModel(model_name);
  const int wpf = spec->weights_per_feature();
  SavedModel model;
  model.model_name = model_name;
  model.num_features = num_features;
  model.weights.resize(num_features * static_cast<uint64_t>(wpf));
  for (uint64_t slot = 0; slot < model.weights.size(); ++slot) {
    model.weights[slot] = 0.05 * GaussianFromHash(slot + 1, seed);
  }
  model.shared.resize(spec->num_shared_params());
  for (size_t i = 0; i < model.shared.size(); ++i) {
    model.shared[i] = 0.01 * GaussianFromHash(0x51a3edULL + i, seed);
  }
  return model;
}

bool BitEqual(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

// ---- Inference kernel ----------------------------------------------------

TEST(InferenceKernelTest, SingleShardMatchesRowScoreBitwise) {
  const Dataset queries = TestQueries();
  for (const char* name : {"lr", "svm"}) {
    const SavedModel model = Planted(name, queries.num_features, 5);
    Result<DatasetScores> scored = ScoreDatasetSharded(
        model, "round_robin", 1, queries, queries.num_rows());
    ASSERT_TRUE(scored.ok()) << scored.status().ToString();
    std::unique_ptr<ModelSpec> spec = MakeModel(name);
    for (size_t i = 0; i < queries.num_rows(); ++i) {
      const double row_score =
          spec->RowScore(queries.rows.Row(i), model.weights);
      EXPECT_TRUE(BitEqual(scored->scores[i], row_score))
          << name << " row " << i << ": " << scored->scores[i]
          << " != " << row_score;
    }
  }
}

TEST(InferenceKernelTest, MultiShardMatchesRowPathClosely) {
  const Dataset queries = TestQueries();
  for (const char* name : {"lr", "fm4"}) {
    const SavedModel model = Planted(name, queries.num_features, 5);
    std::unique_ptr<ModelSpec> spec = MakeModel(name);
    for (const char* partitioner : {"round_robin", "range"}) {
      Result<DatasetScores> scored = ScoreDatasetSharded(
          model, partitioner, 4, queries, queries.num_rows());
      ASSERT_TRUE(scored.ok()) << scored.status().ToString();
      for (size_t i = 0; i < queries.num_rows(); ++i) {
        const double row_score =
            spec->RowScore(queries.rows.Row(i), model.weights);
        EXPECT_NEAR(scored->scores[i], row_score, 1e-9)
            << name << "/" << partitioner << " row " << i;
      }
    }
  }
}

TEST(InferenceKernelTest, MlrShardedArgmaxMatchesSingleShard) {
  const Dataset queries = TestQueries();
  const SavedModel model = Planted("mlr4", queries.num_features, 9);
  Result<DatasetScores> one = ScoreDatasetSharded(model, "round_robin", 1,
                                                  queries,
                                                  queries.num_rows());
  Result<DatasetScores> four = ScoreDatasetSharded(model, "round_robin", 4,
                                                   queries,
                                                   queries.num_rows());
  ASSERT_TRUE(one.ok());
  ASSERT_TRUE(four.ok());
  for (size_t i = 0; i < queries.num_rows(); ++i) {
    // The score is the argmax class id; with random planted weights the
    // class margins are far from exact ties, so reassociation cannot flip
    // the argmax.
    EXPECT_EQ(one->scores[i], four->scores[i]) << "row " << i;
    EXPECT_GE(one->scores[i], 0.0);
    EXPECT_LT(one->scores[i], 4.0);
  }
}

TEST(InferenceKernelTest, RejectsUnservableAndMismatchedModels) {
  const Dataset queries = TestQueries();
  // The MLP needs its activations, not just additive statistics.
  SavedModel mlp = Planted("mlp8", queries.num_features, 3);
  EXPECT_FALSE(ScoreDatasetSharded(mlp, "round_robin", 2, queries,
                                   queries.num_rows())
                   .ok());
  // Truncated weight vector.
  SavedModel broken = Planted("lr", queries.num_features, 3);
  broken.weights.pop_back();
  EXPECT_FALSE(ScoreDatasetSharded(broken, "round_robin", 2, queries,
                                   queries.num_rows())
                   .ok());
  // Dataset wider than the model.
  SavedModel narrow = Planted("lr", queries.num_features - 10, 3);
  EXPECT_FALSE(ScoreDatasetSharded(narrow, "round_robin", 2, queries,
                                   queries.num_rows())
                   .ok());
}

// ---- Workload generator --------------------------------------------------

TEST(WorkloadTest, ArrivalsAreDeterministicSortedAndInRange) {
  WorkloadConfig config;
  config.arrivals = "burst";
  config.rate = 3000.0;
  config.num_requests = 500;
  config.seed = 11;
  const std::vector<ServeRequest> a = GenerateArrivals(config, 200);
  const std::vector<ServeRequest> b = GenerateArrivals(config, 200);
  ASSERT_EQ(a.size(), 500u);
  ASSERT_EQ(b.size(), 500u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, i);
    EXPECT_TRUE(BitEqual(a[i].arrival, b[i].arrival));
    EXPECT_EQ(a[i].row, b[i].row);
    EXPECT_LT(a[i].row, 200u);
    if (i > 0) EXPECT_GE(a[i].arrival, a[i - 1].arrival);
  }
  config.seed = 12;
  const std::vector<ServeRequest> c = GenerateArrivals(config, 200);
  bool differs = false;
  for (size_t i = 0; i < c.size(); ++i) {
    differs |= !BitEqual(a[i].arrival, c[i].arrival);
  }
  EXPECT_TRUE(differs) << "seed must drive the arrival process";
}

TEST(WorkloadTest, ValidatesConfigs) {
  WorkloadConfig config;
  config.arrivals = "adversarial";
  EXPECT_FALSE(WorkloadConfig::Validate(config).ok());
  config.arrivals = "poisson";
  config.rate = 0.0;
  EXPECT_FALSE(WorkloadConfig::Validate(config).ok());
  config.rate = 100.0;
  config.arrivals = "burst";
  config.burst_duration = 2.0 * config.burst_period;
  EXPECT_FALSE(WorkloadConfig::Validate(config).ok());
}

// ---- Frontend ------------------------------------------------------------

struct ServedRun {
  std::unique_ptr<ServeFrontend> frontend;
  std::vector<ServeRequest> arrivals;
};

ServedRun ServeSteady(const Dataset& queries, Tracer* tracer = nullptr,
                      int64_t num_requests = 400, double rate = 3000.0) {
  ServeConfig config;
  config.num_shards = 4;
  ServedRun run;
  run.frontend = std::make_unique<ServeFrontend>(ClusterSpec::Cluster1(),
                                                 config, &queries);
  if (tracer != nullptr) run.frontend->set_tracer(tracer);
  EXPECT_TRUE(
      run.frontend->Install(Planted("lr", queries.num_features, 5)).ok());
  WorkloadConfig workload;
  workload.rate = rate;
  workload.num_requests = num_requests;
  workload.seed = 21;
  run.arrivals = GenerateArrivals(workload, queries.num_rows());
  EXPECT_TRUE(run.frontend->Run(run.arrivals).ok());
  return run;
}

TEST(ServeFrontendTest, LatencyDecompositionTilesExactly) {
  const Dataset queries = TestQueries();
  const ServedRun run = ServeSteady(queries);
  int64_t completed = 0;
  for (const RequestRecord& rec : run.frontend->records()) {
    ASSERT_EQ(rec.status, RequestStatus::kCompleted);
    ++completed;
    EXPECT_GE(rec.queue_s, 0.0);
    EXPECT_GE(rec.scatter_s, 0.0);
    EXPECT_GE(rec.compute_s, 0.0);
    EXPECT_GE(rec.gather_s, 0.0);
    const double tiled =
        rec.queue_s + rec.scatter_s + rec.compute_s + rec.gather_s;
    EXPECT_NEAR(tiled, rec.completion - rec.arrival, 1e-9)
        << "request " << rec.id;
    EXPECT_GE(rec.dispatch, rec.arrival);
    EXPECT_GT(rec.completion, rec.dispatch);
  }
  EXPECT_EQ(completed, 400);
  const ServeSummary summary = run.frontend->Summarize();
  EXPECT_EQ(summary.offered, 400);
  EXPECT_EQ(summary.completed, 400);
  EXPECT_GT(summary.latency_p50, 0.0);
  EXPECT_LE(summary.latency_p50, summary.latency_p95);
  EXPECT_LE(summary.latency_p95, summary.latency_p99);
  EXPECT_LE(summary.latency_p99, summary.latency_max);
  EXPECT_GT(summary.wire_bytes, 0u);
}

TEST(ServeFrontendTest, OnlineScoresMatchOfflineKernelBitwise) {
  // The colsgd_predict golden-compare: the batched online path and the
  // offline dataset path run the same kernel, so scores agree bit-for-bit
  // even though batch compositions differ.
  const Dataset queries = TestQueries();
  const ServedRun run = ServeSteady(queries);
  Result<DatasetScores> offline =
      ScoreDatasetSharded(Planted("lr", queries.num_features, 5),
                          "round_robin", 4, queries, queries.num_rows());
  ASSERT_TRUE(offline.ok());
  for (const RequestRecord& rec : run.frontend->records()) {
    ASSERT_EQ(rec.status, RequestStatus::kCompleted);
    EXPECT_TRUE(BitEqual(rec.score, offline->scores[rec.row]))
        << "request " << rec.id << " row " << rec.row;
  }
}

TEST(ServeFrontendTest, TracerIsPassive) {
  const Dataset queries = TestQueries();
  const ServedRun plain = ServeSteady(queries);
  Tracer tracer;
  const ServedRun traced = ServeSteady(queries, &tracer);
  ASSERT_EQ(plain.frontend->records().size(),
            traced.frontend->records().size());
  for (size_t i = 0; i < plain.frontend->records().size(); ++i) {
    const RequestRecord& a = plain.frontend->records()[i];
    const RequestRecord& b = traced.frontend->records()[i];
    EXPECT_TRUE(BitEqual(a.dispatch, b.dispatch));
    EXPECT_TRUE(BitEqual(a.completion, b.completion));
    EXPECT_TRUE(BitEqual(a.score, b.score));
    EXPECT_EQ(a.generation, b.generation);
  }
  EXPECT_EQ(plain.frontend->Fingerprint(), traced.frontend->Fingerprint());
  EXPECT_FALSE(tracer.events().empty());
}

TEST(ServeFrontendTest, FingerprintIsDeterministicAndSeedSensitive) {
  const Dataset queries = TestQueries();
  const ServedRun a = ServeSteady(queries);
  const ServedRun b = ServeSteady(queries);
  EXPECT_EQ(a.frontend->Fingerprint(), b.frontend->Fingerprint());
  const ServedRun c = ServeSteady(queries, nullptr, 400, 2500.0);
  EXPECT_NE(a.frontend->Fingerprint(), c.frontend->Fingerprint());
}

TEST(ServeFrontendTest, HotSwapDropsNothingAndNeverMixesGenerations) {
  // The zero-drop / no-stale-mix acceptance test: two swaps land under
  // sustained load; every offered request completes, every response is
  // scored against exactly one model generation (bitwise vs the offline
  // kernel under that generation), and generations only move forward.
  const Dataset queries = TestQueries();
  ServeConfig config;
  config.num_shards = 4;
  ServeFrontend frontend(ClusterSpec::Cluster1(), config, &queries);
  const SavedModel gen0 = Planted("lr", queries.num_features, 5);
  const SavedModel gen1 = Planted("lr", queries.num_features, 6);
  const SavedModel gen2 = Planted("lr", queries.num_features, 7);
  ASSERT_TRUE(frontend.Install(gen0).ok());
  WorkloadConfig workload;
  workload.rate = 3000.0;
  workload.num_requests = 600;
  workload.seed = 21;
  const double horizon = 0.2;  // 600 / 3000
  frontend.ScheduleSwap(horizon / 3.0, gen1, 10);
  frontend.ScheduleSwap(2.0 * horizon / 3.0, gen2, 20);
  ASSERT_TRUE(
      frontend.Run(GenerateArrivals(workload, queries.num_rows())).ok());

  const ServeSummary summary = frontend.Summarize();
  EXPECT_EQ(summary.offered, 600);
  EXPECT_EQ(summary.completed, 600) << "hot swap dropped requests";
  EXPECT_EQ(summary.rejected, 0);
  EXPECT_EQ(summary.timed_out, 0);
  EXPECT_EQ(summary.swaps_completed, 2);
  EXPECT_EQ(summary.swaps_failed, 0);

  std::map<int64_t, std::vector<double>> offline;
  for (const auto& [generation, model] :
       std::map<int64_t, const SavedModel*>{
           {0, &gen0}, {1, &gen1}, {2, &gen2}}) {
    Result<DatasetScores> scored = ScoreDatasetSharded(
        *model, "round_robin", 4, queries, queries.num_rows());
    ASSERT_TRUE(scored.ok());
    offline[generation] = scored->scores;
  }
  std::set<int64_t> generations_seen;
  int64_t last_generation = 0;
  double last_dispatch = -1.0;
  for (const RequestRecord& rec : frontend.records()) {
    ASSERT_EQ(rec.status, RequestStatus::kCompleted);
    ASSERT_GE(rec.generation, 0);
    ASSERT_LE(rec.generation, 2);
    generations_seen.insert(rec.generation);
    // Scored against exactly that generation — a response blending shards
    // of two generations would match neither offline vector.
    EXPECT_TRUE(
        BitEqual(rec.score, offline[rec.generation][rec.row]))
        << "request " << rec.id << " generation " << rec.generation;
    // Records are in arrival order; dispatches are non-decreasing and the
    // active generation never moves backwards.
    EXPECT_GE(rec.dispatch, last_dispatch);
    if (rec.dispatch > last_dispatch) {
      EXPECT_GE(rec.generation, last_generation);
      last_generation = rec.generation;
      last_dispatch = rec.dispatch;
    } else {
      EXPECT_EQ(rec.generation, last_generation)
          << "one batch served two generations";
    }
  }
  EXPECT_EQ(generations_seen.size(), 3u)
      << "load did not span all three generations";
}

TEST(ServeFrontendTest, DamagedSwapImageIsRejectedAndServingContinues) {
  const Dataset queries = TestQueries();
  ServeConfig config;
  config.num_shards = 2;
  ServeFrontend frontend(ClusterSpec::Cluster1(), config, &queries);
  const SavedModel gen0 = Planted("lr", queries.num_features, 5);
  ASSERT_TRUE(frontend.Install(gen0).ok());
  std::vector<uint8_t> image =
      SerializeModel(Planted("lr", queries.num_features, 6));
  image[image.size() / 2] ^= 0x10;  // bit rot
  frontend.ScheduleSwapImage(0.05, std::move(image), 10);
  WorkloadConfig workload;
  workload.rate = 2000.0;
  workload.num_requests = 300;
  workload.seed = 4;
  ASSERT_TRUE(
      frontend.Run(GenerateArrivals(workload, queries.num_rows())).ok());
  const ServeSummary summary = frontend.Summarize();
  EXPECT_EQ(summary.completed, 300);
  EXPECT_EQ(summary.swaps_completed, 0);
  EXPECT_EQ(summary.swaps_failed, 1);
  Result<DatasetScores> offline = ScoreDatasetSharded(
      gen0, "round_robin", 2, queries, queries.num_rows());
  ASSERT_TRUE(offline.ok());
  for (const RequestRecord& rec : frontend.records()) {
    EXPECT_EQ(rec.generation, 0) << "a damaged image must never serve";
    EXPECT_TRUE(BitEqual(rec.score, offline->scores[rec.row]));
  }
  ASSERT_EQ(frontend.generations().size(), 2u);
  EXPECT_FALSE(frontend.generations()[1].ok);
}

TEST(ServeFrontendTest, ShardFailureTimesOutOneBatchThenFailsOver) {
  const Dataset queries = TestQueries();
  ServeConfig config;
  config.num_shards = 4;
  ServeFrontend frontend(ClusterSpec::Cluster1(), config, &queries);
  const SavedModel gen0 = Planted("lr", queries.num_features, 5);
  ASSERT_TRUE(frontend.Install(gen0).ok());
  frontend.ScheduleShardFailure(0.05, 2);
  WorkloadConfig workload;
  workload.rate = 2000.0;
  workload.num_requests = 400;
  workload.seed = 8;
  ASSERT_TRUE(
      frontend.Run(GenerateArrivals(workload, queries.num_rows())).ok());

  const ServeSummary summary = frontend.Summarize();
  EXPECT_EQ(summary.offered, 400);
  EXPECT_EQ(summary.completed + summary.rejected + summary.timed_out, 400);
  EXPECT_GT(summary.timed_out, 0);
  EXPECT_LE(summary.timed_out, config.max_batch);
  EXPECT_EQ(summary.failovers, 1);
  ASSERT_EQ(frontend.failovers().size(), 1u);
  const FailoverRecord& failover = frontend.failovers()[0];
  EXPECT_EQ(failover.shard, 2);
  EXPECT_GE(failover.detected_at, failover.failed_at);
  EXPECT_GT(failover.recovered_at, failover.detected_at);
  EXPECT_GT(failover.reinstall_bytes, 0u);
  EXPECT_EQ(failover.requests_timed_out, summary.timed_out);

  // Never a wrong answer: completed responses — before and after the
  // outage — still match the offline kernel bit-for-bit, and requests
  // dispatched after recovery complete again.
  Result<DatasetScores> offline = ScoreDatasetSharded(
      gen0, "round_robin", 4, queries, queries.num_rows());
  ASSERT_TRUE(offline.ok());
  bool completed_after_recovery = false;
  for (const RequestRecord& rec : frontend.records()) {
    if (rec.status != RequestStatus::kCompleted) continue;
    EXPECT_TRUE(BitEqual(rec.score, offline->scores[rec.row]));
    completed_after_recovery |= rec.dispatch > failover.recovered_at;
  }
  EXPECT_TRUE(completed_after_recovery);
}

TEST(ServeFrontendTest, BoundedQueueRejectsOverload) {
  const Dataset queries = TestQueries();
  ServeConfig config;
  config.num_shards = 2;
  config.max_batch = 4;
  config.queue_capacity = 8;
  ServeFrontend frontend(ClusterSpec::Cluster1(), config, &queries);
  ASSERT_TRUE(
      frontend.Install(Planted("lr", queries.num_features, 5)).ok());
  WorkloadConfig workload;
  workload.rate = 50000.0;  // far beyond the service rate
  workload.num_requests = 400;
  workload.seed = 2;
  ASSERT_TRUE(
      frontend.Run(GenerateArrivals(workload, queries.num_rows())).ok());
  const ServeSummary summary = frontend.Summarize();
  EXPECT_GT(summary.rejected, 0);
  EXPECT_EQ(summary.completed + summary.rejected + summary.timed_out, 400);
  EXPECT_GT(summary.slo_violation_fraction, 0.0);
}

TEST(ServeFrontendTest, RejectPathChargesControlBytesExactlyOnce) {
  // Byte conservation on the shed path: every traced network send is
  // charged to TotalStats exactly once, and each rejected request costs
  // exactly one control-sized message to the ingress — no double charge,
  // no free rejection.
  const Dataset queries = TestQueries();
  ServeConfig config;
  config.num_shards = 2;
  config.max_batch = 4;
  config.queue_capacity = 8;
  Tracer tracer;
  ServeFrontend frontend(ClusterSpec::Cluster1(), config, &queries);
  frontend.set_tracer(&tracer);
  ASSERT_TRUE(
      frontend.Install(Planted("lr", queries.num_features, 5)).ok());
  WorkloadConfig workload;
  workload.rate = 50000.0;
  workload.num_requests = 400;
  workload.seed = 2;
  ASSERT_TRUE(
      frontend.Run(GenerateArrivals(workload, queries.num_rows())).ok());
  const ServeSummary summary = frontend.Summarize();
  ASSERT_GT(summary.rejected, 0);

  uint64_t traced_bytes = 0;
  int64_t ingress_sends = 0;
  for (const TraceEvent& ev : tracer.events()) {
    if (std::strcmp(ev.name, "net.send") != 0) continue;
    traced_bytes += ev.bytes;
    if (ev.peer == frontend.ingress()) {
      EXPECT_EQ(ev.bytes, kRejectMessageBytes)
          << "only control-sized rejections reach the ingress";
      ++ingress_sends;
    }
  }
  EXPECT_EQ(traced_bytes, frontend.runtime().net().TotalStats().bytes_sent)
      << "trace and wire accounting must agree byte for byte";
  EXPECT_EQ(ingress_sends, summary.rejected)
      << "each rejection is charged exactly once";
}

TEST(ServeFrontendTest, InstallValidatesModels) {
  const Dataset queries = TestQueries();
  ServeConfig config;
  {
    ServeFrontend frontend(ClusterSpec::Cluster1(), config, &queries);
    EXPECT_FALSE(
        frontend.Install(Planted("mlp8", queries.num_features, 3)).ok());
  }
  {
    ServeFrontend frontend(ClusterSpec::Cluster1(), config, &queries);
    EXPECT_FALSE(
        frontend.Install(Planted("lr", queries.num_features - 30, 3)).ok())
        << "queries wider than the model must be rejected";
  }
  {
    ServeFrontend frontend(ClusterSpec::Cluster1(), config, &queries);
    SavedModel truncated = Planted("lr", queries.num_features, 3);
    truncated.weights.pop_back();
    EXPECT_FALSE(frontend.Install(truncated).ok());
  }
}

TEST(GenerationRegistryTest, FlipsAtInstallCompletion) {
  GenerationRegistry registry;
  ShardedModelImage image;
  image.model_name = "lr";
  GenerationInfo info;
  info.generation = 0;
  info.install_start = 0.0;
  info.install_done = 1.0;
  info.ok = true;
  EXPECT_EQ(registry.Install(image, info), 0);
  EXPECT_EQ(registry.ActiveAt(1.0), 0);

  info.generation = 1;
  info.install_start = 4.0;
  info.install_done = 5.0;
  EXPECT_EQ(registry.Install(image, info), 1);
  EXPECT_TRUE(registry.install_pending());
  EXPECT_EQ(registry.ActiveAt(4.999), 0) << "flip before install completion";
  EXPECT_EQ(registry.ActiveAt(5.0), 1);
  EXPECT_FALSE(registry.install_pending());
  EXPECT_EQ(registry.ActiveAt(4.0), 1)
      << "once flipped, the registry never goes back";
}

// ---- Serving chaos harness ----------------------------------------------

TEST(ServingChaosTest, SchedulesAreDeterministicAndCleanSeedsPass) {
  // Default options — the same configuration `colsgd_chaos --scenario
  // serving` runs in CI; a smaller request count would inflate the
  // per-failure SLO fraction past the degradation budget.
  const chaos::ServingChaosOptions options;
  const Dataset queries = chaos::ServingQueryDataset(options);
  const double clean = chaos::CleanSloViolationFraction(options, queries);
  for (uint64_t seed : {0u, 1u, 2u}) {
    const chaos::ServingSchedule schedule =
        chaos::GenerateServingSchedule(seed, options);
    const chaos::ServingSchedule replay =
        chaos::GenerateServingSchedule(seed, options);
    ASSERT_EQ(schedule.failures.size(), replay.failures.size());
    ASSERT_EQ(schedule.swaps.size(), replay.swaps.size());
    for (size_t i = 0; i < schedule.swaps.size(); ++i) {
      EXPECT_EQ(schedule.swaps[i].model_seed, replay.swaps[i].model_seed);
    }
    const chaos::ServingVerdict verdict =
        chaos::RunServingSchedule(options, schedule, queries, clean, seed);
    EXPECT_TRUE(verdict.ok()) << (verdict.violations.empty()
                                      ? ""
                                      : verdict.violations[0]);
    const chaos::ServingVerdict again =
        chaos::RunServingSchedule(options, schedule, queries, clean, seed);
    EXPECT_EQ(verdict.fingerprint, again.fingerprint);
  }
}

}  // namespace
}  // namespace colsgd
