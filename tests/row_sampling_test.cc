// Tests for engine/row_sampling.h: the per-(seed, iteration, worker) row
// draws the row-partitioned baseline engines batch with. Pins determinism
// (same seed -> byte-identical draw sequence), stream independence across
// iterations/workers, index validity across block boundaries, and
// distribution sanity (every row reachable, frequencies near uniform).
#include "engine/row_sampling.h"

#include <cmath>
#include <map>
#include <vector>

#include "gtest/gtest.h"

namespace colsgd {
namespace {

/// \brief Blocks of `sizes` rows; row r (global) has the single feature
/// id r with value r+1 and label r, so a draw identifies its global row.
std::vector<RowBlock> MakeBlocks(const std::vector<size_t>& sizes) {
  std::vector<RowBlock> blocks;
  uint32_t global = 0;
  for (size_t s : sizes) {
    RowBlock block;
    block.block_id = blocks.size();
    for (size_t i = 0; i < s; ++i) {
      const float value = static_cast<float>(global + 1);
      block.rows.AppendRow(&global, &value, 1);
      block.labels.push_back(static_cast<float>(global));
      ++global;
    }
    blocks.push_back(std::move(block));
  }
  return blocks;
}

uint64_t TotalRows(const std::vector<RowBlock>& blocks) {
  uint64_t total = 0;
  for (const RowBlock& block : blocks) total += block.num_rows();
  return total;
}

TEST(RowSamplingTest, DrawsAreDeterministicPerSeed) {
  const std::vector<RowBlock> blocks = MakeBlocks({7, 5, 12});
  const uint64_t total = TotalRows(blocks);
  for (int64_t iteration : {0, 1, 17}) {
    for (int worker : {0, 3}) {
      Rng a = WorkerIterationRng(13, iteration, worker);
      Rng b = WorkerIterationRng(13, iteration, worker);
      for (int draw = 0; draw < 64; ++draw) {
        const LocalRowSample sa = DrawLocalRow(blocks, total, &a);
        const LocalRowSample sb = DrawLocalRow(blocks, total, &b);
        EXPECT_EQ(sa.label, sb.label);
        ASSERT_EQ(sa.row.nnz, sb.row.nnz);
        EXPECT_EQ(sa.row.indices[0], sb.row.indices[0]);
        EXPECT_EQ(sa.row.values[0], sb.row.values[0]);
      }
    }
  }
}

TEST(RowSamplingTest, StreamsDifferAcrossIterationsAndWorkers) {
  // Distinct (iteration, worker) pairs must give distinct draw sequences —
  // a collapsed stream would correlate every worker's batches.
  const std::vector<RowBlock> blocks = MakeBlocks({64});
  const uint64_t total = TotalRows(blocks);
  auto sequence = [&](int64_t iteration, int worker) {
    Rng rng = WorkerIterationRng(7, iteration, worker);
    std::vector<float> labels;
    for (int draw = 0; draw < 16; ++draw) {
      labels.push_back(DrawLocalRow(blocks, total, &rng).label);
    }
    return labels;
  };
  const auto base = sequence(0, 0);
  EXPECT_NE(base, sequence(1, 0));
  EXPECT_NE(base, sequence(0, 1));
  EXPECT_NE(sequence(1, 0), sequence(0, 1));
  // Different master seeds decorrelate too.
  Rng other = WorkerIterationRng(8, 0, 0);
  std::vector<float> other_labels;
  for (int draw = 0; draw < 16; ++draw) {
    other_labels.push_back(DrawLocalRow(blocks, total, &other).label);
  }
  EXPECT_NE(base, other_labels);
}

TEST(RowSamplingTest, EveryDrawIsAValidRowAcrossBlockBoundaries) {
  // Uneven blocks, including a single-row one: every draw must map to a
  // real (row, label) pair with the row's self-identifying feature.
  const std::vector<RowBlock> blocks = MakeBlocks({3, 1, 9, 4});
  const uint64_t total = TotalRows(blocks);
  Rng rng = WorkerIterationRng(21, 2, 1);
  for (int draw = 0; draw < 512; ++draw) {
    const LocalRowSample sample = DrawLocalRow(blocks, total, &rng);
    ASSERT_EQ(sample.row.nnz, 1u);
    const uint32_t global = sample.row.indices[0];
    ASSERT_LT(global, total);
    EXPECT_EQ(sample.label, static_cast<float>(global));
    EXPECT_EQ(sample.row.values[0], static_cast<float>(global + 1));
  }
}

TEST(RowSamplingTest, DrawsAreApproximatelyUniform) {
  const std::vector<RowBlock> blocks = MakeBlocks({10, 6, 4});
  const uint64_t total = TotalRows(blocks);  // 20 rows
  std::map<float, int> counts;
  const int kDraws = 20000;
  Rng rng = WorkerIterationRng(3, 0, 0);
  for (int draw = 0; draw < kDraws; ++draw) {
    ++counts[DrawLocalRow(blocks, total, &rng).label];
  }
  // Every row reachable, and each within 25% of the uniform expectation
  // (1000 draws/row; a fair sampler deviates by ~3% at 3 sigma).
  ASSERT_EQ(counts.size(), total);
  const double expected = static_cast<double>(kDraws) / total;
  for (const auto& [label, count] : counts) {
    EXPECT_GT(count, expected * 0.75) << "row " << label << " starved";
    EXPECT_LT(count, expected * 1.25) << "row " << label << " favored";
  }
}

}  // namespace
}  // namespace colsgd
