// Unit tests for common/: Status, Result, byte buffers, RNG, flags, CSV.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/bytes.h"
#include "common/crc32c.h"
#include "common/csv.h"
#include "common/flags.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"

namespace colsgd {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
  EXPECT_TRUE(st.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad k");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_EQ(st.message(), "bad k");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, CopyAndMovePreserveState) {
  Status st = Status::OutOfMemory("big");
  Status copy = st;
  EXPECT_TRUE(copy.IsOutOfMemory());
  EXPECT_TRUE(st.IsOutOfMemory());
  Status moved = std::move(st);
  EXPECT_TRUE(moved.IsOutOfMemory());
  EXPECT_EQ(moved.message(), "big");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_EQ(Status::SerializationError("x").code(),
            StatusCode::kSerializationError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status {
    COLSGD_RETURN_NOT_OK(Status::NotFound("gone"));
    return Status::OK();
  };
  EXPECT_TRUE(fails().IsNotFound());
  auto passes = []() -> Status {
    COLSGD_RETURN_NOT_OK(Status::OK());
    return Status::InvalidArgument("reached");
  };
  EXPECT_TRUE(passes().IsInvalidArgument());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::IOError("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsIOError());
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) return Status::NotFound("inner");
    return 7;
  };
  auto outer = [&](bool fail) -> Result<int> {
    COLSGD_ASSIGN_OR_RETURN(int v, inner(fail));
    return v * 2;
  };
  EXPECT_EQ(*outer(false), 14);
  EXPECT_TRUE(outer(true).status().IsNotFound());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 5);
}

TEST(BytesTest, ScalarRoundTrip) {
  BufferWriter writer;
  writer.PutU8(0xAB);
  writer.PutU32(123456);
  writer.PutU64(1ull << 40);
  writer.PutI32(-77);
  writer.PutI64(-(1ll << 40));
  writer.PutFloat(1.5f);
  writer.PutDouble(-2.25);
  writer.PutString("hello");

  BufferReader reader(writer.buffer());
  EXPECT_EQ(*reader.GetU8(), 0xAB);
  EXPECT_EQ(*reader.GetU32(), 123456u);
  EXPECT_EQ(*reader.GetU64(), 1ull << 40);
  EXPECT_EQ(*reader.GetI32(), -77);
  EXPECT_EQ(*reader.GetI64(), -(1ll << 40));
  EXPECT_EQ(*reader.GetFloat(), 1.5f);
  EXPECT_EQ(*reader.GetDouble(), -2.25);
  EXPECT_EQ(*reader.GetString(), "hello");
  EXPECT_TRUE(reader.AtEnd());
}

TEST(BytesTest, VectorRoundTrip) {
  BufferWriter writer;
  writer.PutDoubleVector({1.0, -2.0, 3.5});
  writer.PutU32Vector({7, 8, 9});
  writer.PutU64Vector({1ull << 50});
  writer.PutFloatVector({0.5f});

  BufferReader reader(writer.buffer());
  EXPECT_EQ(*reader.GetDoubleVector(), (std::vector<double>{1.0, -2.0, 3.5}));
  EXPECT_EQ(*reader.GetU32Vector(), (std::vector<uint32_t>{7, 8, 9}));
  EXPECT_EQ(*reader.GetU64Vector(), (std::vector<uint64_t>{1ull << 50}));
  EXPECT_EQ(*reader.GetFloatVector(), (std::vector<float>{0.5f}));
}

TEST(BytesTest, EmptyVectorsRoundTrip) {
  BufferWriter writer;
  writer.PutDoubleVector({});
  writer.PutString("");
  BufferReader reader(writer.buffer());
  EXPECT_TRUE(reader.GetDoubleVector()->empty());
  EXPECT_TRUE(reader.GetString()->empty());
  EXPECT_TRUE(reader.AtEnd());
}

TEST(BytesTest, TruncatedBufferIsSerializationError) {
  BufferWriter writer;
  writer.PutU64(99);
  BufferReader reader(writer.buffer().data(), 3);  // cut mid-scalar
  EXPECT_EQ(reader.GetU64().status().code(), StatusCode::kSerializationError);
}

TEST(BytesTest, TruncatedVectorIsSerializationError) {
  BufferWriter writer;
  writer.PutDoubleVector({1.0, 2.0, 3.0});
  // Keep the length prefix but cut the payload.
  BufferReader reader(writer.buffer().data(), sizeof(uint64_t) + 8);
  EXPECT_FALSE(reader.GetDoubleVector().ok());
}

TEST(BytesTest, CorruptLengthPrefixDoesNotOverflow) {
  BufferWriter writer;
  writer.PutU64(~0ull);  // absurd element count
  BufferReader reader(writer.buffer());
  EXPECT_FALSE(reader.GetDoubleVector().ok());
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, SplitStreamsAreIndependentButDeterministic) {
  Rng base(99);
  Rng s1 = base.Split(1);
  Rng s2 = base.Split(2);
  Rng s1_again = base.Split(1);
  EXPECT_EQ(s1.NextU64(), s1_again.NextU64());
  EXPECT_NE(s1.NextU64(), s2.NextU64());
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(6);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(7);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, GaussianFromHashIsDeterministicAndStandard) {
  EXPECT_EQ(GaussianFromHash(42, 7), GaussianFromHash(42, 7));
  EXPECT_NE(GaussianFromHash(42, 7), GaussianFromHash(43, 7));
  EXPECT_NE(GaussianFromHash(42, 7), GaussianFromHash(42, 8));
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = GaussianFromHash(i, 3);
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.06);
}

TEST(FlagsTest, ParsesAllTypes) {
  FlagParser flags;
  int64_t n = 1;
  double lr = 0.5;
  bool verbose = false;
  std::string name = "x";
  flags.AddInt64("n", &n, "count");
  flags.AddDouble("lr", &lr, "rate");
  flags.AddBool("verbose", &verbose, "talky");
  flags.AddString("name", &name, "label");

  const char* argv[] = {"prog", "--n=42", "--lr", "0.25", "--verbose",
                        "--name=test"};
  ASSERT_TRUE(flags.Parse(6, const_cast<char**>(argv)).ok());
  EXPECT_EQ(n, 42);
  EXPECT_EQ(lr, 0.25);
  EXPECT_TRUE(verbose);
  EXPECT_EQ(name, "test");
}

TEST(FlagsTest, RejectsUnknownFlag) {
  FlagParser flags;
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_TRUE(flags.Parse(2, const_cast<char**>(argv)).IsInvalidArgument());
}

TEST(FlagsTest, RejectsBadValue) {
  FlagParser flags;
  int64_t n = 0;
  flags.AddInt64("n", &n, "count");
  const char* argv[] = {"prog", "--n=notanumber"};
  EXPECT_TRUE(flags.Parse(2, const_cast<char**>(argv)).IsInvalidArgument());
}

TEST(FlagsTest, RejectsMissingValue) {
  FlagParser flags;
  int64_t n = 0;
  flags.AddInt64("n", &n, "count");
  const char* argv[] = {"prog", "--n"};
  EXPECT_TRUE(flags.Parse(2, const_cast<char**>(argv)).IsInvalidArgument());
}

TEST(CsvTest, WritesHeaderAndRows) {
  const std::string path = ::testing::TempDir() + "/colsgd_csv_test.csv";
  CsvWriter csv;
  ASSERT_TRUE(csv.Open(path, {"a", "b"}).ok());
  csv.WriteRow({"1", "x"});
  csv.WriteNumericRow({2.5, 3.0});
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,x");
  std::getline(in, line);
  EXPECT_EQ(line, "2.5,3");
  std::remove(path.c_str());
}

TEST(CsvTest, OpenFailsOnBadPath) {
  CsvWriter csv;
  EXPECT_TRUE(csv.Open("/nonexistent-dir/foo.csv", {"a"}).IsIOError());
}

TEST(FormatDoubleTest, CompactRepresentation) {
  EXPECT_EQ(FormatDouble(1.0), "1");
  EXPECT_EQ(FormatDouble(0.125), "0.125");
  EXPECT_EQ(FormatDouble(1e9), "1e+09");
}

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 / canonical CRC32C test vector.
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(Crc32c("", 0), 0u);
  const std::vector<uint8_t> zeros(32, 0);
  EXPECT_EQ(Crc32c(zeros), 0x8A9136AAu);
}

TEST(Crc32cTest, ExtendComposesIncrementally) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const uint32_t whole = Crc32c(data.data(), data.size());
  uint32_t split = ExtendCrc32c(0, data.data(), 9);
  split = ExtendCrc32c(split, data.data() + 9, data.size() - 9);
  EXPECT_EQ(split, whole);
}

TEST(Crc32cTest, EverySingleBitFlipChangesTheChecksum) {
  std::vector<uint8_t> data(64);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i * 37 + 1);
  }
  const uint32_t clean = Crc32c(data);
  for (size_t bit = 0; bit < data.size() * 8; ++bit) {
    data[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    EXPECT_NE(Crc32c(data), clean) << "bit " << bit;
    data[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
  }
}

}  // namespace
}  // namespace colsgd
