// Tests for the network/compute simulation and the cluster runtime:
// byte-accurate transfer times, NIC serialization, and barriers. (Fault
// injection lives in cluster/fault and is tested in fault_test.cc.)
#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "simnet/compute_model.h"
#include "simnet/frame.h"
#include "simnet/network.h"

namespace colsgd {
namespace {

NetworkConfig TestNet() {
  NetworkConfig config;
  config.latency = 1e-3;
  config.bandwidth = 1e6;  // 1 MB/s: easy arithmetic
  config.per_message_overhead = 1e-4;
  return config;
}

TEST(SimNetworkTest, SingleSendTiming) {
  SimNetwork net(2, TestNet());
  // 1000 bytes at 1 MB/s = 1 ms wire time; + 0.1 ms overhead + 1 ms latency.
  const SimTime t = net.Send(0, 1, 1000, 0.0);
  EXPECT_NEAR(t, 1e-4 + 1e-3 + 1e-3, 1e-12);
}

TEST(SimNetworkTest, SenderNicSerializesBackToBackSends) {
  SimNetwork net(3, TestNet());
  const SimTime t1 = net.Send(0, 1, 1000, 0.0);
  const SimTime t2 = net.Send(0, 2, 1000, 0.0);
  // The second message waits for the first to clear the outbound NIC.
  EXPECT_NEAR(t2 - t1, 1e-4 + 1e-3, 1e-12);
}

TEST(SimNetworkTest, ReceiverNicSerializesConcurrentArrivals) {
  SimNetwork net(3, TestNet());
  // Two senders transmit simultaneously to node 2; the receiver drains them
  // at link bandwidth, so the second is ~1 wire-time later.
  const SimTime t1 = net.Send(0, 2, 1000, 0.0);
  const SimTime t2 = net.Send(1, 2, 1000, 0.0);
  EXPECT_GE(t2, t1 + 1e-3 - 1e-9);
}

TEST(SimNetworkTest, LaterSenderTimeDelaysDelivery) {
  SimNetwork net(2, TestNet());
  const SimTime t = net.Send(0, 1, 100, 5.0);
  EXPECT_GT(t, 5.0);
}

TEST(SimNetworkTest, TrafficStatsAccumulate) {
  SimNetwork net(2, TestNet());
  net.Send(0, 1, 500, 0.0);
  net.Send(0, 1, 700, 0.0);
  EXPECT_EQ(net.stats(0).messages_sent, 2u);
  EXPECT_EQ(net.stats(0).bytes_sent, 1200u);
  EXPECT_EQ(net.stats(1).messages_received, 2u);
  EXPECT_EQ(net.stats(1).bytes_received, 1200u);
  EXPECT_EQ(net.TotalStats().bytes_sent, 1200u);
  net.ResetStats();
  EXPECT_EQ(net.TotalStats().bytes_sent, 0u);
}

TEST(SimNetworkTest, ControlMessagesBypassBulkQueue) {
  SimNetwork net(3, TestNet());
  // Queue a lot of bulk data into node 2's inbound NIC...
  SimTime bulk_done = 0.0;
  for (int i = 0; i < 20; ++i) {
    bulk_done = net.Send(0, 2, 100000, 0.0);
  }
  // ...then a tiny control frame from another node arrives promptly instead
  // of waiting behind ~2 seconds of queued bulk.
  const SimTime control = net.Send(1, 2, 64, 0.0);
  EXPECT_LT(control, 0.01);
  EXPECT_GT(bulk_done, 1.0);
}

TEST(SimNetworkTest, BulkMessagesDoQueueAtReceiver) {
  SimNetwork net(3, TestNet());
  const SimTime first = net.Send(0, 2, 100000, 0.0);
  const SimTime second = net.Send(1, 2, 100000, 0.0);
  // Second bulk transfer drains after the first (0.1s wire each).
  EXPECT_GE(second, first + 0.1 - 1e-9);
}

TEST(SimNetworkTest, ControlBoundaryIsExactlyKControlMessageBytes) {
  // A message of exactly kControlMessageBytes (256) takes the control path;
  // one byte more takes the bulk path. Make the distinction observable by
  // parking bulk data on the receiver's inbound NIC first.
  SimNetwork net(3, TestNet());
  const SimTime bulk_done = net.Send(0, 2, 100000, 0.0);
  EXPECT_NEAR(bulk_done, 1e-4 + 0.1 + 1e-3, 1e-12);  // overhead + wire + lat

  // 256 bytes from node 1: slips past the queued bulk. Exact timing:
  // overhead + 256 us wire + 1 ms latency, inbound NIC ignored.
  const SimTime control = net.Send(1, 2, kControlMessageBytes, 0.0);
  EXPECT_NEAR(control, 1e-4 + 256e-6 + 1e-3, 1e-12);
  EXPECT_LT(control, bulk_done);

  // 257 bytes (second send on node 1's outbound NIC): waits for the queued
  // bulk to drain, then occupies the inbound NIC for its own wire time.
  const SimTime bulk = net.Send(1, 2, kControlMessageBytes + 1, 0.0);
  EXPECT_NEAR(bulk, bulk_done + 257e-6, 1e-12);
}

TEST(SimNetworkTest, BackToBackBulkSerializesOnInboundNicExactly) {
  // Two 100 kB messages from different senders, started simultaneously,
  // arrive together but drain one after the other: the second is delivered
  // exactly one wire time after the first.
  SimNetwork net(3, TestNet());
  const SimTime first = net.Send(0, 2, 100000, 0.0);
  const SimTime second = net.Send(1, 2, 100000, 0.0);
  EXPECT_NEAR(first, 1e-4 + 0.1 + 1e-3, 1e-12);
  EXPECT_NEAR(second, first + 0.1, 1e-12);
}

TEST(SimNetworkTest, TracerSeesControlFlagAndRxWindow) {
  SimNetwork net(3, TestNet());
  Tracer tracer;
  net.set_tracer(&tracer);
  const SimTime control_done = net.Send(0, 2, kControlMessageBytes, 0.0);
  const SimTime bulk_done = net.Send(1, 2, kControlMessageBytes + 1, 0.0);

  ASSERT_EQ(tracer.events().size(), 2u);
  const TraceEvent& control = tracer.events()[0];
  EXPECT_STREQ(control.name, "net.send");
  EXPECT_TRUE(control.control);
  EXPECT_EQ(control.bytes, kControlMessageBytes);
  EXPECT_EQ(control.node, 0u);
  EXPECT_EQ(control.peer, 2u);
  // Control messages skip the inbound queue: zero-width receive window.
  EXPECT_DOUBLE_EQ(control.rx_start, control.rx_done);
  EXPECT_DOUBLE_EQ(control.rx_done, control_done);

  const TraceEvent& bulk = tracer.events()[1];
  EXPECT_FALSE(bulk.control);
  EXPECT_EQ(bulk.bytes, kControlMessageBytes + 1);
  EXPECT_DOUBLE_EQ(bulk.rx_done, bulk_done);
  EXPECT_GT(bulk.rx_done, bulk.rx_start);
}

TEST(SimNetworkTest, TracerDoesNotChangeTiming) {
  SimNetwork plain(3, TestNet());
  SimNetwork traced(3, TestNet());
  Tracer tracer;
  traced.set_tracer(&tracer);
  for (int i = 0; i < 10; ++i) {
    const uint64_t bytes = 64 + 1000 * static_cast<uint64_t>(i);
    EXPECT_DOUBLE_EQ(plain.Send(0, 2, bytes, 0.0),
                     traced.Send(0, 2, bytes, 0.0));
    EXPECT_DOUBLE_EQ(plain.Send(1, 2, bytes, 0.0),
                     traced.Send(1, 2, bytes, 0.0));
  }
  EXPECT_EQ(tracer.events().size(), 20u);
  EXPECT_EQ(tracer.metrics().GetCounter("net.messages")->value(), 20);
}

TEST(SimNetworkTest, SelfSendDies) {
  SimNetwork net(2, TestNet());
  EXPECT_DEATH(net.Send(0, 0, 10, 0.0), "CHECK failed");
}

TEST(ComputeModelTest, SecondsForFlops) {
  ComputeModel cm{1e9, 0.0};
  EXPECT_DOUBLE_EQ(cm.SecondsFor(2e9), 2.0);
  ComputeModel with_overhead{1e9, 0.5};
  EXPECT_DOUBLE_EQ(with_overhead.SecondsFor(0), 0.5);
}

TEST(FlopCounterTest, AddsAndResets) {
  FlopCounter fc;
  fc.Add(10);
  fc.Add(5);
  EXPECT_EQ(fc.flops(), 15u);
  fc.Reset();
  EXPECT_EQ(fc.flops(), 0u);
}

TEST(ClusterRuntimeTest, TopologyAndClocks) {
  ClusterSpec spec = ClusterSpec::Cluster1();
  ClusterRuntime runtime(spec);
  EXPECT_EQ(runtime.num_workers(), 8);
  EXPECT_EQ(runtime.master(), 0u);
  EXPECT_EQ(runtime.worker_node(0), 1u);
  EXPECT_EQ(runtime.worker_node(7), 8u);
  EXPECT_DOUBLE_EQ(runtime.clock(0), 0.0);
  runtime.AdvanceClock(1, 2.5);
  EXPECT_DOUBLE_EQ(runtime.clock(1), 2.5);
  runtime.SyncClockTo(1, 1.0);  // behind: no-op
  EXPECT_DOUBLE_EQ(runtime.clock(1), 2.5);
  runtime.SyncClockTo(1, 3.0);
  EXPECT_DOUBLE_EQ(runtime.clock(1), 3.0);
}

TEST(ClusterRuntimeTest, BarrierLiftsAllClocks) {
  ClusterRuntime runtime(ClusterSpec::Cluster1());
  runtime.AdvanceClock(3, 7.0);
  runtime.Barrier();
  for (int n = 0; n <= runtime.num_workers(); ++n) {
    EXPECT_DOUBLE_EQ(runtime.clock(n), 7.0);
  }
}

TEST(ClusterRuntimeTest, SendSyncsReceiverClock) {
  ClusterSpec spec;
  spec.num_workers = 2;
  spec.net = TestNet();
  ClusterRuntime runtime(spec);
  const SimTime arrival = runtime.Send(runtime.master(), 1, 1000);
  EXPECT_DOUBLE_EQ(runtime.clock(1), arrival);
  EXPECT_GT(arrival, 0.0);
}

TEST(ClusterRuntimeTest, BroadcastSerializesThroughSenderNic) {
  ClusterSpec spec;
  spec.num_workers = 4;
  spec.net = TestNet();
  ClusterRuntime runtime(spec);
  runtime.BroadcastToWorkers(runtime.master(), 1000);
  // Worker 4's copy leaves the master NIC last: ~4 wire-times + latency.
  const double wire = 1e-3 + 1e-4;
  EXPECT_NEAR(runtime.clock(runtime.worker_node(3)), 4 * wire + 1e-3, 1e-9);
}

TEST(ClusterRuntimeTest, ChargeComputeUsesComputeModel) {
  ClusterSpec spec;
  spec.compute = ComputeModel{1e9, 0.0};
  ClusterRuntime runtime(spec);
  runtime.ChargeCompute(1, 5e8);
  EXPECT_DOUBLE_EQ(runtime.clock(1), 0.5);
}

TEST(ClusterRuntimeTest, ChargeMemTouchUsesMemBandwidth) {
  ClusterSpec spec;
  spec.mem_bandwidth = 1e9;
  ClusterRuntime runtime(spec);
  runtime.ChargeMemTouch(2, 5e8);
  EXPECT_DOUBLE_EQ(runtime.clock(2), 0.5);
}

TEST(NetworkConfigTest, ClusterPresetsMatchPaper) {
  // Cluster 1: 1 Gbps = 125 MB/s; Cluster 2: 10 Gbps.
  EXPECT_DOUBLE_EQ(NetworkConfig::Gbps1().bandwidth, 125e6);
  EXPECT_DOUBLE_EQ(NetworkConfig::Gbps10().bandwidth, 1250e6);
  EXPECT_EQ(ClusterSpec::Cluster1().num_workers, 8);
  EXPECT_EQ(ClusterSpec::Cluster2().num_workers, 40);
  EXPECT_EQ(ClusterSpec::Cluster2(20).num_workers, 20);
}

TEST(FrameTest, RoundTripsAndMeasuresOverhead) {
  const std::vector<uint8_t> payload = {1, 2, 3, 250, 0, 42};
  const std::vector<uint8_t> frame = FrameMessage(payload);
  EXPECT_EQ(frame.size(), payload.size() + kFrameOverheadBytes);
  const Result<std::vector<uint8_t>> back = VerifyFrame(frame);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.ValueOrDie(), payload);
  // The empty payload frames and verifies too.
  ASSERT_TRUE(VerifyFrame(FrameMessage({})).ok());
}

TEST(FrameTest, DetectsEverySingleBitFlip) {
  std::vector<uint8_t> payload(48);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<uint8_t>(i * 13);
  }
  const std::vector<uint8_t> clean = FrameMessage(payload);
  // Flip every bit of the whole frame — header, payload, and trailer — and
  // require the verifier to reject each damaged copy.
  for (size_t bit = 0; bit < clean.size() * 8; ++bit) {
    std::vector<uint8_t> damaged = clean;
    FlipBit(&damaged, bit);
    EXPECT_FALSE(VerifyFrame(damaged).ok()) << "bit " << bit;
  }
}

TEST(FrameTest, RejectsTruncationAndBadMagic) {
  const std::vector<uint8_t> frame = FrameMessage({7, 7, 7});
  std::vector<uint8_t> truncated(frame.begin(), frame.end() - 1);
  EXPECT_FALSE(VerifyFrame(truncated).ok());
  EXPECT_FALSE(VerifyFrame({}).ok());
  EXPECT_FALSE(VerifyFrame({1, 2, 3}).ok());  // shorter than the overhead
}

TEST(FrameTest, FlipBitWrapsOutOfRangeIndex) {
  std::vector<uint8_t> data = {0, 0};
  FlipBit(&data, 16);  // == bit 0 after wrap
  EXPECT_EQ(data[0], 1);
  EXPECT_EQ(data[1], 0);
}

}  // namespace
}  // namespace colsgd
