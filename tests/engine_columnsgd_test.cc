// Tests for the ColumnSGD engine: Algorithm 3 mechanics, memory/traffic
// accounting, backup computation, straggler handling, and fault tolerance.
#include <gtest/gtest.h>

#include "datagen/synthetic.h"
#include "engine/columnsgd.h"
#include "engine/trainer.h"

namespace colsgd {
namespace {

Dataset TestData(uint64_t rows = 2000, uint64_t features = 500) {
  SyntheticSpec spec = TinySpec();
  spec.num_rows = rows;
  spec.num_features = features;
  return GenerateSynthetic(spec);
}

ClusterSpec Cluster(int workers = 4) {
  ClusterSpec spec = ClusterSpec::Cluster1();
  spec.num_workers = workers;
  return spec;
}

TrainConfig Config() {
  TrainConfig config;
  config.model = "lr";
  config.learning_rate = 0.5;
  config.batch_size = 64;
  config.block_rows = 256;
  return config;
}

FaultConfig RotatingStraggler(double level, uint64_t seed) {
  FaultPlanConfig plan;
  plan.seed = seed;
  plan.stragglers.mode = StragglerSpec::Mode::kRotating;
  plan.stragglers.level = level;
  FaultConfig faults;
  faults.plan = FaultPlan(plan);
  return faults;
}

FaultConfig Scripted(std::vector<FaultEvent> events) {
  FaultConfig faults;
  faults.plan = FaultPlan::Scripted(std::move(events));
  return faults;
}

TEST(ColumnSgdEngineTest, SetupPartitionsDataAndModel) {
  Dataset d = TestData();
  ColumnSgdEngine engine(Cluster(), Config());
  ASSERT_TRUE(engine.Setup(d).ok());
  EXPECT_EQ(engine.num_groups(), 4);
  EXPECT_GT(engine.load_time(), 0.0);
  EXPECT_EQ(engine.directory().total_rows(), d.num_rows());
  // The initial model is all zeros for LR.
  std::vector<double> full = engine.FullModel();
  ASSERT_EQ(full.size(), d.num_features);
  for (double w : full) EXPECT_DOUBLE_EQ(w, 0.0);
}

TEST(ColumnSgdEngineTest, IterationUpdatesModelAndReportsLoss) {
  Dataset d = TestData();
  ColumnSgdEngine engine(Cluster(), Config());
  ASSERT_TRUE(engine.Setup(d).ok());
  ASSERT_TRUE(engine.RunIteration(0).ok());
  // First batch against a zero model: LR loss is exactly log 2.
  EXPECT_NEAR(engine.last_batch_loss(), std::log(2.0), 1e-12);
  std::vector<double> full = engine.FullModel();
  double norm = 0.0;
  for (double w : full) norm += w * w;
  EXPECT_GT(norm, 0.0);
}

TEST(ColumnSgdEngineTest, PerIterationTrafficDependsOnBatchNotModel) {
  // The core Table I claim, measured on the wire: statistics traffic is
  // 2KB-ish per worker per iteration regardless of model dimension.
  for (uint64_t features : {500u, 50000u}) {
    Dataset d = TestData(2000, features);
    ColumnSgdEngine engine(Cluster(), Config());
    ASSERT_TRUE(engine.Setup(d).ok());
    ASSERT_TRUE(engine.RunIteration(0).ok());
    const TrafficStats before = engine.runtime().net().TotalStats();
    ASSERT_TRUE(engine.RunIteration(1).ok());
    const TrafficStats after = engine.runtime().net().TotalStats();
    const uint64_t iteration_bytes = after.bytes_sent - before.bytes_sent;
    // K stats up + K stats down + K commands: ~2*K*(B*8) + overheads.
    const uint64_t expected = 2 * 4 * (16 + 64 * 8) + 4 * 24;
    EXPECT_EQ(iteration_bytes, expected) << "features=" << features;
  }
}

TEST(ColumnSgdEngineTest, WorkerMemoryIncludesDataModelScratch) {
  Dataset d = TestData();
  ColumnSgdEngine engine(Cluster(), Config());
  ASSERT_TRUE(engine.Setup(d).ok());
  for (int w = 0; w < 4; ++w) {
    EXPECT_GT(engine.WorkerMemoryBytes(w), 0u);
  }
}

TEST(ColumnSgdEngineTest, OutOfMemoryWhenBudgetTooSmall) {
  Dataset d = TestData();
  ClusterSpec spec = Cluster();
  spec.node_memory_budget = 1024;  // absurdly small
  ColumnSgdEngine engine(spec, Config());
  EXPECT_TRUE(engine.Setup(d).IsOutOfMemory());
}

TEST(ColumnSgdEngineTest, DeterministicAcrossRuns) {
  Dataset d = TestData();
  ColumnSgdEngine a(Cluster(), Config()), b(Cluster(), Config());
  ASSERT_TRUE(a.Setup(d).ok());
  ASSERT_TRUE(b.Setup(d).ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(a.RunIteration(i).ok());
    ASSERT_TRUE(b.RunIteration(i).ok());
  }
  EXPECT_EQ(a.FullModel(), b.FullModel());
  EXPECT_DOUBLE_EQ(a.runtime().MaxClock(), b.runtime().MaxClock());
}

TEST(ColumnSgdEngineTest, BackupRequiresDivisibleWorkers) {
  ColumnSgdOptions options;
  options.backup = 1;
  EXPECT_DEATH(ColumnSgdEngine(Cluster(5), Config(), std::move(options)),
               "multiple of backup");
}

TEST(ColumnSgdEngineTest, BackupProducesSameModelAsPure) {
  // 1-backup changes the grouping (and replication) but not the math.
  Dataset d = TestData();
  ColumnSgdEngine pure(Cluster(4), Config());
  ColumnSgdOptions options;
  options.backup = 1;
  ColumnSgdEngine backup(Cluster(4), Config(), std::move(options));
  ASSERT_TRUE(pure.Setup(d).ok());
  ASSERT_TRUE(backup.Setup(d).ok());
  EXPECT_EQ(backup.num_groups(), 2);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(pure.RunIteration(i).ok());
    ASSERT_TRUE(backup.RunIteration(i).ok());
  }
  const std::vector<double> pure_model = pure.FullModel();
  const std::vector<double> backup_model = backup.FullModel();
  ASSERT_EQ(pure_model.size(), backup_model.size());
  for (size_t i = 0; i < pure_model.size(); ++i) {
    EXPECT_NEAR(pure_model[i], backup_model[i], 1e-9);
  }
}

TEST(ColumnSgdEngineTest, BackupAbsorbsStragglers) {
  // Fig. 9: with 1-backup, per-iteration time is immune to a straggler;
  // without backup it inflates by ~(1+level)x.
  Dataset d = TestData();
  const int iters = 10;

  auto run = [&](int backup, double level) {
    ColumnSgdOptions options;
    options.backup = backup;
    ColumnSgdEngine engine(Cluster(4), Config(), std::move(options));
    if (level > 0) engine.set_faults(RotatingStraggler(level, 99));
    EXPECT_TRUE(engine.Setup(d).ok());
    // Progress is what the master sees; under backup computation the
    // straggler's own clock lags by design.
    const NodeId master = engine.runtime().master();
    const double start = engine.runtime().clock(master);
    for (int i = 0; i < iters; ++i) {
      EXPECT_TRUE(engine.RunIteration(i).ok());
    }
    return (engine.runtime().clock(master) - start) / iters;
  };

  const double pure = run(0, 0.0);
  const double straggled = run(0, 5.0);
  const double with_backup = run(1, 5.0);
  EXPECT_GT(straggled, 2.0 * pure);
  EXPECT_LT(with_backup, 1.8 * pure);
}

TEST(ColumnSgdEngineTest, ThreeBackupStillExactAndStragglerProof) {
  // S=3 on 8 workers: 2 groups of 4 replicas each.
  Dataset d = TestData();
  ColumnSgdEngine pure(Cluster(8), Config());
  ColumnSgdOptions options;
  options.backup = 3;
  ColumnSgdEngine backed(Cluster(8), Config(), std::move(options));
  backed.set_faults(RotatingStraggler(5.0, 5));
  ASSERT_TRUE(pure.Setup(d).ok());
  ASSERT_TRUE(backed.Setup(d).ok());
  EXPECT_EQ(backed.num_groups(), 2);
  const NodeId master = backed.runtime().master();
  const double start = backed.runtime().clock(master);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(pure.RunIteration(i).ok());
    ASSERT_TRUE(backed.RunIteration(i).ok());
  }
  const double per_iter =
      (backed.runtime().clock(master) - start) / 8;
  // Straggler-immune timing and exact model recovery.
  EXPECT_LT(per_iter, 0.03);
  const auto a = pure.FullModel();
  const auto b = backed.FullModel();
  for (size_t i = 0; i < a.size(); ++i) ASSERT_NEAR(a[i], b[i], 1e-9);
}

TEST(ColumnSgdEngineTest, FewerFeaturesThanWorkers) {
  // Degenerate but legal: some workers own zero features; they still
  // participate in the statistics round.
  SyntheticSpec spec = TinySpec();
  spec.num_rows = 400;
  spec.num_features = 3;
  Dataset d = GenerateSynthetic(spec);
  ColumnSgdEngine engine(Cluster(8), Config());
  ASSERT_TRUE(engine.Setup(d).ok());
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(engine.RunIteration(i).ok());
  EXPECT_EQ(engine.FullModel().size(), 3u);
}

TEST(ColumnSgdEngineTest, BatchLargerThanDataset) {
  // Sampling is with replacement (Section IV-A2), so B > N is legal.
  Dataset d = TestData(300, 100);
  TrainConfig config = Config();
  config.batch_size = 1000;
  ColumnSgdEngine engine(Cluster(), config);
  ASSERT_TRUE(engine.Setup(d).ok());
  ASSERT_TRUE(engine.RunIteration(0).ok());
  EXPECT_NEAR(engine.last_batch_loss(), std::log(2.0), 1e-9);
}

TEST(ColumnSgdEngineTest, TaskFailureOnlyCostsRetryTime) {
  Dataset d = TestData();
  ColumnSgdEngine engine(Cluster(4), Config());
  engine.set_faults(Scripted({{3, 1, FaultKind::kTaskFailure}}));
  ColumnSgdEngine reference(Cluster(4), Config());
  ASSERT_TRUE(engine.Setup(d).ok());
  ASSERT_TRUE(reference.Setup(d).ok());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(engine.RunIteration(i).ok());
    ASSERT_TRUE(reference.RunIteration(i).ok());
  }
  // Model identical (task retry does not lose state)...
  EXPECT_EQ(engine.FullModel(), reference.FullModel());
  // ...but the run pays roughly the retry overhead once.
  const double delta =
      engine.runtime().MaxClock() - reference.runtime().MaxClock();
  EXPECT_NEAR(delta, 0.2, 0.1);
}

TEST(ColumnSgdEngineTest, WorkerFailureReloadsAndReconverges) {
  Dataset d = TestData(4000, 300);
  TrainConfig config = Config();
  config.batch_size = 256;
  ColumnSgdEngine engine(Cluster(4), config);
  engine.set_faults(Scripted({{20, 2, FaultKind::kWorkerFailure}}));
  ASSERT_TRUE(engine.Setup(d).ok());

  double loss_before_failure = 0.0;
  double loss_at_failure = 0.0;
  double loss_final = 0.0;
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(engine.RunIteration(i).ok());
    if (i == 19) loss_before_failure = engine.last_batch_loss();
    if (i == 20) loss_at_failure = engine.last_batch_loss();
    if (i == 59) loss_final = engine.last_batch_loss();
  }
  // Losing a model partition bumps the loss...
  EXPECT_GT(loss_at_failure, loss_before_failure);
  // ...but training recovers without checkpoints (Fig. 13b).
  EXPECT_LT(loss_final, loss_at_failure);
  EXPECT_LT(loss_final, std::log(2.0));
}

TEST(ColumnSgdEngineTest, Fp32StatisticsHalveTrafficAndBarelyMoveTheModel) {
  Dataset d = TestData();
  ColumnSgdEngine fp64(Cluster(), Config());
  ColumnSgdOptions options;
  options.fp32_statistics = true;
  ColumnSgdEngine fp32(Cluster(), Config(), std::move(options));
  ASSERT_TRUE(fp64.Setup(d).ok());
  ASSERT_TRUE(fp32.Setup(d).ok());

  uint64_t bytes64 = 0, bytes32 = 0;
  for (int i = 0; i < 10; ++i) {
    const TrafficStats b64 = fp64.runtime().net().TotalStats();
    const TrafficStats b32 = fp32.runtime().net().TotalStats();
    ASSERT_TRUE(fp64.RunIteration(i).ok());
    ASSERT_TRUE(fp32.RunIteration(i).ok());
    bytes64 = fp64.runtime().net().TotalStats().bytes_sent - b64.bytes_sent;
    bytes32 = fp32.runtime().net().TotalStats().bytes_sent - b32.bytes_sent;
  }
  // Statistics dominate the per-iteration traffic, so fp32 roughly halves.
  EXPECT_LT(bytes32, 6 * bytes64 / 10);
  // Rounding each statistic to float changes the model only marginally.
  const auto m64 = fp64.FullModel();
  const auto m32 = fp32.FullModel();
  double norm = 0.0, diff = 0.0;
  for (size_t i = 0; i < m64.size(); ++i) {
    norm += m64[i] * m64[i];
    diff += (m64[i] - m32[i]) * (m64[i] - m32[i]);
  }
  EXPECT_GT(norm, 0.0);
  EXPECT_LT(diff, 1e-6 * norm);
}

TEST(ColumnSgdEngineTest, SupportsAllModelsAndOptimizers) {
  Dataset binary = TestData(1000, 200);
  for (const std::string model : {"lr", "svm", "lsq", "fm4", "mlp4"}) {
    for (const std::string opt : {"sgd", "adagrad", "adam"}) {
      TrainConfig config = Config();
      config.model = model;
      config.optimizer = opt;
      config.learning_rate = 0.05;
      ColumnSgdEngine engine(Cluster(), config);
      ASSERT_TRUE(engine.Setup(binary).ok()) << model << "/" << opt;
      for (int i = 0; i < 3; ++i) {
        ASSERT_TRUE(engine.RunIteration(i).ok()) << model << "/" << opt;
      }
      EXPECT_GT(engine.last_batch_loss(), 0.0);
    }
  }
  // Multiclass.
  SyntheticSpec spec = TinySpec();
  spec.num_rows = 1000;
  spec.num_features = 200;
  spec.num_classes = 4;
  Dataset multi = GenerateSynthetic(spec);
  TrainConfig config = Config();
  config.model = "mlr4";
  config.learning_rate = 0.1;
  ColumnSgdEngine engine(Cluster(), config);
  ASSERT_TRUE(engine.Setup(multi).ok());
  ASSERT_TRUE(engine.RunIteration(0).ok());
  EXPECT_NEAR(engine.last_batch_loss(), std::log(4.0), 1e-9);
}

TEST(ColumnSgdEngineTest, WorksWithEveryPartitioner) {
  Dataset d = TestData();
  for (const std::string name :
       {"round_robin", "range", "block_cyclic_16"}) {
    TrainConfig config = Config();
    config.partitioner = name;
    ColumnSgdEngine engine(Cluster(), config);
    ASSERT_TRUE(engine.Setup(d).ok()) << name;
    for (int i = 0; i < 3; ++i) ASSERT_TRUE(engine.RunIteration(i).ok());
  }
}

}  // namespace
}  // namespace colsgd
