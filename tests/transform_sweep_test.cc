// Parameterized property sweep over the row-to-column transform: for every
// (partitioner, block size, worker count) combination, the block-based load
// must preserve every non-zero, keep labels replicated, produce a directory
// consistent with the dataset, and agree with a direct SplitBlock pass.
#include <gtest/gtest.h>

#include <tuple>

#include "datagen/synthetic.h"
#include "storage/transform.h"

namespace colsgd {
namespace {

using SweepCase = std::tuple<std::string, size_t, int>;

class TransformSweepTest : public ::testing::TestWithParam<SweepCase> {
 protected:
  static const Dataset& Data() {
    static const Dataset d = [] {
      SyntheticSpec spec = TinySpec();
      spec.num_rows = 700;
      spec.num_features = 257;  // prime-ish: exercises uneven partitions
      return GenerateSynthetic(spec);
    }();
    return d;
  }
};

TEST_P(TransformSweepTest, BlockLoadPreservesEverything) {
  const auto& [partitioner_name, block_rows, workers] = GetParam();
  const Dataset& d = Data();
  ClusterSpec spec = ClusterSpec::Cluster1();
  spec.num_workers = workers;
  ClusterRuntime runtime(spec);
  std::vector<RowBlock> blocks = MakeRowBlocks(d, block_rows);
  auto partitioner =
      MakePartitioner(partitioner_name, d.num_features, workers);
  ColumnLoadResult load = BlockColumnLoad(blocks, *partitioner, &runtime,
                                          TransformCostConfig());

  // Directory is consistent with the dataset.
  ASSERT_EQ(load.directory.total_rows(), d.num_rows());
  ASSERT_EQ(load.directory.num_blocks(), blocks.size());

  // Every worker holds one workset per block, with all labels.
  uint64_t total_nnz = 0;
  for (int w = 0; w < workers; ++w) {
    ASSERT_EQ(load.stores[w].num_worksets(), blocks.size());
    ASSERT_EQ(load.stores[w].total_rows(), d.num_rows());
    total_nnz += load.stores[w].total_nnz();
    for (const RowBlock& block : blocks) {
      const Workset* workset = load.stores[w].Find(block.block_id);
      ASSERT_NE(workset, nullptr);
      ASSERT_EQ(workset->labels, block.labels);
    }
  }
  EXPECT_EQ(total_nnz, d.nnz());

  // Spot-reconstruct a handful of rows from the shards.
  for (size_t r = 0; r < d.num_rows(); r += 97) {
    const RowRef ref = load.directory.Locate(r);
    std::vector<float> dense(d.num_features, 0.0f);
    for (int w = 0; w < workers; ++w) {
      const Workset* workset = load.stores[w].Find(ref.block_id);
      const SparseVectorView shard_row = workset->shard.Row(ref.offset);
      for (size_t j = 0; j < shard_row.nnz; ++j) {
        dense[partitioner->GlobalIndex(w, shard_row.indices[j])] =
            shard_row.values[j];
      }
    }
    const SparseVectorView original = d.rows.Row(r);
    for (size_t j = 0; j < original.nnz; ++j) {
      ASSERT_EQ(dense[original.indices[j]], original.values[j])
          << "row " << r;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCombinations, TransformSweepTest,
    ::testing::Combine(::testing::Values("round_robin", "range",
                                         "block_cyclic_16"),
                       ::testing::Values<size_t>(64, 300, 1000),
                       ::testing::Values(1, 3, 8)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_b" +
             std::to_string(std::get<1>(info.param)) + "_k" +
             std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace colsgd
