// Tests for the obs subsystem: metrics primitives, byte conservation between
// the trace and the network's TrafficStats, the passivity guarantee (tracing
// changes no simulated time and no trained bit), the master-clock phase
// decomposition, and the trace-reader round trip.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "datagen/synthetic.h"
#include "engine/trainer.h"
#include "obs/bench/timeseries.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_reader.h"

namespace colsgd {
namespace {

Dataset TestData(uint64_t rows = 1000, uint64_t features = 300,
                 const std::string& model = "lr") {
  SyntheticSpec spec = TinySpec();
  spec.num_rows = rows;
  spec.num_features = features;
  if (model.rfind("mlr", 0) == 0) {
    spec.num_classes = std::stoi(model.substr(3));
  }
  return GenerateSynthetic(spec);
}

ClusterSpec Cluster(int workers = 4) {
  ClusterSpec spec = ClusterSpec::Cluster1();
  spec.num_workers = workers;
  return spec;
}

TrainConfig Config(const std::string& model = "lr") {
  TrainConfig config;
  config.model = model;
  config.learning_rate = 0.5;
  config.batch_size = 64;
  config.block_rows = 128;
  return config;
}

// ---- metrics primitives ---------------------------------------------------

TEST(HistogramTest, BucketsAndStats) {
  Histogram h({1.0, 10.0, 100.0});
  h.Observe(0.5);    // bucket 0 (<= 1)
  h.Observe(1.0);    // bucket 0 (boundary is inclusive)
  h.Observe(5.0);    // bucket 1
  h.Observe(1000.0); // overflow bucket
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 1006.5);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
  ASSERT_EQ(h.buckets().size(), 4u);
  EXPECT_EQ(h.buckets()[0], 2u);
  EXPECT_EQ(h.buckets()[1], 1u);
  EXPECT_EQ(h.buckets()[2], 0u);
  EXPECT_EQ(h.buckets()[3], 1u);
}

TEST(MetricsRegistryTest, StablePointersAndDeterministicOrder) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("zzz");
  registry.GetCounter("aaa")->Add(7);
  c->Increment();
  EXPECT_EQ(registry.GetCounter("zzz"), c);  // same object on re-lookup
  EXPECT_EQ(c->value(), 1u);
  // Iteration is name-sorted regardless of creation order.
  std::vector<std::string> names;
  for (const auto& [name, counter] : registry.counters()) {
    names.push_back(name);
  }
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "aaa");
  EXPECT_EQ(names[1], "zzz");
  registry.Clear();
  EXPECT_TRUE(registry.counters().empty());
}

TEST(MetricsRegistryTest, HistogramKeepsFirstBounds) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("x", {1.0, 2.0});
  EXPECT_EQ(registry.GetHistogram("x", {99.0}), h);
  EXPECT_EQ(h->bounds().size(), 2u);
}

// ---- byte conservation ----------------------------------------------------

struct EngineModelCase {
  const char* engine;
  const char* model;
};

std::string CaseName(const testing::TestParamInfo<EngineModelCase>& info) {
  return std::string(info.param.engine) + "_" + info.param.model;
}

class ByteConservationTest : public testing::TestWithParam<EngineModelCase> {};

// Every byte the network counted must appear in exactly one net.send trace
// event, and vice versa — per node and in total, including loading traffic.
TEST_P(ByteConservationTest, TraceBytesMatchTrafficStatsExactly) {
  const EngineModelCase& param = GetParam();
  Dataset data = TestData(1000, 300, param.model);
  auto engine = MakeEngine(param.engine, Cluster(), Config(param.model));

  Tracer tracer;
  engine->set_tracer(&tracer);  // before Setup: loading traffic counts too
  ASSERT_TRUE(engine->Setup(data).ok());
  for (int64_t iter = 0; iter < 3; ++iter) {
    ASSERT_TRUE(engine->RunIteration(iter).ok());
  }

  const SimNetwork& net = engine->runtime().net();
  std::map<uint32_t, uint64_t> sent_bytes, received_bytes;
  std::map<uint32_t, uint64_t> sent_messages, received_messages;
  uint64_t total_bytes = 0, total_messages = 0;
  for (const TraceEvent& event : tracer.events()) {
    if (std::string(event.name) != "net.send") continue;
    sent_bytes[event.node] += event.bytes;
    received_bytes[event.peer] += event.bytes;
    sent_messages[event.node]++;
    received_messages[event.peer]++;
    total_bytes += event.bytes;
    total_messages++;
  }

  const TrafficStats total = net.TotalStats();
  EXPECT_EQ(total_bytes, total.bytes_sent);
  EXPECT_EQ(total_bytes, total.bytes_received);
  EXPECT_EQ(total_messages, total.messages_sent);
  for (int node = 0; node < net.num_nodes(); ++node) {
    const NodeId id = static_cast<NodeId>(node);
    EXPECT_EQ(sent_bytes[id], net.stats(id).bytes_sent)
        << "bytes_sent mismatch at node " << node;
    EXPECT_EQ(received_bytes[id], net.stats(id).bytes_received)
        << "bytes_received mismatch at node " << node;
    EXPECT_EQ(sent_messages[id], net.stats(id).messages_sent)
        << "messages_sent mismatch at node " << node;
    EXPECT_EQ(received_messages[id], net.stats(id).messages_received)
        << "messages_received mismatch at node " << node;
  }
  // The aggregated counters see the same traffic.
  EXPECT_EQ(tracer.metrics().GetCounter("net.bytes")->value(), total_bytes);
  EXPECT_EQ(tracer.metrics().GetCounter("net.messages")->value(),
            total_messages);
}

INSTANTIATE_TEST_SUITE_P(
    AllEnginesAndModels, ByteConservationTest,
    testing::Values(EngineModelCase{"columnsgd", "lr"},
                    EngineModelCase{"columnsgd", "fm4"},
                    EngineModelCase{"columnsgd", "mlr3"},
                    EngineModelCase{"mllib", "lr"},
                    EngineModelCase{"mllib", "fm4"},
                    EngineModelCase{"mllib", "mlr3"},
                    EngineModelCase{"mllib_star", "lr"},
                    EngineModelCase{"mllib_star", "fm4"},
                    EngineModelCase{"mllib_star", "mlr3"},
                    EngineModelCase{"petuum", "lr"},
                    EngineModelCase{"petuum", "fm4"},
                    EngineModelCase{"petuum", "mlr3"},
                    EngineModelCase{"mxnet", "lr"},
                    EngineModelCase{"mxnet", "fm4"},
                    EngineModelCase{"mxnet", "mlr3"}),
    CaseName);

// ---- passivity ------------------------------------------------------------

class TracePassivityTest : public testing::TestWithParam<const char*> {};

// Attaching a tracer changes no simulated clock and no trained bit.
TEST_P(TracePassivityTest, TracedRunIsBitIdenticalToUntraced) {
  const char* engine_name = GetParam();
  Dataset data = TestData();

  auto plain = MakeEngine(engine_name, Cluster(), Config());
  ASSERT_TRUE(plain->Setup(data).ok());
  auto traced = MakeEngine(engine_name, Cluster(), Config());
  Tracer tracer;
  traced->set_tracer(&tracer);
  ASSERT_TRUE(traced->Setup(data).ok());

  for (int64_t iter = 0; iter < 3; ++iter) {
    ASSERT_TRUE(plain->RunIteration(iter).ok());
    ASSERT_TRUE(traced->RunIteration(iter).ok());
  }

  const std::vector<double> w_plain = plain->FullModel();
  const std::vector<double> w_traced = traced->FullModel();
  ASSERT_EQ(w_plain.size(), w_traced.size());
  for (size_t i = 0; i < w_plain.size(); ++i) {
    ASSERT_EQ(w_plain[i], w_traced[i]) << "weight " << i << " diverged";
  }
  for (int node = 0; node < plain->runtime().net().num_nodes(); ++node) {
    EXPECT_EQ(plain->runtime().clock(static_cast<NodeId>(node)),
              traced->runtime().clock(static_cast<NodeId>(node)))
        << "clock " << node << " diverged";
  }
  EXPECT_FALSE(tracer.events().empty());
}

INSTANTIATE_TEST_SUITE_P(AllEngines, TracePassivityTest,
                         testing::Values("columnsgd", "mllib", "mllib_star",
                                         "petuum", "mxnet"));

class RecorderPassivityTest : public testing::TestWithParam<const char*> {};

// The benchmark time-series recorder holds the same contract as the tracer:
// attaching it changes no simulated clock and no trained bit.
TEST_P(RecorderPassivityTest, RecordedRunIsBitIdenticalToPlain) {
  const char* engine_name = GetParam();
  Dataset data = TestData();

  auto plain = MakeEngine(engine_name, Cluster(), Config());
  ASSERT_TRUE(plain->Setup(data).ok());
  auto recorded = MakeEngine(engine_name, Cluster(), Config());
  Tracer tracer;
  TimeSeriesRecorder recorder;
  recorded->set_tracer(&tracer);  // tracer + recorder together, as BenchRunner
  recorded->set_recorder(&recorder);
  ASSERT_TRUE(recorded->Setup(data).ok());
  const uint64_t setup_bytes =
      recorded->runtime().net().TotalStats().bytes_sent;

  for (int64_t iter = 0; iter < 3; ++iter) {
    ASSERT_TRUE(plain->RunIteration(iter).ok());
    ASSERT_TRUE(recorded->RunIteration(iter).ok());
  }

  const std::vector<double> w_plain = plain->FullModel();
  const std::vector<double> w_recorded = recorded->FullModel();
  ASSERT_EQ(w_plain.size(), w_recorded.size());
  for (size_t i = 0; i < w_plain.size(); ++i) {
    ASSERT_EQ(w_plain[i], w_recorded[i]) << "weight " << i << " diverged";
  }
  for (int node = 0; node < plain->runtime().net().num_nodes(); ++node) {
    EXPECT_EQ(plain->runtime().clock(static_cast<NodeId>(node)),
              recorded->runtime().clock(static_cast<NodeId>(node)))
        << "clock " << node << " diverged";
  }

  // The recorder saw every iteration, with monotone sim time and the same
  // traffic total the network reports.
  ASSERT_EQ(recorder.samples().size(), 3u);
  uint64_t recorded_bytes = 0;
  double last_time = 0.0;
  for (const TimeSeriesSample& sample : recorder.samples()) {
    EXPECT_GE(sample.sim_time, last_time);
    last_time = sample.sim_time;
    EXPECT_GT(sample.iter_seconds, 0.0);
    recorded_bytes += sample.bytes_on_wire;
  }
  EXPECT_EQ(recorded_bytes,
            recorded->runtime().net().TotalStats().bytes_sent - setup_bytes);
}

INSTANTIATE_TEST_SUITE_P(AllEngines, RecorderPassivityTest,
                         testing::Values("columnsgd", "mllib", "mllib_star",
                                         "petuum", "mxnet"));

// ---- phase decomposition --------------------------------------------------

class PhaseDecompositionTest : public testing::TestWithParam<const char*> {};

// The phase breakdown tiles each iteration's master-clock delta: no gaps, no
// double counting, to float-rounding precision.
TEST_P(PhaseDecompositionTest, PhasesSumToMasterClockDelta) {
  Dataset data = TestData();
  TrainConfig config = Config();
  config.sched_overhead = 0.05;  // a recognizable serialization share
  auto engine = MakeEngine(GetParam(), Cluster(), config);
  Tracer tracer;
  engine->set_tracer(&tracer);  // RunTraining calls Setup itself

  RunOptions options;
  options.iterations = 4;
  options.eval_every = 0;
  TrainResult result = RunTraining(engine.get(), data, options);
  ASSERT_TRUE(result.status.ok());

  ASSERT_EQ(result.phase_trace.size(), 4u);
  double total = 0.0;
  for (const IterationPhases& iter : result.phase_trace) {
    EXPECT_GT(iter.end, iter.start);
    EXPECT_NEAR(iter.phases.total(), iter.end - iter.start, 1e-9)
        << "iteration " << iter.iteration << " has unattributed time";
    // Serialization is exactly the configured driver overhead: the only
    // master-clock advance inside the serialization bracket.
    EXPECT_NEAR(iter.phases[Phase::kSerialization], 0.05, 1e-12);
    // No faults, no checkpoints in this run.
    EXPECT_DOUBLE_EQ(iter.phases[Phase::kRecovery], 0.0);
    EXPECT_DOUBLE_EQ(iter.phases[Phase::kCheckpoint], 0.0);
    total += iter.phases.total();
  }
  EXPECT_NEAR(result.phase_totals.total(), total, 1e-9);
  EXPECT_NEAR(total, result.train_time, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AllEngines, PhaseDecompositionTest,
                         testing::Values("columnsgd", "mllib", "mllib_star",
                                         "petuum", "mxnet"));

// RowSGD with known dimensions: each phase matches its first-principles
// value, not just the sum. m features * 8 bytes broadcast + gradient pushes
// dominate the wire phase.
TEST(PhaseDecompositionTest, RowSgdPhasesMatchHandComputedModel) {
  Dataset data = TestData(1000, 300);
  TrainConfig config = Config();
  config.sched_overhead = 0.01;
  auto engine = MakeEngine("mllib", Cluster(4), config);
  Tracer tracer;
  engine->set_tracer(&tracer);
  ASSERT_TRUE(engine->Setup(data).ok());
  ASSERT_TRUE(engine->RunIteration(0).ok());

  ASSERT_EQ(tracer.iterations().size(), 1u);
  const IterationPhases& iter = tracer.iterations()[0];
  EXPECT_NEAR(iter.phases.total(), iter.end - iter.start, 1e-9);
  EXPECT_NEAR(iter.phases[Phase::kSerialization], 0.01, 1e-12);
  // The master's compute phase is exactly its traced in-iteration compute
  // blocks (K-gradient aggregation + model update) — loading-time blocks
  // recorded before iter.start don't count.
  double master_compute = 0.0;
  for (const TraceEvent& event : tracer.events()) {
    // track check: the phase segment on the master's phase track is also
    // named "compute" — only raw events count here.
    if (std::string(event.name) == "compute" && event.node == 0 &&
        event.track == TraceTrack::kEvents && event.ts >= iter.start) {
      master_compute += event.dur;
    }
  }
  EXPECT_NEAR(iter.phases[Phase::kCompute], master_compute, 1e-12);
  // Everything else this engine pays on the master is waiting for gradient
  // pushes to arrive.
  EXPECT_NEAR(iter.phases[Phase::kWire],
              (iter.end - iter.start) - 0.01 - master_compute, 1e-9);
  EXPECT_GT(iter.phases[Phase::kWire], 0.0);
}

// Fault + checkpoint time lands in the recovery / checkpoint buckets.
TEST(PhaseDecompositionTest, FaultsAndCheckpointsAreAttributed) {
  Dataset data = TestData();
  auto engine = MakeEngine("columnsgd", Cluster(), Config());
  FaultConfig faults;
  FaultEvent failure;
  failure.iteration = 1;
  failure.worker = 2;
  failure.kind = FaultKind::kWorkerFailure;
  faults.plan = FaultPlan::Scripted({failure});
  faults.checkpoint.every = 2;
  engine->set_faults(std::move(faults));
  Tracer tracer;
  engine->set_tracer(&tracer);
  ASSERT_TRUE(engine->Setup(data).ok());
  for (int64_t iter = 0; iter < 4; ++iter) {
    ASSERT_TRUE(engine->RunIteration(iter).ok());
  }

  ASSERT_EQ(tracer.iterations().size(), 4u);
  for (const IterationPhases& iter : tracer.iterations()) {
    EXPECT_NEAR(iter.phases.total(), iter.end - iter.start, 1e-9);
  }
  EXPECT_DOUBLE_EQ(tracer.iterations()[0].phases[Phase::kRecovery], 0.0);
  EXPECT_GT(tracer.iterations()[1].phases[Phase::kRecovery], 0.0);
  // Checkpoints fire on iterations 1 and 3 (every=2 checkpoints after the
  // 2nd and 4th iteration complete).
  EXPECT_GT(tracer.iterations()[1].phases[Phase::kCheckpoint], 0.0);
  EXPECT_GT(tracer.iterations()[3].phases[Phase::kCheckpoint], 0.0);
  EXPECT_EQ(tracer.metrics().GetCounter("fault.worker")->value(), 1u);
  EXPECT_EQ(tracer.metrics().GetCounter("checkpoint")->value(), 2u);
}

class SspPhaseDecompositionTest : public testing::TestWithParam<const char*> {
};

// Runs `iterations` SSP iterations at the given slack, asserts the tiling
// invariant on every iteration, and returns the total ssp.wait seconds.
double SspRunAndCheckTiling(const char* engine_name, int slack,
                            int iterations) {
  Dataset data = TestData();
  TrainConfig config = Config();
  // Tiny scheduler bracket: the gate stall must not hide inside it (the
  // one-way network latency alone is 100 us).
  config.sched_overhead = 1e-5;
  config.ssp.enabled = true;
  config.ssp.slack = slack;
  auto engine = MakeEngine(engine_name, Cluster(), config);

  // Rotating stragglers desynchronize the workers so the gate binds.
  FaultPlanConfig plan;
  plan.seed = 9;
  plan.stragglers.mode = StragglerSpec::Mode::kRotating;
  plan.stragglers.level = 4.0;
  FaultConfig faults;
  faults.plan = FaultPlan(plan);
  EXPECT_TRUE(engine->set_faults(faults).ok());
  Tracer tracer;
  engine->set_tracer(&tracer);

  RunOptions options;
  options.iterations = iterations;
  options.eval_every = 0;
  TrainResult result = RunTraining(engine.get(), data, options);
  EXPECT_TRUE(result.status.ok()) << result.status.ToString();

  EXPECT_EQ(result.phase_trace.size(), static_cast<size_t>(iterations));
  double total = 0.0;
  double ssp_wait = 0.0;
  for (const IterationPhases& iter : result.phase_trace) {
    EXPECT_NEAR(iter.phases.total(), iter.end - iter.start, 1e-9)
        << "iteration " << iter.iteration << " has unattributed time";
    EXPECT_NEAR(iter.phases[Phase::kSerialization], 1e-5, 1e-12);
    EXPECT_GE(iter.phases[Phase::kSspWait], 0.0);
    EXPECT_DOUBLE_EQ(iter.phases[Phase::kRecovery], 0.0);
    ssp_wait += iter.phases[Phase::kSspWait];
    total += iter.phases.total();
  }
  EXPECT_NEAR(result.phase_totals.total(), total, 1e-9);
  // The final pipeline drain (FinishTraining) advances the master clock
  // after the last EndIteration: train_time includes it, while the phase
  // accounting stops at the last iteration boundary.
  EXPECT_LE(total, result.train_time + 1e-9);
  return ssp_wait;
}

// Under bounded staleness the master's stall time gets its own ssp.wait
// phase and the tiling invariant is unchanged: every iteration's phase
// breakdown still sums to its master-clock delta at 1e-9. At slack 0 the
// gate binds every iteration (the stall is visible); raising the slack lets
// the pipeline absorb it.
TEST_P(SspPhaseDecompositionTest, SspWaitTilesWithTheOtherPhases) {
  const double stall_s0 = SspRunAndCheckTiling(GetParam(), /*slack=*/0, 6);
  const double stall_s2 = SspRunAndCheckTiling(GetParam(), /*slack=*/2, 6);
  EXPECT_GT(stall_s0, 0.0) << "slack-0 gate stall should be visible";
  // Slack never adds stall; whether it removes any depends on whether the
  // straggler's own request round-trip (slack-independent) dominates. The
  // strict end-to-end speedup is asserted in ssp_accounting_test.
  EXPECT_LE(stall_s2, stall_s0) << "slack must not add gate stall";
}

INSTANTIATE_TEST_SUITE_P(SspEngines, SspPhaseDecompositionTest,
                         testing::Values("columnsgd", "petuum", "mxnet"));

// ---- exporter / reader round trip -----------------------------------------

TEST(TraceRoundTripTest, ExportedJsonParsesBackLosslessly) {
  Dataset data = TestData();
  auto engine = MakeEngine("columnsgd", Cluster(), Config());
  Tracer tracer;
  engine->set_tracer(&tracer);
  ASSERT_TRUE(engine->Setup(data).ok());
  ASSERT_TRUE(engine->RunIteration(0).ok());

  const std::string json = ChromeTraceJson(tracer);
  Result<ParsedTrace> parsed = ParseChromeTraceJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  // Every recorded event reappears (metadata lines are filtered out).
  ASSERT_EQ(parsed->events.size(), tracer.events().size());
  EXPECT_EQ(parsed->process_names.at(0), "master");
  EXPECT_EQ(parsed->process_names.at(1), "worker 0");

  uint64_t trace_bytes = 0, parsed_bytes = 0;
  for (const TraceEvent& event : tracer.events()) {
    if (std::string(event.name) == "net.send") trace_bytes += event.bytes;
  }
  for (size_t i = 0; i < parsed->events.size(); ++i) {
    const ParsedTraceEvent& event = parsed->events[i];
    const TraceEvent& original = tracer.events()[i];
    EXPECT_EQ(event.name, std::string(original.name));
    EXPECT_EQ(event.ph, original.ph);
    EXPECT_EQ(event.pid, original.node);
    EXPECT_NEAR(event.ts_us, original.ts * 1e6, 5e-7);
    if (event.name == "net.send") {
      parsed_bytes += event.ArgUint("bytes");
      EXPECT_EQ(event.ArgUint("to"), original.peer);
      EXPECT_EQ(event.ArgBool("control"), original.control);
    }
  }
  EXPECT_EQ(parsed_bytes, trace_bytes);
  EXPECT_EQ(trace_bytes, engine->runtime().net().TotalStats().bytes_sent);
}

TEST(TraceRoundTripTest, ReaderRejectsGarbage) {
  EXPECT_FALSE(ParseChromeTraceJson("not json").ok());
  EXPECT_FALSE(ParseChromeTraceJson("{\"traceEvents\":").ok());
}

}  // namespace
}  // namespace colsgd
