// Property tests for column partitioners: the (Owner, LocalIndex) mapping
// must be a bijection onto dense local slot ranges, for every partitioner
// and every (m, K) combination.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <tuple>

#include "storage/partitioner.h"

namespace colsgd {
namespace {

using PartitionerCase = std::tuple<std::string, uint64_t, int>;

class PartitionerPropertyTest
    : public ::testing::TestWithParam<PartitionerCase> {};

TEST_P(PartitionerPropertyTest, BijectionOntoDenseLocalSlots) {
  const auto& [name, m, k] = GetParam();
  auto partitioner = MakePartitioner(name, m, k);
  // Each (owner, local) pair must be hit exactly once, local indices must be
  // dense in [0, LocalDim(owner)), and GlobalIndex must invert the mapping.
  std::map<std::pair<int, uint64_t>, uint64_t> seen;
  for (uint64_t f = 0; f < m; ++f) {
    const int owner = partitioner->Owner(f);
    ASSERT_GE(owner, 0);
    ASSERT_LT(owner, k);
    const uint64_t local = partitioner->LocalIndex(f);
    ASSERT_LT(local, partitioner->LocalDim(owner))
        << name << " m=" << m << " k=" << k << " f=" << f;
    ASSERT_TRUE(seen.emplace(std::make_pair(owner, local), f).second)
        << "collision at worker " << owner << " slot " << local;
    ASSERT_EQ(partitioner->GlobalIndex(owner, local), f);
  }
  // LocalDims sum to m (all slots are used).
  uint64_t total = 0;
  for (int w = 0; w < k; ++w) total += partitioner->LocalDim(w);
  EXPECT_EQ(total, m);
}

INSTANTIATE_TEST_SUITE_P(
    AllPartitioners, PartitionerPropertyTest,
    ::testing::Combine(
        ::testing::Values("round_robin", "range", "block_cyclic_1",
                          "block_cyclic_3", "block_cyclic_64"),
        ::testing::Values<uint64_t>(1, 7, 64, 100, 1000, 1023),
        ::testing::Values(1, 2, 3, 8)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_m" +
             std::to_string(std::get<1>(info.param)) + "_k" +
             std::to_string(std::get<2>(info.param));
    });

TEST(PartitionerTest, RoundRobinLayout) {
  RoundRobinPartitioner p(10, 3);
  EXPECT_EQ(p.Owner(0), 0);
  EXPECT_EQ(p.Owner(4), 1);
  EXPECT_EQ(p.LocalIndex(7), 2u);
  // 10 features over 3 workers: worker 0 gets 4 (0,3,6,9), others 3.
  EXPECT_EQ(p.LocalDim(0), 4u);
  EXPECT_EQ(p.LocalDim(1), 3u);
  EXPECT_EQ(p.LocalDim(2), 3u);
}

TEST(PartitionerTest, RangeLayout) {
  RangePartitioner p(10, 3);  // stride ceil(10/3)=4
  EXPECT_EQ(p.Owner(0), 0);
  EXPECT_EQ(p.Owner(4), 1);
  EXPECT_EQ(p.Owner(9), 2);
  EXPECT_EQ(p.LocalDim(0), 4u);
  EXPECT_EQ(p.LocalDim(2), 2u);  // 8,9
}

TEST(PartitionerTest, BlockCyclicDegeneratesToRoundRobin) {
  BlockCyclicPartitioner cyclic(100, 4, 1);
  RoundRobinPartitioner rr(100, 4);
  for (uint64_t f = 0; f < 100; ++f) {
    EXPECT_EQ(cyclic.Owner(f), rr.Owner(f));
    EXPECT_EQ(cyclic.LocalIndex(f), rr.LocalIndex(f));
  }
}

TEST(PartitionerTest, FactoryRejectsUnknownName) {
  EXPECT_DEATH(MakePartitioner("bogus", 10, 2), "unknown partitioner");
}

TEST(PartitionerTest, FactoryNamesRoundTrip) {
  EXPECT_EQ(MakePartitioner("round_robin", 10, 2)->name(), "round_robin");
  EXPECT_EQ(MakePartitioner("range", 10, 2)->name(), "range");
  EXPECT_EQ(MakePartitioner("block_cyclic_16", 100, 2)->name(),
            "block_cyclic_16");
}

// Load-balance property motivating round-robin over range for skewed data:
// with popularity concentrated on low feature ids, round-robin spreads hot
// features evenly while range piles them on worker 0.
TEST(PartitionerTest, RoundRobinBalancesSkewedPopularity) {
  const uint64_t m = 1000;
  const int k = 4;
  RoundRobinPartitioner rr(m, k);
  RangePartitioner range(m, k);
  // Popularity weight of feature f: ~1/(f+1) (Zipf-ish).
  std::vector<double> rr_load(k, 0.0), range_load(k, 0.0);
  for (uint64_t f = 0; f < m; ++f) {
    const double w = 1.0 / static_cast<double>(f + 1);
    rr_load[rr.Owner(f)] += w;
    range_load[range.Owner(f)] += w;
  }
  auto imbalance = [&](const std::vector<double>& load) {
    double max = 0, sum = 0;
    for (double l : load) {
      max = std::max(max, l);
      sum += l;
    }
    return max / (sum / load.size());
  };
  EXPECT_LT(imbalance(rr_load), 1.5);
  EXPECT_GT(imbalance(range_load), 2.0);
}

}  // namespace
}  // namespace colsgd
