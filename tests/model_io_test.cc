// Tests for trained-model serialization.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "engine/model_io.h"

namespace colsgd {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(ModelIoTest, RoundTripGlm) {
  SavedModel model;
  model.model_name = "lr";
  model.num_features = 5;
  model.weights = {0.1, -0.2, 0.3, 0.0, 5.5};
  const std::string path = TempPath("lr_model.bin");
  ASSERT_TRUE(WriteModelFile(model, path).ok());
  auto loaded = ReadModelFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->model_name, "lr");
  EXPECT_EQ(loaded->num_features, 5u);
  EXPECT_EQ(loaded->weights, model.weights);
  EXPECT_TRUE(loaded->shared.empty());
  std::remove(path.c_str());
}

TEST(ModelIoTest, RoundTripWithSharedParams) {
  SavedModel model;
  model.model_name = "mlp2";
  model.num_features = 3;
  model.weights = {1, 2, 3, 4, 5, 6};  // 3 features x 2 hidden
  model.shared = {0.5, -0.5, 0.1, 0.2, 0.3};  // 2H+1 = 5
  const std::string path = TempPath("mlp_model.bin");
  ASSERT_TRUE(WriteModelFile(model, path).ok());
  auto loaded = ReadModelFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->shared, model.shared);
  std::remove(path.c_str());
}

TEST(ModelIoTest, RejectsWrongMagic) {
  const std::string path = TempPath("not_a_model.bin");
  std::ofstream out(path, std::ios::binary);
  out << "definitely not a model file, but long enough to read";
  out.close();
  auto loaded = ReadModelFile(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kSerializationError);
  std::remove(path.c_str());
}

TEST(ModelIoTest, RejectsInconsistentWeightCount) {
  SavedModel model;
  model.model_name = "fm2";  // needs 3 weights per feature
  model.num_features = 4;
  model.weights = {1, 2, 3};  // wrong: should be 12
  const std::string path = TempPath("bad_model.bin");
  ASSERT_TRUE(WriteModelFile(model, path).ok());
  auto loaded = ReadModelFile(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kSerializationError);
  std::remove(path.c_str());
}

TEST(ModelIoTest, RejectsTruncatedFile) {
  SavedModel model;
  model.model_name = "lr";
  model.num_features = 100;
  model.weights.assign(100, 1.0);
  const std::string path = TempPath("truncated_model.bin");
  ASSERT_TRUE(WriteModelFile(model, path).ok());
  // Truncate.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  out.close();
  EXPECT_FALSE(ReadModelFile(path).ok());
  std::remove(path.c_str());
}

TEST(ModelIoTest, MissingFileIsIOError) {
  EXPECT_TRUE(ReadModelFile("/no/such/model.bin").status().IsIOError());
}

TEST(ModelIoTest, SerializeParseRoundTripsInMemory) {
  SavedModel model;
  model.model_name = "lr";
  model.num_features = 4;
  model.weights = {0.25, -1.5, 0.0, 3.75};
  const std::vector<uint8_t> bytes = SerializeModel(model);
  auto parsed = ParseModel(bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->weights, model.weights);
  // Serialization is deterministic (the checkpoint fingerprint relies on
  // this).
  EXPECT_EQ(SerializeModel(model), bytes);
}

TEST(ModelIoTest, ChecksumCatchesEverySingleBitFlip) {
  SavedModel model;
  model.model_name = "lr";
  model.num_features = 3;
  model.weights = {1.0, -2.0, 0.5};
  const std::vector<uint8_t> clean = SerializeModel(model);
  // v2 format: the CRC32C trailer must reject a flip anywhere in the image
  // (header, payload, or the trailer itself) — this is the property the
  // checkpoint bit-rot fault leans on.
  for (size_t bit = 0; bit < clean.size() * 8; ++bit) {
    std::vector<uint8_t> damaged = clean;
    damaged[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    EXPECT_FALSE(ParseModel(damaged).ok()) << "bit " << bit;
  }
}

TEST(ModelIoTest, TornPrefixIsRejectedAtEveryLength) {
  SavedModel model;
  model.model_name = "lr";
  model.num_features = 8;
  model.weights.assign(8, 2.5);
  const std::vector<uint8_t> clean = SerializeModel(model);
  for (size_t len = 0; len < clean.size(); ++len) {
    const std::vector<uint8_t> torn(clean.begin(),
                                    clean.begin() + static_cast<long>(len));
    EXPECT_FALSE(ParseModel(torn).ok()) << "prefix length " << len;
  }
}

}  // namespace
}  // namespace colsgd
