// Tests for trained-model serialization.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "engine/model_io.h"

namespace colsgd {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(ModelIoTest, RoundTripGlm) {
  SavedModel model;
  model.model_name = "lr";
  model.num_features = 5;
  model.weights = {0.1, -0.2, 0.3, 0.0, 5.5};
  const std::string path = TempPath("lr_model.bin");
  ASSERT_TRUE(WriteModelFile(model, path).ok());
  auto loaded = ReadModelFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->model_name, "lr");
  EXPECT_EQ(loaded->num_features, 5u);
  EXPECT_EQ(loaded->weights, model.weights);
  EXPECT_TRUE(loaded->shared.empty());
  std::remove(path.c_str());
}

TEST(ModelIoTest, RoundTripWithSharedParams) {
  SavedModel model;
  model.model_name = "mlp2";
  model.num_features = 3;
  model.weights = {1, 2, 3, 4, 5, 6};  // 3 features x 2 hidden
  model.shared = {0.5, -0.5, 0.1, 0.2, 0.3};  // 2H+1 = 5
  const std::string path = TempPath("mlp_model.bin");
  ASSERT_TRUE(WriteModelFile(model, path).ok());
  auto loaded = ReadModelFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->shared, model.shared);
  std::remove(path.c_str());
}

TEST(ModelIoTest, RejectsWrongMagic) {
  const std::string path = TempPath("not_a_model.bin");
  std::ofstream out(path, std::ios::binary);
  out << "definitely not a model file, but long enough to read";
  out.close();
  auto loaded = ReadModelFile(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kSerializationError);
  std::remove(path.c_str());
}

TEST(ModelIoTest, RejectsInconsistentWeightCount) {
  SavedModel model;
  model.model_name = "fm2";  // needs 3 weights per feature
  model.num_features = 4;
  model.weights = {1, 2, 3};  // wrong: should be 12
  const std::string path = TempPath("bad_model.bin");
  ASSERT_TRUE(WriteModelFile(model, path).ok());
  auto loaded = ReadModelFile(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kSerializationError);
  std::remove(path.c_str());
}

TEST(ModelIoTest, RejectsTruncatedFile) {
  SavedModel model;
  model.model_name = "lr";
  model.num_features = 100;
  model.weights.assign(100, 1.0);
  const std::string path = TempPath("truncated_model.bin");
  ASSERT_TRUE(WriteModelFile(model, path).ok());
  // Truncate.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  out.close();
  EXPECT_FALSE(ReadModelFile(path).ok());
  std::remove(path.c_str());
}

TEST(ModelIoTest, MissingFileIsIOError) {
  EXPECT_TRUE(ReadModelFile("/no/such/model.bin").status().IsIOError());
}

}  // namespace
}  // namespace colsgd
