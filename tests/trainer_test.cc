// Tests for the training driver and result bookkeeping.
#include <gtest/gtest.h>

#include <cmath>

#include "datagen/synthetic.h"
#include "engine/columnsgd.h"
#include "engine/trainer.h"

namespace colsgd {
namespace {

Dataset SmallData() {
  SyntheticSpec spec = TinySpec();
  spec.num_rows = 1500;
  spec.num_features = 300;
  return GenerateSynthetic(spec);
}

ClusterSpec Cluster() {
  ClusterSpec spec = ClusterSpec::Cluster1();
  spec.num_workers = 4;
  return spec;
}

TrainConfig Config() {
  TrainConfig config;
  config.model = "lr";
  config.learning_rate = 1.0;
  config.batch_size = 100;
  config.block_rows = 128;
  return config;
}

TEST(TrainerTest, EvalCadenceFollowsEvalEvery) {
  Dataset d = SmallData();
  auto engine = MakeEngine("columnsgd", Cluster(), Config());
  RunOptions options;
  options.iterations = 10;
  options.eval_every = 4;
  TrainResult result = RunTraining(engine.get(), d, options);
  ASSERT_TRUE(result.status.ok());
  ASSERT_EQ(result.trace.size(), 10u);
  for (const auto& record : result.trace) {
    const bool should_eval =
        record.iteration % 4 == 0 || record.iteration == 9;  // last iter too
    EXPECT_EQ(!std::isnan(record.eval_loss), should_eval)
        << "iteration " << record.iteration;
  }
}

TEST(TrainerTest, RecordTraceFalseSkipsTrace) {
  Dataset d = SmallData();
  auto engine = MakeEngine("columnsgd", Cluster(), Config());
  RunOptions options;
  options.iterations = 5;
  options.record_trace = false;
  TrainResult result = RunTraining(engine.get(), d, options);
  ASSERT_TRUE(result.status.ok());
  EXPECT_TRUE(result.trace.empty());
  EXPECT_GT(result.avg_iter_time, 0.0);
}

TEST(TrainerTest, EngineNamePropagates) {
  Dataset d = SmallData();
  for (const char* name : {"columnsgd", "mllib", "petuum"}) {
    auto engine = MakeEngine(name, Cluster(), Config());
    RunOptions options;
    options.iterations = 1;
    TrainResult result = RunTraining(engine.get(), d, options);
    ASSERT_TRUE(result.status.ok());
    EXPECT_EQ(result.engine, engine->name());
  }
}

TEST(TrainerTest, SimTimeAtMasterNotLaggards) {
  // With 1-backup and a heavy straggler, trace times must track the master
  // (training progress), not the straggler's own clock.
  Dataset d = SmallData();
  // Baseline without stragglers.
  auto baseline = MakeEngine("columnsgd", Cluster(), Config());
  RunOptions options;
  options.iterations = 10;
  TrainResult base = RunTraining(baseline.get(), d, options);
  ASSERT_TRUE(base.status.ok());

  ColumnSgdOptions engine_options;
  engine_options.backup = 1;
  auto engine = std::make_unique<ColumnSgdEngine>(Cluster(), Config(),
                                                  std::move(engine_options));
  FaultPlanConfig plan;
  plan.seed = 3;
  plan.stragglers.mode = StragglerSpec::Mode::kRotating;
  plan.stragglers.level = 10.0;
  FaultConfig faults;
  faults.plan = FaultPlan(plan);
  engine->set_faults(faults);
  TrainResult result = RunTraining(engine.get(), d, options);
  ASSERT_TRUE(result.status.ok());
  EXPECT_LT(result.avg_iter_time, 1.5 * base.avg_iter_time);
}

TEST(TrainerTest, LoadTimeSeparatedFromTrainTime) {
  Dataset d = SmallData();
  auto engine = MakeEngine("columnsgd", Cluster(), Config());
  RunOptions options;
  options.iterations = 5;
  TrainResult result = RunTraining(engine.get(), d, options);
  ASSERT_TRUE(result.status.ok());
  EXPECT_GT(result.load_time, 0.0);
  // First trace point sits after load but within ~an iteration of it.
  EXPECT_GE(result.trace.front().sim_time, result.load_time);
}

TEST(TrainerTest, MessagesCountedPerIteration) {
  Dataset d = SmallData();
  auto engine = MakeEngine("columnsgd", Cluster(), Config());
  RunOptions options;
  options.iterations = 7;
  TrainResult result = RunTraining(engine.get(), d, options);
  ASSERT_TRUE(result.status.ok());
  // ColumnSGD: K commands + K stats + K broadcasts per iteration.
  EXPECT_EQ(result.messages, 7u * 3u * 4u);
}

TEST(EvaluateLossTest, CapsAtDatasetSize) {
  Dataset d = SmallData();
  auto model = MakeModel("lr");
  std::vector<double> weights(d.num_features, 0.0);
  const double capped = EvaluateLoss(*model, weights, d, 1u << 30);
  EXPECT_NEAR(capped, std::log(2.0), 1e-12);
}

}  // namespace
}  // namespace colsgd
