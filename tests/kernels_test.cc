// The executed kernel layer (DESIGN.md §18) and its calibration loop
// (DESIGN.md §12):
//  * scalar / simd / threaded modes are BITWISE-identical — on the raw
//    kernels (including empty rows, single-nnz rows, and dense columns) and
//    on end-to-end trained weights for every engine x model pair, under SSP
//    slack, and through the sharded serving path.
//  * the thread pool covers every index exactly once.
//  * calibration profiles round-trip through JSON and reject garbage.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "datagen/synthetic.h"
#include "engine/trainer.h"
#include "linalg/kernels/calibrate.h"
#include "linalg/kernels/kernels.h"
#include "linalg/kernels/thread_pool.h"
#include "model/factory.h"
#include "serve/inference.h"

namespace colsgd {
namespace {

using kernels::KernelMode;
using kernels::ScopedKernelMode;

constexpr KernelMode kAllModes[] = {KernelMode::kScalar, KernelMode::kSimd,
                                    KernelMode::kThreaded};

// ---- Mode plumbing -------------------------------------------------------

TEST(KernelModeTest, ParseRoundTripsEveryMode) {
  for (KernelMode mode : kAllModes) {
    KernelMode parsed = KernelMode::kScalar;
    EXPECT_TRUE(kernels::ParseKernelMode(kernels::KernelModeName(mode),
                                         &parsed));
    EXPECT_EQ(parsed, mode);
  }
}

TEST(KernelModeTest, ParseRejectsUnknownNamesUntouched) {
  KernelMode mode = KernelMode::kSimd;
  EXPECT_FALSE(kernels::ParseKernelMode("avx512", &mode));
  EXPECT_FALSE(kernels::ParseKernelMode("", &mode));
  EXPECT_FALSE(kernels::ParseKernelMode("Scalar", &mode));
  EXPECT_EQ(mode, KernelMode::kSimd);
}

TEST(KernelModeTest, ScopedModeRestores) {
  kernels::SetMode(KernelMode::kScalar);
  {
    ScopedKernelMode scoped(KernelMode::kThreaded);
    EXPECT_EQ(kernels::CurrentMode(), KernelMode::kThreaded);
  }
  EXPECT_EQ(kernels::CurrentMode(), KernelMode::kScalar);
}

// ---- Raw kernel equivalence ----------------------------------------------

/// A batch exercising the shapes column partitioning produces: empty rows,
/// single-nnz rows, runs of short rows, and one fully dense column/row.
CsrBatch EdgeCaseBatch(uint64_t dim, uint64_t seed) {
  Rng rng(seed);
  CsrBatch batch;
  batch.AppendEmptyRow();  // empty shard slice
  {
    const uint32_t idx = static_cast<uint32_t>(dim / 2);
    const float val = 2.5f;
    batch.AppendRow(&idx, &val, 1);  // single-nnz row
  }
  {
    std::vector<uint32_t> idx(dim);  // dense row: every column occupied
    std::vector<float> val(dim);
    for (uint64_t f = 0; f < dim; ++f) {
      idx[f] = static_cast<uint32_t>(f);
      val[f] = static_cast<float>(rng.NextDouble() * 2.0 - 1.0);
    }
    batch.AppendRow(idx.data(), val.data(), idx.size());
  }
  for (int i = 0; i < 61; ++i) {  // odd count: partial thread-pool chunks
    std::vector<uint32_t> idx;
    std::vector<float> val;
    const int nnz = 1 + static_cast<int>(rng.NextDouble() * 9.0);
    uint32_t f = static_cast<uint32_t>(rng.NextDouble() * 7.0);
    for (int j = 0; j < nnz && f < dim; ++j) {
      idx.push_back(f);
      val.push_back(static_cast<float>(rng.NextDouble() * 2.0 - 1.0));
      f += 1 + static_cast<uint32_t>(rng.NextDouble() * (dim / nnz));
    }
    batch.AppendRow(idx.data(), val.data(), idx.size());
  }
  batch.AppendEmptyRow();
  return batch;
}

std::vector<SparseVectorView> Views(const CsrBatch& batch) {
  std::vector<SparseVectorView> rows;
  for (size_t i = 0; i < batch.num_rows(); ++i) rows.push_back(batch.Row(i));
  return rows;
}

std::vector<double> DenseModel(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> model(n);
  for (double& w : model) w = rng.NextDouble() * 2.0 - 1.0;
  return model;
}

TEST(KernelEquivalenceTest, SpmvRowsBitwiseAcrossModes) {
  const uint64_t dim = 257;
  const CsrBatch batch = EdgeCaseBatch(dim, 11);
  const std::vector<SparseVectorView> rows = Views(batch);
  const std::vector<double> model = DenseModel(dim, 5);

  std::vector<double> scalar_out(rows.size(), 0.125);
  {
    ScopedKernelMode scoped(KernelMode::kScalar);
    kernels::SpmvRows(rows.data(), rows.size(), model.data(),
                      scalar_out.data());
  }
  for (KernelMode mode : {KernelMode::kSimd, KernelMode::kThreaded}) {
    std::vector<double> out(rows.size(), 0.125);
    ScopedKernelMode scoped(mode);
    kernels::SpmvRows(rows.data(), rows.size(), model.data(), out.data());
    EXPECT_EQ(out, scalar_out) << kernels::KernelModeName(mode);
  }
  // Empty rows add exactly nothing, preserving the accumulator seed.
  EXPECT_EQ(scalar_out.front(), 0.125);
  EXPECT_EQ(scalar_out.back(), 0.125);
}

TEST(KernelEquivalenceTest, SpmvRowsMultiBitwiseAcrossModes) {
  const uint64_t dim = 97;
  const int C = 5;
  const CsrBatch batch = EdgeCaseBatch(dim, 23);
  const std::vector<SparseVectorView> rows = Views(batch);
  const std::vector<double> model = DenseModel(dim * C, 7);

  std::vector<double> scalar_out(rows.size() * C, 0.0);
  {
    ScopedKernelMode scoped(KernelMode::kScalar);
    kernels::SpmvRowsMulti(rows.data(), rows.size(), C, model.data(),
                           scalar_out.data());
  }
  for (KernelMode mode : {KernelMode::kSimd, KernelMode::kThreaded}) {
    std::vector<double> out(rows.size() * C, 0.0);
    ScopedKernelMode scoped(mode);
    kernels::SpmvRowsMulti(rows.data(), rows.size(), C, model.data(),
                           out.data());
    EXPECT_EQ(out, scalar_out) << kernels::KernelModeName(mode);
  }
}

TEST(KernelEquivalenceTest, FmForwardRowsBitwiseAcrossModes) {
  const uint64_t dim = 67;
  const int F = 4;
  const int wpf = 1 + F;
  const CsrBatch batch = EdgeCaseBatch(dim, 31);
  const std::vector<SparseVectorView> rows = Views(batch);
  const std::vector<double> model = DenseModel(dim * wpf, 9);

  std::vector<double> scalar_out(rows.size() * wpf, 0.0);
  {
    ScopedKernelMode scoped(KernelMode::kScalar);
    kernels::FmForwardRows(rows.data(), rows.size(), F, model.data(),
                           scalar_out.data());
  }
  for (KernelMode mode : {KernelMode::kSimd, KernelMode::kThreaded}) {
    std::vector<double> out(rows.size() * wpf, 0.0);
    ScopedKernelMode scoped(mode);
    kernels::FmForwardRows(rows.data(), rows.size(), F, model.data(),
                           out.data());
    EXPECT_EQ(out, scalar_out) << kernels::KernelModeName(mode);
  }
}

TEST(KernelEquivalenceTest, SparseDotMatchesOrderedReference) {
  const uint64_t dim = 129;
  const CsrBatch batch = EdgeCaseBatch(dim, 41);
  const std::vector<double> model = DenseModel(dim, 3);
  for (size_t i = 0; i < batch.num_rows(); ++i) {
    const SparseVectorView row = batch.Row(i);
    double reference = 0.0;  // the ascending-index chain every mode must hit
    for (size_t j = 0; j < row.nnz; ++j) {
      reference += model[row.indices[j]] * static_cast<double>(row.values[j]);
    }
    for (KernelMode mode : kAllModes) {
      ScopedKernelMode scoped(mode);
      EXPECT_EQ(kernels::SparseDot(row.indices, row.values, row.nnz,
                                   model.data()),
                reference);
    }
  }
}

TEST(KernelEquivalenceTest, DenseKernelsBitwiseAcrossModes) {
  const size_t n = 10001;  // odd: exercises partial simd/threaded tails
  const std::vector<double> in = DenseModel(n, 13);
  std::vector<double> scalar_add = DenseModel(n, 17);
  std::vector<double> scalar_axpy = scalar_add;
  double scalar_dot;
  {
    ScopedKernelMode scoped(KernelMode::kScalar);
    kernels::DenseAdd(in.data(), scalar_add.data(), n);
    kernels::DenseAxpy(-0.75, in.data(), scalar_axpy.data(), n);
    scalar_dot = kernels::DenseDot(in.data(), scalar_axpy.data(), n);
  }
  for (KernelMode mode : {KernelMode::kSimd, KernelMode::kThreaded}) {
    ScopedKernelMode scoped(mode);
    std::vector<double> add = DenseModel(n, 17);
    std::vector<double> axpy = add;
    kernels::DenseAdd(in.data(), add.data(), n);
    kernels::DenseAxpy(-0.75, in.data(), axpy.data(), n);
    EXPECT_EQ(add, scalar_add) << kernels::KernelModeName(mode);
    EXPECT_EQ(axpy, scalar_axpy) << kernels::KernelModeName(mode);
    EXPECT_EQ(kernels::DenseDot(in.data(), axpy.data(), n), scalar_dot);
  }
}

TEST(KernelEquivalenceTest, ScatterRowPreservesTouchOrder) {
  // GradAccumulator's observable state includes first-touch order, so the
  // scatter must visit indices in ascending nnz order in every mode.
  struct OrderLoggingAcc {
    std::vector<std::pair<uint64_t, double>> touches;
    void Add(uint64_t slot, double value) { touches.emplace_back(slot, value); }
  };
  const uint32_t idx[] = {7, 3, 9, 3};  // duplicates stay in appearance order
  const float val[] = {1.0f, 2.0f, 3.0f, 4.0f};
  SparseVectorView row{idx, val, 4};
  OrderLoggingAcc reference;
  kernels::ScatterRow(row, 0.5, &reference);
  ASSERT_EQ(reference.touches.size(), 4u);
  EXPECT_EQ(reference.touches[0].first, 7u);
  EXPECT_EQ(reference.touches[3].second, 2.0);
  for (KernelMode mode : kAllModes) {
    ScopedKernelMode scoped(mode);
    OrderLoggingAcc acc;
    kernels::ScatterRow(row, 0.5, &acc);
    EXPECT_EQ(acc.touches, reference.touches);
    const double coeffs[] = {0.5, -1.5};
    OrderLoggingAcc multi;
    kernels::ScatterRowMulti(row, coeffs, 2, &multi);
    ASSERT_EQ(multi.touches.size(), 8u);
    EXPECT_EQ(multi.touches[0].first, 14u);  // idx 7 * C + class 0
    EXPECT_EQ(multi.touches[1].first, 15u);
  }
}

// ---- Thread pool ----------------------------------------------------------

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  kernels::ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3);
  for (size_t n : {0ul, 1ul, 7ul, 64ul, 1000ul}) {
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h.store(0);
    pool.ParallelFor(n, 16, [&](size_t begin, size_t end) {
      ASSERT_LE(begin, end);
      ASSERT_LE(end, n);
      for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
    });
    for (size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPoolTest, GrainBelowOneIsClamped) {
  kernels::ThreadPool pool(2);
  std::atomic<size_t> total{0};
  pool.ParallelFor(37, 0, [&](size_t begin, size_t end) {
    total.fetch_add(end - begin);
  });
  EXPECT_EQ(total.load(), 37u);
}

TEST(ThreadPoolTest, ReusableAcrossJobs) {
  kernels::ThreadPool pool(2);
  for (int job = 0; job < 50; ++job) {
    std::atomic<size_t> total{0};
    pool.ParallelFor(100 + job, 8, [&](size_t begin, size_t end) {
      total.fetch_add(end - begin);
    });
    ASSERT_EQ(total.load(), static_cast<size_t>(100 + job));
  }
}

// ---- End-to-end: trained weights across modes -----------------------------

Dataset TrainData(const std::string& model_name) {
  SyntheticSpec spec = TinySpec();
  spec.num_rows = 1200;
  spec.num_features = 203;
  if (model_name.rfind("mlr", 0) == 0) {
    spec.num_classes = std::stoi(model_name.substr(3));
  }
  return GenerateSynthetic(spec);
}

struct TrainOutcome {
  std::vector<double> weights;
  double last_loss = 0.0;
};

TrainOutcome TrainUnderMode(const std::string& engine_name,
                            const std::string& model_name, KernelMode mode,
                            int ssp_slack) {
  ScopedKernelMode scoped(mode);
  Dataset d = TrainData(model_name);
  ClusterSpec cluster = ClusterSpec::Cluster1();
  cluster.num_workers = 4;
  TrainConfig config;
  config.model = model_name;
  config.learning_rate = 0.3;
  config.batch_size = 48;
  config.block_rows = 64;
  if (ssp_slack >= 0) {
    config.ssp.enabled = true;
    config.ssp.slack = ssp_slack;
    config.ssp.compute_jitter = 0.3;
  }
  std::unique_ptr<Engine> engine = MakeEngine(engine_name, cluster, config);
  EXPECT_TRUE(engine->Setup(d).ok());
  for (int i = 0; i < 6; ++i) EXPECT_TRUE(engine->RunIteration(i).ok());
  EXPECT_TRUE(engine->FinishTraining().ok());
  return TrainOutcome{engine->FullModel(), engine->last_batch_loss()};
}

class KernelModeTrainingTest
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {};

TEST_P(KernelModeTrainingTest, TrainedWeightsBitwiseIdenticalAcrossModes) {
  const auto& [engine_name, model_name] = GetParam();
  const TrainOutcome scalar =
      TrainUnderMode(engine_name, model_name, KernelMode::kScalar, -1);
  ASSERT_FALSE(scalar.weights.empty());
  for (KernelMode mode : {KernelMode::kSimd, KernelMode::kThreaded}) {
    const TrainOutcome other =
        TrainUnderMode(engine_name, model_name, mode, -1);
    EXPECT_EQ(other.weights, scalar.weights)
        << engine_name << "/" << model_name << " under "
        << kernels::KernelModeName(mode);
    EXPECT_EQ(other.last_loss, scalar.last_loss);
  }
}

INSTANTIATE_TEST_SUITE_P(
    EnginesAndModels, KernelModeTrainingTest,
    ::testing::Values(std::make_tuple("columnsgd", "lr"),
                      std::make_tuple("columnsgd", "svm"),
                      std::make_tuple("columnsgd", "lsq"),
                      std::make_tuple("columnsgd", "mlr3"),
                      std::make_tuple("columnsgd", "fm4"),
                      std::make_tuple("mllib", "lr"),
                      std::make_tuple("mllib", "mlr3"),
                      std::make_tuple("mllib_star", "lr"),
                      std::make_tuple("mllib_star", "fm4"),
                      std::make_tuple("petuum", "lr"),
                      std::make_tuple("petuum", "fm4"),
                      std::make_tuple("mxnet", "lr"),
                      std::make_tuple("mxnet", "mlr3")),
    [](const auto& info) {
      return std::get<0>(info.param) + "_" + std::get<1>(info.param);
    });

class KernelModeSspTest
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(KernelModeSspTest, SspScheduleUnchangedAcrossModes) {
  // Kernel modes change wall-clock execution only; the SSP schedule runs on
  // simulated time, so slack > 0 runs stay bitwise-stable too.
  const auto& [engine_name, slack] = GetParam();
  const TrainOutcome scalar =
      TrainUnderMode(engine_name, "lr", KernelMode::kScalar, slack);
  for (KernelMode mode : {KernelMode::kSimd, KernelMode::kThreaded}) {
    const TrainOutcome other =
        TrainUnderMode(engine_name, "lr", mode, slack);
    EXPECT_EQ(other.weights, scalar.weights)
        << engine_name << " slack=" << slack << " under "
        << kernels::KernelModeName(mode);
  }
}

INSTANTIATE_TEST_SUITE_P(
    EnginesAndSlack, KernelModeSspTest,
    ::testing::Values(std::make_tuple("columnsgd", 0),
                      std::make_tuple("columnsgd", 2),
                      std::make_tuple("petuum", 2),
                      std::make_tuple("mxnet", 1)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

// ---- Serving path ---------------------------------------------------------

TEST(KernelModeServingTest, ShardedScoresBitwiseIdenticalAcrossModes) {
  Dataset queries = TrainData("lr");
  SavedModel model;
  model.model_name = "lr";
  model.num_features = queries.num_features;
  model.weights = DenseModel(queries.num_features, 19);

  Result<DatasetScores> scalar = [&] {
    ScopedKernelMode scoped(KernelMode::kScalar);
    return ScoreDatasetSharded(model, "round_robin", 4, queries, 600);
  }();
  ASSERT_TRUE(scalar.ok());
  for (KernelMode mode : {KernelMode::kSimd, KernelMode::kThreaded}) {
    ScopedKernelMode scoped(mode);
    Result<DatasetScores> other =
        ScoreDatasetSharded(model, "round_robin", 4, queries, 600);
    ASSERT_TRUE(other.ok());
    EXPECT_EQ(other->scores, scalar->scores)
        << kernels::KernelModeName(mode);
    EXPECT_EQ(other->avg_loss, scalar->avg_loss);
  }
}

TEST(KernelModeServingTest, RangeShardsWithEmptySlicesStillMatch) {
  // Range partitioning a low-dimensional model over many shards leaves some
  // shards with nearly-empty slices — the empty-shard serving edge case.
  SyntheticSpec spec = TinySpec();
  spec.num_rows = 300;
  spec.num_features = 13;
  Dataset queries = GenerateSynthetic(spec);
  SavedModel model;
  model.model_name = "svm";
  model.num_features = queries.num_features;
  model.weights = DenseModel(queries.num_features, 29);

  Result<DatasetScores> scalar = [&] {
    ScopedKernelMode scoped(KernelMode::kScalar);
    return ScoreDatasetSharded(model, "range", 8, queries, 300);
  }();
  ASSERT_TRUE(scalar.ok());
  for (KernelMode mode : {KernelMode::kSimd, KernelMode::kThreaded}) {
    ScopedKernelMode scoped(mode);
    Result<DatasetScores> other =
        ScoreDatasetSharded(model, "range", 8, queries, 300);
    ASSERT_TRUE(other.ok());
    EXPECT_EQ(other->scores, scalar->scores);
  }
}

// ---- Calibration ----------------------------------------------------------

kernels::CalibrationProfile SampleProfile() {
  kernels::CalibrationProfile p;
  p.kernel_mode = "simd";
  p.ns_per_nnz_fwd = 1.25;
  p.ns_per_nnz_grad = 2.5;
  p.ns_per_element_dense = 0.5;
  p.ns_per_element_update = 0.75;
  p.flops_per_second = 3.2e9;
  p.mem_bandwidth_bytes_per_s = 2.1e10;
  return p;
}

TEST(CalibrationProfileTest, JsonRoundTripIsExact) {
  const kernels::CalibrationProfile p = SampleProfile();
  const std::string text = kernels::SerializeCalibrationProfile(p);
  Result<kernels::CalibrationProfile> parsed =
      kernels::ParseCalibrationProfile(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->schema, p.schema);
  EXPECT_EQ(parsed->kernel_mode, p.kernel_mode);
  EXPECT_EQ(parsed->ns_per_nnz_fwd, p.ns_per_nnz_fwd);
  EXPECT_EQ(parsed->ns_per_nnz_grad, p.ns_per_nnz_grad);
  EXPECT_EQ(parsed->ns_per_element_dense, p.ns_per_element_dense);
  EXPECT_EQ(parsed->ns_per_element_update, p.ns_per_element_update);
  EXPECT_EQ(parsed->flops_per_second, p.flops_per_second);
  EXPECT_EQ(parsed->mem_bandwidth_bytes_per_s, p.mem_bandwidth_bytes_per_s);
  // Serialization is deterministic: same profile, same bytes.
  EXPECT_EQ(kernels::SerializeCalibrationProfile(*parsed), text);
}

TEST(CalibrationProfileTest, RejectsWrongSchemaAndBadRates) {
  kernels::CalibrationProfile p = SampleProfile();
  p.schema = "colsgd.kernelcal/v0";
  EXPECT_FALSE(
      kernels::ParseCalibrationProfile(kernels::SerializeCalibrationProfile(p))
          .ok());
  p = SampleProfile();
  p.flops_per_second = 0.0;
  EXPECT_FALSE(p.Valid());
  EXPECT_FALSE(
      kernels::ParseCalibrationProfile(kernels::SerializeCalibrationProfile(p))
          .ok());
  EXPECT_FALSE(kernels::ParseCalibrationProfile("not json").ok());
  EXPECT_FALSE(kernels::ParseCalibrationProfile("{}").ok());
}

TEST(CalibrationProfileTest, FileRoundTripAndMissingFile) {
  const std::string path = ::testing::TempDir() + "/kernelcal.json";
  const kernels::CalibrationProfile p = SampleProfile();
  ASSERT_TRUE(kernels::SaveCalibrationProfile(p, path).ok());
  Result<kernels::CalibrationProfile> loaded =
      kernels::LoadCalibrationProfile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->flops_per_second, p.flops_per_second);
  std::remove(path.c_str());
  EXPECT_FALSE(kernels::LoadCalibrationProfile(path).ok());
}

TEST(CalibrationProfileTest, ComputeModelChargesAtCalibratedRate) {
  const kernels::CalibrationProfile p = SampleProfile();
  const ComputeModel model = kernels::ComputeModelFromCalibration(p);
  EXPECT_EQ(model.flops_per_second, p.flops_per_second);
  EXPECT_DOUBLE_EQ(model.SecondsFor(3'200'000'000ull), 1.0);
}

TEST(KernelCalibratorTest, TinyRunProducesValidProfile) {
  kernels::CalibratorOptions options;
  options.rows = 64;
  options.features = 512;
  options.nnz_per_row = 8;
  options.dense_elements = 4096;
  options.repeats = 1;
  options.inner_iters = 1;
  const kernels::KernelCalibrator calibrator(options);
  for (KernelMode mode : kAllModes) {
    const kernels::CalibrationProfile profile = calibrator.Run(mode);
    EXPECT_TRUE(profile.Valid()) << kernels::KernelModeName(mode);
    EXPECT_EQ(profile.kernel_mode, kernels::KernelModeName(mode));
  }
  // The counted-FLOP convention: 4 per nnz of the fused GLM iteration.
  EXPECT_EQ(calibrator.FusedIterationFlops(), 64u * 8u * 4u);
  EXPECT_EQ(calibrator.FusedIterationFlopsFor(128), 128u * 8u * 4u);
  EXPECT_GT(calibrator.MeasureFusedIterationSeconds(KernelMode::kScalar, 64),
            0.0);
}

}  // namespace
}  // namespace colsgd
