// Update-accounting and staleness-bound properties of bounded-staleness
// (SSP) execution (DESIGN.md §15):
//  * exactly-once: across seeded interleavings with stragglers and crashes,
//    every gradient update is applied exactly once — counted sends equal
//    counted applies, per consumer per logical clock tick;
//  * staleness bound: no consumer ever reads model state more than `slack`
//    ticks behind its own clock, swept over the Fig. 9 slack / straggler
//    grid;
//  * determinism: the same seed replays bit-identically (weights, clocks,
//    and the full accounting matrices).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "datagen/synthetic.h"
#include "engine/columnsgd.h"
#include "engine/ps.h"
#include "engine/trainer.h"

namespace colsgd {
namespace {

constexpr int kWorkers = 4;
constexpr int64_t kIterations = 16;

Dataset TestData() {
  SyntheticSpec spec = TinySpec();
  spec.num_rows = 1200;
  spec.num_features = 211;
  return GenerateSynthetic(spec);
}

ClusterSpec Cluster() {
  ClusterSpec spec = ClusterSpec::Cluster1();
  spec.num_workers = kWorkers;
  return spec;
}

TrainConfig SspConfigFor(int slack) {
  TrainConfig config;
  config.model = "lr";
  config.learning_rate = 0.3;
  config.batch_size = 48;
  config.block_rows = 128;
  config.ssp.enabled = true;
  config.ssp.slack = slack;
  return config;
}

std::unique_ptr<Engine> MakeSspEngine(const std::string& name,
                                      const TrainConfig& config) {
  if (name == "columnsgd") {
    return std::make_unique<ColumnSgdEngine>(Cluster(), config);
  }
  PsOptions options;
  options.sparse_pull = name == "mxnet";
  return std::make_unique<PsEngine>(Cluster(), config, options);
}

struct SspRun {
  std::vector<double> weights;
  SspAccounting accounting;
  double max_clock = 0.0;
  double train_time = 0.0;
};

SspRun RunSsp(const std::string& engine_name, const TrainConfig& config,
              const FaultConfig& faults, const Dataset& d) {
  auto engine = MakeSspEngine(engine_name, config);
  EXPECT_TRUE(engine->set_faults(faults).ok());
  EXPECT_TRUE(engine->Setup(d).ok());
  RunOptions options;
  options.iterations = kIterations;
  const TrainResult result = RunTraining(engine.get(), d, options);
  EXPECT_TRUE(result.status.ok()) << result.status.ToString();
  SspRun run;
  run.weights = engine->FullModel();
  run.accounting = engine->ssp_accounting();
  run.max_clock = engine->runtime().MaxClock();
  run.train_time = result.train_time;
  return run;
}

FaultConfig StragglerFaults(uint64_t seed, double level) {
  FaultPlanConfig plan;
  plan.seed = seed;
  if (level > 0.0) {
    plan.stragglers.mode = StragglerSpec::Mode::kRotating;
    plan.stragglers.level = level;
  }
  FaultConfig faults;
  faults.plan = FaultPlan(plan);
  return faults;
}

void ExpectExactlyOnce(const SspAccounting& acc, int64_t iterations) {
  EXPECT_EQ(acc.updates_sent, acc.updates_applied);
  ASSERT_FALSE(acc.sent.empty());
  ASSERT_EQ(acc.sent.size(), acc.applied.size());
  for (size_t c = 0; c < acc.sent.size(); ++c) {
    ASSERT_EQ(acc.sent[c].size(), static_cast<size_t>(iterations));
    ASSERT_EQ(acc.applied[c].size(), static_cast<size_t>(iterations));
    for (int64_t t = 0; t < iterations; ++t) {
      EXPECT_EQ(acc.sent[c][t], 1)
          << "consumer " << c << " tick " << t << ": duplicate/lost send";
      EXPECT_EQ(acc.applied[c][t], 1)
          << "consumer " << c << " tick " << t << ": update applied "
          << acc.applied[c][t] << " times";
    }
  }
}

class SspAccountingTest
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

// Every update is applied exactly once, per consumer per clock tick, for
// each (engine, slack) over a spread of seeds and straggler intensities —
// the seeds vary the message timing (and hence the realized interleavings).
TEST_P(SspAccountingTest, ExactlyOnceAcrossSeededInterleavings) {
  const auto& [engine_name, slack] = GetParam();
  const Dataset d = TestData();
  for (uint64_t seed : {0u, 1u, 2u, 3u}) {
    for (double level : {0.0, 5.0}) {
      TrainConfig config = SspConfigFor(slack);
      config.seed = 100 + seed;
      config.ssp.compute_jitter = 0.5;  // desynchronize the workers
      const SspRun run =
          RunSsp(engine_name, config, StragglerFaults(seed, level), d);
      ExpectExactlyOnce(run.accounting, kIterations);
    }
  }
}

// The staleness-bound invariant over the Fig. 9 grid: whatever the
// straggler pattern, no consumer reads state older than `slack` ticks
// behind its own clock. (The engines CHECK-fail on a violation; the
// assertion here pins the exported accounting too.)
TEST_P(SspAccountingTest, StalenessNeverExceedsSlack) {
  const auto& [engine_name, slack] = GetParam();
  const Dataset d = TestData();
  for (double level : {0.0, 1.0, 5.0}) {
    TrainConfig config = SspConfigFor(slack);
    const SspRun run =
        RunSsp(engine_name, config, StragglerFaults(11, level), d);
    EXPECT_LE(run.accounting.max_staleness_observed, slack)
        << engine_name << " slack=" << slack << " L=" << level;
    if (slack == 0) {
      EXPECT_EQ(run.accounting.stale_reads, 0);
    }
  }
}

// Same seed, same slack => bit-identical weights, clocks, and accounting.
TEST_P(SspAccountingTest, DoubleRunIsBitIdentical) {
  const auto& [engine_name, slack] = GetParam();
  const Dataset d = TestData();
  TrainConfig config = SspConfigFor(slack);
  config.ssp.compute_jitter = 0.5;
  const FaultConfig faults = StragglerFaults(3, 5.0);
  const SspRun a = RunSsp(engine_name, config, faults, d);
  const SspRun b = RunSsp(engine_name, config, faults, d);
  EXPECT_EQ(a.weights, b.weights);
  EXPECT_EQ(a.max_clock, b.max_clock);
  EXPECT_EQ(a.train_time, b.train_time);
  EXPECT_EQ(a.accounting.updates_sent, b.accounting.updates_sent);
  EXPECT_EQ(a.accounting.updates_applied, b.accounting.updates_applied);
  EXPECT_EQ(a.accounting.max_staleness_observed,
            b.accounting.max_staleness_observed);
  EXPECT_EQ(a.accounting.stale_reads, b.accounting.stale_reads);
  EXPECT_EQ(a.accounting.sent, b.accounting.sent);
  EXPECT_EQ(a.accounting.applied, b.accounting.applied);
}

// Crashes are fenced by a pipeline drain, so recovery (including checkpoint
// restore) never loses or double-applies an in-flight update.
TEST_P(SspAccountingTest, ExactlyOnceAcrossCrashesAndCheckpoints) {
  const auto& [engine_name, slack] = GetParam();
  const Dataset d = TestData();
  FaultPlanConfig plan;
  plan.seed = 5;
  plan.stragglers.mode = StragglerSpec::Mode::kRotating;
  plan.stragglers.level = 3.0;
  plan.scripted.push_back({/*iteration=*/6, /*worker=*/1,
                           FaultKind::kWorkerFailure});
  plan.scripted.push_back({/*iteration=*/11, /*worker=*/2,
                           FaultKind::kWorkerFailure});
  FaultConfig faults;
  faults.plan = FaultPlan(plan);
  faults.checkpoint.every = 4;

  TrainConfig config = SspConfigFor(slack);
  const SspRun run = RunSsp(engine_name, config, faults, d);
  ExpectExactlyOnce(run.accounting, kIterations);
  EXPECT_LE(run.accounting.max_staleness_observed, slack);
  EXPECT_GT(run.accounting.drains, 0);
}

INSTANTIATE_TEST_SUITE_P(
    EnginesAndSlack, SspAccountingTest,
    ::testing::Combine(::testing::Values("columnsgd", "petuum", "mxnet"),
                       ::testing::Values(0, 1, 2, 4)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

// With slack and stragglers the pipeline must actually run ahead — the gate
// binds, stale reads happen (and stay within the bound). Guards against an
// implementation that silently degenerates to BSP.
TEST(SspAccountingTest, SlackIsActuallyUsedUnderStragglers) {
  const Dataset d = TestData();
  for (const std::string engine_name : {"columnsgd", "petuum"}) {
    TrainConfig config = SspConfigFor(4);
    const SspRun run =
        RunSsp(engine_name, config, StragglerFaults(1, 5.0), d);
    EXPECT_GT(run.accounting.stale_reads, 0) << engine_name;
    EXPECT_GE(run.accounting.max_staleness_observed, 1) << engine_name;
  }
}

// SSP's reason to exist: under rotating stragglers, slack should recover a
// large part of the straggler-induced slowdown relative to slack = 0.
TEST(SspAccountingTest, SlackRecoversStragglerTime) {
  const Dataset d = TestData();
  TrainConfig config0 = SspConfigFor(0);
  TrainConfig config4 = SspConfigFor(4);
  const FaultConfig faults = StragglerFaults(1, 5.0);
  const SspRun bsp_like = RunSsp("columnsgd", config0, faults, d);
  const SspRun pipelined = RunSsp("columnsgd", config4, faults, d);
  EXPECT_LT(pipelined.train_time, bsp_like.train_time);
}

}  // namespace
}  // namespace colsgd
