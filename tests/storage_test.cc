// Tests for storage/: datasets, row blocks, libsvm IO, worksets, and the
// two-phase mini-batch sampler.
#include <gtest/gtest.h>

#include <cstdio>

#include "datagen/synthetic.h"
#include "storage/dataset.h"
#include "storage/libsvm.h"
#include "storage/sampler.h"
#include "storage/workset.h"

namespace colsgd {
namespace {

Dataset SmallDataset() {
  Dataset d;
  d.num_features = 6;
  SparseRow r1;
  r1.Push(0, 1.0f);
  r1.Push(5, -2.0f);
  d.rows.AppendRow(r1);
  d.labels.push_back(1.0f);
  SparseRow r2;
  r2.Push(2, 0.5f);
  d.rows.AppendRow(r2);
  d.labels.push_back(-1.0f);
  SparseRow r3;
  r3.Push(1, 3.0f);
  r3.Push(3, 4.0f);
  r3.Push(4, 5.0f);
  d.rows.AppendRow(r3);
  d.labels.push_back(1.0f);
  return d;
}

TEST(DatasetTest, BasicStats) {
  Dataset d = SmallDataset();
  EXPECT_EQ(d.num_rows(), 3u);
  EXPECT_EQ(d.nnz(), 6u);
  EXPECT_DOUBLE_EQ(d.AvgNnzPerRow(), 2.0);
  EXPECT_NEAR(d.Sparsity(), 1.0 - 6.0 / 18.0, 1e-12);
}

TEST(DatasetTest, EmptyDatasetSparsity) {
  Dataset d;
  EXPECT_DOUBLE_EQ(d.Sparsity(), 1.0);
  EXPECT_DOUBLE_EQ(d.AvgNnzPerRow(), 0.0);
}

TEST(MakeRowBlocksTest, SplitsRowsWithConsecutiveIds) {
  Dataset d = SmallDataset();
  std::vector<RowBlock> blocks = MakeRowBlocks(d, 2);
  ASSERT_EQ(blocks.size(), 2u);
  EXPECT_EQ(blocks[0].block_id, 0u);
  EXPECT_EQ(blocks[1].block_id, 1u);
  EXPECT_EQ(blocks[0].num_rows(), 2u);
  EXPECT_EQ(blocks[1].num_rows(), 1u);
  EXPECT_GT(blocks[0].text_bytes, 0u);
  // Content preserved.
  EXPECT_EQ(blocks[1].rows.Row(0).nnz, 3u);
  EXPECT_EQ(blocks[1].labels[0], 1.0f);
}

TEST(MakeRowBlocksTest, SingleBlockWhenBlockRowsLarge) {
  Dataset d = SmallDataset();
  std::vector<RowBlock> blocks = MakeRowBlocks(d, 100);
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0].num_rows(), 3u);
}

TEST(LibsvmTest, ParsesOneBasedIndices) {
  auto result = ParseLibsvm("+1 1:0.5 3:2\n-1 2:1\n");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Dataset& d = *result;
  EXPECT_EQ(d.num_rows(), 2u);
  EXPECT_EQ(d.num_features, 3u);
  EXPECT_EQ(d.labels[0], 1.0f);
  EXPECT_EQ(d.labels[1], -1.0f);
  EXPECT_EQ(d.rows.Row(0).indices[0], 0u);  // 1-based -> 0-based
  EXPECT_EQ(d.rows.Row(0).indices[1], 2u);
  EXPECT_EQ(d.rows.Row(1).values[0], 1.0f);
}

TEST(LibsvmTest, SkipsCommentsAndBlankLines) {
  auto result = ParseLibsvm("# header\n\n+1 1:1\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 1u);
}

TEST(LibsvmTest, RejectsMalformedPair) {
  EXPECT_FALSE(ParseLibsvm("+1 3-0.5\n").ok());
  EXPECT_FALSE(ParseLibsvm("+1 3:\n").ok());
  EXPECT_FALSE(ParseLibsvm("notalabel 1:1\n").ok());
}

TEST(LibsvmTest, RejectsIndexZeroInOneBasedMode) {
  EXPECT_FALSE(ParseLibsvm("+1 0:1\n", /*zero_based=*/false).ok());
  EXPECT_TRUE(ParseLibsvm("+1 0:1\n", /*zero_based=*/true).ok());
}

TEST(LibsvmTest, ExpectedFeaturesOverride) {
  auto result = ParseLibsvm("+1 2:1\n", false, 10);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_features, 10u);
  EXPECT_FALSE(ParseLibsvm("+1 20:1\n", false, 10).ok());
}

TEST(LibsvmTest, FileRoundTrip) {
  Dataset d = SmallDataset();
  const std::string path = ::testing::TempDir() + "/colsgd_libsvm_test.txt";
  ASSERT_TRUE(WriteLibsvmFile(d, path).ok());
  auto result = ReadLibsvmFile(path);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_rows(), d.num_rows());
  EXPECT_EQ(result->num_features, d.num_features);
  for (size_t i = 0; i < d.num_rows(); ++i) {
    ASSERT_EQ(result->rows.Row(i).nnz, d.rows.Row(i).nnz);
    EXPECT_EQ(result->labels[i], d.labels[i]);
    for (size_t j = 0; j < d.rows.Row(i).nnz; ++j) {
      EXPECT_EQ(result->rows.Row(i).indices[j], d.rows.Row(i).indices[j]);
      EXPECT_EQ(result->rows.Row(i).values[j], d.rows.Row(i).values[j]);
    }
  }
  std::remove(path.c_str());
}

TEST(LibsvmTest, MissingFileIsIOError) {
  EXPECT_TRUE(ReadLibsvmFile("/no/such/file").status().IsIOError());
}

TEST(WorksetTest, SerializationRoundTrip) {
  Workset w;
  w.block_id = 42;
  w.labels = {1.0f, -1.0f};
  SparseRow r;
  r.Push(3, 0.5f);
  w.shard.AppendRow(r);
  w.shard.AppendEmptyRow();

  std::vector<uint8_t> wire = w.Serialize();
  EXPECT_EQ(wire.size(), w.SerializedSize());
  auto result = Workset::Deserialize(wire.data(), wire.size());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->block_id, 42u);
  EXPECT_EQ(result->labels, w.labels);
  ASSERT_EQ(result->shard.num_rows(), 2u);
  EXPECT_EQ(result->shard.Row(0).indices[0], 3u);
  EXPECT_EQ(result->shard.Row(1).nnz, 0u);
}

TEST(WorksetTest, DeserializeRejectsTruncation) {
  Workset w;
  w.block_id = 1;
  w.labels = {1.0f};
  w.shard.AppendEmptyRow();
  std::vector<uint8_t> wire = w.Serialize();
  for (size_t cut : {size_t{0}, wire.size() / 2, wire.size() - 1}) {
    EXPECT_FALSE(Workset::Deserialize(wire.data(), cut).ok())
        << "cut=" << cut;
  }
}

TEST(WorksetStoreTest, PutFindAndTotals) {
  WorksetStore store;
  Workset w1;
  w1.block_id = 0;
  w1.labels = {1.0f};
  SparseRow r;
  r.Push(0, 1.0f);
  w1.shard.AppendRow(r);
  store.Put(std::move(w1));
  Workset w2;
  w2.block_id = 5;
  w2.labels = {1.0f, -1.0f};
  w2.shard.AppendEmptyRow();
  w2.shard.AppendEmptyRow();
  store.Put(std::move(w2));

  EXPECT_EQ(store.num_worksets(), 2u);
  EXPECT_EQ(store.total_rows(), 3u);
  EXPECT_EQ(store.total_nnz(), 1u);
  ASSERT_NE(store.Find(5), nullptr);
  EXPECT_EQ(store.Find(5)->num_rows(), 2u);
  EXPECT_EQ(store.Find(7), nullptr);
  EXPECT_GT(store.MemoryBytes(), 0u);
  store.Clear();
  EXPECT_EQ(store.num_worksets(), 0u);
  EXPECT_EQ(store.Find(5), nullptr);
}

TEST(WorksetStoreTest, DuplicateBlockIdDies) {
  WorksetStore store;
  Workset a;
  a.block_id = 3;
  store.Put(std::move(a));
  Workset b;
  b.block_id = 3;
  EXPECT_DEATH(store.Put(std::move(b)), "duplicate workset");
}

TEST(BlockDirectoryTest, LocateMapsGlobalRowToBlockAndOffset) {
  BlockDirectory dir({3, 1, 4});
  EXPECT_EQ(dir.total_rows(), 8u);
  EXPECT_EQ(dir.num_blocks(), 3u);
  EXPECT_EQ(dir.rows_in_block(2), 4u);

  RowRef r = dir.Locate(0);
  EXPECT_EQ(r.block_id, 0u);
  EXPECT_EQ(r.offset, 0u);
  r = dir.Locate(2);
  EXPECT_EQ(r.block_id, 0u);
  EXPECT_EQ(r.offset, 2u);
  r = dir.Locate(3);
  EXPECT_EQ(r.block_id, 1u);
  EXPECT_EQ(r.offset, 0u);
  r = dir.Locate(7);
  EXPECT_EQ(r.block_id, 2u);
  EXPECT_EQ(r.offset, 3u);
}

TEST(BlockDirectoryTest, LocateOutOfRangeDies) {
  BlockDirectory dir({2});
  EXPECT_DEATH(dir.Locate(2), "CHECK failed");
}

TEST(BatchSamplerTest, SameSeedSameDraws) {
  BlockDirectory dir({10, 20, 30});
  BatchSampler a(&dir, 99), b(&dir, 99);
  const auto batch_a = a.Sample(7, 100);
  const auto batch_b = b.Sample(7, 100);
  ASSERT_EQ(batch_a.size(), 100u);
  for (size_t i = 0; i < batch_a.size(); ++i) {
    EXPECT_EQ(batch_a[i].block_id, batch_b[i].block_id);
    EXPECT_EQ(batch_a[i].offset, batch_b[i].offset);
  }
}

TEST(BatchSamplerTest, DifferentIterationsDiffer) {
  BlockDirectory dir({1000});
  BatchSampler sampler(&dir, 99);
  const auto b1 = sampler.Sample(1, 50);
  const auto b2 = sampler.Sample(2, 50);
  int same = 0;
  for (size_t i = 0; i < b1.size(); ++i) {
    if (b1[i].offset == b2[i].offset) ++same;
  }
  EXPECT_LT(same, 10);
}

TEST(BatchSamplerTest, DrawsValidRefsAndRoughlyUniform) {
  BlockDirectory dir({100, 300});
  BatchSampler sampler(&dir, 5);
  int block1 = 0;
  const auto batch = sampler.Sample(0, 4000);
  for (const RowRef& ref : batch) {
    ASSERT_LT(ref.block_id, 2u);
    ASSERT_LT(ref.offset, dir.rows_in_block(ref.block_id));
    if (ref.block_id == 1) ++block1;
  }
  // Block 1 holds 75% of the rows.
  EXPECT_NEAR(block1 / 4000.0, 0.75, 0.03);
}

TEST(LibsvmTextBytesTest, CountsPlausibleTextSize) {
  Dataset d = SmallDataset();
  // Row 0: "+1 1:1 6:-2\n"-ish; formula: 4 + per-feature (1+digits+1+8).
  const uint64_t bytes = LibsvmTextBytes(d.rows, d.labels, 0);
  EXPECT_EQ(bytes, 4u + 2 * (1 + 1 + 1 + 8));
}

}  // namespace
}  // namespace colsgd
