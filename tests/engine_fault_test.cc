// End-to-end fault-tolerance tests: worker-failure recovery in all four
// engines, backup-group re-seeding in ColumnSGD, checkpoint/restore, message
// drops, and the RecoveryMetrics bookkeeping.
#include <gtest/gtest.h>

#include <cmath>

#include "datagen/synthetic.h"
#include "engine/columnsgd.h"
#include "engine/trainer.h"

namespace colsgd {
namespace {

Dataset TestData(uint64_t rows = 3000, uint64_t features = 400) {
  SyntheticSpec spec = TinySpec();
  spec.num_rows = rows;
  spec.num_features = features;
  return GenerateSynthetic(spec);
}

ClusterSpec Cluster(int workers = 4) {
  ClusterSpec spec = ClusterSpec::Cluster1();
  spec.num_workers = workers;
  return spec;
}

TrainConfig Config() {
  TrainConfig config;
  config.model = "lr";
  config.learning_rate = 0.5;
  config.batch_size = 128;
  config.block_rows = 256;
  return config;
}

FaultConfig WorkerFailureAt(int64_t iteration, int worker) {
  FaultConfig faults;
  faults.plan =
      FaultPlan::Scripted({{iteration, worker, FaultKind::kWorkerFailure}});
  return faults;
}

// Satellite (b): every engine survives a worker failure with finite,
// accounted recovery and re-converges to (within 5% of) its no-fault loss.
class EngineFaultRecoveryTest : public ::testing::TestWithParam<const char*> {
};

TEST_P(EngineFaultRecoveryTest, WorkerFailureRecoversAndReconverges) {
  Dataset d = TestData();
  RunOptions options;
  options.iterations = 80;

  auto clean = MakeEngine(GetParam(), Cluster(), Config());
  TrainResult clean_result = RunTraining(clean.get(), d, options);
  ASSERT_TRUE(clean_result.status.ok());
  EXPECT_EQ(clean_result.recovery.worker_failures, 0);
  EXPECT_EQ(clean_result.recovery.recovery_seconds, 0.0);

  auto faulty = MakeEngine(GetParam(), Cluster(), Config());
  faulty->set_faults(WorkerFailureAt(20, 2));
  TrainResult fault_result = RunTraining(faulty.get(), d, options);
  ASSERT_TRUE(fault_result.status.ok());

  // The failure was detected, repaired, and accounted.
  EXPECT_EQ(fault_result.recovery.worker_failures, 1);
  EXPECT_GT(fault_result.recovery.detection_seconds, 0.0);
  EXPECT_GT(fault_result.recovery.recovery_seconds, 0.0);
  EXPECT_TRUE(std::isfinite(fault_result.recovery.recovery_seconds));
  EXPECT_GT(fault_result.recovery.bytes_retransferred, 0u);
  // Recovery shows up in simulated time, not just the metrics.
  EXPECT_GT(fault_result.train_time, clean_result.train_time);

  // Re-convergence: the exact model loss after the run is within 5% of the
  // no-fault run's (engines that lose no state match it exactly).
  const double clean_loss =
      EvaluateLoss(clean->model(), clean->FullModel(), d, d.num_rows());
  const double fault_loss =
      EvaluateLoss(faulty->model(), faulty->FullModel(), d, d.num_rows());
  EXPECT_LT(fault_loss, 1.05 * clean_loss)
      << "clean " << clean_loss << " vs faulty " << fault_loss;
  EXPECT_LT(fault_loss, std::log(2.0));  // better than chance
}

INSTANTIATE_TEST_SUITE_P(AllEngines, EngineFaultRecoveryTest,
                         ::testing::Values("columnsgd", "mllib", "mllib_star",
                                           "petuum", "mxnet"));

// Satellite (a): with 1-backup, a worker failure is repaired by the
// surviving replica re-seeding the partition over the network — no row-block
// reload, no lost updates, bit-identical model.
TEST(ColumnSgdBackupFaultTest, BackupSurvivesWorkerFailureWithoutReload) {
  Dataset d = TestData();
  const int64_t iters = 40;

  ColumnSgdOptions backup_options;
  backup_options.backup = 1;

  ColumnSgdEngine clean(Cluster(4), Config(), backup_options);
  ASSERT_TRUE(clean.Setup(d).ok());
  for (int64_t i = 0; i < iters; ++i) ASSERT_TRUE(clean.RunIteration(i).ok());

  ColumnSgdEngine faulty(Cluster(4), Config(), backup_options);
  faulty.set_faults(WorkerFailureAt(15, 2));
  ASSERT_TRUE(faulty.Setup(d).ok());
  for (int64_t i = 0; i < iters; ++i) ASSERT_TRUE(faulty.RunIteration(i).ok());

  // The surviving replica preserved every update: models are bit-identical
  // and no iterations were lost.
  EXPECT_EQ(faulty.FullModel(), clean.FullModel());
  EXPECT_EQ(faulty.recovery_metrics().worker_failures, 1);
  EXPECT_EQ(faulty.recovery_metrics().iterations_lost, 0);
  EXPECT_GT(faulty.recovery_metrics().bytes_retransferred, 0u);

  // Without backup the same failure triggers a full partition rebuild: lost
  // iterations and a much longer repair (every row block re-read and split).
  ColumnSgdEngine unprotected(Cluster(4), Config());
  unprotected.set_faults(WorkerFailureAt(15, 2));
  ASSERT_TRUE(unprotected.Setup(d).ok());
  for (int64_t i = 0; i < iters; ++i) {
    ASSERT_TRUE(unprotected.RunIteration(i).ok());
  }
  EXPECT_EQ(unprotected.recovery_metrics().iterations_lost, 15);
  EXPECT_GT(unprotected.recovery_metrics().recovery_seconds,
            faulty.recovery_metrics().recovery_seconds);
  EXPECT_NE(unprotected.FullModel(), clean.FullModel());
}

// Satellite (c): checkpoint -> restore. A checkpointed run loses only the
// iterations since the last checkpoint and restarts from the saved weights
// instead of zero.
TEST(CheckpointRecoveryTest, RestoreLosesOnlyPostCheckpointIterations) {
  Dataset d = TestData();
  const int64_t iters = 60;

  auto run = [&](int64_t checkpoint_every) {
    ColumnSgdEngine engine(Cluster(4), Config());
    FaultConfig faults = WorkerFailureAt(25, 1);
    faults.checkpoint.every = checkpoint_every;
    engine.set_faults(faults);
    EXPECT_TRUE(engine.Setup(d).ok());
    double loss_at_failure = 0.0;
    for (int64_t i = 0; i < iters; ++i) {
      EXPECT_TRUE(engine.RunIteration(i).ok());
      if (i == 25) loss_at_failure = engine.last_batch_loss();
    }
    struct Outcome {
      RecoveryMetrics metrics;
      double loss_at_failure;
    };
    return Outcome{engine.recovery_metrics(), loss_at_failure};
  };

  const auto without = run(0);
  const auto with = run(10);

  // Failure at iteration 25 with checkpoints after 10 and 20: only the 5
  // un-checkpointed iterations are lost (vs all 25 without).
  EXPECT_EQ(without.metrics.iterations_lost, 25);
  EXPECT_EQ(without.metrics.checkpoints_taken, 0);
  EXPECT_EQ(with.metrics.iterations_lost, 5);
  EXPECT_EQ(with.metrics.checkpoints_taken, iters / 10);
  EXPECT_GT(with.metrics.checkpoint_bytes, 0u);
  EXPECT_GT(with.metrics.checkpoint_seconds, 0.0);
  // Restarting the partition from a 20-iteration-old checkpoint perturbs the
  // loss less than restarting it from initial weights.
  EXPECT_LT(with.loss_at_failure, without.loss_at_failure);
}

TEST(CheckpointRecoveryTest, FileBackedCheckpointRoundTripsDuringTraining) {
  Dataset d = TestData(1500, 200);
  ColumnSgdEngine engine(Cluster(4), Config());
  FaultConfig faults = WorkerFailureAt(15, 0);
  faults.checkpoint.every = 5;
  faults.checkpoint.path =
      ::testing::TempDir() + "/colsgd_engine_fault_ckpt.bin";
  engine.set_faults(faults);
  ASSERT_TRUE(engine.Setup(d).ok());
  for (int64_t i = 0; i < 20; ++i) ASSERT_TRUE(engine.RunIteration(i).ok());

  // The restore at iteration 15 read the file written at iteration 14 (15
  // completed iterations): the serialized state drove the repair.
  EXPECT_EQ(engine.recovery_metrics().iterations_lost, 0);
  EXPECT_EQ(engine.recovery_metrics().checkpoints_taken, 4);
  auto saved = ReadModelFile(faults.checkpoint.path);
  ASSERT_TRUE(saved.ok());
  EXPECT_EQ(saved.ValueOrDie().weights.size(), 200u);
  std::remove(faults.checkpoint.path.c_str());
}

TEST(MessageDropTest, DropsAreRetransmittedAndAccounted) {
  Dataset d = TestData(1500, 200);
  const int64_t iters = 30;

  ColumnSgdEngine clean(Cluster(4), Config());
  ASSERT_TRUE(clean.Setup(d).ok());
  for (int64_t i = 0; i < iters; ++i) ASSERT_TRUE(clean.RunIteration(i).ok());

  ColumnSgdEngine lossy(Cluster(4), Config());
  FaultPlanConfig plan;
  plan.seed = 17;
  plan.message_drop_prob = 0.05;
  FaultConfig faults;
  faults.plan = FaultPlan(plan);
  lossy.set_faults(faults);
  ASSERT_TRUE(lossy.Setup(d).ok());
  for (int64_t i = 0; i < iters; ++i) ASSERT_TRUE(lossy.RunIteration(i).ok());

  // Retransmission is lossless for training state...
  EXPECT_EQ(lossy.FullModel(), clean.FullModel());
  // ...but costs time and wire bytes.
  EXPECT_GT(lossy.recovery_metrics().messages_dropped, 0);
  EXPECT_GT(lossy.recovery_metrics().bytes_retransferred, 0u);
  EXPECT_GT(lossy.runtime().MaxClock(), clean.runtime().MaxClock());
}

// Compound fault: a second worker crashes in the same iteration the first
// one's recovery is being driven — the master repairs both, in script order,
// and the run still re-converges. Runs against all engines.
class CompoundFaultTest : public ::testing::TestWithParam<const char*> {};

TEST_P(CompoundFaultTest, CrashDuringAnotherWorkersRecovery) {
  Dataset d = TestData();
  RunOptions options;
  options.iterations = 80;

  auto clean = MakeEngine(GetParam(), Cluster(), Config());
  TrainResult clean_result = RunTraining(clean.get(), d, options);
  ASSERT_TRUE(clean_result.status.ok());

  auto faulty = MakeEngine(GetParam(), Cluster(), Config());
  FaultConfig faults;
  faults.plan = FaultPlan::Scripted({
      {20, 1, FaultKind::kWorkerFailure},
      {20, 2, FaultKind::kWorkerFailure},  // dies while w1 is being repaired
  });
  faults.checkpoint.every = 10;
  ASSERT_TRUE(faulty->set_faults(faults).ok());
  TrainResult result = RunTraining(faulty.get(), d, options);
  ASSERT_TRUE(result.status.ok());

  EXPECT_EQ(result.recovery.worker_failures, 2);
  EXPECT_TRUE(std::isfinite(result.recovery.recovery_seconds));
  EXPECT_GT(result.recovery.recovery_seconds, 0.0);
  EXPECT_GT(result.recovery.bytes_retransferred, 0u);
  const double clean_loss =
      EvaluateLoss(clean->model(), clean->FullModel(), d, d.num_rows());
  const double fault_loss =
      EvaluateLoss(faulty->model(), faulty->FullModel(), d, d.num_rows());
  EXPECT_LT(fault_loss, 1.05 * clean_loss)
      << "clean " << clean_loss << " vs faulty " << fault_loss;
}

TEST_P(CompoundFaultTest, RecoveryControlMessageDropIsSurvived) {
  // A worker dies while the wire is lossy: the drop process hits the
  // recovery-control traffic itself (engines route recovery sends through
  // SendWithFaults), so the repair's own messages time out and retransmit.
  Dataset d = TestData();
  RunOptions options;
  options.iterations = 60;

  auto faulty = MakeEngine(GetParam(), Cluster(), Config());
  FaultPlanConfig plan;
  plan.seed = 29;
  plan.scripted = {{20, 2, FaultKind::kWorkerFailure}};
  plan.message_drop_prob = 0.10;  // high enough to hit the recovery path
  FaultConfig faults;
  faults.plan = FaultPlan(plan);
  faults.checkpoint.every = 10;
  ASSERT_TRUE(faulty->set_faults(faults).ok());
  TrainResult result = RunTraining(faulty.get(), d, options);
  ASSERT_TRUE(result.status.ok());

  EXPECT_EQ(result.recovery.worker_failures, 1);
  EXPECT_GT(result.recovery.messages_dropped, 0);
  EXPECT_GE(result.recovery.retransmits, result.recovery.messages_dropped);
  EXPECT_TRUE(std::isfinite(result.recovery.recovery_seconds));
  const double fault_loss =
      EvaluateLoss(faulty->model(), faulty->FullModel(), d, d.num_rows());
  EXPECT_LT(fault_loss, std::log(2.0));  // better than chance
}

INSTANTIATE_TEST_SUITE_P(AllEngines, CompoundFaultTest,
                         ::testing::Values("columnsgd", "mllib", "mllib_star",
                                           "petuum", "mxnet"));

// Tentpole acceptance: injected wire corruption is always detected by the
// frame CRC and repaired by retransmit — the trained model is bit-identical
// to the clean run's (corrupted payloads are never applied), at the price of
// extra wire bytes and time.
class WireIntegrityTest : public ::testing::TestWithParam<const char*> {};

TEST_P(WireIntegrityTest, CorruptionIsDetectedNeverTrainedOn) {
  Dataset d = TestData(1500, 200);
  RunOptions options;
  options.iterations = 30;

  auto clean = MakeEngine(GetParam(), Cluster(), Config());
  TrainResult clean_result = RunTraining(clean.get(), d, options);
  ASSERT_TRUE(clean_result.status.ok());

  auto noisy = MakeEngine(GetParam(), Cluster(), Config());
  FaultPlanConfig plan;
  plan.seed = 31;
  plan.message_corrupt_prob = 0.05;
  FaultConfig faults;
  faults.plan = FaultPlan(plan);
  ASSERT_TRUE(noisy->set_faults(faults).ok());
  TrainResult result = RunTraining(noisy.get(), d, options);
  ASSERT_TRUE(result.status.ok());

  const RecoveryMetrics& rm = result.recovery;
  EXPECT_GT(rm.messages_corrupted, 0);
  EXPECT_GE(rm.retransmits, rm.messages_corrupted);
  EXPECT_GT(rm.bytes_retransferred, 0u);
  // Every corrupted copy was caught and replaced: bit-identical training.
  EXPECT_EQ(noisy->FullModel(), clean->FullModel());
  // Framing overhead + retransmits + NACKs show up on the wire. (They cost
  // simulated time too, but engines whose barrier is dominated by driver
  // overhead absorb it, so the clock check is only >=.)
  EXPECT_GT(result.bytes_on_wire, clean_result.bytes_on_wire);
  EXPECT_GE(noisy->runtime().MaxClock(), clean->runtime().MaxClock());
}

TEST_P(WireIntegrityTest, PartitionWindowDegradesButDoesNotLivelock) {
  Dataset d = TestData(1500, 200);
  RunOptions options;
  options.iterations = 30;

  auto clean = MakeEngine(GetParam(), Cluster(), Config());
  TrainResult clean_result = RunTraining(clean.get(), d, options);
  ASSERT_TRUE(clean_result.status.ok());

  auto split = MakeEngine(GetParam(), Cluster(), Config());
  FaultPlanConfig plan;
  plan.partitions.push_back({10, 3, {0, 1}});  // w0+w1 vs w2+w3+master
  FaultConfig faults;
  faults.plan = FaultPlan(plan);
  ASSERT_TRUE(split->set_faults(faults).ok());
  TrainResult result = RunTraining(split.get(), d, options);
  ASSERT_TRUE(result.status.ok());  // bounded brown-out, not a livelock

  EXPECT_GT(result.recovery.partition_blocked_sends, 0);
  EXPECT_GT(result.recovery.retransmits, 0);
  EXPECT_GT(split->runtime().MaxClock(), clean->runtime().MaxClock());
  // The partition slows the run but loses no state.
  EXPECT_EQ(split->FullModel(), clean->FullModel());
}

INSTANTIATE_TEST_SUITE_P(AllEngines, WireIntegrityTest,
                         ::testing::Values("columnsgd", "mllib", "mllib_star",
                                           "petuum", "mxnet"));

// Storage integrity end to end: a torn checkpoint write is detected at
// restore time and the engine falls back to the previous valid image,
// visible in RecoveryMetrics.
TEST(CheckpointIntegrityTest, TornCheckpointFallsBackToOlderImage) {
  Dataset d = TestData();
  ColumnSgdEngine engine(Cluster(4), Config());
  FaultPlanConfig plan;
  plan.seed = 5;
  plan.scripted = {{25, 1, FaultKind::kWorkerFailure}};
  plan.torn_checkpoint_prob = 1.0;  // every checkpoint write is torn
  FaultConfig faults;
  faults.plan = FaultPlan(plan);
  faults.checkpoint.every = 10;
  ASSERT_TRUE(engine.set_faults(faults).ok());
  ASSERT_TRUE(engine.Setup(d).ok());
  for (int64_t i = 0; i < 40; ++i) ASSERT_TRUE(engine.RunIteration(i).ok());

  const RecoveryMetrics& rm = engine.recovery_metrics();
  EXPECT_GT(rm.checkpoints_taken, 0);
  EXPECT_EQ(rm.checkpoints_corrupted, rm.checkpoints_taken);
  // With every image torn the restore found nothing valid: the recovery at
  // iteration 25 skipped the whole retention window (never loaded garbage)
  // and rebuilt from scratch instead.
  EXPECT_GT(rm.checkpoint_fallbacks, 0);
  EXPECT_LE(rm.checkpoint_fallbacks, rm.checkpoints_corrupted);
  EXPECT_EQ(rm.iterations_lost, 25);
}

TEST(CheckpointIntegrityTest, OnlyNewestTornRestoresPreviousGeneration) {
  // Tear only the checkpoint taken right before the crash: the restore must
  // fall back exactly one generation and lose only the covered iterations.
  Dataset d = TestData();

  auto run = [&](double torn_prob) {
    ColumnSgdEngine engine(Cluster(4), Config());
    FaultPlanConfig plan;
    plan.seed = 77;
    plan.scripted = {{25, 1, FaultKind::kWorkerFailure}};
    plan.torn_checkpoint_prob = torn_prob;
    FaultConfig faults;
    faults.plan = FaultPlan(plan);
    faults.checkpoint.every = 10;
    EXPECT_TRUE(engine.set_faults(faults).ok());
    EXPECT_TRUE(engine.Setup(d).ok());
    for (int64_t i = 0; i < 30; ++i) EXPECT_TRUE(engine.RunIteration(i).ok());
    return engine.recovery_metrics();
  };

  const RecoveryMetrics intact = run(0.0);
  EXPECT_EQ(intact.checkpoint_fallbacks, 0);
  EXPECT_EQ(intact.iterations_lost, 5);  // restored the 20-iteration image

  const RecoveryMetrics damaged = run(1.0);
  EXPECT_GT(damaged.checkpoint_fallbacks, 0);
  // Both retained images (after 10 and 20 iterations) were torn: the
  // restore diagnosed them and the rebuild lost all 25 iterations rather
  // than training on a corrupt image.
  EXPECT_EQ(damaged.iterations_lost, 25);
}

// Probabilistic worker failures from the MTBF process: the run survives
// several random failures and the metrics add up.
TEST(MtbfFaultTest, RandomWorkerFailuresAreSurvived) {
  Dataset d = TestData();
  ColumnSgdEngine engine(Cluster(4), Config());
  FaultPlanConfig plan;
  plan.seed = 123;
  plan.worker_mtbf_iters = 60.0;  // ~4 failures expected over 60 iters x 4
  FaultConfig faults;
  faults.plan = FaultPlan(plan);
  faults.checkpoint.every = 10;
  engine.set_faults(faults);
  ASSERT_TRUE(engine.Setup(d).ok());
  for (int64_t i = 0; i < 60; ++i) ASSERT_TRUE(engine.RunIteration(i).ok());

  const RecoveryMetrics& rm = engine.recovery_metrics();
  EXPECT_GT(rm.worker_failures, 0);
  EXPECT_TRUE(std::isfinite(rm.recovery_seconds));
  EXPECT_GT(rm.recovery_seconds, 0.0);
  EXPECT_LT(engine.last_batch_loss(), std::log(2.0));
}

}  // namespace
}  // namespace colsgd
