// Tests for the column-partitioned MLP (Section III-C): finite-difference
// checks of both the partitioned input layer and the shared output layer,
// exactness across cluster sizes, and end-to-end convergence on a nonlinear
// (XOR-like) task that no linear model can fit.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "datagen/synthetic.h"
#include "engine/columnsgd.h"
#include "model/mlp.h"
#include "storage/partitioner.h"

namespace colsgd {
namespace {

constexpr uint64_t kFeatures = 17;
constexpr int kHidden = 5;

struct TestCase {
  CsrBatch rows;
  std::vector<float> labels;
  std::vector<double> weights;  // global layout, kFeatures * kHidden
  std::vector<double> shared;

  BatchView View() const {
    BatchView view;
    for (size_t i = 0; i < rows.num_rows(); ++i) {
      view.rows.push_back(rows.Row(i));
      view.labels.push_back(labels[i]);
    }
    return view;
  }
};

TestCase MakeCase(const MlpModel& mlp, size_t batch, uint64_t seed) {
  Rng rng(seed);
  TestCase tc;
  for (size_t i = 0; i < batch; ++i) {
    SparseRow row;
    for (uint64_t f = 0; f < kFeatures; ++f) {
      if (rng.NextBernoulli(0.5)) {
        row.Push(static_cast<uint32_t>(f),
                 static_cast<float>(rng.NextUniform(-1.0, 1.0)));
      }
    }
    if (row.nnz() == 0) row.Push(0, 1.0f);
    tc.rows.AppendRow(row);
    tc.labels.push_back(rng.NextBernoulli(0.5) ? 1.0f : -1.0f);
  }
  tc.weights.resize(kFeatures * kHidden);
  for (size_t i = 0; i < tc.weights.size(); ++i) {
    tc.weights[i] = 0.4 * GaussianFromHash(i, seed + 1);
  }
  tc.shared.resize(mlp.num_shared_params());
  for (size_t i = 0; i < tc.shared.size(); ++i) {
    tc.shared[i] = 0.3 * GaussianFromHash(1000 + i, seed + 2);
  }
  return tc;
}

double BatchLoss(const MlpModel& mlp, const TestCase& tc) {
  std::vector<double> stats(tc.labels.size() * kHidden, 0.0);
  BatchView view = tc.View();
  mlp.ComputePartialStats(view, tc.weights, &stats, nullptr);
  return mlp.BatchLossFromStatsShared(stats, tc.labels, tc.shared);
}

TEST(MlpTest, InterfaceShape) {
  MlpModel mlp(kHidden);
  EXPECT_EQ(mlp.name(), "mlp5");
  EXPECT_EQ(mlp.weights_per_feature(), kHidden);
  EXPECT_EQ(mlp.stats_per_point(), kHidden);
  EXPECT_EQ(mlp.num_shared_params(), 2 * kHidden + 1u);
  // w2 initialized nonzero, biases zero.
  EXPECT_NE(mlp.InitSharedParam(0, 7), 0.0);
  EXPECT_EQ(mlp.InitSharedParam(kHidden, 7), 0.0);
  EXPECT_EQ(mlp.InitSharedParam(kHidden + 1, 7), 0.0);
  EXPECT_NE(mlp.InitWeight(3, 2, 7), 0.0);
}

TEST(MlpTest, FiniteDifferenceInputLayerGradient) {
  MlpModel mlp(kHidden);
  TestCase tc = MakeCase(mlp, 5, 11);
  BatchView view = tc.View();

  std::vector<double> stats(tc.labels.size() * kHidden, 0.0);
  mlp.ComputePartialStats(view, tc.weights, &stats, nullptr);
  GradAccumulator grad(tc.weights.size());
  std::vector<double> shared_grad(mlp.num_shared_params(), 0.0);
  mlp.AccumulateGradFromStatsShared(view, stats, tc.weights, tc.shared, &grad,
                                    &shared_grad, nullptr);

  const double h = 1e-6;
  for (uint64_t slot = 0; slot < tc.weights.size(); slot += 7) {
    TestCase perturbed = tc;
    perturbed.weights[slot] += h;
    const double up = BatchLoss(mlp, perturbed);
    perturbed.weights[slot] -= 2 * h;
    const double down = BatchLoss(mlp, perturbed);
    const double numeric = (up - down) / (2 * h);
    EXPECT_NEAR(grad.value(slot), numeric,
                1e-4 * std::max(1.0, std::fabs(numeric)))
        << "W1 slot " << slot;
  }
}

TEST(MlpTest, FiniteDifferenceSharedLayerGradient) {
  MlpModel mlp(kHidden);
  TestCase tc = MakeCase(mlp, 5, 13);
  BatchView view = tc.View();

  std::vector<double> stats(tc.labels.size() * kHidden, 0.0);
  mlp.ComputePartialStats(view, tc.weights, &stats, nullptr);
  GradAccumulator grad(tc.weights.size());
  std::vector<double> shared_grad(mlp.num_shared_params(), 0.0);
  mlp.AccumulateGradFromStatsShared(view, stats, tc.weights, tc.shared, &grad,
                                    &shared_grad, nullptr);

  const double h = 1e-6;
  for (size_t i = 0; i < mlp.num_shared_params(); ++i) {
    TestCase perturbed = tc;
    perturbed.shared[i] += h;
    const double up = BatchLoss(mlp, perturbed);
    perturbed.shared[i] -= 2 * h;
    const double down = BatchLoss(mlp, perturbed);
    const double numeric = (up - down) / (2 * h);
    EXPECT_NEAR(shared_grad[i], numeric,
                1e-4 * std::max(1.0, std::fabs(numeric)))
        << "shared slot " << i;
  }
}

TEST(MlpTest, StatsAreAdditiveAcrossColumnPartitions) {
  MlpModel mlp(kHidden);
  TestCase tc = MakeCase(mlp, 8, 17);
  BatchView view = tc.View();
  std::vector<double> full(tc.labels.size() * kHidden, 0.0);
  mlp.ComputePartialStats(view, tc.weights, &full, nullptr);

  for (int k : {2, 3}) {
    RoundRobinPartitioner partitioner(kFeatures, k);
    std::vector<double> sum(full.size(), 0.0);
    for (int w = 0; w < k; ++w) {
      std::vector<double> local(partitioner.LocalDim(w) * kHidden, 0.0);
      for (uint64_t lf = 0; lf < partitioner.LocalDim(w); ++lf) {
        const uint64_t f = partitioner.GlobalIndex(w, lf);
        for (int c = 0; c < kHidden; ++c) {
          local[lf * kHidden + c] = tc.weights[f * kHidden + c];
        }
      }
      CsrBatch shard;
      for (size_t i = 0; i < tc.rows.num_rows(); ++i) {
        SparseRow shard_row;
        const SparseVectorView row = tc.rows.Row(i);
        for (size_t j = 0; j < row.nnz; ++j) {
          if (partitioner.Owner(row.indices[j]) == w) {
            shard_row.Push(
                static_cast<uint32_t>(partitioner.LocalIndex(row.indices[j])),
                row.values[j]);
          }
        }
        shard.AppendRow(shard_row);
      }
      BatchView shard_view;
      for (size_t i = 0; i < shard.num_rows(); ++i) {
        shard_view.rows.push_back(shard.Row(i));
      }
      shard_view.labels = tc.labels;
      std::vector<double> partial(full.size(), 0.0);
      mlp.ComputePartialStats(shard_view, local, &partial, nullptr);
      for (size_t i = 0; i < partial.size(); ++i) sum[i] += partial[i];
    }
    for (size_t i = 0; i < full.size(); ++i) {
      ASSERT_NEAR(sum[i], full[i], 1e-9) << "k=" << k;
    }
  }
}

TEST(MlpTest, RowPathIsUnsupported) {
  MlpModel mlp(kHidden);
  TestCase tc = MakeCase(mlp, 1, 19);
  GradAccumulator grad(tc.weights.size());
  EXPECT_DEATH(mlp.AccumulateRowGradient(tc.rows.Row(0), 1.0f, tc.weights,
                                         &grad, nullptr),
               "column framework");
  EXPECT_DEATH(mlp.RowLoss(tc.rows.Row(0), 1.0f, tc.weights, nullptr),
               "column framework");
}

TEST(MlpEngineTest, ExactAcrossClusterSizes) {
  SyntheticSpec spec = TinySpec();
  spec.num_rows = 1500;
  spec.num_features = 120;
  Dataset d = GenerateSynthetic(spec);
  TrainConfig config;
  config.model = "mlp4";
  config.learning_rate = 0.5;
  config.batch_size = 64;
  config.block_rows = 256;

  std::vector<std::vector<double>> models;
  std::vector<std::vector<double>> shareds;
  for (int workers : {1, 4}) {
    ClusterSpec cluster = ClusterSpec::Cluster1();
    cluster.num_workers = workers;
    ColumnSgdEngine engine(cluster, config);
    ASSERT_TRUE(engine.Setup(d).ok());
    for (int i = 0; i < 8; ++i) ASSERT_TRUE(engine.RunIteration(i).ok());
    models.push_back(engine.FullModel());
    shareds.push_back(engine.shared_params());
  }
  ASSERT_EQ(models[0].size(), models[1].size());
  for (size_t i = 0; i < models[0].size(); ++i) {
    ASSERT_NEAR(models[0][i], models[1][i], 1e-9);
  }
  for (size_t i = 0; i < shareds[0].size(); ++i) {
    ASSERT_NEAR(shareds[0][i], shareds[1][i], 1e-9);
  }
}

TEST(MlpEngineTest, LearnsANonlinearConcept) {
  // XOR of two indicator features: impossible for any linear model, easy
  // for an MLP.
  Dataset d;
  d.num_features = 2;
  Rng rng(33);
  for (int i = 0; i < 4000; ++i) {
    SparseRow row;
    const bool a = rng.NextBernoulli(0.5);
    const bool b = rng.NextBernoulli(0.5);
    // Encode as +-1-valued dense pair so XOR is balanced.
    row.Push(0, a ? 1.0f : -1.0f);
    row.Push(1, b ? 1.0f : -1.0f);
    d.rows.AppendRow(row);
    d.labels.push_back((a ^ b) ? 1.0f : -1.0f);
  }

  TrainConfig config;
  config.model = "mlp8";
  config.learning_rate = 0.5;
  config.batch_size = 256;
  config.block_rows = 512;
  ClusterSpec cluster = ClusterSpec::Cluster1();
  cluster.num_workers = 2;
  ColumnSgdEngine engine(cluster, config);
  ASSERT_TRUE(engine.Setup(d).ok());
  double loss = 0.0;
  for (int i = 0; i < 800; ++i) {
    ASSERT_TRUE(engine.RunIteration(i).ok());
    loss = engine.last_batch_loss();
  }
  EXPECT_LT(loss, 0.25) << "MLP failed to fit XOR";
}

TEST(MlpEngineTest, WorksWithAdamAndBackup) {
  SyntheticSpec spec = TinySpec();
  spec.num_rows = 1200;
  spec.num_features = 90;
  Dataset d = GenerateSynthetic(spec);
  TrainConfig config;
  config.model = "mlp4";
  config.optimizer = "adam";
  config.learning_rate = 0.01;
  config.batch_size = 64;
  config.block_rows = 128;
  ClusterSpec cluster = ClusterSpec::Cluster1();
  cluster.num_workers = 4;
  ColumnSgdOptions options;
  options.backup = 1;
  ColumnSgdEngine engine(cluster, config, std::move(options));
  ASSERT_TRUE(engine.Setup(d).ok());
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(engine.RunIteration(i).ok());
  EXPECT_GT(engine.last_batch_loss(), 0.0);
  EXPECT_LT(engine.last_batch_loss(), std::log(2.0) + 0.1);
}

}  // namespace
}  // namespace colsgd
