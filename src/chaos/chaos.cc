#include "chaos/chaos.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdio>
#include <set>
#include <utility>

#include "common/check.h"
#include "common/crc32c.h"
#include "common/rng.h"
#include "datagen/synthetic.h"
#include "engine/trainer.h"
#include "obs/bench/json.h"
#include "obs/bench/timeseries.h"

namespace colsgd {
namespace chaos {

namespace {

constexpr double kAbsLossSlack = 0.05;

TrainConfig MakeTrainConfig(const ChaosOptions& options) {
  TrainConfig config;
  config.model = options.model;
  config.learning_rate = options.learning_rate;
  config.batch_size = options.batch_size;
  config.block_rows = options.block_rows;
  return config;
}

ClusterSpec MakeCluster(const ChaosOptions& options) {
  ClusterSpec spec = ClusterSpec::Cluster1();
  spec.num_workers = options.workers;
  return spec;
}

std::string FormatG(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", value);
  return buf;
}

void FoldU64(uint32_t* crc, uint64_t v) {
  *crc = ExtendCrc32c(*crc, &v, sizeof(v));
}

void FoldI64(uint32_t* crc, int64_t v) {
  *crc = ExtendCrc32c(*crc, &v, sizeof(v));
}

void FoldDouble(uint32_t* crc, double v) {
  *crc = ExtendCrc32c(*crc, &v, sizeof(v));
}

/// \brief Invariant 2 of both scenarios: the network model's totals balance
/// and the per-iteration telemetry tiles the measured training traffic.
void AppendConservationViolations(Engine& engine,
                                  const TimeSeriesRecorder& recorder,
                                  uint64_t bytes_on_wire,
                                  std::vector<std::string>* violations) {
  const TrafficStats total = engine.runtime().net().TotalStats();
  if (total.bytes_sent != total.bytes_received) {
    violations->push_back(
        "byte conservation: bytes_sent " + std::to_string(total.bytes_sent) +
        " != bytes_received " + std::to_string(total.bytes_received));
  }
  if (total.messages_sent != total.messages_received) {
    violations->push_back("byte conservation: message totals differ");
  }
  uint64_t series_bytes = 0;
  bool per_node_tiles = true;
  for (const TimeSeriesSample& s : recorder.samples()) {
    series_bytes += s.bytes_on_wire;
    uint64_t node_sum = 0;
    for (uint64_t b : s.bytes_sent_per_node) node_sum += b;
    per_node_tiles &= node_sum == s.bytes_on_wire;
  }
  if (series_bytes != bytes_on_wire) {
    violations->push_back("telemetry does not tile traffic: series bytes " +
                          std::to_string(series_bytes) + " != bytes_on_wire " +
                          std::to_string(bytes_on_wire));
  }
  if (!per_node_tiles) {
    violations->push_back(
        "telemetry does not tile traffic: per-node bytes != iteration bytes");
  }
}

/// \brief Trace fingerprint: canonical outputs of a completed run, folded in
/// a fixed order. Two executions of the same schedule must agree
/// bit-for-bit.
uint32_t FoldRunFingerprint(Engine& engine, const RecoveryMetrics& rm,
                            const TimeSeriesRecorder& recorder) {
  uint32_t crc = 0;
  const std::vector<double> weights = engine.FullModel();
  crc = ExtendCrc32c(crc, weights.data(), weights.size() * sizeof(double));
  FoldDouble(&crc, engine.runtime().MaxClock());
  const TrafficStats total = engine.runtime().net().TotalStats();
  FoldU64(&crc, total.bytes_sent);
  FoldU64(&crc, total.bytes_received);
  FoldU64(&crc, total.messages_sent);
  FoldU64(&crc, total.messages_received);
  FoldI64(&crc, rm.task_failures);
  FoldI64(&crc, rm.worker_failures);
  FoldI64(&crc, rm.messages_dropped);
  FoldI64(&crc, rm.messages_corrupted);
  FoldI64(&crc, rm.retransmits);
  FoldI64(&crc, rm.partition_blocked_sends);
  FoldI64(&crc, rm.checkpoints_taken);
  FoldI64(&crc, rm.checkpoints_corrupted);
  FoldI64(&crc, rm.checkpoint_fallbacks);
  FoldI64(&crc, rm.iterations_lost);
  FoldU64(&crc, rm.bytes_retransferred);
  FoldI64(&crc, rm.peer_replica_fetches);
  FoldU64(&crc, rm.peer_fetch_bytes);
  FoldI64(&crc, rm.replica_crc_rejections);
  FoldI64(&crc, rm.checkpoint_restore_reads);
  FoldI64(&crc, rm.reseeds);
  FoldI64(&crc, rm.planned_departures);
  FoldI64(&crc, rm.grows);
  FoldI64(&crc, rm.crash_removals);
  FoldI64(&crc, rm.faults_on_departed_workers);
  FoldDouble(&crc, rm.membership_seconds);
  FoldU64(&crc, rm.membership_bytes_moved);
  for (const TimeSeriesSample& s : recorder.samples()) {
    FoldI64(&crc, s.iteration);
    FoldDouble(&crc, s.sim_time);
    FoldU64(&crc, s.bytes_on_wire);
    FoldU64(&crc, s.messages);
  }
  return crc;
}

}  // namespace

Dataset ChaosDataset(const ChaosOptions& options) {
  SyntheticSpec spec = TinySpec();
  spec.name = "chaos-sim";
  spec.num_rows = options.data_rows;
  spec.num_features = options.data_features;
  spec.seed = options.data_seed;
  return GenerateSynthetic(spec);
}

double RunCleanBaseline(const ChaosOptions& options, const Dataset& dataset) {
  auto engine = MakeEngine(options.engine, MakeCluster(options),
                           MakeTrainConfig(options));
  RunOptions run;
  run.iterations = options.iterations;
  TrainResult result = RunTraining(engine.get(), dataset, run);
  COLSGD_CHECK(result.status.ok())
      << "fault-free baseline failed: " << result.status.ToString();
  return EvaluateLoss(engine->model(), engine->FullModel(), dataset,
                      dataset.num_rows());
}

ChaosSchedule GenerateSchedule(uint64_t seed, const ChaosOptions& options) {
  // One private stream per seed; every draw below is a fixed position in it,
  // so (seed, workers, iterations) fully determines the schedule.
  Rng rng(SplitMix64(seed ^ 0xC4A05C4A05ULL));
  ChaosSchedule schedule;
  FaultPlanConfig& plan = schedule.plan;
  plan.seed = SplitMix64(seed);
  plan.num_workers = options.workers;

  const int64_t early = std::max<int64_t>(2, options.iterations / 3);
  const auto random_worker = [&] {
    return static_cast<int>(rng.NextBounded(options.workers));
  };

  // Crashes: up to two scripted worker failures (possibly the same
  // iteration — the compound case) and a scripted task failure.
  if (rng.NextBernoulli(0.5)) {
    plan.scripted.push_back({1 + static_cast<int64_t>(rng.NextBounded(early)),
                             random_worker(), FaultKind::kWorkerFailure});
  }
  if (rng.NextBernoulli(0.3)) {
    plan.scripted.push_back({1 + static_cast<int64_t>(rng.NextBounded(early)),
                             random_worker(), FaultKind::kWorkerFailure});
  }
  if (rng.NextBernoulli(0.4)) {
    plan.scripted.push_back({1 + static_cast<int64_t>(rng.NextBounded(early)),
                             random_worker(), FaultKind::kTaskFailure});
  }

  // Lossy wire: drops and corruption.
  if (rng.NextBernoulli(0.45)) {
    plan.message_drop_prob = rng.NextUniform(0.01, 0.08);
  }
  if (rng.NextBernoulli(0.45)) {
    plan.message_corrupt_prob = rng.NextUniform(0.01, 0.08);
  }

  // A group-split partition window.
  if (rng.NextBernoulli(0.4) && options.workers >= 2) {
    NetworkPartitionSpec window;
    window.start_iteration = 1 + static_cast<int64_t>(rng.NextBounded(early));
    window.iterations = 1 + static_cast<int64_t>(rng.NextBounded(3));
    const int side = 1 + static_cast<int>(rng.NextBounded(options.workers - 1));
    for (int w = 0; w < options.workers &&
         static_cast<int>(window.side_a.size()) < side; ++w) {
      if (rng.NextBernoulli(0.5) || options.workers - w <=
          side - static_cast<int>(window.side_a.size())) {
        window.side_a.push_back(w);
      }
    }
    plan.partitions.push_back(std::move(window));
  }

  // Stragglers.
  if (rng.NextBernoulli(0.3)) {
    plan.stragglers.mode = StragglerSpec::Mode::kRotating;
    plan.stragglers.level = rng.NextUniform(0.5, 2.0);
    plan.stragglers.level_hi = plan.stragglers.level + rng.NextUniform(0.0, 1.0);
  }

  // Protection policy + storage damage. Torn/bit-rot probabilities are high
  // on purpose: a short run takes only a handful of checkpoints, and the
  // interesting seeds are the ones where damage actually lands.
  if (rng.NextBernoulli(0.6)) {
    schedule.checkpoint_every =
        std::max<int64_t>(2, options.iterations /
                                 static_cast<int64_t>(2 + rng.NextBounded(4)));
    if (rng.NextBernoulli(0.4)) {
      plan.torn_checkpoint_prob = rng.NextUniform(0.3, 0.7);
    }
    if (rng.NextBernoulli(0.3)) {
      plan.checkpoint_bitrot_prob = rng.NextUniform(0.2, 0.5);
    }
  }

  // A rare background worker-failure process on top of everything else.
  if (rng.NextBernoulli(0.15)) {
    plan.worker_mtbf_iters =
        static_cast<double>(options.iterations) * rng.NextUniform(2.0, 4.0);
  }
  return schedule;
}

ChaosVerdict RunSchedule(const ChaosOptions& options,
                         const ChaosSchedule& schedule,
                         const Dataset& dataset, double clean_loss,
                         uint64_t seed) {
  ChaosVerdict verdict;
  verdict.seed = seed;
  verdict.clean_loss = clean_loss;

  Result<FaultPlan> plan = FaultPlan::Create(schedule.plan);
  if (!plan.ok()) {
    verdict.violations.push_back("generated schedule rejected by Validate: " +
                                 plan.status().ToString());
    return verdict;
  }
  auto engine = MakeEngine(options.engine, MakeCluster(options),
                           MakeTrainConfig(options));
  FaultConfig faults;
  faults.plan = std::move(*plan);
  faults.checkpoint.every = schedule.checkpoint_every;
  const Status installed = engine->set_faults(faults);
  if (!installed.ok()) {
    verdict.violations.push_back("set_faults rejected a validated plan: " +
                                 installed.ToString());
    return verdict;
  }
  TimeSeriesRecorder recorder;
  engine->set_recorder(&recorder);

  RunOptions run;
  run.iterations = options.iterations;
  TrainResult result = RunTraining(engine.get(), dataset, run);
  engine->set_recorder(nullptr);
  verdict.recovery = result.recovery;

  uint32_t crc = 0;
  if (!result.status.ok()) {
    // Invariant 1: a failed run must carry a diagnosis.
    verdict.completed = false;
    verdict.diagnosis = result.status.ToString();
    if (result.status.message().empty()) {
      verdict.violations.push_back(
          "run failed without a diagnosis (empty status message)");
    }
    crc = ExtendCrc32c(crc, verdict.diagnosis.data(),
                       verdict.diagnosis.size());
    verdict.fingerprint = crc;
    return verdict;
  }
  verdict.completed = true;

  // Invariant 2: byte conservation + telemetry tiling.
  AppendConservationViolations(*engine, recorder, result.bytes_on_wire,
                               &verdict.violations);

  // Invariant 3: integrity faults are detected and repaired, never absorbed.
  const RecoveryMetrics& rm = verdict.recovery;
  if (rm.retransmits < rm.messages_corrupted + rm.messages_dropped) {
    verdict.violations.push_back(
        "corruption/drop not retransmitted: retransmits " +
        std::to_string(rm.retransmits) + " < corrupted " +
        std::to_string(rm.messages_corrupted) + " + dropped " +
        std::to_string(rm.messages_dropped));
  }
  if (rm.checkpoint_fallbacks > rm.checkpoints_corrupted) {
    verdict.violations.push_back(
        "checkpoint fallbacks exceed damaged checkpoints");
  }

  // Invariant 4: convergence within epsilon of the fault-free run.
  verdict.fault_loss = EvaluateLoss(engine->model(), engine->FullModel(),
                                    dataset, dataset.num_rows());
  if (!std::isfinite(verdict.fault_loss) ||
      verdict.fault_loss >
          clean_loss * (1.0 + options.epsilon) + kAbsLossSlack) {
    verdict.violations.push_back(
        "did not re-converge: faulty loss " + FormatG(verdict.fault_loss) +
        " vs fault-free " + FormatG(clean_loss) + " (epsilon " +
        FormatG(options.epsilon) + ")");
  }

  verdict.fingerprint = FoldRunFingerprint(*engine, rm, recorder);
  return verdict;
}

std::vector<std::string> ScheduleComponents(const ChaosSchedule& schedule) {
  std::vector<std::string> components;
  const FaultPlanConfig& plan = schedule.plan;
  for (size_t i = 0; i < plan.scripted.size(); ++i) {
    components.push_back("scripted:" + std::to_string(i));
  }
  for (size_t i = 0; i < plan.partitions.size(); ++i) {
    components.push_back("partition:" + std::to_string(i));
  }
  if (plan.task_mtbf_iters > 0.0) components.push_back("task_mtbf");
  if (plan.worker_mtbf_iters > 0.0) components.push_back("worker_mtbf");
  if (plan.message_drop_prob > 0.0) components.push_back("drop");
  if (plan.message_corrupt_prob > 0.0) components.push_back("corrupt");
  if (plan.torn_checkpoint_prob > 0.0) components.push_back("torn");
  if (plan.checkpoint_bitrot_prob > 0.0) components.push_back("bitrot");
  if (plan.stragglers.mode != StragglerSpec::Mode::kNone) {
    components.push_back("stragglers");
  }
  if (schedule.checkpoint_every > 0) components.push_back("checkpoint");
  return components;
}

bool DisableComponent(ChaosSchedule* schedule, const std::string& component) {
  FaultPlanConfig& plan = schedule->plan;
  const auto indexed = [&component](const char* prefix, size_t size,
                                    size_t* index) {
    const std::string p = std::string(prefix) + ":";
    if (component.rfind(p, 0) != 0) return false;
    *index = static_cast<size_t>(std::stoul(component.substr(p.size())));
    return *index < size;
  };
  size_t index = 0;
  if (indexed("scripted", plan.scripted.size(), &index)) {
    plan.scripted.erase(plan.scripted.begin() +
                        static_cast<ptrdiff_t>(index));
    return true;
  }
  if (indexed("partition", plan.partitions.size(), &index)) {
    plan.partitions.erase(plan.partitions.begin() +
                          static_cast<ptrdiff_t>(index));
    return true;
  }
  if (component == "task_mtbf") { plan.task_mtbf_iters = 0.0; return true; }
  if (component == "worker_mtbf") {
    plan.worker_mtbf_iters = 0.0;
    return true;
  }
  if (component == "drop") { plan.message_drop_prob = 0.0; return true; }
  if (component == "corrupt") {
    plan.message_corrupt_prob = 0.0;
    return true;
  }
  if (component == "torn") { plan.torn_checkpoint_prob = 0.0; return true; }
  if (component == "bitrot") {
    plan.checkpoint_bitrot_prob = 0.0;
    return true;
  }
  if (component == "stragglers") {
    plan.stragglers = StragglerSpec{};
    return true;
  }
  if (component == "checkpoint") {
    schedule->checkpoint_every = 0;
    plan.torn_checkpoint_prob = 0.0;
    plan.checkpoint_bitrot_prob = 0.0;
    return true;
  }
  return false;
}

ChaosSchedule ShrinkSchedule(const ChaosOptions& options,
                             const ChaosSchedule& schedule,
                             const Dataset& dataset, double clean_loss,
                             uint64_t seed, int* extra_runs) {
  ChaosSchedule current = schedule;
  int runs = 0;
  bool progress = true;
  while (progress) {
    progress = false;
    for (const std::string& component : ScheduleComponents(current)) {
      ChaosSchedule candidate = current;
      if (!DisableComponent(&candidate, component)) continue;
      ++runs;
      if (!RunSchedule(options, candidate, dataset, clean_loss, seed).ok()) {
        // Still failing without this component: it is not needed for the
        // repro — drop it and rescan.
        current = std::move(candidate);
        progress = true;
        break;
      }
    }
  }
  if (extra_runs != nullptr) *extra_runs = runs;
  return current;
}

std::string DescribeSchedule(const ChaosSchedule& schedule) {
  const FaultPlanConfig& plan = schedule.plan;
  std::string out;
  for (const FaultEvent& e : plan.scripted) {
    out += (e.kind == FaultKind::kWorkerFailure ? "crash(w" : "taskfail(w") +
           std::to_string(e.worker) + "@" + std::to_string(e.iteration) +
           ") ";
  }
  for (const NetworkPartitionSpec& p : plan.partitions) {
    out += "partition(@" + std::to_string(p.start_iteration) + "+" +
           std::to_string(p.iterations) + " side_a={";
    for (size_t i = 0; i < p.side_a.size(); ++i) {
      out += (i > 0 ? "," : "") + std::to_string(p.side_a[i]);
    }
    out += "}) ";
  }
  if (plan.worker_mtbf_iters > 0.0) {
    out += "worker_mtbf(" + FormatG(plan.worker_mtbf_iters) + ") ";
  }
  if (plan.task_mtbf_iters > 0.0) {
    out += "task_mtbf(" + FormatG(plan.task_mtbf_iters) + ") ";
  }
  if (plan.message_drop_prob > 0.0) {
    out += "drop(" + FormatG(plan.message_drop_prob) + ") ";
  }
  if (plan.message_corrupt_prob > 0.0) {
    out += "corrupt(" + FormatG(plan.message_corrupt_prob) + ") ";
  }
  if (plan.stragglers.mode != StragglerSpec::Mode::kNone) {
    out += "stragglers(L" + FormatG(plan.stragglers.level) + ") ";
  }
  if (schedule.checkpoint_every > 0) {
    out += "ckpt(every " + std::to_string(schedule.checkpoint_every);
    if (plan.torn_checkpoint_prob > 0.0) {
      out += ", torn " + FormatG(plan.torn_checkpoint_prob);
    }
    if (plan.checkpoint_bitrot_prob > 0.0) {
      out += ", bitrot " + FormatG(plan.checkpoint_bitrot_prob);
    }
    out += ") ";
  }
  if (out.empty()) return "(fault-free)";
  out.pop_back();
  return out;
}

std::string ReproCommand(const ChaosOptions& options, uint64_t seed) {
  return "colsgd_chaos --seeds " + std::to_string(seed) + " --engines " +
         options.engine + " --models " + options.model + " --workers " +
         std::to_string(options.workers) + " --iterations " +
         std::to_string(options.iterations) + " --batch_size " +
         std::to_string(options.batch_size) + " --learning_rate " +
         FormatG(options.learning_rate) + " --data_rows " +
         std::to_string(options.data_rows) + " --data_features " +
         std::to_string(options.data_features) + " --epsilon " +
         FormatG(options.epsilon);
}

std::string ReproArtifactJson(const ChaosOptions& options, uint64_t seed,
                              const ChaosSchedule& schedule,
                              const ChaosSchedule& shrunk,
                              const ChaosVerdict& verdict) {
  std::string out = "{\n  \"seed\": " + std::to_string(seed) +
                    ",\n  \"engine\": ";
  AppendJsonString(&out, options.engine);
  out += ",\n  \"model\": ";
  AppendJsonString(&out, options.model);
  out += ",\n  \"schedule\": ";
  AppendJsonString(&out, DescribeSchedule(schedule));
  out += ",\n  \"shrunk_schedule\": ";
  AppendJsonString(&out, DescribeSchedule(shrunk));
  out += ",\n  \"completed\": ";
  out += verdict.completed ? "true" : "false";
  out += ",\n  \"diagnosis\": ";
  AppendJsonString(&out, verdict.diagnosis);
  out += ",\n  \"fault_loss\": ";
  AppendJsonNumber(&out, verdict.fault_loss);
  out += ",\n  \"clean_loss\": ";
  AppendJsonNumber(&out, verdict.clean_loss);
  out += ",\n  \"fingerprint\": " + std::to_string(verdict.fingerprint);
  out += ",\n  \"violations\": [";
  for (size_t i = 0; i < verdict.violations.size(); ++i) {
    out += i > 0 ? ", " : "";
    AppendJsonString(&out, verdict.violations[i]);
  }
  out += "],\n  \"repro\": ";
  AppendJsonString(&out, ReproCommand(options, seed));
  out += "\n}\n";
  return out;
}

// --- Elastic-membership scenario (DESIGN.md §14) --------------------------

MembershipBaseline MembershipCleanBaseline(const ChaosOptions& options,
                                           const Dataset& dataset) {
  auto engine = MakeEngine(options.engine, MakeCluster(options),
                           MakeTrainConfig(options));
  RunOptions run;
  run.iterations = options.iterations;
  TrainResult result = RunTraining(engine.get(), dataset, run);
  COLSGD_CHECK(result.status.ok())
      << "fault-free baseline failed: " << result.status.ToString();
  MembershipBaseline baseline;
  const std::vector<double> weights = engine->FullModel();
  baseline.weights_crc =
      ExtendCrc32c(0, weights.data(), weights.size() * sizeof(double));
  baseline.clean_loss =
      EvaluateLoss(engine->model(), weights, dataset, dataset.num_rows());
  return baseline;
}

MembershipSchedule GenerateMembershipSchedule(
    uint64_t seed, const MembershipChaosOptions& options) {
  const ChaosOptions& base = options.base;
  // One private stream per seed, tagged differently from GenerateSchedule so
  // the two scenarios draw unrelated schedules for the same seed.
  Rng rng(SplitMix64(seed ^ 0x3E3A571C05EEDULL));
  MembershipSchedule out;
  out.replication =
      options.replication >= 0
          ? options.replication
          : 1 + static_cast<int>(rng.NextBounded(static_cast<uint64_t>(
                    std::min(3, base.workers - 1))));
  FaultPlanConfig& plan = out.schedule.plan;
  plan.seed = SplitMix64(seed);
  // Spare ranks count toward the plan's worker universe so scripted events
  // may name grown ranks.
  const int max_ranks = base.workers + options.spare_workers;
  plan.num_workers = max_ranks;

  // Mirror the engines' auto-pick rules (shrink: highest active, grow:
  // lowest inactive rank) so every drawn event is valid when it fires; at
  // most one event per iteration keeps same-iteration ordering trivial.
  std::set<int> active;
  std::set<int> departed_once;
  for (int w = 0; w < base.workers; ++w) active.insert(w);
  int64_t crashes = 0;
  for (int64_t iter = 2; iter + 1 < base.iterations; ++iter) {
    if (!rng.NextBernoulli(0.18)) continue;
    // Initial ranks that never left own their seed partition for the whole
    // run (rebalance never drains an owner below one partition), so a crash
    // aimed at one must exercise a peer-replica fetch. Spares and rejoined
    // ranks may legitimately hold nothing and are never crash targets.
    std::vector<int> crashable;
    for (int w : active) {
      if (w < base.workers && departed_once.count(w) == 0) {
        crashable.push_back(w);
      }
    }
    std::vector<int> kinds;  // 0 = crash, 1 = shrink, 2 = grow
    const bool can_remove = active.size() >= 3;
    if (can_remove && !crashable.empty()) kinds.push_back(0);
    if (can_remove) kinds.push_back(1);
    if (static_cast<int>(active.size()) < max_ranks) kinds.push_back(2);
    if (kinds.empty()) continue;
    const int kind = kinds[rng.NextBounded(kinds.size())];
    if (kind == 0) {
      const int w = crashable[rng.NextBounded(crashable.size())];
      plan.scripted.push_back({iter, w, FaultKind::kWorkerFailure});
      active.erase(w);
      departed_once.insert(w);
      ++crashes;
    } else if (kind == 1) {
      plan.membership.push_back({iter, MembershipChange::Kind::kShrink, -1});
      departed_once.insert(*std::prev(active.end()));
      active.erase(std::prev(active.end()));
    } else {
      plan.membership.push_back({iter, MembershipChange::Kind::kGrow, -1});
      for (int r = 0; r < max_ranks; ++r) {
        if (active.insert(r).second) break;
      }
    }
  }
  // A schedule with no events tests nothing: force one clean decommission
  // (and a grow when a spare exists) mid-run.
  if (plan.membership.empty() && crashes == 0) {
    if (base.workers >= 3) {
      plan.membership.push_back({std::max<int64_t>(2, base.iterations / 3),
                                 MembershipChange::Kind::kShrink, -1});
    }
    if (options.spare_workers > 0) {
      plan.membership.push_back(
          {std::max<int64_t>(3, (2 * base.iterations) / 3),
           MembershipChange::Kind::kGrow, -1});
    }
  }

  // A lossy wire and stragglers ride along. No partition windows (the
  // group-split node mapping assumes a fixed worker set) and no MTBF
  // processes (unscripted crashes cannot be mirrored by this generator).
  if (rng.NextBernoulli(0.35)) {
    plan.message_drop_prob = rng.NextUniform(0.01, 0.05);
  }
  if (rng.NextBernoulli(0.35)) {
    plan.message_corrupt_prob = rng.NextUniform(0.01, 0.05);
  }
  if (rng.NextBernoulli(0.25)) {
    plan.stragglers.mode = StragglerSpec::Mode::kRotating;
    plan.stragglers.level = rng.NextUniform(0.5, 1.5);
    plan.stragglers.level_hi =
        plan.stragglers.level + rng.NextUniform(0.0, 1.0);
  }
  // Checkpoints may be taken — the invariants prove they are never read.
  if (rng.NextBernoulli(0.5)) {
    out.schedule.checkpoint_every = std::max<int64_t>(
        2, base.iterations / static_cast<int64_t>(2 + rng.NextBounded(4)));
  }
  return out;
}

ChaosVerdict RunMembershipSchedule(const MembershipChaosOptions& options,
                                   const MembershipSchedule& membership,
                                   const Dataset& dataset,
                                   const MembershipBaseline& baseline,
                                   uint64_t seed) {
  ChaosVerdict verdict;
  verdict.seed = seed;
  verdict.clean_loss = baseline.clean_loss;
  const ChaosOptions& base = options.base;
  const ChaosSchedule& schedule = membership.schedule;

  Result<FaultPlan> plan = FaultPlan::Create(schedule.plan);
  if (!plan.ok()) {
    verdict.violations.push_back("generated schedule rejected by Validate: " +
                                 plan.status().ToString());
    return verdict;
  }
  ClusterSpec cluster = MakeCluster(base);
  cluster.max_workers = base.workers + options.spare_workers;
  TrainConfig config = MakeTrainConfig(base);
  config.elastic.enabled = true;
  config.elastic.replication = membership.replication;
  auto engine = MakeEngine(base.engine, cluster, config);
  FaultConfig faults;
  faults.plan = std::move(*plan);
  faults.checkpoint.every = schedule.checkpoint_every;
  const Status installed = engine->set_faults(faults);
  if (!installed.ok()) {
    verdict.violations.push_back("set_faults rejected a validated plan: " +
                                 installed.ToString());
    return verdict;
  }
  TimeSeriesRecorder recorder;
  engine->set_recorder(&recorder);

  RunOptions run;
  run.iterations = base.iterations;
  TrainResult result = RunTraining(engine.get(), dataset, run);
  engine->set_recorder(nullptr);
  verdict.recovery = result.recovery;

  if (!result.status.ok()) {
    // Stronger than the training harness's invariant 1: an elastic run must
    // COMPLETE — losing or removing a rank is never a reason to die.
    verdict.completed = false;
    verdict.diagnosis = result.status.ToString();
    verdict.violations.push_back("membership run did not complete: " +
                                 verdict.diagnosis);
    verdict.fingerprint = ExtendCrc32c(0, verdict.diagnosis.data(),
                                       verdict.diagnosis.size());
    return verdict;
  }
  verdict.completed = true;

  AppendConservationViolations(*engine, recorder, result.bytes_on_wire,
                               &verdict.violations);

  const RecoveryMetrics& rm = verdict.recovery;
  if (rm.retransmits < rm.messages_corrupted + rm.messages_dropped) {
    verdict.violations.push_back(
        "corruption/drop not retransmitted: retransmits " +
        std::to_string(rm.retransmits) + " < corrupted " +
        std::to_string(rm.messages_corrupted) + " + dropped " +
        std::to_string(rm.messages_dropped));
  }

  // Every scripted event is accounted for exactly once — no lost events, no
  // double-applied events, no spurious recoveries on departed ranks.
  int64_t shrinks = 0;
  int64_t grows = 0;
  for (const MembershipChange& m : schedule.plan.membership) {
    (m.kind == MembershipChange::Kind::kShrink ? shrinks : grows) += 1;
  }
  int64_t crashes = 0;
  for (const FaultEvent& e : schedule.plan.scripted) {
    if (e.kind == FaultKind::kWorkerFailure) ++crashes;
  }
  const auto expect = [&verdict](const char* what, int64_t got,
                                 int64_t want) {
    if (got != want) {
      verdict.violations.push_back(std::string(what) + ": " +
                                   std::to_string(got) + " != scripted " +
                                   std::to_string(want));
    }
  };
  expect("planned_departures", rm.planned_departures, shrinks);
  expect("grows", rm.grows, grows);
  expect("worker_failures", rm.worker_failures, crashes);
  expect("crash_removals", rm.crash_removals, crashes);
  expect("faults_on_departed_workers", rm.faults_on_departed_workers, 0);

  // The recovery ladder must stop at its top rung: every crash recovers
  // through an in-memory peer fetch (the generator only crashes
  // block-holding ranks and always runs with r >= 1), with zero
  // checkpoint-storage reads and zero re-seeds.
  if (crashes > 0 && rm.peer_replica_fetches < crashes) {
    verdict.violations.push_back(
        "crash did not recover via peer replicas: peer_replica_fetches " +
        std::to_string(rm.peer_replica_fetches) + " < crashes " +
        std::to_string(crashes));
  }
  if (rm.checkpoint_restore_reads != 0) {
    verdict.violations.push_back(
        "recovery read checkpoint storage despite full replica coverage: " +
        std::to_string(rm.checkpoint_restore_reads) + " read(s)");
  }
  if (rm.reseeds != 0) {
    verdict.violations.push_back(
        "partition re-seeded from initial weights despite full replica "
        "coverage: " +
        std::to_string(rm.reseeds) + " reseed(s)");
  }

  // The §14 headline: with full replica coverage the elastic run reproduces
  // the plain fixed-membership run's weights bit-for-bit.
  const std::vector<double> weights = engine->FullModel();
  const uint32_t weights_crc =
      ExtendCrc32c(0, weights.data(), weights.size() * sizeof(double));
  if (weights_crc != baseline.weights_crc) {
    verdict.violations.push_back(
        "final weights diverged from the fixed-membership run: crc " +
        std::to_string(weights_crc) + " != " +
        std::to_string(baseline.weights_crc));
  }

  // Convergence, belt and braces on top of bitwise equality.
  verdict.fault_loss = EvaluateLoss(engine->model(), weights, dataset,
                                    dataset.num_rows());
  if (!std::isfinite(verdict.fault_loss) ||
      verdict.fault_loss >
          baseline.clean_loss * (1.0 + base.epsilon) + kAbsLossSlack) {
    verdict.violations.push_back(
        "did not re-converge: faulty loss " + FormatG(verdict.fault_loss) +
        " vs fault-free " + FormatG(baseline.clean_loss) + " (epsilon " +
        FormatG(base.epsilon) + ")");
  }

  verdict.fingerprint = FoldRunFingerprint(*engine, rm, recorder);
  return verdict;
}

std::string DescribeMembershipSchedule(const MembershipSchedule& schedule) {
  std::string out = "r=" + std::to_string(schedule.replication) + " ";
  for (const MembershipChange& m : schedule.schedule.plan.membership) {
    out += (m.kind == MembershipChange::Kind::kShrink ? "shrink(@"
                                                      : "grow(@") +
           std::to_string(m.iteration) + ") ";
  }
  const std::string base = DescribeSchedule(schedule.schedule);
  if (base != "(fault-free)") return out + base;
  out.pop_back();
  return out;
}

std::string MembershipReproCommand(const MembershipChaosOptions& options,
                                   uint64_t seed) {
  const ChaosOptions& base = options.base;
  return "colsgd_chaos --scenario membership --seeds " +
         std::to_string(seed) + " --engines " + base.engine + " --models " +
         base.model + " --workers " + std::to_string(base.workers) +
         " --iterations " + std::to_string(base.iterations) +
         " --replication " + std::to_string(options.replication) +
         " --spares " + std::to_string(options.spare_workers) +
         " --batch_size " + std::to_string(base.batch_size) +
         " --learning_rate " + FormatG(base.learning_rate) + " --data_rows " +
         std::to_string(base.data_rows) + " --data_features " +
         std::to_string(base.data_features) + " --epsilon " +
         FormatG(base.epsilon);
}

std::string MembershipArtifactJson(const MembershipChaosOptions& options,
                                   uint64_t seed,
                                   const MembershipSchedule& schedule,
                                   const ChaosVerdict& verdict) {
  std::string out = "{\n  \"seed\": " + std::to_string(seed) +
                    ",\n  \"engine\": ";
  AppendJsonString(&out, options.base.engine);
  out += ",\n  \"model\": ";
  AppendJsonString(&out, options.base.model);
  out += ",\n  \"replication\": " + std::to_string(schedule.replication);
  out += ",\n  \"spare_workers\": " + std::to_string(options.spare_workers);
  out += ",\n  \"schedule\": ";
  AppendJsonString(&out, DescribeMembershipSchedule(schedule));
  out += ",\n  \"completed\": ";
  out += verdict.completed ? "true" : "false";
  out += ",\n  \"diagnosis\": ";
  AppendJsonString(&out, verdict.diagnosis);
  out += ",\n  \"fault_loss\": ";
  AppendJsonNumber(&out, verdict.fault_loss);
  out += ",\n  \"clean_loss\": ";
  AppendJsonNumber(&out, verdict.clean_loss);
  out += ",\n  \"fingerprint\": " + std::to_string(verdict.fingerprint);
  const RecoveryMetrics& rm = verdict.recovery;
  out += ",\n  \"peer_replica_fetches\": " +
         std::to_string(rm.peer_replica_fetches);
  out += ",\n  \"checkpoint_restore_reads\": " +
         std::to_string(rm.checkpoint_restore_reads);
  out += ",\n  \"reseeds\": " + std::to_string(rm.reseeds);
  out += ",\n  \"violations\": [";
  for (size_t i = 0; i < verdict.violations.size(); ++i) {
    out += i > 0 ? ", " : "";
    AppendJsonString(&out, verdict.violations[i]);
  }
  out += "],\n  \"repro\": ";
  AppendJsonString(&out, MembershipReproCommand(options, seed));
  out += "\n}\n";
  return out;
}

// --- Bounded-staleness scenario (DESIGN.md §15) ----------------------------

SspSchedule GenerateSspSchedule(uint64_t seed,
                                const SspChaosOptions& options) {
  const ChaosOptions& base = options.base;
  // One private stream per seed, tagged differently from the other
  // generators so the scenarios draw unrelated schedules for the same seed.
  Rng rng(SplitMix64(seed ^ 0x55A1E55EED5ACULL));
  SspSchedule out;
  static constexpr int kSlackGrid[] = {0, 1, 2, 4};
  const int drawn = kSlackGrid[rng.NextBounded(4)];
  out.slack = options.slack >= 0 ? options.slack : drawn;
  if (rng.NextBernoulli(0.6)) {
    out.compute_jitter = rng.NextUniform(0.2, 1.0);
  }

  FaultPlanConfig& plan = out.schedule.plan;
  plan.seed = SplitMix64(seed);
  plan.num_workers = base.workers;
  const int64_t early = std::max<int64_t>(2, base.iterations / 3);

  // Stragglers are this scenario's raison d'etre: usually on, at the Fig. 9
  // straggle factors, so the gate actually binds at small slack.
  if (rng.NextBernoulli(0.75)) {
    plan.stragglers.mode = StragglerSpec::Mode::kRotating;
    plan.stragglers.level = rng.NextUniform(1.0, 5.0);
    plan.stragglers.level_hi =
        plan.stragglers.level + rng.NextUniform(0.0, 1.0);
  }
  // Crashes and task failures fence the pipeline (drain-before-event):
  // exercise that path together with checkpoint restores.
  if (rng.NextBernoulli(0.4)) {
    plan.scripted.push_back({1 + static_cast<int64_t>(rng.NextBounded(early)),
                             static_cast<int>(rng.NextBounded(base.workers)),
                             FaultKind::kWorkerFailure});
  }
  if (rng.NextBernoulli(0.25)) {
    plan.scripted.push_back({1 + static_cast<int64_t>(rng.NextBounded(early)),
                             static_cast<int>(rng.NextBounded(base.workers)),
                             FaultKind::kTaskFailure});
  }
  // A lossy wire delays gated deliveries but must never lose an update.
  if (rng.NextBernoulli(0.35)) {
    plan.message_drop_prob = rng.NextUniform(0.01, 0.05);
  }
  if (rng.NextBernoulli(0.35)) {
    plan.message_corrupt_prob = rng.NextUniform(0.01, 0.05);
  }
  // Checkpoints fence the pipeline too (drain-before-checkpoint).
  if (rng.NextBernoulli(0.5)) {
    out.schedule.checkpoint_every = std::max<int64_t>(
        2, base.iterations / static_cast<int64_t>(2 + rng.NextBounded(4)));
  }
  return out;
}

ChaosVerdict RunSspSchedule(const SspChaosOptions& options,
                            const SspSchedule& ssp, const Dataset& dataset,
                            double clean_loss, uint64_t seed) {
  ChaosVerdict verdict;
  verdict.seed = seed;
  verdict.clean_loss = clean_loss;
  const ChaosOptions& base = options.base;
  const ChaosSchedule& schedule = ssp.schedule;

  Result<FaultPlan> plan = FaultPlan::Create(schedule.plan);
  if (!plan.ok()) {
    verdict.violations.push_back("generated schedule rejected by Validate: " +
                                 plan.status().ToString());
    return verdict;
  }
  TrainConfig config = MakeTrainConfig(base);
  config.ssp.enabled = true;
  config.ssp.slack = ssp.slack;
  config.ssp.compute_jitter = ssp.compute_jitter;
  auto engine = MakeEngine(base.engine, MakeCluster(base), config);
  FaultConfig faults;
  faults.plan = std::move(*plan);
  faults.checkpoint.every = schedule.checkpoint_every;
  const Status installed = engine->set_faults(faults);
  if (!installed.ok()) {
    verdict.violations.push_back("set_faults rejected a validated plan: " +
                                 installed.ToString());
    return verdict;
  }
  TimeSeriesRecorder recorder;
  engine->set_recorder(&recorder);

  RunOptions run;
  run.iterations = base.iterations;
  TrainResult result = RunTraining(engine.get(), dataset, run);
  engine->set_recorder(nullptr);
  verdict.recovery = result.recovery;

  if (!result.status.ok()) {
    // Stronger than the training harness's invariant 1: a valid SSP
    // schedule must COMPLETE — staleness is never a reason to die.
    verdict.completed = false;
    verdict.diagnosis = result.status.ToString();
    verdict.violations.push_back("ssp run did not complete: " +
                                 verdict.diagnosis);
    verdict.fingerprint = ExtendCrc32c(0, verdict.diagnosis.data(),
                                       verdict.diagnosis.size());
    return verdict;
  }
  verdict.completed = true;

  AppendConservationViolations(*engine, recorder, result.bytes_on_wire,
                               &verdict.violations);

  const RecoveryMetrics& rm = verdict.recovery;
  if (rm.retransmits < rm.messages_corrupted + rm.messages_dropped) {
    verdict.violations.push_back(
        "corruption/drop not retransmitted: retransmits " +
        std::to_string(rm.retransmits) + " < corrupted " +
        std::to_string(rm.messages_corrupted) + " + dropped " +
        std::to_string(rm.messages_dropped));
  }

  // Exactly-once accounting: whatever the interleaving, every consumer saw
  // exactly one send and one apply per logical clock tick.
  const SspAccounting& acc = engine->ssp_accounting();
  if (acc.updates_sent != acc.updates_applied) {
    verdict.violations.push_back(
        "updates lost or duplicated: sent " +
        std::to_string(acc.updates_sent) + " != applied " +
        std::to_string(acc.updates_applied));
  }
  if (acc.sent.empty() || acc.sent.size() != acc.applied.size()) {
    verdict.violations.push_back("ssp accounting matrices missing");
  }
  int64_t bad_cells = 0;
  for (size_t c = 0; c < acc.sent.size(); ++c) {
    if (acc.sent[c].size() != static_cast<size_t>(base.iterations) ||
        acc.applied[c].size() != static_cast<size_t>(base.iterations)) {
      verdict.violations.push_back(
          "ssp accounting for consumer " + std::to_string(c) +
          " does not cover every clock tick");
      continue;
    }
    for (int64_t t = 0; t < base.iterations; ++t) {
      bad_cells += acc.sent[c][t] != 1 || acc.applied[c][t] != 1;
    }
  }
  if (bad_cells > 0) {
    verdict.violations.push_back(
        "exactly-once violated in " + std::to_string(bad_cells) +
        " (consumer, tick) cell(s)");
  }

  // The staleness bound: no read ever exceeds the slack.
  if (acc.max_staleness_observed > ssp.slack) {
    verdict.violations.push_back(
        "staleness bound violated: observed " +
        std::to_string(acc.max_staleness_observed) + " > slack " +
        std::to_string(ssp.slack));
  }
  if (ssp.slack == 0 && acc.stale_reads != 0) {
    verdict.violations.push_back("slack-0 run reported " +
                                 std::to_string(acc.stale_reads) +
                                 " stale read(s)");
  }

  // The §15 headline: slack 0 reproduces plain BSP under the identical
  // fault schedule bit-for-bit.
  if (ssp.slack == 0) {
    Result<FaultPlan> twin_plan = FaultPlan::Create(schedule.plan);
    COLSGD_CHECK(twin_plan.ok());
    TrainConfig bsp_config = MakeTrainConfig(base);
    auto bsp = MakeEngine(base.engine, MakeCluster(base), bsp_config);
    FaultConfig bsp_faults;
    bsp_faults.plan = std::move(*twin_plan);
    bsp_faults.checkpoint.every = schedule.checkpoint_every;
    COLSGD_CHECK_OK(bsp->set_faults(bsp_faults));
    TrainResult bsp_result = RunTraining(bsp.get(), dataset, run);
    if (!bsp_result.status.ok()) {
      verdict.violations.push_back("BSP twin failed: " +
                                   bsp_result.status.ToString());
    } else {
      const std::vector<double> ssp_w = engine->FullModel();
      const std::vector<double> bsp_w = bsp->FullModel();
      const uint32_t ssp_crc =
          ExtendCrc32c(0, ssp_w.data(), ssp_w.size() * sizeof(double));
      const uint32_t bsp_crc =
          ExtendCrc32c(0, bsp_w.data(), bsp_w.size() * sizeof(double));
      if (ssp_crc != bsp_crc) {
        verdict.violations.push_back(
            "slack-0 weights diverged from the BSP run: crc " +
            std::to_string(ssp_crc) + " != " + std::to_string(bsp_crc));
      }
    }
  }

  // Convergence within epsilon of the fault-free BSP run.
  verdict.fault_loss = EvaluateLoss(engine->model(), engine->FullModel(),
                                    dataset, dataset.num_rows());
  if (!std::isfinite(verdict.fault_loss) ||
      verdict.fault_loss >
          clean_loss * (1.0 + base.epsilon) + kAbsLossSlack) {
    verdict.violations.push_back(
        "did not re-converge: faulty loss " + FormatG(verdict.fault_loss) +
        " vs fault-free " + FormatG(clean_loss) + " (epsilon " +
        FormatG(base.epsilon) + ")");
  }

  uint32_t crc = FoldRunFingerprint(*engine, rm, recorder);
  FoldI64(&crc, acc.updates_sent);
  FoldI64(&crc, acc.updates_applied);
  FoldI64(&crc, acc.max_staleness_observed);
  FoldI64(&crc, acc.stale_reads);
  FoldI64(&crc, acc.drains);
  for (const std::vector<int32_t>& row : acc.sent) {
    crc = ExtendCrc32c(crc, row.data(), row.size() * sizeof(int32_t));
  }
  for (const std::vector<int32_t>& row : acc.applied) {
    crc = ExtendCrc32c(crc, row.data(), row.size() * sizeof(int32_t));
  }
  verdict.fingerprint = crc;
  return verdict;
}

std::string DescribeSspSchedule(const SspSchedule& schedule) {
  std::string out = "slack=" + std::to_string(schedule.slack) + " ";
  if (schedule.compute_jitter > 0.0) {
    out += "jitter(" + FormatG(schedule.compute_jitter) + ") ";
  }
  const std::string base = DescribeSchedule(schedule.schedule);
  if (base != "(fault-free)") return out + base;
  out.pop_back();
  return out;
}

std::string SspReproCommand(const SspChaosOptions& options, uint64_t seed) {
  const ChaosOptions& base = options.base;
  return "colsgd_chaos --scenario ssp --seeds " + std::to_string(seed) +
         " --engines " + base.engine + " --models " + base.model +
         " --workers " + std::to_string(base.workers) + " --iterations " +
         std::to_string(base.iterations) + " --slack " +
         std::to_string(options.slack) + " --batch_size " +
         std::to_string(base.batch_size) + " --learning_rate " +
         FormatG(base.learning_rate) + " --data_rows " +
         std::to_string(base.data_rows) + " --data_features " +
         std::to_string(base.data_features) + " --epsilon " +
         FormatG(base.epsilon);
}

std::string SspArtifactJson(const SspChaosOptions& options, uint64_t seed,
                            const SspSchedule& schedule,
                            const ChaosVerdict& verdict) {
  std::string out = "{\n  \"seed\": " + std::to_string(seed) +
                    ",\n  \"engine\": ";
  AppendJsonString(&out, options.base.engine);
  out += ",\n  \"model\": ";
  AppendJsonString(&out, options.base.model);
  out += ",\n  \"slack\": " + std::to_string(schedule.slack);
  out += ",\n  \"compute_jitter\": ";
  AppendJsonNumber(&out, schedule.compute_jitter);
  out += ",\n  \"schedule\": ";
  AppendJsonString(&out, DescribeSspSchedule(schedule));
  out += ",\n  \"completed\": ";
  out += verdict.completed ? "true" : "false";
  out += ",\n  \"diagnosis\": ";
  AppendJsonString(&out, verdict.diagnosis);
  out += ",\n  \"fault_loss\": ";
  AppendJsonNumber(&out, verdict.fault_loss);
  out += ",\n  \"clean_loss\": ";
  AppendJsonNumber(&out, verdict.clean_loss);
  out += ",\n  \"fingerprint\": " + std::to_string(verdict.fingerprint);
  out += ",\n  \"violations\": [";
  for (size_t i = 0; i < verdict.violations.size(); ++i) {
    out += i > 0 ? ", " : "";
    AppendJsonString(&out, verdict.violations[i]);
  }
  out += "],\n  \"repro\": ";
  AppendJsonString(&out, SspReproCommand(options, seed));
  out += "\n}\n";
  return out;
}

}  // namespace chaos
}  // namespace colsgd
