// Deterministic chaos harness (DESIGN.md §10): FoundationDB-style
// simulation testing for the fault subsystem.
//
// Given a seed, GenerateSchedule draws a randomized fault schedule — any mix
// of scripted worker/task crashes, message drops, bit-flip corruption,
// group-split network partitions, stragglers, and torn/bit-rotted
// checkpoints. RunSchedule trains an engine under that schedule and checks
// the harness invariants:
//
//   1. complete-or-clean-diagnosis — the run either finishes or fails with
//      a proper Status (code + message), never dies silently;
//   2. byte conservation — total wire traffic balances (sent == received,
//      per the network model) and the per-iteration telemetry tiles the
//      run's total traffic exactly;
//   3. detected, never trained on — every injected corruption shows up in
//      the retransmit accounting (a corrupted payload is NACK'd, not
//      applied), and checkpoint fallbacks never exceed damaged images;
//   4. convergence — a completed faulty run's exact final loss lands within
//      (1 + epsilon) of the fault-free run's.
//
// Because the simulator is single-threaded and every draw is a stateless
// hash of the seed, a schedule replays bit-identically: the driver runs
// every schedule twice and compares trace fingerprints, and a failing seed
// is re-run under a greedily shrunk (ddmin-style) schedule and dumped as a
// one-line repro command.
#ifndef COLSGD_CHAOS_CHAOS_H_
#define COLSGD_CHAOS_CHAOS_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "cluster/fault/fault_plan.h"
#include "engine/metrics.h"
#include "storage/dataset.h"

namespace colsgd {
namespace chaos {

/// \brief One engine x model chaos configuration (the tiny-config defaults
/// suit CI smoke runs; see tools/colsgd_chaos.cc for the CLI).
struct ChaosOptions {
  std::string engine = "columnsgd";
  std::string model = "lr";
  int workers = 4;
  int64_t iterations = 24;
  size_t batch_size = 128;
  size_t block_rows = 256;
  double learning_rate = 0.5;
  uint64_t data_rows = 2000;
  uint64_t data_features = 300;
  uint64_t data_seed = 42;
  /// Convergence tolerance: fault_loss <= clean_loss * (1 + epsilon) + slack.
  double epsilon = 0.25;
};

/// \brief A generated fault schedule. The plan holds every fault process;
/// checkpoint_every is the paired protection policy (some schedules run
/// unprotected on purpose).
struct ChaosSchedule {
  FaultPlanConfig plan;
  int64_t checkpoint_every = 0;
};

/// \brief Verdict of one schedule run.
struct ChaosVerdict {
  uint64_t seed = 0;
  bool completed = false;
  /// Engine status string when the run did not complete (a clean diagnosis
  /// satisfies invariant 1; an empty one violates it).
  std::string diagnosis;
  /// Invariant violations; empty means the run passed.
  std::vector<std::string> violations;
  /// CRC32C over the run's canonical outputs: final weights, final master
  /// clock, total traffic, recovery counters, and the per-iteration
  /// telemetry. Two runs of the same schedule must match bit-for-bit.
  uint32_t fingerprint = 0;
  double fault_loss = std::numeric_limits<double>::quiet_NaN();
  double clean_loss = std::numeric_limits<double>::quiet_NaN();
  RecoveryMetrics recovery;

  bool ok() const { return violations.empty(); }
};

/// \brief The deterministic dataset chaos runs train on.
Dataset ChaosDataset(const ChaosOptions& options);

/// \brief Exact final loss of the fault-free run (the convergence yardstick,
/// computed once per engine x model).
double RunCleanBaseline(const ChaosOptions& options, const Dataset& dataset);

/// \brief Draws a randomized fault schedule from `seed`. Deterministic:
/// the same (seed, workers, iterations) always yields the same schedule.
ChaosSchedule GenerateSchedule(uint64_t seed, const ChaosOptions& options);

/// \brief Trains under `schedule` and checks the harness invariants.
ChaosVerdict RunSchedule(const ChaosOptions& options,
                         const ChaosSchedule& schedule,
                         const Dataset& dataset, double clean_loss,
                         uint64_t seed);

/// \brief Names of the independently disableable components present in
/// `schedule` (scripted events, each probabilistic process, each partition
/// window, the checkpoint-damage processes).
std::vector<std::string> ScheduleComponents(const ChaosSchedule& schedule);

/// \brief Disables one component in place; returns false if absent.
bool DisableComponent(ChaosSchedule* schedule, const std::string& component);

/// \brief Greedy ddmin-style minimization: repeatedly drop any component
/// whose removal keeps the run failing. Returns the shrunk schedule;
/// `extra_runs` (optional) counts the verification runs spent.
ChaosSchedule ShrinkSchedule(const ChaosOptions& options,
                             const ChaosSchedule& schedule,
                             const Dataset& dataset, double clean_loss,
                             uint64_t seed, int* extra_runs);

/// \brief Human-readable one-line schedule summary.
std::string DescribeSchedule(const ChaosSchedule& schedule);

/// \brief JSON repro artifact for a failing seed (schedule + verdict).
std::string ReproArtifactJson(const ChaosOptions& options, uint64_t seed,
                              const ChaosSchedule& schedule,
                              const ChaosSchedule& shrunk,
                              const ChaosVerdict& verdict);

/// \brief The colsgd_chaos command line that replays `seed` exactly.
std::string ReproCommand(const ChaosOptions& options, uint64_t seed);

}  // namespace chaos
}  // namespace colsgd

#endif  // COLSGD_CHAOS_CHAOS_H_
