// Deterministic chaos harness (DESIGN.md §10): FoundationDB-style
// simulation testing for the fault subsystem.
//
// Given a seed, GenerateSchedule draws a randomized fault schedule — any mix
// of scripted worker/task crashes, message drops, bit-flip corruption,
// group-split network partitions, stragglers, and torn/bit-rotted
// checkpoints. RunSchedule trains an engine under that schedule and checks
// the harness invariants:
//
//   1. complete-or-clean-diagnosis — the run either finishes or fails with
//      a proper Status (code + message), never dies silently;
//   2. byte conservation — total wire traffic balances (sent == received,
//      per the network model) and the per-iteration telemetry tiles the
//      run's total traffic exactly;
//   3. detected, never trained on — every injected corruption shows up in
//      the retransmit accounting (a corrupted payload is NACK'd, not
//      applied), and checkpoint fallbacks never exceed damaged images;
//   4. convergence — a completed faulty run's exact final loss lands within
//      (1 + epsilon) of the fault-free run's.
//
// Because the simulator is single-threaded and every draw is a stateless
// hash of the seed, a schedule replays bit-identically: the driver runs
// every schedule twice and compares trace fingerprints, and a failing seed
// is re-run under a greedily shrunk (ddmin-style) schedule and dumped as a
// one-line repro command.
#ifndef COLSGD_CHAOS_CHAOS_H_
#define COLSGD_CHAOS_CHAOS_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "cluster/fault/fault_plan.h"
#include "engine/metrics.h"
#include "storage/dataset.h"

namespace colsgd {
namespace chaos {

/// \brief One engine x model chaos configuration (the tiny-config defaults
/// suit CI smoke runs; see tools/colsgd_chaos.cc for the CLI).
struct ChaosOptions {
  std::string engine = "columnsgd";
  std::string model = "lr";
  int workers = 4;
  int64_t iterations = 24;
  size_t batch_size = 128;
  size_t block_rows = 256;
  double learning_rate = 0.5;
  uint64_t data_rows = 2000;
  uint64_t data_features = 300;
  uint64_t data_seed = 42;
  /// Convergence tolerance: fault_loss <= clean_loss * (1 + epsilon) + slack.
  double epsilon = 0.25;
};

/// \brief A generated fault schedule. The plan holds every fault process;
/// checkpoint_every is the paired protection policy (some schedules run
/// unprotected on purpose).
struct ChaosSchedule {
  FaultPlanConfig plan;
  int64_t checkpoint_every = 0;
};

/// \brief Verdict of one schedule run.
struct ChaosVerdict {
  uint64_t seed = 0;
  bool completed = false;
  /// Engine status string when the run did not complete (a clean diagnosis
  /// satisfies invariant 1; an empty one violates it).
  std::string diagnosis;
  /// Invariant violations; empty means the run passed.
  std::vector<std::string> violations;
  /// CRC32C over the run's canonical outputs: final weights, final master
  /// clock, total traffic, recovery counters, and the per-iteration
  /// telemetry. Two runs of the same schedule must match bit-for-bit.
  uint32_t fingerprint = 0;
  double fault_loss = std::numeric_limits<double>::quiet_NaN();
  double clean_loss = std::numeric_limits<double>::quiet_NaN();
  RecoveryMetrics recovery;

  bool ok() const { return violations.empty(); }
};

/// \brief The deterministic dataset chaos runs train on.
Dataset ChaosDataset(const ChaosOptions& options);

/// \brief Exact final loss of the fault-free run (the convergence yardstick,
/// computed once per engine x model).
double RunCleanBaseline(const ChaosOptions& options, const Dataset& dataset);

/// \brief Draws a randomized fault schedule from `seed`. Deterministic:
/// the same (seed, workers, iterations) always yields the same schedule.
ChaosSchedule GenerateSchedule(uint64_t seed, const ChaosOptions& options);

/// \brief Trains under `schedule` and checks the harness invariants.
ChaosVerdict RunSchedule(const ChaosOptions& options,
                         const ChaosSchedule& schedule,
                         const Dataset& dataset, double clean_loss,
                         uint64_t seed);

/// \brief Names of the independently disableable components present in
/// `schedule` (scripted events, each probabilistic process, each partition
/// window, the checkpoint-damage processes).
std::vector<std::string> ScheduleComponents(const ChaosSchedule& schedule);

/// \brief Disables one component in place; returns false if absent.
bool DisableComponent(ChaosSchedule* schedule, const std::string& component);

/// \brief Greedy ddmin-style minimization: repeatedly drop any component
/// whose removal keeps the run failing. Returns the shrunk schedule;
/// `extra_runs` (optional) counts the verification runs spent.
ChaosSchedule ShrinkSchedule(const ChaosOptions& options,
                             const ChaosSchedule& schedule,
                             const Dataset& dataset, double clean_loss,
                             uint64_t seed, int* extra_runs);

/// \brief Human-readable one-line schedule summary.
std::string DescribeSchedule(const ChaosSchedule& schedule);

/// \brief JSON repro artifact for a failing seed (schedule + verdict).
std::string ReproArtifactJson(const ChaosOptions& options, uint64_t seed,
                              const ChaosSchedule& schedule,
                              const ChaosSchedule& shrunk,
                              const ChaosVerdict& verdict);

/// \brief The colsgd_chaos command line that replays `seed` exactly.
std::string ReproCommand(const ChaosOptions& options, uint64_t seed);

// --- Elastic-membership scenario (DESIGN.md §14) --------------------------
//
// --scenario membership targets the block-replication + elastic-membership
// layer: scripted grow/shrink events mixed with worker crashes against a
// cluster whose partitions keep r+1 in-memory copies. On top of the training
// invariants, a membership run must COMPLETE (removing a rank is never an
// excuse to fail), every scripted event must be accounted for exactly once
// in the recovery counters, every crash must recover through a peer-replica
// fetch with zero checkpoint-storage reads and zero re-seeds, and — the §14
// headline — the final weights must be bit-identical to the plain
// fixed-membership run's (full replica coverage preserves the math).

/// \brief Configuration of one engine x model membership-chaos run.
struct MembershipChaosOptions {
  ChaosOptions base;
  /// Extra in-memory copies per block (r); -1 draws r in
  /// [1, min(3, workers - 1)] per seed, so every schedule carries at least
  /// one replica and the peer-recovery invariant always applies.
  int replication = -1;
  /// Spare ranks a grow can activate: cluster max_workers = workers + spares.
  int spare_workers = 2;
};

/// \brief A generated membership schedule: the fault plan (crashes, wire
/// faults, scripted grow/shrink) plus the replication level it runs under.
struct MembershipSchedule {
  ChaosSchedule schedule;
  int replication = 1;
};

/// \brief Fault-free yardstick for membership runs: the final loss plus the
/// CRC32C of the final weight bytes of the PLAIN (fixed-membership) run.
struct MembershipBaseline {
  double clean_loss = std::numeric_limits<double>::quiet_NaN();
  uint32_t weights_crc = 0;
};

/// \brief Runs the plain engine once and records loss + weight CRC.
MembershipBaseline MembershipCleanBaseline(const ChaosOptions& options,
                                           const Dataset& dataset);

/// \brief Draws a randomized membership schedule from `seed`: at most one
/// event per iteration, mirroring the engines' auto-pick rules so every
/// event is valid when it fires. No partition windows (spare ranks break
/// the group-split worker mapping) and no MTBF processes (unscripted
/// crashes cannot be mirrored by the generator).
MembershipSchedule GenerateMembershipSchedule(
    uint64_t seed, const MembershipChaosOptions& options);

/// \brief Trains an elastic engine under `schedule` and checks the
/// membership invariants.
ChaosVerdict RunMembershipSchedule(const MembershipChaosOptions& options,
                                   const MembershipSchedule& schedule,
                                   const Dataset& dataset,
                                   const MembershipBaseline& baseline,
                                   uint64_t seed);

/// \brief Human-readable one-line membership-schedule summary.
std::string DescribeMembershipSchedule(const MembershipSchedule& schedule);

/// \brief The colsgd_chaos command line that replays membership `seed`.
std::string MembershipReproCommand(const MembershipChaosOptions& options,
                                   uint64_t seed);

/// \brief JSON repro artifact for a failing membership seed.
std::string MembershipArtifactJson(const MembershipChaosOptions& options,
                                   uint64_t seed,
                                   const MembershipSchedule& schedule,
                                   const ChaosVerdict& verdict);

// --- Bounded-staleness scenario (DESIGN.md §15) ----------------------------
//
// --scenario ssp targets the bounded-staleness execution mode: randomized
// slack / straggler / jitter / crash / lossy-wire schedules against the
// SSP-capable engines (columnsgd, petuum, mxnet). On top of the training
// invariants (conservation, retransmit accounting, convergence), an SSP run
// must COMPLETE, every update must be applied exactly once per consumer per
// logical clock tick, no read may ever exceed the slack bound, and — the
// §15 headline — a slack-0 schedule must reproduce the plain BSP run under
// the identical fault schedule bit-for-bit.

/// \brief Configuration of one engine x model SSP-chaos run.
struct SspChaosOptions {
  ChaosOptions base;
  /// Staleness bound; -1 draws slack in {0, 1, 2, 4} per seed.
  int slack = -1;
};

/// \brief A generated SSP schedule: the fault plan plus the staleness bound
/// and deterministic per-(iteration, worker) compute jitter it runs under.
struct SspSchedule {
  ChaosSchedule schedule;
  int slack = 0;
  double compute_jitter = 0.0;
};

/// \brief Draws a randomized SSP schedule from `seed`: slack, jitter, heavy
/// rotating stragglers (the Fig. 9 levels), scripted crashes, lossy wire,
/// and checkpoint protection. Deterministic per (seed, options).
SspSchedule GenerateSspSchedule(uint64_t seed, const SspChaosOptions& options);

/// \brief Trains under `schedule` in SSP mode and checks the staleness
/// invariants; `clean_loss` is the fault-free BSP yardstick.
ChaosVerdict RunSspSchedule(const SspChaosOptions& options,
                            const SspSchedule& schedule,
                            const Dataset& dataset, double clean_loss,
                            uint64_t seed);

/// \brief Human-readable one-line SSP-schedule summary.
std::string DescribeSspSchedule(const SspSchedule& schedule);

/// \brief The colsgd_chaos command line that replays SSP `seed`.
std::string SspReproCommand(const SspChaosOptions& options, uint64_t seed);

/// \brief JSON repro artifact for a failing SSP seed.
std::string SspArtifactJson(const SspChaosOptions& options, uint64_t seed,
                            const SspSchedule& schedule,
                            const ChaosVerdict& verdict);

}  // namespace chaos
}  // namespace colsgd

#endif  // COLSGD_CHAOS_CHAOS_H_
