// Data-plane message framing: every payload that crosses the simulated wire
// under an integrity-fault plan is conceptually wrapped in
//
//   [magic u32][payload_len u32][payload bytes][crc32c u32]
//
// where the trailer is CRC32C over magic + length + payload. The simulator
// ships byte *counts*, not payloads, so engines charge kFrameOverheadBytes
// per framed message and model the receiver's verification sweep; this
// header is the executable definition of that format, and FrameMessage /
// VerifyFrame are used by the real serialization paths (checkpoint files)
// and the integrity tests to prove the trailer catches any single-bit flip.
//
// Charging rule: frame overhead and the receiver-side CRC sweep are charged
// only when the fault plan has wire-integrity faults enabled
// (FaultPlan::wire_integrity()); a fault-free run keeps the exact byte
// counts and timings of the unframed protocol, so clean baselines and the
// golden trace are unaffected. See DESIGN.md §10.
#ifndef COLSGD_SIMNET_FRAME_H_
#define COLSGD_SIMNET_FRAME_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/crc32c.h"
#include "common/result.h"

namespace colsgd {

constexpr uint32_t kFrameMagic = 0xC01DF7A3;
/// Per-message framing cost: magic + payload length + CRC32C trailer.
constexpr uint64_t kFrameOverheadBytes = 3 * sizeof(uint32_t);
/// Size of the NACK control message a receiver sends back when a frame
/// fails its CRC check (fits well under kControlMessageBytes).
constexpr uint64_t kNackBytes = 32;

/// \brief Wraps `payload` in a wire frame with a CRC32C trailer.
inline std::vector<uint8_t> FrameMessage(const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> frame;
  frame.reserve(payload.size() + kFrameOverheadBytes);
  const uint32_t magic = kFrameMagic;
  const uint32_t len = static_cast<uint32_t>(payload.size());
  const auto* mp = reinterpret_cast<const uint8_t*>(&magic);
  const auto* lp = reinterpret_cast<const uint8_t*>(&len);
  frame.insert(frame.end(), mp, mp + sizeof(magic));
  frame.insert(frame.end(), lp, lp + sizeof(len));
  frame.insert(frame.end(), payload.begin(), payload.end());
  const uint32_t crc = Crc32c(frame.data(), frame.size());
  const auto* cp = reinterpret_cast<const uint8_t*>(&crc);
  frame.insert(frame.end(), cp, cp + sizeof(crc));
  return frame;
}

/// \brief Verifies a frame's magic, length, and CRC32C trailer; returns the
/// payload on success, SerializationError on any corruption.
inline Result<std::vector<uint8_t>> VerifyFrame(
    const std::vector<uint8_t>& frame) {
  if (frame.size() < kFrameOverheadBytes) {
    return Status::SerializationError("frame shorter than its framing");
  }
  uint32_t magic, len, crc;
  std::memcpy(&magic, frame.data(), sizeof(magic));
  std::memcpy(&len, frame.data() + sizeof(magic), sizeof(len));
  std::memcpy(&crc, frame.data() + frame.size() - sizeof(crc), sizeof(crc));
  const uint32_t computed =
      Crc32c(frame.data(), frame.size() - sizeof(crc));
  if (computed != crc) {
    return Status::SerializationError("frame CRC32C mismatch");
  }
  if (magic != kFrameMagic) {
    return Status::SerializationError("bad frame magic");
  }
  if (len != frame.size() - kFrameOverheadBytes) {
    return Status::SerializationError("frame length mismatch");
  }
  return std::vector<uint8_t>(frame.begin() + 2 * sizeof(uint32_t),
                              frame.end() - sizeof(uint32_t));
}

/// \brief Flips bit `bit` (0-based over the whole buffer) in place — the
/// corruption primitive chaos injection uses.
inline void FlipBit(std::vector<uint8_t>* bytes, uint64_t bit) {
  if (bytes->empty()) return;
  bit %= bytes->size() * 8;
  (*bytes)[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
}

}  // namespace colsgd

#endif  // COLSGD_SIMNET_FRAME_H_
