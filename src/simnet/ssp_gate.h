// Clock-gated delivery bookkeeping for bounded-staleness (SSP) execution.
//
// Under BSP every message delivery synchronizes the receiver's scalar clock
// (ClusterRuntime::Send jumps it forward to the arrival time) — the receiver
// is modeled as blocking on the message. SSP breaks that assumption: an
// update broadcast must land in a consumer's mailbox without stalling it,
// and the consumer only waits when the staleness bound forces it to. This
// header holds the two pieces of state that make that deterministic:
//
//  * SspClockTable — per-entity logical clocks with the slack gate
//    (min_clock >= my_clock - s) evaluated over a fixed entity set, so every
//    engine asks the same question the same way;
//  * SspArrivalLog — per-entity arrival times of pipeline entries, indexed
//    by logical clock, so "which updates are visible at simulated time T"
//    is a pure function of recorded arrivals (no event queue needed — the
//    simulator stays single-threaded and bit-deterministic).
//
// Engines own the semantics (what an "update" is, what applying it costs);
// this header only answers ordering questions.
#ifndef COLSGD_SIMNET_SSP_GATE_H_
#define COLSGD_SIMNET_SSP_GATE_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "common/check.h"
#include "simnet/network.h"

namespace colsgd {

/// \brief Per-entity logical clocks with the SSP slack gate. Entities are
/// dense indices (ColumnSGD: feature groups; PS: workers).
class SspClockTable {
 public:
  SspClockTable() = default;
  explicit SspClockTable(size_t entities) : clocks_(entities, 0) {}

  void Reset(size_t entities) { clocks_.assign(entities, 0); }
  size_t size() const { return clocks_.size(); }

  int64_t clock(size_t entity) const { return clocks_[entity]; }
  void Tick(size_t entity) { ++clocks_[entity]; }
  void SetClock(size_t entity, int64_t clock) { clocks_[entity] = clock; }

  /// \brief Slowest logical clock across all entities.
  int64_t MinClock() const {
    int64_t min = std::numeric_limits<int64_t>::max();
    for (int64_t c : clocks_) min = c < min ? c : min;
    return clocks_.empty() ? 0 : min;
  }

  /// \brief The SSP progress gate: may `entity` start tick `clock` under
  /// `slack`? True iff every entity has finished tick clock - 1 - slack,
  /// i.e. min_clock >= clock - slack.
  bool MayStart(size_t entity, int64_t clock, int slack) const {
    (void)entity;
    return MinClock() >= clock - static_cast<int64_t>(slack);
  }

 private:
  std::vector<int64_t> clocks_;
};

/// \brief Arrival times of pipeline entries per consumer, indexed by the
/// entry's logical clock. Arrivals from one producer are monotone in clock
/// (same outbound NIC), so "visible at time T" is a prefix.
class SspArrivalLog {
 public:
  SspArrivalLog() = default;
  explicit SspArrivalLog(size_t consumers) : arrivals_(consumers) {}

  void Reset(size_t consumers) {
    arrivals_.assign(consumers, std::vector<SimTime>());
  }
  size_t consumers() const { return arrivals_.size(); }

  /// \brief Records the arrival of the entry for `clock` at `consumer`.
  /// Entries must be recorded in clock order per consumer.
  void Record(size_t consumer, int64_t clock, SimTime arrival) {
    std::vector<SimTime>& log = arrivals_[consumer];
    COLSGD_CHECK_EQ(static_cast<int64_t>(log.size()), clock)
        << "SSP arrivals must be recorded in clock order";
    log.push_back(arrival);
  }

  /// \brief Arrival time of the entry for `clock` at `consumer`; 0 for
  /// negative clocks (before the run, trivially available).
  SimTime ArrivalOf(size_t consumer, int64_t clock) const {
    if (clock < 0) return 0.0;
    return arrivals_[consumer][static_cast<size_t>(clock)];
  }

  /// \brief Number of entries recorded for `consumer` (its next clock).
  int64_t RecordedThrough(size_t consumer) const {
    return static_cast<int64_t>(arrivals_[consumer].size());
  }

  /// \brief Newest clock whose entry has arrived at `consumer` by simulated
  /// time `now`, scanning forward from `from` (exclusive). Arrivals are
  /// monotone per consumer, so the visible set is always a prefix.
  int64_t VisibleThrough(size_t consumer, int64_t from, SimTime now) const {
    const std::vector<SimTime>& log = arrivals_[consumer];
    int64_t through = from;
    while (through + 1 < static_cast<int64_t>(log.size()) &&
           log[static_cast<size_t>(through + 1)] <= now) {
      ++through;
    }
    return through;
  }

 private:
  std::vector<std::vector<SimTime>> arrivals_;
};

}  // namespace colsgd

#endif  // COLSGD_SIMNET_SSP_GATE_H_
