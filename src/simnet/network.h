// Deterministic network simulation.
//
// The paper's headline results are communication-bound, so the fidelity that
// matters is byte-accurate accounting of what crosses each NIC. The model:
//
//  * every node has one full-duplex NIC with `bandwidth` bytes/s each way;
//  * a send occupies the sender's outbound NIC for
//    `per_message_overhead + bytes/bandwidth` seconds (the overhead term
//    models serialization + protocol cost per message, which is what makes
//    many-small-messages dispatch slow, cf. Naive-ColumnSGD in Fig. 7);
//  * propagation adds `latency` seconds;
//  * the receiver's inbound NIC then serializes arrivals at `bandwidth`
//    (this is the master bottleneck in RowSGD: K workers push m-dimensional
//    gradients in parallel but the master drains them one after another).
//
// All times are simulated seconds (double). The simulation is single-threaded
// and bit-deterministic.
#ifndef COLSGD_SIMNET_NETWORK_H_
#define COLSGD_SIMNET_NETWORK_H_

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "obs/critpath/critpath.h"
#include "obs/trace.h"

namespace colsgd {

using NodeId = uint32_t;
using SimTime = double;  // seconds

/// \brief Link parameters of a cluster.
struct NetworkConfig {
  double latency = 100e-6;             // one-way propagation, seconds
  double bandwidth = 125e6;            // bytes/second each direction
  double per_message_overhead = 5e-6;  // per-message fixed sender cost

  /// \brief 1 Gbps links, like the paper's Cluster 1.
  static NetworkConfig Gbps1() {
    return NetworkConfig{100e-6, 125e6, 5e-6};
  }
  /// \brief 10 Gbps links, like the paper's Cluster 2.
  static NetworkConfig Gbps10() {
    return NetworkConfig{50e-6, 1250e6, 2e-6};
  }
};

/// \brief Per-node traffic counters.
struct TrafficStats {
  uint64_t messages_sent = 0;
  uint64_t messages_received = 0;
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
};

/// \brief Messages up to this size are control-plane traffic (task
/// dispatches, pull requests): they are charged sender overhead and latency
/// but skip the receiver's bulk-data queue, as small frames interleave with
/// in-flight bulk streams on a real network.
constexpr uint64_t kControlMessageBytes = 256;

/// \brief Byte- and time-accurate point-to-point network between N nodes.
class SimNetwork {
 public:
  SimNetwork(int num_nodes, const NetworkConfig& config)
      : config_(config),
        out_nic_free_(num_nodes, 0.0),
        in_nic_free_(num_nodes, 0.0),
        stats_(num_nodes) {}

  int num_nodes() const { return static_cast<int>(out_nic_free_.size()); }
  const NetworkConfig& config() const { return config_; }

  /// \brief Attaches a (non-owning, nullable) tracer that records every
  /// message. Tracing is passive: it never changes a simulated timestamp.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }
  Tracer* tracer() const { return tracer_; }

  /// \brief Attaches a (non-owning, nullable) causal critical-path recorder
  /// that observes every message. Passive, like the tracer.
  void set_critpath(CritPathRecorder* critpath) { critpath_ = critpath; }
  CritPathRecorder* critpath() const { return critpath_; }

  /// \brief Simulates sending `bytes` from `from` (whose local clock reads
  /// `sender_time`) to `to`. Returns the simulated time at which the message
  /// is fully available at the receiver.
  SimTime Send(NodeId from, NodeId to, uint64_t bytes, SimTime sender_time) {
    COLSGD_CHECK_LT(from, out_nic_free_.size());
    COLSGD_CHECK_LT(to, in_nic_free_.size());
    COLSGD_CHECK_NE(from, to);
    const double wire_time = static_cast<double>(bytes) / config_.bandwidth;
    // Outbound NIC occupancy at the sender.
    SimTime start = std::max(out_nic_free_[from], sender_time);
    SimTime tx_done = start + config_.per_message_overhead + wire_time;
    out_nic_free_[from] = tx_done;
    // Propagation, then inbound NIC occupancy at the receiver. Control-sized
    // messages slip past queued bulk data.
    SimTime arrival = tx_done + config_.latency;
    SimTime rx_start = arrival;
    SimTime rx_done = arrival;
    if (bytes > kControlMessageBytes) {
      rx_start = std::max(in_nic_free_[to], arrival - wire_time);
      rx_done = std::max(arrival, rx_start + wire_time);
      in_nic_free_[to] = rx_done;
    }

    stats_[from].messages_sent++;
    stats_[from].bytes_sent += bytes;
    stats_[to].messages_received++;
    stats_[to].bytes_received += bytes;
    if (tracer_ != nullptr) {
      tracer_->RecordNetSend(from, to, bytes, bytes <= kControlMessageBytes,
                             start, tx_done, rx_start, rx_done);
    }
    if (critpath_ != nullptr) {
      critpath_->OnSend(from, to, bytes, bytes <= kControlMessageBytes,
                        sender_time, start, tx_done, rx_start, rx_done);
    }
    return rx_done;
  }

  /// \brief Like Send, but the receiver-side bulk queue is skipped no matter
  /// the size. For fan-out endpoints that stand in for many independent
  /// clients (the serving ingress): modelling millions of user downlinks as
  /// one shared NIC would serialize unrelated responses, so only sender
  /// occupancy, propagation, and the byte counters are charged.
  SimTime SendUnqueued(NodeId from, NodeId to, uint64_t bytes,
                       SimTime sender_time) {
    COLSGD_CHECK_LT(from, out_nic_free_.size());
    COLSGD_CHECK_LT(to, in_nic_free_.size());
    COLSGD_CHECK_NE(from, to);
    const double wire_time = static_cast<double>(bytes) / config_.bandwidth;
    SimTime start = std::max(out_nic_free_[from], sender_time);
    SimTime tx_done = start + config_.per_message_overhead + wire_time;
    out_nic_free_[from] = tx_done;
    SimTime arrival = tx_done + config_.latency;

    stats_[from].messages_sent++;
    stats_[from].bytes_sent += bytes;
    stats_[to].messages_received++;
    stats_[to].bytes_received += bytes;
    if (tracer_ != nullptr) {
      tracer_->RecordNetSend(from, to, bytes, /*control=*/true, start, tx_done,
                             arrival, arrival);
    }
    if (critpath_ != nullptr) {
      critpath_->OnSend(from, to, bytes, /*control=*/true, sender_time, start,
                        tx_done, arrival, arrival);
    }
    return arrival;
  }

  /// \brief Local loopback: no network cost, no stats.
  SimTime LocalDeliver(SimTime sender_time) const { return sender_time; }

  const TrafficStats& stats(NodeId node) const {
    COLSGD_CHECK_LT(node, stats_.size());
    return stats_[node];
  }

  /// \brief Sum of traffic over all nodes.
  TrafficStats TotalStats() const {
    TrafficStats total;
    for (const auto& s : stats_) {
      total.messages_sent += s.messages_sent;
      total.messages_received += s.messages_received;
      total.bytes_sent += s.bytes_sent;
      total.bytes_received += s.bytes_received;
    }
    return total;
  }

  void ResetStats() {
    for (auto& s : stats_) s = TrafficStats{};
  }

 private:
  NetworkConfig config_;
  std::vector<SimTime> out_nic_free_;
  std::vector<SimTime> in_nic_free_;
  std::vector<TrafficStats> stats_;
  Tracer* tracer_ = nullptr;
  CritPathRecorder* critpath_ = nullptr;
};

}  // namespace colsgd

#endif  // COLSGD_SIMNET_NETWORK_H_
