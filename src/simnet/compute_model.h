// Deterministic compute-time charging.
//
// Worker compute is charged from counted work (non-zeros touched, dimensions
// updated) at a fixed effective FLOP rate, rather than from host wall time.
// On a simulated cluster that is both more reproducible and more faithful:
// running 8-40 "machines" on one host would otherwise serialize their compute
// and destroy every per-iteration-time shape the paper reports.
#ifndef COLSGD_SIMNET_COMPUTE_MODEL_H_
#define COLSGD_SIMNET_COMPUTE_MODEL_H_

#include <cstdint>

namespace colsgd {

/// \brief Converts counted work into simulated seconds.
struct ComputeModel {
  double flops_per_second = 2e9;  // effective rate of one worker core
  double per_task_overhead = 0.0;  // e.g. Spark task-launch latency

  double SecondsFor(uint64_t flops) const {
    return per_task_overhead + static_cast<double>(flops) / flops_per_second;
  }

  /// \brief One 2-CPU Cluster-1 machine of the paper.
  static ComputeModel Cluster1Worker() { return ComputeModel{2e9, 0.0}; }
  /// \brief One 8-CPU Cluster-2 machine of the paper.
  static ComputeModel Cluster2Worker() { return ComputeModel{8e9, 0.0}; }
};

/// \brief Tallies work performed by one node during a task.
class FlopCounter {
 public:
  void Add(uint64_t flops) { flops_ += flops; }
  uint64_t flops() const { return flops_; }
  void Reset() { flops_ = 0; }

 private:
  uint64_t flops_ = 0;
};

}  // namespace colsgd

#endif  // COLSGD_SIMNET_COMPUTE_MODEL_H_
