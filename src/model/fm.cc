#include "model/fm.h"

#include <cmath>

#include "common/rng.h"
#include "linalg/kernels/kernels.h"

namespace colsgd {

double FactorizationMachine::InitWeight(uint64_t feature, int j,
                                        uint64_t seed) const {
  if (j == 0) return 0.0;
  const uint64_t slot = feature * static_cast<uint64_t>(1 + num_factors_) +
                        static_cast<uint64_t>(j);
  return init_scale_ * GaussianFromHash(slot, seed);
}

void FactorizationMachine::ComputePartialStats(
    const BatchView& batch, const std::vector<double>& local_model,
    std::vector<double>* stats, FlopCounter* flops) const {
  const int F = num_factors_;
  const int wpf = 1 + F;
  COLSGD_CHECK_EQ(stats->size(), batch.size() * static_cast<size_t>(wpf));
  kernels::FmForwardRows(batch.rows.data(), batch.size(), F,
                         local_model.data(), stats->data());
  uint64_t work = 0;
  for (size_t i = 0; i < batch.size(); ++i) {
    work += batch.rows[i].nnz * (4 + 5 * static_cast<uint64_t>(F));
  }
  if (flops != nullptr) flops->Add(work);
}

double FactorizationMachine::ScoreFromStats(const double* stats) const {
  double score = stats[0];
  for (int c = 1; c <= num_factors_; ++c) {
    score += 0.5 * stats[c] * stats[c];
  }
  return score;
}

double FactorizationMachine::PointLoss(double y, double score) {
  return kernels::LinkLoss(kernels::GlmLink::kLogistic, y, score);
}

double FactorizationMachine::PointCoeff(double y, double score) {
  return kernels::LinkCoeff(kernels::GlmLink::kLogistic, y, score);
}

void FactorizationMachine::AccumulateGradFromStats(
    const BatchView& batch, const std::vector<double>& agg_stats,
    const std::vector<double>& local_model, GradAccumulator* grad,
    FlopCounter* flops) const {
  const int F = num_factors_;
  const int wpf = 1 + F;
  COLSGD_CHECK_EQ(agg_stats.size(), batch.size() * static_cast<size_t>(wpf));
  uint64_t work = 0;
  for (size_t i = 0; i < batch.size(); ++i) {
    const double* stats = agg_stats.data() + i * wpf;
    const double coeff = PointCoeff(batch.labels[i], ScoreFromStats(stats));
    if (coeff == 0.0) continue;
    const SparseVectorView& row = batch.rows[i];
    for (size_t j = 0; j < row.nnz; ++j) {
      const double x = row.values[j];
      const uint64_t base = static_cast<uint64_t>(row.indices[j]) * wpf;
      const double* w = local_model.data() + base;
      // Equation 12: dL/dw_f = coeff * x_f.
      grad->Add(base, coeff * x);
      // Equation 13: dL/dv_{f,c} = coeff * (x_f * stat_c - v_{f,c} x_f^2),
      // where stat_c = sum_j v_{j,c} x_j is the aggregated dot product.
      const double x2 = x * x;
      for (int c = 1; c <= F; ++c) {
        grad->Add(base + c, coeff * (x * stats[c] - w[c] * x2));
      }
    }
    work += row.nnz * (3 + 5 * static_cast<uint64_t>(F));
  }
  if (flops != nullptr) flops->Add(work);
}

double FactorizationMachine::BatchLossFromStats(
    const std::vector<double>& agg_stats,
    const std::vector<float>& labels) const {
  const int wpf = 1 + num_factors_;
  COLSGD_CHECK_EQ(agg_stats.size(), labels.size() * static_cast<size_t>(wpf));
  double loss = 0.0;
  for (size_t i = 0; i < labels.size(); ++i) {
    loss += PointLoss(labels[i], ScoreFromStats(agg_stats.data() + i * wpf));
  }
  return loss;
}

void FactorizationMachine::AccumulateRowGradient(const SparseVectorView& row,
                                                 float label,
                                                 const std::vector<double>& model,
                                                 GradAccumulator* grad,
                                                 FlopCounter* flops) const {
  // Single-node version: compute the F+1 statistics of this row, then reuse
  // the stats-based gradient. This is exactly what the column path does with
  // one partition, which keeps the two paths trivially consistent.
  const int wpf = 1 + num_factors_;
  std::vector<double> stats(wpf, 0.0);
  BatchView batch;
  batch.rows = {row};
  batch.labels = {label};
  ComputePartialStats(batch, model, &stats, flops);
  AccumulateGradFromStats(batch, stats, model, grad, flops);
}

double FactorizationMachine::RowScore(const SparseVectorView& row,
                                      const std::vector<double>& model) const {
  const int wpf = 1 + num_factors_;
  std::vector<double> stats(wpf, 0.0);
  BatchView batch;
  batch.rows = {row};
  batch.labels = {0.0f};
  ComputePartialStats(batch, model, &stats, nullptr);
  return ScoreFromStats(stats.data());
}

double FactorizationMachine::RowLoss(const SparseVectorView& row, float label,
                                     const std::vector<double>& model,
                                     FlopCounter* flops) const {
  const int wpf = 1 + num_factors_;
  std::vector<double> stats(wpf, 0.0);
  BatchView batch;
  batch.rows = {row};
  batch.labels = {label};
  ComputePartialStats(batch, model, &stats, flops);
  return PointLoss(label, ScoreFromStats(stats.data()));
}

void FactorizationMachine::RowBatchForwardGrad(const BatchView& batch,
                                               const std::vector<double>& model,
                                               GradAccumulator* grad,
                                               double* loss_sum,
                                               FlopCounter* flops) const {
  const int F = num_factors_;
  const int wpf = 1 + F;
  const size_t n = batch.size();
  // One kernel forward for the whole batch. The seed path ran the forward
  // once for the loss and again for the gradient, so the charge below keeps
  // both passes; the statistics themselves are the same ordered chains.
  std::vector<double> stats(n * static_cast<size_t>(wpf), 0.0);
  kernels::FmForwardRows(batch.rows.data(), n, F, model.data(), stats.data());
  const uint64_t fwd_flops_per_nnz = 4 + 5 * static_cast<uint64_t>(F);
  const uint64_t grad_flops_per_nnz = 3 + 5 * static_cast<uint64_t>(F);
  uint64_t work = 0;
  for (size_t i = 0; i < n; ++i) {
    const double* s = stats.data() + i * wpf;
    const double score = ScoreFromStats(s);
    const SparseVectorView& row = batch.rows[i];
    if (loss_sum != nullptr) {
      *loss_sum += PointLoss(batch.labels[i], score);
      work += row.nnz * fwd_flops_per_nnz;  // the loss pass's forward
    }
    work += row.nnz * fwd_flops_per_nnz;  // the gradient pass's forward
    const double coeff = PointCoeff(batch.labels[i], score);
    if (coeff == 0.0) continue;
    for (size_t j = 0; j < row.nnz; ++j) {
      const double x = row.values[j];
      const uint64_t base = static_cast<uint64_t>(row.indices[j]) * wpf;
      const double* w = model.data() + base;
      grad->Add(base, coeff * x);
      const double x2 = x * x;
      for (int c = 1; c <= F; ++c) {
        grad->Add(base + c, coeff * (x * s[c] - w[c] * x2));
      }
    }
    work += row.nnz * grad_flops_per_nnz;
  }
  if (flops != nullptr) flops->Add(work);
}

}  // namespace colsgd
