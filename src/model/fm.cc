#include "model/fm.h"

#include <cmath>

#include "common/rng.h"

namespace colsgd {

double FactorizationMachine::InitWeight(uint64_t feature, int j,
                                        uint64_t seed) const {
  if (j == 0) return 0.0;
  const uint64_t slot = feature * static_cast<uint64_t>(1 + num_factors_) +
                        static_cast<uint64_t>(j);
  return init_scale_ * GaussianFromHash(slot, seed);
}

void FactorizationMachine::ComputePartialStats(
    const BatchView& batch, const std::vector<double>& local_model,
    std::vector<double>* stats, FlopCounter* flops) const {
  const int F = num_factors_;
  const int wpf = 1 + F;
  COLSGD_CHECK_EQ(stats->size(), batch.size() * static_cast<size_t>(wpf));
  uint64_t work = 0;
  for (size_t i = 0; i < batch.size(); ++i) {
    const SparseVectorView& row = batch.rows[i];
    double* out = stats->data() + i * wpf;
    for (size_t j = 0; j < row.nnz; ++j) {
      const double x = row.values[j];
      const double* w = local_model.data() +
                        static_cast<size_t>(row.indices[j]) * wpf;
      out[0] += w[0] * x;
      const double x2 = x * x;
      for (int c = 1; c <= F; ++c) {
        out[0] -= 0.5 * w[c] * w[c] * x2;
        out[c] += w[c] * x;
      }
    }
    work += row.nnz * (4 + 5 * static_cast<uint64_t>(F));
  }
  if (flops != nullptr) flops->Add(work);
}

double FactorizationMachine::ScoreFromStats(const double* stats) const {
  double score = stats[0];
  for (int c = 1; c <= num_factors_; ++c) {
    score += 0.5 * stats[c] * stats[c];
  }
  return score;
}

double FactorizationMachine::PointLoss(double y, double score) {
  const double z = y * score;
  if (z > 30.0) return std::exp(-z);
  if (z < -30.0) return -z;
  return std::log1p(std::exp(-z));
}

double FactorizationMachine::PointCoeff(double y, double score) {
  const double z = y * score;
  if (z > 30.0) return -y * std::exp(-z);
  return -y / (1.0 + std::exp(z));
}

void FactorizationMachine::AccumulateGradFromStats(
    const BatchView& batch, const std::vector<double>& agg_stats,
    const std::vector<double>& local_model, GradAccumulator* grad,
    FlopCounter* flops) const {
  const int F = num_factors_;
  const int wpf = 1 + F;
  COLSGD_CHECK_EQ(agg_stats.size(), batch.size() * static_cast<size_t>(wpf));
  uint64_t work = 0;
  for (size_t i = 0; i < batch.size(); ++i) {
    const double* stats = agg_stats.data() + i * wpf;
    const double coeff = PointCoeff(batch.labels[i], ScoreFromStats(stats));
    if (coeff == 0.0) continue;
    const SparseVectorView& row = batch.rows[i];
    for (size_t j = 0; j < row.nnz; ++j) {
      const double x = row.values[j];
      const uint64_t base = static_cast<uint64_t>(row.indices[j]) * wpf;
      const double* w = local_model.data() + base;
      // Equation 12: dL/dw_f = coeff * x_f.
      grad->Add(base, coeff * x);
      // Equation 13: dL/dv_{f,c} = coeff * (x_f * stat_c - v_{f,c} x_f^2),
      // where stat_c = sum_j v_{j,c} x_j is the aggregated dot product.
      const double x2 = x * x;
      for (int c = 1; c <= F; ++c) {
        grad->Add(base + c, coeff * (x * stats[c] - w[c] * x2));
      }
    }
    work += row.nnz * (3 + 5 * static_cast<uint64_t>(F));
  }
  if (flops != nullptr) flops->Add(work);
}

double FactorizationMachine::BatchLossFromStats(
    const std::vector<double>& agg_stats,
    const std::vector<float>& labels) const {
  const int wpf = 1 + num_factors_;
  COLSGD_CHECK_EQ(agg_stats.size(), labels.size() * static_cast<size_t>(wpf));
  double loss = 0.0;
  for (size_t i = 0; i < labels.size(); ++i) {
    loss += PointLoss(labels[i], ScoreFromStats(agg_stats.data() + i * wpf));
  }
  return loss;
}

void FactorizationMachine::AccumulateRowGradient(const SparseVectorView& row,
                                                 float label,
                                                 const std::vector<double>& model,
                                                 GradAccumulator* grad,
                                                 FlopCounter* flops) const {
  // Single-node version: compute the F+1 statistics of this row, then reuse
  // the stats-based gradient. This is exactly what the column path does with
  // one partition, which keeps the two paths trivially consistent.
  const int wpf = 1 + num_factors_;
  std::vector<double> stats(wpf, 0.0);
  BatchView batch;
  batch.rows = {row};
  batch.labels = {label};
  ComputePartialStats(batch, model, &stats, flops);
  AccumulateGradFromStats(batch, stats, model, grad, flops);
}

double FactorizationMachine::RowScore(const SparseVectorView& row,
                                      const std::vector<double>& model) const {
  const int wpf = 1 + num_factors_;
  std::vector<double> stats(wpf, 0.0);
  BatchView batch;
  batch.rows = {row};
  batch.labels = {0.0f};
  ComputePartialStats(batch, model, &stats, nullptr);
  return ScoreFromStats(stats.data());
}

double FactorizationMachine::RowLoss(const SparseVectorView& row, float label,
                                     const std::vector<double>& model,
                                     FlopCounter* flops) const {
  const int wpf = 1 + num_factors_;
  std::vector<double> stats(wpf, 0.0);
  BatchView batch;
  batch.rows = {row};
  batch.labels = {label};
  ComputePartialStats(batch, model, &stats, flops);
  return PointLoss(label, ScoreFromStats(stats.data()));
}

}  // namespace colsgd
