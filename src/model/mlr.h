// Multinomial Logistic Regression (Appendix VIII-C of the paper).
//
// The model is an m x C matrix; feature f owns C consecutive weight slots.
// Statistics per data point are the C dot products <w_c, x>; after
// aggregation every worker recovers the softmax locally.
#ifndef COLSGD_MODEL_MLR_H_
#define COLSGD_MODEL_MLR_H_

#include "model/model_spec.h"

namespace colsgd {

class MultinomialLogisticRegression : public ModelSpec {
 public:
  explicit MultinomialLogisticRegression(int num_classes)
      : num_classes_(num_classes) {
    COLSGD_CHECK_GE(num_classes, 2);
  }

  std::string name() const override {
    return "mlr" + std::to_string(num_classes_);
  }
  int weights_per_feature() const override { return num_classes_; }
  int stats_per_point() const override { return num_classes_; }
  int num_classes() const { return num_classes_; }

  void ComputePartialStats(const BatchView& batch,
                           const std::vector<double>& local_model,
                           std::vector<double>* stats,
                           FlopCounter* flops) const override;

  void AccumulateGradFromStats(const BatchView& batch,
                               const std::vector<double>& agg_stats,
                               const std::vector<double>& local_model,
                               GradAccumulator* grad,
                               FlopCounter* flops) const override;

  double BatchLossFromStats(const std::vector<double>& agg_stats,
                            const std::vector<float>& labels) const override;

  void AccumulateRowGradient(const SparseVectorView& row, float label,
                             const std::vector<double>& model,
                             GradAccumulator* grad,
                             FlopCounter* flops) const override;

  double RowLoss(const SparseVectorView& row, float label,
                 const std::vector<double>& model,
                 FlopCounter* flops) const override;

  void RowBatchForwardGrad(const BatchView& batch,
                           const std::vector<double>& model,
                           GradAccumulator* grad, double* loss_sum,
                           FlopCounter* flops) const override;

  /// \brief The predicted class: argmax over the C aggregated dot products
  /// (the softmax is monotone, so no exponentials are needed). Ties break
  /// toward the smaller class id.
  double ScoreFromStats(const double* stats) const override {
    int best = 0;
    for (int c = 1; c < num_classes_; ++c) {
      if (stats[c] > stats[best]) best = c;
    }
    return static_cast<double>(best);
  }

 private:
  /// \brief Softmax probabilities from the C scores of one point.
  void Softmax(const double* scores, std::vector<double>* probs) const;

  int num_classes_;
};

}  // namespace colsgd

#endif  // COLSGD_MODEL_MLR_H_
