// Two-layer perceptron with a column-partitioned input layer — the
// fully-connected-network case of Section III-C of the paper.
//
// Architecture: z1 = W1^T x + b1 (H hidden units), a = tanh(z1),
// o = w2^T a + b2, logistic loss on labels in {-1, +1}.
//
// Column mapping:
//  * W1 rows partition by input feature: feature f owns H weight slots
//    (weights_per_feature() == H), collocated with f's data column.
//  * The statistics per data point are the H partial pre-activations
//    sum_{f local} W1[f,:] x_f — exactly the "aggregate the dot products at
//    each layer" synchronization the paper describes. After the reduce +
//    broadcast, every worker holds the full z1 of the batch.
//  * b1, w2, b2 are shared parameters (2H+1 values), replicated on every
//    worker: the backward pass for them depends only on the broadcast
//    statistics and the labels, so all replicas compute identical updates
//    with zero extra communication.
//
// The row path is intentionally unsupported: the paper only develops FC
// layers for the column framework, and our RowSGD baselines model GLM/FM
// workloads. Calling the row-path methods dies with a CHECK.
#ifndef COLSGD_MODEL_MLP_H_
#define COLSGD_MODEL_MLP_H_

#include "model/model_spec.h"

namespace colsgd {

class MlpModel : public ModelSpec {
 public:
  /// \param hidden_units H, the width of the hidden layer.
  explicit MlpModel(int hidden_units, double init_scale = 0.1)
      : hidden_(hidden_units), init_scale_(init_scale) {
    COLSGD_CHECK_GE(hidden_units, 1);
  }

  std::string name() const override { return "mlp" + std::to_string(hidden_); }
  int weights_per_feature() const override { return hidden_; }
  int stats_per_point() const override { return hidden_; }
  int hidden_units() const { return hidden_; }

  double InitWeight(uint64_t feature, int j, uint64_t seed) const override;

  // Shared block layout: [w2 (H), b2 (1), b1 (H)].
  size_t num_shared_params() const override {
    return 2 * static_cast<size_t>(hidden_) + 1;
  }
  double InitSharedParam(size_t index, uint64_t seed) const override;

  void ComputePartialStats(const BatchView& batch,
                           const std::vector<double>& local_model,
                           std::vector<double>* stats,
                           FlopCounter* flops) const override;

  double BatchLossFromStatsShared(const std::vector<double>& agg_stats,
                                  const std::vector<float>& labels,
                                  const std::vector<double>& shared)
      const override;

  void AccumulateGradFromStatsShared(const BatchView& batch,
                                     const std::vector<double>& agg_stats,
                                     const std::vector<double>& local_model,
                                     const std::vector<double>& shared,
                                     GradAccumulator* grad,
                                     std::vector<double>* shared_grad,
                                     FlopCounter* flops) const override;

  bool SupportsRowPath() const override { return false; }
  /// \brief Scoring needs the replicated output layer, not just the
  /// aggregated hidden statistics; the serving plane rejects the MLP.
  bool SupportsStatScore() const override { return false; }

  // Shared-free overloads are meaningless for the MLP.
  double BatchLossFromStats(const std::vector<double>&,
                            const std::vector<float>&) const override;
  void AccumulateGradFromStats(const BatchView&, const std::vector<double>&,
                               const std::vector<double>&, GradAccumulator*,
                               FlopCounter*) const override;
  void AccumulateRowGradient(const SparseVectorView&, float,
                             const std::vector<double>&, GradAccumulator*,
                             FlopCounter*) const override;
  double RowLoss(const SparseVectorView&, float, const std::vector<double>&,
                 FlopCounter*) const override;

 private:
  /// \brief Forward pass of one point from its aggregated statistics:
  /// returns the output logit and fills `activations` (size H).
  double Forward(const double* stats, const std::vector<double>& shared,
                 std::vector<double>* activations) const;

  int hidden_;
  double init_scale_;
};

}  // namespace colsgd

#endif  // COLSGD_MODEL_MLP_H_
