// Degree-2 Factorization Machine with logistic loss
// (Appendix VIII-D of the paper; Rendle 2010).
//
// Feature f owns 1 + F weight slots: [w_f, v_{f,1}, ..., v_{f,F}].
// Using the paper's Equation 10 rewrite,
//
//   y(x) = sum_f w_f x_f - 1/2 sum_c sum_f v_{f,c}^2 x_f^2
//          + 1/2 sum_c (sum_f v_{f,c} x_f)^2
//
// the statistics per data point are F+1 numbers that are additive across
// column partitions:
//   stat_0   = sum_f (w_f x_f - 1/2 sum_c v_{f,c}^2 x_f^2)
//   stat_c   = sum_f v_{f,c} x_f,   c = 1..F
// so y(x) = stat_0 + 1/2 sum_c stat_c^2 after aggregation.
#ifndef COLSGD_MODEL_FM_H_
#define COLSGD_MODEL_FM_H_

#include "model/model_spec.h"

namespace colsgd {

class FactorizationMachine : public ModelSpec {
 public:
  /// \param num_factors F, the latent dimensionality.
  /// \param init_scale  stddev of the latent-factor initialization.
  explicit FactorizationMachine(int num_factors, double init_scale = 0.01)
      : num_factors_(num_factors), init_scale_(init_scale) {
    COLSGD_CHECK_GE(num_factors, 1);
  }

  std::string name() const override {
    return "fm" + std::to_string(num_factors_);
  }
  int weights_per_feature() const override { return 1 + num_factors_; }
  int stats_per_point() const override { return 1 + num_factors_; }
  int num_factors() const { return num_factors_; }

  /// \brief w starts at 0; latent factors at small hash-seeded Gaussians
  /// (a zero V would have zero gradient and never move).
  double InitWeight(uint64_t feature, int j, uint64_t seed) const override;

  void ComputePartialStats(const BatchView& batch,
                           const std::vector<double>& local_model,
                           std::vector<double>* stats,
                           FlopCounter* flops) const override;

  void AccumulateGradFromStats(const BatchView& batch,
                               const std::vector<double>& agg_stats,
                               const std::vector<double>& local_model,
                               GradAccumulator* grad,
                               FlopCounter* flops) const override;

  double BatchLossFromStats(const std::vector<double>& agg_stats,
                            const std::vector<float>& labels) const override;

  void AccumulateRowGradient(const SparseVectorView& row, float label,
                             const std::vector<double>& model,
                             GradAccumulator* grad,
                             FlopCounter* flops) const override;

  double RowLoss(const SparseVectorView& row, float label,
                 const std::vector<double>& model,
                 FlopCounter* flops) const override;

  void RowBatchForwardGrad(const BatchView& batch,
                           const std::vector<double>& model,
                           GradAccumulator* grad, double* loss_sum,
                           FlopCounter* flops) const override;

  /// \brief The FM output y(x) of Equation 9/10.
  double RowScore(const SparseVectorView& row,
                  const std::vector<double>& model) const override;

  /// \brief y(x) = stat_0 + 1/2 sum_c stat_c^2 from one point's aggregated
  /// statistics.
  double ScoreFromStats(const double* stats) const override;

 private:
  /// \brief Logistic loss/coefficient on the FM score.
  static double PointLoss(double y, double score);
  static double PointCoeff(double y, double score);

  int num_factors_;
  double init_scale_;
};

}  // namespace colsgd

#endif  // COLSGD_MODEL_FM_H_
