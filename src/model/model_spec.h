// The ColumnSGD programming interface (Appendix IX of the paper).
//
// A ModelSpec describes one trainable model through two computation paths:
//
//  * the COLUMN path (initModel / computeStat / reduceStat / updateModel):
//    partial statistics are computed from a worker's local column shard and
//    local model partition; the master reduces them (element-wise sum); each
//    worker then turns the aggregated statistics into gradients for its own
//    dimensions. This is Algorithm 3.
//
//  * the ROW path: the classic gradient computation from a full row and a
//    full model, used by the RowSGD baseline engines (MLlib, PS, MLlib*).
//
// The two paths are mathematically equivalent; tests/model_equivalence_test
// checks that they produce identical updates.
//
// Weight layout: feature f contributes `weights_per_feature()` consecutive
// slots starting at f * weights_per_feature() (global layout), or at
// local_index(f) * weights_per_feature() (partitioned layout). GLMs have one
// weight per feature; MLR has C; FM has 1 + F (w plus the latent factors).
#ifndef COLSGD_MODEL_MODEL_SPEC_H_
#define COLSGD_MODEL_MODEL_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "linalg/sparse.h"
#include "simnet/compute_model.h"

namespace colsgd {

/// \brief A sampled mini-batch as seen by one node: row views (local shards
/// on the column path, full rows on the row path) plus labels.
struct BatchView {
  std::vector<SparseVectorView> rows;
  std::vector<float> labels;

  size_t size() const { return rows.size(); }
};

/// \brief Sparse gradient accumulator over a dense slot space: O(1) adds,
/// O(touched) iteration and reset. One instance is reused across iterations.
class GradAccumulator {
 public:
  explicit GradAccumulator(size_t num_slots)
      : grad_(num_slots, 0.0), is_touched_(num_slots, 0) {}

  void Add(uint64_t slot, double g) {
    COLSGD_CHECK_LT(slot, grad_.size());
    if (!is_touched_[slot]) {
      is_touched_[slot] = 1;
      touched_.push_back(slot);
    }
    grad_[slot] += g;
  }

  const std::vector<uint64_t>& touched() const { return touched_; }
  double value(uint64_t slot) const { return grad_[slot]; }
  size_t num_slots() const { return grad_.size(); }

  void Reset() {
    for (uint64_t slot : touched_) {
      grad_[slot] = 0.0;
      is_touched_[slot] = 0;
    }
    touched_.clear();
  }

 private:
  std::vector<double> grad_;
  std::vector<uint8_t> is_touched_;
  std::vector<uint64_t> touched_;
};

/// \brief One trainable model (LR, SVM, MLR, FM, ...).
class ModelSpec {
 public:
  virtual ~ModelSpec() = default;

  virtual std::string name() const = 0;

  /// \brief Weight slots per feature (1 GLM, C MLR, 1+F FM).
  virtual int weights_per_feature() const = 0;

  /// \brief Doubles of statistics exchanged per sampled data point
  /// (1 for LR/SVM, C for MLR, F+1 for FM).
  virtual int stats_per_point() const = 0;

  /// \brief Initial value of weight slot `j` of feature `feature`.
  /// Deterministic in (feature, j, seed) so that row- and column-partitioned
  /// layouts initialize identically. GLM weights start at 0; FM latent
  /// factors need small random values (a zero V has zero gradient).
  virtual double InitWeight(uint64_t feature, int j, uint64_t seed) const {
    (void)feature;
    (void)j;
    (void)seed;
    return 0.0;
  }

  // ---- Column path (Algorithm 3) ----------------------------------------

  /// \brief computeStat: partial statistics from the local shard and local
  /// model partition. `stats` has batch.size() * stats_per_point() entries,
  /// pre-zeroed by the caller. reduceStat is an element-wise sum.
  virtual void ComputePartialStats(const BatchView& batch,
                                   const std::vector<double>& local_model,
                                   std::vector<double>* stats,
                                   FlopCounter* flops) const = 0;

  /// \brief updateModel step 1: gradients of the local dimensions from the
  /// aggregated statistics. Row i of `batch` corresponds to statistics
  /// [i*stats_per_point(), (i+1)*stats_per_point()). Gradients are summed
  /// over the batch (not averaged; the engine scales by 1/B).
  virtual void AccumulateGradFromStats(const BatchView& batch,
                                       const std::vector<double>& agg_stats,
                                       const std::vector<double>& local_model,
                                       GradAccumulator* grad,
                                       FlopCounter* flops) const = 0;

  /// \brief Batch data loss (sum over points) from aggregated statistics and
  /// labels; any worker can evaluate this locally after the broadcast.
  virtual double BatchLossFromStats(const std::vector<double>& agg_stats,
                                    const std::vector<float>& labels) const = 0;

  /// \brief Decision value of one data point from its aggregated statistics
  /// (stats_per_point() doubles): the margin for binary models, y(x) for
  /// FMs, the argmax class id for MLR. This is the reduce step of the
  /// column-sharded inference path (src/serve): partial statistics from the
  /// feature shards sum to exactly the statistics of the full row, so the
  /// score computed here equals the row path's RowScore up to float
  /// reassociation. Models that cannot score from statistics alone (the MLP
  /// needs its shared output layer) die.
  virtual double ScoreFromStats(const double* stats) const {
    (void)stats;
    COLSGD_CHECK(false) << name() << " cannot score from statistics alone";
    return 0.0;
  }

  /// \brief Whether ScoreFromStats is implemented — i.e. whether the model
  /// can be served on the column-sharded inference plane. Callers (the
  /// serving frontend, colsgd_predict) check this instead of crashing.
  virtual bool SupportsStatScore() const { return true; }

  // ---- Shared (replicated) parameters ------------------------------------
  //
  // Some models carry a small parameter block that cannot be partitioned by
  // feature — e.g. the hidden-to-output layer of an MLP (Section III-C of
  // the paper: fully-connected layers are supported by synchronizing layer
  // statistics). Shared parameters are replicated on every worker and
  // updated identically from the broadcast statistics, so they add no
  // communication. Models without such parameters ignore this block.

  virtual size_t num_shared_params() const { return 0; }
  virtual double InitSharedParam(size_t index, uint64_t seed) const {
    (void)index;
    (void)seed;
    return 0.0;
  }

  /// \brief Batch loss for models whose loss depends on shared parameters;
  /// defaults to the shared-free overload.
  virtual double BatchLossFromStatsShared(
      const std::vector<double>& agg_stats, const std::vector<float>& labels,
      const std::vector<double>& shared) const {
    (void)shared;
    return BatchLossFromStats(agg_stats, labels);
  }

  /// \brief Gradient accumulation with shared parameters: fills
  /// `shared_grad` (pre-zeroed, size num_shared_params()) in addition to the
  /// per-feature gradients. Defaults to the shared-free overload.
  virtual void AccumulateGradFromStatsShared(
      const BatchView& batch, const std::vector<double>& agg_stats,
      const std::vector<double>& local_model,
      const std::vector<double>& shared, GradAccumulator* grad,
      std::vector<double>* shared_grad, FlopCounter* flops) const {
    (void)shared;
    (void)shared_grad;
    AccumulateGradFromStats(batch, agg_stats, local_model, grad, flops);
  }

  /// \brief Whether the classic row path (full row x full model) is
  /// implemented. Models that exist only in the column framework (the MLP
  /// of Section III-C) return false; callers must not route them through
  /// RowSGD engines or row-based evaluation.
  virtual bool SupportsRowPath() const { return true; }

  // ---- Row path (RowSGD baselines) ---------------------------------------

  /// \brief Classic gradient of one full row against a full (global-layout)
  /// model, summed into `grad`.
  virtual void AccumulateRowGradient(const SparseVectorView& row, float label,
                                     const std::vector<double>& model,
                                     GradAccumulator* grad,
                                     FlopCounter* flops) const = 0;

  /// \brief Loss of one full row against a full model.
  virtual double RowLoss(const SparseVectorView& row, float label,
                         const std::vector<double>& model,
                         FlopCounter* flops) const = 0;

  /// \brief Fused forward + gradient over a sampled row batch — the hot
  /// loop of every RowSGD baseline engine. Semantically identical to, and
  /// charged exactly like, the per-row sequence
  ///
  ///   if (loss_sum) *loss_sum += RowLoss(row, label, model, flops);
  ///   AccumulateRowGradient(row, label, model, grad, flops);
  ///
  /// in batch order (`loss_sum == nullptr` skips the loss pass and its flop
  /// charge — MLlib*'s extra local steps). Models override this to run the
  /// kernel layer's forward once per row (mode-dispatched, DESIGN.md §18)
  /// and reuse the scores for both loss and gradient; the scatter stays in
  /// batch order, so every kernel mode produces the seed's exact bits.
  virtual void RowBatchForwardGrad(const BatchView& batch,
                                   const std::vector<double>& model,
                                   GradAccumulator* grad, double* loss_sum,
                                   FlopCounter* flops) const {
    for (size_t i = 0; i < batch.size(); ++i) {
      if (loss_sum != nullptr) {
        *loss_sum += RowLoss(batch.rows[i], batch.labels[i], model, flops);
      }
      AccumulateRowGradient(batch.rows[i], batch.labels[i], model, grad,
                            flops);
    }
  }

  /// \brief Decision score of one row against a full (global-layout) model:
  /// the margin for binary models, y(x) for FMs. Used by evaluation metrics
  /// (accuracy / AUC). Models without a scalar score (MLR) die.
  virtual double RowScore(const SparseVectorView& row,
                          const std::vector<double>& model) const {
    (void)row;
    (void)model;
    COLSGD_CHECK(false) << name() << " has no scalar decision score";
    return 0.0;
  }
};

}  // namespace colsgd

#endif  // COLSGD_MODEL_MODEL_SPEC_H_
