#include "model/glm.h"

#include <cmath>

namespace colsgd {

void BinaryGlm::ComputePartialStats(const BatchView& batch,
                                    const std::vector<double>& local_model,
                                    std::vector<double>* stats,
                                    FlopCounter* flops) const {
  COLSGD_CHECK_EQ(stats->size(), batch.size());
  uint64_t work = 0;
  for (size_t i = 0; i < batch.size(); ++i) {
    (*stats)[i] += batch.rows[i].Dot(local_model);
    work += 2 * batch.rows[i].nnz;
  }
  if (flops != nullptr) flops->Add(work);
}

void BinaryGlm::AccumulateGradFromStats(const BatchView& batch,
                                        const std::vector<double>& agg_stats,
                                        const std::vector<double>& local_model,
                                        GradAccumulator* grad,
                                        FlopCounter* flops) const {
  (void)local_model;
  COLSGD_CHECK_EQ(agg_stats.size(), batch.size());
  uint64_t work = 0;
  for (size_t i = 0; i < batch.size(); ++i) {
    const double coeff = PointCoeff(batch.labels[i], agg_stats[i]);
    if (coeff == 0.0) continue;  // e.g. hinge loss outside the margin
    const SparseVectorView& row = batch.rows[i];
    for (size_t j = 0; j < row.nnz; ++j) {
      grad->Add(row.indices[j], coeff * static_cast<double>(row.values[j]));
    }
    work += 2 * row.nnz;
  }
  if (flops != nullptr) flops->Add(work);
}

double BinaryGlm::BatchLossFromStats(const std::vector<double>& agg_stats,
                                     const std::vector<float>& labels) const {
  COLSGD_CHECK_EQ(agg_stats.size(), labels.size());
  double loss = 0.0;
  for (size_t i = 0; i < labels.size(); ++i) {
    loss += PointLoss(labels[i], agg_stats[i]);
  }
  return loss;
}

void BinaryGlm::AccumulateRowGradient(const SparseVectorView& row, float label,
                                      const std::vector<double>& model,
                                      GradAccumulator* grad,
                                      FlopCounter* flops) const {
  const double s = row.Dot(model);
  const double coeff = PointCoeff(label, s);
  if (coeff != 0.0) {
    for (size_t j = 0; j < row.nnz; ++j) {
      grad->Add(row.indices[j], coeff * static_cast<double>(row.values[j]));
    }
  }
  if (flops != nullptr) flops->Add(4 * row.nnz);
}

double BinaryGlm::RowLoss(const SparseVectorView& row, float label,
                          const std::vector<double>& model,
                          FlopCounter* flops) const {
  if (flops != nullptr) flops->Add(2 * row.nnz);
  return PointLoss(label, row.Dot(model));
}

double LogisticRegression::PointLoss(double y, double s) const {
  // log(1 + exp(-ys)) computed stably for large |ys|.
  const double z = y * s;
  if (z > 30.0) return std::exp(-z);
  if (z < -30.0) return -z;
  return std::log1p(std::exp(-z));
}

double LogisticRegression::PointCoeff(double y, double s) const {
  // -y / (1 + exp(ys)), Equation 6 of the paper.
  const double z = y * s;
  if (z > 30.0) return -y * std::exp(-z);
  return -y / (1.0 + std::exp(z));
}

double LinearSvm::PointLoss(double y, double s) const {
  const double margin = 1.0 - y * s;
  return margin > 0.0 ? margin : 0.0;
}

double LinearSvm::PointCoeff(double y, double s) const {
  // Subgradient of the hinge loss, Equation 4 of the paper.
  return (1.0 - y * s > 0.0) ? -y : 0.0;
}

double LeastSquares::PointLoss(double y, double s) const {
  return 0.5 * (s - y) * (s - y);
}

double LeastSquares::PointCoeff(double y, double s) const { return s - y; }

}  // namespace colsgd
