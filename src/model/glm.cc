#include "model/glm.h"

#include <vector>

namespace colsgd {

void BinaryGlm::ComputePartialStats(const BatchView& batch,
                                    const std::vector<double>& local_model,
                                    std::vector<double>* stats,
                                    FlopCounter* flops) const {
  COLSGD_CHECK_EQ(stats->size(), batch.size());
  kernels::SpmvRows(batch.rows.data(), batch.size(), local_model.data(),
                    stats->data());
  uint64_t work = 0;
  for (size_t i = 0; i < batch.size(); ++i) work += 2 * batch.rows[i].nnz;
  if (flops != nullptr) flops->Add(work);
}

void BinaryGlm::AccumulateGradFromStats(const BatchView& batch,
                                        const std::vector<double>& agg_stats,
                                        const std::vector<double>& local_model,
                                        GradAccumulator* grad,
                                        FlopCounter* flops) const {
  (void)local_model;
  COLSGD_CHECK_EQ(agg_stats.size(), batch.size());
  const kernels::GlmLink lk = link();
  uint64_t work = 0;
  for (size_t i = 0; i < batch.size(); ++i) {
    const double coeff = kernels::LinkCoeff(lk, batch.labels[i], agg_stats[i]);
    if (coeff == 0.0) continue;  // e.g. hinge loss outside the margin
    kernels::ScatterRow(batch.rows[i], coeff, grad);
    work += 2 * batch.rows[i].nnz;
  }
  if (flops != nullptr) flops->Add(work);
}

double BinaryGlm::BatchLossFromStats(const std::vector<double>& agg_stats,
                                     const std::vector<float>& labels) const {
  COLSGD_CHECK_EQ(agg_stats.size(), labels.size());
  const kernels::GlmLink lk = link();
  double loss = 0.0;
  for (size_t i = 0; i < labels.size(); ++i) {
    loss += kernels::LinkLoss(lk, labels[i], agg_stats[i]);
  }
  return loss;
}

void BinaryGlm::AccumulateRowGradient(const SparseVectorView& row, float label,
                                      const std::vector<double>& model,
                                      GradAccumulator* grad,
                                      FlopCounter* flops) const {
  const double s =
      kernels::SparseDot(row.indices, row.values, row.nnz, model.data());
  const double coeff = kernels::LinkCoeff(link(), label, s);
  if (coeff != 0.0) kernels::ScatterRow(row, coeff, grad);
  if (flops != nullptr) flops->Add(4 * row.nnz);
}

double BinaryGlm::RowLoss(const SparseVectorView& row, float label,
                          const std::vector<double>& model,
                          FlopCounter* flops) const {
  if (flops != nullptr) flops->Add(2 * row.nnz);
  return kernels::LinkLoss(
      link(), label,
      kernels::SparseDot(row.indices, row.values, row.nnz, model.data()));
}

void BinaryGlm::RowBatchForwardGrad(const BatchView& batch,
                                    const std::vector<double>& model,
                                    GradAccumulator* grad, double* loss_sum,
                                    FlopCounter* flops) const {
  const size_t n = batch.size();
  // Forward once per row (the seed path computed each dot twice); the score
  // is the same ordered chain, so loss and coefficient are bit-identical.
  std::vector<double> scores(n, 0.0);
  kernels::SpmvRows(batch.rows.data(), n, model.data(), scores.data());
  const kernels::GlmLink lk = link();
  uint64_t work = 0;
  for (size_t i = 0; i < n; ++i) {
    if (loss_sum != nullptr) {
      *loss_sum += kernels::LinkLoss(lk, batch.labels[i], scores[i]);
      work += 2 * batch.rows[i].nnz;
    }
    const double coeff = kernels::LinkCoeff(lk, batch.labels[i], scores[i]);
    if (coeff != 0.0) kernels::ScatterRow(batch.rows[i], coeff, grad);
    work += 4 * batch.rows[i].nnz;
  }
  if (flops != nullptr) flops->Add(work);
}

}  // namespace colsgd
