#include "model/mlr.h"

#include <algorithm>
#include <cmath>

namespace colsgd {

void MultinomialLogisticRegression::Softmax(const double* scores,
                                            std::vector<double>* probs) const {
  probs->resize(num_classes_);
  double max_score = scores[0];
  for (int c = 1; c < num_classes_; ++c) {
    max_score = std::max(max_score, scores[c]);
  }
  double sum = 0.0;
  for (int c = 0; c < num_classes_; ++c) {
    (*probs)[c] = std::exp(scores[c] - max_score);
    sum += (*probs)[c];
  }
  for (int c = 0; c < num_classes_; ++c) (*probs)[c] /= sum;
}

void MultinomialLogisticRegression::ComputePartialStats(
    const BatchView& batch, const std::vector<double>& local_model,
    std::vector<double>* stats, FlopCounter* flops) const {
  const int C = num_classes_;
  COLSGD_CHECK_EQ(stats->size(), batch.size() * static_cast<size_t>(C));
  uint64_t work = 0;
  for (size_t i = 0; i < batch.size(); ++i) {
    const SparseVectorView& row = batch.rows[i];
    double* out = stats->data() + i * C;
    for (size_t j = 0; j < row.nnz; ++j) {
      const double v = row.values[j];
      const double* w = local_model.data() +
                        static_cast<size_t>(row.indices[j]) * C;
      for (int c = 0; c < C; ++c) out[c] += w[c] * v;
    }
    work += 2 * row.nnz * C;
  }
  if (flops != nullptr) flops->Add(work);
}

void MultinomialLogisticRegression::AccumulateGradFromStats(
    const BatchView& batch, const std::vector<double>& agg_stats,
    const std::vector<double>& local_model, GradAccumulator* grad,
    FlopCounter* flops) const {
  (void)local_model;
  const int C = num_classes_;
  COLSGD_CHECK_EQ(agg_stats.size(), batch.size() * static_cast<size_t>(C));
  std::vector<double> probs;
  uint64_t work = 0;
  for (size_t i = 0; i < batch.size(); ++i) {
    Softmax(agg_stats.data() + i * C, &probs);
    const int target = static_cast<int>(batch.labels[i]);
    COLSGD_CHECK_GE(target, 0);
    COLSGD_CHECK_LT(target, C);
    // Equation 8: grad_{w_c} = (softmax_c - t_c) * x.
    probs[target] -= 1.0;
    const SparseVectorView& row = batch.rows[i];
    for (size_t j = 0; j < row.nnz; ++j) {
      const double v = row.values[j];
      const uint64_t base = static_cast<uint64_t>(row.indices[j]) * C;
      for (int c = 0; c < C; ++c) {
        grad->Add(base + c, probs[c] * v);
      }
    }
    work += (2 * row.nnz + 3) * C;
  }
  if (flops != nullptr) flops->Add(work);
}

double MultinomialLogisticRegression::BatchLossFromStats(
    const std::vector<double>& agg_stats,
    const std::vector<float>& labels) const {
  const int C = num_classes_;
  COLSGD_CHECK_EQ(agg_stats.size(), labels.size() * static_cast<size_t>(C));
  std::vector<double> probs;
  double loss = 0.0;
  for (size_t i = 0; i < labels.size(); ++i) {
    Softmax(agg_stats.data() + i * C, &probs);
    const int target = static_cast<int>(labels[i]);
    loss += -std::log(std::max(probs[target], 1e-300));
  }
  return loss;
}

void MultinomialLogisticRegression::AccumulateRowGradient(
    const SparseVectorView& row, float label, const std::vector<double>& model,
    GradAccumulator* grad, FlopCounter* flops) const {
  const int C = num_classes_;
  std::vector<double> scores(C, 0.0);
  for (size_t j = 0; j < row.nnz; ++j) {
    const double v = row.values[j];
    const double* w = model.data() + static_cast<size_t>(row.indices[j]) * C;
    for (int c = 0; c < C; ++c) scores[c] += w[c] * v;
  }
  std::vector<double> probs;
  Softmax(scores.data(), &probs);
  const int target = static_cast<int>(label);
  probs[target] -= 1.0;
  for (size_t j = 0; j < row.nnz; ++j) {
    const double v = row.values[j];
    const uint64_t base = static_cast<uint64_t>(row.indices[j]) * C;
    for (int c = 0; c < C; ++c) grad->Add(base + c, probs[c] * v);
  }
  if (flops != nullptr) flops->Add(4 * row.nnz * C);
}

double MultinomialLogisticRegression::RowLoss(const SparseVectorView& row,
                                              float label,
                                              const std::vector<double>& model,
                                              FlopCounter* flops) const {
  const int C = num_classes_;
  std::vector<double> scores(C, 0.0);
  for (size_t j = 0; j < row.nnz; ++j) {
    const double v = row.values[j];
    const double* w = model.data() + static_cast<size_t>(row.indices[j]) * C;
    for (int c = 0; c < C; ++c) scores[c] += w[c] * v;
  }
  std::vector<double> probs;
  Softmax(scores.data(), &probs);
  if (flops != nullptr) flops->Add(2 * row.nnz * C);
  return -std::log(std::max(probs[static_cast<int>(label)], 1e-300));
}

}  // namespace colsgd
