#include "model/mlr.h"

#include <algorithm>
#include <cmath>

#include "linalg/kernels/kernels.h"

namespace colsgd {

void MultinomialLogisticRegression::Softmax(const double* scores,
                                            std::vector<double>* probs) const {
  probs->resize(num_classes_);
  double max_score = scores[0];
  for (int c = 1; c < num_classes_; ++c) {
    max_score = std::max(max_score, scores[c]);
  }
  double sum = 0.0;
  for (int c = 0; c < num_classes_; ++c) {
    (*probs)[c] = std::exp(scores[c] - max_score);
    sum += (*probs)[c];
  }
  for (int c = 0; c < num_classes_; ++c) (*probs)[c] /= sum;
}

void MultinomialLogisticRegression::ComputePartialStats(
    const BatchView& batch, const std::vector<double>& local_model,
    std::vector<double>* stats, FlopCounter* flops) const {
  const int C = num_classes_;
  COLSGD_CHECK_EQ(stats->size(), batch.size() * static_cast<size_t>(C));
  kernels::SpmvRowsMulti(batch.rows.data(), batch.size(), C,
                         local_model.data(), stats->data());
  uint64_t work = 0;
  for (size_t i = 0; i < batch.size(); ++i) work += 2 * batch.rows[i].nnz * C;
  if (flops != nullptr) flops->Add(work);
}

void MultinomialLogisticRegression::AccumulateGradFromStats(
    const BatchView& batch, const std::vector<double>& agg_stats,
    const std::vector<double>& local_model, GradAccumulator* grad,
    FlopCounter* flops) const {
  (void)local_model;
  const int C = num_classes_;
  COLSGD_CHECK_EQ(agg_stats.size(), batch.size() * static_cast<size_t>(C));
  std::vector<double> probs;
  uint64_t work = 0;
  for (size_t i = 0; i < batch.size(); ++i) {
    Softmax(agg_stats.data() + i * C, &probs);
    const int target = static_cast<int>(batch.labels[i]);
    COLSGD_CHECK_GE(target, 0);
    COLSGD_CHECK_LT(target, C);
    // Equation 8: grad_{w_c} = (softmax_c - t_c) * x.
    probs[target] -= 1.0;
    kernels::ScatterRowMulti(batch.rows[i], probs.data(), C, grad);
    work += (2 * batch.rows[i].nnz + 3) * C;
  }
  if (flops != nullptr) flops->Add(work);
}

double MultinomialLogisticRegression::BatchLossFromStats(
    const std::vector<double>& agg_stats,
    const std::vector<float>& labels) const {
  const int C = num_classes_;
  COLSGD_CHECK_EQ(agg_stats.size(), labels.size() * static_cast<size_t>(C));
  std::vector<double> probs;
  double loss = 0.0;
  for (size_t i = 0; i < labels.size(); ++i) {
    Softmax(agg_stats.data() + i * C, &probs);
    const int target = static_cast<int>(labels[i]);
    loss += -std::log(std::max(probs[target], 1e-300));
  }
  return loss;
}

void MultinomialLogisticRegression::AccumulateRowGradient(
    const SparseVectorView& row, float label, const std::vector<double>& model,
    GradAccumulator* grad, FlopCounter* flops) const {
  const int C = num_classes_;
  std::vector<double> scores(C, 0.0);
  kernels::SpmvRowsMulti(&row, 1, C, model.data(), scores.data());
  std::vector<double> probs;
  Softmax(scores.data(), &probs);
  const int target = static_cast<int>(label);
  probs[target] -= 1.0;
  kernels::ScatterRowMulti(row, probs.data(), C, grad);
  if (flops != nullptr) flops->Add(4 * row.nnz * C);
}

double MultinomialLogisticRegression::RowLoss(const SparseVectorView& row,
                                              float label,
                                              const std::vector<double>& model,
                                              FlopCounter* flops) const {
  const int C = num_classes_;
  std::vector<double> scores(C, 0.0);
  kernels::SpmvRowsMulti(&row, 1, C, model.data(), scores.data());
  std::vector<double> probs;
  Softmax(scores.data(), &probs);
  if (flops != nullptr) flops->Add(2 * row.nnz * C);
  return -std::log(std::max(probs[static_cast<int>(label)], 1e-300));
}

void MultinomialLogisticRegression::RowBatchForwardGrad(
    const BatchView& batch, const std::vector<double>& model,
    GradAccumulator* grad, double* loss_sum, FlopCounter* flops) const {
  const int C = num_classes_;
  const size_t n = batch.size();
  // Forward once per row (the seed path ran the class dots twice); softmax
  // and scatter stay serial in batch order.
  std::vector<double> scores(n * static_cast<size_t>(C), 0.0);
  kernels::SpmvRowsMulti(batch.rows.data(), n, C, model.data(), scores.data());
  std::vector<double> probs;
  uint64_t work = 0;
  for (size_t i = 0; i < n; ++i) {
    Softmax(scores.data() + i * C, &probs);
    const int target = static_cast<int>(batch.labels[i]);
    if (loss_sum != nullptr) {
      *loss_sum += -std::log(std::max(probs[target], 1e-300));
      work += 2 * batch.rows[i].nnz * C;
    }
    probs[target] -= 1.0;
    kernels::ScatterRowMulti(batch.rows[i], probs.data(), C, grad);
    work += 4 * batch.rows[i].nnz * C;
  }
  if (flops != nullptr) flops->Add(work);
}

}  // namespace colsgd
