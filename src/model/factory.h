// Model factory.
#ifndef COLSGD_MODEL_FACTORY_H_
#define COLSGD_MODEL_FACTORY_H_

#include <memory>
#include <string>

#include "model/model_spec.h"

namespace colsgd {

/// \brief Creates a model by name: "lr", "svm", "lsq", "mlr<C>"
/// (e.g. "mlr10"), "fm<F>" (e.g. "fm10"), "mlp<H>" (e.g. "mlp16";
/// ColumnSGD engine only).
std::unique_ptr<ModelSpec> MakeModel(const std::string& name);

}  // namespace colsgd

#endif  // COLSGD_MODEL_FACTORY_H_
