// Generalized linear models: Logistic Regression and linear SVM
// (Appendix VIII-A/B of the paper).
//
// Both share the same statistics — the dot product <w, x> per data point —
// and differ only in the loss and its derivative, so they share one base
// class parameterized by the margin-based loss.
#ifndef COLSGD_MODEL_GLM_H_
#define COLSGD_MODEL_GLM_H_

#include "linalg/kernels/kernels.h"
#include "model/model_spec.h"

namespace colsgd {

/// \brief Base for binary margin-based GLMs (labels +-1, one weight per
/// feature, statistics = dot products). All math executes through the
/// kernel layer (linalg/kernels); the loss family is named by link().
class BinaryGlm : public ModelSpec {
 public:
  int weights_per_feature() const override { return 1; }
  int stats_per_point() const override { return 1; }

  void ComputePartialStats(const BatchView& batch,
                           const std::vector<double>& local_model,
                           std::vector<double>* stats,
                           FlopCounter* flops) const override;

  void AccumulateGradFromStats(const BatchView& batch,
                               const std::vector<double>& agg_stats,
                               const std::vector<double>& local_model,
                               GradAccumulator* grad,
                               FlopCounter* flops) const override;

  double BatchLossFromStats(const std::vector<double>& agg_stats,
                            const std::vector<float>& labels) const override;

  void AccumulateRowGradient(const SparseVectorView& row, float label,
                             const std::vector<double>& model,
                             GradAccumulator* grad,
                             FlopCounter* flops) const override;

  double RowLoss(const SparseVectorView& row, float label,
                 const std::vector<double>& model,
                 FlopCounter* flops) const override;

  void RowBatchForwardGrad(const BatchView& batch,
                           const std::vector<double>& model,
                           GradAccumulator* grad, double* loss_sum,
                           FlopCounter* flops) const override;

  /// \brief The margin <w, x>.
  double RowScore(const SparseVectorView& row,
                  const std::vector<double>& model) const override {
    return kernels::SparseDot(row.indices, row.values, row.nnz, model.data());
  }

  /// \brief The margin is exactly the (single) aggregated statistic.
  double ScoreFromStats(const double* stats) const override {
    return stats[0];
  }

  /// \brief The margin-based loss family (kernel-layer link functions).
  virtual kernels::GlmLink link() const = 0;

  /// \brief Loss of one point given label y in {-1,+1} and margin score s.
  double PointLoss(double y, double s) const {
    return kernels::LinkLoss(link(), y, s);
  }
  /// \brief dLoss/ds — the per-point coefficient multiplying the feature
  /// vector in the gradient.
  double PointCoeff(double y, double s) const {
    return kernels::LinkCoeff(link(), y, s);
  }
};

/// \brief Logistic regression: loss log(1 + exp(-y s)).
class LogisticRegression : public BinaryGlm {
 public:
  std::string name() const override { return "lr"; }
  kernels::GlmLink link() const override {
    return kernels::GlmLink::kLogistic;
  }
};

/// \brief Linear SVM with hinge loss max(0, 1 - y s) (subgradient SGD).
class LinearSvm : public BinaryGlm {
 public:
  std::string name() const override { return "svm"; }
  kernels::GlmLink link() const override { return kernels::GlmLink::kHinge; }
};

/// \brief Least-squares regression: loss (s - y)^2 / 2 over real labels
/// (the first GLM the paper names in Section II-C's applicability list).
class LeastSquares : public BinaryGlm {
 public:
  std::string name() const override { return "lsq"; }
  kernels::GlmLink link() const override {
    return kernels::GlmLink::kSquared;
  }
};

}  // namespace colsgd

#endif  // COLSGD_MODEL_GLM_H_
