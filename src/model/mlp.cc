#include "model/mlp.h"

#include <cmath>

#include "common/rng.h"

namespace colsgd {

namespace {

double LogisticLoss(double y, double o) {
  const double z = y * o;
  if (z > 30.0) return std::exp(-z);
  if (z < -30.0) return -z;
  return std::log1p(std::exp(-z));
}

double LogisticCoeff(double y, double o) {
  const double z = y * o;
  if (z > 30.0) return -y * std::exp(-z);
  return -y / (1.0 + std::exp(z));
}

}  // namespace

double MlpModel::InitWeight(uint64_t feature, int j, uint64_t seed) const {
  const uint64_t slot =
      feature * static_cast<uint64_t>(hidden_) + static_cast<uint64_t>(j);
  return init_scale_ * GaussianFromHash(slot, seed);
}

double MlpModel::InitSharedParam(size_t index, uint64_t seed) const {
  const size_t h = static_cast<size_t>(hidden_);
  if (index < h) {  // w2: small random so hidden units differentiate
    return init_scale_ * GaussianFromHash(0xABCD0000ull + index, seed);
  }
  return 0.0;  // b2 and b1 start at zero
}

void MlpModel::ComputePartialStats(const BatchView& batch,
                                   const std::vector<double>& local_model,
                                   std::vector<double>* stats,
                                   FlopCounter* flops) const {
  const int H = hidden_;
  COLSGD_CHECK_EQ(stats->size(), batch.size() * static_cast<size_t>(H));
  uint64_t work = 0;
  for (size_t i = 0; i < batch.size(); ++i) {
    const SparseVectorView& row = batch.rows[i];
    double* out = stats->data() + i * H;
    for (size_t j = 0; j < row.nnz; ++j) {
      const double x = row.values[j];
      const double* w =
          local_model.data() + static_cast<size_t>(row.indices[j]) * H;
      for (int h = 0; h < H; ++h) out[h] += w[h] * x;
    }
    work += 2 * row.nnz * H;
  }
  if (flops != nullptr) flops->Add(work);
}

double MlpModel::Forward(const double* stats, const std::vector<double>& shared,
                         std::vector<double>* activations) const {
  const int H = hidden_;
  const double* w2 = shared.data();
  const double b2 = shared[H];
  const double* b1 = shared.data() + H + 1;
  activations->resize(H);
  double o = b2;
  for (int h = 0; h < H; ++h) {
    (*activations)[h] = std::tanh(stats[h] + b1[h]);
    o += w2[h] * (*activations)[h];
  }
  return o;
}

double MlpModel::BatchLossFromStatsShared(
    const std::vector<double>& agg_stats, const std::vector<float>& labels,
    const std::vector<double>& shared) const {
  COLSGD_CHECK_EQ(agg_stats.size(),
                  labels.size() * static_cast<size_t>(hidden_));
  COLSGD_CHECK_EQ(shared.size(), num_shared_params());
  std::vector<double> activations;
  double loss = 0.0;
  for (size_t i = 0; i < labels.size(); ++i) {
    const double o =
        Forward(agg_stats.data() + i * hidden_, shared, &activations);
    loss += LogisticLoss(labels[i], o);
  }
  return loss;
}

void MlpModel::AccumulateGradFromStatsShared(
    const BatchView& batch, const std::vector<double>& agg_stats,
    const std::vector<double>& local_model, const std::vector<double>& shared,
    GradAccumulator* grad, std::vector<double>* shared_grad,
    FlopCounter* flops) const {
  (void)local_model;
  const int H = hidden_;
  COLSGD_CHECK_EQ(agg_stats.size(), batch.size() * static_cast<size_t>(H));
  COLSGD_CHECK_EQ(shared.size(), num_shared_params());
  COLSGD_CHECK_EQ(shared_grad->size(), num_shared_params());
  const double* w2 = shared.data();
  double* dw2 = shared_grad->data();
  double* db2 = shared_grad->data() + H;
  double* db1 = shared_grad->data() + H + 1;

  std::vector<double> activations;
  std::vector<double> delta_h(H);
  uint64_t work = 0;
  for (size_t i = 0; i < batch.size(); ++i) {
    const double* stats = agg_stats.data() + i * H;
    const double o = Forward(stats, shared, &activations);
    const double delta_o = LogisticCoeff(batch.labels[i], o);
    for (int h = 0; h < H; ++h) {
      // dL/dw2 = delta_o * a;  dL/dz1 = delta_o * w2 * (1 - a^2).
      dw2[h] += delta_o * activations[h];
      delta_h[h] =
          delta_o * w2[h] * (1.0 - activations[h] * activations[h]);
      db1[h] += delta_h[h];
    }
    *db2 += delta_o;
    const SparseVectorView& row = batch.rows[i];
    for (size_t j = 0; j < row.nnz; ++j) {
      const double x = row.values[j];
      const uint64_t base = static_cast<uint64_t>(row.indices[j]) * H;
      for (int h = 0; h < H; ++h) {
        grad->Add(base + h, delta_h[h] * x);
      }
    }
    work += (2 * row.nnz + 8) * H;
  }
  if (flops != nullptr) flops->Add(work);
}

double MlpModel::BatchLossFromStats(const std::vector<double>&,
                                    const std::vector<float>&) const {
  COLSGD_CHECK(false) << "MLP loss needs the shared layer; use "
                         "BatchLossFromStatsShared";
  return 0.0;
}

void MlpModel::AccumulateGradFromStats(const BatchView&,
                                       const std::vector<double>&,
                                       const std::vector<double>&,
                                       GradAccumulator*, FlopCounter*) const {
  COLSGD_CHECK(false) << "MLP gradients need the shared layer; use "
                         "AccumulateGradFromStatsShared";
}

void MlpModel::AccumulateRowGradient(const SparseVectorView&, float,
                                     const std::vector<double>&,
                                     GradAccumulator*, FlopCounter*) const {
  COLSGD_CHECK(false)
      << "the MLP is only implemented for the column framework "
         "(Section III-C); RowSGD baselines cover GLMs and FMs";
}

double MlpModel::RowLoss(const SparseVectorView&, float,
                         const std::vector<double>&, FlopCounter*) const {
  COLSGD_CHECK(false)
      << "the MLP is only implemented for the column framework "
         "(Section III-C); RowSGD baselines cover GLMs and FMs";
  return 0.0;
}

}  // namespace colsgd
