#include "model/factory.h"

#include "common/check.h"
#include "model/fm.h"
#include "model/glm.h"
#include "model/mlp.h"
#include "model/mlr.h"

namespace colsgd {

std::unique_ptr<ModelSpec> MakeModel(const std::string& name) {
  if (name == "lr") return std::make_unique<LogisticRegression>();
  if (name == "svm") return std::make_unique<LinearSvm>();
  if (name == "lsq") return std::make_unique<LeastSquares>();
  if (name.rfind("mlp", 0) == 0) {
    const int hidden = std::stoi(name.substr(3));
    return std::make_unique<MlpModel>(hidden);
  }
  if (name.rfind("mlr", 0) == 0) {
    const int classes = std::stoi(name.substr(3));
    return std::make_unique<MultinomialLogisticRegression>(classes);
  }
  if (name.rfind("fm", 0) == 0) {
    const int factors = std::stoi(name.substr(2));
    return std::make_unique<FactorizationMachine>(factors);
  }
  COLSGD_CHECK(false) << "unknown model: " << name;
  return nullptr;
}

}  // namespace colsgd
