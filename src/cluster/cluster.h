// Simulated BSP cluster runtime: one master plus K workers, each with a
// simulated clock, connected by a SimNetwork. Engines (ColumnSGD, RowSGD,
// PS, MLlib*) are written against this runtime.
#ifndef COLSGD_CLUSTER_CLUSTER_H_
#define COLSGD_CLUSTER_CLUSTER_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"
#include "simnet/compute_model.h"
#include "simnet/network.h"

namespace colsgd {

/// \brief Static description of a simulated cluster.
struct ClusterSpec {
  int num_workers = 8;
  NetworkConfig net = NetworkConfig::Gbps1();
  ComputeModel compute = ComputeModel::Cluster1Worker();
  /// Effective memory bandwidth for dense buffer sweeps (bytes/s). Charged
  /// when an engine touches O(m) state per iteration (e.g. MXNet's dense
  /// gradient buffers).
  double mem_bandwidth = 5e9;
  /// Per-node memory budget in bytes; engines that materialize more than
  /// this fail with OutOfMemory (reproduces Table V's MXNet OOM).
  uint64_t node_memory_budget = 4ull << 30;
  /// Elastic membership (DESIGN.md §14): ranks beyond num_workers up to
  /// max_workers exist as pre-provisioned spares — they get clocks and NICs
  /// so a mid-run grow can activate them, but engines address only active
  /// workers. 0 (the default) means a fixed cluster of num_workers and
  /// changes nothing.
  int max_workers = 0;

  /// \brief The paper's Cluster 1: 8 machines, 2 CPUs, 32 GB, 1 Gbps.
  static ClusterSpec Cluster1() {
    ClusterSpec spec;
    spec.num_workers = 8;
    spec.net = NetworkConfig::Gbps1();
    spec.compute = ComputeModel::Cluster1Worker();
    spec.node_memory_budget = 32ull << 30;
    return spec;
  }

  /// \brief The paper's Cluster 2: 40 machines, 8 CPUs, 50 GB, 10 Gbps.
  static ClusterSpec Cluster2(int num_workers = 40) {
    ClusterSpec spec;
    spec.num_workers = num_workers;
    spec.net = NetworkConfig::Gbps10();
    spec.compute = ComputeModel::Cluster2Worker();
    spec.node_memory_budget = 50ull << 30;
    return spec;
  }
};

/// \brief Live state of a simulated cluster: clocks and network.
///
/// Node ids: node 0 is the master; worker k (0-based) is node k+1. Parameter
/// servers, when an engine uses them, are co-located with workers.
class ClusterRuntime {
 public:
  /// \param extra_nodes additional simulated endpoints beyond master +
  /// workers, e.g. co-located parameter-server threads that compute and
  /// communicate concurrently with the worker thread on the same machine
  /// (they get their own clock and NIC; see DESIGN.md calibration notes).
  explicit ClusterRuntime(const ClusterSpec& spec, int extra_nodes = 0)
      : spec_(spec),
        total_workers_(std::max(spec.num_workers, spec.max_workers)),
        net_(total_workers_ + 1 + extra_nodes, spec.net),
        clocks_(total_workers_ + 1 + extra_nodes, 0.0) {}

  const ClusterSpec& spec() const { return spec_; }
  SimNetwork& net() { return net_; }
  int num_workers() const { return spec_.num_workers; }

  /// \brief Attaches a (non-owning, nullable) tracer to the runtime and its
  /// network. Recording is passive; simulated clocks are unaffected.
  void set_tracer(Tracer* tracer) {
    tracer_ = tracer;
    net_.set_tracer(tracer);
    if (tracer != nullptr) {
      tracer->SetTopology(static_cast<int>(clocks_.size()),
                          spec_.num_workers);
    }
  }
  Tracer* tracer() const { return tracer_; }

  /// \brief Attaches a (non-owning, nullable) causal critical-path recorder
  /// to the runtime and its network (DESIGN.md §16). Like the tracer it is
  /// passive: every hook only reads simulation state.
  void set_critpath(CritPathRecorder* critpath) {
    critpath_ = critpath;
    net_.set_critpath(critpath);
    if (critpath != nullptr) {
      critpath->Attach(clocks_.data(), clocks_.size(), spec_.num_workers,
                       spec_.net.latency, spec_.net.bandwidth,
                       spec_.net.per_message_overhead, kControlMessageBytes);
    }
  }
  CritPathRecorder* critpath() const { return critpath_; }

  NodeId master() const { return 0; }
  NodeId worker_node(int k) const {
    COLSGD_CHECK_GE(k, 0);
    COLSGD_CHECK_LT(k, total_workers_);
    return static_cast<NodeId>(k + 1);
  }
  /// \brief Worker slots with simulated endpoints, active or spare
  /// (== num_workers unless the spec provisions elastic spares).
  int total_workers() const { return total_workers_; }
  /// \brief The i-th extra endpoint (requires extra_nodes > i at
  /// construction). Extra endpoints sit after ALL worker slots, spares
  /// included, so node ids never shift when membership changes.
  NodeId extra_node(int i) const {
    COLSGD_CHECK_GE(i, 0);
    COLSGD_CHECK_LT(static_cast<size_t>(total_workers_ + 1 + i),
                    clocks_.size());
    return static_cast<NodeId>(total_workers_ + 1 + i);
  }

  SimTime clock(NodeId node) const { return clocks_[node]; }
  void set_clock(NodeId node, SimTime t) {
    if (critpath_ != nullptr) critpath_->OnSetClock(node, t);
    clocks_[node] = t;
  }
  void AdvanceClock(NodeId node, double seconds) {
    if (critpath_ != nullptr) {
      critpath_->OnAdvance(node, seconds, CritOpKind::kLocal, 0);
    }
    clocks_[node] += seconds;
  }
  /// \brief Moves a node's clock forward to `t` if it is behind (message
  /// arrival / barrier semantics).
  void SyncClockTo(NodeId node, SimTime t) {
    if (critpath_ != nullptr) critpath_->OnSyncClock(node, t);
    clocks_[node] = std::max(clocks_[node], t);
  }

  /// \brief Charges `flops` of compute on a node's clock.
  void ChargeCompute(NodeId node, uint64_t flops) {
    const double seconds = spec_.compute.SecondsFor(flops);
    if (tracer_ != nullptr) {
      tracer_->RecordCompute(node, clocks_[node], seconds, flops);
    }
    if (critpath_ != nullptr) {
      critpath_->OnAdvance(node, seconds, CritOpKind::kCompute, flops);
    }
    clocks_[node] += seconds;
  }

  /// \brief Charges an O(bytes) dense-memory sweep on a node's clock.
  void ChargeMemTouch(NodeId node, uint64_t bytes) {
    const double seconds = static_cast<double>(bytes) / spec_.mem_bandwidth;
    if (tracer_ != nullptr) {
      tracer_->RecordMemTouch(node, clocks_[node], seconds, bytes);
    }
    if (critpath_ != nullptr) {
      critpath_->OnAdvance(node, seconds, CritOpKind::kMem, bytes);
    }
    clocks_[node] += seconds;
  }

  /// \brief Simulated time at which every node has finished.
  SimTime MaxClock() const {
    return *std::max_element(clocks_.begin(), clocks_.end());
  }

  /// \brief BSP barrier: all clocks jump to the global maximum.
  void Barrier() {
    const SimTime t = MaxClock();
    if (tracer_ != nullptr) tracer_->RecordBarrier(t);
    if (critpath_ != nullptr) critpath_->OnBarrier(t);
    for (auto& c : clocks_) c = t;
  }

  // ---- Communication patterns -------------------------------------------

  /// \brief Point-to-point send; syncs the receiver clock to message arrival
  /// and returns the arrival time.
  SimTime Send(NodeId from, NodeId to, uint64_t bytes) {
    if (from == to) return clocks_[from];
    SimTime arrival = net_.Send(from, to, bytes, clocks_[from]);
    SyncClockTo(to, arrival);
    return arrival;
  }

  /// \brief Flat broadcast of `bytes` from `from` to all workers. The K
  /// copies leave the sender's NIC back to back — this is what makes a full
  /// model broadcast expensive in RowSGD.
  void BroadcastToWorkers(NodeId from, uint64_t bytes) {
    for (int k = 0; k < num_workers(); ++k) {
      NodeId to = worker_node(k);
      if (to != from) Send(from, to, bytes);
    }
  }

  /// \brief Gather: every worker sends `bytes_per_worker[k]` to `to`; the
  /// receiver clock ends at the last arrival.
  void GatherFromWorkers(NodeId to, const std::vector<uint64_t>& bytes) {
    COLSGD_CHECK_EQ(bytes.size(), static_cast<size_t>(num_workers()));
    for (int k = 0; k < num_workers(); ++k) {
      NodeId from = worker_node(k);
      if (from != to) Send(from, to, bytes[k]);
    }
  }

  void ResetClocks() {
    if (critpath_ != nullptr) critpath_->OnReset();
    std::fill(clocks_.begin(), clocks_.end(), 0.0);
  }

 private:
  ClusterSpec spec_;
  int total_workers_;
  SimNetwork net_;
  std::vector<SimTime> clocks_;
  Tracer* tracer_ = nullptr;
  CritPathRecorder* critpath_ = nullptr;
};

}  // namespace colsgd

#endif  // COLSGD_CLUSTER_CLUSTER_H_
