#include "cluster/membership.h"

#include <algorithm>
#include <string>

#include "common/check.h"

namespace colsgd {

MembershipView::MembershipView(int initial_workers, int max_workers)
    : max_workers_(std::max(initial_workers, max_workers)) {
  COLSGD_CHECK_GT(initial_workers, 0);
  active_.reserve(initial_workers);
  for (int w = 0; w < initial_workers; ++w) active_.push_back(w);
}

bool MembershipView::is_active(int rank) const {
  return std::binary_search(active_.begin(), active_.end(), rank);
}

Status MembershipView::Remove(int rank) {
  const auto it = std::lower_bound(active_.begin(), active_.end(), rank);
  if (it == active_.end() || *it != rank) {
    return Status::FailedPrecondition("rank " + std::to_string(rank) +
                                      " is not active");
  }
  if (active_.size() == 1) {
    return Status::FailedPrecondition(
        "cannot remove the last active worker");
  }
  active_.erase(it);
  ++generation_;
  return Status::OK();
}

Status MembershipView::Add(int rank) {
  if (rank < 0 || rank >= max_workers_) {
    return Status::InvalidArgument("rank " + std::to_string(rank) +
                                   " is outside the provisioned cluster of " +
                                   std::to_string(max_workers_));
  }
  const auto it = std::lower_bound(active_.begin(), active_.end(), rank);
  if (it != active_.end() && *it == rank) {
    return Status::FailedPrecondition("rank " + std::to_string(rank) +
                                      " is already active");
  }
  active_.insert(it, rank);
  ++generation_;
  return Status::OK();
}

int MembershipView::PickShrink() const {
  return active_.size() > 1 ? active_.back() : -1;
}

int MembershipView::PickGrow() const {
  // Lowest-id inactive rank: walk the sorted active list for the first gap.
  int expected = 0;
  for (int rank : active_) {
    if (rank != expected) return expected;
    ++expected;
  }
  return expected < max_workers_ ? expected : -1;
}

}  // namespace colsgd
