// Straggler injection (Section V-C of the paper).
//
// StragglerLevel is "the ratio between the extra time a straggler needs to
// finish a task and the time that a non-straggler worker needs": a straggler
// at level L takes (1+L)x the normal task time. Each iteration one randomly
// chosen worker straggles.
#ifndef COLSGD_CLUSTER_STRAGGLER_H_
#define COLSGD_CLUSTER_STRAGGLER_H_

#include <cstdint>

#include "common/rng.h"

namespace colsgd {

class StragglerInjector {
 public:
  /// \brief Disabled injector (no stragglers).
  StragglerInjector() : enabled_(false), level_(0.0), rng_(0) {}

  StragglerInjector(double level, int num_workers, uint64_t seed)
      : enabled_(true), level_(level), num_workers_(num_workers), rng_(seed) {}

  bool enabled() const { return enabled_; }
  double level() const { return level_; }

  /// \brief Picks the straggling worker for an iteration (call once per
  /// iteration; deterministic given the seed).
  int PickStraggler() {
    if (!enabled_) return -1;
    return static_cast<int>(rng_.NextBounded(num_workers_));
  }

  /// \brief Extra compute seconds for worker `k` whose normal task time is
  /// `task_seconds`, given this iteration's straggler pick.
  double ExtraSeconds(int k, int straggler, double task_seconds) const {
    if (!enabled_ || k != straggler) return 0.0;
    return level_ * task_seconds;
  }

 private:
  bool enabled_;
  double level_;
  int num_workers_ = 0;
  Rng rng_;
};

}  // namespace colsgd

#endif  // COLSGD_CLUSTER_STRAGGLER_H_
