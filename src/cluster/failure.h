// Scripted failure injection (Appendix X of the paper).
#ifndef COLSGD_CLUSTER_FAILURE_H_
#define COLSGD_CLUSTER_FAILURE_H_

#include <cstdint>
#include <vector>

namespace colsgd {

enum class FailureKind {
  kTaskFailure,    // a task throws; retried on the same worker, state intact
  kWorkerFailure,  // a worker dies; data reloaded, model partition reset
};

struct FailureEvent {
  int64_t iteration = 0;  // fires at the start of this iteration
  int worker = 0;
  FailureKind kind = FailureKind::kTaskFailure;
};

/// \brief Hands out scripted failure events, at most one per iteration.
class FailureInjector {
 public:
  FailureInjector() = default;
  explicit FailureInjector(std::vector<FailureEvent> events)
      : events_(std::move(events)) {}

  /// \brief Returns the event scheduled for `iteration`, or nullptr.
  const FailureEvent* EventAt(int64_t iteration) const {
    for (const auto& e : events_) {
      if (e.iteration == iteration) return &e;
    }
    return nullptr;
  }

  bool empty() const { return events_.empty(); }

 private:
  std::vector<FailureEvent> events_;
};

}  // namespace colsgd

#endif  // COLSGD_CLUSTER_FAILURE_H_
