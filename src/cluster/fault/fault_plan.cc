#include "cluster/fault/fault_plan.h"

#include <utility>

namespace colsgd {

namespace {

// Domain-separation tags for the stateless hash draws. Each probabilistic
// process hashes (seed, tag, iteration, worker) so processes never share a
// stream and every draw is random-access.
enum : uint64_t {
  kTagTaskFailure = 0xF001,
  kTagWorkerFailure = 0xF002,
  kTagMessageDrop = 0xF003,
  kTagStragglerPick = 0xF004,
  kTagStragglerHit = 0xF005,
  kTagStragglerLevel = 0xF006,
  kTagCorrelatedIter = 0xF007,
};

/// \brief Uniform [0, 1) keyed by (seed, tag, a, b).
double HashU01(uint64_t seed, uint64_t tag, uint64_t a, uint64_t b) {
  uint64_t h = SplitMix64(seed ^ SplitMix64(tag));
  h = SplitMix64(h ^ SplitMix64(a));
  h = SplitMix64(h ^ SplitMix64(b));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

uint64_t HashBounded(uint64_t seed, uint64_t tag, uint64_t a, uint64_t bound) {
  uint64_t h = SplitMix64(seed ^ SplitMix64(tag));
  h = SplitMix64(h ^ SplitMix64(a));
  return h % bound;
}

}  // namespace

FaultPlan::FaultPlan(FaultPlanConfig config) : config_(std::move(config)) {
  for (const FaultEvent& e : config_.scripted) {
    scripted_by_iter_[e.iteration].push_back(e);
  }
}

FaultPlan FaultPlan::Scripted(std::vector<FaultEvent> events) {
  FaultPlanConfig config;
  config.scripted = std::move(events);
  return FaultPlan(std::move(config));
}

bool FaultPlan::active() const {
  return has_failures() || config_.message_drop_prob > 0.0 ||
         config_.stragglers.mode != StragglerSpec::Mode::kNone;
}

bool FaultPlan::has_failures() const {
  return !scripted_by_iter_.empty() || config_.task_mtbf_iters > 0.0 ||
         config_.worker_mtbf_iters > 0.0;
}

std::vector<FaultEvent> FaultPlan::EventsAt(int64_t iteration) const {
  std::vector<FaultEvent> events;
  const auto it = scripted_by_iter_.find(iteration);
  if (it != scripted_by_iter_.end()) events = it->second;
  const uint64_t iter = static_cast<uint64_t>(iteration);
  if (config_.task_mtbf_iters > 0.0) {
    const double p = 1.0 / config_.task_mtbf_iters;
    for (int w = 0; w < config_.num_workers; ++w) {
      if (HashU01(config_.seed, kTagTaskFailure, iter, w) < p) {
        events.push_back({iteration, w, FaultKind::kTaskFailure});
      }
    }
  }
  if (config_.worker_mtbf_iters > 0.0) {
    const double p = 1.0 / config_.worker_mtbf_iters;
    for (int w = 0; w < config_.num_workers; ++w) {
      if (HashU01(config_.seed, kTagWorkerFailure, iter, w) < p) {
        events.push_back({iteration, w, FaultKind::kWorkerFailure});
      }
    }
  }
  return events;
}

bool FaultPlan::DropMessage(int64_t iteration, int from, int to) const {
  if (config_.message_drop_prob <= 0.0) return false;
  const uint64_t link = (static_cast<uint64_t>(from) << 20) ^
                        static_cast<uint64_t>(to);
  return HashU01(config_.seed, kTagMessageDrop,
                 static_cast<uint64_t>(iteration),
                 link) < config_.message_drop_prob;
}

double FaultPlan::DrawLevel(int64_t iteration, int worker) const {
  const StragglerSpec& s = config_.stragglers;
  if (s.level_hi <= s.level) return s.level;
  const double u = HashU01(config_.seed, kTagStragglerLevel,
                           static_cast<uint64_t>(iteration), worker);
  return s.level + (s.level_hi - s.level) * u;
}

double FaultPlan::StragglerLevel(int64_t iteration, int worker) const {
  const StragglerSpec& s = config_.stragglers;
  const uint64_t iter = static_cast<uint64_t>(iteration);
  switch (s.mode) {
    case StragglerSpec::Mode::kNone:
      return 0.0;
    case StragglerSpec::Mode::kRotating: {
      if (config_.num_workers <= 0) return 0.0;
      const int pick = static_cast<int>(HashBounded(
          config_.seed, kTagStragglerPick, iter, config_.num_workers));
      return worker == pick ? DrawLevel(iteration, worker) : 0.0;
    }
    case StragglerSpec::Mode::kPersistent: {
      for (int w : s.workers) {
        if (w == worker) return DrawLevel(iteration, worker);
      }
      return 0.0;
    }
    case StragglerSpec::Mode::kCorrelated: {
      if (HashU01(config_.seed, kTagCorrelatedIter, iter, 0) >= s.probability) {
        return 0.0;
      }
      if (HashU01(config_.seed, kTagStragglerHit, iter, worker) >= s.fraction) {
        return 0.0;
      }
      return DrawLevel(iteration, worker);
    }
  }
  return 0.0;
}

}  // namespace colsgd
