#include "cluster/fault/fault_plan.h"

#include <string>
#include <utility>

namespace colsgd {

namespace {

// Domain-separation tags for the stateless hash draws. Each probabilistic
// process hashes (seed, tag, iteration, worker) so processes never share a
// stream and every draw is random-access.
enum : uint64_t {
  kTagTaskFailure = 0xF001,
  kTagWorkerFailure = 0xF002,
  kTagMessageDrop = 0xF003,
  kTagStragglerPick = 0xF004,
  kTagStragglerHit = 0xF005,
  kTagStragglerLevel = 0xF006,
  kTagCorrelatedIter = 0xF007,
  kTagMessageCorrupt = 0xF008,
  kTagCorruptBit = 0xF009,
  kTagTornCheckpoint = 0xF00A,
  kTagCheckpointBitrot = 0xF00B,
  kTagCheckpointDamage = 0xF00C,
};

/// \brief Uniform [0, 1) keyed by (seed, tag, a, b).
double HashU01(uint64_t seed, uint64_t tag, uint64_t a, uint64_t b) {
  uint64_t h = SplitMix64(seed ^ SplitMix64(tag));
  h = SplitMix64(h ^ SplitMix64(a));
  h = SplitMix64(h ^ SplitMix64(b));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

uint64_t HashBounded(uint64_t seed, uint64_t tag, uint64_t a, uint64_t bound) {
  uint64_t h = SplitMix64(seed ^ SplitMix64(tag));
  h = SplitMix64(h ^ SplitMix64(a));
  return h % bound;
}

uint64_t LinkKey(int from, int to) {
  return (static_cast<uint64_t>(from) << 20) ^ static_cast<uint64_t>(to);
}

Status CheckProb(double value, const char* name) {
  if (value < 0.0 || value > 1.0) {
    return Status::InvalidArgument(std::string(name) + " must be in [0, 1], got " +
                                   std::to_string(value));
  }
  return Status::OK();
}

Status CheckNonNegative(double value, const char* name) {
  if (value < 0.0) {
    return Status::InvalidArgument(std::string(name) + " must be >= 0, got " +
                                   std::to_string(value));
  }
  return Status::OK();
}

}  // namespace

FaultPlan::FaultPlan(FaultPlanConfig config) : config_(std::move(config)) {
  for (const FaultEvent& e : config_.scripted) {
    scripted_by_iter_[e.iteration].push_back(e);
  }
  for (const MembershipChange& m : config_.membership) {
    membership_by_iter_[m.iteration].push_back(m);
  }
}

FaultPlan FaultPlan::Scripted(std::vector<FaultEvent> events) {
  FaultPlanConfig config;
  config.scripted = std::move(events);
  return FaultPlan(std::move(config));
}

Status FaultPlan::Validate(const FaultPlanConfig& config) {
  COLSGD_RETURN_NOT_OK(CheckProb(config.message_drop_prob,
                                 "message_drop_prob"));
  COLSGD_RETURN_NOT_OK(CheckProb(config.message_corrupt_prob,
                                 "message_corrupt_prob"));
  COLSGD_RETURN_NOT_OK(CheckProb(config.torn_checkpoint_prob,
                                 "torn_checkpoint_prob"));
  COLSGD_RETURN_NOT_OK(CheckProb(config.checkpoint_bitrot_prob,
                                 "checkpoint_bitrot_prob"));
  COLSGD_RETURN_NOT_OK(CheckNonNegative(config.task_mtbf_iters,
                                        "task_mtbf_iters"));
  COLSGD_RETURN_NOT_OK(CheckNonNegative(config.worker_mtbf_iters,
                                        "worker_mtbf_iters"));
  COLSGD_RETURN_NOT_OK(CheckProb(config.stragglers.probability,
                                 "stragglers.probability"));
  COLSGD_RETURN_NOT_OK(CheckProb(config.stragglers.fraction,
                                 "stragglers.fraction"));
  COLSGD_RETURN_NOT_OK(CheckNonNegative(config.stragglers.level,
                                        "stragglers.level"));
  if (config.num_workers < 0) {
    return Status::InvalidArgument("num_workers must be >= 0");
  }
  for (const FaultEvent& e : config.scripted) {
    if (e.iteration < 0) {
      return Status::InvalidArgument("scripted fault at negative iteration " +
                                     std::to_string(e.iteration));
    }
    if (e.worker < 0 ||
        (config.num_workers > 0 && e.worker >= config.num_workers)) {
      return Status::InvalidArgument("scripted fault names worker " +
                                     std::to_string(e.worker) +
                                     " outside the cluster");
    }
  }
  for (const MembershipChange& m : config.membership) {
    if (m.iteration < 0) {
      return Status::InvalidArgument(
          "membership change at negative iteration " +
          std::to_string(m.iteration));
    }
    if (m.worker < -1) {
      return Status::InvalidArgument("membership change names worker " +
                                     std::to_string(m.worker) +
                                     "; use -1 for auto-pick");
    }
  }
  for (const NetworkPartitionSpec& p : config.partitions) {
    if (p.start_iteration < 0) {
      return Status::InvalidArgument(
          "partition window starts at negative iteration " +
          std::to_string(p.start_iteration));
    }
    if (p.iterations < 1) {
      return Status::InvalidArgument("partition window must last >= 1 "
                                     "iteration");
    }
    if (p.side_a.empty()) {
      return Status::InvalidArgument("partition side_a must name at least "
                                     "one worker");
    }
    for (int w : p.side_a) {
      if (w < 0 || (config.num_workers > 0 && w >= config.num_workers)) {
        return Status::InvalidArgument("partition side_a names worker " +
                                       std::to_string(w) +
                                       " outside the cluster");
      }
    }
  }
  return Status::OK();
}

Result<FaultPlan> FaultPlan::Create(FaultPlanConfig config) {
  COLSGD_RETURN_NOT_OK(Validate(config));
  return FaultPlan(std::move(config));
}

bool FaultPlan::active() const {
  return has_failures() || config_.message_drop_prob > 0.0 ||
         wire_integrity() || config_.torn_checkpoint_prob > 0.0 ||
         config_.checkpoint_bitrot_prob > 0.0 ||
         config_.stragglers.mode != StragglerSpec::Mode::kNone;
}

bool FaultPlan::has_failures() const {
  return !scripted_by_iter_.empty() || config_.task_mtbf_iters > 0.0 ||
         config_.worker_mtbf_iters > 0.0;
}

std::vector<FaultEvent> FaultPlan::EventsAt(int64_t iteration) const {
  std::vector<FaultEvent> events;
  const auto it = scripted_by_iter_.find(iteration);
  if (it != scripted_by_iter_.end()) events = it->second;
  const uint64_t iter = static_cast<uint64_t>(iteration);
  if (config_.task_mtbf_iters > 0.0) {
    const double p = 1.0 / config_.task_mtbf_iters;
    for (int w = 0; w < config_.num_workers; ++w) {
      if (HashU01(config_.seed, kTagTaskFailure, iter, w) < p) {
        events.push_back({iteration, w, FaultKind::kTaskFailure});
      }
    }
  }
  if (config_.worker_mtbf_iters > 0.0) {
    const double p = 1.0 / config_.worker_mtbf_iters;
    for (int w = 0; w < config_.num_workers; ++w) {
      if (HashU01(config_.seed, kTagWorkerFailure, iter, w) < p) {
        events.push_back({iteration, w, FaultKind::kWorkerFailure});
      }
    }
  }
  return events;
}

std::vector<MembershipChange> FaultPlan::MembershipAt(
    int64_t iteration) const {
  const auto it = membership_by_iter_.find(iteration);
  return it == membership_by_iter_.end() ? std::vector<MembershipChange>{}
                                         : it->second;
}

bool FaultPlan::DropMessage(int64_t iteration, int from, int to) const {
  if (config_.message_drop_prob <= 0.0) return false;
  return HashU01(config_.seed, kTagMessageDrop,
                 static_cast<uint64_t>(iteration),
                 LinkKey(from, to)) < config_.message_drop_prob;
}

bool FaultPlan::CorruptMessage(int64_t iteration, int from, int to) const {
  if (config_.message_corrupt_prob <= 0.0) return false;
  return HashU01(config_.seed, kTagMessageCorrupt,
                 static_cast<uint64_t>(iteration),
                 LinkKey(from, to)) < config_.message_corrupt_prob;
}

uint64_t FaultPlan::CorruptionBit(int64_t iteration, int from, int to,
                                  uint64_t num_bits) const {
  if (num_bits == 0) return 0;
  return HashBounded(config_.seed ^ LinkKey(from, to), kTagCorruptBit,
                     static_cast<uint64_t>(iteration), num_bits);
}

bool FaultPlan::PartitionActiveAt(int64_t iteration) const {
  for (const NetworkPartitionSpec& p : config_.partitions) {
    if (iteration >= p.start_iteration &&
        iteration < p.start_iteration + p.iterations) {
      return true;
    }
  }
  return false;
}

bool FaultPlan::LinkPartitioned(int64_t iteration, int from_node,
                                int to_node) const {
  if (config_.partitions.empty() || from_node == to_node) return false;
  // Node -> worker id under ClusterRuntime's layout; the master (node 0,
  // worker -1) always sits on the complement side of the split. PS servers
  // share the fate of their co-located worker.
  const auto worker_of = [this](int node) {
    if (node <= 0) return -1;
    const int w = node - 1;
    return w < config_.num_workers ? w : w - config_.num_workers;
  };
  const int from_worker = worker_of(from_node);
  const int to_worker = worker_of(to_node);
  for (const NetworkPartitionSpec& p : config_.partitions) {
    if (iteration < p.start_iteration ||
        iteration >= p.start_iteration + p.iterations) {
      continue;
    }
    const auto on_side_a = [&p](int worker) {
      if (worker < 0) return false;
      for (int w : p.side_a) {
        if (w == worker) return true;
      }
      return false;
    };
    if (on_side_a(from_worker) != on_side_a(to_worker)) return true;
  }
  return false;
}

CheckpointFault FaultPlan::CheckpointFaultAt(int64_t iteration) const {
  const uint64_t iter = static_cast<uint64_t>(iteration);
  if (config_.torn_checkpoint_prob > 0.0 &&
      HashU01(config_.seed, kTagTornCheckpoint, iter, 0) <
          config_.torn_checkpoint_prob) {
    return CheckpointFault::kTornWrite;
  }
  if (config_.checkpoint_bitrot_prob > 0.0 &&
      HashU01(config_.seed, kTagCheckpointBitrot, iter, 0) <
          config_.checkpoint_bitrot_prob) {
    return CheckpointFault::kBitRot;
  }
  return CheckpointFault::kNone;
}

uint64_t FaultPlan::CheckpointDamageDraw(int64_t iteration) const {
  return SplitMix64(config_.seed ^ SplitMix64(kTagCheckpointDamage) ^
                    SplitMix64(static_cast<uint64_t>(iteration)));
}

double FaultPlan::DrawLevel(int64_t iteration, int worker) const {
  const StragglerSpec& s = config_.stragglers;
  if (s.level_hi <= s.level) return s.level;
  const double u = HashU01(config_.seed, kTagStragglerLevel,
                           static_cast<uint64_t>(iteration), worker);
  return s.level + (s.level_hi - s.level) * u;
}

double FaultPlan::StragglerLevel(int64_t iteration, int worker) const {
  const StragglerSpec& s = config_.stragglers;
  const uint64_t iter = static_cast<uint64_t>(iteration);
  switch (s.mode) {
    case StragglerSpec::Mode::kNone:
      return 0.0;
    case StragglerSpec::Mode::kRotating: {
      if (config_.num_workers <= 0) return 0.0;
      const int pick = static_cast<int>(HashBounded(
          config_.seed, kTagStragglerPick, iter, config_.num_workers));
      return worker == pick ? DrawLevel(iteration, worker) : 0.0;
    }
    case StragglerSpec::Mode::kPersistent: {
      for (int w : s.workers) {
        if (w == worker) return DrawLevel(iteration, worker);
      }
      return 0.0;
    }
    case StragglerSpec::Mode::kCorrelated: {
      if (HashU01(config_.seed, kTagCorrelatedIter, iter, 0) >= s.probability) {
        return 0.0;
      }
      if (HashU01(config_.seed, kTagStragglerHit, iter, worker) >= s.fraction) {
        return 0.0;
      }
      return DrawLevel(iteration, worker);
    }
  }
  return 0.0;
}

}  // namespace colsgd
