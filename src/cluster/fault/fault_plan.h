// Unified fault model for the simulated cluster (Appendix X + Section V-C).
//
// A FaultPlan composes scripted fault events with seeded probabilistic
// processes, and is the single source of "what goes wrong when" for every
// engine:
//
//  * scripted task/worker failures — any number of events per iteration,
//    indexed by iteration (O(1) lookup instead of the old injector's
//    O(events) scan and its one-event-per-iteration limit);
//  * probabilistic task/worker failures — per-worker MTBF expressed in
//    iterations; each (iteration, worker) pair draws independently from a
//    stateless hash of the seed, so EventsAt is random-access and two plans
//    with the same seed replay bit-identically;
//  * message drops — each data-plane message is lost with a configurable
//    probability, forcing a timeout + retransmit (see Engine::SendWithFaults);
//  * message corruption — each data-plane message has its CRC32C-framed
//    payload bit-flipped in flight with a configurable probability; the
//    receiver detects the bad trailer, NACKs, and the sender retransmits
//    (wire-integrity model, DESIGN.md §10);
//  * network partitions — scripted group splits: for a window of iterations
//    the workers in `side_a` cannot exchange data-plane messages with the
//    rest of the cluster (the master always sides with the complement);
//    senders burn bounded retransmit backoff before the message finally
//    crosses when connectivity flickers back;
//  * checkpoint faults — a checkpoint write is torn (truncated mid-write) or
//    bit-rotted on the stable-storage medium with configurable
//    probabilities; restores verify checksums and fall back;
//  * stragglers — per-iteration slowdown levels per worker, in three modes:
//    rotating (one random worker per iteration, the paper's Section V-C
//    model), persistent (a fixed set of chronically slow workers), and
//    correlated (whole-cluster degraded iterations hitting a random subset of
//    workers at once). Levels are drawn from a configurable distribution.
//
// StragglerLevel keeps the paper's definition: a straggler at level L takes
// (1+L)x the normal task time.
#ifndef COLSGD_CLUSTER_FAULT_FAULT_PLAN_H_
#define COLSGD_CLUSTER_FAULT_FAULT_PLAN_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"

namespace colsgd {

enum class FaultKind {
  kTaskFailure,    // a task throws; retried on the same worker, state intact
  kWorkerFailure,  // a worker dies; its resident data and model are lost
};

struct FaultEvent {
  int64_t iteration = 0;  // fires at the start of this iteration
  int worker = 0;
  FaultKind kind = FaultKind::kTaskFailure;
};

/// \brief Straggler process configuration.
struct StragglerSpec {
  enum class Mode {
    kNone,
    kRotating,    // one uniformly random worker per iteration (Section V-C)
    kPersistent,  // the workers in `workers` straggle every iteration
    kCorrelated,  // with `probability`, an iteration degrades a random
                  // `fraction` of the cluster at once (co-tenant interference)
  };
  Mode mode = Mode::kNone;
  /// Straggler level L (extra time = L x task time). If `level_hi > level`,
  /// each straggling (iteration, worker) draws uniformly from
  /// [level, level_hi); otherwise the level is the constant `level`.
  double level = 0.0;
  double level_hi = 0.0;
  std::vector<int> workers;   // kPersistent: the chronically slow workers
  double probability = 0.0;   // kCorrelated: P(iteration is degraded)
  double fraction = 0.5;      // kCorrelated: expected fraction of slow workers
};

/// \brief One group-split network partition window: for `iterations`
/// iterations starting at `start_iteration`, the workers in `side_a` are
/// unreachable from everyone else (workers not listed, all PS servers
/// co-located with them, and the master, which is always on the complement
/// side). Messages attempted across the split burn bounded retransmit
/// backoff on the sender before a copy finally crosses — a deterministic
/// connectivity brown-out rather than an unbounded stall, so BSP rounds
/// degrade instead of livelocking.
struct NetworkPartitionSpec {
  int64_t start_iteration = 0;
  int64_t iterations = 1;
  std::vector<int> side_a;
};

/// \brief Scripted elastic-membership events (DESIGN.md §14). `kShrink`
/// decommissions a worker cleanly (planned departure: state is handed off
/// before the rank leaves, no heartbeat detection); `kGrow` activates a
/// spare rank and rebalances partitions onto it. `worker` = -1 lets the
/// engine auto-pick (shrink: the highest-id active worker; grow: the
/// lowest-id inactive rank).
struct MembershipChange {
  enum class Kind { kShrink, kGrow };
  int64_t iteration = 0;  // fires at the start of this iteration
  Kind kind = Kind::kShrink;
  int worker = -1;
};

/// \brief How a checkpoint write is damaged, if at all.
enum class CheckpointFault {
  kNone,
  kTornWrite,  // the write is cut short; the file/entry holds a prefix
  kBitRot,     // the write lands whole but one bit decays on the medium
};

/// \brief Full fault-plan configuration.
struct FaultPlanConfig {
  uint64_t seed = 0;
  /// Number of workers the probabilistic processes draw over. Engines fill
  /// this in from their cluster spec when it is left at 0.
  int num_workers = 0;
  std::vector<FaultEvent> scripted;
  /// Mean iterations between task failures per worker; 0 disables.
  double task_mtbf_iters = 0.0;
  /// Mean iterations between worker failures per worker; 0 disables.
  double worker_mtbf_iters = 0.0;
  /// Probability that any one data-plane message is dropped in flight.
  double message_drop_prob = 0.0;
  /// Probability that any one data-plane message arrives with a flipped bit
  /// (detected by the receiver's CRC32C frame check; see DESIGN.md §10).
  double message_corrupt_prob = 0.0;
  /// Scripted group-split partition windows (may overlap).
  std::vector<NetworkPartitionSpec> partitions;
  /// Probability that any one checkpoint write is torn (truncated).
  double torn_checkpoint_prob = 0.0;
  /// Probability that any one checkpoint suffers bit rot on the medium.
  /// Drawn only when the write was not already torn.
  double checkpoint_bitrot_prob = 0.0;
  StragglerSpec stragglers;
  /// Scripted grow/shrink membership events; only engines that report
  /// SupportsMembership accept plans with any (Engine::set_faults rejects
  /// the rest).
  std::vector<MembershipChange> membership;
};

class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(FaultPlanConfig config);

  /// \brief Plan with only scripted events (the common test/bench setup).
  static FaultPlan Scripted(std::vector<FaultEvent> events);

  /// \brief Rejects nonsense plans: probabilities outside [0,1], negative
  /// MTBFs, malformed straggler or partition specs. `Engine::set_faults`
  /// re-validates after binding num_workers so worker ids are range-checked.
  static Status Validate(const FaultPlanConfig& config);

  /// \brief Validating constructor: Validate + FaultPlan.
  static Result<FaultPlan> Create(FaultPlanConfig config);

  /// \brief All faults firing at the start of `iteration`: the scripted ones
  /// (in script order) followed by the probabilistic draws (by worker).
  std::vector<FaultEvent> EventsAt(int64_t iteration) const;

  /// \brief Scripted membership changes firing at the start of `iteration`
  /// (script order). Processed before the iteration's fault events.
  std::vector<MembershipChange> MembershipAt(int64_t iteration) const;

  /// \brief Whether the plan scripts any grow/shrink event.
  bool has_membership() const { return !config_.membership.empty(); }

  /// \brief Whether the message sent on `iteration` from node `from` to node
  /// `to` is lost in flight.
  bool DropMessage(int64_t iteration, int from, int to) const;

  /// \brief Whether the message sent on `iteration` from node `from` to node
  /// `to` arrives with a flipped bit (caught by the frame CRC).
  bool CorruptMessage(int64_t iteration, int from, int to) const;

  /// \brief Which bit of an `num_bits`-bit buffer the corruption process
  /// flips for this (iteration, from, to) draw.
  uint64_t CorruptionBit(int64_t iteration, int from, int to,
                         uint64_t num_bits) const;

  /// \brief Whether a partition window severs the (from, to) node pair on
  /// `iteration`. Node ids follow ClusterRuntime's layout: 0 is the master,
  /// 1..num_workers are workers, higher ids are PS servers co-located with
  /// worker (node - num_workers - 1).
  bool LinkPartitioned(int64_t iteration, int from_node, int to_node) const;

  /// \brief Whether any partition window covers `iteration`.
  bool PartitionActiveAt(int64_t iteration) const;

  /// \brief Damage drawn for the checkpoint taken at the end of
  /// `iteration` (torn write takes precedence over bit rot).
  CheckpointFault CheckpointFaultAt(int64_t iteration) const;

  /// \brief Seeded sub-draw for checkpoint damage placement (torn length /
  /// rotted bit), keyed off the same iteration as CheckpointFaultAt.
  uint64_t CheckpointDamageDraw(int64_t iteration) const;

  /// \brief Whether data-plane messages must be framed with a CRC32C
  /// trailer: true when corruption or partitions are configured. Frame
  /// overhead and receiver verification sweeps are charged only in this
  /// mode, so fault-free runs keep their exact byte counts (DESIGN.md §10).
  bool wire_integrity() const {
    return config_.message_corrupt_prob > 0.0 || !config_.partitions.empty();
  }

  /// \brief Straggler level of `worker` on `iteration` (0 = full speed).
  double StragglerLevel(int64_t iteration, int worker) const;

  bool active() const;
  bool has_failures() const;
  const FaultPlanConfig& config() const { return config_; }
  /// \brief Engines call this before training to bind the probabilistic
  /// processes to the cluster size when the plan was built with 0 workers.
  void set_num_workers(int num_workers) {
    if (config_.num_workers == 0) config_.num_workers = num_workers;
  }

 private:
  double DrawLevel(int64_t iteration, int worker) const;

  FaultPlanConfig config_;
  std::unordered_map<int64_t, std::vector<FaultEvent>> scripted_by_iter_;
  std::unordered_map<int64_t, std::vector<MembershipChange>>
      membership_by_iter_;
};

}  // namespace colsgd

#endif  // COLSGD_CLUSTER_FAULT_FAULT_PLAN_H_
