// Unified fault model for the simulated cluster (Appendix X + Section V-C).
//
// A FaultPlan composes scripted fault events with seeded probabilistic
// processes, and is the single source of "what goes wrong when" for every
// engine:
//
//  * scripted task/worker failures — any number of events per iteration,
//    indexed by iteration (O(1) lookup instead of the old injector's
//    O(events) scan and its one-event-per-iteration limit);
//  * probabilistic task/worker failures — per-worker MTBF expressed in
//    iterations; each (iteration, worker) pair draws independently from a
//    stateless hash of the seed, so EventsAt is random-access and two plans
//    with the same seed replay bit-identically;
//  * message drops — each data-plane message is lost with a configurable
//    probability, forcing a timeout + retransmit (see Engine::SendWithFaults);
//  * stragglers — per-iteration slowdown levels per worker, in three modes:
//    rotating (one random worker per iteration, the paper's Section V-C
//    model), persistent (a fixed set of chronically slow workers), and
//    correlated (whole-cluster degraded iterations hitting a random subset of
//    workers at once). Levels are drawn from a configurable distribution.
//
// StragglerLevel keeps the paper's definition: a straggler at level L takes
// (1+L)x the normal task time.
#ifndef COLSGD_CLUSTER_FAULT_FAULT_PLAN_H_
#define COLSGD_CLUSTER_FAULT_FAULT_PLAN_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.h"

namespace colsgd {

enum class FaultKind {
  kTaskFailure,    // a task throws; retried on the same worker, state intact
  kWorkerFailure,  // a worker dies; its resident data and model are lost
};

struct FaultEvent {
  int64_t iteration = 0;  // fires at the start of this iteration
  int worker = 0;
  FaultKind kind = FaultKind::kTaskFailure;
};

/// \brief Straggler process configuration.
struct StragglerSpec {
  enum class Mode {
    kNone,
    kRotating,    // one uniformly random worker per iteration (Section V-C)
    kPersistent,  // the workers in `workers` straggle every iteration
    kCorrelated,  // with `probability`, an iteration degrades a random
                  // `fraction` of the cluster at once (co-tenant interference)
  };
  Mode mode = Mode::kNone;
  /// Straggler level L (extra time = L x task time). If `level_hi > level`,
  /// each straggling (iteration, worker) draws uniformly from
  /// [level, level_hi); otherwise the level is the constant `level`.
  double level = 0.0;
  double level_hi = 0.0;
  std::vector<int> workers;   // kPersistent: the chronically slow workers
  double probability = 0.0;   // kCorrelated: P(iteration is degraded)
  double fraction = 0.5;      // kCorrelated: expected fraction of slow workers
};

/// \brief Full fault-plan configuration.
struct FaultPlanConfig {
  uint64_t seed = 0;
  /// Number of workers the probabilistic processes draw over. Engines fill
  /// this in from their cluster spec when it is left at 0.
  int num_workers = 0;
  std::vector<FaultEvent> scripted;
  /// Mean iterations between task failures per worker; 0 disables.
  double task_mtbf_iters = 0.0;
  /// Mean iterations between worker failures per worker; 0 disables.
  double worker_mtbf_iters = 0.0;
  /// Probability that any one data-plane message is dropped in flight.
  double message_drop_prob = 0.0;
  StragglerSpec stragglers;
};

class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(FaultPlanConfig config);

  /// \brief Plan with only scripted events (the common test/bench setup).
  static FaultPlan Scripted(std::vector<FaultEvent> events);

  /// \brief All faults firing at the start of `iteration`: the scripted ones
  /// (in script order) followed by the probabilistic draws (by worker).
  std::vector<FaultEvent> EventsAt(int64_t iteration) const;

  /// \brief Whether the message sent on `iteration` from node `from` to node
  /// `to` is lost in flight.
  bool DropMessage(int64_t iteration, int from, int to) const;

  /// \brief Straggler level of `worker` on `iteration` (0 = full speed).
  double StragglerLevel(int64_t iteration, int worker) const;

  bool active() const;
  bool has_failures() const;
  const FaultPlanConfig& config() const { return config_; }
  /// \brief Engines call this before training to bind the probabilistic
  /// processes to the cluster size when the plan was built with 0 workers.
  void set_num_workers(int num_workers) {
    if (config_.num_workers == 0) config_.num_workers = num_workers;
  }

 private:
  double DrawLevel(int64_t iteration, int worker) const;

  FaultPlanConfig config_;
  std::unordered_map<int64_t, std::vector<FaultEvent>> scripted_by_iter_;
};

}  // namespace colsgd

#endif  // COLSGD_CLUSTER_FAULT_FAULT_PLAN_H_
