// Master-side failure detection and retry policy, charged to simulated
// clocks. The master learns of a dead worker only after a heartbeat window
// elapses (detection time, the first component of Fig. 13's recovery stall);
// failed tasks are relaunched with exponential backoff, the standard policy
// of Spark/YARN-style schedulers.
#ifndef COLSGD_CLUSTER_FAULT_FAILURE_DETECTOR_H_
#define COLSGD_CLUSTER_FAULT_FAILURE_DETECTOR_H_

#include <algorithm>
#include <set>

namespace colsgd {

struct FailureDetectorConfig {
  /// Workers heartbeat the master every `heartbeat_interval` simulated
  /// seconds; a worker is declared dead `heartbeat_timeout` seconds after
  /// its last heartbeat. Detection time for a worker failure is therefore
  /// interval + timeout in the worst case, which is what we charge.
  double heartbeat_interval = 0.1;
  double heartbeat_timeout = 0.5;
  /// Task relaunch delays: attempt k (0-based) waits
  /// task_retry_base * task_retry_multiplier^k, capped at task_retry_max.
  double task_retry_base = 0.2;
  double task_retry_multiplier = 2.0;
  double task_retry_max = 5.0;
  /// Sender-side wait before retransmitting a dropped data-plane message.
  double ack_timeout = 0.05;
  /// Bounded number of backoff rounds a sender burns trying to cross a
  /// severed link before the copy that finally lands (partition brown-out
  /// model; see DESIGN.md §10).
  int partition_retry_limit = 3;
  /// Master-side coordination cost of a PLANNED departure (decommission):
  /// the departing worker announces itself and hands off synchronously, so
  /// no heartbeat window elapses — only this small control exchange. Kept
  /// far below heartbeat_interval + heartbeat_timeout on purpose; clean
  /// departures must not pay the crash-detection path (DESIGN.md §14).
  double planned_handoff_delay = 0.02;
};

class FailureDetector {
 public:
  FailureDetector() = default;
  explicit FailureDetector(const FailureDetectorConfig& config)
      : config_(config) {}

  /// \brief Simulated seconds between a worker dying and the master knowing.
  double WorkerDetectionDelay() const {
    return config_.heartbeat_interval + config_.heartbeat_timeout;
  }

  /// \brief Relaunch delay of the (attempt+1)-th retry of a task on one
  /// worker within one iteration (exponential backoff, capped). The clamp
  /// lives inside the loop: multiplying first and capping after overflows to
  /// +inf for large attempt counts (a multiplier of 2 overflows a double
  /// past attempt ~1024, and greedy chaos schedules do reach big attempts).
  double TaskRetryDelay(int attempt) const {
    double delay = config_.task_retry_base;
    for (int i = 0; i < attempt && delay < config_.task_retry_max; ++i) {
      delay *= config_.task_retry_multiplier;
    }
    return std::min(delay, config_.task_retry_max);
  }

  /// \brief Backoff before the (attempt+1)-th retransmit of a data-plane
  /// message (ack_timeout-based exponential backoff, capped like task
  /// retries).
  double RetransmitDelay(int attempt) const {
    double delay = config_.ack_timeout;
    for (int i = 0; i < attempt && delay < config_.task_retry_max; ++i) {
      delay *= config_.task_retry_multiplier;
    }
    return std::min(delay, config_.task_retry_max);
  }

  /// \brief Master-clock delay of a planned decommission (no heartbeat
  /// window; the departing worker is alive and coordinates its own exit).
  double PlannedHandoffDelay() const { return config_.planned_handoff_delay; }

  /// \brief Marks `worker` as departed (crashed and removed, or cleanly
  /// decommissioned). Fault events targeting departed workers are skipped —
  /// a rank that left the cluster cannot crash again, and charging
  /// detection or retry backoff for it would be a spurious recovery path.
  void MarkDeparted(int worker) { departed_.insert(worker); }

  /// \brief Clears the departed mark when a rank rejoins on a grow.
  void MarkRejoined(int worker) { departed_.erase(worker); }

  bool departed(int worker) const { return departed_.count(worker) > 0; }

  double ack_timeout() const { return config_.ack_timeout; }
  const FailureDetectorConfig& config() const { return config_; }

 private:
  FailureDetectorConfig config_;
  std::set<int> departed_;
};

}  // namespace colsgd

#endif  // COLSGD_CLUSTER_FAULT_FAILURE_DETECTOR_H_
