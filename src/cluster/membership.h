// Elastic cluster membership (DESIGN.md §14): the master's view of which
// worker ranks are active, and how that set changes mid-run.
//
// The runtime pre-provisions max_workers rank slots (clocks + NICs); the
// MembershipView tracks which of them currently participate in BSP rounds.
// Shrink removes a rank (planned decommission or crash removal), grow
// activates a spare. Auto-pick is deterministic — shrink takes the
// highest-id active rank, grow the lowest-id inactive one — so a scripted
// `grow@iter` with no explicit rank replays identically everywhere,
// including inside the chaos harness's schedule generator.
#ifndef COLSGD_CLUSTER_MEMBERSHIP_H_
#define COLSGD_CLUSTER_MEMBERSHIP_H_

#include <vector>

#include "common/result.h"

namespace colsgd {

class MembershipView {
 public:
  MembershipView() = default;
  /// \brief Ranks [0, initial_workers) start active; ranks
  /// [initial_workers, max_workers) are provisioned spares.
  MembershipView(int initial_workers, int max_workers);

  /// \brief Active ranks, ascending. BSP rounds iterate exactly this set.
  const std::vector<int>& active() const { return active_; }
  int num_active() const { return static_cast<int>(active_.size()); }
  int max_workers() const { return max_workers_; }
  bool is_active(int rank) const;

  /// \brief Reconfiguration epoch: bumps on every successful Add/Remove.
  int64_t generation() const { return generation_; }

  /// \brief Deactivates a rank (decommission or crash removal). Refuses to
  /// remove the last active rank or one that is not active.
  Status Remove(int rank);

  /// \brief Activates a provisioned spare rank.
  Status Add(int rank);

  /// \brief Auto-pick for `shrink@iter` with no explicit rank: the
  /// highest-id active rank, or -1 when only one rank remains.
  int PickShrink() const;

  /// \brief Auto-pick for `grow@iter`: the lowest-id inactive rank, or -1
  /// when every provisioned rank is already active.
  int PickGrow() const;

 private:
  std::vector<int> active_;
  int max_workers_ = 0;
  int64_t generation_ = 0;
};

}  // namespace colsgd

#endif  // COLSGD_CLUSTER_MEMBERSHIP_H_
