// Minimal leveled logging to stderr.
#ifndef COLSGD_COMMON_LOGGING_H_
#define COLSGD_COMMON_LOGGING_H_

#include <iostream>
#include <sstream>

namespace colsgd {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// \brief Global minimum level; messages below it are dropped.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line) : level_(level) {
    stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line
            << "] ";
  }
  ~LogMessage() {
    if (level_ >= GetLogLevel()) {
      std::cerr << stream_.str() << std::endl;
    }
  }
  std::ostream& stream() { return stream_; }

 private:
  static const char* LevelName(LogLevel level) {
    switch (level) {
      case LogLevel::kDebug:
        return "DEBUG";
      case LogLevel::kInfo:
        return "INFO";
      case LogLevel::kWarning:
        return "WARN";
      case LogLevel::kError:
        return "ERROR";
    }
    return "?";
  }
  static const char* Basename(const char* path) {
    const char* base = path;
    for (const char* p = path; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    return base;
  }

  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace colsgd

#define COLSGD_LOG(level)                                                  \
  ::colsgd::internal::LogMessage(::colsgd::LogLevel::k##level, __FILE__,   \
                                 __LINE__)                                 \
      .stream()

#endif  // COLSGD_COMMON_LOGGING_H_
