// Byte-buffer serialization used for every message that crosses the
// simulated network. Sizes are what the network model charges for, so all
// encodings here are the on-the-wire format.
#ifndef COLSGD_COMMON_BYTES_H_
#define COLSGD_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/result.h"
#include "common/status.h"

namespace colsgd {

/// \brief Append-only little-endian byte buffer writer.
class BufferWriter {
 public:
  BufferWriter() = default;
  explicit BufferWriter(size_t reserve) { buf_.reserve(reserve); }

  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU32(uint32_t v) { PutRaw(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutRaw(&v, sizeof(v)); }
  void PutI32(int32_t v) { PutRaw(&v, sizeof(v)); }
  void PutI64(int64_t v) { PutRaw(&v, sizeof(v)); }
  void PutFloat(float v) { PutRaw(&v, sizeof(v)); }
  void PutDouble(double v) { PutRaw(&v, sizeof(v)); }

  /// \brief Length-prefixed string.
  void PutString(const std::string& s) {
    PutU32(static_cast<uint32_t>(s.size()));
    PutRaw(s.data(), s.size());
  }

  /// \brief Length-prefixed vector of doubles.
  void PutDoubleVector(const std::vector<double>& v) {
    PutU64(v.size());
    PutRaw(v.data(), v.size() * sizeof(double));
  }

  /// \brief Length-prefixed vector of uint32.
  void PutU32Vector(const std::vector<uint32_t>& v) {
    PutU64(v.size());
    PutRaw(v.data(), v.size() * sizeof(uint32_t));
  }

  /// \brief Length-prefixed vector of uint64.
  void PutU64Vector(const std::vector<uint64_t>& v) {
    PutU64(v.size());
    PutRaw(v.data(), v.size() * sizeof(uint64_t));
  }

  /// \brief Length-prefixed vector of floats (compact feature values).
  void PutFloatVector(const std::vector<float>& v) {
    PutU64(v.size());
    PutRaw(v.data(), v.size() * sizeof(float));
  }

  void PutRaw(const void* data, size_t n) {
    const auto* p = static_cast<const uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  size_t size() const { return buf_.size(); }
  const std::vector<uint8_t>& buffer() const { return buf_; }
  std::vector<uint8_t> Release() { return std::move(buf_); }

 private:
  std::vector<uint8_t> buf_;
};

/// \brief Sequential reader over a byte buffer produced by BufferWriter.
///
/// All getters return Status/Result so truncated or corrupt messages surface
/// as SerializationError instead of undefined behaviour.
class BufferReader {
 public:
  BufferReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit BufferReader(const std::vector<uint8_t>& buf)
      : BufferReader(buf.data(), buf.size()) {}

  Result<uint8_t> GetU8() { return Get<uint8_t>(); }
  Result<uint32_t> GetU32() { return Get<uint32_t>(); }
  Result<uint64_t> GetU64() { return Get<uint64_t>(); }
  Result<int32_t> GetI32() { return Get<int32_t>(); }
  Result<int64_t> GetI64() { return Get<int64_t>(); }
  Result<float> GetFloat() { return Get<float>(); }
  Result<double> GetDouble() { return Get<double>(); }

  Result<std::string> GetString() {
    COLSGD_ASSIGN_OR_RETURN(uint32_t n, GetU32());
    if (Remaining() < n) return Truncated("string");
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  Result<std::vector<double>> GetDoubleVector() {
    return GetVector<double>("double vector");
  }
  Result<std::vector<uint32_t>> GetU32Vector() {
    return GetVector<uint32_t>("u32 vector");
  }
  Result<std::vector<uint64_t>> GetU64Vector() {
    return GetVector<uint64_t>("u64 vector");
  }
  Result<std::vector<float>> GetFloatVector() {
    return GetVector<float>("float vector");
  }

  size_t Remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

 private:
  template <typename T>
  Result<T> Get() {
    if (Remaining() < sizeof(T)) return Truncated("scalar");
    T v;
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  template <typename T>
  Result<std::vector<T>> GetVector(const char* what) {
    COLSGD_ASSIGN_OR_RETURN(uint64_t n, GetU64());
    if (Remaining() < n * sizeof(T)) return Truncated(what);
    std::vector<T> v(n);
    std::memcpy(v.data(), data_ + pos_, n * sizeof(T));
    pos_ += n * sizeof(T);
    return v;
  }

  Status Truncated(const char* what) const {
    return Status::SerializationError(std::string("truncated buffer reading ") +
                                      what);
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace colsgd

#endif  // COLSGD_COMMON_BYTES_H_
