#include "common/status.h"

namespace colsgd {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kOutOfMemory:
      return "OutOfMemory";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kSerializationError:
      return "SerializationError";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace colsgd
