// Tiny command-line flag parser for benches and examples.
//
// Usage:
//   FlagParser flags;
//   int64_t n = 1000;
//   flags.AddInt64("n", &n, "row count");
//   COLSGD_CHECK_OK(flags.Parse(argc, argv));
//
// Accepts --name=value and --name value; --help prints usage and exits.
#ifndef COLSGD_COMMON_FLAGS_H_
#define COLSGD_COMMON_FLAGS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace colsgd {

class FlagParser {
 public:
  void AddInt64(const std::string& name, int64_t* target,
                const std::string& help);
  void AddDouble(const std::string& name, double* target,
                 const std::string& help);
  void AddBool(const std::string& name, bool* target, const std::string& help);
  void AddString(const std::string& name, std::string* target,
                 const std::string& help);

  /// \brief Parses argv; unknown flags are an error. May call std::exit(0)
  /// for --help.
  Status Parse(int argc, char** argv);

  /// \brief Prints registered flags with defaults and help text.
  void PrintUsage(const std::string& program) const;

 private:
  enum class Type { kInt64, kDouble, kBool, kString };
  struct Flag {
    std::string name;
    Type type;
    void* target;
    std::string help;
    std::string default_repr;
  };

  Status SetValue(Flag* flag, const std::string& value);
  Flag* Find(const std::string& name);

  std::vector<Flag> flags_;
};

}  // namespace colsgd

#endif  // COLSGD_COMMON_FLAGS_H_
