#include "common/csv.h"

#include <cstdio>

#include "common/check.h"

namespace colsgd {

std::string FormatDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

Status CsvWriter::Open(const std::string& path,
                       const std::vector<std::string>& header) {
  out_.open(path);
  if (!out_.is_open()) {
    return Status::IOError("cannot open CSV for writing: " + path);
  }
  num_columns_ = header.size();
  WriteRow(header);
  return Status::OK();
}

void CsvWriter::WriteRow(const std::vector<std::string>& cells) {
  COLSGD_CHECK(out_.is_open());
  COLSGD_CHECK_EQ(cells.size(), num_columns_);
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ",";
    out_ << cells[i];
  }
  out_ << "\n";
  out_.flush();  // benches tail these files while running
}

void CsvWriter::WriteNumericRow(const std::vector<double>& cells) {
  std::vector<std::string> repr;
  repr.reserve(cells.size());
  for (double c : cells) repr.push_back(FormatDouble(c));
  WriteRow(repr);
}

}  // namespace colsgd
