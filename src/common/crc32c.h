// CRC32C (Castagnoli, polynomial 0x1EDC6F41) — the checksum every
// data-plane frame and checkpoint file carries. Software table-driven
// implementation; the checksum is part of the on-the-wire/on-disk format, so
// it must be byte-stable across platforms (it is: the table is fixed and the
// fold is endian-independent).
#ifndef COLSGD_COMMON_CRC32C_H_
#define COLSGD_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace colsgd {

/// \brief Extends a running CRC32C over `n` more bytes. `crc` is the value
/// returned by a previous Extend/Crc32c call (not the raw register).
uint32_t ExtendCrc32c(uint32_t crc, const void* data, size_t n);

/// \brief CRC32C of a byte range. Crc32c("123456789", 9) == 0xE3069283.
inline uint32_t Crc32c(const void* data, size_t n) {
  return ExtendCrc32c(0, data, n);
}

inline uint32_t Crc32c(const std::vector<uint8_t>& bytes) {
  return Crc32c(bytes.data(), bytes.size());
}

}  // namespace colsgd

#endif  // COLSGD_COMMON_CRC32C_H_
