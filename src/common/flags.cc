#include "common/flags.h"

#include <cstdlib>
#include <iostream>

namespace colsgd {

namespace {
std::string BoolRepr(bool b) { return b ? "true" : "false"; }
}  // namespace

void FlagParser::AddInt64(const std::string& name, int64_t* target,
                          const std::string& help) {
  flags_.push_back(
      {name, Type::kInt64, target, help, std::to_string(*target)});
}

void FlagParser::AddDouble(const std::string& name, double* target,
                           const std::string& help) {
  flags_.push_back(
      {name, Type::kDouble, target, help, std::to_string(*target)});
}

void FlagParser::AddBool(const std::string& name, bool* target,
                         const std::string& help) {
  flags_.push_back({name, Type::kBool, target, help, BoolRepr(*target)});
}

void FlagParser::AddString(const std::string& name, std::string* target,
                           const std::string& help) {
  flags_.push_back({name, Type::kString, target, help, *target});
}

FlagParser::Flag* FlagParser::Find(const std::string& name) {
  for (auto& f : flags_) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

Status FlagParser::SetValue(Flag* flag, const std::string& value) {
  try {
    switch (flag->type) {
      case Type::kInt64:
        *static_cast<int64_t*>(flag->target) = std::stoll(value);
        break;
      case Type::kDouble:
        *static_cast<double*>(flag->target) = std::stod(value);
        break;
      case Type::kBool:
        if (value == "true" || value == "1") {
          *static_cast<bool*>(flag->target) = true;
        } else if (value == "false" || value == "0") {
          *static_cast<bool*>(flag->target) = false;
        } else {
          return Status::InvalidArgument("bad bool value for --" + flag->name +
                                         ": " + value);
        }
        break;
      case Type::kString:
        *static_cast<std::string*>(flag->target) = value;
        break;
    }
  } catch (const std::exception&) {
    return Status::InvalidArgument("cannot parse value for --" + flag->name +
                                   ": " + value);
  }
  return Status::OK();
}

void FlagParser::PrintUsage(const std::string& program) const {
  std::cout << "Usage: " << program << " [flags]\n";
  for (const auto& f : flags_) {
    std::cout << "  --" << f.name << " (default: " << f.default_repr << ")  "
              << f.help << "\n";
  }
}

Status FlagParser::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      PrintUsage(argv[0]);
      std::exit(0);
    }
    if (arg.rfind("--", 0) != 0) {
      return Status::InvalidArgument("unexpected positional argument: " + arg);
    }
    std::string body = arg.substr(2);
    std::string name;
    std::string value;
    auto eq = body.find('=');
    if (eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
    } else {
      name = body;
      Flag* flag = Find(name);
      if (flag != nullptr && flag->type == Type::kBool) {
        value = "true";  // --flag form for booleans
      } else {
        if (i + 1 >= argc) {
          return Status::InvalidArgument("missing value for --" + name);
        }
        value = argv[++i];
      }
    }
    Flag* flag = Find(name);
    if (flag == nullptr) {
      return Status::InvalidArgument("unknown flag --" + name);
    }
    COLSGD_RETURN_NOT_OK(SetValue(flag, value));
  }
  return Status::OK();
}

}  // namespace colsgd
