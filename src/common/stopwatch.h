// Wall-clock stopwatch; reported alongside (but never mixed with) simulated
// time.
#ifndef COLSGD_COMMON_STOPWATCH_H_
#define COLSGD_COMMON_STOPWATCH_H_

#include <chrono>

namespace colsgd {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// \brief Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace colsgd

#endif  // COLSGD_COMMON_STOPWATCH_H_
