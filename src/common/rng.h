// Deterministic, splittable random number generation.
//
// Every stochastic component (samplers, data generators, straggler picks)
// takes an explicit seed so that whole-cluster runs replay bit-identically.
// The two-phase index (Section IV-A2 of the paper) relies on all workers
// drawing the same sequence from the same seed.
#ifndef COLSGD_COMMON_RNG_H_
#define COLSGD_COMMON_RNG_H_

#include <cmath>
#include <cstdint>

#include "common/check.h"

namespace colsgd {

/// \brief SplitMix64: used for seeding and cheap hashing.
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// \brief Deterministic standard-normal value keyed by (key, seed); used
/// wherever a "random" per-slot value must be reproducible without storing a
/// vector (planted model weights, FM factor initialization).
inline double GaussianFromHash(uint64_t key, uint64_t seed) {
  const uint64_t h1 = SplitMix64(key ^ SplitMix64(seed));
  const uint64_t h2 = SplitMix64(h1);
  double u1 = static_cast<double>(h1 >> 11) * 0x1.0p-53;
  const double u2 = static_cast<double>(h2 >> 11) * 0x1.0p-53;
  if (u1 < 1e-300) u1 = 1e-300;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

/// \brief xoshiro256** PRNG. Fast, high-quality, deterministic across
/// platforms (unlike std::mt19937 distributions).
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    uint64_t s = seed;
    for (auto& word : s_) {
      s = SplitMix64(s);
      word = s;
    }
  }

  /// \brief Derives an independent stream, e.g. one per worker or iteration.
  Rng Split(uint64_t stream) const {
    return Rng(SplitMix64(s_[0] ^ SplitMix64(stream * 0x9e3779b97f4a7c15ULL)));
  }

  uint64_t NextU64() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// \brief Uniform integer in [0, bound). Bound must be positive.
  uint64_t NextBounded(uint64_t bound) {
    COLSGD_CHECK_GT(bound, 0u);
    // Lemire's nearly-divisionless method would be overkill; modulo bias is
    // negligible for bounds << 2^64 and determinism is what matters here.
    return NextU64() % bound;
  }

  /// \brief Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// \brief Uniform double in [lo, hi).
  double NextUniform(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// \brief Standard normal via Box-Muller (deterministic, no cached spare).
  double NextGaussian() {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  /// \brief Bernoulli draw with probability p.
  bool NextBernoulli(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
};

}  // namespace colsgd

#endif  // COLSGD_COMMON_RNG_H_
