#include "common/crc32c.h"

#include <array>

namespace colsgd {

namespace {

constexpr uint32_t kPolynomial = 0x82F63B78;  // reflected 0x1EDC6F41

constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int k = 0; k < 8; ++k) {
      crc = (crc & 1) ? (crc >> 1) ^ kPolynomial : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = MakeTable();

}  // namespace

uint32_t ExtendCrc32c(uint32_t crc, const void* data, size_t n) {
  const auto* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
  for (size_t i = 0; i < n; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace colsgd
