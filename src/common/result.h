// Result<T>: value-or-Status, following the Arrow idiom.
#ifndef COLSGD_COMMON_RESULT_H_
#define COLSGD_COMMON_RESULT_H_

#include <utility>
#include <variant>

#include "common/check.h"
#include "common/status.h"

namespace colsgd {

/// \brief Holds either a value of type T or an error Status.
///
/// A Result constructed from an OK status is a programming error.
template <typename T>
class Result {
 public:
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    COLSGD_CHECK(!std::get<Status>(repr_).ok())
        << "Result constructed from OK status";
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// \brief The error status, or OK when a value is held.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  const T& ValueOrDie() const& {
    COLSGD_CHECK(ok()) << "ValueOrDie on error Result: "
                       << std::get<Status>(repr_).ToString();
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    COLSGD_CHECK(ok()) << "ValueOrDie on error Result: "
                       << std::get<Status>(repr_).ToString();
    return std::get<T>(repr_);
  }
  T ValueOrDie() && {
    COLSGD_CHECK(ok()) << "ValueOrDie on error Result: "
                       << std::get<Status>(repr_).ToString();
    return std::move(std::get<T>(repr_));
  }

  /// \brief Moves the value out without checking; caller must know ok().
  T ValueUnsafe() && { return std::move(std::get<T>(repr_)); }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<Status, T> repr_;
};

}  // namespace colsgd

#endif  // COLSGD_COMMON_RESULT_H_
