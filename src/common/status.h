// Status / Result error handling, following the Arrow/RocksDB idiom:
// fallible operations return a Status (or Result<T>) instead of throwing.
#ifndef COLSGD_COMMON_STATUS_H_
#define COLSGD_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <utility>

namespace colsgd {

/// \brief Error categories used across the library.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kIOError = 2,
  kOutOfMemory = 3,
  kNotFound = 4,
  kAlreadyExists = 5,
  kFailedPrecondition = 6,
  kUnavailable = 7,        // e.g. a failed worker
  kSerializationError = 8,
  kInternal = 9,
};

/// \brief Returns a human-readable name for a status code.
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of a fallible operation.
///
/// An OK status carries no allocation; error statuses carry a code and a
/// message. Statuses are cheap to move and to test for success.
class Status {
 public:
  Status() = default;  // OK

  Status(StatusCode code, std::string msg) {
    if (code != StatusCode::kOk) {
      state_ = std::make_unique<State>(State{code, std::move(msg)});
    }
  }

  Status(const Status& other) { CopyFrom(other); }
  Status& operator=(const Status& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status OutOfMemory(std::string msg) {
    return Status(StatusCode::kOutOfMemory, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status SerializationError(std::string msg) {
    return Status(StatusCode::kSerializationError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  const std::string& message() const {
    static const std::string kEmpty;
    return ok() ? kEmpty : state_->msg;
  }

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsOutOfMemory() const { return code() == StatusCode::kOutOfMemory; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }

  /// \brief "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };

  void CopyFrom(const Status& other) {
    state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
  }

  std::unique_ptr<State> state_;
};

}  // namespace colsgd

/// \brief Propagates a non-OK Status to the caller.
#define COLSGD_RETURN_NOT_OK(expr)                 \
  do {                                             \
    ::colsgd::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                     \
  } while (0)

#define COLSGD_CONCAT_IMPL(a, b) a##b
#define COLSGD_CONCAT(a, b) COLSGD_CONCAT_IMPL(a, b)

/// \brief Assigns the value of a Result<T> expression or propagates its error.
#define COLSGD_ASSIGN_OR_RETURN(lhs, rexpr)                        \
  auto COLSGD_CONCAT(_result_, __LINE__) = (rexpr);                \
  if (!COLSGD_CONCAT(_result_, __LINE__).ok())                     \
    return COLSGD_CONCAT(_result_, __LINE__).status();             \
  lhs = std::move(COLSGD_CONCAT(_result_, __LINE__)).ValueUnsafe()

#endif  // COLSGD_COMMON_STATUS_H_
