// CSV emission for benchmark series (loss-vs-time curves, sweeps).
#ifndef COLSGD_COMMON_CSV_H_
#define COLSGD_COMMON_CSV_H_

#include <fstream>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/status.h"

namespace colsgd {

/// \brief Writes rows of a CSV file; used by benches to dump the series
/// behind each reproduced figure.
class CsvWriter {
 public:
  /// \brief Opens `path` for writing and emits the header row.
  Status Open(const std::string& path, const std::vector<std::string>& header);

  void WriteRow(const std::vector<std::string>& cells);

  /// \brief Convenience: formats doubles with %.6g.
  void WriteNumericRow(const std::vector<double>& cells);

  bool is_open() const { return out_.is_open(); }

 private:
  std::ofstream out_;
  size_t num_columns_ = 0;
};

/// \brief Formats a double compactly (%.6g).
std::string FormatDouble(double v);

}  // namespace colsgd

#endif  // COLSGD_COMMON_CSV_H_
