// Fatal invariant checks (always on, including release builds).
#ifndef COLSGD_COMMON_CHECK_H_
#define COLSGD_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace colsgd {
namespace internal {

/// \brief Accumulates a fatal message and aborts on destruction.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* expr) {
    stream_ << file << ":" << line << " CHECK failed: " << expr << " ";
  }
  [[noreturn]] ~FatalLogMessage() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

/// \brief Swallows the message stream when the check passes.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace colsgd

#define COLSGD_CHECK(cond)                                              \
  (cond) ? (void)0                                                      \
         : (void)::colsgd::internal::FatalLogMessage(__FILE__, __LINE__, \
                                                     #cond)             \
               .stream()

// Streaming form: COLSGD_CHECK(x) << "context"; implemented via a ternary
// that selects a live or null stream.
#undef COLSGD_CHECK
#define COLSGD_CHECK(cond)                                                  \
  for (bool _colsgd_ok = static_cast<bool>(cond); !_colsgd_ok;              \
       _colsgd_ok = true)                                                   \
  ::colsgd::internal::FatalLogMessage(__FILE__, __LINE__, #cond).stream()

#define COLSGD_CHECK_EQ(a, b) COLSGD_CHECK((a) == (b))
#define COLSGD_CHECK_NE(a, b) COLSGD_CHECK((a) != (b))
#define COLSGD_CHECK_LT(a, b) COLSGD_CHECK((a) < (b))
#define COLSGD_CHECK_LE(a, b) COLSGD_CHECK((a) <= (b))
#define COLSGD_CHECK_GT(a, b) COLSGD_CHECK((a) > (b))
#define COLSGD_CHECK_GE(a, b) COLSGD_CHECK((a) >= (b))

#define COLSGD_CHECK_OK(expr)                                    \
  for (::colsgd::Status _colsgd_st = (expr); !_colsgd_st.ok();   \
       _colsgd_st = ::colsgd::Status::OK())                      \
  ::colsgd::internal::FatalLogMessage(__FILE__, __LINE__, #expr) \
          .stream()                                              \
      << _colsgd_st.ToString()

#endif  // COLSGD_COMMON_CHECK_H_
