#include "optim/optimizer.h"

#include "common/check.h"

namespace colsgd {

std::unique_ptr<Optimizer> MakeOptimizer(const std::string& name, double lr) {
  if (name == "sgd") return std::make_unique<SgdOptimizer>(lr);
  if (name == "adagrad") return std::make_unique<AdaGradOptimizer>(lr);
  if (name == "adam") return std::make_unique<AdamOptimizer>(lr);
  COLSGD_CHECK(false) << "unknown optimizer: " << name;
  return nullptr;
}

}  // namespace colsgd
