// Optimizers applied per weight slot, with per-slot state that partitions by
// columns exactly like the model (Section III-A remark: ColumnSGD supports
// SGD variants such as AdaGrad and Adam by tweaking the model update).
//
// Updates are sparse: only slots touched by the current batch are updated,
// and regularization is applied to touched slots only (the standard lazy
// treatment for sparse data; documented in DESIGN.md).
#ifndef COLSGD_OPTIM_OPTIMIZER_H_
#define COLSGD_OPTIM_OPTIMIZER_H_

#include <cmath>
#include <memory>
#include <string>

namespace colsgd {

/// \brief Regularization Omega(w): l2/2 * |w|^2 + l1 * |w|.
struct RegularizerConfig {
  double l2 = 0.0;
  double l1 = 0.0;

  /// \brief Subgradient of Omega at weight w.
  double Grad(double w) const {
    double g = l2 * w;
    if (l1 != 0.0) g += w > 0.0 ? l1 : (w < 0.0 ? -l1 : 0.0);
    return g;
  }
};

/// \brief Per-slot update rule. `state` points at `state_per_slot()` doubles
/// private to the slot (zero-initialized).
class Optimizer {
 public:
  virtual ~Optimizer() = default;
  virtual std::string name() const = 0;
  virtual int state_per_slot() const = 0;
  /// \brief Called once per iteration before any ApplyUpdate.
  virtual void BeginStep() {}
  /// \brief Applies the update for one slot; `grad` is the batch-averaged
  /// gradient including regularization.
  virtual void ApplyUpdate(double* weight, double grad, double* state) = 0;
  /// \brief Fresh instance with the same hyperparameters (one per worker or
  /// replica; each keeps its own step counter).
  virtual std::unique_ptr<Optimizer> Clone() const = 0;
};

/// \brief Plain SGD: w -= lr_t * g with lr_t = lr / (1 + decay * t).
class SgdOptimizer : public Optimizer {
 public:
  explicit SgdOptimizer(double lr, double decay = 0.0)
      : lr_(lr), decay_(decay) {}

  std::string name() const override { return "sgd"; }
  int state_per_slot() const override { return 0; }
  void BeginStep() override {
    current_lr_ = lr_ / (1.0 + decay_ * static_cast<double>(step_++));
  }
  void ApplyUpdate(double* weight, double grad, double* state) override {
    (void)state;
    *weight -= current_lr_ * grad;
  }
  std::unique_ptr<Optimizer> Clone() const override {
    return std::make_unique<SgdOptimizer>(lr_, decay_);
  }

 private:
  double lr_;
  double decay_;
  double current_lr_ = 0.0;
  int64_t step_ = 0;
};

/// \brief AdaGrad (Duchi et al. 2011): h += g^2; w -= lr * g / (sqrt(h)+eps).
class AdaGradOptimizer : public Optimizer {
 public:
  explicit AdaGradOptimizer(double lr, double eps = 1e-8)
      : lr_(lr), eps_(eps) {}

  std::string name() const override { return "adagrad"; }
  int state_per_slot() const override { return 1; }
  void ApplyUpdate(double* weight, double grad, double* state) override {
    state[0] += grad * grad;
    *weight -= lr_ * grad / (std::sqrt(state[0]) + eps_);
  }
  std::unique_ptr<Optimizer> Clone() const override {
    return std::make_unique<AdaGradOptimizer>(lr_, eps_);
  }

 private:
  double lr_;
  double eps_;
};

/// \brief Adam (Kingma & Ba 2014) with global-step bias correction; touched
/// slots update once per batch (the usual sparse-Adam treatment).
class AdamOptimizer : public Optimizer {
 public:
  AdamOptimizer(double lr, double beta1 = 0.9, double beta2 = 0.999,
                double eps = 1e-8)
      : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}

  std::string name() const override { return "adam"; }
  int state_per_slot() const override { return 2; }
  void BeginStep() override {
    ++step_;
    bias1_ = 1.0 - std::pow(beta1_, static_cast<double>(step_));
    bias2_ = 1.0 - std::pow(beta2_, static_cast<double>(step_));
  }
  void ApplyUpdate(double* weight, double grad, double* state) override {
    state[0] = beta1_ * state[0] + (1.0 - beta1_) * grad;         // m
    state[1] = beta2_ * state[1] + (1.0 - beta2_) * grad * grad;  // v
    const double m_hat = state[0] / bias1_;
    const double v_hat = state[1] / bias2_;
    *weight -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
  }
  std::unique_ptr<Optimizer> Clone() const override {
    return std::make_unique<AdamOptimizer>(lr_, beta1_, beta2_, eps_);
  }

 private:
  double lr_;
  double beta1_;
  double beta2_;
  double eps_;
  int64_t step_ = 0;
  double bias1_ = 1.0;
  double bias2_ = 1.0;
};

/// \brief Factory: "sgd", "adagrad", "adam" with the given base rate.
std::unique_ptr<Optimizer> MakeOptimizer(const std::string& name, double lr);

}  // namespace colsgd

#endif  // COLSGD_OPTIM_OPTIMIZER_H_
