#include "datagen/synthetic.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace colsgd {

double PlantedWeight(uint64_t feature, uint64_t seed) {
  return GaussianFromHash(feature, seed);
}

namespace {

/// Draws a feature id with power-law popularity: low ids are hot.
uint32_t DrawFeature(Rng* rng, uint64_t m, double skew) {
  const double u = rng->NextDouble();
  // u^(1/skew) with skew in (0,1] pushes mass toward 0; skew=1 is uniform.
  const double x = std::pow(u, 1.0 / skew);
  uint64_t f = static_cast<uint64_t>(x * static_cast<double>(m));
  if (f >= m) f = m - 1;
  return static_cast<uint32_t>(f);
}

}  // namespace

Dataset GenerateSynthetic(const SyntheticSpec& spec) {
  COLSGD_CHECK_GT(spec.num_features, 0u);
  COLSGD_CHECK_GE(spec.num_classes, 2);
  Dataset dataset;
  dataset.num_features = spec.num_features;
  dataset.num_classes = spec.num_classes;

  Rng rng(spec.seed);
  std::vector<uint32_t> indices;
  std::vector<float> values;
  for (uint64_t r = 0; r < spec.num_rows; ++r) {
    // Row length: 1 + Poisson-ish draw around avg (geometric mixture keeps a
    // heavy tail like real CTR data).
    const double mean = spec.avg_nnz_per_row;
    size_t nnz = 1 + static_cast<size_t>(rng.NextDouble() * 2.0 * (mean - 1.0));
    nnz = std::min<size_t>(nnz, spec.num_features);

    indices.clear();
    values.clear();
    for (size_t j = 0; j < nnz; ++j) {
      indices.push_back(DrawFeature(&rng, spec.num_features, spec.skew));
    }
    std::sort(indices.begin(), indices.end());
    indices.erase(std::unique(indices.begin(), indices.end()), indices.end());
    values.reserve(indices.size());
    for (size_t j = 0; j < indices.size(); ++j) {
      values.push_back(spec.binary_features
                           ? 1.0f
                           : static_cast<float>(rng.NextUniform(0.1, 1.0)));
    }

    // Planted-model score(s) -> label.
    float label;
    if (spec.num_classes == 2) {
      double score = 0.0;
      for (size_t j = 0; j < indices.size(); ++j) {
        score += PlantedWeight(indices[j], spec.seed) *
                 static_cast<double>(values[j]);
      }
      // Normalize by sqrt(nnz) so margins don't blow up with row length.
      score /= std::sqrt(static_cast<double>(indices.size()));
      const double p = 1.0 / (1.0 + std::exp(-spec.label_noise * score));
      label = rng.NextBernoulli(p) ? 1.0f : -1.0f;
    } else {
      // MLR: planted model per class, class = noisy argmax.
      int best = 0;
      double best_score = -1e300;
      for (int c = 0; c < spec.num_classes; ++c) {
        double score = 0.0;
        const uint64_t class_seed = SplitMix64(spec.seed + 1000003ull * c);
        for (size_t j = 0; j < indices.size(); ++j) {
          score += PlantedWeight(indices[j], class_seed) *
                   static_cast<double>(values[j]);
        }
        score += 0.5 * rng.NextGaussian();  // label noise
        if (score > best_score) {
          best_score = score;
          best = c;
        }
      }
      label = static_cast<float>(best);
    }

    dataset.rows.AppendRow(indices.data(), values.data(), indices.size());
    dataset.labels.push_back(label);
  }
  return dataset;
}

SyntheticSpec AvazuSimSpec() {
  SyntheticSpec spec;
  spec.name = "avazu-sim";
  spec.num_rows = 100000;
  spec.num_features = 1000000;
  spec.avg_nnz_per_row = 15;
  spec.label_noise = 4.0;
  spec.seed = 101;
  return spec;
}

SyntheticSpec KddbSimSpec() {
  SyntheticSpec spec;
  spec.name = "kddb-sim";
  spec.num_rows = 80000;
  spec.num_features = 3000000;
  spec.avg_nnz_per_row = 30;
  spec.label_noise = 4.0;
  spec.seed = 102;
  return spec;
}

SyntheticSpec Kdd12SimSpec() {
  SyntheticSpec spec;
  spec.name = "kdd12-sim";
  spec.num_rows = 120000;
  spec.num_features = 5400000;
  spec.avg_nnz_per_row = 11;
  spec.label_noise = 4.0;
  spec.seed = 103;
  return spec;
}

SyntheticSpec WxSimSpec() {
  SyntheticSpec spec;
  spec.name = "wx-sim";
  spec.num_rows = 100000;
  spec.num_features = 4000000;
  spec.avg_nnz_per_row = 25;
  spec.label_noise = 4.0;
  spec.seed = 104;
  return spec;
}

SyntheticSpec CriteoSimSpec(uint64_t num_features) {
  SyntheticSpec spec;
  spec.name = "criteo-sim-" + std::to_string(num_features);
  spec.num_rows = 100000;
  spec.num_features = num_features;
  spec.avg_nnz_per_row = std::min<double>(39.0, static_cast<double>(num_features));
  spec.skew = 0.6;
  spec.seed = 105;
  return spec;
}

SyntheticSpec TinySpec() {
  SyntheticSpec spec;
  spec.name = "tiny";
  spec.num_rows = 1000;
  spec.num_features = 500;
  spec.avg_nnz_per_row = 12;
  spec.skew = 0.8;
  spec.binary_features = false;
  spec.seed = 7;
  return spec;
}

}  // namespace colsgd
