// Synthetic dataset generation.
//
// The paper evaluates on avazu/kddb/kdd12/criteo and a proprietary WX
// dataset. We generate sparse classification data with the same *shape*
// parameters — row count N, dimension m, average non-zeros per row, and a
// power-law feature-popularity skew typical of hashed CTR features — scaled
// to single-machine memory (see DESIGN.md section 4). Labels come from a
// planted ground-truth model (evaluated pseudo-randomly per feature id, so
// no O(m) weight vector is ever materialized) plus logistic noise, which
// makes convergence curves meaningful.
#ifndef COLSGD_DATAGEN_SYNTHETIC_H_
#define COLSGD_DATAGEN_SYNTHETIC_H_

#include <cstdint>
#include <string>

#include "storage/dataset.h"

namespace colsgd {

struct SyntheticSpec {
  std::string name = "synthetic";
  uint64_t num_rows = 10000;
  uint64_t num_features = 100000;
  double avg_nnz_per_row = 20.0;
  /// Feature-popularity skew in (0, 1]: drawn index = floor(m * u^(1/skew))
  /// ... see implementation; smaller values concentrate mass on low ids.
  double skew = 0.4;
  /// True: binary one-hot features (CTR style); false: uniform [0,1] values.
  bool binary_features = true;
  int num_classes = 2;  // 2 => labels +-1; >2 => class ids (MLR)
  double label_noise = 1.0;  // temperature of the label sampling
  uint64_t seed = 42;
};

/// \brief Generates a dataset according to `spec`. Deterministic in the seed.
Dataset GenerateSynthetic(const SyntheticSpec& spec);

/// \brief Ground-truth weight of feature `f` under `seed` (pseudo-random
/// Gaussian, never materialized as a vector).
double PlantedWeight(uint64_t feature, uint64_t seed);

// ---- Scaled-down analogs of the paper's datasets (Table II) --------------

SyntheticSpec AvazuSimSpec();   // 100k x 1.0M, ~15 nnz/row
SyntheticSpec KddbSimSpec();    // 80k  x 3.0M, ~30 nnz/row
SyntheticSpec Kdd12SimSpec();   // 120k x 5.4M, ~11 nnz/row
SyntheticSpec WxSimSpec();      // 100k x 4.0M, ~25 nnz/row
/// criteo-style sweep point: fixed N and nnz/row, dimension `num_features`
/// (the Fig. 10 scalability protocol of Boden et al.).
SyntheticSpec CriteoSimSpec(uint64_t num_features);

/// \brief Small dataset for unit tests (1k x 500, dense-ish).
SyntheticSpec TinySpec();

}  // namespace colsgd

#endif  // COLSGD_DATAGEN_SYNTHETIC_H_
