// In-memory replicated block store (DESIGN.md §14): the substrate of
// elastic cluster membership.
//
// Every unit of recoverable state — a partition's model slice, one workset
// of its column-sharded data — is sealed into a block image (header +
// payload + CRC32C trailer, the same trailer discipline as data-plane
// frames and checkpoint files) and held on r+1 ranks. Placement follows
// ReStore's scheme: block ids are grouped into permutation ranges of
// `blocks_per_permutation_range` ids, each range hashes to a seeded start
// rank, and the copies of a block land on consecutive ranks from there, so
// load spreads evenly and any r simultaneous rank losses leave at least one
// copy alive. A failed rank's blocks are then re-fetched peer-to-peer from
// surviving holders instead of stable storage; a corrupted copy fails its
// trailer check and the fetch falls through to the next holder.
#ifndef COLSGD_STORAGE_BLOCK_STORE_H_
#define COLSGD_STORAGE_BLOCK_STORE_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/result.h"

namespace colsgd {

/// \brief Static placement parameters. `replication` is r: each block has
/// r+1 copies (r = 0 keeps a single copy and recovery degrades to the
/// checkpoint/re-seed ladder).
struct BlockStoreConfig {
  int num_ranks = 0;
  int replication = 1;
  uint64_t seed = 0;
  /// Consecutive block ids sharing one permuted start rank (ReStore's
  /// blocksPerPermutationRange); keeps placement cache-friendly without
  /// letting one rank own a long run of blocks.
  int blocks_per_permutation_range = 64;
};

/// \brief Seeded permuted block -> rank placement. Pure function of the
/// config — master and every worker compute identical holder sets with no
/// coordination.
class BlockPlacement {
 public:
  BlockPlacement() = default;
  explicit BlockPlacement(const BlockStoreConfig& config);

  /// \brief The r+1 distinct holder ranks of `block_id`, primary first.
  /// Requires replication < num_ranks.
  std::vector<int> Holders(uint64_t block_id) const;

  /// \brief Holder set with a caller-chosen primary (engines pin a
  /// partition's primary to its natural owner); the r replicas are drawn
  /// from the seeded permuted stream, skipping the primary. All returned
  /// ranks are distinct.
  std::vector<int> HoldersWithPrimary(uint64_t block_id, int primary) const;

  const BlockStoreConfig& config() const { return config_; }

 private:
  BlockStoreConfig config_;
};

/// \brief Sealing/unsealing of block images: a fixed header (magic, block
/// id, payload length), the payload, and a CRC32C trailer over everything
/// before it. Unseal verifies the trailer and rejects damaged images with
/// SerializationError.
struct BlockImage {
  uint64_t block_id = 0;
  std::vector<uint8_t> payload;

  static std::vector<uint8_t> Seal(uint64_t block_id,
                                   const std::vector<uint8_t>& payload);
  static Result<BlockImage> Unseal(const std::vector<uint8_t>& image);
  /// \brief Sealed size of a payload (header + payload + trailer); what the
  /// network model charges for shipping one copy.
  static uint64_t SealedSize(uint64_t payload_size);
};

/// \brief One partition's model slice as a serializable block payload:
/// local weights plus optimizer state.
struct ModelSliceBlock {
  int64_t partition = 0;
  std::vector<double> weights;
  std::vector<double> opt_state;

  std::vector<uint8_t> Serialize() const;
  static Result<ModelSliceBlock> Deserialize(const std::vector<uint8_t>& data);
};

/// \brief Result of fetching one block: the first copy whose trailer
/// verified, where it came from, and which holders had to be skipped.
struct BlockFetch {
  std::vector<uint8_t> payload;
  int rank = -1;
  /// Holders whose copy failed the CRC check before `rank` served a good
  /// one (each is one replica_crc_rejection in RecoveryMetrics).
  std::vector<int> rejected_ranks;
  /// Sealed bytes of the served copy (what crossing the wire would cost).
  uint64_t wire_bytes = 0;
};

/// \brief The replicated store itself: per block, an ordered holder list
/// (front = primary/owner) and one sealed image per holder. Single
/// materialized object in the simulation; per-rank residency is tracked so
/// byte accounting and corruption are per-copy.
class BlockStore {
 public:
  BlockStore() = default;
  explicit BlockStore(const BlockStoreConfig& config)
      : config_(config), placement_(config) {}

  const BlockStoreConfig& config() const { return config_; }
  const BlockPlacement& placement() const { return placement_; }

  /// \brief Seals `payload` and installs one copy on every rank in
  /// `holders` (ordered, primary first). Replaces any previous block with
  /// the same id.
  void Put(uint64_t block_id, const std::vector<uint8_t>& payload,
           std::vector<int> holders);

  /// \brief Re-seals a block's payload on all current holders (model slices
  /// advance every iteration; data blocks never need this).
  void Refresh(uint64_t block_id, const std::vector<uint8_t>& payload);

  /// \brief Fetches the block, trying holders in order and skipping copies
  /// whose trailer fails; NotFound when the block is unknown,
  /// SerializationError when every copy is damaged.
  Result<BlockFetch> Fetch(uint64_t block_id) const;

  /// \brief Flips one bit of the sealed copy held by `rank` (fault
  /// injection; the next Fetch rejects that copy).
  void FlipBit(uint64_t block_id, int rank, uint64_t bit);

  /// \brief Ordered holders of a block (empty when unknown).
  const std::vector<int>& Holders(uint64_t block_id) const;

  /// \brief Adds `rank` as a holder, copying the image from a surviving
  /// copy; as_primary moves it to the front of the holder order.
  void AddHolder(uint64_t block_id, int rank, bool as_primary = false);

  /// \brief Removes `rank` from one block's holder set, dropping its copy.
  void RemoveHolder(uint64_t block_id, int rank);

  /// \brief Moves `rank` to the front of the block's holder order (owner
  /// promotion after the previous primary departed).
  void MakePrimary(uint64_t block_id, int rank);

  /// \brief Drops every copy held by `rank` (rank crashed or was
  /// decommissioned). Blocks whose last copy vanishes keep an empty holder
  /// list — Fetch then reports NotFound and the caller falls down the
  /// recovery ladder.
  void DropRank(int rank);

  /// \brief Sealed size of the block's primary image (0 when unknown) —
  /// what shipping one copy costs on the wire.
  uint64_t ImageSize(uint64_t block_id) const;

  /// \brief Block ids `rank` holds a copy of, ascending.
  std::vector<uint64_t> BlocksHeldBy(int rank) const;

  /// \brief Total sealed bytes resident on `rank`.
  uint64_t BytesHeldBy(int rank) const;

  size_t num_blocks() const { return blocks_.size(); }

 private:
  struct Entry {
    std::vector<int> holders;
    /// rank -> sealed image. Copies start bit-identical; FlipBit diverges
    /// one of them.
    std::map<int, std::vector<uint8_t>> images;
  };

  BlockStoreConfig config_;
  BlockPlacement placement_;
  std::map<uint64_t, Entry> blocks_;
};

}  // namespace colsgd

#endif  // COLSGD_STORAGE_BLOCK_STORE_H_
