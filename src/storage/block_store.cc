#include "storage/block_store.h"

#include <cstring>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/crc32c.h"
#include "common/rng.h"

namespace colsgd {

namespace {

constexpr uint32_t kBlockMagic = 0x4B4C4243;  // "CBLK"
constexpr size_t kHeaderBytes =
    sizeof(uint32_t) + sizeof(uint64_t) + sizeof(uint64_t);
constexpr size_t kTrailerBytes = sizeof(uint32_t);

template <typename T>
void AppendPod(std::vector<uint8_t>* out, const T& value) {
  const uint8_t* p = reinterpret_cast<const uint8_t*>(&value);
  out->insert(out->end(), p, p + sizeof(T));
}

template <typename T>
bool ReadPod(const std::vector<uint8_t>& data, size_t* offset, T* value) {
  if (*offset + sizeof(T) > data.size()) return false;
  std::memcpy(value, data.data() + *offset, sizeof(T));
  *offset += sizeof(T);
  return true;
}

}  // namespace

BlockPlacement::BlockPlacement(const BlockStoreConfig& config)
    : config_(config) {
  COLSGD_CHECK_GT(config_.num_ranks, 0);
  COLSGD_CHECK_GE(config_.replication, 0);
  COLSGD_CHECK_GT(config_.blocks_per_permutation_range, 0);
}

std::vector<int> BlockPlacement::Holders(uint64_t block_id) const {
  const int K = config_.num_ranks;
  const int copies = config_.replication + 1;
  COLSGD_CHECK_LE(copies, K)
      << "replication " << config_.replication << " needs > " << K << " ranks";
  const uint64_t bppr =
      static_cast<uint64_t>(config_.blocks_per_permutation_range);
  // ReStore-style permuted placement: consecutive ids within one permutation
  // range walk consecutive ranks from a seeded per-range start, so ranges
  // land on uncorrelated starts but placement stays O(1) to compute.
  const uint64_t range = block_id / bppr;
  const uint64_t start = SplitMix64(config_.seed ^ SplitMix64(range)) %
                         static_cast<uint64_t>(K);
  const int primary =
      static_cast<int>((start + block_id % bppr) % static_cast<uint64_t>(K));
  std::vector<int> holders;
  holders.reserve(copies);
  for (int j = 0; j < copies; ++j) holders.push_back((primary + j) % K);
  return holders;
}

std::vector<int> BlockPlacement::HoldersWithPrimary(uint64_t block_id,
                                                    int primary) const {
  const int K = config_.num_ranks;
  const int r = config_.replication;
  COLSGD_CHECK_GE(primary, 0);
  COLSGD_CHECK_LT(primary, K);
  COLSGD_CHECK_LT(r, K)
      << "replication " << r << " needs more than " << K << " ranks";
  std::vector<int> holders;
  holders.reserve(r + 1);
  holders.push_back(primary);
  if (r == 0) return holders;
  // Replicas walk the other K-1 ranks from a seeded per-block start, so the
  // replica load of co-primary blocks spreads instead of piling onto
  // (primary+1) the way a naive ring would.
  const uint64_t start = SplitMix64(config_.seed ^ SplitMix64(block_id)) %
                         static_cast<uint64_t>(K - 1);
  for (int j = 0; j < r; ++j) {
    const uint64_t step = (start + static_cast<uint64_t>(j)) %
                          static_cast<uint64_t>(K - 1);
    holders.push_back(
        static_cast<int>((static_cast<uint64_t>(primary) + 1 + step) %
                         static_cast<uint64_t>(K)));
  }
  return holders;
}

std::vector<uint8_t> BlockImage::Seal(uint64_t block_id,
                                      const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> image;
  image.reserve(kHeaderBytes + payload.size() + kTrailerBytes);
  AppendPod(&image, kBlockMagic);
  AppendPod(&image, block_id);
  AppendPod(&image, static_cast<uint64_t>(payload.size()));
  image.insert(image.end(), payload.begin(), payload.end());
  const uint32_t crc = Crc32c(image.data(), image.size());
  AppendPod(&image, crc);
  return image;
}

Result<BlockImage> BlockImage::Unseal(const std::vector<uint8_t>& image) {
  if (image.size() < kHeaderBytes + kTrailerBytes) {
    return Status::SerializationError("block image truncated: " +
                            std::to_string(image.size()) + " bytes");
  }
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, image.data() + image.size() - kTrailerBytes,
              sizeof(stored_crc));
  const uint32_t crc = Crc32c(image.data(), image.size() - kTrailerBytes);
  if (crc != stored_crc) {
    return Status::SerializationError("block image CRC mismatch");
  }
  size_t offset = 0;
  uint32_t magic = 0;
  BlockImage out;
  uint64_t payload_size = 0;
  if (!ReadPod(image, &offset, &magic) || magic != kBlockMagic) {
    return Status::SerializationError("block image has a bad magic");
  }
  if (!ReadPod(image, &offset, &out.block_id) ||
      !ReadPod(image, &offset, &payload_size) ||
      offset + payload_size + kTrailerBytes != image.size()) {
    return Status::SerializationError("block image header is inconsistent");
  }
  out.payload.assign(image.begin() + static_cast<ptrdiff_t>(offset),
                     image.end() - kTrailerBytes);
  return out;
}

uint64_t BlockImage::SealedSize(uint64_t payload_size) {
  return kHeaderBytes + payload_size + kTrailerBytes;
}

std::vector<uint8_t> ModelSliceBlock::Serialize() const {
  std::vector<uint8_t> out;
  out.reserve(2 * sizeof(uint64_t) + sizeof(int64_t) +
              (weights.size() + opt_state.size()) * sizeof(double));
  AppendPod(&out, partition);
  AppendPod(&out, static_cast<uint64_t>(weights.size()));
  AppendPod(&out, static_cast<uint64_t>(opt_state.size()));
  const uint8_t* w = reinterpret_cast<const uint8_t*>(weights.data());
  out.insert(out.end(), w, w + weights.size() * sizeof(double));
  const uint8_t* s = reinterpret_cast<const uint8_t*>(opt_state.data());
  out.insert(out.end(), s, s + opt_state.size() * sizeof(double));
  return out;
}

Result<ModelSliceBlock> ModelSliceBlock::Deserialize(
    const std::vector<uint8_t>& data) {
  ModelSliceBlock out;
  size_t offset = 0;
  uint64_t num_weights = 0;
  uint64_t num_state = 0;
  if (!ReadPod(data, &offset, &out.partition) ||
      !ReadPod(data, &offset, &num_weights) ||
      !ReadPod(data, &offset, &num_state) ||
      offset + (num_weights + num_state) * sizeof(double) != data.size()) {
    return Status::SerializationError("model slice block is malformed");
  }
  out.weights.resize(num_weights);
  std::memcpy(out.weights.data(), data.data() + offset,
              num_weights * sizeof(double));
  offset += num_weights * sizeof(double);
  out.opt_state.resize(num_state);
  std::memcpy(out.opt_state.data(), data.data() + offset,
              num_state * sizeof(double));
  return out;
}

void BlockStore::Put(uint64_t block_id, const std::vector<uint8_t>& payload,
                     std::vector<int> holders) {
  COLSGD_CHECK(!holders.empty());
  Entry entry;
  const std::vector<uint8_t> image = BlockImage::Seal(block_id, payload);
  for (int rank : holders) entry.images[rank] = image;
  entry.holders = std::move(holders);
  blocks_[block_id] = std::move(entry);
}

void BlockStore::Refresh(uint64_t block_id,
                         const std::vector<uint8_t>& payload) {
  auto it = blocks_.find(block_id);
  COLSGD_CHECK(it != blocks_.end()) << "refresh of unknown block " << block_id;
  const std::vector<uint8_t> image = BlockImage::Seal(block_id, payload);
  for (int rank : it->second.holders) it->second.images[rank] = image;
}

Result<BlockFetch> BlockStore::Fetch(uint64_t block_id) const {
  const auto it = blocks_.find(block_id);
  if (it == blocks_.end() || it->second.holders.empty()) {
    return Status::NotFound("no live copy of block " +
                            std::to_string(block_id));
  }
  BlockFetch fetch;
  for (int rank : it->second.holders) {
    const auto image = it->second.images.find(rank);
    if (image == it->second.images.end()) continue;
    Result<BlockImage> unsealed = BlockImage::Unseal(image->second);
    if (!unsealed.ok()) {
      fetch.rejected_ranks.push_back(rank);
      continue;
    }
    fetch.payload = std::move(unsealed->payload);
    fetch.rank = rank;
    fetch.wire_bytes = image->second.size();
    return fetch;
  }
  return Status::SerializationError("every copy of block " + std::to_string(block_id) +
                          " is damaged (" +
                          std::to_string(fetch.rejected_ranks.size()) +
                          " rejected)");
}

void BlockStore::FlipBit(uint64_t block_id, int rank, uint64_t bit) {
  auto it = blocks_.find(block_id);
  COLSGD_CHECK(it != blocks_.end());
  auto image = it->second.images.find(rank);
  COLSGD_CHECK(image != it->second.images.end())
      << "rank " << rank << " holds no copy of block " << block_id;
  std::vector<uint8_t>& bytes = image->second;
  bit %= bytes.size() * 8;
  bytes[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
}

const std::vector<int>& BlockStore::Holders(uint64_t block_id) const {
  static const std::vector<int> kEmpty;
  const auto it = blocks_.find(block_id);
  return it == blocks_.end() ? kEmpty : it->second.holders;
}

void BlockStore::AddHolder(uint64_t block_id, int rank, bool as_primary) {
  auto it = blocks_.find(block_id);
  COLSGD_CHECK(it != blocks_.end());
  Entry& entry = it->second;
  for (int h : entry.holders) {
    if (h == rank) {
      if (as_primary) MakePrimary(block_id, rank);
      return;
    }
  }
  COLSGD_CHECK(!entry.holders.empty())
      << "block " << block_id << " has no surviving copy to replicate from";
  entry.images[rank] = entry.images.at(entry.holders.front());
  if (as_primary) {
    entry.holders.insert(entry.holders.begin(), rank);
  } else {
    entry.holders.push_back(rank);
  }
}

void BlockStore::RemoveHolder(uint64_t block_id, int rank) {
  auto it = blocks_.find(block_id);
  COLSGD_CHECK(it != blocks_.end());
  Entry& entry = it->second;
  for (size_t i = 0; i < entry.holders.size(); ++i) {
    if (entry.holders[i] == rank) {
      entry.holders.erase(entry.holders.begin() + static_cast<ptrdiff_t>(i));
      entry.images.erase(rank);
      return;
    }
  }
}

void BlockStore::MakePrimary(uint64_t block_id, int rank) {
  auto it = blocks_.find(block_id);
  COLSGD_CHECK(it != blocks_.end());
  std::vector<int>& holders = it->second.holders;
  for (size_t i = 0; i < holders.size(); ++i) {
    if (holders[i] == rank) {
      holders.erase(holders.begin() + static_cast<ptrdiff_t>(i));
      holders.insert(holders.begin(), rank);
      return;
    }
  }
  COLSGD_CHECK(false) << "rank " << rank << " does not hold block "
                      << block_id;
}

void BlockStore::DropRank(int rank) {
  for (auto& [id, entry] : blocks_) {
    for (size_t i = 0; i < entry.holders.size(); ++i) {
      if (entry.holders[i] == rank) {
        entry.holders.erase(entry.holders.begin() +
                            static_cast<ptrdiff_t>(i));
        entry.images.erase(rank);
        break;
      }
    }
  }
}

uint64_t BlockStore::ImageSize(uint64_t block_id) const {
  const auto it = blocks_.find(block_id);
  if (it == blocks_.end() || it->second.holders.empty()) return 0;
  const auto image = it->second.images.find(it->second.holders.front());
  return image == it->second.images.end() ? 0 : image->second.size();
}

std::vector<uint64_t> BlockStore::BlocksHeldBy(int rank) const {
  std::vector<uint64_t> ids;
  for (const auto& [id, entry] : blocks_) {
    for (int h : entry.holders) {
      if (h == rank) {
        ids.push_back(id);
        break;
      }
    }
  }
  return ids;
}

uint64_t BlockStore::BytesHeldBy(int rank) const {
  uint64_t bytes = 0;
  for (const auto& [id, entry] : blocks_) {
    const auto image = entry.images.find(rank);
    bool holds = false;
    for (int h : entry.holders) holds |= h == rank;
    if (holds && image != entry.images.end()) bytes += image->second.size();
  }
  return bytes;
}

}  // namespace colsgd
