#include "storage/atomic_file.h"

#include <cstdio>
#include <fstream>

namespace colsgd {

Status AtomicWriteFile(const std::string& path,
                       const std::vector<uint8_t>& bytes) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) {
      return Status::IOError("cannot open temp file for writing: " + tmp);
    }
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out.good()) {
      out.close();
      std::remove(tmp.c_str());
      return Status::IOError("write failed: " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("atomic rename failed: " + tmp + " -> " + path);
  }
  return Status::OK();
}

Result<std::vector<uint8_t>> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IOError("cannot open file: " + path);
  }
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
}

}  // namespace colsgd
