// Column partitioners: map a global feature id to (owner worker, local slot).
//
// Both the training data columns and the model are partitioned with the same
// scheme, which is what collocates each feature's data with its weights
// (Section III-A of the paper).
#ifndef COLSGD_STORAGE_PARTITIONER_H_
#define COLSGD_STORAGE_PARTITIONER_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>

#include "common/check.h"

namespace colsgd {

/// \brief Maps feature ids to workers and dense local slots, O(1) both ways.
class ColumnPartitioner {
 public:
  virtual ~ColumnPartitioner() = default;

  virtual int Owner(uint64_t feature) const = 0;
  virtual uint64_t LocalIndex(uint64_t feature) const = 0;
  /// \brief Inverse of (Owner, LocalIndex).
  virtual uint64_t GlobalIndex(int worker, uint64_t local) const = 0;
  /// \brief Number of local slots on `worker`.
  virtual uint64_t LocalDim(int worker) const = 0;

  virtual std::string name() const = 0;

  uint64_t num_features() const { return num_features_; }
  int num_workers() const { return num_workers_; }

 protected:
  ColumnPartitioner(uint64_t num_features, int num_workers)
      : num_features_(num_features), num_workers_(num_workers) {
    COLSGD_CHECK_GT(num_workers, 0);
  }

  uint64_t num_features_;
  int num_workers_;
};

/// \brief feature f -> worker f % K, slot f / K (the paper's round-robin
/// example in Algorithm 4). Spreads popular low-indexed features evenly.
class RoundRobinPartitioner : public ColumnPartitioner {
 public:
  RoundRobinPartitioner(uint64_t num_features, int num_workers)
      : ColumnPartitioner(num_features, num_workers) {}

  int Owner(uint64_t feature) const override {
    return static_cast<int>(feature % num_workers_);
  }
  uint64_t LocalIndex(uint64_t feature) const override {
    return feature / num_workers_;
  }
  uint64_t GlobalIndex(int worker, uint64_t local) const override {
    return local * num_workers_ + worker;
  }
  uint64_t LocalDim(int worker) const override {
    // Workers with id < num_features % K get one extra slot.
    const uint64_t base = num_features_ / num_workers_;
    const uint64_t extra =
        static_cast<uint64_t>(worker) < num_features_ % num_workers_ ? 1 : 0;
    return base + extra;
  }
  std::string name() const override { return "round_robin"; }
};

/// \brief Contiguous ranges: worker k owns [k*ceil(m/K), ...). Cheaper index
/// arithmetic but load-imbalanced when feature popularity is skewed by id
/// (the usual case for hashed CTR features) — see the partitioner ablation.
class RangePartitioner : public ColumnPartitioner {
 public:
  RangePartitioner(uint64_t num_features, int num_workers)
      : ColumnPartitioner(num_features, num_workers),
        stride_((num_features + num_workers - 1) / num_workers) {}

  int Owner(uint64_t feature) const override {
    return static_cast<int>(feature / stride_);
  }
  uint64_t LocalIndex(uint64_t feature) const override {
    return feature % stride_;
  }
  uint64_t GlobalIndex(int worker, uint64_t local) const override {
    return static_cast<uint64_t>(worker) * stride_ + local;
  }
  uint64_t LocalDim(int worker) const override {
    const uint64_t begin = static_cast<uint64_t>(worker) * stride_;
    if (begin >= num_features_) return 0;
    return std::min(stride_, num_features_ - begin);
  }
  std::string name() const override { return "range"; }

 private:
  uint64_t stride_;
};

/// \brief Block-cyclic: chunks of `chunk` consecutive features are dealt to
/// workers round-robin. chunk=1 degenerates to RoundRobinPartitioner; large
/// chunks approach RangePartitioner. Trades id-skew resilience against
/// locality of consecutive features (see the partitioner ablation bench).
class BlockCyclicPartitioner : public ColumnPartitioner {
 public:
  BlockCyclicPartitioner(uint64_t num_features, int num_workers, uint64_t chunk)
      : ColumnPartitioner(num_features, num_workers), chunk_(chunk) {
    COLSGD_CHECK_GT(chunk, 0u);
  }

  int Owner(uint64_t feature) const override {
    return static_cast<int>((feature / chunk_) % num_workers_);
  }
  uint64_t LocalIndex(uint64_t feature) const override {
    const uint64_t chunk_index = feature / chunk_;
    return (chunk_index / num_workers_) * chunk_ + feature % chunk_;
  }
  uint64_t GlobalIndex(int worker, uint64_t local) const override {
    const uint64_t local_chunk = local / chunk_;
    const uint64_t chunk_index =
        local_chunk * num_workers_ + static_cast<uint64_t>(worker);
    return chunk_index * chunk_ + local % chunk_;
  }
  uint64_t LocalDim(int worker) const override {
    // Count features f < num_features_ with Owner(f) == worker.
    const uint64_t num_chunks = (num_features_ + chunk_ - 1) / chunk_;
    const uint64_t w = static_cast<uint64_t>(worker);
    if (num_chunks == 0) return 0;
    // Full cycles of K chunks, plus this worker's chunk in the tail cycle.
    const uint64_t full_cycles = num_chunks / num_workers_;
    uint64_t dim = full_cycles * chunk_;
    const uint64_t tail_chunks = num_chunks % num_workers_;
    if (w < tail_chunks) {
      // Worker owns one chunk in the tail; the very last chunk may be short.
      const uint64_t chunk_index = full_cycles * num_workers_ + w;
      const uint64_t begin = chunk_index * chunk_;
      dim += std::min(chunk_, num_features_ - begin);
    } else if (w + 1 == static_cast<uint64_t>(num_workers_) &&
               tail_chunks == 0 && num_chunks * chunk_ > num_features_) {
      // Last chunk of the last full cycle is short and belongs to worker K-1.
      dim -= num_chunks * chunk_ - num_features_;
    }
    return dim;
  }
  std::string name() const override {
    return "block_cyclic_" + std::to_string(chunk_);
  }

 private:
  uint64_t chunk_;
};

/// \brief Factory by name ("round_robin", "range", "block_cyclic_<chunk>").
std::unique_ptr<ColumnPartitioner> MakePartitioner(const std::string& name,
                                                   uint64_t num_features,
                                                   int num_workers);

}  // namespace colsgd

#endif  // COLSGD_STORAGE_PARTITIONER_H_
