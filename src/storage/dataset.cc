#include "storage/dataset.h"

#include <cmath>

namespace colsgd {

namespace {
int DecimalDigits(uint64_t v) {
  int d = 1;
  while (v >= 10) {
    v /= 10;
    ++d;
  }
  return d;
}
}  // namespace

uint64_t LibsvmTextBytes(const CsrBatch& rows, const std::vector<float>& labels,
                         size_t i) {
  // "label" then " idx:value" per feature then "\n". Values are printed with
  // 6 significant digits (~8 chars incl. sign/point).
  (void)labels;
  uint64_t bytes = 3 /* label like "+1" or "-1" or class id */ + 1 /* \n */;
  SparseVectorView row = rows.Row(i);
  for (size_t j = 0; j < row.nnz; ++j) {
    bytes += 1 /* space */ + DecimalDigits(row.indices[j]) + 1 /* ':' */ +
             8 /* value text */;
  }
  return bytes;
}

std::vector<RowBlock> MakeRowBlocks(const Dataset& dataset, size_t block_rows) {
  std::vector<RowBlock> blocks;
  const size_t n = dataset.num_rows();
  size_t i = 0;
  uint64_t next_id = 0;
  while (i < n) {
    RowBlock block;
    block.block_id = next_id++;
    const size_t end = std::min(n, i + block_rows);
    for (size_t r = i; r < end; ++r) {
      block.rows.AppendRow(dataset.rows.Row(r));
      block.labels.push_back(dataset.labels[r]);
      block.text_bytes += LibsvmTextBytes(dataset.rows, dataset.labels, r);
    }
    blocks.push_back(std::move(block));
    i = end;
  }
  return blocks;
}

}  // namespace colsgd
