// Libsvm text format reader/writer.
#ifndef COLSGD_STORAGE_LIBSVM_H_
#define COLSGD_STORAGE_LIBSVM_H_

#include <string>

#include "common/result.h"
#include "storage/dataset.h"

namespace colsgd {

/// \brief Parses a libsvm-format file ("label idx:val idx:val ...", indices
/// 1-based as in the LIBSVM distribution unless `zero_based`).
///
/// `num_features` of the result is max feature index + 1, or the explicit
/// override when `expected_features` > 0.
Result<Dataset> ReadLibsvmFile(const std::string& path, bool zero_based = false,
                               uint64_t expected_features = 0);

/// \brief Parses libsvm-format text from a string (for tests).
Result<Dataset> ParseLibsvm(const std::string& text, bool zero_based = false,
                            uint64_t expected_features = 0);

/// \brief Writes a dataset in libsvm format (1-based indices).
Status WriteLibsvmFile(const Dataset& dataset, const std::string& path);

}  // namespace colsgd

#endif  // COLSGD_STORAGE_LIBSVM_H_
