#include "storage/partitioner.h"

namespace colsgd {

std::unique_ptr<ColumnPartitioner> MakePartitioner(const std::string& name,
                                                   uint64_t num_features,
                                                   int num_workers) {
  if (name == "round_robin") {
    return std::make_unique<RoundRobinPartitioner>(num_features, num_workers);
  }
  if (name == "range") {
    return std::make_unique<RangePartitioner>(num_features, num_workers);
  }
  const std::string kCyclicPrefix = "block_cyclic_";
  if (name.rfind(kCyclicPrefix, 0) == 0) {
    const uint64_t chunk = std::stoull(name.substr(kCyclicPrefix.size()));
    return std::make_unique<BlockCyclicPartitioner>(num_features, num_workers,
                                                    chunk);
  }
  COLSGD_CHECK(false) << "unknown partitioner: " << name;
  return nullptr;
}

}  // namespace colsgd
