#include "storage/transform.h"

#include <algorithm>

#include "common/rng.h"

namespace colsgd {

namespace {

constexpr uint64_t kAssignmentMsgBytes = 16;  // block-id assignment message
constexpr uint64_t kPieceHeaderBytes = 16;    // per-piece header (naive path)

/// \brief Worker whose clock is smallest, i.e. the next idle worker the
/// master's block queue feeds (Step 2 of the dispatch protocol).
int NextIdleWorker(const ClusterRuntime& runtime) {
  int best = 0;
  for (int k = 1; k < runtime.num_workers(); ++k) {
    if (runtime.clock(runtime.worker_node(k)) <
        runtime.clock(runtime.worker_node(best))) {
      best = k;
    }
  }
  return best;
}

void ChargeBlockRead(const RowBlock& block, NodeId node, double per_byte_rate,
                     ClusterRuntime* runtime,
                     const TransformCostConfig& cost) {
  runtime->AdvanceClock(node, static_cast<double>(block.text_bytes) /
                                  cost.disk_bandwidth);
  runtime->AdvanceClock(node,
                        static_cast<double>(block.text_bytes) * per_byte_rate);
}

uint64_t RowBlockWireBytes(const RowBlock& block) {
  return block.rows.ByteSize() + block.labels.size() * sizeof(float) +
         sizeof(uint64_t) * 2;
}

/// Receiving a shard does not stall a worker's own reading/parsing: the
/// bytes land via the in-NIC (modeled by SimNetwork) and the insert CPU work
/// is deferred. This tracker accumulates, per receiver, the latest arrival
/// and the total deferred CPU seconds, and applies both once at the end of
/// the load.
class ReceiverTracker {
 public:
  explicit ReceiverTracker(int num_workers)
      : last_arrival_(num_workers, 0.0), cpu_seconds_(num_workers, 0.0) {}

  /// \brief Charges a transfer to worker `to` without syncing its clock.
  void Transfer(ClusterRuntime* runtime, NodeId from, int to, uint64_t bytes,
                double receive_cpu_seconds) {
    const SimTime arrival = runtime->net().Send(
        from, runtime->worker_node(to), bytes, runtime->clock(from));
    last_arrival_[to] = std::max(last_arrival_[to], arrival);
    cpu_seconds_[to] += receive_cpu_seconds;
  }

  /// \brief Local hand-off on the same worker (no network).
  void Local(int worker, double receive_cpu_seconds) {
    cpu_seconds_[worker] += receive_cpu_seconds;
  }

  void Finalize(ClusterRuntime* runtime) {
    for (size_t w = 0; w < last_arrival_.size(); ++w) {
      const NodeId node = runtime->worker_node(static_cast<int>(w));
      runtime->SyncClockTo(node, last_arrival_[w]);
      runtime->AdvanceClock(node, cpu_seconds_[w]);
    }
  }

 private:
  std::vector<SimTime> last_arrival_;
  std::vector<double> cpu_seconds_;
};

}  // namespace

std::vector<Workset> SplitBlock(const RowBlock& block,
                                const ColumnPartitioner& partitioner) {
  const int num_workers = partitioner.num_workers();
  std::vector<Workset> worksets(num_workers);
  std::vector<SparseRow> scratch(num_workers);
  for (auto& w : worksets) {
    w.block_id = block.block_id;
    w.labels = block.labels;
  }
  for (size_t r = 0; r < block.num_rows(); ++r) {
    for (auto& s : scratch) {
      s.indices.clear();
      s.values.clear();
    }
    SparseVectorView row = block.rows.Row(r);
    for (size_t j = 0; j < row.nnz; ++j) {
      const uint64_t feature = row.indices[j];
      const int owner = partitioner.Owner(feature);
      scratch[owner].Push(static_cast<uint32_t>(partitioner.LocalIndex(feature)),
                          row.values[j]);
    }
    for (int k = 0; k < num_workers; ++k) {
      worksets[k].shard.AppendRow(scratch[k]);
    }
  }
  return worksets;
}

BlockDirectory MakeDirectory(const std::vector<RowBlock>& blocks) {
  std::vector<uint32_t> rows;
  rows.reserve(blocks.size());
  for (const auto& b : blocks) {
    rows.push_back(static_cast<uint32_t>(b.num_rows()));
  }
  return BlockDirectory(std::move(rows));
}

RowLoadResult LoadRowPartitioned(const std::vector<RowBlock>& blocks,
                                 ClusterRuntime* runtime,
                                 const TransformCostConfig& cost) {
  RowLoadResult result;
  result.partitions.resize(runtime->num_workers());
  for (size_t i = 0; i < blocks.size(); ++i) {
    const int k = static_cast<int>(i % runtime->num_workers());
    const NodeId node = runtime->worker_node(k);
    ChargeBlockRead(blocks[i], node, cost.mllib_ingest_per_byte, runtime,
                    cost);
    result.partitions[k].push_back(blocks[i]);
  }
  return result;
}

RowLoadResult LoadRowRepartitioned(const std::vector<RowBlock>& blocks,
                                   ClusterRuntime* runtime,
                                   const TransformCostConfig& cost,
                                   uint64_t shuffle_seed) {
  RowLoadResult result;
  result.partitions.resize(runtime->num_workers());
  ReceiverTracker tracker(runtime->num_workers());
  Rng rng(shuffle_seed);
  for (size_t i = 0; i < blocks.size(); ++i) {
    const int src = static_cast<int>(i % runtime->num_workers());
    const NodeId src_node = runtime->worker_node(src);
    ChargeBlockRead(blocks[i], src_node, cost.mllib_ingest_per_byte, runtime,
                    cost);
    const int dst = static_cast<int>(rng.NextBounded(runtime->num_workers()));
    if (dst != src) {
      const uint64_t bytes = RowBlockWireBytes(blocks[i]);
      runtime->AdvanceClock(src_node, cost.serialize_per_msg);
      tracker.Transfer(runtime, src_node, dst, bytes,
                       static_cast<double>(bytes) * cost.recache_per_byte);
    }
    result.partitions[dst].push_back(blocks[i]);
  }
  tracker.Finalize(runtime);
  return result;
}

ColumnLoadResult NaiveColumnLoad(const std::vector<RowBlock>& blocks,
                                 const ColumnPartitioner& partitioner,
                                 ClusterRuntime* runtime,
                                 const TransformCostConfig& cost) {
  const int num_workers = runtime->num_workers();
  ColumnLoadResult result;
  result.stores.resize(num_workers);
  ReceiverTracker tracker(num_workers);
  for (size_t i = 0; i < blocks.size(); ++i) {
    const int reader = static_cast<int>(i % num_workers);
    const NodeId reader_node = runtime->worker_node(reader);
    ChargeBlockRead(blocks[i], reader_node, cost.csr_ingest_per_byte, runtime,
                    cost);
    runtime->AdvanceClock(
        reader_node,
        static_cast<double>(blocks[i].rows.nnz()) * cost.split_per_nnz);
    std::vector<Workset> worksets = SplitBlock(blocks[i], partitioner);
    // Ship each row's piece as its own message (the strawman). Piece content
    // is identical to the block-based path; only the message pattern differs.
    for (size_t r = 0; r < blocks[i].num_rows(); ++r) {
      for (int d = 0; d < num_workers; ++d) {
        const size_t piece_nnz = worksets[d].shard.Row(r).nnz;
        runtime->AdvanceClock(reader_node, cost.serialize_per_msg);
        const double receive_cpu =
            cost.serialize_per_msg +
            static_cast<double>(piece_nnz) * cost.insert_per_nnz;
        if (d == reader) {  // local piece: no network hop
          tracker.Local(d, receive_cpu);
          continue;
        }
        const uint64_t piece_bytes =
            kPieceHeaderBytes + piece_nnz * (sizeof(uint32_t) + sizeof(float));
        tracker.Transfer(runtime, reader_node, d, piece_bytes, receive_cpu);
      }
    }
    for (int d = 0; d < num_workers; ++d) {
      result.stores[d].Put(std::move(worksets[d]));
    }
  }
  tracker.Finalize(runtime);
  result.directory = MakeDirectory(blocks);
  return result;
}

ColumnLoadResult BlockColumnLoad(const std::vector<RowBlock>& blocks,
                                 const ColumnPartitioner& partitioner,
                                 ClusterRuntime* runtime,
                                 const TransformCostConfig& cost) {
  const int num_workers = runtime->num_workers();
  ColumnLoadResult result;
  result.stores.resize(num_workers);
  ReceiverTracker tracker(num_workers);
  for (const RowBlock& block : blocks) {
    // Step 2: the master hands the next block id to an idle worker.
    const int reader = NextIdleWorker(*runtime);
    const NodeId reader_node = runtime->worker_node(reader);
    runtime->Send(runtime->master(), reader_node, kAssignmentMsgBytes);
    ChargeBlockRead(block, reader_node, cost.csr_ingest_per_byte, runtime,
                    cost);
    runtime->AdvanceClock(
        reader_node, static_cast<double>(block.rows.nnz()) * cost.split_per_nnz);
    std::vector<Workset> worksets = SplitBlock(block, partitioner);
    // Step 3: ship each workset, CSR-compressed, as one message. The shipped
    // bytes round-trip through the real wire encoding.
    for (int d = 0; d < num_workers; ++d) {
      if (d == reader) {
        tracker.Local(d, cost.serialize_per_msg);
        result.stores[d].Put(std::move(worksets[d]));
        continue;
      }
      std::vector<uint8_t> wire = worksets[d].Serialize();
      runtime->AdvanceClock(reader_node, cost.serialize_per_msg);
      Result<Workset> received =
          Workset::Deserialize(wire.data(), wire.size());
      COLSGD_CHECK(received.ok()) << received.status().ToString();
      tracker.Transfer(runtime, reader_node, d, wire.size(),
                       cost.serialize_per_msg +
                           static_cast<double>(received->shard.nnz()) *
                               cost.insert_per_nnz);
      result.stores[d].Put(std::move(*received));
    }
  }
  tracker.Finalize(runtime);
  result.directory = MakeDirectory(blocks);
  return result;
}

ColumnLoadResult BlockColumnLoadReplicated(
    const std::vector<RowBlock>& blocks, const ColumnPartitioner& partitioner,
    const std::vector<std::vector<int>>& replicas, ClusterRuntime* runtime,
    const TransformCostConfig& cost) {
  const int num_groups = partitioner.num_workers();
  COLSGD_CHECK_EQ(replicas.size(), static_cast<size_t>(num_groups));
  ColumnLoadResult result;
  result.stores.resize(num_groups);
  ReceiverTracker tracker(runtime->num_workers());
  for (const RowBlock& block : blocks) {
    const int reader = NextIdleWorker(*runtime);
    const NodeId reader_node = runtime->worker_node(reader);
    runtime->Send(runtime->master(), reader_node, kAssignmentMsgBytes);
    ChargeBlockRead(block, reader_node, cost.csr_ingest_per_byte, runtime,
                    cost);
    runtime->AdvanceClock(
        reader_node, static_cast<double>(block.rows.nnz()) * cost.split_per_nnz);
    std::vector<Workset> worksets = SplitBlock(block, partitioner);
    for (int g = 0; g < num_groups; ++g) {
      const uint64_t wire_bytes = worksets[g].SerializedSize();
      const double receive_cpu =
          cost.serialize_per_msg +
          static_cast<double>(worksets[g].shard.nnz()) * cost.insert_per_nnz;
      for (int member : replicas[g]) {
        if (member == reader) {
          tracker.Local(member, receive_cpu);
        } else {
          runtime->AdvanceClock(reader_node, cost.serialize_per_msg);
          tracker.Transfer(runtime, reader_node, member, wire_bytes,
                           receive_cpu);
        }
      }
      result.stores[g].Put(std::move(worksets[g]));
    }
  }
  tracker.Finalize(runtime);
  result.directory = MakeDirectory(blocks);
  return result;
}

WorksetStore ReloadWorkerShards(const std::vector<RowBlock>& blocks,
                                const ColumnPartitioner& partitioner,
                                int failed_worker, ClusterRuntime* runtime,
                                const TransformCostConfig& cost) {
  std::vector<int> readers(runtime->num_workers());
  for (int k = 0; k < runtime->num_workers(); ++k) readers[k] = k;
  return ReloadPartitionShards(blocks, partitioner, failed_worker,
                               failed_worker, readers, runtime, cost);
}

WorksetStore ReloadPartitionShards(const std::vector<RowBlock>& blocks,
                                   const ColumnPartitioner& partitioner,
                                   int partition, int dest_worker,
                                   const std::vector<int>& readers,
                                   ClusterRuntime* runtime,
                                   const TransformCostConfig& cost) {
  COLSGD_CHECK(!readers.empty());
  WorksetStore store;
  ReceiverTracker tracker(runtime->total_workers());
  for (const RowBlock& block : blocks) {
    int reader = readers.front();
    for (int k : readers) {
      if (runtime->clock(runtime->worker_node(k)) <
          runtime->clock(runtime->worker_node(reader))) {
        reader = k;
      }
    }
    const NodeId reader_node = runtime->worker_node(reader);
    runtime->Send(runtime->master(), reader_node, kAssignmentMsgBytes);
    ChargeBlockRead(block, reader_node, cost.csr_ingest_per_byte, runtime,
                    cost);
    runtime->AdvanceClock(
        reader_node, static_cast<double>(block.rows.nnz()) * cost.split_per_nnz);
    std::vector<Workset> worksets = SplitBlock(block, partitioner);
    Workset& shard = worksets[partition];
    const double receive_cpu = cost.serialize_per_msg +
                               static_cast<double>(shard.shard.nnz()) *
                                   cost.insert_per_nnz;
    if (reader != dest_worker) {
      runtime->AdvanceClock(reader_node, cost.serialize_per_msg);
      tracker.Transfer(runtime, reader_node, dest_worker,
                       shard.SerializedSize(), receive_cpu);
    } else {
      tracker.Local(dest_worker, receive_cpu);
    }
    store.Put(std::move(shard));
  }
  tracker.Finalize(runtime);
  return store;
}

}  // namespace colsgd
