#include "storage/workset.h"

namespace colsgd {

std::vector<uint8_t> Workset::Serialize() const {
  BufferWriter writer(SerializedSize());
  writer.PutU64(block_id);
  writer.PutFloatVector(labels);
  writer.PutU32Vector(shard.indices());
  writer.PutFloatVector(shard.values());
  writer.PutU64Vector(shard.row_offsets());
  return writer.Release();
}

Result<Workset> Workset::Deserialize(const uint8_t* data, size_t size) {
  BufferReader reader(data, size);
  Workset workset;
  COLSGD_ASSIGN_OR_RETURN(workset.block_id, reader.GetU64());
  COLSGD_ASSIGN_OR_RETURN(workset.labels, reader.GetFloatVector());
  COLSGD_ASSIGN_OR_RETURN(std::vector<uint32_t> indices,
                          reader.GetU32Vector());
  COLSGD_ASSIGN_OR_RETURN(std::vector<float> values, reader.GetFloatVector());
  COLSGD_ASSIGN_OR_RETURN(std::vector<uint64_t> offsets,
                          reader.GetU64Vector());
  if (offsets.empty() || offsets.back() != indices.size() ||
      indices.size() != values.size() ||
      offsets.size() != workset.labels.size() + 1) {
    return Status::SerializationError("inconsistent workset CSR arrays");
  }
  workset.shard.Adopt(std::move(indices), std::move(values),
                      std::move(offsets));
  return workset;
}

uint64_t Workset::SerializedSize() const {
  return sizeof(uint64_t)                                     // block id
         + sizeof(uint64_t) + labels.size() * sizeof(float)   // labels
         + sizeof(uint64_t) + shard.nnz() * sizeof(uint32_t)  // indices
         + sizeof(uint64_t) + shard.nnz() * sizeof(float)     // values
         + sizeof(uint64_t) +
         shard.row_offsets().size() * sizeof(uint64_t);  // offsets
}

void WorksetStore::Put(Workset workset) {
  COLSGD_CHECK(index_.find(workset.block_id) == index_.end())
      << "duplicate workset for block " << workset.block_id;
  total_rows_ += workset.num_rows();
  total_nnz_ += workset.shard.nnz();
  index_[workset.block_id] = worksets_.size();
  worksets_.push_back(std::move(workset));
}

uint64_t WorksetStore::MemoryBytes() const {
  uint64_t bytes = 0;
  for (const auto& w : worksets_) {
    bytes += w.shard.ByteSize() + w.labels.size() * sizeof(float);
  }
  return bytes;
}

void WorksetStore::Clear() {
  worksets_.clear();
  index_.clear();
  total_rows_ = 0;
  total_nnz_ = 0;
}

}  // namespace colsgd
