// Worksets: the column-partitioned shards produced by block-based column
// dispatching (Fig. 5 / Algorithm 4 of the paper).
//
// A workset is one worker's column shard of one row block: for each row of
// the block it holds the (local-index, value) pairs of the features this
// worker owns, in CSR form, plus the block id and the labels. Labels are
// replicated into every workset so each worker can evaluate losses and
// gradient coefficients locally.
#ifndef COLSGD_STORAGE_WORKSET_H_
#define COLSGD_STORAGE_WORKSET_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "linalg/sparse.h"

namespace colsgd {

struct Workset {
  uint64_t block_id = 0;
  /// Column shard: row i holds this worker's features of block row i, with
  /// feature ids already translated to local model slots.
  CsrBatch shard;
  /// Labels of all rows in the block (replicated on every worker).
  std::vector<float> labels;

  size_t num_rows() const { return shard.num_rows(); }

  /// \brief Wire encoding; its size is what the network model charges.
  std::vector<uint8_t> Serialize() const;
  static Result<Workset> Deserialize(const uint8_t* data, size_t size);

  /// \brief On-the-wire size without materializing the buffer.
  uint64_t SerializedSize() const;
};

/// \brief A worker's collection of worksets, keyed by block id — the first
/// phase of the two-phase index (Section IV-A2).
class WorksetStore {
 public:
  void Put(Workset workset);

  const Workset* Find(uint64_t block_id) const {
    auto it = index_.find(block_id);
    return it == index_.end() ? nullptr : &worksets_[it->second];
  }

  size_t num_worksets() const { return worksets_.size(); }
  uint64_t total_rows() const { return total_rows_; }
  uint64_t total_nnz() const { return total_nnz_; }

  /// \brief Approximate resident bytes (CSR payload + labels).
  uint64_t MemoryBytes() const;

  const std::vector<Workset>& worksets() const { return worksets_; }

  void Clear();

 private:
  std::vector<Workset> worksets_;
  std::unordered_map<uint64_t, size_t> index_;
  uint64_t total_rows_ = 0;
  uint64_t total_nnz_ = 0;
};

}  // namespace colsgd

#endif  // COLSGD_STORAGE_WORKSET_H_
