// Data-loading paths (Section IV-A of the paper), simulated on a cluster
// runtime. Four loaders, matching Fig. 7:
//
//  * LoadRowPartitioned        — MLlib: each worker parses its row blocks.
//  * LoadRowRepartitioned      — MLlib-Repartition: plus a global shuffle.
//  * NaiveColumnLoad           — row-by-row column dispatch (the strawman).
//  * BlockColumnLoad           — Algorithm 4: block-based dispatching with
//                                CSR-compressed worksets and a dynamic block
//                                queue (blocks go to the least-loaded idle
//                                worker).
//
// All loaders charge simulated time on the runtime's clocks; the caller reads
// the elapsed MaxClock as the loading time.
#ifndef COLSGD_STORAGE_TRANSFORM_H_
#define COLSGD_STORAGE_TRANSFORM_H_

#include <vector>

#include "cluster/cluster.h"
#include "storage/dataset.h"
#include "storage/partitioner.h"
#include "storage/sampler.h"
#include "storage/workset.h"

namespace colsgd {

/// \brief Cost constants of the ingest paths. The defaults are calibrated so
/// that per-byte rates match the paper's measured MLlib load throughput
/// (7.4 GB avazu in 28 s on 8 workers ~ 33 MB/s/worker) and the relative
/// rates of the other paths; see DESIGN.md "calibration".
struct TransformCostConfig {
  double disk_bandwidth = 200e6;  // HDFS sequential read, bytes/s
  /// MLlib ingest (parse text + materialize row objects into the RDD cache).
  double mllib_ingest_per_byte = 30e-9;
  /// ColumnSGD-side parse straight into CSR (no per-row object graph).
  double csr_ingest_per_byte = 10e-9;
  double split_per_nnz = 4e-9;      // column split of a parsed block
  double serialize_per_msg = 1e-6;  // per-object serialization cost
  double insert_per_nnz = 2e-9;     // receiver-side workset insert
  double recache_per_byte = 10e-9;  // receiver re-cache after a shuffle
};

/// \brief Result of a column-oriented load: one workset store per worker
/// plus the shared block directory for two-phase sampling.
struct ColumnLoadResult {
  std::vector<WorksetStore> stores;
  BlockDirectory directory;
};

/// \brief Result of a row-oriented load: each worker's list of row blocks.
struct RowLoadResult {
  std::vector<std::vector<RowBlock>> partitions;
};

/// \brief Splits one row block into K per-worker worksets with feature ids
/// translated to local model slots. Every workset gets all `labels` and one
/// (possibly empty) shard row per block row.
std::vector<Workset> SplitBlock(const RowBlock& block,
                                const ColumnPartitioner& partitioner);

/// \brief Block directory shared by master and workers.
BlockDirectory MakeDirectory(const std::vector<RowBlock>& blocks);

/// \brief MLlib-style load: block i goes to worker i % K; parse + cache.
RowLoadResult LoadRowPartitioned(const std::vector<RowBlock>& blocks,
                                 ClusterRuntime* runtime,
                                 const TransformCostConfig& cost);

/// \brief MLlib load followed by a global block shuffle (repartition).
RowLoadResult LoadRowRepartitioned(const std::vector<RowBlock>& blocks,
                                   ClusterRuntime* runtime,
                                   const TransformCostConfig& cost,
                                   uint64_t shuffle_seed);

/// \brief Strawman: split each row into K pieces and ship each piece as its
/// own message ("Naive-ColumnSGD" in Section IV-A1).
ColumnLoadResult NaiveColumnLoad(const std::vector<RowBlock>& blocks,
                                 const ColumnPartitioner& partitioner,
                                 ClusterRuntime* runtime,
                                 const TransformCostConfig& cost);

/// \brief Algorithm 4: block-based column dispatching.
ColumnLoadResult BlockColumnLoad(const std::vector<RowBlock>& blocks,
                                 const ColumnPartitioner& partitioner,
                                 ClusterRuntime* runtime,
                                 const TransformCostConfig& cost);

/// \brief Block-based column dispatching with S-backup replication
/// (Section IV-B): the partitioner is G-way (G groups of workers), and the
/// shard of group g is sent to every worker in `replicas[g]`. Only one copy
/// per group is materialized (replicas are bit-identical by construction);
/// traffic and receiver work are charged for every replica.
ColumnLoadResult BlockColumnLoadReplicated(
    const std::vector<RowBlock>& blocks, const ColumnPartitioner& partitioner,
    const std::vector<std::vector<int>>& replicas, ClusterRuntime* runtime,
    const TransformCostConfig& cost);

/// \brief Reloads a single worker's worksets after a worker failure
/// (Appendix X): every other worker re-reads nothing; the failed worker's
/// shards are rebuilt from the row blocks and re-sent to it. Returns the
/// rebuilt store for the failed worker.
WorksetStore ReloadWorkerShards(const std::vector<RowBlock>& blocks,
                                const ColumnPartitioner& partitioner,
                                int failed_worker, ClusterRuntime* runtime,
                                const TransformCostConfig& cost);

/// \brief Elastic-membership generalization of ReloadWorkerShards: rebuilds
/// logical `partition`'s worksets onto `dest_worker` (which need not equal
/// the partition index once ownership has moved), drawing block readers from
/// `readers` — the currently active ranks — so departed ranks never parse.
WorksetStore ReloadPartitionShards(const std::vector<RowBlock>& blocks,
                                   const ColumnPartitioner& partitioner,
                                   int partition, int dest_worker,
                                   const std::vector<int>& readers,
                                   ClusterRuntime* runtime,
                                   const TransformCostConfig& cost);

}  // namespace colsgd

#endif  // COLSGD_STORAGE_TRANSFORM_H_
