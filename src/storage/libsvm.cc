#include "storage/libsvm.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace colsgd {

namespace {

Status ParseLine(const std::string& line, size_t line_no, bool zero_based,
                 Dataset* out) {
  const char* p = line.c_str();
  char* end = nullptr;
  const double label = std::strtod(p, &end);
  if (end == p) {
    return Status::IOError("libsvm line " + std::to_string(line_no) +
                           ": cannot parse label");
  }
  p = end;
  SparseRow row;
  while (true) {
    while (*p == ' ' || *p == '\t') ++p;
    if (*p == '\0' || *p == '#') break;
    const unsigned long long raw_index = std::strtoull(p, &end, 10);
    if (end == p || *end != ':') {
      return Status::IOError("libsvm line " + std::to_string(line_no) +
                             ": malformed index:value pair");
    }
    p = end + 1;
    const double value = std::strtod(p, &end);
    if (end == p) {
      return Status::IOError("libsvm line " + std::to_string(line_no) +
                             ": malformed feature value");
    }
    p = end;
    uint64_t index = raw_index;
    if (!zero_based) {
      if (index == 0) {
        return Status::IOError("libsvm line " + std::to_string(line_no) +
                               ": 1-based file contains index 0");
      }
      index -= 1;
    }
    if (index > 0xFFFFFFFFull) {
      return Status::IOError("libsvm line " + std::to_string(line_no) +
                             ": feature index exceeds uint32 range");
    }
    row.Push(static_cast<uint32_t>(index), static_cast<float>(value));
    if (index + 1 > out->num_features) out->num_features = index + 1;
  }
  out->rows.AppendRow(row);
  out->labels.push_back(static_cast<float>(label));
  return Status::OK();
}

Result<Dataset> ParseStream(std::istream& in, bool zero_based,
                            uint64_t expected_features) {
  Dataset dataset;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    COLSGD_RETURN_NOT_OK(ParseLine(line, line_no, zero_based, &dataset));
  }
  if (expected_features > 0) {
    if (dataset.num_features > expected_features) {
      return Status::IOError("dataset has feature index beyond expected " +
                             std::to_string(expected_features));
    }
    dataset.num_features = expected_features;
  }
  return dataset;
}

}  // namespace

Result<Dataset> ReadLibsvmFile(const std::string& path, bool zero_based,
                               uint64_t expected_features) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IOError("cannot open libsvm file: " + path);
  }
  return ParseStream(in, zero_based, expected_features);
}

Result<Dataset> ParseLibsvm(const std::string& text, bool zero_based,
                            uint64_t expected_features) {
  std::istringstream in(text);
  return ParseStream(in, zero_based, expected_features);
}

Status WriteLibsvmFile(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::IOError("cannot open file for writing: " + path);
  }
  for (size_t i = 0; i < dataset.num_rows(); ++i) {
    out << dataset.labels[i];
    SparseVectorView row = dataset.rows.Row(i);
    for (size_t j = 0; j < row.nnz; ++j) {
      out << ' ' << (row.indices[j] + 1) << ':' << row.values[j];
    }
    out << '\n';
  }
  if (!out.good()) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace colsgd
