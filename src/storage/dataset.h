// In-memory training dataset (row-oriented, CSR) and row blocks.
#ifndef COLSGD_STORAGE_DATASET_H_
#define COLSGD_STORAGE_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "linalg/sparse.h"

namespace colsgd {

/// \brief A labelled sparse dataset. Labels are +-1 for binary tasks and
/// class ids 0..C-1 for multiclass (MLR).
struct Dataset {
  uint64_t num_features = 0;
  int num_classes = 2;
  CsrBatch rows;
  std::vector<float> labels;

  size_t num_rows() const { return rows.num_rows(); }
  size_t nnz() const { return rows.nnz(); }

  /// \brief Fraction of zero entries (the paper's rho).
  double Sparsity() const {
    if (num_rows() == 0 || num_features == 0) return 1.0;
    return 1.0 - static_cast<double>(nnz()) /
                     (static_cast<double>(num_rows()) *
                      static_cast<double>(num_features));
  }

  /// \brief Average non-zeros per row.
  double AvgNnzPerRow() const {
    return num_rows() == 0 ? 0.0
                           : static_cast<double>(nnz()) /
                                 static_cast<double>(num_rows());
  }
};

/// \brief A contiguous chunk of rows, the unit of the block queue in the
/// block-based column dispatching protocol (Fig. 5 / Algorithm 4).
struct RowBlock {
  uint64_t block_id = 0;
  CsrBatch rows;
  std::vector<float> labels;
  /// Size of this block in the row-oriented source format (libsvm text),
  /// used to charge read/parse time during loading.
  uint64_t text_bytes = 0;

  size_t num_rows() const { return rows.num_rows(); }
};

/// \brief Bytes row `i` of `rows` would occupy as libsvm text
/// ("label idx:val idx:val ...\n").
uint64_t LibsvmTextBytes(const CsrBatch& rows, const std::vector<float>& labels,
                         size_t i);

/// \brief Chops a dataset into blocks of up to `block_rows` rows with
/// consecutive ids starting at 0; the master's block queue ("HDFS" blocks).
std::vector<RowBlock> MakeRowBlocks(const Dataset& dataset, size_t block_rows);

}  // namespace colsgd

#endif  // COLSGD_STORAGE_DATASET_H_
