// Two-phase mini-batch sampling over column-partitioned data
// (Section IV-A2 of the paper).
//
// After the transform, every worker holds a workset for every block, and the
// blocks have identical ids and row counts on all workers. A batch draw is a
// sequence of (block id, row offset) pairs generated from a shared seed
// (the iteration number), so all workers land on column shards of exactly
// the same rows without any coordination.
#ifndef COLSGD_STORAGE_SAMPLER_H_
#define COLSGD_STORAGE_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace colsgd {

/// \brief One sampled row: which block and which row within it.
struct RowRef {
  uint64_t block_id;
  uint32_t offset;
};

/// \brief Shared metadata about the block layout; identical on master and
/// all workers (it is fully determined by the dataset and block size).
class BlockDirectory {
 public:
  BlockDirectory() = default;

  /// \brief `rows_per_block[i]` is the row count of block id `i`.
  explicit BlockDirectory(std::vector<uint32_t> rows_per_block)
      : rows_per_block_(std::move(rows_per_block)) {
    prefix_.reserve(rows_per_block_.size() + 1);
    prefix_.push_back(0);
    for (uint32_t rows : rows_per_block_) {
      prefix_.push_back(prefix_.back() + rows);
    }
  }

  uint64_t total_rows() const { return prefix_.empty() ? 0 : prefix_.back(); }
  size_t num_blocks() const { return rows_per_block_.size(); }
  uint32_t rows_in_block(uint64_t block_id) const {
    COLSGD_CHECK_LT(block_id, rows_per_block_.size());
    return rows_per_block_[block_id];
  }

  /// \brief Maps a global row ordinal to (block, offset).
  RowRef Locate(uint64_t global_row) const {
    COLSGD_CHECK_LT(global_row, total_rows());
    // Binary search over the prefix sums (phase 1: find the block).
    size_t lo = 0;
    size_t hi = rows_per_block_.size();
    while (lo + 1 < hi) {
      const size_t mid = (lo + hi) / 2;
      if (prefix_[mid] <= global_row) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    return RowRef{static_cast<uint64_t>(lo),
                  static_cast<uint32_t>(global_row - prefix_[lo])};
  }

 private:
  std::vector<uint32_t> rows_per_block_;
  std::vector<uint64_t> prefix_;
};

/// \brief Seeded batch sampler; identical draws on every node that uses the
/// same (seed, iteration).
class BatchSampler {
 public:
  BatchSampler(const BlockDirectory* directory, uint64_t seed)
      : directory_(directory), seed_(seed) {}

  /// \brief Samples `batch_size` rows (with replacement) for `iteration`.
  std::vector<RowRef> Sample(int64_t iteration, size_t batch_size) const {
    // Phase 1 picks the block (via a uniform global row so large blocks are
    // proportionally likely), phase 2 the offset inside it.
    Rng rng = Rng(seed_).Split(static_cast<uint64_t>(iteration));
    std::vector<RowRef> batch;
    batch.reserve(batch_size);
    const uint64_t n = directory_->total_rows();
    COLSGD_CHECK_GT(n, 0u);
    for (size_t i = 0; i < batch_size; ++i) {
      batch.push_back(directory_->Locate(rng.NextBounded(n)));
    }
    return batch;
  }

 private:
  const BlockDirectory* directory_;
  uint64_t seed_;
};

}  // namespace colsgd

#endif  // COLSGD_STORAGE_SAMPLER_H_
