// Atomic file replacement for durable state (checkpoints, saved models):
// write to a temp file in the same directory, flush, then rename over the
// target. A crash mid-write leaves either the old file or the new file —
// never a torn mix — because rename(2) is atomic within a filesystem.
#ifndef COLSGD_STORAGE_ATOMIC_FILE_H_
#define COLSGD_STORAGE_ATOMIC_FILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace colsgd {

/// \brief Atomically replaces `path` with `bytes` (write temp → rename).
Status AtomicWriteFile(const std::string& path,
                       const std::vector<uint8_t>& bytes);

/// \brief Reads a whole file. IOError when it cannot be opened.
Result<std::vector<uint8_t>> ReadFileBytes(const std::string& path);

}  // namespace colsgd

#endif  // COLSGD_STORAGE_ATOMIC_FILE_H_
