// Simulated-time tracing for the cluster simulator.
//
// A Tracer records what the simulation *did* — every message on the wire,
// every compute block, every barrier/fault/recovery/checkpoint — on the
// simulated clocks, never on host wall time. Hooks live in SimNetwork::Send,
// ClusterRuntime::{ChargeCompute,ChargeMemTouch,Barrier}, and the engines;
// all of them are a single null-pointer check when tracing is off, and a
// tracer only ever reads simulation state, so attaching one changes no
// simulated timestamp and no trained bit (tests/obs_trace_test.cc pins
// this).
//
// Two views of a run:
//
//  * the raw event list (events()), exportable as Chrome trace_event JSON
//    (obs/export.h) for chrome://tracing / Perfetto;
//  * the per-iteration PHASE breakdown (iterations()): the master-clock
//    delta of each iteration decomposed into serialization / compute / wire
//    / barrier / recovery / checkpoint segments. Engines bracket their
//    iteration body with SetPhase marks; every master-clock advance between
//    two marks is charged to the phase of the earlier mark, so the phases
//    sum to the iteration's master-clock delta *exactly* (DESIGN.md §8 says
//    when each category is charged).
#ifndef COLSGD_OBS_TRACE_H_
#define COLSGD_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace colsgd {

/// \brief Categories of master-clock time within one iteration.
enum class Phase : int {
  kSerialization = 0,  // driver dispatch + task/message serialization
  kCompute,            // master-side compute (reduceStat, model update)
  kWire,               // master waits on network arrivals (gather/pushes)
  kBarrier,            // BSP barrier waits
  kRecovery,           // fault detection + engine repair
  kCheckpoint,         // checkpoint gather + stable-storage write
  kSspWait,            // bounded-staleness stall: slack gate + drain waits
  kNumPhases,
};

const char* PhaseName(Phase phase);

/// \brief Seconds of master-clock time per phase.
struct PhaseBreakdown {
  double seconds[static_cast<int>(Phase::kNumPhases)] = {};

  double& operator[](Phase p) { return seconds[static_cast<int>(p)]; }
  double operator[](Phase p) const { return seconds[static_cast<int>(p)]; }
  double total() const {
    double t = 0.0;
    for (double s : seconds) t += s;
    return t;
  }
};

/// \brief One iteration's master-clock window and its phase decomposition.
/// Invariant (when the engine brackets every segment): phases.total() ==
/// end - start to the last bit of double rounding.
struct IterationPhases {
  int64_t iteration = 0;
  double start = 0.0;  // master clock when RunIteration began
  double end = 0.0;    // master clock when RunIteration returned
  PhaseBreakdown phases;
};

/// \brief Track (exported Chrome tid) an event renders on.
enum class TraceTrack : uint8_t {
  kEvents = 0,  // raw simulation events of one node
  kPhases = 1,  // iteration + phase spans (master only)
};

/// \brief One recorded event. `name` must have static storage duration
/// (the tracer stores the pointer, not a copy). Payload fields are
/// meaningful per event name; unused ones stay at their defaults.
struct TraceEvent {
  const char* name = "";
  char ph = 'i';  // Chrome trace phase: 'X' span, 'i' instant
  uint32_t node = 0;
  TraceTrack track = TraceTrack::kEvents;
  double ts = 0.0;   // simulated seconds
  double dur = 0.0;  // 'X' events only

  uint32_t peer = 0;        // net.send: receiving node
  uint64_t bytes = 0;       // net.send / mem.touch / checkpoint payload
  uint64_t flops = 0;       // compute
  bool control = false;     // net.send took the control-plane path
  double rx_start = 0.0;    // net.send: receiver inbound-NIC busy window
  double rx_done = 0.0;     //   (rx_start == rx_done for control frames)
  int64_t iteration = -1;   // engine-level events
};

/// \brief Records simulated-time events and aggregates metrics. Non-owning
/// users (SimNetwork, ClusterRuntime, Engine) hold a raw pointer; the tracer
/// must outlive them or be detached first.
class Tracer {
 public:
  Tracer() = default;

  /// \brief Binds node-id semantics for exports: node 0 is the master,
  /// nodes 1..num_workers are workers, anything above is a co-located
  /// server endpoint. Called by ClusterRuntime::set_tracer.
  void SetTopology(int num_nodes, int num_workers) {
    num_nodes_ = num_nodes;
    num_workers_ = num_workers;
  }
  int num_nodes() const { return num_nodes_; }
  int num_workers() const { return num_workers_; }
  /// \brief Display name of a node ("master", "worker 3", "server 1").
  std::string NodeName(uint32_t node) const;

  // ---- Raw hooks (simnet / cluster runtime) ------------------------------

  /// \brief One message on the wire. `tx_start`..`tx_done` is the sender's
  /// outbound-NIC occupancy (after queueing), `rx_start`..`rx_done` the
  /// receiver's inbound-NIC occupancy (empty for control frames).
  void RecordNetSend(uint32_t from, uint32_t to, uint64_t bytes, bool control,
                     double tx_start, double tx_done, double rx_start,
                     double rx_done);
  /// \brief One compute block charged on `node` at `start` for `seconds`.
  void RecordCompute(uint32_t node, double start, double seconds,
                     uint64_t flops);
  /// \brief One dense-memory sweep charged on `node`.
  void RecordMemTouch(uint32_t node, double start, double seconds,
                      uint64_t bytes);
  /// \brief A BSP barrier completing at simulated time `ts`.
  void RecordBarrier(double ts);

  // ---- Engine-level events ----------------------------------------------

  /// \brief Instant event (fault.task, fault.worker, fault.drop, ...);
  /// also bumps the counter of the same name.
  void RecordInstant(const char* name, uint32_t node, double ts,
                     int64_t iteration = -1);
  /// \brief Span event (recovery.repair, checkpoint, ...); also bumps the
  /// counter of the same name.
  void RecordSpan(const char* name, uint32_t node, double start,
                  double seconds, uint64_t bytes = 0, int64_t iteration = -1);

  // ---- Master-timeline phase accounting (engines) ------------------------

  /// \brief Opens iteration `iteration` at master clock `master_clock`; time
  /// until the first SetPhase mark is charged to kRecovery (RunIteration
  /// fires faults before the engine body runs).
  void BeginIteration(int64_t iteration, double master_clock);
  /// \brief Charges master-clock time since the previous mark to the
  /// previous mark's phase, then opens `phase`. No-op outside an iteration.
  void SetPhase(Phase phase, double master_clock);
  /// \brief Closes the open phase and the iteration; emits the iteration +
  /// phase spans and feeds the phase histograms.
  void EndIteration(double master_clock);

  // ---- Results -----------------------------------------------------------

  const std::vector<TraceEvent>& events() const { return events_; }
  const std::vector<IterationPhases>& iterations() const {
    return iteration_rows_;
  }
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  void Clear();

 private:
  void ClosePhase(double now);

  std::vector<TraceEvent> events_;
  std::vector<IterationPhases> iteration_rows_;
  MetricsRegistry metrics_;
  int num_nodes_ = 0;
  int num_workers_ = 0;

  bool in_iteration_ = false;
  IterationPhases current_;
  Phase current_phase_ = Phase::kRecovery;
  double phase_start_ = 0.0;
};

}  // namespace colsgd

#endif  // COLSGD_OBS_TRACE_H_
