#include "obs/trace.h"

#include "common/check.h"

namespace colsgd {

namespace {
// Static storage for phase-span event names (TraceEvent keeps the pointer).
constexpr const char* kPhaseNames[static_cast<int>(Phase::kNumPhases)] = {
    "serialization", "compute",    "wire",     "barrier",
    "recovery",      "checkpoint", "ssp.wait",
};
}  // namespace

const char* PhaseName(Phase phase) {
  const int i = static_cast<int>(phase);
  COLSGD_CHECK_GE(i, 0);
  COLSGD_CHECK_LT(i, static_cast<int>(Phase::kNumPhases));
  return kPhaseNames[i];
}

std::string Tracer::NodeName(uint32_t node) const {
  if (node == 0) return "master";
  if (num_workers_ > 0 && node > static_cast<uint32_t>(num_workers_)) {
    return "server " + std::to_string(node - num_workers_ - 1);
  }
  return "worker " + std::to_string(node - 1);
}

void Tracer::RecordNetSend(uint32_t from, uint32_t to, uint64_t bytes,
                           bool control, double tx_start, double tx_done,
                           double rx_start, double rx_done) {
  TraceEvent event;
  event.name = "net.send";
  event.ph = 'X';
  event.node = from;
  event.ts = tx_start;
  event.dur = tx_done - tx_start;
  event.peer = to;
  event.bytes = bytes;
  event.control = control;
  event.rx_start = rx_start;
  event.rx_done = rx_done;
  events_.push_back(event);

  metrics_.GetCounter("net.messages")->Increment();
  metrics_.GetCounter("net.bytes")->Add(bytes);
  if (control) metrics_.GetCounter("net.control.messages")->Increment();
  metrics_.GetHistogram("net.send.bytes", DefaultBytesBuckets())
      ->Observe(static_cast<double>(bytes));
}

void Tracer::RecordCompute(uint32_t node, double start, double seconds,
                           uint64_t flops) {
  TraceEvent event;
  event.name = "compute";
  event.ph = 'X';
  event.node = node;
  event.ts = start;
  event.dur = seconds;
  event.flops = flops;
  events_.push_back(event);

  metrics_.GetCounter("compute.blocks")->Increment();
  metrics_.GetCounter("compute.flops")->Add(flops);
  metrics_.GetHistogram("compute.seconds")->Observe(seconds);
}

void Tracer::RecordMemTouch(uint32_t node, double start, double seconds,
                            uint64_t bytes) {
  TraceEvent event;
  event.name = "mem.touch";
  event.ph = 'X';
  event.node = node;
  event.ts = start;
  event.dur = seconds;
  event.bytes = bytes;
  events_.push_back(event);

  metrics_.GetCounter("mem.touch.bytes")->Add(bytes);
}

void Tracer::RecordBarrier(double ts) {
  TraceEvent event;
  event.name = "barrier";
  event.ph = 'i';
  event.node = 0;
  event.ts = ts;
  events_.push_back(event);

  metrics_.GetCounter("barrier.count")->Increment();
}

void Tracer::RecordInstant(const char* name, uint32_t node, double ts,
                           int64_t iteration) {
  TraceEvent event;
  event.name = name;
  event.ph = 'i';
  event.node = node;
  event.ts = ts;
  event.iteration = iteration;
  events_.push_back(event);

  metrics_.GetCounter(name)->Increment();
}

void Tracer::RecordSpan(const char* name, uint32_t node, double start,
                        double seconds, uint64_t bytes, int64_t iteration) {
  TraceEvent event;
  event.name = name;
  event.ph = 'X';
  event.node = node;
  event.ts = start;
  event.dur = seconds;
  event.bytes = bytes;
  event.iteration = iteration;
  events_.push_back(event);

  metrics_.GetCounter(name)->Increment();
}

void Tracer::BeginIteration(int64_t iteration, double master_clock) {
  COLSGD_CHECK(!in_iteration_) << "BeginIteration without EndIteration";
  in_iteration_ = true;
  current_ = IterationPhases{};
  current_.iteration = iteration;
  current_.start = master_clock;
  current_phase_ = Phase::kRecovery;
  phase_start_ = master_clock;
}

void Tracer::ClosePhase(double now) {
  const double dur = now - phase_start_;
  if (dur > 0.0) {
    current_.phases[current_phase_] += dur;
    TraceEvent event;
    event.name = PhaseName(current_phase_);
    event.ph = 'X';
    event.node = 0;  // master timeline
    event.track = TraceTrack::kPhases;
    event.ts = phase_start_;
    event.dur = dur;
    event.iteration = current_.iteration;
    events_.push_back(event);
  }
  phase_start_ = now;
}

void Tracer::SetPhase(Phase phase, double master_clock) {
  if (!in_iteration_) return;
  ClosePhase(master_clock);
  current_phase_ = phase;
}

void Tracer::EndIteration(double master_clock) {
  if (!in_iteration_) return;
  ClosePhase(master_clock);
  current_.end = master_clock;
  in_iteration_ = false;

  TraceEvent event;
  event.name = "iteration";
  event.ph = 'X';
  event.node = 0;
  event.track = TraceTrack::kPhases;
  event.ts = current_.start;
  event.dur = current_.end - current_.start;
  event.iteration = current_.iteration;
  events_.push_back(event);

  metrics_.GetCounter("iterations")->Increment();
  metrics_.GetHistogram("iter.seconds")
      ->Observe(current_.end - current_.start);
  for (int p = 0; p < static_cast<int>(Phase::kNumPhases); ++p) {
    const double seconds = current_.phases.seconds[p];
    if (seconds > 0.0) {
      metrics_
          .GetHistogram(std::string("iter.phase.") +
                        kPhaseNames[p])
          ->Observe(seconds);
    }
  }
  iteration_rows_.push_back(current_);
}

void Tracer::Clear() {
  events_.clear();
  iteration_rows_.clear();
  metrics_.Clear();
  in_iteration_ = false;
}

}  // namespace colsgd
