// Reads Chrome trace_event JSON back into memory — the inverse of
// obs/export.h, used by the colsgd_trace summarizer and the round-trip
// tests. The parser handles general trace_event JSON of the flat shape our
// exporter emits ({"traceEvents":[...]} with one level of "args" nesting);
// it is not a general-purpose JSON library.
#ifndef COLSGD_OBS_TRACE_READER_H_
#define COLSGD_OBS_TRACE_READER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"

namespace colsgd {

/// \brief One parsed trace event. `args` keeps raw JSON scalar tokens
/// (numbers unquoted, strings unescaped); use the typed accessors.
struct ParsedTraceEvent {
  std::string name;
  char ph = 'i';
  uint32_t pid = 0;
  uint32_t tid = 0;
  double ts_us = 0.0;   // microseconds, as exported
  double dur_us = 0.0;  // 'X' events
  std::map<std::string, std::string> args;

  bool has_arg(const std::string& key) const { return args.count(key) > 0; }
  uint64_t ArgUint(const std::string& key, uint64_t fallback = 0) const;
  double ArgDouble(const std::string& key, double fallback = 0.0) const;
  bool ArgBool(const std::string& key, bool fallback = false) const;
};

struct ParsedTrace {
  std::vector<ParsedTraceEvent> events;       // non-metadata events
  std::map<uint32_t, std::string> process_names;  // pid -> name
};

/// \brief Parses a trace_event JSON document.
Result<ParsedTrace> ParseChromeTraceJson(const std::string& json);

/// \brief Reads and parses a trace_event JSON file.
Result<ParsedTrace> ReadChromeTraceFile(const std::string& path);

}  // namespace colsgd

#endif  // COLSGD_OBS_TRACE_READER_H_
