#include "obs/export.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <string_view>

#include "common/csv.h"

namespace colsgd {

namespace {

// Simulated seconds -> microseconds with fixed precision (picosecond
// granularity), so the JSON is byte-stable for identical simulations.
void AppendMicros(std::string* out, double seconds) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", seconds * 1e6);
  *out += buf;
}

void AppendEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
}

void AppendMetadata(std::string* out, const char* name, uint32_t pid,
                    uint32_t tid, const std::string& value) {
  *out += "{\"name\":\"";
  *out += name;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\",\"ph\":\"M\",\"pid\":%u,\"tid\":%u,",
                pid, tid);
  *out += buf;
  *out += "\"args\":{\"name\":\"";
  AppendEscaped(out, value);
  *out += "\"}},\n";
}

void AppendEvent(std::string* out, const TraceEvent& event) {
  char buf[96];
  *out += "{\"name\":\"";
  *out += event.name;
  std::snprintf(buf, sizeof(buf), "\",\"ph\":\"%c\",\"pid\":%u,\"tid\":%u,",
                event.ph, event.node, static_cast<uint32_t>(event.track));
  *out += buf;
  *out += "\"ts\":";
  AppendMicros(out, event.ts);
  if (event.ph == 'X') {
    *out += ",\"dur\":";
    AppendMicros(out, event.dur);
  }
  if (event.ph == 'i') *out += ",\"s\":\"t\"";

  *out += ",\"args\":{";
  bool first = true;
  auto arg = [&](const char* key) {
    if (!first) *out += ",";
    first = false;
    *out += "\"";
    *out += key;
    *out += "\":";
  };
  if (std::string_view(event.name) == "net.send") {
    arg("from");
    std::snprintf(buf, sizeof(buf), "%u", event.node);
    *out += buf;
    arg("to");
    std::snprintf(buf, sizeof(buf), "%u", event.peer);
    *out += buf;
    arg("bytes");
    std::snprintf(buf, sizeof(buf), "%" PRIu64, event.bytes);
    *out += buf;
    arg("control");
    *out += event.control ? "true" : "false";
    arg("rx_start");
    AppendMicros(out, event.rx_start);
    arg("rx_done");
    AppendMicros(out, event.rx_done);
  } else {
    if (event.flops > 0) {
      arg("flops");
      std::snprintf(buf, sizeof(buf), "%" PRIu64, event.flops);
      *out += buf;
    }
    if (event.bytes > 0) {
      arg("bytes");
      std::snprintf(buf, sizeof(buf), "%" PRIu64, event.bytes);
      *out += buf;
    }
    if (event.iteration >= 0) {
      arg("iteration");
      std::snprintf(buf, sizeof(buf), "%lld",
                    static_cast<long long>(event.iteration));
      *out += buf;
    }
  }
  *out += "}},\n";
}

}  // namespace

std::string ChromeTraceJson(const Tracer& tracer) {
  std::string out;
  out.reserve(160 * tracer.events().size() + 1024);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  for (int node = 0; node < tracer.num_nodes(); ++node) {
    const uint32_t pid = static_cast<uint32_t>(node);
    AppendMetadata(&out, "process_name", pid, 0, tracer.NodeName(pid));
    AppendMetadata(&out, "thread_name", pid, 0, "events");
    if (node == 0) AppendMetadata(&out, "thread_name", pid, 1, "phases");
  }
  for (const TraceEvent& event : tracer.events()) {
    AppendEvent(&out, event);
  }
  // trace_event JSON tolerates no trailing comma; close with a sentinel
  // metadata event instead of rewriting the last line.
  out += "{\"name\":\"trace_end\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
         "\"args\":{}}\n]}\n";
  return out;
}

Status WriteChromeTrace(const Tracer& tracer, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) {
    return Status::IOError("cannot open trace output: " + path);
  }
  const std::string json = ChromeTraceJson(tracer);
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  if (!out.good()) return Status::IOError("short write to " + path);
  return Status::OK();
}

Status WritePhaseCsv(const Tracer& tracer, const std::string& path) {
  CsvWriter csv;
  std::vector<std::string> header = {"iteration", "start", "end"};
  for (int p = 0; p < static_cast<int>(Phase::kNumPhases); ++p) {
    header.push_back(PhaseName(static_cast<Phase>(p)));
  }
  header.push_back("total");
  COLSGD_RETURN_NOT_OK(csv.Open(path, header));
  for (const IterationPhases& row : tracer.iterations()) {
    std::vector<double> cells = {static_cast<double>(row.iteration),
                                 row.start, row.end};
    for (double s : row.phases.seconds) cells.push_back(s);
    cells.push_back(row.phases.total());
    csv.WriteNumericRow(cells);
  }
  return Status::OK();
}

}  // namespace colsgd
