// Trace exporters: Chrome trace_event JSON (chrome://tracing, Perfetto) and
// a per-iteration phase CSV.
//
// The JSON is emitted one event per line with fixed-precision timestamps, so
// two runs that made identical simulated decisions produce byte-identical
// files — the determinism golden test diffs them directly.
#ifndef COLSGD_OBS_EXPORT_H_
#define COLSGD_OBS_EXPORT_H_

#include <string>

#include "common/status.h"
#include "obs/trace.h"

namespace colsgd {

/// \brief Serializes the trace as Chrome trace_event JSON. Timestamps are
/// simulated microseconds; each node exports as one process (pid = node id,
/// named via SetTopology), with tid 0 = raw events and tid 1 = the master's
/// iteration/phase track.
std::string ChromeTraceJson(const Tracer& tracer);

/// \brief Writes ChromeTraceJson(tracer) to `path`.
Status WriteChromeTrace(const Tracer& tracer, const std::string& path);

/// \brief Writes the per-iteration phase breakdown (simulated seconds) as
/// CSV: iteration, start, end, one column per phase, total.
Status WritePhaseCsv(const Tracer& tracer, const std::string& path);

}  // namespace colsgd

#endif  // COLSGD_OBS_EXPORT_H_
