#include "obs/bench/bench_result.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>

#include "obs/bench/json.h"

namespace colsgd {

namespace {

void AppendStringMap(std::string* out,
                     const std::map<std::string, std::string>& map,
                     const char* indent) {
  *out += "{";
  bool first = true;
  for (const auto& [key, value] : map) {
    *out += first ? "\n" : ",\n";
    first = false;
    *out += indent;
    AppendJsonString(out, key);
    *out += ": ";
    AppendJsonString(out, value);
  }
  *out += "\n";
  out->append(indent, std::strlen(indent) - 2);
  *out += "}";
}

void AppendMetricMap(std::string* out,
                     const std::map<std::string, double>& map,
                     const char* indent) {
  *out += "{";
  bool first = true;
  for (const auto& [key, value] : map) {
    *out += first ? "\n" : ",\n";
    first = false;
    *out += indent;
    AppendJsonString(out, key);
    *out += ": ";
    AppendJsonNumber(out, value);
  }
  *out += "\n";
  out->append(indent, std::strlen(indent) - 2);
  *out += "}";
}

void AppendSeriesMap(std::string* out,
                     const std::map<std::string, std::vector<double>>& map,
                     const char* indent) {
  *out += "{";
  bool first = true;
  for (const auto& [key, column] : map) {
    *out += first ? "\n" : ",\n";
    first = false;
    *out += indent;
    AppendJsonString(out, key);
    *out += ": [";
    for (size_t i = 0; i < column.size(); ++i) {
      if (i > 0) *out += ", ";
      AppendJsonNumber(out, column[i]);
    }
    *out += "]";
  }
  *out += "\n";
  out->append(indent, std::strlen(indent) - 2);
  *out += "}";
}

Status SchemaError(const std::string& what) {
  return Status::SerializationError("bench schema: " + what);
}

Status ReadStringMap(const JsonValue& value, const std::string& context,
                     std::map<std::string, std::string>* out) {
  if (!value.is_object()) return SchemaError(context + " must be an object");
  for (const auto& [key, member] : value.members()) {
    if (!member.is_string()) {
      return SchemaError(context + "." + key + " must be a string");
    }
    (*out)[key] = member.string_value();
  }
  return Status::OK();
}

Status ReadResult(const JsonValue& value, BenchResult* out) {
  if (!value.is_object()) return SchemaError("result must be an object");
  for (const auto& [key, member] : value.members()) {
    if (key == "name") {
      if (!member.is_string()) return SchemaError("result.name not a string");
      out->name = member.string_value();
    } else if (key == "env") {
      COLSGD_RETURN_NOT_OK(ReadStringMap(member, "result.env", &out->env));
    } else if (key == "metrics") {
      if (!member.is_object()) return SchemaError("metrics not an object");
      for (const auto& [metric, cell] : member.members()) {
        if (!cell.is_number() && !cell.is_null()) {
          return SchemaError("metric " + metric + " not a number");
        }
        out->metrics[metric] = cell.number_value();
      }
    } else if (key == "series") {
      if (!member.is_object()) return SchemaError("series not an object");
      for (const auto& [column, cells] : member.members()) {
        if (!cells.is_array()) {
          return SchemaError("series column " + column + " not an array");
        }
        std::vector<double>& values = out->series[column];
        values.reserve(cells.array().size());
        for (const JsonValue& cell : cells.array()) {
          if (!cell.is_number() && !cell.is_null()) {
            return SchemaError("series column " + column +
                               " has a non-numeric cell");
          }
          values.push_back(cell.number_value());
        }
      }
    } else {
      return SchemaError("unknown result field '" + key + "'");
    }
  }
  if (out->name.empty()) return SchemaError("result without a name");
  return Status::OK();
}

/// Finite values of a series column, in order.
std::vector<double> FiniteValues(const std::vector<double>& column) {
  std::vector<double> out;
  out.reserve(column.size());
  for (double v : column) {
    if (std::isfinite(v)) out.push_back(v);
  }
  return out;
}

/// Exact order-statistic quantile with linear interpolation between ranks.
double ExactQuantile(std::vector<double> sorted, double q) {
  std::sort(sorted.begin(), sorted.end());
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

/// Centered-free trailing moving average over up to `window` points.
std::vector<double> MovingAverage(const std::vector<double>& values,
                                  size_t window) {
  std::vector<double> out(values.size(), 0.0);
  double running = 0.0;
  for (size_t i = 0; i < values.size(); ++i) {
    running += values[i];
    if (i >= window) running -= values[i - window];
    out[i] = running / static_cast<double>(std::min(i + 1, window));
  }
  return out;
}

}  // namespace

std::string BenchSuiteJson(const BenchSuite& suite) {
  std::string out;
  out.reserve(4096);
  out += "{\n  \"schema\": ";
  AppendJsonString(&out, kBenchSchema);
  out += ",\n  \"suite\": ";
  AppendJsonString(&out, suite.suite);
  if (!suite.env.empty()) {
    out += ",\n  \"env\": ";
    AppendStringMap(&out, suite.env, "    ");
  }
  out += ",\n  \"results\": [";
  bool first = true;
  for (const BenchResult& result : suite.results) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\n      \"name\": ";
    AppendJsonString(&out, result.name);
    if (!result.env.empty()) {
      out += ",\n      \"env\": ";
      AppendStringMap(&out, result.env, "        ");
    }
    if (!result.metrics.empty()) {
      out += ",\n      \"metrics\": ";
      AppendMetricMap(&out, result.metrics, "        ");
    }
    if (!result.series.empty()) {
      out += ",\n      \"series\": ";
      AppendSeriesMap(&out, result.series, "        ");
    }
    out += "\n    }";
  }
  out += "\n  ]\n}\n";
  return out;
}

Status WriteBenchSuite(const BenchSuite& suite, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) {
    return Status::IOError("cannot open bench output: " + path);
  }
  const std::string json = BenchSuiteJson(suite);
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  if (!out.good()) return Status::IOError("short write to " + path);
  return Status::OK();
}

Result<BenchSuite> ParseBenchSuiteJson(const std::string& json) {
  Result<JsonValue> parsed = ParseJson(json);
  if (!parsed.ok()) return parsed.status();
  const JsonValue& root = *parsed;
  if (!root.is_object()) return SchemaError("document must be an object");

  BenchSuite suite;
  bool saw_schema = false;
  for (const auto& [key, member] : root.members()) {
    if (key == "schema") {
      if (!member.is_string() || member.string_value() != kBenchSchema) {
        return SchemaError("unsupported schema tag (want " +
                           std::string(kBenchSchema) + ")");
      }
      saw_schema = true;
    } else if (key == "suite") {
      if (!member.is_string()) return SchemaError("suite not a string");
      suite.suite = member.string_value();
    } else if (key == "env") {
      COLSGD_RETURN_NOT_OK(ReadStringMap(member, "env", &suite.env));
    } else if (key == "results") {
      if (!member.is_array()) return SchemaError("results not an array");
      for (const JsonValue& entry : member.array()) {
        BenchResult result;
        COLSGD_RETURN_NOT_OK(ReadResult(entry, &result));
        suite.results.push_back(std::move(result));
      }
    } else {
      return SchemaError("unknown field '" + key + "'");
    }
  }
  if (!saw_schema) return SchemaError("missing schema tag");
  if (suite.suite.empty()) return SchemaError("missing suite name");
  return suite;
}

Result<BenchSuite> ReadBenchSuiteFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::IOError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  Result<BenchSuite> suite = ParseBenchSuiteJson(buffer.str());
  if (!suite.ok()) {
    return Status::SerializationError(path + ": " +
                                      suite.status().message());
  }
  return suite;
}

void AppendSampleSeries(const std::vector<TimeSeriesSample>& samples,
                        BenchResult* result) {
  if (samples.empty()) return;
  auto any_finite = [&](auto field) {
    for (const TimeSeriesSample& s : samples) {
      if (std::isfinite(s.*field)) return true;
    }
    return false;
  };
  auto column = [&](const std::string& name) -> std::vector<double>& {
    std::vector<double>& c = result->series[name];
    c.clear();
    c.reserve(samples.size());
    return c;
  };

  std::vector<double>& iteration = column("iteration");
  std::vector<double>& sim_time = column("sim_time");
  std::vector<double>& iter_seconds = column("iter_seconds");
  std::vector<double>& bytes = column("bytes");
  std::vector<double>& bytes_master = column("bytes_master");
  std::vector<double>& messages = column("messages");
  for (const TimeSeriesSample& s : samples) {
    iteration.push_back(static_cast<double>(s.iteration));
    sim_time.push_back(s.sim_time);
    iter_seconds.push_back(s.iter_seconds);
    bytes.push_back(static_cast<double>(s.bytes_on_wire));
    bytes_master.push_back(s.bytes_sent_per_node.empty()
                               ? 0.0
                               : static_cast<double>(
                                     s.bytes_sent_per_node[0]));
    messages.push_back(static_cast<double>(s.messages));
  }
  if (any_finite(&TimeSeriesSample::batch_loss)) {
    std::vector<double>& c = column("batch_loss");
    for (const TimeSeriesSample& s : samples) c.push_back(s.batch_loss);
  }
  if (any_finite(&TimeSeriesSample::eval_loss)) {
    std::vector<double>& c = column("eval_loss");
    for (const TimeSeriesSample& s : samples) c.push_back(s.eval_loss);
  }
  if (any_finite(&TimeSeriesSample::grad_norm)) {
    std::vector<double>& c = column("grad_norm");
    for (const TimeSeriesSample& s : samples) c.push_back(s.grad_norm);
  }

  bool has_phases = false;
  for (const TimeSeriesSample& s : samples) has_phases |= s.has_phases;
  if (has_phases) {
    for (int p = 0; p < static_cast<int>(Phase::kNumPhases); ++p) {
      std::vector<double>& c =
          column(std::string("phase_") + PhaseName(static_cast<Phase>(p)));
      for (const TimeSeriesSample& s : samples) {
        c.push_back(s.phases.seconds[p]);
      }
    }
  }

  bool has_faults = false;
  for (const TimeSeriesSample& s : samples) {
    has_faults |= s.task_failures > 0 || s.worker_failures > 0 ||
                  s.checkpoints > 0 || s.recovery_seconds > 0.0;
  }
  if (has_faults) {
    std::vector<double>& tasks = column("task_failures");
    std::vector<double>& workers = column("worker_failures");
    std::vector<double>& ckpts = column("checkpoints");
    std::vector<double>& rec = column("recovery_seconds");
    for (const TimeSeriesSample& s : samples) {
      tasks.push_back(static_cast<double>(s.task_failures));
      workers.push_back(static_cast<double>(s.worker_failures));
      ckpts.push_back(static_cast<double>(s.checkpoints));
      rec.push_back(s.recovery_seconds);
    }
  }

  // Wire-integrity columns appear only when the run saw integrity traffic,
  // so fault runs without corruption/partitions keep their column set.
  bool has_integrity = false;
  for (const TimeSeriesSample& s : samples) {
    has_integrity |= s.messages_corrupted > 0 || s.retransmits > 0 ||
                     s.partition_blocked_sends > 0;
  }
  if (has_integrity) {
    std::vector<double>& corrupted = column("messages_corrupted");
    std::vector<double>& retrans = column("retransmits");
    std::vector<double>& blocked = column("partition_blocked_sends");
    for (const TimeSeriesSample& s : samples) {
      corrupted.push_back(static_cast<double>(s.messages_corrupted));
      retrans.push_back(static_cast<double>(s.retransmits));
      blocked.push_back(static_cast<double>(s.partition_blocked_sends));
    }
  }
}

void ComputeDerivedStats(BenchResult* result) {
  auto it = result->series.find("iter_seconds");
  if (it != result->series.end()) {
    const std::vector<double> values = FiniteValues(it->second);
    if (!values.empty()) {
      result->metrics["iter_p50"] = ExactQuantile(values, 0.50);
      result->metrics["iter_p95"] = ExactQuantile(values, 0.95);
      result->metrics["iter_p99"] = ExactQuantile(values, 0.99);
    }
  }
  it = result->series.find("bytes");
  if (it != result->series.end() && !it->second.empty()) {
    double total = 0.0;
    for (double v : it->second) total += v;
    result->metrics["bytes_per_iter"] =
        total / static_cast<double>(it->second.size());
  }

  const auto loss_it = result->series.find("batch_loss");
  const auto time_it = result->series.find("sim_time");
  if (loss_it == result->series.end() || time_it == result->series.end() ||
      loss_it->second.size() != time_it->second.size() ||
      loss_it->second.empty()) {
    return;
  }
  const std::vector<double> smoothed = MovingAverage(loss_it->second, 10);
  if (!std::isfinite(smoothed.front()) || !std::isfinite(smoothed.back())) {
    return;
  }
  double target;
  const auto preset = result->metrics.find("target_loss");
  if (preset != result->metrics.end()) {
    target = preset->second;
  } else {
    // 90% of the smoothed first→final loss drop (DESIGN.md §9).
    target = smoothed.back() + 0.1 * (smoothed.front() - smoothed.back());
    result->metrics["target_loss"] = target;
  }
  result->metrics["final_loss"] = smoothed.back();
  for (size_t i = 0; i < smoothed.size(); ++i) {
    if (smoothed[i] <= target) {
      result->metrics["time_to_target_loss"] = time_it->second[i];
      break;
    }
  }
}

std::string GitDescribe() {
#ifdef COLSGD_GIT_DESCRIBE
  return COLSGD_GIT_DESCRIBE;
#else
  return "unknown";
#endif
}

std::string MetricsRegistryJson(const MetricsRegistry& registry) {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : registry.counters()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    AppendJsonString(&out, name);
    out += ": ";
    AppendJsonNumber(&out, static_cast<double>(counter.value()));
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : registry.histograms()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    AppendJsonString(&out, name);
    out += ": {\"count\": ";
    AppendJsonNumber(&out, static_cast<double>(hist.count()));
    out += ", \"sum\": ";
    AppendJsonNumber(&out, hist.sum());
    out += ", \"min\": ";
    AppendJsonNumber(&out, hist.min());
    out += ", \"max\": ";
    AppendJsonNumber(&out, hist.max());
    out += ", \"mean\": ";
    AppendJsonNumber(&out, hist.mean());
    out += ", \"p50\": ";
    AppendJsonNumber(&out, hist.p50());
    out += ", \"p95\": ";
    AppendJsonNumber(&out, hist.p95());
    out += ", \"p99\": ";
    AppendJsonNumber(&out, hist.p99());
    out += ", \"bounds\": [";
    for (size_t i = 0; i < hist.bounds().size(); ++i) {
      if (i > 0) out += ", ";
      AppendJsonNumber(&out, hist.bounds()[i]);
    }
    out += "], \"buckets\": [";
    for (size_t i = 0; i < hist.buckets().size(); ++i) {
      if (i > 0) out += ", ";
      AppendJsonNumber(&out, static_cast<double>(hist.buckets()[i]));
    }
    out += "]}";
  }
  out += "\n  }\n}\n";
  return out;
}

}  // namespace colsgd
