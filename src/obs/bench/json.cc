#include "obs/bench/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>

namespace colsgd {

namespace {

constexpr int kMaxDepth = 32;

struct Parser {
  const char* begin;
  const char* p;
  const char* end;

  void SkipSpace() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) {
      ++p;
    }
  }

  Status Error(const std::string& what) const {
    return Status::SerializationError(
        "json parse error: " + what + " at offset " +
        std::to_string(static_cast<size_t>(p - begin)));
  }

  Status ParseValue(JsonValue* out, int depth);
  Status ParseString(std::string* out);
  Status ParseNumber(JsonValue* out);
  Status ParseObject(JsonValue* out, int depth);
  Status ParseArray(JsonValue* out, int depth);
  bool Consume(char c) {
    if (p < end && *p == c) {
      ++p;
      return true;
    }
    return false;
  }
  bool ConsumeLiteral(const char* lit) {
    const size_t n = std::strlen(lit);
    if (static_cast<size_t>(end - p) >= n && std::memcmp(p, lit, n) == 0) {
      p += n;
      return true;
    }
    return false;
  }
};

Status Parser::ParseString(std::string* out) {
  if (!Consume('"')) return Error("expected string");
  out->clear();
  while (p < end && *p != '"') {
    char c = *p++;
    if (c == '\\') {
      if (p >= end) return Error("truncated escape");
      char esc = *p++;
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (end - p < 4) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = *p++;
            code <<= 4;
            if (h >= '0' && h <= '9') code |= h - '0';
            else if (h >= 'a' && h <= 'f') code |= h - 'a' + 10;
            else if (h >= 'A' && h <= 'F') code |= h - 'A' + 10;
            else return Error("bad \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs unsupported —
          // the bench writer never emits them).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("unknown escape");
      }
    } else {
      out->push_back(c);
    }
  }
  if (!Consume('"')) return Error("unterminated string");
  return Status::OK();
}

Status Parser::ParseNumber(JsonValue* out) {
  const char* start = p;
  if (p < end && (*p == '-' || *p == '+')) ++p;
  while (p < end &&
         ((*p >= '0' && *p <= '9') || *p == '.' || *p == 'e' || *p == 'E' ||
          *p == '+' || *p == '-')) {
    ++p;
  }
  if (p == start) return Error("expected number");
  std::string token(start, p);
  char* parsed_end = nullptr;
  const double v = std::strtod(token.c_str(), &parsed_end);
  if (parsed_end != token.c_str() + token.size()) {
    return Error("bad number '" + token + "'");
  }
  *out = JsonValue::Number(v);
  return Status::OK();
}

Status Parser::ParseObject(JsonValue* out, int depth) {
  *out = JsonValue::Object();
  SkipSpace();
  if (Consume('}')) return Status::OK();
  while (true) {
    SkipSpace();
    std::string key;
    COLSGD_RETURN_NOT_OK(ParseString(&key));
    SkipSpace();
    if (!Consume(':')) return Error("expected ':'");
    JsonValue value;
    COLSGD_RETURN_NOT_OK(ParseValue(&value, depth));
    out->Set(std::move(key), std::move(value));
    SkipSpace();
    if (Consume(',')) continue;
    if (Consume('}')) return Status::OK();
    return Error("expected ',' or '}'");
  }
}

Status Parser::ParseArray(JsonValue* out, int depth) {
  *out = JsonValue::Array();
  SkipSpace();
  if (Consume(']')) return Status::OK();
  while (true) {
    JsonValue value;
    COLSGD_RETURN_NOT_OK(ParseValue(&value, depth));
    out->Append(std::move(value));
    SkipSpace();
    if (Consume(',')) continue;
    if (Consume(']')) return Status::OK();
    return Error("expected ',' or ']'");
  }
}

Status Parser::ParseValue(JsonValue* out, int depth) {
  if (depth > kMaxDepth) return Error("nesting too deep");
  SkipSpace();
  if (p >= end) return Error("unexpected end of input");
  switch (*p) {
    case '{':
      ++p;
      return ParseObject(out, depth + 1);
    case '[':
      ++p;
      return ParseArray(out, depth + 1);
    case '"': {
      std::string s;
      COLSGD_RETURN_NOT_OK(ParseString(&s));
      *out = JsonValue::String(std::move(s));
      return Status::OK();
    }
    case 't':
      if (ConsumeLiteral("true")) {
        *out = JsonValue::Bool(true);
        return Status::OK();
      }
      return Error("bad literal");
    case 'f':
      if (ConsumeLiteral("false")) {
        *out = JsonValue::Bool(false);
        return Status::OK();
      }
      return Error("bad literal");
    case 'n':
      if (ConsumeLiteral("null")) {
        *out = JsonValue::Null();
        return Status::OK();
      }
      return Error("bad literal");
    default:
      return ParseNumber(out);
  }
}

}  // namespace

double JsonValue::number_value() const {
  if (kind_ == Kind::kNull) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return number_;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void AppendJsonNumber(std::string* out, double v) {
  if (!std::isfinite(v)) {
    *out += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.15g", v);
  if (std::strtod(buf, nullptr) != v) {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  *out += buf;
}

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void JsonValue::SerializeTo(std::string* out) const {
  switch (kind_) {
    case Kind::kNull:
      *out += "null";
      break;
    case Kind::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Kind::kNumber:
      AppendJsonNumber(out, number_);
      break;
    case Kind::kString:
      AppendJsonString(out, string_);
      break;
    case Kind::kArray: {
      out->push_back('[');
      bool first = true;
      for (const JsonValue& v : array_) {
        if (!first) out->push_back(',');
        first = false;
        v.SerializeTo(out);
      }
      out->push_back(']');
      break;
    }
    case Kind::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [k, v] : members_) {
        if (!first) out->push_back(',');
        first = false;
        AppendJsonString(out, k);
        out->push_back(':');
        v.SerializeTo(out);
      }
      out->push_back('}');
      break;
    }
  }
}

std::string JsonValue::Serialize() const {
  std::string out;
  SerializeTo(&out);
  return out;
}

Result<JsonValue> ParseJson(const std::string& text) {
  Parser parser{text.data(), text.data(), text.data() + text.size()};
  JsonValue value;
  Status st = parser.ParseValue(&value, 0);
  if (!st.ok()) return st;
  parser.SkipSpace();
  if (parser.p != parser.end) {
    return Status::SerializationError(
        "json parse error: trailing garbage after document");
  }
  return value;
}

}  // namespace colsgd
