// Machine-readable benchmark results: the BENCH_*.json schema.
//
// Every bench binary (bench/) emits one BenchSuite per run — a versioned
// JSON document holding, per measured configuration, an environment block
// (engine, model, dataset, cost-model parameters, seed, git describe), a
// flat map of comparable scalar metrics (times, bytes, losses, derived
// p50/p95 and time-to-target stats), and optional per-iteration time-series
// columns built from the TimeSeriesRecorder samples. tools/colsgd_report
// diffs two such files and gates CI on regressions (obs/bench/report.h).
//
// The writer is deterministic (sorted keys, shortest round-tripping number
// strings, NaN as null), so writer → reader → writer is byte-identical and
// two identical simulated runs produce byte-identical files. Schema changes
// bump kBenchSchemaVersion; the reader rejects documents it does not
// understand rather than guessing. DESIGN.md §9 documents the schema and
// the derived-stat definitions.
#ifndef COLSGD_OBS_BENCH_BENCH_RESULT_H_
#define COLSGD_OBS_BENCH_BENCH_RESULT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "obs/bench/timeseries.h"
#include "obs/metrics.h"

namespace colsgd {

/// \brief Schema tag written into every BENCH file; readers reject others.
inline constexpr const char* kBenchSchema = "colsgd.bench/v1";

/// \brief One measured configuration within a suite.
struct BenchResult {
  /// Unique within the suite, e.g. "kddb-sim/lr/columnsgd".
  std::string name;
  /// Environment block: engine, model, dataset, batch_size, seed, workers,
  /// cost-model parameters — everything needed to re-run this point.
  std::map<std::string, std::string> env;
  /// Comparable scalars (simulated seconds, bytes, losses). All metrics are
  /// lower-is-better; colsgd_report flags `new > old * (1 + threshold)`.
  std::map<std::string, double> metrics;
  /// Per-iteration columns (same length each), e.g. "sim_time",
  /// "batch_loss", "iter_seconds", "phase_wire". Optional.
  std::map<std::string, std::vector<double>> series;
};

/// \brief One BENCH_*.json document.
struct BenchSuite {
  /// Suite name, e.g. "fig8_convergence"; the file is BENCH_<suite>.json.
  std::string suite;
  /// Suite-wide environment: git describe, cluster presets, run flags.
  std::map<std::string, std::string> env;
  std::vector<BenchResult> results;

  BenchResult* AddResult(const std::string& name) {
    results.emplace_back();
    results.back().name = name;
    return &results.back();
  }
  const BenchResult* FindResult(const std::string& name) const {
    for (const BenchResult& r : results) {
      if (r.name == name) return &r;
    }
    return nullptr;
  }
};

/// \brief Serializes the suite (deterministic layout; see header comment).
std::string BenchSuiteJson(const BenchSuite& suite);

/// \brief Writes BenchSuiteJson to `path`.
Status WriteBenchSuite(const BenchSuite& suite, const std::string& path);

/// \brief Parses a BENCH document; rejects wrong schema tags, non-numeric
/// series cells, and unknown top-level/result fields.
Result<BenchSuite> ParseBenchSuiteJson(const std::string& json);

/// \brief Reads and parses a BENCH_*.json file.
Result<BenchSuite> ReadBenchSuiteFile(const std::string& path);

/// \brief Converts recorder samples into series columns on `result`:
/// iteration, sim_time, iter_seconds, bytes, messages, bytes_master, plus
/// batch_loss / eval_loss / grad_norm when any sample has a finite value,
/// phase_<name> columns when phases were captured, and fault columns
/// (task_failures, worker_failures, checkpoints, recovery_seconds) when any
/// fired. Column presence is a deterministic function of the samples.
void AppendSampleSeries(const std::vector<TimeSeriesSample>& samples,
                        BenchResult* result);

/// \brief Fills derived metrics from the series columns (DESIGN.md §9):
/// iter_p50 / iter_p95 / iter_p99 (exact order statistics of iter_seconds,
/// linearly interpolated), bytes_per_iter, and — when batch_loss + sim_time
/// exist — target_loss and time_to_target_loss. The target is
/// `final + 0.1 * (first - final)` over 10-iteration moving averages unless
/// metrics["target_loss"] was preset by the caller; time_to_target_loss is
/// omitted when the smoothed loss never reaches the target (colsgd_report
/// then flags the missing metric).
void ComputeDerivedStats(BenchResult* result);

/// \brief `git describe --always --dirty` captured at configure time, or
/// "unknown" outside a git checkout.
std::string GitDescribe();

/// \brief Serializes a MetricsRegistry as JSON (counters as integers,
/// histograms with count/sum/min/max/mean/p50/p95/p99 and the raw buckets).
/// Deterministic: name-sorted, same number formatting as the bench writer.
std::string MetricsRegistryJson(const MetricsRegistry& registry);

}  // namespace colsgd

#endif  // COLSGD_OBS_BENCH_BENCH_RESULT_H_
