// Minimal JSON value model for the benchmark telemetry layer — the same
// no-external-deps style as obs/export + obs/trace_reader, but generic: the
// BENCH_*.json schema nests objects/arrays two levels deep, which the flat
// trace_event reader cannot represent.
//
// Serialization is deterministic: object keys are emitted in the order they
// were inserted (the bench writer inserts them sorted), numbers use the
// shortest representation that round-trips the double exactly, and NaN /
// infinity serialize as null (and parse back as NaN). Two BenchSuites with
// identical contents therefore produce byte-identical files — the
// writer → reader → writer golden test in tests/obs_bench_test.cc pins this.
#ifndef COLSGD_OBS_BENCH_JSON_H_
#define COLSGD_OBS_BENCH_JSON_H_

#include <string>
#include <utility>
#include <vector>

#include "common/result.h"

namespace colsgd {

/// \brief One parsed JSON value. Objects keep insertion order (a vector of
/// pairs, not a map) so serialization is order-preserving.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;  // null
  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b) {
    JsonValue v;
    v.kind_ = Kind::kBool;
    v.bool_ = b;
    return v;
  }
  static JsonValue Number(double d) {
    JsonValue v;
    v.kind_ = Kind::kNumber;
    v.number_ = d;
    return v;
  }
  static JsonValue String(std::string s) {
    JsonValue v;
    v.kind_ = Kind::kString;
    v.string_ = std::move(s);
    return v;
  }
  static JsonValue Array() {
    JsonValue v;
    v.kind_ = Kind::kArray;
    return v;
  }
  static JsonValue Object() {
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool bool_value() const { return bool_; }
  /// \brief Number value; a JSON null reads back as NaN (the writer encodes
  /// NaN as null).
  double number_value() const;
  const std::string& string_value() const { return string_; }
  const std::vector<JsonValue>& array() const { return array_; }
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  void Append(JsonValue v) { array_.push_back(std::move(v)); }
  void Set(std::string key, JsonValue v) {
    members_.emplace_back(std::move(key), std::move(v));
  }

  /// \brief Looks up an object member; nullptr when absent (or not an
  /// object).
  const JsonValue* Find(const std::string& key) const;

  /// \brief Serializes compactly (no whitespace). For the bench files use
  /// the layout-aware writer in bench_result.cc instead.
  std::string Serialize() const;
  void SerializeTo(std::string* out) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// \brief Appends the shortest decimal string that parses back to exactly
/// `v` ("%.15g", widened to "%.17g" when needed). Non-finite values append
/// "null".
void AppendJsonNumber(std::string* out, double v);

/// \brief Appends `s` as a quoted JSON string with ", \, and control
/// characters escaped.
void AppendJsonString(std::string* out, const std::string& s);

/// \brief Parses a JSON document (objects, arrays, strings, numbers, bools,
/// null; nesting depth capped). Trailing garbage after the document is an
/// error.
Result<JsonValue> ParseJson(const std::string& text);

}  // namespace colsgd

#endif  // COLSGD_OBS_BENCH_JSON_H_
