#include "obs/bench/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace colsgd {

namespace {

constexpr const char* kInk = " .:-=+*#%@";

std::string FormatValue(double value) {
  if (!std::isfinite(value)) return "nan";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

void CompareResult(const BenchResult& old_result, const BenchResult* fresh,
                   const ReportOptions& options, SuiteReport* report) {
  for (const auto& [metric, old_value] : old_result.metrics) {
    MetricDelta row;
    row.result = old_result.name;
    row.metric = metric;
    row.old_value = old_value;
    row.threshold = ThresholdFor(options, metric);
    if (!std::isfinite(old_value)) {
      report->notes.push_back("skipped " + old_result.name + "/" + metric +
                              ": baseline value is not finite");
      continue;
    }
    const double* fresh_value = nullptr;
    if (fresh != nullptr) {
      const auto it = fresh->metrics.find(metric);
      if (it != fresh->metrics.end() && std::isfinite(it->second)) {
        fresh_value = &it->second;
      }
    }
    if (fresh_value == nullptr) {
      row.missing = true;
      row.regression = true;
      row.new_value = std::numeric_limits<double>::quiet_NaN();
    } else {
      row.new_value = *fresh_value;
      const double delta = row.new_value - row.old_value;
      row.regression = row.new_value >
                           row.old_value * (1.0 + row.threshold) &&
                       delta > options.abs_epsilon;
    }
    report->regression |= row.regression;
    report->rows.push_back(std::move(row));
  }
  if (fresh == nullptr) return;
  for (const auto& [metric, value] : fresh->metrics) {
    if (old_result.metrics.count(metric) == 0) {
      report->notes.push_back("new metric " + old_result.name + "/" + metric +
                              " = " + FormatValue(value) +
                              " (no baseline, not gated)");
    }
  }
}

}  // namespace

double ThresholdFor(const ReportOptions& options, const std::string& metric) {
  for (const ThresholdRule& rule : options.rules) {
    if (metric.find(rule.substring) != std::string::npos) {
      return rule.threshold;
    }
  }
  return options.threshold;
}

SuiteReport CompareSuites(const BenchSuite& old_suite,
                          const BenchSuite& new_suite,
                          const ReportOptions& options) {
  SuiteReport report;
  for (const BenchResult& old_result : old_suite.results) {
    const BenchResult* fresh = new_suite.FindResult(old_result.name);
    if (fresh == nullptr) {
      report.notes.push_back("result " + old_result.name +
                             " missing from new suite");
    }
    CompareResult(old_result, fresh, options, &report);
  }
  for (const BenchResult& fresh : new_suite.results) {
    if (old_suite.FindResult(fresh.name) == nullptr) {
      report.notes.push_back("new result " + fresh.name +
                             " (no baseline, not gated)");
    }
  }
  return report;
}

std::string RenderSparkline(const std::vector<double>& values, size_t width) {
  if (values.empty() || width == 0) return "";
  width = std::min(width, values.size());

  // Mean-downsample into `width` columns; a column with no finite value
  // renders as a blank.
  std::vector<double> columns(width, 0.0);
  std::vector<bool> filled(width, false);
  std::vector<int> counts(width, 0);
  for (size_t i = 0; i < values.size(); ++i) {
    if (!std::isfinite(values[i])) continue;
    const size_t col = i * width / values.size();
    columns[col] += values[i];
    ++counts[col];
    filled[col] = true;
  }
  double lo = 0.0, hi = 0.0;
  bool any = false;
  for (size_t c = 0; c < width; ++c) {
    if (!filled[c]) continue;
    columns[c] /= counts[c];
    if (!any) {
      lo = hi = columns[c];
      any = true;
    } else {
      lo = std::min(lo, columns[c]);
      hi = std::max(hi, columns[c]);
    }
  }
  std::string out;
  out.reserve(width);
  const size_t levels = std::char_traits<char>::length(kInk) - 1;
  for (size_t c = 0; c < width; ++c) {
    if (!filled[c] || !any) {
      out += ' ';
      continue;
    }
    size_t level = 1;  // constant series stay at the lowest ink, not blank
    if (hi > lo) {
      level = 1 + static_cast<size_t>((columns[c] - lo) / (hi - lo) *
                                      static_cast<double>(levels - 1));
      level = std::min(level, levels);
    }
    out += kInk[level];
  }
  return out;
}

std::string RenderReport(const SuiteReport& report,
                         const BenchSuite& new_suite) {
  std::string out;
  char line[256];

  // Group rows by result, regressions first within each group.
  std::vector<const MetricDelta*> rows;
  rows.reserve(report.rows.size());
  for (const MetricDelta& row : report.rows) rows.push_back(&row);
  std::stable_sort(rows.begin(), rows.end(),
                   [](const MetricDelta* a, const MetricDelta* b) {
                     if (a->result != b->result) return false;
                     return a->regression && !b->regression;
                   });

  std::string current;
  for (const MetricDelta* row : rows) {
    if (row->result != current) {
      current = row->result;
      out += "\n== " + current + " ==\n";
      std::snprintf(line, sizeof(line), "  %-28s %12s %12s %8s %s\n",
                    "metric", "old", "new", "delta", "");
      out += line;
    }
    std::string delta = "-";
    if (!row->missing && row->old_value != 0.0) {
      std::snprintf(line, sizeof(line), "%+.1f%%",
                    (row->new_value - row->old_value) / row->old_value * 100);
      delta = line;
    }
    std::snprintf(line, sizeof(line), "  %-28s %12s %12s %8s %s\n",
                  row->metric.c_str(), FormatValue(row->old_value).c_str(),
                  row->missing ? "MISSING" : FormatValue(row->new_value).c_str(),
                  delta.c_str(),
                  row->regression
                      ? (row->missing ? "REGRESSION (missing)" : "REGRESSION")
                      : "");
    out += line;
  }

  bool header = false;
  for (const BenchResult& result : new_suite.results) {
    const auto it = result.series.find("batch_loss");
    if (it == result.series.end() || it->second.empty()) continue;
    if (!header) {
      out += "\nconvergence (batch_loss):\n";
      header = true;
    }
    std::snprintf(line, sizeof(line), "  %-28s |%s|\n", result.name.c_str(),
                  RenderSparkline(it->second, 48).c_str());
    out += line;
  }

  if (!report.notes.empty()) {
    out += "\nnotes:\n";
    for (const std::string& note : report.notes) {
      out += "  - " + note + "\n";
    }
  }
  return out;
}

}  // namespace colsgd
