// Per-iteration time-series capture for benchmark telemetry.
//
// A TimeSeriesRecorder is attached to an engine with Engine::set_recorder;
// Engine::RunIteration then deposits one TimeSeriesSample per iteration —
// simulated clocks, batch/eval loss, gradient norm, wire traffic (total and
// per node), the tracer's phase breakdown when one is also attached, and
// fault-recovery deltas. Like the Tracer (obs/trace.h), recording is
// strictly passive: every field is *read* from simulation state after the
// iteration body ran, so attaching a recorder changes no simulated timestamp
// and no trained bit (tests/obs_trace_test.cc extends the passivity pin to
// recorded runs).
//
// The samples become TrainResult::series and, through bench/bench_runner,
// the "series" block of BENCH_*.json suites (obs/bench/bench_result.h).
#ifndef COLSGD_OBS_BENCH_TIMESERIES_H_
#define COLSGD_OBS_BENCH_TIMESERIES_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "obs/trace.h"

namespace colsgd {

/// \brief One iteration's telemetry. Loss/gradient fields default to NaN
/// ("not measured"); NaN serializes as null in the bench JSON.
struct TimeSeriesSample {
  int64_t iteration = 0;
  /// Master clock at the end of the iteration (simulated seconds).
  double sim_time = 0.0;
  /// Master-clock delta of this iteration.
  double iter_seconds = 0.0;
  double batch_loss = std::numeric_limits<double>::quiet_NaN();
  /// Exact eval loss, when the trainer evaluated on this iteration.
  double eval_loss = std::numeric_limits<double>::quiet_NaN();
  /// l2 norm of the averaged mini-batch gradient (incl. regularization)
  /// applied this iteration; NaN when the engine's update path does not
  /// report one. For engines with several local updates per iteration
  /// (MLlib*), this aggregates over all of them.
  double grad_norm = std::numeric_limits<double>::quiet_NaN();

  /// Wire traffic during the iteration.
  uint64_t bytes_on_wire = 0;
  uint64_t messages = 0;
  /// bytes_sent delta per node (index = NodeId; 0 is the master).
  std::vector<uint64_t> bytes_sent_per_node;

  /// Master-clock phase breakdown (only when a Tracer was also attached).
  bool has_phases = false;
  PhaseBreakdown phases;

  /// Fault-recovery deltas of this iteration.
  int64_t task_failures = 0;
  int64_t worker_failures = 0;
  int64_t checkpoints = 0;
  /// Detection + repair seconds charged this iteration.
  double recovery_seconds = 0.0;
  /// Wire-integrity deltas of this iteration (chaos harness; DESIGN.md §10).
  int64_t messages_corrupted = 0;
  int64_t retransmits = 0;
  int64_t partition_blocked_sends = 0;
};

/// \brief Collects TimeSeriesSamples. Non-owning users (Engine) hold a raw
/// pointer; the recorder must outlive them or be detached first.
class TimeSeriesRecorder {
 public:
  void Record(TimeSeriesSample sample) {
    samples_.push_back(std::move(sample));
  }

  /// \brief Annotates the sample of `iteration` with an exact eval loss
  /// (called by RunTraining, which evaluates outside the engine). No-op when
  /// the iteration was not recorded.
  void SetEvalLoss(int64_t iteration, double eval_loss) {
    for (auto it = samples_.rbegin(); it != samples_.rend(); ++it) {
      if (it->iteration == iteration) {
        it->eval_loss = eval_loss;
        return;
      }
    }
  }

  const std::vector<TimeSeriesSample>& samples() const { return samples_; }
  void Clear() { samples_.clear(); }

 private:
  std::vector<TimeSeriesSample> samples_;
};

}  // namespace colsgd

#endif  // COLSGD_OBS_BENCH_TIMESERIES_H_
