// Regression comparison between two BENCH suites (tools/colsgd_report).
//
// CompareSuites lines up an old (baseline) and a new suite result-by-result
// and metric-by-metric. Every metric is lower-is-better by convention
// (bench_result.h), so a regression is
//
//   new > old * (1 + threshold)  &&  new - old > abs_epsilon
//
// with the threshold chosen by the first matching substring rule, else the
// global default. A result or metric present in the baseline but missing
// from the new suite also counts as a regression — a run that crashed or
// never reached its target loss must not pass the gate silently. Metrics
// only present in the new suite are reported as notes, never as failures,
// so adding telemetry does not invalidate old baselines.
#ifndef COLSGD_OBS_BENCH_REPORT_H_
#define COLSGD_OBS_BENCH_REPORT_H_

#include <string>
#include <vector>

#include "obs/bench/bench_result.h"

namespace colsgd {

/// \brief Per-metric threshold override; `substring` matches anywhere in the
/// metric name ("iter_" covers iter_p50/p95/p99). First matching rule wins.
struct ThresholdRule {
  std::string substring;
  double threshold = 0.0;
};

struct ReportOptions {
  /// Relative slack before a larger new value counts as a regression.
  double threshold = 0.10;
  /// Absolute slack: deltas at or below this never regress (guards metrics
  /// near zero, where any relative threshold is meaningless).
  double abs_epsilon = 1e-9;
  std::vector<ThresholdRule> rules;
};

/// \brief One compared metric.
struct MetricDelta {
  std::string result;  ///< BenchResult name.
  std::string metric;
  double old_value = 0.0;
  double new_value = 0.0;
  double threshold = 0.0;  ///< Threshold that applied to this metric.
  bool missing = false;    ///< Metric (or its whole result) absent in new.
  bool regression = false;
};

struct SuiteReport {
  std::vector<MetricDelta> rows;
  /// Non-failing observations: metrics/results only present in the new
  /// suite, metrics skipped because the baseline value was NaN.
  std::vector<std::string> notes;
  bool regression = false;
};

/// \brief The threshold ReportOptions assigns to `metric`.
double ThresholdFor(const ReportOptions& options, const std::string& metric);

/// \brief Compares every baseline metric against the new suite (see header
/// comment for the semantics). Row order: baseline result order, then metric
/// name order within a result.
SuiteReport CompareSuites(const BenchSuite& old_suite,
                          const BenchSuite& new_suite,
                          const ReportOptions& options);

/// \brief Downsamples `values` to `width` columns (mean per column) and maps
/// them onto " .:-=+*#%@" by min-max normalization. Non-finite values render
/// as spaces; constant series render at the lowest ink.
std::string RenderSparkline(const std::vector<double>& values, size_t width);

/// \brief Human-readable report: per-metric delta table (worst regressions
/// first within each result), the notes, and a convergence sparkline per new
/// result that carries a batch_loss series.
std::string RenderReport(const SuiteReport& report,
                         const BenchSuite& new_suite);

}  // namespace colsgd

#endif  // COLSGD_OBS_BENCH_REPORT_H_
