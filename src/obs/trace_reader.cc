#include "obs/trace_reader.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace colsgd {

uint64_t ParsedTraceEvent::ArgUint(const std::string& key,
                                   uint64_t fallback) const {
  auto it = args.find(key);
  if (it == args.end()) return fallback;
  return std::strtoull(it->second.c_str(), nullptr, 10);
}

double ParsedTraceEvent::ArgDouble(const std::string& key,
                                   double fallback) const {
  auto it = args.find(key);
  if (it == args.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool ParsedTraceEvent::ArgBool(const std::string& key, bool fallback) const {
  auto it = args.find(key);
  if (it == args.end()) return fallback;
  return it->second == "true";
}

namespace {

// Minimal recursive-descent JSON scanner over the subset the exporter emits:
// objects, arrays, strings (with \" and \\ escapes), numbers, true/false/null.
class JsonScanner {
 public:
  explicit JsonScanner(const std::string& text) : text_(text) {}

  bool failed() const { return failed_; }
  const std::string& error() const { return error_; }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' || text_[pos_] == '\r' ||
            text_[pos_] == '\t')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  char Peek() {
    SkipWs();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  void Fail(const std::string& message) {
    if (!failed_) {
      failed_ = true;
      error_ = message + " at byte " + std::to_string(pos_);
    }
  }

  std::string ParseString() {
    if (!Consume('"')) {
      Fail("expected string");
      return "";
    }
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) c = text_[pos_++];
      out.push_back(c);
    }
    if (!Consume('"')) Fail("unterminated string");
    return out;
  }

  /// \brief A scalar as its raw token: number/true/false/null text, or the
  /// unescaped contents of a string.
  std::string ParseScalarToken() {
    SkipWs();
    if (Peek() == '"') return ParseString();
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ',' || c == '}' || c == ']' || c == ' ' || c == '\n' ||
          c == '\r' || c == '\t') {
        break;
      }
      out.push_back(c);
      ++pos_;
    }
    if (out.empty()) Fail("expected scalar");
    return out;
  }

  /// \brief Parses a flat object of scalars into `out` (keys overwrite).
  void ParseFlatObject(std::map<std::string, std::string>* out) {
    if (!Consume('{')) {
      Fail("expected object");
      return;
    }
    if (Consume('}')) return;
    do {
      const std::string key = ParseString();
      if (!Consume(':')) Fail("expected ':'");
      if (failed_) return;
      (*out)[key] = ParseScalarToken();
    } while (Consume(',') && !failed_);
    if (!Consume('}')) Fail("expected '}'");
  }

  /// \brief Parses one event object: scalar fields plus an optional nested
  /// "args" object.
  void ParseEventObject(std::map<std::string, std::string>* fields,
                        std::map<std::string, std::string>* args) {
    if (!Consume('{')) {
      Fail("expected event object");
      return;
    }
    if (Consume('}')) return;
    do {
      const std::string key = ParseString();
      if (!Consume(':')) Fail("expected ':'");
      if (failed_) return;
      if (Peek() == '{') {
        if (key == "args") {
          ParseFlatObject(args);
        } else {
          std::map<std::string, std::string> ignored;
          ParseFlatObject(&ignored);
        }
      } else {
        (*fields)[key] = ParseScalarToken();
      }
    } while (Consume(',') && !failed_);
    if (!Consume('}')) Fail("expected '}'");
  }

 private:
  const std::string& text_;
  size_t pos_ = 0;
  bool failed_ = false;
  std::string error_;
};

}  // namespace

Result<ParsedTrace> ParseChromeTraceJson(const std::string& json) {
  JsonScanner scanner(json);
  ParsedTrace trace;

  if (!scanner.Consume('{')) {
    return Status::InvalidArgument("trace JSON must start with '{'");
  }
  bool saw_events = false;
  do {
    const std::string key = scanner.ParseString();
    if (scanner.failed()) break;
    if (!scanner.Consume(':')) {
      return Status::InvalidArgument("malformed trace JSON: missing ':'");
    }
    if (key != "traceEvents") {
      scanner.ParseScalarToken();  // e.g. displayTimeUnit
      continue;
    }
    saw_events = true;
    if (!scanner.Consume('[')) {
      return Status::InvalidArgument("traceEvents must be an array");
    }
    if (scanner.Consume(']')) continue;
    do {
      std::map<std::string, std::string> fields;
      std::map<std::string, std::string> args;
      scanner.ParseEventObject(&fields, &args);
      if (scanner.failed()) break;

      ParsedTraceEvent event;
      event.name = fields.count("name") ? fields["name"] : "";
      event.ph = fields.count("ph") && !fields["ph"].empty() ? fields["ph"][0]
                                                             : 'i';
      event.pid = static_cast<uint32_t>(
          std::strtoul(fields["pid"].c_str(), nullptr, 10));
      event.tid = static_cast<uint32_t>(
          std::strtoul(fields["tid"].c_str(), nullptr, 10));
      event.ts_us = std::strtod(fields["ts"].c_str(), nullptr);
      event.dur_us = std::strtod(fields["dur"].c_str(), nullptr);
      event.args = std::move(args);
      if (event.ph == 'M') {
        if (event.name == "process_name" && event.args.count("name")) {
          trace.process_names[event.pid] = event.args["name"];
        }
        continue;  // metadata events are not simulation events
      }
      trace.events.push_back(std::move(event));
    } while (scanner.Consume(',') && !scanner.failed());
    if (!scanner.Consume(']')) {
      return Status::InvalidArgument("unterminated traceEvents array");
    }
  } while (scanner.Consume(',') && !scanner.failed());

  if (scanner.failed()) {
    return Status::InvalidArgument("malformed trace JSON: " + scanner.error());
  }
  if (!saw_events) {
    return Status::InvalidArgument("trace JSON has no traceEvents array");
  }
  return trace;
}

Result<ParsedTrace> ReadChromeTraceFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IOError("cannot open trace file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseChromeTraceJson(buffer.str());
}

}  // namespace colsgd
