#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

#include "common/check.h"

namespace colsgd {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  COLSGD_CHECK(!bounds_.empty()) << "histogram needs at least one bound";
  COLSGD_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()))
      << "histogram bounds must be ascending";
  buckets_.assign(bounds_.size() + 1, 0);
}

void Histogram::Observe(double value) {
  size_t bucket = bounds_.size();  // overflow bucket
  for (size_t i = 0; i < bounds_.size(); ++i) {
    if (value <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  ++buckets_[bucket];
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

double Histogram::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double target = q * static_cast<double>(count_);
  uint64_t cumulative = 0;
  for (size_t b = 0; b < buckets_.size(); ++b) {
    if (buckets_[b] == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += buckets_[b];
    if (static_cast<double>(cumulative) < target) continue;
    // The quantile falls in bucket b. Interpolate within its value range,
    // clamping the edges to the observed extremes (the first bucket has no
    // lower bound, the overflow bucket no upper bound).
    double lo = b == 0 ? min_ : bounds_[b - 1];
    double hi = b == bounds_.size() ? max_ : bounds_[b];
    lo = std::max(lo, min_);
    hi = std::min(hi, max_);
    if (hi <= lo) return lo;
    const double frac =
        (target - before) / static_cast<double>(buckets_[b]);
    return lo + frac * (hi - lo);
  }
  return max_;
}

std::vector<double> DefaultSecondsBuckets() {
  std::vector<double> bounds;
  for (double b = 1e-6; b <= 1e3; b *= 10.0) bounds.push_back(b);
  return bounds;
}

std::vector<double> DefaultBytesBuckets() {
  std::vector<double> bounds;
  for (double b = 64.0; b <= 1.1e9; b *= 4.0) bounds.push_back(b);
  return bounds;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  return &counters_[name];
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, Histogram(std::move(bounds))).first;
  }
  return &it->second;
}

std::string MetricsRegistry::Format() const {
  std::string out;
  char line[256];
  for (const auto& [name, counter] : counters_) {
    std::snprintf(line, sizeof(line), "%-32s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(counter.value()));
    out += line;
  }
  for (const auto& [name, hist] : histograms_) {
    std::snprintf(line, sizeof(line),
                  "%-32s count=%llu mean=%.6g max=%.6g\n", name.c_str(),
                  static_cast<unsigned long long>(hist.count()), hist.mean(),
                  hist.max());
    out += line;
  }
  return out;
}

void MetricsRegistry::Clear() {
  counters_.clear();
  histograms_.clear();
}

}  // namespace colsgd
