// Counters and fixed-bucket histograms for the simulation.
//
// A MetricsRegistry aggregates what the Tracer (obs/trace.h) observes —
// message counts, bytes, FLOPs, per-iteration phase times — into compact
// summaries that ship in TrainResult and print from the tools. Everything is
// deterministic: registries iterate in name order, buckets are fixed at
// construction, and no wall-clock value is ever recorded.
//
// Metrics are instrumentation only. They never feed back into the
// simulation, so an attached registry cannot change a simulated timestamp or
// a trained weight (tests/obs_trace_test.cc holds this bit-exactly).
#ifndef COLSGD_OBS_METRICS_H_
#define COLSGD_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace colsgd {

/// \brief Monotonic counter.
class Counter {
 public:
  void Add(uint64_t delta) { value_ += delta; }
  void Increment() { ++value_; }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

/// \brief Fixed-bucket histogram: bucket i counts observations with
/// value <= bounds[i] (first matching bucket); the implicit last bucket
/// catches everything above the largest bound.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return min_; }
  double max() const { return max_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }

  /// \brief Estimated quantile `q` in [0, 1], linearly interpolated within
  /// the fixed buckets (the usual Prometheus-style histogram_quantile). The
  /// first bucket's lower edge and the overflow bucket's upper edge are
  /// taken from the observed min/max, so the estimate is always inside
  /// [min(), max()]. Returns 0 for an empty histogram.
  double Quantile(double q) const;
  double p50() const { return Quantile(0.50); }
  double p95() const { return Quantile(0.95); }
  double p99() const { return Quantile(0.99); }
  const std::vector<double>& bounds() const { return bounds_; }
  /// \brief Bucket counts; size bounds().size() + 1 (overflow bucket last).
  const std::vector<uint64_t>& buckets() const { return buckets_; }

 private:
  std::vector<double> bounds_;
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// \brief Exponential bucket bounds for simulated-seconds histograms
/// (1 us ... 1000 s).
std::vector<double> DefaultSecondsBuckets();
/// \brief Exponential bucket bounds for message-size histograms
/// (64 B ... 1 GB).
std::vector<double> DefaultBytesBuckets();

/// \brief Named counters + histograms with deterministic (sorted) iteration
/// order and stable pointers (callers may cache GetCounter results).
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name);
  /// \brief Returns the histogram `name`, creating it with `bounds` on first
  /// use (later calls ignore `bounds`).
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> bounds = DefaultSecondsBuckets());

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  /// \brief Human-readable dump: one `name value` line per counter, one
  /// `name count/mean/max` line per histogram, sorted by name.
  std::string Format() const;

  void Clear();

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace colsgd

#endif  // COLSGD_OBS_METRICS_H_
