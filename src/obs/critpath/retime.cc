#include "obs/critpath/retime.h"

#include <algorithm>
#include <map>

namespace colsgd {
namespace {

double ScaleFor(const std::vector<double>& scales, uint32_t node) {
  return node < scales.size() ? scales[node] : 1.0;
}

class Replayer {
 public:
  Replayer(const CritDag& dag, const WhatIf& w) : dag_(dag), w_(w) {
    c_.assign(dag.num_nodes, 0.0);
    out_free_.assign(dag.num_nodes, 0.0);
    in_free_.assign(dag.num_nodes, 0.0);
    msg_avail_.assign(dag.ops.size(), 0.0);
    stamp_vals_.reserve(64);
    for (const CritKeyedAvail& k : dag.keyed) {
      keyed_msg_[{k.group, k.tick}] = k.msg;
    }
  }

  RetimeResult Run() {
    for (size_t i = 0; i < dag_.ops.size(); ++i) {
      const CritOp& op = dag_.ops[i];
      switch (op.kind) {
        case CritOpKind::kCompute:
          c_[op.node] += op.seconds * ScaleFor(w_.compute_scale, op.node);
          break;
        case CritOpKind::kMem:
          c_[op.node] += op.seconds * w_.mem_scale;
          break;
        case CritOpKind::kLocal:
          c_[op.node] += op.seconds * ScaleFor(w_.local_scale, op.node);
          break;
        case CritOpKind::kStraggler:
          c_[op.node] += op.seconds * ScaleFor(w_.straggler_scale, op.node);
          break;
        case CritOpKind::kMsg:
          ReplaySend(i, op);
          break;
        case CritOpKind::kSet: {
          double t = c_[op.node];
          for (const CritTerm& term : op.terms) {
            t = std::max(t, Resolve(term));
          }
          c_[op.node] = t;
          break;
        }
        case CritOpKind::kBarrier: {
          double t = 0.0;
          for (double v : c_) t = std::max(t, v);
          std::fill(c_.begin(), c_.end(), t);
          break;
        }
        case CritOpKind::kReset:
          std::fill(c_.begin(), c_.end(), 0.0);
          break;
        case CritOpKind::kStamp:
          stamp_vals_.push_back(c_[op.node]);
          break;
      }
    }
    RetimeResult result;
    result.final_clocks = c_;
    for (double v : c_) result.makespan = std::max(result.makespan, v);
    return result;
  }

 private:
  double Resolve(const CritTerm& term) const {
    double base;
    switch (term.kind) {
      case CritCauseKind::kMsg:
        base = term.ref >= 0 ? msg_avail_[static_cast<size_t>(term.ref)]
                             : term.value;
        break;
      case CritCauseKind::kClock:
        base = c_[static_cast<size_t>(term.ref)];
        break;
      case CritCauseKind::kStamp:
        base = term.ref >= 0 &&
                       static_cast<size_t>(term.ref) < stamp_vals_.size()
                   ? stamp_vals_[static_cast<size_t>(term.ref)]
                   : term.value;
        break;
      case CritCauseKind::kGate: {
        const auto it = keyed_msg_.find({term.ref, term.ref2 - w_.slack_delta});
        base = it != keyed_msg_.end() && it->second >= 0
                   ? msg_avail_[static_cast<size_t>(it->second)]
                   : 0.0;  // pre-history tick: no constraint
        break;
      }
      case CritCauseKind::kAbs:
      default:
        base = term.value;  // anchored: external events keep their time
        break;
    }
    double add = term.add_seconds;
    if (term.add_node >= 0) {
      add *= ScaleFor(w_.compute_scale, static_cast<uint32_t>(term.add_node));
    }
    return base + add;
  }

  void ReplaySend(size_t idx, const CritOp& op) {
    double sender;
    if (op.sender_is_clock) {
      sender = c_[op.node];
    } else if (!op.terms.empty()) {
      sender = 0.0;
      for (const CritTerm& term : op.terms) {
        sender = std::max(sender, Resolve(term));
      }
      double tail = op.tail_seconds;
      if (op.tail_node >= 0) {
        tail *=
            ScaleFor(w_.compute_scale, static_cast<uint32_t>(op.tail_node));
      }
      sender += tail;
    } else {
      sender = op.sender_time;  // unannotated exogenous send: anchored
    }
    // SimNetwork::Send arithmetic under the scaled network.
    const double wire = static_cast<double>(op.bytes) /
                        (dag_.net_bandwidth * w_.bandwidth_scale);
    const double overhead = dag_.net_overhead * w_.overhead_scale;
    const double latency = dag_.net_latency * w_.latency_scale;
    const double start = std::max(out_free_[op.node], sender);
    const double tx_done = start + overhead + wire;
    out_free_[op.node] = tx_done;
    const double arrival = tx_done + latency;
    double rx_done;
    if (op.control) {
      rx_done = arrival;
    } else {
      const double rx_start = std::max(in_free_[op.to], arrival - wire);
      rx_done = std::max(arrival, rx_start + wire);
      in_free_[op.to] = rx_done;
    }
    // Receiver-side sweep (deserialization) rides along, mem-scaled.
    msg_avail_[idx] = rx_done + (op.avail - op.rx_done) * w_.mem_scale;
  }

  const CritDag& dag_;
  const WhatIf& w_;
  std::vector<double> c_;
  std::vector<double> out_free_;
  std::vector<double> in_free_;
  std::vector<double> msg_avail_;
  std::vector<double> stamp_vals_;
  std::map<std::pair<int64_t, int64_t>, int64_t> keyed_msg_;
};

}  // namespace

Result<RetimeResult> Retime(const CritDag& dag, const WhatIf& what_if) {
  if (what_if.slack_delta < 0) {
    return Status::InvalidArgument(
        "retime: slack_delta must be >= 0 (a tighter slack would gate on "
        "broadcasts recorded later in the log)");
  }
  if (dag.num_nodes == 0) {
    return Status::InvalidArgument("retime: empty DAG");
  }
  Replayer replayer(dag, what_if);
  return replayer.Run();
}

}  // namespace colsgd
