// What-if retimer (DESIGN.md §16): replays a recorded CritDag op log in
// program order under hypothetical changes — per-node compute/straggler/
// local scaling, NIC bandwidth / latency / overhead scaling, and an SSP
// slack bump — and predicts the resulting makespan. Replay preserves the
// recorded causal structure (which message a wait binds on is re-resolved
// through max semantics, so a *different* reply becoming the bottleneck is
// priced correctly); only decisions the engine would make differently under
// the new timing (e.g. which SSP records drain together) are approximated.
#ifndef COLSGD_OBS_CRITPATH_RETIME_H_
#define COLSGD_OBS_CRITPATH_RETIME_H_

#include <vector>

#include "common/result.h"
#include "obs/critpath/critpath.h"

namespace colsgd {

/// \brief A hypothetical change of the cluster. Empty scale vectors mean
/// "1.0 for every node"; a shorter vector is padded with 1.0.
struct WhatIf {
  std::vector<double> compute_scale;    // per node (0 = free compute)
  std::vector<double> straggler_scale;  // per node (0 = straggler removed)
  std::vector<double> local_scale;      // per node (sched/timeout/disk)
  double mem_scale = 1.0;
  double bandwidth_scale = 1.0;  // 2.0 = NICs twice as fast
  double latency_scale = 1.0;
  double overhead_scale = 1.0;
  int64_t slack_delta = 0;  // SSP slack bump (>= 0): gates read tick - delta
};

struct RetimeResult {
  double makespan = 0.0;
  std::vector<double> final_clocks;
};

/// \brief Replays `dag` under `what_if`. Errors on slack_delta < 0 (a
/// tighter slack would need broadcasts that post-date the gate in the log).
Result<RetimeResult> Retime(const CritDag& dag, const WhatIf& what_if);

}  // namespace colsgd

#endif  // COLSGD_OBS_CRITPATH_RETIME_H_
