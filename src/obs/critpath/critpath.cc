#include "obs/critpath/critpath.h"

#include <algorithm>

namespace colsgd {

void CritPathRecorder::Attach(const double* clocks, size_t num_nodes,
                              int num_workers, double latency,
                              double bandwidth, double overhead,
                              uint64_t control_bytes) {
  now_.assign(clocks, clocks + num_nodes);
  num_workers_ = num_workers;
  latency_ = latency;
  bandwidth_ = bandwidth;
  overhead_ = overhead;
  control_bytes_ = control_bytes;
  ops_.clear();
  keyed_.clear();
  stamps_.clear();
  avail_of_.assign(num_nodes, {});
  last_out_.assign(num_nodes, -1);
  last_in_.assign(num_nodes, -1);
  last_change_.assign(num_nodes, -1);
  last_msg_ = -1;
  pending_advance_.active = false;
  pending_gate_.active = false;
  pending_set_.active = false;
  pending_send_.active = false;
}

void CritPathRecorder::OnAdvance(uint32_t node, double seconds,
                                 CritOpKind kind, uint64_t flops) {
  CritOp op;
  op.kind = kind;
  op.node = node;
  op.seconds = seconds;
  op.flops = flops;
  op.prev = now_[node];
  now_[node] += seconds;
  op.t = now_[node];
  last_change_[node] = static_cast<int64_t>(ops_.size());
  ops_.push_back(std::move(op));
}

CritTerm CritPathRecorder::Classify(uint32_t node, double t) const {
  const auto& avail = avail_of_[node];
  const auto it = avail.find(Bits(t));
  if (it != avail.end()) {
    CritTerm term;
    term.kind = CritCauseKind::kMsg;
    term.ref = it->second;
    term.value = t;
    return term;
  }
  const uint64_t bits = Bits(t);
  // Among nodes holding this exact value, cite the one that acquired it
  // first — causes then always point backward in the log (see last_change_).
  int64_t origin = -1;
  int64_t origin_change = 0;
  for (uint32_t n = 0; n < now_.size(); ++n) {
    if (n != node && Bits(now_[n]) == bits &&
        (origin < 0 || last_change_[n] < origin_change)) {
      origin = n;
      origin_change = last_change_[n];
    }
  }
  if (origin >= 0) {
    CritTerm term;
    term.kind = CritCauseKind::kClock;
    term.ref = origin;
    term.value = t;
    return term;
  }
  CritTerm term;
  term.kind = CritCauseKind::kAbs;
  term.value = t;
  return term;
}

void CritPathRecorder::EmitSet(uint32_t node, double t) {
  CritOp op;
  op.kind = CritOpKind::kSet;
  op.node = node;
  op.prev = now_[node];
  op.t = t;
  op.terms.push_back(Classify(node, t));
  now_[node] = t;
  last_change_[node] = static_cast<int64_t>(ops_.size());
  ops_.push_back(std::move(op));
}

void CritPathRecorder::OnSetClock(uint32_t node, double t) {
  if (pending_advance_.active && pending_advance_.node == node) {
    const PendingAdvance p = pending_advance_;
    pending_advance_.active = false;
    // Verify the engine's left-associated arithmetic bit-for-bit; on any
    // mismatch fall through to a classified set so the log stays exact.
    const double predicted =
        (now_[node] + p.compute_seconds) + p.straggler_seconds;
    if (Bits(predicted) == Bits(t)) {
      OnAdvance(node, p.compute_seconds, CritOpKind::kCompute, p.flops);
      if (p.straggler_seconds != 0.0) {
        OnAdvance(node, p.straggler_seconds, CritOpKind::kStraggler, 0);
      }
      // Replay the exact association: (clock + compute) + straggler.
      now_[node] = t;
      if (!ops_.empty()) ops_.back().t = t;
      return;
    }
  }
  if (pending_gate_.active && pending_gate_.node == node) {
    const PendingGate p = pending_gate_;
    pending_gate_.active = false;
    CritOp op;
    op.kind = CritOpKind::kSet;
    op.node = node;
    op.prev = now_[node];
    op.t = t;
    CritTerm term;
    term.kind = CritCauseKind::kGate;
    term.ref = p.group;
    term.ref2 = p.tick;
    term.value = p.value;
    op.terms.push_back(term);
    now_[node] = t;
    last_change_[node] = static_cast<int64_t>(ops_.size());
    ops_.push_back(std::move(op));
    return;
  }
  if (pending_set_.active && pending_set_.node == node) {
    PendingSet p = std::move(pending_set_);
    pending_set_.active = false;
    CritOp op;
    op.kind = CritOpKind::kSet;
    op.node = node;
    op.prev = now_[node];
    op.t = t;
    op.terms = std::move(p.terms);
    now_[node] = t;
    last_change_[node] = static_cast<int64_t>(ops_.size());
    ops_.push_back(std::move(op));
    return;
  }
  if (Bits(t) == Bits(now_[node])) return;  // no-op set
  EmitSet(node, t);
}

void CritPathRecorder::OnSyncClock(uint32_t node, double t) {
  if (t <= now_[node]) return;  // no-op under max semantics
  EmitSet(node, t);
}

void CritPathRecorder::OnBarrier(double t) {
  CritOp op;
  op.kind = CritOpKind::kBarrier;
  op.t = t;
  uint32_t top = 0;
  for (uint32_t n = 1; n < now_.size(); ++n) {
    if (now_[n] > now_[top]) top = n;
  }
  op.node = top;
  for (uint32_t n = 0; n < now_.size(); ++n) {
    if (Bits(now_[n]) != Bits(t)) {
      last_change_[n] = static_cast<int64_t>(ops_.size());
    }
    now_[n] = t;
  }
  ops_.push_back(std::move(op));
}

void CritPathRecorder::OnSend(uint32_t from, uint32_t to, uint64_t bytes,
                              bool control, double sender_time,
                              double tx_start, double tx_done, double rx_start,
                              double rx_done) {
  CritOp op;
  op.kind = CritOpKind::kMsg;
  op.node = from;
  op.to = to;
  op.bytes = bytes;
  op.control = control;
  op.sender_time = sender_time;
  op.tx_start = tx_start;
  op.tx_done = tx_done;
  op.rx_start = rx_start;
  op.rx_done = rx_done;
  op.avail = rx_done;
  op.sender_is_clock = Bits(sender_time) == Bits(now_[from]);
  // Queueing state: tx_start > sender_time means the out NIC was busy with
  // the previous send from this node; for bulk receives, rx_start above
  // (arrival - wire) means the in NIC was still draining the previous one.
  if (tx_start > sender_time) op.prev_out = last_out_[from];
  if (!control) {
    const double wire = static_cast<double>(bytes) / bandwidth_;
    const double arrival = tx_done + latency_;
    if (rx_start > arrival - wire) op.prev_in = last_in_[to];
  }
  if (pending_send_.active) {
    op.terms = std::move(pending_send_.terms);
    op.tail_seconds = pending_send_.tail_seconds;
    op.tail_node = pending_send_.tail_node;
    pending_send_.active = false;
  }
  const int64_t idx = static_cast<int64_t>(ops_.size());
  last_out_[from] = idx;
  if (!control) last_in_[to] = idx;
  last_msg_ = idx;
  avail_of_[to][Bits(rx_done)] = idx;
  ops_.push_back(std::move(op));
}

void CritPathRecorder::OnReset() {
  CritOp op;
  op.kind = CritOpKind::kReset;
  std::fill(last_change_.begin(), last_change_.end(),
            static_cast<int64_t>(ops_.size()));
  ops_.push_back(std::move(op));
  std::fill(now_.begin(), now_.end(), 0.0);
}

void CritPathRecorder::AnnotateAdvance(uint32_t node, double compute_seconds,
                                       uint64_t flops,
                                       double straggler_seconds) {
  pending_advance_ = {true, node, compute_seconds, flops, straggler_seconds};
}

void CritPathRecorder::AnnotateGate(uint32_t node, int64_t group, int64_t tick,
                                    double gate_value) {
  pending_gate_ = {true, node, group, tick, gate_value};
}

void CritPathRecorder::AnnotateSet(uint32_t node,
                                   std::vector<CritTerm> terms) {
  pending_set_.active = true;
  pending_set_.node = node;
  pending_set_.terms = std::move(terms);
}

void CritPathRecorder::AnnotateNextSend(std::vector<CritTerm> terms,
                                        double tail_seconds,
                                        int32_t tail_node) {
  pending_send_.active = true;
  pending_send_.terms = std::move(terms);
  pending_send_.tail_seconds = tail_seconds;
  pending_send_.tail_node = tail_node;
}

int64_t CritPathRecorder::StampClock(uint32_t node) {
  CritOp op;
  op.kind = CritOpKind::kStamp;
  op.node = node;
  op.t = now_[node];
  stamps_.push_back(ops_.size());
  ops_.push_back(std::move(op));
  return static_cast<int64_t>(stamps_.size()) - 1;
}

void CritPathRecorder::SetLastMsgAvail(double avail) {
  if (last_msg_ < 0) return;
  CritOp& op = ops_[static_cast<size_t>(last_msg_)];
  op.avail = avail;
  avail_of_[op.to][Bits(avail)] = last_msg_;
}

void CritPathRecorder::KeyAvail(int64_t group, int64_t tick, int64_t msg) {
  keyed_.push_back({group, tick, msg});
}

CritTerm CritPathRecorder::MsgTerm(int64_t msg, double add_seconds,
                                   int32_t add_node) const {
  CritTerm term;
  term.kind = CritCauseKind::kMsg;
  term.ref = msg;
  term.value = msg >= 0 ? ops_[static_cast<size_t>(msg)].avail : 0.0;
  term.add_seconds = add_seconds;
  term.add_node = add_node;
  return term;
}

CritTerm CritPathRecorder::ClockTerm(uint32_t node) const {
  CritTerm term;
  term.kind = CritCauseKind::kClock;
  term.ref = node;
  term.value = now_[node];
  return term;
}

CritTerm CritPathRecorder::StampTerm(int64_t stamp, double add_seconds,
                                     int32_t add_node) const {
  CritTerm term;
  term.kind = CritCauseKind::kStamp;
  term.ref = stamp;
  const CritOp& op = ops_[stamps_[static_cast<size_t>(stamp)]];
  term.ref2 = op.node;
  term.value = op.t;
  term.add_seconds = add_seconds;
  term.add_node = add_node;
  return term;
}

CritDag CritPathRecorder::Snapshot() const {
  CritDag dag;
  dag.num_nodes = static_cast<uint32_t>(now_.size());
  dag.num_workers = num_workers_;
  dag.net_latency = latency_;
  dag.net_bandwidth = bandwidth_;
  dag.net_overhead = overhead_;
  dag.control_bytes = control_bytes_;
  dag.ops = ops_;
  dag.keyed = keyed_;
  dag.final_clocks = now_;
  return dag;
}

}  // namespace colsgd
