#include "obs/critpath/dag_json.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/crc32c.h"

namespace colsgd {
namespace {

JsonValue Num(double v) { return JsonValue::Number(v); }

JsonValue TermJson(const CritTerm& term) {
  JsonValue t = JsonValue::Array();
  t.Append(Num(static_cast<double>(term.kind)));
  t.Append(Num(static_cast<double>(term.ref)));
  t.Append(Num(static_cast<double>(term.ref2)));
  t.Append(Num(term.value));
  t.Append(Num(term.add_seconds));
  t.Append(Num(static_cast<double>(term.add_node)));
  return t;
}

Result<CritTerm> TermFromJson(const JsonValue& json) {
  const auto& a = json.array();
  if (!json.is_array() || a.size() != 6) {
    return Status::InvalidArgument("critdag: malformed term");
  }
  CritTerm term;
  term.kind = static_cast<CritCauseKind>(
      static_cast<int>(a[0].number_value()));
  term.ref = static_cast<int64_t>(a[1].number_value());
  term.ref2 = static_cast<int64_t>(a[2].number_value());
  term.value = a[3].number_value();
  term.add_seconds = a[4].number_value();
  term.add_node = static_cast<int32_t>(a[5].number_value());
  return term;
}

JsonValue TermsJson(const std::vector<CritTerm>& terms) {
  JsonValue array = JsonValue::Array();
  for (const CritTerm& term : terms) array.Append(TermJson(term));
  return array;
}

JsonValue OpJson(const CritOp& op) {
  JsonValue a = JsonValue::Array();
  a.Append(Num(static_cast<double>(op.kind)));
  switch (op.kind) {
    case CritOpKind::kCompute:
    case CritOpKind::kMem:
    case CritOpKind::kLocal:
    case CritOpKind::kStraggler:
      a.Append(Num(op.node));
      a.Append(Num(op.seconds));
      a.Append(Num(static_cast<double>(op.flops)));
      a.Append(Num(op.t));
      break;
    case CritOpKind::kMsg:
      a.Append(Num(op.node));
      a.Append(Num(op.to));
      a.Append(Num(static_cast<double>(op.bytes)));
      a.Append(Num(op.control ? 1 : 0));
      a.Append(Num(op.sender_is_clock ? 1 : 0));
      a.Append(Num(op.sender_time));
      a.Append(Num(op.tx_start));
      a.Append(Num(op.tx_done));
      a.Append(Num(op.rx_start));
      a.Append(Num(op.rx_done));
      a.Append(Num(op.avail));
      a.Append(Num(static_cast<double>(op.prev_out)));
      a.Append(Num(static_cast<double>(op.prev_in)));
      a.Append(Num(op.tail_seconds));
      a.Append(Num(static_cast<double>(op.tail_node)));
      a.Append(TermsJson(op.terms));
      break;
    case CritOpKind::kSet:
      a.Append(Num(op.node));
      a.Append(Num(op.t));
      a.Append(Num(op.prev));
      a.Append(TermsJson(op.terms));
      break;
    case CritOpKind::kBarrier:
      a.Append(Num(op.node));
      a.Append(Num(op.t));
      break;
    case CritOpKind::kReset:
      break;
    case CritOpKind::kStamp:
      a.Append(Num(op.node));
      a.Append(Num(op.t));
      break;
  }
  return a;
}

Result<CritOp> OpFromJson(const JsonValue& json) {
  if (!json.is_array() || json.array().empty()) {
    return Status::InvalidArgument("critdag: malformed op");
  }
  const auto& a = json.array();
  auto need = [&](size_t n) { return a.size() >= n; };
  CritOp op;
  op.kind = static_cast<CritOpKind>(static_cast<int>(a[0].number_value()));
  switch (op.kind) {
    case CritOpKind::kCompute:
    case CritOpKind::kMem:
    case CritOpKind::kLocal:
    case CritOpKind::kStraggler:
      if (!need(5)) return Status::InvalidArgument("critdag: short advance");
      op.node = static_cast<uint32_t>(a[1].number_value());
      op.seconds = a[2].number_value();
      op.flops = static_cast<uint64_t>(a[3].number_value());
      op.t = a[4].number_value();
      break;
    case CritOpKind::kMsg: {
      if (!need(17)) return Status::InvalidArgument("critdag: short msg");
      op.node = static_cast<uint32_t>(a[1].number_value());
      op.to = static_cast<uint32_t>(a[2].number_value());
      op.bytes = static_cast<uint64_t>(a[3].number_value());
      op.control = a[4].number_value() != 0;
      op.sender_is_clock = a[5].number_value() != 0;
      op.sender_time = a[6].number_value();
      op.tx_start = a[7].number_value();
      op.tx_done = a[8].number_value();
      op.rx_start = a[9].number_value();
      op.rx_done = a[10].number_value();
      op.avail = a[11].number_value();
      op.prev_out = static_cast<int64_t>(a[12].number_value());
      op.prev_in = static_cast<int64_t>(a[13].number_value());
      op.tail_seconds = a[14].number_value();
      op.tail_node = static_cast<int32_t>(a[15].number_value());
      for (const JsonValue& t : a[16].array()) {
        Result<CritTerm> term = TermFromJson(t);
        if (!term.ok()) return term.status();
        op.terms.push_back(*term);
      }
      break;
    }
    case CritOpKind::kSet: {
      if (!need(5)) return Status::InvalidArgument("critdag: short set");
      op.node = static_cast<uint32_t>(a[1].number_value());
      op.t = a[2].number_value();
      op.prev = a[3].number_value();
      for (const JsonValue& t : a[4].array()) {
        Result<CritTerm> term = TermFromJson(t);
        if (!term.ok()) return term.status();
        op.terms.push_back(*term);
      }
      break;
    }
    case CritOpKind::kBarrier:
      if (!need(3)) return Status::InvalidArgument("critdag: short barrier");
      op.node = static_cast<uint32_t>(a[1].number_value());
      op.t = a[2].number_value();
      break;
    case CritOpKind::kReset:
      break;
    case CritOpKind::kStamp:
      if (!need(3)) return Status::InvalidArgument("critdag: short stamp");
      op.node = static_cast<uint32_t>(a[1].number_value());
      op.t = a[2].number_value();
      break;
    default:
      return Status::InvalidArgument("critdag: unknown op kind");
  }
  return op;
}

}  // namespace

JsonValue CritDagJson(const CritDag& dag) {
  JsonValue doc = JsonValue::Object();
  doc.Set("schema", JsonValue::String(kCritDagSchema));
  doc.Set("num_nodes", Num(dag.num_nodes));
  doc.Set("num_workers", Num(dag.num_workers));
  JsonValue net = JsonValue::Object();
  net.Set("latency", Num(dag.net_latency));
  net.Set("bandwidth", Num(dag.net_bandwidth));
  net.Set("overhead", Num(dag.net_overhead));
  net.Set("control_bytes", Num(static_cast<double>(dag.control_bytes)));
  doc.Set("net", std::move(net));
  JsonValue clocks = JsonValue::Array();
  for (double c : dag.final_clocks) clocks.Append(Num(c));
  doc.Set("final_clocks", std::move(clocks));
  JsonValue keyed = JsonValue::Array();
  for (const CritKeyedAvail& k : dag.keyed) {
    JsonValue row = JsonValue::Array();
    row.Append(Num(static_cast<double>(k.group)));
    row.Append(Num(static_cast<double>(k.tick)));
    row.Append(Num(static_cast<double>(k.msg)));
    keyed.Append(std::move(row));
  }
  doc.Set("keyed", std::move(keyed));
  JsonValue ops = JsonValue::Array();
  for (const CritOp& op : dag.ops) ops.Append(OpJson(op));
  doc.Set("ops", std::move(ops));
  return doc;
}

Result<CritDag> CritDagFromJson(const JsonValue& json) {
  const JsonValue* schema = json.Find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->string_value() != kCritDagSchema) {
    return Status::InvalidArgument("critdag: missing or unknown schema");
  }
  CritDag dag;
  const JsonValue* num_nodes = json.Find("num_nodes");
  const JsonValue* num_workers = json.Find("num_workers");
  const JsonValue* net = json.Find("net");
  const JsonValue* clocks = json.Find("final_clocks");
  const JsonValue* keyed = json.Find("keyed");
  const JsonValue* ops = json.Find("ops");
  if (num_nodes == nullptr || num_workers == nullptr || net == nullptr ||
      clocks == nullptr || keyed == nullptr || ops == nullptr) {
    return Status::InvalidArgument("critdag: missing required field");
  }
  dag.num_nodes = static_cast<uint32_t>(num_nodes->number_value());
  dag.num_workers = static_cast<int32_t>(num_workers->number_value());
  const JsonValue* latency = net->Find("latency");
  const JsonValue* bandwidth = net->Find("bandwidth");
  const JsonValue* overhead = net->Find("overhead");
  const JsonValue* control = net->Find("control_bytes");
  if (latency == nullptr || bandwidth == nullptr || overhead == nullptr ||
      control == nullptr) {
    return Status::InvalidArgument("critdag: malformed net block");
  }
  dag.net_latency = latency->number_value();
  dag.net_bandwidth = bandwidth->number_value();
  dag.net_overhead = overhead->number_value();
  dag.control_bytes = static_cast<uint64_t>(control->number_value());
  for (const JsonValue& c : clocks->array()) {
    dag.final_clocks.push_back(c.number_value());
  }
  if (dag.final_clocks.size() != dag.num_nodes) {
    return Status::InvalidArgument("critdag: final_clocks/num_nodes mismatch");
  }
  for (const JsonValue& row : keyed->array()) {
    const auto& a = row.array();
    if (!row.is_array() || a.size() != 3) {
      return Status::InvalidArgument("critdag: malformed keyed row");
    }
    dag.keyed.push_back({static_cast<int64_t>(a[0].number_value()),
                         static_cast<int64_t>(a[1].number_value()),
                         static_cast<int64_t>(a[2].number_value())});
  }
  dag.ops.reserve(ops->array().size());
  for (const JsonValue& row : ops->array()) {
    Result<CritOp> op = OpFromJson(row);
    if (!op.ok()) return op.status();
    dag.ops.push_back(*std::move(op));
  }
  return dag;
}

Status WriteCritDagFile(const CritDag& dag, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  out << CritDagJson(dag).Serialize() << "\n";
  out.close();
  if (!out) return Status::IOError("error writing " + path);
  return Status::OK();
}

Result<CritDag> ReadCritDagFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  Result<JsonValue> json = ParseJson(buffer.str());
  if (!json.ok()) return json.status();
  return CritDagFromJson(*json);
}

uint32_t CritDagFingerprint(const CritDag& dag) {
  const std::string text = CritDagJson(dag).Serialize();
  return Crc32c(text.data(), text.size());
}

JsonValue CritPathJson(const CritDag& dag, const CritPathResult& result,
                       int topk) {
  JsonValue doc = JsonValue::Object();
  doc.Set("schema", JsonValue::String(kCritPathSchema));
  char fp[16];
  std::snprintf(fp, sizeof(fp), "%08x", CritDagFingerprint(dag));
  doc.Set("fingerprint", JsonValue::String(fp));
  doc.Set("makespan", Num(result.makespan));
  doc.Set("makespan_node", Num(result.makespan_node));
  doc.Set("path_length", Num(result.PathLength()));
  doc.Set("path_steps", Num(static_cast<double>(result.steps.size())));
  doc.Set("exact_misses", Num(static_cast<double>(result.exact_misses)));
  JsonValue blame = JsonValue::Array();
  for (const auto& [key, seconds] : result.blame) {
    JsonValue row = JsonValue::Object();
    row.Set("kind", JsonValue::String(
                        BlameKindName(static_cast<BlameKind>(key.first))));
    row.Set("node", Num(key.second));
    row.Set("seconds", Num(seconds));
    row.Set("share",
            Num(result.makespan > 0 ? seconds / result.makespan : 0.0));
    blame.Append(std::move(row));
  }
  doc.Set("blame", std::move(blame));
  std::vector<PathStep> top = result.steps;
  std::stable_sort(top.begin(), top.end(),
                   [](const PathStep& a, const PathStep& b) {
                     return a.length() > b.length();
                   });
  if (topk >= 0 && top.size() > static_cast<size_t>(topk)) {
    top.resize(static_cast<size_t>(topk));
  }
  JsonValue segments = JsonValue::Array();
  for (const PathStep& step : top) {
    JsonValue row = JsonValue::Object();
    row.Set("t0", Num(step.t0));
    row.Set("t1", Num(step.t1));
    row.Set("kind", JsonValue::String(BlameKindName(step.kind)));
    row.Set("node", Num(step.node));
    segments.Append(std::move(row));
  }
  doc.Set("top_segments", std::move(segments));
  return doc;
}

}  // namespace colsgd
