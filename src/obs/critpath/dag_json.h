// Versioned JSON serialization for the causal DAG ("colsgd.critdag/v1") and
// the critical-path report ("colsgd.critpath/v1"), plus the CRC32C
// fingerprint CI uses for double-run determinism. Serialization goes through
// obs/bench/json.h, so identical DAGs produce byte-identical files.
#ifndef COLSGD_OBS_CRITPATH_DAG_JSON_H_
#define COLSGD_OBS_CRITPATH_DAG_JSON_H_

#include <string>

#include "common/result.h"
#include "obs/bench/json.h"
#include "obs/critpath/analysis.h"
#include "obs/critpath/critpath.h"

namespace colsgd {

inline constexpr const char* kCritDagSchema = "colsgd.critdag/v1";
inline constexpr const char* kCritPathSchema = "colsgd.critpath/v1";

JsonValue CritDagJson(const CritDag& dag);
Result<CritDag> CritDagFromJson(const JsonValue& json);

Status WriteCritDagFile(const CritDag& dag, const std::string& path);
Result<CritDag> ReadCritDagFile(const std::string& path);

/// \brief CRC32C of the canonical serialization — stable across runs of a
/// deterministic schedule, shifts whenever any op or timestamp changes.
uint32_t CritDagFingerprint(const CritDag& dag);

/// \brief The critical-path report: makespan, fingerprint, per-(kind, node)
/// blame rows with makespan shares, and the top-k longest path segments.
JsonValue CritPathJson(const CritDag& dag, const CritPathResult& result,
                       int topk);

}  // namespace colsgd

#endif  // COLSGD_OBS_CRITPATH_DAG_JSON_H_
