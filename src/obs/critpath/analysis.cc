#include "obs/critpath/analysis.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>

namespace colsgd {
namespace {

uint64_t Bits(double v) {
  uint64_t b;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

/// One tile of a node's rebuilt timeline. blame < 0 marks a wait whose cause
/// lives in `op`'s terms (barrier waits synthesize a clock-chase term).
struct Seg {
  double start = 0.0;
  double end = 0.0;
  int blame = -1;
  int64_t op = -1;
  CritTerm cause;  // wait segments only
  bool has_cause = false;
};

struct Timeline {
  std::vector<Seg> segs;
  std::unordered_map<uint64_t, size_t> by_end;  // end bits -> latest index
  void Push(Seg seg) {
    // Zero-length segments (no-op waits, zero-cost advances) carry no time
    // and would self-map in by_end, stalling the walk at a fixed t.
    if (seg.end == seg.start) return;
    by_end[Bits(seg.end)] = segs.size();
    segs.push_back(std::move(seg));
  }
};

BlameKind AdvanceBlame(CritOpKind kind) {
  switch (kind) {
    case CritOpKind::kCompute:
      return BlameKind::kCompute;
    case CritOpKind::kMem:
      return BlameKind::kMem;
    case CritOpKind::kStraggler:
      return BlameKind::kStraggler;
    default:
      return BlameKind::kLocal;
  }
}

/// Picks the binding term: the one whose (base + compute tail) is largest.
const CritTerm* TopTerm(const std::vector<CritTerm>& terms) {
  const CritTerm* top = nullptr;
  double best = 0.0;
  for (const CritTerm& term : terms) {
    const double total = term.value + term.add_seconds;
    if (top == nullptr || total > best) {
      top = &term;
      best = total;
    }
  }
  return top;
}

class Walker {
 public:
  explicit Walker(const CritDag& dag) : dag_(dag) {
    for (const CritKeyedAvail& k : dag.keyed) {
      keyed_[{k.group, k.tick}] = k.msg;
    }
  }

  Result<CritPathResult> Run() {
    BuildTimelines();
    CritPathResult result;
    result.makespan = dag_.Makespan();
    for (uint32_t n = 0; n < dag_.final_clocks.size(); ++n) {
      if (dag_.final_clocks[n] == result.makespan) {
        result.makespan_node = n;
        break;
      }
    }
    node_ = result.makespan_node;
    t_ = result.makespan;
    // 2 * ops is a loose upper bound on path steps for well-formed logs
    // (every step consumes a distinct timeline segment or message stage).
    const int64_t cap =
        16 * static_cast<int64_t>(dag_.ops.size()) + (1 << 20);
    int64_t iters = 0;
    while (t_ > 0.0) {
      if (++iters > cap) {
        return Status::InvalidArgument(
            "critical-path walk did not terminate (cyclic cause chain?)");
      }
      if (!Step()) break;
    }
    result.steps = std::move(steps_);
    result.exact_misses = exact_misses_;
    for (const PathStep& step : result.steps) {
      result.blame[{static_cast<int>(step.kind), step.node}] += step.length();
    }
    return result;
  }

 private:
  void BuildTimelines() {
    timelines_.assign(dag_.num_nodes, Timeline());
    std::vector<double> c(dag_.num_nodes, 0.0);
    for (size_t i = 0; i < dag_.ops.size(); ++i) {
      const CritOp& op = dag_.ops[i];
      switch (op.kind) {
        case CritOpKind::kCompute:
        case CritOpKind::kMem:
        case CritOpKind::kLocal:
        case CritOpKind::kStraggler: {
          Seg seg;
          seg.start = c[op.node];
          seg.end = op.t;
          seg.blame = static_cast<int>(AdvanceBlame(op.kind));
          seg.op = static_cast<int64_t>(i);
          timelines_[op.node].Push(seg);
          c[op.node] = op.t;
          break;
        }
        case CritOpKind::kSet: {
          if (op.t > op.prev) {
            Seg seg;
            seg.start = op.prev;
            seg.end = op.t;
            seg.op = static_cast<int64_t>(i);
            if (const CritTerm* top = TopTerm(op.terms)) {
              seg.cause = *top;
              seg.has_cause = true;
            }
            timelines_[op.node].Push(seg);
          }
          c[op.node] = op.t;
          break;
        }
        case CritOpKind::kBarrier: {
          for (uint32_t n = 0; n < dag_.num_nodes; ++n) {
            if (c[n] < op.t) {
              Seg seg;
              seg.start = c[n];
              seg.end = op.t;
              seg.op = static_cast<int64_t>(i);
              seg.cause.kind = CritCauseKind::kClock;
              seg.cause.ref = op.node;  // the last-arriving node
              seg.cause.value = op.t;
              seg.has_cause = true;
              timelines_[n].Push(seg);
            }
            c[n] = op.t;
          }
          break;
        }
        case CritOpKind::kReset:
          std::fill(c.begin(), c.end(), 0.0);
          break;
        case CritOpKind::kMsg:
        case CritOpKind::kStamp:
          break;
      }
    }
  }

  void Emit(double t0, double t1, BlameKind kind, uint32_t node, int64_t op) {
    if (t1 <= t0) return;
    PathStep step;
    step.t0 = t0;
    step.t1 = t1;
    step.kind = kind;
    step.node = node;
    step.op = op;
    steps_.push_back(step);
  }

  /// Dispatches one cause term at time t_ == term base (+ already-emitted
  /// tail). Returns false when the walk terminated.
  bool FollowTerm(const CritTerm& term, uint32_t at_node) {
    switch (term.kind) {
      case CritCauseKind::kMsg:
        return WalkMsg(term.ref, MsgStage::kAvail);
      case CritCauseKind::kClock:
        node_ = static_cast<uint32_t>(term.ref);
        return true;
      case CritCauseKind::kStamp:
        node_ = static_cast<uint32_t>(term.ref2);
        return true;
      case CritCauseKind::kGate: {
        const auto it = keyed_.find({term.ref, term.ref2});
        if (it != keyed_.end() && it->second >= 0) {
          return WalkMsg(it->second, MsgStage::kAvail);
        }
        Emit(0.0, t_, BlameKind::kExternal, at_node, -1);
        t_ = 0.0;
        return false;
      }
      case CritCauseKind::kAbs:
        Emit(0.0, t_, BlameKind::kExternal, at_node, -1);
        t_ = 0.0;
        return false;
    }
    return false;
  }

  enum class MsgStage { kAvail, kRxDone, kTxDone, kTxStart };

  /// Decomposes a message chain backward from t_ (entering at `stage`),
  /// recursing through NIC queue predecessors, until the walk exits onto a
  /// sender timeline or an absolute anchor. Interior stage boundaries only
  /// need to telescope — path length stays exact by construction.
  bool WalkMsg(int64_t msg, MsgStage stage) {
    while (true) {
      const CritOp& op = dag_.ops[static_cast<size_t>(msg)];
      switch (stage) {
        case MsgStage::kAvail: {
          if (op.avail > op.rx_done) {
            Emit(op.rx_done, t_, BlameKind::kSweep, op.to, msg);
            t_ = op.rx_done;
          }
          stage = MsgStage::kRxDone;
          break;
        }
        case MsgStage::kRxDone: {
          if (op.control) {
            Emit(op.tx_done, t_, BlameKind::kLink, op.node, msg);
            t_ = op.tx_done;
            stage = MsgStage::kTxDone;
            break;
          }
          const double wire =
              static_cast<double>(op.bytes) / dag_.net_bandwidth;
          const double arrival = op.tx_done + dag_.net_latency;
          if (op.rx_done > arrival) {
            // Receive-bound: the in NIC drained for the full wire time.
            Emit(op.rx_start, t_, BlameKind::kNicIn, op.to, msg);
            t_ = op.rx_start;
            if (op.prev_in >= 0) {
              msg = op.prev_in;  // queued behind the previous receive
              stage = MsgStage::kRxDone;
              break;
            }
            // rx_start == arrival - wire == tx_start + overhead + latency.
            const double mid = std::max(op.tx_start, t_ - dag_.net_latency);
            Emit(mid, t_, BlameKind::kLink, op.node, msg);
            Emit(op.tx_start, mid, BlameKind::kNicOut, op.node, msg);
            t_ = op.tx_start;
            stage = MsgStage::kTxStart;
            break;
          }
          // Arrival-bound: first byte and last byte limited by the link.
          Emit(op.tx_done, t_, BlameKind::kLink, op.node, msg);
          t_ = op.tx_done;
          stage = MsgStage::kTxDone;
          break;
        }
        case MsgStage::kTxDone: {
          Emit(op.tx_start, t_, BlameKind::kNicOut, op.node, msg);
          t_ = op.tx_start;
          stage = MsgStage::kTxStart;
          break;
        }
        case MsgStage::kTxStart: {
          if (op.prev_out >= 0) {
            msg = op.prev_out;  // out NIC busy with the previous send
            stage = MsgStage::kTxDone;
            break;
          }
          if (op.sender_is_clock) {
            node_ = op.node;
            return true;  // continue on the sender's timeline
          }
          if (const CritTerm* top = TopTerm(op.terms)) {
            // Annotated exogenous send: sender_time == max(terms) + tail.
            const double base = std::min(top->value, t_);
            const uint32_t tail_node = op.tail_node >= 0
                                           ? static_cast<uint32_t>(op.tail_node)
                                           : op.node;
            Emit(base, t_, BlameKind::kCompute, tail_node, msg);
            t_ = base;
            return FollowTerm(*top, op.node);
          }
          Emit(0.0, t_, BlameKind::kExternal, op.node, msg);
          t_ = 0.0;
          return false;
        }
      }
    }
  }

  /// One step of the node-timeline walk.
  bool Step() {
    Timeline& line = timelines_[node_];
    const auto it = line.by_end.find(Bits(t_));
    if (it == line.by_end.end()) {
      // No segment ends exactly here: patch the gap down to the nearest
      // earlier boundary (or to zero) so the path keeps tiling.
      double best = 0.0;
      bool found = false;
      for (auto seg = line.segs.rbegin(); seg != line.segs.rend(); ++seg) {
        if (seg->end < t_) {
          best = seg->end;
          found = true;
          break;
        }
      }
      ++exact_misses_;
      Emit(best, t_, BlameKind::kExternal, node_, -1);
      t_ = best;
      return found && t_ > 0.0;
    }
    const Seg& seg = line.segs[it->second];
    if (seg.blame >= 0) {
      Emit(seg.start, t_, static_cast<BlameKind>(seg.blame), node_, seg.op);
      t_ = seg.start;
      return true;
    }
    if (!seg.has_cause) {
      Emit(seg.start, t_, BlameKind::kExternal, node_, seg.op);
      t_ = seg.start;
      return true;
    }
    const CritTerm& cause = seg.cause;
    if (cause.kind == CritCauseKind::kAbs) {
      // External anchor: the wait itself is the story; stay on this node.
      Emit(seg.start, t_, BlameKind::kExternal, node_, seg.op);
      t_ = seg.start;
      return true;
    }
    const double total = std::min(cause.value + cause.add_seconds, t_);
    if (total < t_) {
      // The binding term under-explains the target (partial annotation);
      // patch with an external slice so the path still telescopes.
      Emit(total, t_, BlameKind::kExternal, node_, seg.op);
      t_ = total;
    }
    if (cause.add_seconds > 0.0) {
      const double base = std::min(cause.value, t_);
      const uint32_t tail_node = cause.add_node >= 0
                                     ? static_cast<uint32_t>(cause.add_node)
                                     : node_;
      Emit(base, t_, BlameKind::kCompute, tail_node, seg.op);
      t_ = base;
    }
    return FollowTerm(cause, node_);
  }

  const CritDag& dag_;
  std::vector<Timeline> timelines_;
  std::map<std::pair<int64_t, int64_t>, int64_t> keyed_;
  std::vector<PathStep> steps_;
  uint32_t node_ = 0;
  double t_ = 0.0;
  int64_t exact_misses_ = 0;
};

}  // namespace

const char* BlameKindName(BlameKind kind) {
  switch (kind) {
    case BlameKind::kCompute:
      return "compute";
    case BlameKind::kStraggler:
      return "straggler";
    case BlameKind::kMem:
      return "mem";
    case BlameKind::kLocal:
      return "local";
    case BlameKind::kNicOut:
      return "nic.out";
    case BlameKind::kLink:
      return "link";
    case BlameKind::kNicIn:
      return "nic.in";
    case BlameKind::kSweep:
      return "sweep";
    case BlameKind::kExternal:
      return "external";
  }
  return "?";
}

double CritPathResult::PathLength() const {
  // Compensated summation: conservation is asserted at 1e-9 and paths can
  // have tens of thousands of segments.
  double sum = 0.0, comp = 0.0;
  for (const PathStep& step : steps) {
    const double y = step.length() - comp;
    const double t = sum + y;
    comp = (t - sum) - y;
    sum = t;
  }
  return sum;
}

double CritPathResult::BlameSeconds(BlameKind kind) const {
  double total = 0.0;
  for (const auto& [key, seconds] : blame) {
    if (key.first == static_cast<int>(kind)) total += seconds;
  }
  return total;
}

Result<CritPathResult> ExtractCriticalPath(const CritDag& dag) {
  if (dag.num_nodes == 0 || dag.final_clocks.size() != dag.num_nodes) {
    return Status::InvalidArgument("critpath: empty or inconsistent DAG");
  }
  Walker walker(dag);
  return walker.Run();
}

}  // namespace colsgd
