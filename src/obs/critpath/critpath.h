// Causal critical-path recorder (DESIGN.md §16).
//
// A CritPathRecorder attaches to the ClusterRuntime + SimNetwork the same way
// the Tracer does and passively mirrors every clock mutation into a flat
// *op log*: compute/mem/local advances, wire transfers with their exact NIC
// queueing state, barriers, and clock sets/syncs with a *cause* (which
// message's delivery, which node's clock, which SSP gate, or an external
// anchor explains the new timestamp). The simulator is single-threaded, so
// log order == program order == causal order; that makes the log both a DAG
// (ops + cause edges) and an exactly replayable schedule.
//
// Passivity: the recorder only reads simulation state. Attaching it changes
// no simulated timestamp and no trained bit (tests/critpath_test.cc pins
// this bitwise, like the tracer's passivity test).
//
// Layering: this header is included by simnet/network.h and
// cluster/cluster.h, so — like obs/trace.h — it uses plain uint32_t/double
// instead of the NodeId/SimTime aliases and includes nothing from simnet.
#ifndef COLSGD_OBS_CRITPATH_CRITPATH_H_
#define COLSGD_OBS_CRITPATH_CRITPATH_H_

#include <cstdint>
#include <cstring>
#include <unordered_map>
#include <vector>

namespace colsgd {

/// \brief Op kinds in the causal log. The first four are clock *advances*
/// (duration charged on one node); the rest are events.
enum class CritOpKind : uint8_t {
  kCompute = 0,    // ChargeCompute (scaled by what-if compute_scale)
  kMem = 1,        // ChargeMemTouch (scaled by mem_scale)
  kLocal = 2,      // AdvanceClock: sched overhead, timeouts, disk
  kStraggler = 3,  // annotated straggler/jitter tail of a compute advance
  kMsg = 4,        // one SimNetwork::Send with full timing + queueing state
  kSet = 5,        // set_clock / SyncClockTo with cause terms (max semantics)
  kBarrier = 6,    // all clocks -> max
  kReset = 7,      // ResetClocks
  kStamp = 8,      // named clock capture (e.g. PS ssp_applied_time_ mirror)
};

/// \brief Cause-term kinds for kSet ops and annotated sends.
enum class CritCauseKind : uint8_t {
  kMsg = 0,    // delivery of ops[ref] (its avail time)
  kClock = 1,  // another node's clock at this log position (ref = node)
  kStamp = 2,  // stamp ref (ref = stamp id, ref2 = stamped node)
  kGate = 3,   // SSP gate: keyed broadcast avail (ref = group, ref2 = tick)
  kAbs = 4,    // absolute/external anchor (serving arrivals)
};

/// \brief One cause term: the set/send time is max over terms of
/// (resolved base + add_seconds), where add_seconds is a compute tail
/// charged on add_node (scaled by its what-if compute_scale).
struct CritTerm {
  CritCauseKind kind = CritCauseKind::kAbs;
  int64_t ref = -1;
  int64_t ref2 = -1;
  double value = 0.0;  // resolved base at record time
  double add_seconds = 0.0;
  int32_t add_node = -1;
};

/// \brief One op. Fields are kind-dependent (see CritOpKind); unused fields
/// keep their defaults so serialization can stay compact per kind.
struct CritOp {
  CritOpKind kind = CritOpKind::kLocal;
  uint32_t node = 0;  // advance/set/stamp node; msg: sender. barrier: top.
  // Advances:
  double seconds = 0.0;
  uint64_t flops = 0;
  // kSet / kBarrier / kStamp:
  double t = 0.0;     // target time (stamp: captured clock)
  double prev = 0.0;  // node clock before the set (wait = [prev, t])
  std::vector<CritTerm> terms;
  // kMsg:
  uint32_t to = 0;
  uint64_t bytes = 0;
  bool control = false;
  bool sender_is_clock = false;  // sender_time == sender's tracked clock
  double sender_time = 0.0, tx_start = 0.0, tx_done = 0.0;
  double rx_start = 0.0, rx_done = 0.0;
  double avail = 0.0;  // delivery-usable time (rx_done + receiver sweep)
  int64_t prev_out = -1;  // out-NIC queue predecessor (if tx was queued)
  int64_t prev_in = -1;   // in-NIC queue predecessor (if rx was queued)
  double tail_seconds = 0.0;  // annotated send: sender = max(terms) + tail
  int32_t tail_node = -1;
};

/// \brief SSP broadcast key: the engine keys message avail times by
/// (group, tick) so the retimer can resolve slack-shifted gates.
struct CritKeyedAvail {
  int64_t group = 0;
  int64_t tick = 0;
  int64_t msg = -1;
};

/// \brief A self-contained snapshot of one recorded run: the op log plus the
/// cluster/network shape needed to replay it. Serializable (dag_json.h).
struct CritDag {
  uint32_t num_nodes = 0;
  int32_t num_workers = 0;
  double net_latency = 0.0;
  double net_bandwidth = 0.0;
  double net_overhead = 0.0;
  uint64_t control_bytes = 256;
  std::vector<CritOp> ops;
  std::vector<CritKeyedAvail> keyed;
  std::vector<double> final_clocks;

  double Makespan() const {
    double m = 0.0;
    for (double c : final_clocks) m = m > c ? m : c;
    return m;
  }
};

/// \brief Passive causal recorder. ClusterRuntime::set_critpath attaches it
/// to every clock mutator and to SimNetwork::Send; engines add optional
/// annotations (Annotate*) that make exogenous timestamps replayable.
class CritPathRecorder {
 public:
  /// \brief Binds the recorder to a cluster: called by
  /// ClusterRuntime::set_critpath with the current clocks (normally all 0).
  void Attach(const double* clocks, size_t num_nodes, int num_workers,
              double latency, double bandwidth, double overhead,
              uint64_t control_bytes);

  // --- runtime hooks (read-only; null-checked at every call site) ---------
  void OnAdvance(uint32_t node, double seconds, CritOpKind kind,
                 uint64_t flops);
  void OnSetClock(uint32_t node, double t);
  void OnSyncClock(uint32_t node, double t);
  void OnBarrier(double t);
  void OnSend(uint32_t from, uint32_t to, uint64_t bytes, bool control,
              double sender_time, double tx_start, double tx_done,
              double rx_start, double rx_done);
  void OnReset();

  // --- engine annotations (optional; improve blame + what-if fidelity) ----
  /// \brief The next set_clock on `node` is a self-clocked compute advance:
  /// target == ((clock + compute_seconds) + straggler_seconds) exactly
  /// (left-associated, matching the engines' arithmetic). Falls back to a
  /// classified kSet if the target does not match bit-for-bit.
  void AnnotateAdvance(uint32_t node, double compute_seconds, uint64_t flops,
                       double straggler_seconds);
  /// \brief The next set_clock on `node` is an SSP gate
  /// max(clock, gate_value) where gate_value is the keyed (group, tick)
  /// broadcast avail (tick < 0: no constraint).
  void AnnotateGate(uint32_t node, int64_t group, int64_t tick,
                    double gate_value);
  /// \brief The next set_clock on `node` is max(clock, terms...).
  void AnnotateSet(uint32_t node, std::vector<CritTerm> terms);
  /// \brief The next SimNetwork::Send has an exogenous sender_time equal to
  /// max(terms) + tail_seconds, with the tail charged on tail_node.
  void AnnotateNextSend(std::vector<CritTerm> terms, double tail_seconds,
                        int32_t tail_node);
  /// \brief Captures `node`'s clock as a stamp; returns the stamp id.
  int64_t StampClock(uint32_t node);
  /// \brief Overrides the last message's delivery-usable time (e.g. arrival
  /// + deserialization sweep for mailbox-delivered SSP broadcasts).
  void SetLastMsgAvail(double avail);
  /// \brief Keys a message's avail by (group, tick) for gate resolution.
  void KeyAvail(int64_t group, int64_t tick, int64_t msg);

  // --- term builders (resolve values from current recorder state) ---------
  int64_t last_msg() const { return last_msg_; }
  CritTerm MsgTerm(int64_t msg, double add_seconds = 0.0,
                   int32_t add_node = -1) const;
  CritTerm ClockTerm(uint32_t node) const;
  CritTerm StampTerm(int64_t stamp, double add_seconds = 0.0,
                     int32_t add_node = -1) const;

  bool attached() const { return !now_.empty(); }
  double now(uint32_t node) const { return now_[node]; }
  size_t num_ops() const { return ops_.size(); }
  double stamp_value(int64_t id) const { return ops_[stamps_[id]].t; }

  /// \brief Copies the log into a self-contained, serializable snapshot.
  CritDag Snapshot() const;

 private:
  static uint64_t Bits(double v) {
    uint64_t b;
    std::memcpy(&b, &v, sizeof(b));
    return b;
  }
  /// Classifies an unannotated set/sync target: message delivery on this
  /// node, another node's clock, or an external absolute anchor.
  CritTerm Classify(uint32_t node, double t) const;
  void EmitSet(uint32_t node, double t);

  std::vector<double> now_;
  int num_workers_ = 0;
  double latency_ = 0.0, bandwidth_ = 0.0, overhead_ = 0.0;
  uint64_t control_bytes_ = 256;

  std::vector<CritOp> ops_;
  std::vector<CritKeyedAvail> keyed_;
  std::vector<size_t> stamps_;  // stamp id -> op index
  // Per destination node: bit pattern of a delivery time -> message index.
  std::vector<std::unordered_map<uint64_t, int64_t>> avail_of_;
  std::vector<int64_t> last_out_;  // last msg occupying node's out NIC
  std::vector<int64_t> last_in_;   // last bulk msg occupying node's in NIC
  // Op index at which each node's clock last changed. Classify prefers the
  // *earliest* holder of a clock value so cause chains always point backward
  // in the log — two nodes synced to the same value can otherwise cite each
  // other and trap the critical-path walk in a zero-progress cycle.
  std::vector<int64_t> last_change_;
  int64_t last_msg_ = -1;

  // Pending annotations, consumed by the next matching hook.
  struct PendingAdvance {
    bool active = false;
    uint32_t node = 0;
    double compute_seconds = 0.0;
    uint64_t flops = 0;
    double straggler_seconds = 0.0;
  } pending_advance_;
  struct PendingGate {
    bool active = false;
    uint32_t node = 0;
    int64_t group = 0;
    int64_t tick = 0;
    double value = 0.0;
  } pending_gate_;
  struct PendingSet {
    bool active = false;
    uint32_t node = 0;
    std::vector<CritTerm> terms;
  } pending_set_;
  struct PendingSend {
    bool active = false;
    std::vector<CritTerm> terms;
    double tail_seconds = 0.0;
    int32_t tail_node = -1;
  } pending_send_;
};

}  // namespace colsgd

#endif  // COLSGD_OBS_CRITPATH_CRITPATH_H_
