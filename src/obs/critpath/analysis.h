// Critical-path extraction over a recorded CritDag (DESIGN.md §16).
//
// The forward pass rebuilds each node's timeline as a contiguous tiling of
// [0, final_clock]: advance ops become blamed segments, set ops that move a
// clock forward become wait segments carrying their cause, barriers become
// wait segments on every lagging node. The backward walk starts at the
// makespan on the last-finishing node and follows causes: advances are
// blamed in place, waits hop into the causing message chain (decomposed
// into nic.out / link / nic.in / sweep segments, recursing through NIC
// queue predecessors) or onto the causing node's timeline. Every step is
// contiguous in time, so the returned path *tiles* [0, makespan] and its
// length equals the makespan up to float summation error (<< 1e-9).
#ifndef COLSGD_OBS_CRITPATH_ANALYSIS_H_
#define COLSGD_OBS_CRITPATH_ANALYSIS_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "obs/critpath/critpath.h"

namespace colsgd {

/// \brief Resource classes a critical-path segment can be blamed on.
enum class BlameKind : uint8_t {
  kCompute = 0,
  kStraggler = 1,
  kMem = 2,
  kLocal = 3,     // scheduling overhead, timeouts, disk
  kNicOut = 4,    // sender NIC serialization (incl. per-message overhead)
  kLink = 5,      // propagation latency
  kNicIn = 6,     // receiver NIC drain
  kSweep = 7,     // receiver-side deserialization of a mailbox delivery
  kExternal = 8,  // exogenous anchor (serving arrivals) or idle
};

const char* BlameKindName(BlameKind kind);

/// \brief One time slice of the critical path, blamed on (kind, node).
/// Steps are produced walking backward, so t1 of step i equals t0 of step
/// i-1 (modulo zero-length cause hops).
struct PathStep {
  double t0 = 0.0;
  double t1 = 0.0;
  BlameKind kind = BlameKind::kExternal;
  uint32_t node = 0;
  int64_t op = -1;  // originating op index (msg for wire segments)
  double length() const { return t1 - t0; }
};

struct CritPathResult {
  double makespan = 0.0;
  uint32_t makespan_node = 0;
  std::vector<PathStep> steps;  // backward order: steps.front().t1 == makespan
  /// (kind, node) -> blamed seconds; tiles the makespan.
  std::map<std::pair<int, uint32_t>, double> blame;
  /// Walk continuations that missed an exact timeline boundary (patched with
  /// an external segment to preserve tiling). 0 for well-formed logs.
  int64_t exact_misses = 0;

  double PathLength() const;
  double BlameSeconds(BlameKind kind) const;  // summed over nodes
};

/// \brief Extracts the exact critical path of a recorded run.
Result<CritPathResult> ExtractCriticalPath(const CritDag& dag);

}  // namespace colsgd

#endif  // COLSGD_OBS_CRITPATH_ANALYSIS_H_
