// The serving frontend: admission, batching, scatter/gather scoring, hot
// model swap, and shard failover on the simulated cluster (DESIGN.md §13).
//
// Topology reuses the training plane's: the frontend runs on the master
// (node 0), shard server k is worker node k+1, and one extra node stands in
// for the client ingress (rejection replies are charged to it, so shedding
// is visible on the wire). The frontend serves one batch at a time (the
// master is a single simulated core); requests that arrive while it is busy
// wait in a bounded admission queue and their queueing delay is visible in
// the latency decomposition.
//
// A batch dispatches when it fills to max_batch requests or the oldest
// admitted request has waited max_delay, whichever is earlier — but never
// before the frontend is free. Per completed request the end-to-end latency
// decomposes exactly into queue / scatter / compute / gather segments
// (tests/serve_test.cc pins the tiling to 1e-9).
//
// Batch execution, swap, and failover mechanics live in serve/group.h: the
// frontend is one ShardGroup driven by this admission loop, and the
// replicated fleet (serve/fleet.h) is R ShardGroups behind a router.
//
// The run is bit-deterministic in (config, arrivals, scheduled events):
// Fingerprint() hashes every response so two runs can be compared, and
// attaching a Tracer changes no simulated timestamp.
#ifndef COLSGD_SERVE_FRONTEND_H_
#define COLSGD_SERVE_FRONTEND_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "serve/frontend_types.h"
#include "serve/group.h"
#include "serve/inference.h"
#include "serve/registry.h"
#include "serve/workload.h"

namespace colsgd {

class ServeFrontend {
 public:
  /// \param queries the query log; requests reference its rows. Must
  /// outlive the frontend.
  ServeFrontend(const ClusterSpec& cluster_spec, const ServeConfig& config,
                const Dataset* queries);

  /// \brief Installs the initial model (generation 0) at the current
  /// simulated time, charging the bring-up transfers. Must be called once
  /// before Run; rejects unservable models and dimension mismatches.
  Status Install(const SavedModel& model, int64_t trained_iterations = 0);

  /// \brief Schedules a hot swap: at simulated time `time` (or the next
  /// batch boundary after it) the serialized image is CRC-validated,
  /// sharded, and shipped to the shard servers; the flip to the new
  /// generation happens when the last shard finishes loading. In-flight and
  /// queued requests are never dropped; batches dispatched before the flip
  /// keep scoring against the previous generation (double-buffered).
  void ScheduleSwapImage(double time, std::vector<uint8_t> image,
                         int64_t trained_iterations);
  void ScheduleSwap(double time, const SavedModel& model,
                    int64_t trained_iterations);

  /// \brief Schedules shard `shard` to die at simulated time `time`. The
  /// frontend only learns of it when a batch's gather times out; it then
  /// re-installs the active generation's partition on the replacement and
  /// resumes. Affected requests time out — never a wrong answer.
  void ScheduleShardFailure(double time, int shard);

  /// \brief Serves `arrivals` (sorted by arrival time) to completion,
  /// draining the queue and firing scheduled swaps/failures as simulated
  /// time passes them.
  Status Run(const std::vector<ServeRequest>& arrivals);

  const std::vector<RequestRecord>& records() const { return records_; }
  const std::vector<FailoverRecord>& failovers() const { return failovers_; }
  const std::vector<GenerationInfo>& generations() const {
    return group_->registry().history();
  }
  const GenerationRegistry& registry() const { return group_->registry(); }

  ServeSummary Summarize() const;

  /// \brief CRC32C over every response (id, status, generation, score bits,
  /// completion bits) in arrival order. Two runs of the same seed must
  /// produce equal fingerprints.
  uint64_t Fingerprint() const;

  ClusterRuntime& runtime() { return *runtime_; }
  const ModelSpec& spec() const { return group_->spec(); }
  /// \brief The client-ingress endpoint rejection replies are charged to.
  NodeId ingress() const { return ingress_; }
  void set_tracer(Tracer* tracer) { runtime_->set_tracer(tracer); }
  void set_critpath(CritPathRecorder* critpath) {
    runtime_->set_critpath(critpath);
  }

 private:
  struct Pending {
    size_t index = 0;  // position in the arrivals vector == records_ slot
    uint64_t id = 0;
    uint32_t row = 0;
    double arrival = 0.0;
  };

  ServeConfig config_;
  std::unique_ptr<ClusterRuntime> runtime_;
  std::unique_ptr<ShardGroup> group_;
  const Dataset* queries_;
  NodeId ingress_ = 0;

  std::vector<RequestRecord> records_;
  std::vector<FailoverRecord> failovers_;
  int64_t batches_ = 0;
  int64_t reject_messages_ = 0;
  bool ran_ = false;
};

}  // namespace colsgd

#endif  // COLSGD_SERVE_FRONTEND_H_
