// The serving frontend: admission, batching, scatter/gather scoring, hot
// model swap, and shard failover on the simulated cluster (DESIGN.md §13).
//
// Topology reuses the training plane's: the frontend runs on the master
// (node 0) and shard server k is worker node k+1. The frontend serves one
// batch at a time (the master is a single simulated core); requests that
// arrive while it is busy wait in a bounded admission queue and their
// queueing delay is visible in the latency decomposition.
//
// A batch dispatches when it fills to max_batch requests or the oldest
// admitted request has waited max_delay, whichever is earlier — but never
// before the frontend is free. Per completed request the end-to-end latency
// decomposes exactly into queue / scatter / compute / gather segments
// (tests/serve_test.cc pins the tiling to 1e-9).
//
// The run is bit-deterministic in (config, arrivals, scheduled events):
// Fingerprint() hashes every response so two runs can be compared, and
// attaching a Tracer changes no simulated timestamp.
#ifndef COLSGD_SERVE_FRONTEND_H_
#define COLSGD_SERVE_FRONTEND_H_

#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "serve/inference.h"
#include "serve/registry.h"
#include "serve/workload.h"

namespace colsgd {

struct ServeConfig {
  int num_shards = 4;
  std::string partitioner = "round_robin";
  int64_t max_batch = 8;
  double max_delay = 2e-3;       // seconds the oldest request may wait
  int64_t queue_capacity = 64;   // admitted-but-unserved bound
  double reply_timeout = 0.050;  // gather timeout when a shard is dead
  double slo_latency = 0.010;    // per-request latency objective

  static Status Validate(const ServeConfig& config);
};

enum class RequestStatus : uint8_t {
  kCompleted = 0,
  kRejected = 1,  // admission queue full at arrival
  kTimedOut = 2,  // batch hit a dead shard; no reply within reply_timeout
};

/// \brief The full story of one request. For completed requests,
/// queue_s + scatter_s + compute_s + gather_s == completion - arrival.
struct RequestRecord {
  uint64_t id = 0;
  uint32_t row = 0;
  double arrival = 0.0;
  RequestStatus status = RequestStatus::kRejected;
  int64_t generation = -1;  // model generation the response was scored with
  double score = std::numeric_limits<double>::quiet_NaN();
  int64_t batch = -1;
  double dispatch = std::numeric_limits<double>::quiet_NaN();
  double completion = std::numeric_limits<double>::quiet_NaN();
  double queue_s = 0.0;    // arrival -> batch dispatch
  double scatter_s = 0.0;  // dispatch compute + slices on the wire
  double compute_s = 0.0;  // last shard finishes computeStat
  double gather_s = 0.0;   // partials on the wire + frontend reduce
};

/// \brief One shard failure the frontend survived.
struct FailoverRecord {
  int shard = -1;
  double failed_at = 0.0;    // scheduled failure time
  double detected_at = 0.0;  // reply timeout expired
  double recovered_at = 0.0; // replacement finished loading the partition
  uint64_t reinstall_bytes = 0;
  int64_t requests_timed_out = 0;
};

struct ServeSummary {
  int64_t offered = 0;
  int64_t completed = 0;
  int64_t rejected = 0;
  int64_t timed_out = 0;
  int64_t batches = 0;
  double makespan = 0.0;    // last completion (simulated seconds)
  double throughput = 0.0;  // completed / makespan
  double latency_mean = 0.0;
  double latency_p50 = 0.0;
  double latency_p95 = 0.0;
  double latency_p99 = 0.0;
  double latency_max = 0.0;
  uint64_t wire_bytes = 0;
  uint64_t wire_messages = 0;
  double bytes_per_request = 0.0;  // wire bytes / completed
  int64_t swaps_completed = 0;     // hot swaps (initial bring-up excluded)
  int64_t swaps_failed = 0;        // images rejected by CRC validation
  double swap_stall_seconds = 0.0;
  int64_t failovers = 0;
  double failover_seconds = 0.0;  // detection + re-install, summed
  /// Fraction of offered requests that missed the SLO: completed above
  /// slo_latency, timed out, or rejected.
  double slo_violation_fraction = 0.0;
};

class ServeFrontend {
 public:
  /// \param queries the query log; requests reference its rows. Must
  /// outlive the frontend.
  ServeFrontend(const ClusterSpec& cluster_spec, const ServeConfig& config,
                const Dataset* queries);

  /// \brief Installs the initial model (generation 0) at the current
  /// simulated time, charging the bring-up transfers. Must be called once
  /// before Run; rejects unservable models and dimension mismatches.
  Status Install(const SavedModel& model, int64_t trained_iterations = 0);

  /// \brief Schedules a hot swap: at simulated time `time` (or the next
  /// batch boundary after it) the serialized image is CRC-validated,
  /// sharded, and shipped to the shard servers; the flip to the new
  /// generation happens when the last shard finishes loading. In-flight and
  /// queued requests are never dropped; batches dispatched before the flip
  /// keep scoring against the previous generation (double-buffered).
  void ScheduleSwapImage(double time, std::vector<uint8_t> image,
                         int64_t trained_iterations);
  void ScheduleSwap(double time, const SavedModel& model,
                    int64_t trained_iterations);

  /// \brief Schedules shard `shard` to die at simulated time `time`. The
  /// frontend only learns of it when a batch's gather times out; it then
  /// re-installs the active generation's partition on the replacement and
  /// resumes. Affected requests time out — never a wrong answer.
  void ScheduleShardFailure(double time, int shard);

  /// \brief Serves `arrivals` (sorted by arrival time) to completion,
  /// draining the queue and firing scheduled swaps/failures as simulated
  /// time passes them.
  Status Run(const std::vector<ServeRequest>& arrivals);

  const std::vector<RequestRecord>& records() const { return records_; }
  const std::vector<FailoverRecord>& failovers() const { return failovers_; }
  const std::vector<GenerationInfo>& generations() const {
    return registry_.history();
  }
  const GenerationRegistry& registry() const { return registry_; }

  ServeSummary Summarize() const;

  /// \brief CRC32C over every response (id, status, generation, score bits,
  /// completion bits) in arrival order. Two runs of the same seed must
  /// produce equal fingerprints.
  uint64_t Fingerprint() const;

  ClusterRuntime& runtime() { return *runtime_; }
  const ModelSpec& spec() const { return *spec_; }
  void set_tracer(Tracer* tracer) { runtime_->set_tracer(tracer); }
  void set_critpath(CritPathRecorder* critpath) {
    runtime_->set_critpath(critpath);
  }

 private:
  struct Pending {
    size_t index = 0;  // position in the arrivals vector == records_ slot
    uint64_t id = 0;
    uint32_t row = 0;
    double arrival = 0.0;
  };
  struct ScheduledSwap {
    double time = 0.0;
    std::vector<uint8_t> image;
    int64_t trained_iterations = 0;
    bool done = false;
  };
  struct ScheduledFailure {
    double time = 0.0;
    int shard = -1;
    bool done = false;
  };

  /// \brief Ships `image` to the shard servers starting at the current
  /// master clock; returns the time the last shard finished loading.
  double TransferImage(const ShardedModelImage& image);

  /// \brief Fires scheduled swaps/failures whose time has come (<= t).
  void ProcessEventsUpTo(double t);

  /// \brief Validates, shards, and ships one scheduled swap image.
  void ProcessSwap(ScheduledSwap* swap);

  /// \brief Serves one batch dispatched at `t_dispatch` (the master clock).
  void ServeBatch(const std::vector<Pending>& batch, double t_dispatch);

  /// \brief A batch that hit dead shards: everything times out, then the
  /// dead shards are re-shipped the active generation.
  void FailBatchAndRecover(const std::vector<Pending>& batch,
                           double t_dispatch,
                           const std::vector<int>& dead_shards);

  ServeConfig config_;
  std::unique_ptr<ClusterRuntime> runtime_;
  std::unique_ptr<ModelSpec> spec_;
  std::unique_ptr<ColumnPartitioner> partitioner_;
  const Dataset* queries_;
  GenerationRegistry registry_;

  std::vector<ScheduledSwap> swaps_;
  std::vector<ScheduledFailure> failures_;
  std::vector<bool> shard_alive_;
  std::vector<double> shard_failed_at_;

  std::vector<RequestRecord> records_;
  std::vector<FailoverRecord> failovers_;
  std::string model_name_;          // active model family; swaps must match
  double last_install_done_ = 0.0;  // serializes installs
  double swap_stall_seconds_ = 0.0;
  int64_t batches_ = 0;
  bool ran_ = false;
};

}  // namespace colsgd

#endif  // COLSGD_SERVE_FRONTEND_H_
