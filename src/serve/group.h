// One replicated shard group of the serving plane (DESIGN.md §13, §17).
//
// A ShardGroup is a full column-sharded copy of the model: one frontend
// node plus `num_shards` shard-server nodes on a shared ClusterRuntime. It
// owns the group's generation registry (double-buffered hot swap), the
// shard liveness state, and the scatter/compute/gather execution of one
// batch, charging exactly the bytes and flops of PR 5's single-frontend
// plane — ServeFrontend is one ShardGroup driven by an admission queue,
// and the replicated fleet (serve/fleet.h) is R of them behind a router.
//
// The group is deliberately passive: it has no event loop. The caller
// (frontend or fleet router) decides when a batch is ready and calls
// ServeBatch/FailBatch; scheduled swaps and shard failures fire through
// ProcessEventsUpTo exactly as simulated time passes them.
#ifndef COLSGD_SERVE_GROUP_H_
#define COLSGD_SERVE_GROUP_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "serve/frontend_types.h"
#include "serve/inference.h"
#include "serve/registry.h"

namespace colsgd {

/// \brief Everything one batch execution produced, timing and scores.
/// The caller turns this into RequestRecords; the group never sees request
/// identities, only query rows.
struct BatchOutcome {
  bool served = false;  // false: dead shards, the batch timed out
  int64_t generation = -1;
  std::vector<double> scores;   // per row, bitwise == offline kernel
  double dispatch = 0.0;        // frontend clock when execution began
  double scatter_end = 0.0;     // last slice landed on its shard
  double compute_end = 0.0;     // last shard finished computeStat
  double completion = 0.0;      // frontend reduce done (served) or the
                                // reply-timeout detection time (failed)
  uint64_t wire_bytes = 0;      // bytes this execution put on the wire
};

class ShardGroup {
 public:
  /// \param runtime shared simulated cluster; must outlive the group.
  /// \param frontend node id of this group's frontend.
  /// \param shards node ids of the shard servers, shard k at shards[k].
  /// \param queries the query log batches reference; must outlive the group.
  ShardGroup(ClusterRuntime* runtime, NodeId frontend,
             std::vector<NodeId> shards, const ServeConfig& config,
             const Dataset* queries);

  /// \brief Installs the initial model (generation 0) at the current
  /// frontend clock, charging the bring-up transfers. Rejects unservable
  /// models and dimension mismatches.
  Status Install(const SavedModel& model, int64_t trained_iterations);

  /// \brief Schedules a hot swap of a serialized (possibly damaged) image;
  /// it fires through ProcessEventsUpTo with CRC validation on the frontend.
  void ScheduleSwapImage(double time, std::vector<uint8_t> image,
                         int64_t trained_iterations);

  /// \brief Installs an already-validated model starting no earlier than
  /// `earliest_start` (fleet path: the router validated the image once and
  /// shipped it here). Charges the partition sweep and shard transfers;
  /// returns the install-done time.
  double ApplyValidatedSwap(double earliest_start, const SavedModel& model,
                            int64_t trained_iterations);

  /// \brief Schedules shard `shard` to die at simulated time `time`.
  void ScheduleShardFailure(double time, int shard);

  /// \brief Fires scheduled swaps/failures whose time has come (<= t).
  /// Chronological; ties kill before they heal.
  void ProcessEventsUpTo(double t);

  /// \brief Serves one batch of query rows whose inputs are ready at the
  /// frontend at `t_ready` (caller syncs admission; the group syncs the
  /// frontend clock to t_ready itself). `batch_tag` labels the trace span.
  BatchOutcome ServeBatch(const std::vector<uint32_t>& rows, double t_ready,
                          int64_t batch_tag);

  /// \brief A batch that would hit dead shards: frames and scatters
  /// normally (the frontend does not know yet), then the reply timeout
  /// declares it dead. Returns outcome with served=false and completion at
  /// the detection time. Does NOT re-install; call ReinstallDeadShards.
  BatchOutcome FailBatch(const std::vector<uint32_t>& rows, double t_ready);

  /// \brief Ships the active generation's partition to every dead shard's
  /// replacement, starting at `detected`. Returns one FailoverRecord per
  /// re-installed shard; the group is fully alive afterwards.
  std::vector<FailoverRecord> ReinstallDeadShards(double detected);

  std::vector<int> DeadShards() const;
  bool HasDeadShards() const { return !DeadShards().empty(); }

  /// \brief Generation a batch dispatched at `t` would be pinned to (flips
  /// any install that completed by then, like execution would).
  int64_t ActiveGenerationAt(double t) { return registry_.ActiveAt(t); }

  /// \brief Makes this a straggled group: every served batch takes
  /// `level` x its task time EXTRA — the paper's straggler definition
  /// (cluster/fault/fault_plan.h), applied to the whole serve path since a
  /// slow node drags its scatter, compute, and gather alike. 0 (default)
  /// serves at full speed.
  void set_straggle_level(double level) { straggle_level_ = level; }

  NodeId frontend() const { return frontend_; }
  const std::vector<NodeId>& shard_nodes() const { return shards_; }
  int num_shards() const { return static_cast<int>(shards_.size()); }
  const GenerationRegistry& registry() const { return registry_; }
  const ModelSpec& spec() const { return *spec_; }
  bool has_model() const { return registry_.has_active(); }
  double swap_stall_seconds() const { return swap_stall_seconds_; }
  double last_install_done() const { return last_install_done_; }

 private:
  struct ScheduledSwap {
    double time = 0.0;
    std::vector<uint8_t> image;
    int64_t trained_iterations = 0;
    bool done = false;
  };
  struct ScheduledFailure {
    double time = 0.0;
    int shard = -1;
    bool done = false;
  };

  /// \brief Ships `image` to the shard servers starting at the current
  /// frontend clock; returns the time the last shard finished loading.
  double TransferImage(const ShardedModelImage& image);

  /// \brief Validates, shards, and ships one scheduled swap image.
  void ProcessSwap(ScheduledSwap* swap);

  ClusterRuntime* runtime_;
  NodeId frontend_;
  std::vector<NodeId> shards_;
  ServeConfig config_;
  const Dataset* queries_;
  GenerationRegistry registry_;

  std::unique_ptr<ModelSpec> spec_;
  std::unique_ptr<ColumnPartitioner> partitioner_;
  std::string model_name_;  // active model family; swaps must match

  std::vector<ScheduledSwap> swaps_;
  std::vector<ScheduledFailure> failures_;
  std::vector<bool> shard_alive_;
  std::vector<double> shard_failed_at_;

  double last_install_done_ = 0.0;  // serializes installs
  double swap_stall_seconds_ = 0.0;
  double straggle_level_ = 0.0;
};

}  // namespace colsgd

#endif  // COLSGD_SERVE_GROUP_H_
