// Shared serving-plane types: configuration, per-request records, failover
// records, and run summaries (DESIGN.md §13, §17). Split out of frontend.h
// so the shard-group executor (serve/group.h), the single frontend
// (serve/frontend.h), and the replicated fleet (serve/fleet.h) share them.
#ifndef COLSGD_SERVE_FRONTEND_TYPES_H_
#define COLSGD_SERVE_FRONTEND_TYPES_H_

#include <cstdint>
#include <limits>
#include <string>

#include "common/status.h"

namespace colsgd {

struct ServeConfig {
  int num_shards = 4;
  std::string partitioner = "round_robin";
  int64_t max_batch = 8;
  double max_delay = 2e-3;       // seconds the oldest request may wait
  int64_t queue_capacity = 64;   // admitted-but-unserved bound
  double reply_timeout = 0.050;  // gather timeout when a shard is dead
  double slo_latency = 0.010;    // per-request latency objective

  static Status Validate(const ServeConfig& config);
};

enum class RequestStatus : uint8_t {
  kCompleted = 0,
  kRejected = 1,  // admission queue full at arrival
  kTimedOut = 2,  // batch hit a dead shard; no reply within reply_timeout
};

/// \brief The full story of one request. For completed requests,
/// queue_s + scatter_s + compute_s + gather_s == completion - arrival.
struct RequestRecord {
  uint64_t id = 0;
  uint32_t row = 0;
  double arrival = 0.0;
  RequestStatus status = RequestStatus::kRejected;
  int64_t generation = -1;  // model generation the response was scored with
  double score = std::numeric_limits<double>::quiet_NaN();
  int64_t batch = -1;
  double dispatch = std::numeric_limits<double>::quiet_NaN();
  double completion = std::numeric_limits<double>::quiet_NaN();
  double queue_s = 0.0;    // arrival -> batch dispatch
  double scatter_s = 0.0;  // dispatch compute + slices on the wire
  double compute_s = 0.0;  // last shard finishes computeStat
  double gather_s = 0.0;   // partials on the wire + frontend reduce
};

/// \brief One shard failure the serving plane survived.
struct FailoverRecord {
  int shard = -1;
  double failed_at = 0.0;    // scheduled failure time
  double detected_at = 0.0;  // reply timeout expired
  double recovered_at = 0.0; // replacement finished loading the partition
  uint64_t reinstall_bytes = 0;
  int64_t requests_timed_out = 0;
};

struct ServeSummary {
  int64_t offered = 0;
  int64_t completed = 0;
  int64_t rejected = 0;
  int64_t timed_out = 0;
  int64_t batches = 0;
  double makespan = 0.0;    // last completion (simulated seconds)
  double throughput = 0.0;  // completed / makespan
  double latency_mean = 0.0;
  double latency_p50 = 0.0;
  double latency_p95 = 0.0;
  double latency_p99 = 0.0;
  double latency_max = 0.0;
  uint64_t wire_bytes = 0;
  uint64_t wire_messages = 0;
  double bytes_per_request = 0.0;  // wire bytes / completed
  int64_t swaps_completed = 0;     // hot swaps (initial bring-up excluded)
  int64_t swaps_failed = 0;        // images rejected by CRC validation
  double swap_stall_seconds = 0.0;
  int64_t failovers = 0;
  double failover_seconds = 0.0;  // detection + re-install, summed
  /// Fraction of offered requests that missed the SLO: completed above
  /// slo_latency, timed out, or rejected.
  double slo_violation_fraction = 0.0;
};

/// \brief Bit pattern of a double with every NaN collapsed to the quiet
/// canonical one, so response fingerprints are stable across NaN payloads.
uint64_t CanonicalDoubleBits(double value);

}  // namespace colsgd

#endif  // COLSGD_SERVE_FRONTEND_TYPES_H_
