// Byte-accurate wire accounting for the serving plane (DESIGN.md §13).
//
// Serving reuses the training cluster's network model, so every scatter,
// gather, and model-install message is charged for exactly the bytes its
// serialized form would occupy. The layouts mirror the training plane's
// conventions: uint32 local feature indices + float values for sparse
// slices (linalg/sparse.h), doubles for statistics, and small fixed
// headers for framing/version/ids.
#ifndef COLSGD_SERVE_WIRE_H_
#define COLSGD_SERVE_WIRE_H_

#include <cstddef>
#include <cstdint>

namespace colsgd {

// ---- Scatter: frontend -> shard server ------------------------------------
// Header: magic/version (8), batch id (8), generation id (8),
// row count (4), reserved (4).
constexpr uint64_t kScatterHeaderBytes = 32;
// Per row: request id low bits (4) + nnz in this shard's slice (4).
constexpr uint64_t kScatterRowHeaderBytes = 8;
// Per non-zero: uint32 local index + float value.
constexpr uint64_t kScatterEntryBytes = 8;

// ---- Gather: shard server -> frontend --------------------------------------
// Header: magic/version (8), batch id (8), shard id (4), row count (4).
constexpr uint64_t kGatherHeaderBytes = 24;
// Per statistic: one double.
constexpr uint64_t kStatBytes = 8;

// ---- Model install: frontend -> shard server -------------------------------
// Header: magic/version (8), generation id (8), shard id (4), slot count
// (4), CRC32C of the partition payload (4), reserved (4).
constexpr uint64_t kInstallHeaderBytes = 32;
// Per weight slot / shared parameter: one double.
constexpr uint64_t kWeightBytes = 8;

// ---- Frontend dispatch compute ---------------------------------------------
// Counted work of admitting + batching + framing, charged on the master
// clock through ChargeCompute so it shows up in traces like any other
// compute block. Calibrated to O(1 us) per batch on a Cluster-1 core.
constexpr uint64_t kDispatchFlopsPerBatch = 2000;
constexpr uint64_t kDispatchFlopsPerRequest = 500;

// ---- Routing tier (replicated fleet, DESIGN.md §17) ------------------------
// Route forward: router -> group frontend. Header: magic/version (8), batch
// id (8), generation hint (8), row count (4), flags (4); per request one
// query-row id (8). The frontends hold the query log, so forwards carry ids,
// not feature payloads.
constexpr uint64_t kRouteHeaderBytes = 32;
constexpr uint64_t kRouteRowBytes = 8;
// Completion note: group frontend -> router. Batch id (8), group (4),
// status (4), generation (8), timing mirror (8). Control-sized by design.
constexpr uint64_t kReplyNoteBytes = 32;
// Client response: group frontend -> ingress. Header: magic/version (8),
// batch id (8), generation (4), row count (4); per request one double score.
constexpr uint64_t kResponseHeaderBytes = 24;
constexpr uint64_t kScoreBytes = 8;
// Explicit admission rejection: one control message back to the client so
// load shedding is charged on the wire exactly once per rejected request.
constexpr uint64_t kRejectMessageBytes = 64;
// Router core work per forwarded batch / per processed completion note.
constexpr uint64_t kRouteFlopsPerBatch = 600;
constexpr uint64_t kRouteFlopsPerNote = 200;

/// \brief Bytes of one route-forward message carrying `rows` request ids.
inline uint64_t RouteMessageBytes(uint64_t rows) {
  return kRouteHeaderBytes + rows * kRouteRowBytes;
}

/// \brief Bytes of one client-response message carrying `rows` scores.
inline uint64_t ResponseMessageBytes(uint64_t rows) {
  return kResponseHeaderBytes + rows * kScoreBytes;
}

/// \brief Bytes of one scatter message carrying `rows` feature slices with
/// `slice_nnz` total non-zeros in this shard's local index space.
inline uint64_t ScatterMessageBytes(uint64_t rows, uint64_t slice_nnz) {
  return kScatterHeaderBytes + rows * kScatterRowHeaderBytes +
         slice_nnz * kScatterEntryBytes;
}

/// \brief Bytes of one gather message carrying `rows * stats_per_point`
/// partial statistics.
inline uint64_t GatherMessageBytes(uint64_t rows, int stats_per_point) {
  return kGatherHeaderBytes +
         rows * static_cast<uint64_t>(stats_per_point) * kStatBytes;
}

/// \brief Bytes of one model-install message carrying `weight_slots` local
/// weights plus `shared_params` replicated parameters.
inline uint64_t InstallMessageBytes(uint64_t weight_slots,
                                    uint64_t shared_params) {
  return kInstallHeaderBytes + (weight_slots + shared_params) * kWeightBytes;
}

}  // namespace colsgd

#endif  // COLSGD_SERVE_WIRE_H_
