// Model-generation registry for the serving frontend.
//
// Every install produces a new immutable generation (a ShardedModelImage
// plus provenance metadata). The registry keeps the active generation and
// the one being installed (double-buffered): while an install's transfers
// are still in flight on the simulated wire, batches keep scoring against
// the previous generation; the flip happens at the install's completion
// time and is atomic from the requests' point of view — every response is
// scored against exactly one generation (tests/serve_test.cc pins this).
#ifndef COLSGD_SERVE_REGISTRY_H_
#define COLSGD_SERVE_REGISTRY_H_

#include <cstdint>
#include <vector>

#include "serve/inference.h"

namespace colsgd {

/// \brief One installed (or failed) model generation.
struct GenerationInfo {
  int64_t generation = -1;          // dense id, 0 = initial model
  int64_t trained_iterations = 0;   // provenance: checkpoint coverage
  double install_start = 0.0;       // master clock when the install began
  double install_done = 0.0;        // last shard finished loading
  bool ok = false;                  // false: image failed CRC validation
};

class GenerationRegistry {
 public:
  /// \brief Registers a validated image whose shard transfers complete at
  /// `install_done`; it becomes active for batches dispatched at or after
  /// that time. Returns the new generation id.
  int64_t Install(ShardedModelImage image, GenerationInfo info);

  /// \brief Records an install that failed validation (damaged image); the
  /// active generation is untouched.
  void RecordFailedInstall(GenerationInfo info);

  /// \brief Flips to any pending generation whose install completed by
  /// `now`; returns the id active for a batch dispatched at `now`.
  int64_t ActiveAt(double now);

  /// \brief The image of the currently active generation.
  const ShardedModelImage& active_image() const {
    COLSGD_CHECK_GE(active_, 0) << "no model installed";
    return images_[active_];
  }
  const ShardedModelImage& image(int64_t generation) const {
    COLSGD_CHECK_GE(generation, 0);
    COLSGD_CHECK_LT(static_cast<size_t>(generation), images_.size());
    return images_[generation];
  }

  bool has_active() const { return active_ >= 0; }
  bool install_pending() const { return pending_ >= 0; }
  int64_t next_generation_id() const {
    return static_cast<int64_t>(images_.size());
  }

  /// \brief Install history, failed validations included, in install order.
  const std::vector<GenerationInfo>& history() const { return history_; }

 private:
  std::vector<ShardedModelImage> images_;  // indexed by generation id
  std::vector<GenerationInfo> history_;
  int64_t active_ = -1;
  int64_t pending_ = -1;
  double pending_done_ = 0.0;
};

}  // namespace colsgd

#endif  // COLSGD_SERVE_REGISTRY_H_
