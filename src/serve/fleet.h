// Replicated serving fleet: R shard groups behind a health-routed,
// hedging router (DESIGN.md §17).
//
// Topology on one shared ClusterRuntime: the router runs on the master
// (node 0); group g owns a contiguous block of worker nodes — its frontend
// at worker g*(S+1) and shard k at worker g*(S+1)+1+k — and one extra node
// is the client ingress. Each group is a full column-sharded copy of the
// model (serve/group.h), installed from the same CRC-sealed image, so any
// group answers any batch with bitwise-identical scores.
//
// The router runs the PR 5 admission loop (max_batch / max_delay / bounded
// queue with explicit, wire-charged rejections) and adds three fleet
// behaviors:
//
//  * Routing: each batch picks a group by power-of-two-choices on
//    least-outstanding batches among groups the router believes healthy.
//    Health is heartbeat-based (FailureDetector): a whole-group loss is
//    invisible to the router for WorkerDetectionDelay() seconds, during
//    which forwards to the dead group are lost on the wire.
//  * Hedging: when a batch's completion note has not returned within a
//    budget frozen at dispatch (hedge_factor x a quantile of recent note
//    round-trips, floored at hedge_min_budget), a duplicate is sent to a
//    second group. First valid completion wins; the late response is
//    cancelled at the router but its bytes were already charged. A hedge
//    is valid only if it scored against the same model generation the
//    primary was pinned to — the generation barrier — so no client ever
//    sees a response assembled across a swap.
//  * Failover: a batch that hits a group with dead shards fails at that
//    group's reply timeout (the group self-heals, PR 5 semantics) and the
//    router re-dispatches it to another group — zero wrong answers, and
//    with R >= 2 zero timeouts. A whole-group loss additionally drains
//    every batch outstanding on the group to survivors at detection time
//    and re-installs the group before routing to it again.
//
// Cross-tier traffic (forwards, completion notes, client responses,
// rejections) uses SimNetwork::SendUnqueued: groups execute eagerly at
// forward-arrival time, so their Send calls are issued out of chronological
// order across groups, and the shared receiver-NIC queue would otherwise
// order unrelated messages by call order instead of by time. Intra-group
// bulk traffic (scatter/gather/installs) stays on the queued path, where
// per-group serialization keeps call order chronological.
//
// With routing disabled (requires replicas == 1) the fleet delegates to a
// plain ServeFrontend — bitwise PR 5 behavior by construction.
//
// The run is bit-deterministic in (config, arrivals, scheduled events):
// route and hedge decisions draw from a dedicated seeded RNG stream, and
// Fingerprint() extends the frontend's response hash with the serving
// group and attempt count of every request.
#ifndef COLSGD_SERVE_FLEET_H_
#define COLSGD_SERVE_FLEET_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/fault/failure_detector.h"
#include "common/rng.h"
#include "serve/frontend.h"
#include "serve/frontend_types.h"
#include "serve/group.h"
#include "serve/workload.h"

namespace colsgd {

struct FleetConfig {
  int replicas = 2;          // R: number of shard groups
  ServeConfig serve;         // per-group shape (shards, batching, SLO)
  bool routing = true;       // false: delegate to ServeFrontend (R == 1)
  bool hedging = true;
  double hedge_quantile = 0.95;  // note round-trip quantile the budget tracks
  double hedge_factor = 2.0;     // budget = factor x quantile
  double hedge_min_budget = 2e-3;   // seconds; floor while the window warms up
  int64_t hedge_min_samples = 20;   // no hedging before this many notes
  int max_redispatch = 4;        // failed-batch re-dispatch attempts
  int straggle_group = -1;      // make one group a straggler ...
  double straggle_level = 0.0;  // ... at this level (extra time = L x task
                                // time, the trainer's straggler definition)
  FailureDetectorConfig detector;
  uint64_t seed = 1;  // route / hedge tie-breaking stream

  static Status Validate(const FleetConfig& config);
};

/// \brief Per-request routing story, parallel to records().
struct FleetRequestInfo {
  int group = -1;     // group that produced the delivered response
  int attempts = 0;   // dispatches, hedges included
  bool hedged = false;
  bool hedge_won = false;
};

struct FleetSummary : ServeSummary {
  int replicas = 0;
  int64_t hedges_fired = 0;
  int64_t hedge_wins = 0;        // delivered response came from the hedge
  int64_t hedges_cancelled = 0;  // late duplicate responses discarded
  int64_t hedges_suppressed = 0; // barrier or no eligible second group
  uint64_t hedge_bytes = 0;      // wire bytes attributable to hedges
  int64_t redispatches = 0;      // failed-batch re-dispatches (hedges excl.)
  int64_t group_down_events = 0; // whole-group losses detected
  std::vector<int64_t> group_completed;  // responses delivered per group
};

class ServeFleet {
 public:
  /// \param queries the query log every group scores from; must outlive
  /// the fleet.
  ServeFleet(const ClusterSpec& cluster_spec, const FleetConfig& config,
             const Dataset* queries);
  ~ServeFleet();

  /// \brief Installs the initial model (generation 0) on every group,
  /// charging the image distribution and per-group bring-up transfers.
  Status Install(const SavedModel& model, int64_t trained_iterations = 0);

  /// \brief Schedules a coordinated hot swap: at `time` the router
  /// CRC-validates the image ONCE, then ships it to every group; each group
  /// flips when its own install completes (double-buffered, batches in
  /// flight keep their pinned generation). A corrupt image is rejected at
  /// the router and no group is touched.
  void ScheduleSwapImage(double time, std::vector<uint8_t> image,
                         int64_t trained_iterations);
  void ScheduleSwap(double time, const SavedModel& model,
                    int64_t trained_iterations);

  /// \brief Schedules one shard of one group to die (group-local failover,
  /// PR 5 semantics, plus router re-dispatch of the failed batch).
  void ScheduleShardFailure(double time, int group, int shard);

  /// \brief Schedules a whole-group loss at `time`: every shard and the
  /// group's frontend die together. The router learns of it only after the
  /// heartbeat window (FailureDetector::WorkerDetectionDelay), drains the
  /// group's outstanding batches to survivors, and re-installs the group.
  void ScheduleGroupFailure(double time, int group);

  /// \brief Serves `arrivals` (sorted by time) to completion. Scheduled
  /// swaps and group-loss detections drain even when the workload finishes
  /// first, so the fleet returns at a healthy steady state with every
  /// scheduled fault accounted.
  Status Run(const std::vector<ServeRequest>& arrivals);

  const std::vector<RequestRecord>& records() const;
  /// \brief Routing story per request, parallel to records(). Empty in the
  /// routing-disabled delegation path.
  const std::vector<FleetRequestInfo>& request_infos() const {
    return infos_;
  }
  const std::vector<FailoverRecord>& failovers() const;

  FleetSummary Summarize() const;

  /// \brief CRC32C over every response (id, status, generation, score,
  /// completion — as ServeFrontend) extended with the serving group and
  /// attempt count. Equal across runs of the same seed.
  uint64_t Fingerprint() const;

  ClusterRuntime& runtime();
  /// \brief Group `g`'s executor (registries and generations for tests).
  const ShardGroup& group(int g) const { return *groups_[g]; }
  NodeId ingress() const { return ingress_; }
  void set_tracer(Tracer* tracer);
  void set_critpath(CritPathRecorder* critpath);

 private:
  static constexpr double kNever = std::numeric_limits<double>::infinity();

  struct Attempt {
    int group = -1;
    bool is_hedge = false;
    bool lost = false;     // forward landed on a dead group: no note ever
    bool closed = false;   // note processed (or drained)
    double note_arrival = kNever;      // simulation-known, router acts at it
    double response_arrival = kNever;  // ingress-side arrival when served
    double forward_sent = 0.0;
    BatchOutcome outcome;  // outcome.served == false for FailBatch / lost
  };

  struct FleetBatch {
    int64_t id = -1;
    std::vector<size_t> indices;  // records_ slots
    std::vector<uint32_t> rows;
    std::vector<Attempt> attempts;
    int dispatch_count = 0;  // primaries + redispatches (hedges excluded)
    bool hedged = false;
    double hedge_fire = kNever;  // armed at primary dispatch
    int64_t pinned_generation = -1;  // generation barrier anchor
    bool resolved = false;
  };

  struct ScheduledFleetSwap {
    double time = 0.0;
    std::vector<uint8_t> image;
    int64_t trained_iterations = 0;
    bool done = false;
  };
  struct ScheduledGroupLoss {
    double time = 0.0;
    double detect_at = 0.0;
    int group = -1;
    bool done = false;
  };

  /// \brief Groups the router would route to at router-clock `t`.
  std::vector<int> HealthyGroups(double t) const;
  /// \brief Power-of-two-choices over `healthy` (least outstanding, tie ->
  /// seeded coin flip); `exclude` removes one group (hedge target
  /// selection).
  int PickGroup(const std::vector<int>& healthy, int exclude);

  /// \brief Forwards `batch` to `group` at router time `t`; the group
  /// executes eagerly at forward arrival and the completion note (if any)
  /// becomes a pending router event.
  void Forward(FleetBatch* batch, int group, double t, bool is_hedge);
  void ProcessNote(FleetBatch* batch, size_t attempt_index);
  void FireHedge(FleetBatch* batch);
  void Redispatch(FleetBatch* batch, double t);
  void ResolveServed(FleetBatch* batch, size_t attempt_index);
  void ResolveTimedOut(FleetBatch* batch, double t);
  void ProcessSwapEvent(ScheduledFleetSwap* swap);
  void ProcessGroupLossDetection(ScheduledGroupLoss* loss);
  /// \brief Current hedge budget, or kNever while the window warms up.
  double HedgeBudget() const;

  FleetConfig config_;
  std::unique_ptr<ClusterRuntime> runtime_;
  std::vector<std::unique_ptr<ShardGroup>> groups_;
  const Dataset* queries_;
  NodeId ingress_ = 0;
  FailureDetector detector_;
  Rng route_rng_;

  // Delegation path (routing == false): bitwise PR 5 single frontend.
  std::unique_ptr<ServeFrontend> delegate_;
  ClusterSpec base_spec_;

  std::string model_name_;     // router-side validation anchor
  uint64_t num_features_ = 0;
  bool installed_ = false;

  std::vector<ScheduledFleetSwap> fleet_swaps_;
  std::vector<ScheduledGroupLoss> group_losses_;

  // Router state during Run.
  std::vector<int64_t> outstanding_;   // forwards minus processed notes
  std::vector<double> down_at_;        // group death time (kNever: alive)
  std::vector<double> healthy_at_;     // router routes again from here
  std::vector<double> note_samples_;   // rolling note round-trip window
  size_t note_sample_next_ = 0;
  std::vector<FleetBatch> batches_store_;

  std::vector<RequestRecord> records_;
  std::vector<FleetRequestInfo> infos_;
  std::vector<FailoverRecord> failovers_;
  std::vector<int64_t> group_completed_;
  int64_t batch_ids_ = 0;
  int64_t reject_messages_ = 0;
  int64_t swaps_completed_ = 0;
  int64_t swaps_failed_ = 0;
  int64_t hedges_fired_ = 0;
  int64_t hedge_wins_ = 0;
  int64_t hedges_cancelled_ = 0;
  int64_t hedges_suppressed_ = 0;
  uint64_t hedge_bytes_ = 0;
  int64_t redispatches_ = 0;
  int64_t group_down_events_ = 0;
  int64_t timed_out_batches_ = 0;
  bool ran_ = false;
};

}  // namespace colsgd

#endif  // COLSGD_SERVE_FLEET_H_
