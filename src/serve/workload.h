// Open-loop workload generation for the serving plane.
//
// Arrivals are generated ahead of time from a seed — the load does not
// react to the system (open loop), which is what makes queueing delay
// visible when the frontend falls behind. Two processes:
//
//  * "poisson": homogeneous Poisson arrivals at `rate` requests/second
//    (exponential inter-arrival gaps);
//  * "burst": a piecewise-constant-rate Poisson process that alternates
//    between the base rate and rate * burst_factor for burst_duration
//    seconds out of every burst_period — a square-wave flash-crowd.
//
// Each request references one row of a query dataset (drawn uniformly from
// an independent RNG stream), so online scores are directly comparable with
// the offline kernel over the same rows.
#ifndef COLSGD_SERVE_WORKLOAD_H_
#define COLSGD_SERVE_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace colsgd {

/// \brief One inference request: a query-dataset row arriving at a
/// simulated time.
struct ServeRequest {
  uint64_t id = 0;
  double arrival = 0.0;  // simulated seconds
  uint32_t row = 0;      // index into the query dataset
};

struct WorkloadConfig {
  std::string arrivals = "poisson";  // "poisson" | "burst"
  double rate = 2000.0;              // base arrival rate, requests/second
  int64_t num_requests = 1000;
  uint64_t seed = 1;
  // Burst shape (arrivals == "burst").
  double burst_period = 0.050;    // seconds from burst start to burst start
  double burst_duration = 0.010;  // seconds of elevated rate per period
  double burst_factor = 8.0;      // rate multiplier inside a burst

  static Status Validate(const WorkloadConfig& config);
};

/// \brief Generates `config.num_requests` arrivals, sorted by time, with
/// rows drawn uniformly from [0, num_query_rows). Deterministic in the seed.
std::vector<ServeRequest> GenerateArrivals(const WorkloadConfig& config,
                                           size_t num_query_rows);

}  // namespace colsgd

#endif  // COLSGD_SERVE_WORKLOAD_H_
