// Open-loop workload generation for the serving plane.
//
// Arrivals are generated ahead of time from a seed — the load does not
// react to the system (open loop), which is what makes queueing delay
// visible when the frontend falls behind. Four processes:
//
//  * "poisson": homogeneous Poisson arrivals at `rate` requests/second
//    (exponential inter-arrival gaps);
//  * "burst": a piecewise-constant-rate Poisson process that alternates
//    between the base rate and rate * burst_factor for burst_duration
//    seconds out of every burst_period — a repeating square wave;
//  * "diurnal": a sinusoidal rate curve, rate * (1 + amplitude *
//    sin(2*pi*(t/period + phase))) clamped to >= 5% of the base rate — a
//    compressed day/night traffic cycle;
//  * "flash": the base rate with ONE flash crowd: rate * flash_factor for
//    flash_duration seconds starting at flash_at — the scenario a routing
//    tier must shed load through (DESIGN.md §17 degradation ladder).
//
// Each request references one row of a query dataset (drawn uniformly from
// an independent RNG stream), so online scores are directly comparable with
// the offline kernel over the same rows.
#ifndef COLSGD_SERVE_WORKLOAD_H_
#define COLSGD_SERVE_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace colsgd {

/// \brief One inference request: a query-dataset row arriving at a
/// simulated time.
struct ServeRequest {
  uint64_t id = 0;
  double arrival = 0.0;  // simulated seconds
  uint32_t row = 0;      // index into the query dataset
};

struct WorkloadConfig {
  // "poisson" | "burst" | "diurnal" | "flash"
  std::string arrivals = "poisson";
  double rate = 2000.0;  // base arrival rate, requests/second
  int64_t num_requests = 1000;
  uint64_t seed = 1;
  // Burst shape (arrivals == "burst").
  double burst_period = 0.050;    // seconds from burst start to burst start
  double burst_duration = 0.010;  // seconds of elevated rate per period
  double burst_factor = 8.0;      // rate multiplier inside a burst
  // Diurnal shape (arrivals == "diurnal").
  double diurnal_period = 0.200;   // seconds per simulated "day"
  double diurnal_amplitude = 0.8;  // peak-to-base swing, in [0, 1]
  double diurnal_phase = 0.0;      // fraction of a period, [0, 1)
  // Flash-crowd shape (arrivals == "flash").
  double flash_at = 0.050;        // seconds; start of the flash crowd
  double flash_duration = 0.020;  // seconds of elevated rate
  double flash_factor = 10.0;     // rate multiplier inside the flash

  static Status Validate(const WorkloadConfig& config);
};

/// \brief Instantaneous request rate of `config` at time `t` (the shape the
/// thinning generator draws gaps from; exposed for tests and benches).
double WorkloadRateAt(const WorkloadConfig& config, double t);

/// \brief Generates `config.num_requests` arrivals, sorted by time, with
/// rows drawn uniformly from [0, num_query_rows). Deterministic in the seed.
std::vector<ServeRequest> GenerateArrivals(const WorkloadConfig& config,
                                           size_t num_query_rows);

}  // namespace colsgd

#endif  // COLSGD_SERVE_WORKLOAD_H_
