#include "serve/frontend.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>

#include "common/crc32c.h"
#include "serve/wire.h"

namespace colsgd {

namespace {

/// \brief Nearest-rank percentile over an ascending-sorted sample.
double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const size_t n = sorted.size();
  size_t rank = static_cast<size_t>(std::ceil(q * static_cast<double>(n)));
  if (rank < 1) rank = 1;
  if (rank > n) rank = n;
  return sorted[rank - 1];
}

}  // namespace

Status ServeConfig::Validate(const ServeConfig& config) {
  if (config.num_shards < 1) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  if (config.max_batch < 1) {
    return Status::InvalidArgument("max_batch must be >= 1");
  }
  if (!(config.max_delay >= 0.0)) {
    return Status::InvalidArgument("max_delay must be >= 0");
  }
  if (config.queue_capacity < config.max_batch) {
    return Status::InvalidArgument(
        "queue_capacity must be >= max_batch (a full batch must fit)");
  }
  if (!(config.reply_timeout > 0.0)) {
    return Status::InvalidArgument("reply_timeout must be positive");
  }
  if (!(config.slo_latency > 0.0)) {
    return Status::InvalidArgument("slo_latency must be positive");
  }
  return Status::OK();
}

ServeFrontend::ServeFrontend(const ClusterSpec& cluster_spec,
                             const ServeConfig& config, const Dataset* queries)
    : config_(config), queries_(queries) {
  COLSGD_CHECK_OK(ServeConfig::Validate(config));
  COLSGD_CHECK(queries != nullptr);
  COLSGD_CHECK_GT(queries->num_rows(), 0u);
  // The serving cluster reuses the training plane's machine model: the
  // frontend is the master node, shard server k is worker node k+1, and one
  // extra endpoint is the client ingress (rejection replies land there).
  ClusterSpec spec = cluster_spec;
  spec.num_workers = config.num_shards;
  runtime_ = std::make_unique<ClusterRuntime>(spec, /*extra_nodes=*/1);
  ingress_ = runtime_->extra_node(0);
  std::vector<NodeId> shards;
  shards.reserve(static_cast<size_t>(config.num_shards));
  for (int k = 0; k < config.num_shards; ++k) {
    shards.push_back(runtime_->worker_node(k));
  }
  group_ = std::make_unique<ShardGroup>(runtime_.get(), runtime_->master(),
                                        std::move(shards), config, queries);
}

Status ServeFrontend::Install(const SavedModel& model,
                              int64_t trained_iterations) {
  return group_->Install(model, trained_iterations);
}

void ServeFrontend::ScheduleSwapImage(double time, std::vector<uint8_t> image,
                                      int64_t trained_iterations) {
  COLSGD_CHECK(!ran_) << "schedule swaps before Run";
  group_->ScheduleSwapImage(time, std::move(image), trained_iterations);
}

void ServeFrontend::ScheduleSwap(double time, const SavedModel& model,
                                 int64_t trained_iterations) {
  ScheduleSwapImage(time, SerializeModel(model), trained_iterations);
}

void ServeFrontend::ScheduleShardFailure(double time, int shard) {
  COLSGD_CHECK(!ran_) << "schedule failures before Run";
  group_->ScheduleShardFailure(time, shard);
}

Status ServeFrontend::Run(const std::vector<ServeRequest>& arrivals) {
  if (ran_) return Status::FailedPrecondition("Run may be called once");
  if (!group_->has_model()) {
    return Status::FailedPrecondition("no model installed");
  }
  for (size_t i = 0; i < arrivals.size(); ++i) {
    if (i > 0 && arrivals[i].arrival < arrivals[i - 1].arrival) {
      return Status::InvalidArgument("arrivals must be sorted by time");
    }
    if (arrivals[i].row >= queries_->num_rows()) {
      return Status::InvalidArgument("request row beyond the query dataset");
    }
  }
  ran_ = true;

  records_.clear();
  records_.reserve(arrivals.size());
  for (const ServeRequest& req : arrivals) {
    RequestRecord rec;
    rec.id = req.id;
    rec.row = req.row;
    rec.arrival = req.arrival;
    records_.push_back(rec);
  }

  const NodeId master = runtime_->master();
  std::deque<Pending> queue;
  size_t next = 0;
  while (next < arrivals.size() || !queue.empty()) {
    if (queue.empty()) {
      // Idle: jump to the next arrival (events due before it fire first).
      const ServeRequest& req = arrivals[next];
      group_->ProcessEventsUpTo(req.arrival);
      queue.push_back(Pending{next, req.id, req.row, req.arrival});
      ++next;
      continue;
    }
    // Tentative dispatch moment of the batch at the head of the queue:
    // the instant it filled, or the oldest request's deadline — but never
    // before the frontend is free.
    const double free_at = runtime_->clock(master);
    double trigger;
    if (static_cast<int64_t>(queue.size()) >= config_.max_batch) {
      trigger = queue[static_cast<size_t>(config_.max_batch) - 1].arrival;
    } else {
      trigger = queue.front().arrival + config_.max_delay;
    }
    const double t_dispatch = std::max(free_at, trigger);
    // Any arrival strictly before the dispatch moment is admitted (or
    // rejected) first; admitting may fill the batch and pull the dispatch
    // earlier, so recompute from the top.
    if (next < arrivals.size() && arrivals[next].arrival < t_dispatch) {
      const ServeRequest& req = arrivals[next];
      if (static_cast<int64_t>(queue.size()) < config_.queue_capacity) {
        queue.push_back(Pending{next, req.id, req.row, req.arrival});
      } else {
        // Shedding is not free: the record keeps its default kRejected
        // status AND the frontend answers the client with one control-sized
        // rejection, charged on the wire exactly once. The reply cannot
        // leave before the request arrived or while earlier traffic still
        // occupies the NIC (SendUnqueued resolves the latter).
        const double t_send = std::max(runtime_->clock(master), req.arrival);
        runtime_->net().SendUnqueued(master, ingress_, kRejectMessageBytes,
                                     t_send);
        ++reject_messages_;
      }
      ++next;
      continue;
    }
    // Dispatch. Due swaps/failures fire first; install work may push the
    // frontend past the trigger, which the queue segment absorbs.
    group_->ProcessEventsUpTo(t_dispatch);
    const double t_batch = std::max(t_dispatch, runtime_->clock(master));
    runtime_->SyncClockTo(master, t_batch);
    const size_t take =
        std::min(queue.size(), static_cast<size_t>(config_.max_batch));
    std::vector<Pending> batch(queue.begin(),
                               queue.begin() + static_cast<long>(take));
    queue.erase(queue.begin(), queue.begin() + static_cast<long>(take));
    std::vector<uint32_t> rows;
    rows.reserve(batch.size());
    for (const Pending& p : batch) rows.push_back(p.row);
    if (!group_->HasDeadShards()) {
      const BatchOutcome out = group_->ServeBatch(rows, t_batch, batches_);
      for (size_t i = 0; i < batch.size(); ++i) {
        RequestRecord& rec = records_[batch[i].index];
        rec.status = RequestStatus::kCompleted;
        rec.generation = out.generation;
        rec.score = out.scores[i];
        rec.batch = batches_;
        rec.dispatch = out.dispatch;
        rec.completion = out.completion;
        rec.queue_s = out.dispatch - rec.arrival;
        rec.scatter_s = out.scatter_end - out.dispatch;
        rec.compute_s = out.compute_end - out.scatter_end;
        rec.gather_s = out.completion - out.compute_end;
      }
    } else {
      const BatchOutcome out = group_->FailBatch(rows, t_batch);
      for (const Pending& p : batch) {
        RequestRecord& rec = records_[p.index];
        rec.status = RequestStatus::kTimedOut;
        rec.batch = batches_;
        rec.dispatch = out.dispatch;
        rec.completion = out.completion;
        rec.queue_s = out.dispatch - rec.arrival;
      }
      std::vector<FailoverRecord> recovered =
          group_->ReinstallDeadShards(out.completion);
      for (FailoverRecord& fo : recovered) {
        fo.requests_timed_out = static_cast<int64_t>(batch.size());
        failovers_.push_back(fo);
      }
    }
    ++batches_;
  }
  return Status::OK();
}

ServeSummary ServeFrontend::Summarize() const {
  ServeSummary s;
  s.offered = static_cast<int64_t>(records_.size());
  std::vector<double> latencies;
  int64_t slo_violations = 0;
  double last_completion = 0.0;
  for (const RequestRecord& rec : records_) {
    switch (rec.status) {
      case RequestStatus::kCompleted: {
        ++s.completed;
        const double latency = rec.completion - rec.arrival;
        latencies.push_back(latency);
        if (latency > config_.slo_latency) ++slo_violations;
        last_completion = std::max(last_completion, rec.completion);
        break;
      }
      case RequestStatus::kRejected:
        ++s.rejected;
        ++slo_violations;
        break;
      case RequestStatus::kTimedOut:
        ++s.timed_out;
        ++slo_violations;
        last_completion = std::max(last_completion, rec.completion);
        break;
    }
  }
  s.batches = batches_;
  s.makespan = last_completion;
  s.throughput = last_completion > 0.0
                     ? static_cast<double>(s.completed) / last_completion
                     : 0.0;
  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    double sum = 0.0;
    for (double l : latencies) sum += l;
    s.latency_mean = sum / static_cast<double>(latencies.size());
    s.latency_p50 = Percentile(latencies, 0.50);
    s.latency_p95 = Percentile(latencies, 0.95);
    s.latency_p99 = Percentile(latencies, 0.99);
    s.latency_max = latencies.back();
  }
  const TrafficStats total = runtime_->net().TotalStats();
  s.wire_bytes = total.bytes_sent;
  s.wire_messages = total.messages_sent;
  s.bytes_per_request =
      s.completed > 0
          ? static_cast<double>(s.wire_bytes) / static_cast<double>(s.completed)
          : 0.0;
  for (const GenerationInfo& info : group_->registry().history()) {
    if (!info.ok) {
      ++s.swaps_failed;
    } else if (info.generation > 0) {
      ++s.swaps_completed;  // generation 0 is bring-up, not a swap
    }
  }
  s.swap_stall_seconds = group_->swap_stall_seconds();
  s.failovers = static_cast<int64_t>(failovers_.size());
  for (const FailoverRecord& fo : failovers_) {
    s.failover_seconds += fo.recovered_at - fo.failed_at;
  }
  s.slo_violation_fraction =
      s.offered > 0 ? static_cast<double>(slo_violations) /
                          static_cast<double>(s.offered)
                    : 0.0;
  return s;
}

uint64_t ServeFrontend::Fingerprint() const {
  uint32_t crc = 0;
  for (const RequestRecord& rec : records_) {
    crc = ExtendCrc32c(crc, &rec.id, sizeof(rec.id));
    const uint8_t status = static_cast<uint8_t>(rec.status);
    crc = ExtendCrc32c(crc, &status, sizeof(status));
    crc = ExtendCrc32c(crc, &rec.generation, sizeof(rec.generation));
    const uint64_t score_bits = CanonicalDoubleBits(rec.score);
    crc = ExtendCrc32c(crc, &score_bits, sizeof(score_bits));
    const uint64_t completion_bits = CanonicalDoubleBits(rec.completion);
    crc = ExtendCrc32c(crc, &completion_bits, sizeof(completion_bits));
  }
  return crc;
}

uint64_t CanonicalDoubleBits(double value) {
  if (std::isnan(value)) return 0x7ff8000000000000ULL;
  uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

}  // namespace colsgd
