#include "serve/frontend.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>

#include "common/crc32c.h"
#include "model/factory.h"
#include "serve/wire.h"

namespace colsgd {

namespace {

/// \brief Nearest-rank percentile over an ascending-sorted sample.
double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const size_t n = sorted.size();
  size_t rank = static_cast<size_t>(std::ceil(q * static_cast<double>(n)));
  if (rank < 1) rank = 1;
  if (rank > n) rank = n;
  return sorted[rank - 1];
}

/// \brief Bit pattern of a double with every NaN collapsed to the quiet
/// canonical one, so fingerprints are stable across NaN payloads.
uint64_t CanonicalBits(double value) {
  if (std::isnan(value)) return 0x7ff8000000000000ULL;
  uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

}  // namespace

Status ServeConfig::Validate(const ServeConfig& config) {
  if (config.num_shards < 1) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  if (config.max_batch < 1) {
    return Status::InvalidArgument("max_batch must be >= 1");
  }
  if (!(config.max_delay >= 0.0)) {
    return Status::InvalidArgument("max_delay must be >= 0");
  }
  if (config.queue_capacity < config.max_batch) {
    return Status::InvalidArgument(
        "queue_capacity must be >= max_batch (a full batch must fit)");
  }
  if (!(config.reply_timeout > 0.0)) {
    return Status::InvalidArgument("reply_timeout must be positive");
  }
  if (!(config.slo_latency > 0.0)) {
    return Status::InvalidArgument("slo_latency must be positive");
  }
  return Status::OK();
}

ServeFrontend::ServeFrontend(const ClusterSpec& cluster_spec,
                             const ServeConfig& config, const Dataset* queries)
    : config_(config), queries_(queries) {
  COLSGD_CHECK_OK(ServeConfig::Validate(config));
  COLSGD_CHECK(queries != nullptr);
  COLSGD_CHECK_GT(queries->num_rows(), 0u);
  // The serving cluster reuses the training plane's machine model: the
  // frontend is the master node, shard server k is worker node k+1.
  ClusterSpec spec = cluster_spec;
  spec.num_workers = config.num_shards;
  runtime_ = std::make_unique<ClusterRuntime>(spec);
  shard_alive_.assign(static_cast<size_t>(config.num_shards), true);
  shard_failed_at_.assign(static_cast<size_t>(config.num_shards), 0.0);
}

double ServeFrontend::TransferImage(const ShardedModelImage& image) {
  const NodeId master = runtime_->master();
  const double start = runtime_->clock(master);
  // Partitioning sweeps the full weight image once on the frontend.
  runtime_->ChargeMemTouch(master, image.WeightBytes());
  double done = runtime_->clock(master);
  for (int k = 0; k < config_.num_shards; ++k) {
    const NodeId node = runtime_->worker_node(k);
    const uint64_t slots = image.partitions[k].size();
    const uint64_t bytes = InstallMessageBytes(slots, image.shared.size());
    runtime_->Send(master, node, bytes);
    // The shard writes the partition into its serving copy.
    runtime_->ChargeMemTouch(node, (slots + image.shared.size()) * kWeightBytes);
    done = std::max(done, runtime_->clock(node));
  }
  if (runtime_->tracer() != nullptr) {
    runtime_->tracer()->RecordSpan("serve.install", master, start,
                                   done - start, image.WeightBytes());
  }
  return done;
}

Status ServeFrontend::Install(const SavedModel& model,
                              int64_t trained_iterations) {
  if (registry_.has_active()) {
    return Status::FailedPrecondition(
        "a model is already installed; use ScheduleSwap");
  }
  std::unique_ptr<ModelSpec> spec = MakeModel(model.model_name);
  if (!spec->SupportsStatScore()) {
    return Status::InvalidArgument(
        model.model_name +
        " cannot score from statistics alone; it is not servable");
  }
  const uint64_t expected =
      model.num_features * static_cast<uint64_t>(spec->weights_per_feature());
  if (model.weights.size() != expected) {
    return Status::InvalidArgument("model weight count does not match " +
                                   model.model_name);
  }
  if (queries_->num_features > model.num_features) {
    return Status::InvalidArgument(
        "query rows reference features beyond the model's dimension");
  }
  spec_ = std::move(spec);
  model_name_ = model.model_name;
  partitioner_ =
      MakePartitioner(config_.partitioner, model.num_features,
                      config_.num_shards);

  GenerationInfo info;
  info.trained_iterations = trained_iterations;
  info.install_start = runtime_->clock(runtime_->master());
  ShardedModelImage image = ShardSavedModel(model, *spec_, *partitioner_);
  const double done = TransferImage(image);
  info.install_done = done;
  registry_.Install(std::move(image), info);
  last_install_done_ = done;
  return Status::OK();
}

void ServeFrontend::ScheduleSwapImage(double time, std::vector<uint8_t> image,
                                      int64_t trained_iterations) {
  COLSGD_CHECK(!ran_) << "schedule swaps before Run";
  ScheduledSwap swap;
  swap.time = time;
  swap.image = std::move(image);
  swap.trained_iterations = trained_iterations;
  swaps_.push_back(std::move(swap));
}

void ServeFrontend::ScheduleSwap(double time, const SavedModel& model,
                                 int64_t trained_iterations) {
  ScheduleSwapImage(time, SerializeModel(model), trained_iterations);
}

void ServeFrontend::ScheduleShardFailure(double time, int shard) {
  COLSGD_CHECK(!ran_) << "schedule failures before Run";
  COLSGD_CHECK_GE(shard, 0);
  COLSGD_CHECK_LT(shard, config_.num_shards);
  ScheduledFailure failure;
  failure.time = time;
  failure.shard = shard;
  failures_.push_back(failure);
}

void ServeFrontend::ProcessSwap(ScheduledSwap* swap) {
  const NodeId master = runtime_->master();
  // Installs are serialized: a swap that fires while a previous install's
  // transfers are still in flight starts when they land.
  const double start = std::max(
      {swap->time, runtime_->clock(master), last_install_done_});
  runtime_->SyncClockTo(master, start);
  registry_.ActiveAt(start);  // flip any install that completed by now

  GenerationInfo info;
  info.trained_iterations = swap->trained_iterations;
  info.install_start = start;

  // CRC validation scans the serialized image on the frontend.
  runtime_->ChargeMemTouch(master, swap->image.size());
  Result<SavedModel> parsed = ParseModel(swap->image);
  const bool valid = parsed.ok() &&
                     parsed.ValueOrDie().model_name == model_name_ &&
                     parsed.ValueOrDie().num_features ==
                         partitioner_->num_features();
  if (!valid) {
    // Damaged or mismatched image: the active generation keeps serving.
    info.install_done = runtime_->clock(master);
    registry_.RecordFailedInstall(info);
    swap_stall_seconds_ += runtime_->clock(master) - start;
    if (runtime_->tracer() != nullptr) {
      runtime_->tracer()->RecordInstant("serve.swap_rejected", master,
                                        runtime_->clock(master));
    }
    return;
  }

  ShardedModelImage image =
      ShardSavedModel(parsed.ValueOrDie(), *spec_, *partitioner_);
  const double done = TransferImage(image);
  info.install_done = done;
  registry_.Install(std::move(image), info);
  last_install_done_ = done;
  // Stall is the frontend-core time the install consumed (validation +
  // partitioning sweeps); the shard transfers overlap with serving on the
  // NIC and surface as scatter delay instead.
  swap_stall_seconds_ += runtime_->clock(master) - start;
  if (runtime_->tracer() != nullptr) {
    runtime_->tracer()->RecordSpan("serve.swap", master, start, done - start,
                                   swap->image.size());
  }
}

void ServeFrontend::ProcessEventsUpTo(double t) {
  // Chronological merge of due failures and swaps; ties kill before they
  // heal (a failure at the same instant as a swap is processed first).
  for (;;) {
    ScheduledFailure* next_failure = nullptr;
    for (auto& failure : failures_) {
      if (!failure.done && failure.time <= t &&
          (next_failure == nullptr || failure.time < next_failure->time)) {
        next_failure = &failure;
      }
    }
    ScheduledSwap* next_swap = nullptr;
    for (auto& swap : swaps_) {
      if (!swap.done && swap.time <= t &&
          (next_swap == nullptr || swap.time < next_swap->time)) {
        next_swap = &swap;
      }
    }
    if (next_failure == nullptr && next_swap == nullptr) return;
    if (next_failure != nullptr &&
        (next_swap == nullptr || next_failure->time <= next_swap->time)) {
      const int shard = next_failure->shard;
      if (shard_alive_[shard]) {
        shard_alive_[shard] = false;
        shard_failed_at_[shard] = next_failure->time;
        if (runtime_->tracer() != nullptr) {
          runtime_->tracer()->RecordInstant(
              "serve.shard_fail", runtime_->worker_node(shard),
              next_failure->time);
        }
      }
      next_failure->done = true;
    } else {
      ProcessSwap(next_swap);
      next_swap->done = true;
    }
  }
}

void ServeFrontend::ServeBatch(const std::vector<Pending>& batch,
                               double t_dispatch) {
  const NodeId master = runtime_->master();
  const size_t n = batch.size();
  const int num_shards = config_.num_shards;
  const int64_t generation = registry_.ActiveAt(t_dispatch);
  const ShardedModelImage& image = registry_.image(generation);

  // Admission + framing on the frontend core.
  runtime_->ChargeCompute(
      master, kDispatchFlopsPerBatch + n * kDispatchFlopsPerRequest);

  std::vector<SparseVectorView> rows;
  rows.reserve(n);
  for (const Pending& p : batch) rows.push_back(queries_->rows.Row(p.row));
  const std::vector<CsrBatch> slices = SplitBatchByShard(rows, *partitioner_);
  const ShardScoreResult scored = ScoreShardedBatch(*spec_, image, slices);

  // Scatter: the per-shard slices leave the frontend NIC back to back.
  double scatter_end = runtime_->clock(master);
  for (int k = 0; k < num_shards; ++k) {
    const double arrival = runtime_->Send(
        master, runtime_->worker_node(k),
        ScatterMessageBytes(n, slices[k].nnz()));
    scatter_end = std::max(scatter_end, arrival);
  }

  // Shard compute. Each shard starts at its slice's arrival (or later, when
  // a model install left its clock ahead — swap pressure shows up here).
  double compute_end = scatter_end;
  for (int k = 0; k < num_shards; ++k) {
    const NodeId node = runtime_->worker_node(k);
    runtime_->ChargeCompute(node, scored.shard_flops[k]);
    compute_end = std::max(compute_end, runtime_->clock(node));
  }

  // Gather: each shard replies as it finishes; the frontend reduces after
  // the last partial lands.
  for (int k = 0; k < num_shards; ++k) {
    runtime_->Send(runtime_->worker_node(k), master,
                   GatherMessageBytes(n, spec_->stats_per_point()));
  }
  runtime_->ChargeCompute(master, scored.reduce_flops);
  const double completion = runtime_->clock(master);

  if (runtime_->tracer() != nullptr) {
    runtime_->tracer()->RecordSpan("serve.batch", master, t_dispatch,
                                   completion - t_dispatch, 0, batches_);
  }

  for (size_t i = 0; i < n; ++i) {
    RequestRecord& rec = records_[batch[i].index];
    rec.status = RequestStatus::kCompleted;
    rec.generation = generation;
    rec.score = scored.scores[i];
    rec.batch = batches_;
    rec.dispatch = t_dispatch;
    rec.completion = completion;
    rec.queue_s = t_dispatch - rec.arrival;
    rec.scatter_s = scatter_end - t_dispatch;
    rec.compute_s = compute_end - scatter_end;
    rec.gather_s = completion - compute_end;
  }
}

void ServeFrontend::FailBatchAndRecover(const std::vector<Pending>& batch,
                                        double t_dispatch,
                                        const std::vector<int>& dead_shards) {
  const NodeId master = runtime_->master();
  const size_t n = batch.size();

  // The frontend doesn't know yet: it frames and scatters normally. The
  // slices to dead shards still cross the wire (and are lost).
  runtime_->ChargeCompute(
      master, kDispatchFlopsPerBatch + n * kDispatchFlopsPerRequest);
  std::vector<SparseVectorView> rows;
  rows.reserve(n);
  for (const Pending& p : batch) rows.push_back(queries_->rows.Row(p.row));
  const std::vector<CsrBatch> slices = SplitBatchByShard(rows, *partitioner_);
  for (int k = 0; k < config_.num_shards; ++k) {
    runtime_->Send(master, runtime_->worker_node(k),
                   ScatterMessageBytes(n, slices[k].nnz()));
  }

  // No complete gather ever forms; the reply timeout declares the batch
  // dead. Every affected request times out — never a wrong answer.
  const double detected =
      std::max(t_dispatch + config_.reply_timeout, runtime_->clock(master));
  runtime_->SyncClockTo(master, detected);
  for (const Pending& p : batch) {
    RequestRecord& rec = records_[p.index];
    rec.status = RequestStatus::kTimedOut;
    rec.batch = batches_;
    rec.dispatch = t_dispatch;
    rec.completion = detected;
    rec.queue_s = t_dispatch - rec.arrival;
  }

  // Failover: ship the active generation's partition to each replacement
  // shard server, which takes over the dead one's node identity.
  const int64_t generation = registry_.ActiveAt(t_dispatch);
  const ShardedModelImage& image = registry_.image(generation);
  for (int shard : dead_shards) {
    const NodeId node = runtime_->worker_node(shard);
    const uint64_t slots = image.partitions[shard].size();
    const uint64_t bytes = InstallMessageBytes(slots, image.shared.size());
    runtime_->Send(master, node, bytes);
    runtime_->ChargeMemTouch(node, (slots + image.shared.size()) * kWeightBytes);

    FailoverRecord fo;
    fo.shard = shard;
    fo.failed_at = shard_failed_at_[shard];
    fo.detected_at = detected;
    fo.recovered_at = runtime_->clock(node);
    fo.reinstall_bytes = bytes;
    fo.requests_timed_out = static_cast<int64_t>(n);
    failovers_.push_back(fo);
    shard_alive_[shard] = true;
    if (runtime_->tracer() != nullptr) {
      runtime_->tracer()->RecordSpan("serve.failover", node, detected,
                                     fo.recovered_at - detected, bytes);
    }
  }
}

Status ServeFrontend::Run(const std::vector<ServeRequest>& arrivals) {
  if (ran_) return Status::FailedPrecondition("Run may be called once");
  if (!registry_.has_active()) {
    return Status::FailedPrecondition("no model installed");
  }
  for (size_t i = 0; i < arrivals.size(); ++i) {
    if (i > 0 && arrivals[i].arrival < arrivals[i - 1].arrival) {
      return Status::InvalidArgument("arrivals must be sorted by time");
    }
    if (arrivals[i].row >= queries_->num_rows()) {
      return Status::InvalidArgument("request row beyond the query dataset");
    }
  }
  ran_ = true;

  records_.clear();
  records_.reserve(arrivals.size());
  for (const ServeRequest& req : arrivals) {
    RequestRecord rec;
    rec.id = req.id;
    rec.row = req.row;
    rec.arrival = req.arrival;
    records_.push_back(rec);
  }

  const NodeId master = runtime_->master();
  std::deque<Pending> queue;
  size_t next = 0;
  while (next < arrivals.size() || !queue.empty()) {
    if (queue.empty()) {
      // Idle: jump to the next arrival (events due before it fire first).
      const ServeRequest& req = arrivals[next];
      ProcessEventsUpTo(req.arrival);
      queue.push_back(Pending{next, req.id, req.row, req.arrival});
      ++next;
      continue;
    }
    // Tentative dispatch moment of the batch at the head of the queue:
    // the instant it filled, or the oldest request's deadline — but never
    // before the frontend is free.
    const double free_at = runtime_->clock(master);
    double trigger;
    if (static_cast<int64_t>(queue.size()) >= config_.max_batch) {
      trigger = queue[static_cast<size_t>(config_.max_batch) - 1].arrival;
    } else {
      trigger = queue.front().arrival + config_.max_delay;
    }
    const double t_dispatch = std::max(free_at, trigger);
    // Any arrival strictly before the dispatch moment is admitted (or
    // rejected) first; admitting may fill the batch and pull the dispatch
    // earlier, so recompute from the top.
    if (next < arrivals.size() && arrivals[next].arrival < t_dispatch) {
      const ServeRequest& req = arrivals[next];
      if (static_cast<int64_t>(queue.size()) < config_.queue_capacity) {
        queue.push_back(Pending{next, req.id, req.row, req.arrival});
      }
      // else: the record keeps its default kRejected status.
      ++next;
      continue;
    }
    // Dispatch. Due swaps/failures fire first; install work may push the
    // frontend past the trigger, which the queue segment absorbs.
    ProcessEventsUpTo(t_dispatch);
    const double t_batch = std::max(t_dispatch, runtime_->clock(master));
    runtime_->SyncClockTo(master, t_batch);
    const size_t take =
        std::min(queue.size(), static_cast<size_t>(config_.max_batch));
    std::vector<Pending> batch(queue.begin(),
                               queue.begin() + static_cast<long>(take));
    queue.erase(queue.begin(), queue.begin() + static_cast<long>(take));
    std::vector<int> dead;
    for (int k = 0; k < config_.num_shards; ++k) {
      if (!shard_alive_[k]) dead.push_back(k);
    }
    if (dead.empty()) {
      ServeBatch(batch, t_batch);
    } else {
      FailBatchAndRecover(batch, t_batch, dead);
    }
    ++batches_;
  }
  return Status::OK();
}

ServeSummary ServeFrontend::Summarize() const {
  ServeSummary s;
  s.offered = static_cast<int64_t>(records_.size());
  std::vector<double> latencies;
  int64_t slo_violations = 0;
  double last_completion = 0.0;
  for (const RequestRecord& rec : records_) {
    switch (rec.status) {
      case RequestStatus::kCompleted: {
        ++s.completed;
        const double latency = rec.completion - rec.arrival;
        latencies.push_back(latency);
        if (latency > config_.slo_latency) ++slo_violations;
        last_completion = std::max(last_completion, rec.completion);
        break;
      }
      case RequestStatus::kRejected:
        ++s.rejected;
        ++slo_violations;
        break;
      case RequestStatus::kTimedOut:
        ++s.timed_out;
        ++slo_violations;
        last_completion = std::max(last_completion, rec.completion);
        break;
    }
  }
  s.batches = batches_;
  s.makespan = last_completion;
  s.throughput = last_completion > 0.0
                     ? static_cast<double>(s.completed) / last_completion
                     : 0.0;
  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    double sum = 0.0;
    for (double l : latencies) sum += l;
    s.latency_mean = sum / static_cast<double>(latencies.size());
    s.latency_p50 = Percentile(latencies, 0.50);
    s.latency_p95 = Percentile(latencies, 0.95);
    s.latency_p99 = Percentile(latencies, 0.99);
    s.latency_max = latencies.back();
  }
  const TrafficStats total = runtime_->net().TotalStats();
  s.wire_bytes = total.bytes_sent;
  s.wire_messages = total.messages_sent;
  s.bytes_per_request =
      s.completed > 0
          ? static_cast<double>(s.wire_bytes) / static_cast<double>(s.completed)
          : 0.0;
  for (const GenerationInfo& info : registry_.history()) {
    if (!info.ok) {
      ++s.swaps_failed;
    } else if (info.generation > 0) {
      ++s.swaps_completed;  // generation 0 is bring-up, not a swap
    }
  }
  s.swap_stall_seconds = swap_stall_seconds_;
  s.failovers = static_cast<int64_t>(failovers_.size());
  for (const FailoverRecord& fo : failovers_) {
    s.failover_seconds += fo.recovered_at - fo.failed_at;
  }
  s.slo_violation_fraction =
      s.offered > 0 ? static_cast<double>(slo_violations) /
                          static_cast<double>(s.offered)
                    : 0.0;
  return s;
}

uint64_t ServeFrontend::Fingerprint() const {
  uint32_t crc = 0;
  for (const RequestRecord& rec : records_) {
    crc = ExtendCrc32c(crc, &rec.id, sizeof(rec.id));
    const uint8_t status = static_cast<uint8_t>(rec.status);
    crc = ExtendCrc32c(crc, &status, sizeof(status));
    crc = ExtendCrc32c(crc, &rec.generation, sizeof(rec.generation));
    const uint64_t score_bits = CanonicalBits(rec.score);
    crc = ExtendCrc32c(crc, &score_bits, sizeof(score_bits));
    const uint64_t completion_bits = CanonicalBits(rec.completion);
    crc = ExtendCrc32c(crc, &completion_bits, sizeof(completion_bits));
  }
  return crc;
}

}  // namespace colsgd
